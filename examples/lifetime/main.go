// Lifetime: the §2.3 device-lifetime levers. Runs a skewed (hot/cold)
// write workload on TPFTL devices with different garbage-collection
// policies and with static wear leveling on/off, and reports write
// amplification, erase counts and the erase-count spread (the wear
// imbalance that eventually kills individual blocks).
//
//	go run ./examples/lifetime
package main

import (
	"fmt"
	"log"
	"math/rand"

	tpftl "repro"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/trace"
)

func main() {
	const space = 64 << 20
	type variant struct {
		name string
		mut  func(*ftl.Config)
	}
	variants := []variant{
		{"greedy GC", nil},
		{"cost-benefit GC", func(c *ftl.Config) { c.GCPolicy = ftl.GCCostBenefit }},
		{"greedy + wear leveling", func(c *ftl.Config) { c.WearLevelThreshold = 16 }},
	}

	fmt.Println("hot/cold write workload (90% of writes to 1/8 of the space)")
	fmt.Printf("%-24s %8s %8s %8s %12s %10s\n",
		"configuration", "WA", "erases", "Vd", "erase-spread", "WL-moves")
	for _, v := range variants {
		cfg := tpftl.DefaultDeviceConfig(space)
		if v.mut != nil {
			v.mut(&cfg)
		}
		tr := core.New(core.DefaultConfig(cfg.CacheBytes))
		dev, err := tpftl.NewDevice(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		if err := dev.Format(); err != nil {
			log.Fatal(err)
		}
		if err := dev.Precondition(int(cfg.LogicalPages()), 1); err != nil {
			log.Fatal(err)
		}
		dev.ResetMetrics()

		rng := rand.New(rand.NewSource(7))
		pages := cfg.LogicalPages()
		pageBytes := int64(cfg.PageSize)
		arrival := int64(0)
		for i := 0; i < 60_000; i++ {
			var p int64
			if rng.Intn(10) < 9 {
				p = rng.Int63n(pages / 8)
			} else {
				p = rng.Int63n(pages)
			}
			arrival += 100_000
			req := trace.Request{Arrival: arrival, Offset: p * pageBytes, Length: pageBytes, Op: trace.OpWrite}
			if _, err := dev.Serve(req); err != nil {
				log.Fatal(err)
			}
		}
		m := dev.Metrics()
		min, max := dev.EraseSpread()
		fmt.Printf("%-24s %8.2f %8d %8.1f %12d %10d\n",
			v.name, m.WriteAmplification(), m.FlashErases, m.Vd(), max-min, m.WearLevelMoves)
	}
	fmt.Println()
	fmt.Println("expected shape: cost-benefit GC lowers WA on hot/cold data by not")
	fmt.Println("re-copying cold pages; wear leveling trades a few extra migrations")
	fmt.Println("for a bounded erase spread (no block wears out early).")
}
