// OLTP comparison: the paper's motivating scenario. A write-intensive,
// random-dominant OLTP workload (the Financial1 surrogate) is served by
// DFTL, S-FTL, TPFTL and the optimal FTL under the same small mapping
// cache, showing how TPFTL reduces the extra flash operations caused by
// address translation.
//
//	go run ./examples/oltp
package main

import (
	"fmt"
	"log"
	"time"

	tpftl "repro"
)

func main() {
	profile := tpftl.Financial1()
	schemes := []tpftl.Scheme{tpftl.DFTL, tpftl.SFTL, tpftl.TPFTL, tpftl.Optimal}

	fmt.Printf("workload: %s — %.0f%% writes, %.1f KB avg requests, %d MB address space\n\n",
		profile.Name, profile.WriteRatio*100,
		float64(profile.AvgRequestBytes)/1024, profile.AddressSpace>>20)
	fmt.Printf("%-9s %8s %8s %12s %12s %14s %7s %9s\n",
		"scheme", "Hr", "Prd", "trans.reads", "trans.writes", "response", "WA", "erases")

	var baseline time.Duration
	for _, s := range schemes {
		res, err := tpftl.Run(tpftl.Options{
			Scheme:           s,
			Profile:          profile,
			Requests:         120_000,
			Seed:             7,
			ResetAfterWarmup: 12_000,
			Precondition:     1.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := res.M
		if s == tpftl.DFTL {
			baseline = m.AvgResponse()
		}
		fmt.Printf("%-9s %7.1f%% %7.1f%% %12d %12d %14v %7.2f %9d\n",
			s, m.Hr()*100, m.Prd()*100, m.TransReads(), m.TransWrites(),
			m.AvgResponse().Round(time.Microsecond), m.WriteAmplification(), m.FlashErases)
		if s == tpftl.TPFTL && baseline > 0 {
			fmt.Printf("          → TPFTL improves response time by %.1f%% over DFTL\n",
				(1-float64(m.AvgResponse())/float64(baseline))*100)
		}
	}
}
