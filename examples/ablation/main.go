// Ablation: reproduce the paper's §5.2(5) technique study on a small scale.
// Each TPFTL technique — request-level prefetching (r), selective
// prefetching (s), batch-update replacement (b), clean-first replacement
// (c) — is toggled independently on the Financial1 workload, showing which
// technique buys which improvement (Figs. 7b/7c/8a/8b).
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"
	"time"

	tpftl "repro"
)

func main() {
	profile := tpftl.Financial1()
	profile.AddressSpace = 128 << 20 // shrink for example speed

	variants := []tpftl.TPFTLConfig{
		{CompressEntries: true}, // "–": bare two-level lists
		{CompressEntries: true, BatchUpdate: true},
		{CompressEntries: true, CleanFirst: true},
		{CompressEntries: true, BatchUpdate: true, CleanFirst: true},
		{CompressEntries: true, RequestPrefetch: true},
		{CompressEntries: true, SelectivePrefetch: true},
		{CompressEntries: true, RequestPrefetch: true, SelectivePrefetch: true},
		{CompressEntries: true, RequestPrefetch: true, SelectivePrefetch: true,
			BatchUpdate: true, CleanFirst: true}, // "rsbc": complete TPFTL
	}

	fmt.Println("TPFTL technique ablation on Financial1 (r=request prefetch,")
	fmt.Println("s=selective prefetch, b=batch update, c=clean first)")
	fmt.Printf("%-8s %10s %12s %14s %8s\n", "variant", "Prd", "hit ratio", "response", "WA")
	for _, cfg := range variants {
		cfg := cfg
		res, err := tpftl.Run(tpftl.Options{
			Scheme:           tpftl.TPFTL,
			TPFTL:            &cfg,
			Profile:          profile,
			Requests:         60_000,
			Seed:             7,
			ResetAfterWarmup: 6_000,
			Precondition:     1.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := res.M
		fmt.Printf("%-8s %9.1f%% %11.1f%% %14v %8.2f\n",
			res.Variant, m.Prd()*100, m.Hr()*100,
			m.AvgResponse().Round(time.Microsecond), m.WriteAmplification())
	}
	fmt.Println()
	fmt.Println("expected shape (paper §5.2(5)): 'b' collapses Prd; 'c' helps 'b'")
	fmt.Println("further; 'r'+'s' raise the hit ratio; 'rsbc' combines both.")
}
