// Trace replay: run an on-disk block trace through an FTL. Supports the
// UMass Financial SPC format and the MSR Cambridge CSV format, the two
// trace families of the paper's evaluation. Without arguments it generates
// a small Financial1-like trace in memory, writes it in SPC format and
// replays that, so the example is self-contained.
//
//	go run ./examples/tracereplay [-trace file -format spc|msr -space bytes]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	tpftl "repro"
)

func main() {
	var (
		file   = flag.String("trace", "", "trace file (default: generate a sample in memory)")
		format = flag.String("format", "spc", "trace format: spc, msr, native")
		space  = flag.Int64("space", 512<<20, "device capacity in bytes")
		scheme = flag.String("scheme", "TPFTL", "FTL scheme")
	)
	flag.Parse()

	var reqs []tpftl.Request
	var err error
	if *file != "" {
		f, err2 := os.Open(*file)
		if err2 != nil {
			log.Fatal(err2)
		}
		defer f.Close()
		reqs, err = tpftl.ParseTrace(f, *format)
	} else {
		reqs, err = sampleTrace(*space)
	}
	if err != nil {
		log.Fatal(err)
	}

	stats := tpftl.SummarizeTrace(reqs)
	fmt.Printf("trace: %d requests, %.0f%% writes, %.1f KB avg, footprint high-water %.0f MB\n",
		stats.Requests, stats.WriteRatio()*100, stats.AvgRequestSize()/1024,
		float64(stats.MaxEnd)/(1<<20))

	res, err := tpftl.Run(tpftl.Options{
		Scheme:       tpftl.Scheme(*scheme),
		Profile:      tpftl.Profile{Name: "replay", AddressSpace: *space, MeanInterarrival: 1},
		Trace:        reqs,
		AddressSpace: *space,
		Precondition: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.M
	fmt.Printf("\nreplayed on %s (cache %d B):\n", *scheme, res.CacheBytes)
	fmt.Printf("hit ratio %.1f%%, Prd %.1f%%, response %v, WA %.2f, erases %d\n",
		m.Hr()*100, m.Prd()*100, m.AvgResponse().Round(time.Microsecond),
		m.WriteAmplification(), m.FlashErases)
}

// sampleTrace builds a small Financial1-like stream, round-trips it through
// the SPC on-disk format (exercising the real writer and parser) and
// returns it.
func sampleTrace(space int64) ([]tpftl.Request, error) {
	p := tpftl.Financial1()
	p.AddressSpace = space
	gen, err := tpftl.GenerateWorkload(p, 30_000, 3)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	if err := tpftl.WriteTraceFormat(&sb, gen, "spc"); err != nil {
		return nil, err
	}
	return tpftl.ParseTrace(strings.NewReader(sb.String()), "spc")
}
