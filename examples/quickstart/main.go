// Quickstart: build a small SSD running TPFTL, serve a mixed workload and
// print the paper's headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tpftl "repro"
)

func main() {
	// A 64 MB SSD with the paper's Table 3 parameters (4 KB pages, 256 KB
	// blocks, 25 µs/200 µs/1.5 ms latencies, 15 % over-provisioning) and
	// the paper's cache convention (the size of a block-level mapping
	// table: 1 KB for 64 MB).
	const capacity = 64 << 20
	devCfg := tpftl.DefaultDeviceConfig(capacity)

	// The complete TPFTL ("rsbc"): two-level LRU lists, request-level and
	// selective prefetching, batch-update and clean-first replacement.
	translator := tpftl.NewTPFTL(tpftl.DefaultCacheBytes(capacity))

	dev, err := tpftl.NewDevice(devCfg, translator)
	if err != nil {
		log.Fatal(err)
	}
	// Format lays out every logical page and the full mapping table in
	// flash — the "SSD in full use" starting point of the paper.
	if err := dev.Format(); err != nil {
		log.Fatal(err)
	}

	// An OLTP-like request stream: small, random, write-heavy.
	profile := tpftl.Financial1()
	profile.AddressSpace = capacity
	reqs, err := tpftl.GenerateWorkload(profile, 20_000, 1)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range reqs {
		if _, err := dev.Serve(r); err != nil {
			log.Fatal(err)
		}
	}

	m := dev.Metrics()
	fmt.Printf("served %d requests (%d page accesses)\n", m.Requests, m.PageAccesses())
	fmt.Printf("cache hit ratio            %.1f%%\n", m.Hr()*100)
	fmt.Printf("dirty replacement prob.    %.1f%%\n", m.Prd()*100)
	fmt.Printf("translation page reads     %d\n", m.TransReads())
	fmt.Printf("translation page writes    %d\n", m.TransWrites())
	fmt.Printf("avg response time          %v\n", m.AvgResponse())
	fmt.Printf("write amplification        %.2f\n", m.WriteAmplification())
	fmt.Printf("block erases               %d\n", m.FlashErases)
}
