package tpftl_test

import (
	"fmt"

	tpftl "repro"
)

// Building a device by hand gives full control over the FTL policy and its
// configuration; Serve drives it request by request.
func Example() {
	const capacity = 16 << 20
	dev, err := tpftl.NewDevice(
		tpftl.DefaultDeviceConfig(capacity),
		tpftl.NewTPFTL(tpftl.DefaultCacheBytes(capacity)),
	)
	if err != nil {
		panic(err)
	}
	if err := dev.Format(); err != nil {
		panic(err)
	}
	// One 8 KB write, then read it back.
	if _, err := dev.Serve(tpftl.Request{Arrival: 0, Offset: 0, Length: 8192, Op: tpftl.OpWrite}); err != nil {
		panic(err)
	}
	if _, err := dev.Serve(tpftl.Request{Arrival: 1_000_000, Offset: 0, Length: 8192}); err != nil {
		panic(err)
	}
	m := dev.Metrics()
	fmt.Println(m.PageWrites, "pages written,", m.PageReads, "pages read")
	// Output: 2 pages written, 2 pages read
}

// Run wraps the full experimental procedure: build, format, precondition,
// generate a calibrated workload, serve it and verify consistency.
func ExampleRun() {
	p := tpftl.Financial1()
	p.AddressSpace = 16 << 20 // shrink the 512 MB profile for example speed
	res, err := tpftl.Run(tpftl.Options{
		Scheme:   tpftl.TPFTL,
		Profile:  p,
		Requests: 2_000,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Scheme, "served", res.M.Requests, "requests")
	// Output: TPFTL served 2000 requests
}

// TPFTLConfig's toggles reproduce the paper's ablation variants.
func ExampleTPFTLConfig() {
	bare := tpftl.TPFTLConfig{CompressEntries: true}
	replacementOnly := tpftl.TPFTLConfig{CompressEntries: true, BatchUpdate: true, CleanFirst: true}
	fmt.Println(bare.VariantName(), replacementOnly.VariantName())
	// Output: – bc
}
