// Benchmark harness: one benchmark per table and figure of the TPFTL
// paper's evaluation (§5). Each benchmark runs the corresponding experiment
// at a reduced scale per iteration and reports the figure's key quantities
// as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's result set. The full-scale equivalents are
// produced by cmd/experiments. See DESIGN.md §4 for the experiment index
// and EXPERIMENTS.md for paper-vs-measured values.
package tpftl_test

import (
	"testing"
	"time"

	"repro/internal/analytic"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchScale keeps one iteration under ~a second.
func benchScale() sim.ExpConfig {
	return sim.ExpConfig{
		Requests: 30_000,
		MSRScale: 128 << 20,
		Seed:     7,
		Warmup:   3_000,
	}
}

// benchProfiles are the four paper workloads at benchmark scale.
func benchProfiles() []workload.Profile {
	e := benchScale()
	out := workload.DefaultProfiles()
	for i := range out {
		if out[i].AddressSpace > e.MSRScale {
			out[i] = out[i].Scale(e.MSRScale)
		}
		// Financial profiles are 512 MB; shrink them too for bench speed.
		if out[i].AddressSpace > 128<<20 {
			out[i] = out[i].Scale(128 << 20)
		}
	}
	return out
}

func benchRun(b *testing.B, o sim.Options) *sim.Result {
	b.Helper()
	r, err := sim.Run(o)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable2DFTLDeviation regenerates Table 2: DFTL's performance and
// erasure deviation from the optimal FTL, reported per workload.
func BenchmarkTable2DFTLDeviation(b *testing.B) {
	e := benchScale()
	for _, p := range benchProfiles() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var perf, erase float64
			for i := 0; i < b.N; i++ {
				var cells []sim.ComparisonCell
				for _, s := range []sim.Scheme{sim.SchemeDFTL, sim.SchemeOptimal} {
					r := benchRun(b, sim.Options{
						Scheme: s, Profile: p, Requests: e.Requests, Seed: e.Seed,
						ResetAfterWarmup: e.Warmup, Precondition: 1,
					})
					cells = append(cells, sim.ComparisonCell{
						Workload: p.Name, Scheme: s,
						Resp: r.M.AvgResponse(), Erases: r.M.FlashErases,
					})
				}
				rows := sim.Table2(cells)
				perf, erase = rows[0].Performance, rows[0].Erasure
			}
			b.ReportMetric(perf*100, "perf-dev-%")
			b.ReportMetric(erase*100, "erase-dev-%")
		})
	}
}

// BenchmarkFig1CacheDistribution regenerates Fig. 1: the distribution of
// entries in DFTL's mapping cache, sampled during the run.
func BenchmarkFig1CacheDistribution(b *testing.B) {
	e := benchScale()
	for _, p := range benchProfiles() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var avgEntries, meanDirty float64
			for i := 0; i < b.N; i++ {
				r := benchRun(b, sim.Options{
					Scheme: sim.SchemeDFTL, Profile: p, Requests: e.Requests,
					Seed: e.Seed, SampleEvery: 2_000, Precondition: 1,
				})
				var entries, pages, dirtySum, dirtyPages float64
				for _, s := range r.Samples {
					entries += float64(s.Entries)
					pages += float64(s.TPNodes)
					dirtySum += float64(s.DirtyEntries)
					dirtyPages += float64(s.TPNodes)
				}
				if pages > 0 {
					avgEntries = entries / pages
					meanDirty = dirtySum / dirtyPages
				}
			}
			b.ReportMetric(avgEntries, "entries/cachedTP")
			b.ReportMetric(meanDirty, "dirty/cachedTP")
		})
	}
}

// BenchmarkFig2SpatialLocality regenerates Fig. 2b: the number of cached
// translation pages over time under Financial1 (its dips mark sequential
// phases).
func BenchmarkFig2SpatialLocality(b *testing.B) {
	e := benchScale()
	p := benchProfiles()[0] // Financial1
	var minTP, maxTP int
	for i := 0; i < b.N; i++ {
		r := benchRun(b, sim.Options{
			Scheme: sim.SchemeDFTL, Profile: p, Requests: e.Requests,
			Seed: e.Seed, SampleEvery: 1_000, Precondition: 1,
		})
		minTP, maxTP = 1<<30, 0
		for _, s := range r.Samples {
			if s.TPNodes < minTP {
				minTP = s.TPNodes
			}
			if s.TPNodes > maxTP {
				maxTP = s.TPNodes
			}
		}
	}
	b.ReportMetric(float64(minTP), "minTPnodes")
	b.ReportMetric(float64(maxTP), "maxTPnodes")
}

// BenchmarkFig6Comparison regenerates Figs. 6a-6f: the four schemes over
// the four workloads. Metrics per sub-benchmark: Prd, hit ratio,
// translation reads/writes, response time and write amplification.
func BenchmarkFig6Comparison(b *testing.B) {
	e := benchScale()
	for _, p := range benchProfiles() {
		for _, s := range sim.Schemes() {
			p, s := p, s
			b.Run(p.Name+"/"+string(s), func(b *testing.B) {
				var m *sim.Result
				for i := 0; i < b.N; i++ {
					m = benchRun(b, sim.Options{
						Scheme: s, Profile: p, Requests: e.Requests, Seed: e.Seed,
						ResetAfterWarmup: e.Warmup, Precondition: 1,
					})
				}
				b.ReportMetric(m.M.Prd()*100, "Prd-%")
				b.ReportMetric(m.M.Hr()*100, "Hr-%")
				b.ReportMetric(float64(m.M.TransReads()), "transReads")
				b.ReportMetric(float64(m.M.TransWrites()), "transWrites")
				b.ReportMetric(float64(m.M.AvgResponse().Microseconds()), "resp-µs")
				b.ReportMetric(m.M.WriteAmplification(), "WA")
			})
		}
	}
}

// BenchmarkFig7Erases regenerates Fig. 7a: block erase counts per scheme
// (normalized against DFTL offline).
func BenchmarkFig7Erases(b *testing.B) {
	e := benchScale()
	p := benchProfiles()[0]
	for _, s := range sim.Schemes() {
		s := s
		b.Run(string(s), func(b *testing.B) {
			var erases int64
			for i := 0; i < b.N; i++ {
				r := benchRun(b, sim.Options{
					Scheme: s, Profile: p, Requests: e.Requests, Seed: e.Seed,
					ResetAfterWarmup: e.Warmup, Precondition: 1,
				})
				erases = r.M.FlashErases
			}
			b.ReportMetric(float64(erases), "erases")
		})
	}
}

// BenchmarkFig7Ablation regenerates Figs. 7b/7c: per-technique Prd and hit
// ratio on Financial1.
func BenchmarkFig7Ablation(b *testing.B) {
	benchAblation(b, func(b *testing.B, c sim.AblationCell) {
		b.ReportMetric(c.Prd*100, "Prd-%")
		b.ReportMetric(c.Hr*100, "Hr-%")
	})
}

// BenchmarkFig8Ablation regenerates Figs. 8a/8b: per-technique response
// time and write amplification on Financial1.
func BenchmarkFig8Ablation(b *testing.B) {
	benchAblation(b, func(b *testing.B, c sim.AblationCell) {
		b.ReportMetric(float64(c.Resp.Microseconds()), "resp-µs")
		b.ReportMetric(c.WA, "WA")
	})
}

func benchAblation(b *testing.B, report func(*testing.B, sim.AblationCell)) {
	e := benchScale()
	p := benchProfiles()[0]
	for _, cfg := range sim.AblationVariants(0) {
		cfg := cfg
		b.Run(cfg.VariantName(), func(b *testing.B) {
			var cell sim.AblationCell
			for i := 0; i < b.N; i++ {
				r := benchRun(b, sim.Options{
					Scheme: sim.SchemeTPFTL, TPFTL: &cfg, Profile: p,
					Requests: e.Requests, Seed: e.Seed,
					ResetAfterWarmup: e.Warmup, Precondition: 1,
				})
				cell = sim.AblationCell{
					Variant: r.Variant, Prd: r.M.Prd(), Hr: r.M.Hr(),
					Resp: r.M.AvgResponse(), WA: r.M.WriteAmplification(),
				}
			}
			report(b, cell)
		})
	}
}

// BenchmarkFig9CacheSweep regenerates Figs. 8c and 9a-9c: TPFTL across
// cache sizes (fractions of the full mapping table).
func BenchmarkFig9CacheSweep(b *testing.B) {
	e := benchScale()
	p := benchProfiles()[0]
	for _, frac := range []float64{1.0 / 128, 1.0 / 32, 1.0 / 8, 1.0 / 2, 1} {
		frac := frac
		name := "1"
		if frac < 1 {
			name = "1over" + itoa(int(1/frac+0.5))
		}
		b.Run(name, func(b *testing.B) {
			var m *sim.Result
			for i := 0; i < b.N; i++ {
				m = benchRun(b, sim.Options{
					Scheme: sim.SchemeTPFTL, Profile: p, Requests: e.Requests,
					Seed: e.Seed, CacheFraction: frac,
					ResetAfterWarmup: e.Warmup, Precondition: 1,
				})
			}
			b.ReportMetric(m.M.Prd()*100, "Prd-%")
			b.ReportMetric(m.M.Hr()*100, "Hr-%")
			b.ReportMetric(float64(m.M.AvgResponse().Microseconds()), "resp-µs")
			b.ReportMetric(m.M.WriteAmplification(), "WA")
		})
	}
}

// BenchmarkFig10SpaceUtilization regenerates Fig. 10: TPFTL's cache
// space-utilization improvement over DFTL (mean cached entries under the
// same budget).
func BenchmarkFig10SpaceUtilization(b *testing.B) {
	e := benchScale()
	p := benchProfiles()[0]
	for _, frac := range []float64{1.0 / 128, 1.0 / 32, 1.0 / 8} {
		frac := frac
		b.Run("1over"+itoa(int(1/frac+0.5)), func(b *testing.B) {
			var improvement float64
			for i := 0; i < b.N; i++ {
				mean := func(s sim.Scheme) float64 {
					r := benchRun(b, sim.Options{
						Scheme: s, Profile: p, Requests: e.Requests, Seed: e.Seed,
						CacheFraction: frac, SampleEvery: 2_000, Precondition: 1,
					})
					var sum float64
					for _, smp := range r.Samples {
						sum += float64(smp.Entries)
					}
					if len(r.Samples) == 0 {
						return 0
					}
					return sum / float64(len(r.Samples))
				}
				d := mean(sim.SchemeDFTL)
				t := mean(sim.SchemeTPFTL)
				if d > 0 {
					improvement = (t/d - 1) * 100
				}
			}
			b.ReportMetric(improvement, "improvement-%")
		})
	}
}

// BenchmarkModelValidation evaluates the §3.1 analytic models on measured
// DFTL parameters and reports the model-vs-simulator write amplification.
func BenchmarkModelValidation(b *testing.B) {
	e := benchScale()
	p := benchProfiles()[0]
	var modelWA, measuredWA float64
	for i := 0; i < b.N; i++ {
		r := benchRun(b, sim.Options{
			Scheme: sim.SchemeDFTL, Profile: p, Requests: e.Requests, Seed: e.Seed,
			ResetAfterWarmup: e.Warmup, Precondition: 1,
		})
		m := r.M
		params := analytic.Params{
			Hr: m.Hr(), Prd: m.Prd(), Hgcr: m.Hgcr(), Rw: m.Rw(),
			Vd: m.Vd(), Vt: m.Vt(), Np: 64, Npa: float64(m.PageAccesses()),
			Tfr: 25 * time.Microsecond, Tfw: 200 * time.Microsecond,
			Tfe: 1500 * time.Microsecond,
		}
		modelWA = params.WA()
		measuredWA = m.WriteAmplification()
	}
	b.ReportMetric(modelWA, "model-WA")
	b.ReportMetric(measuredWA, "measured-WA")
}

// BenchmarkDeviceThroughput measures raw simulator speed: page accesses per
// second through a TPFTL device (not a paper figure; a harness health
// metric).
func BenchmarkDeviceThroughput(b *testing.B) {
	e := benchScale()
	p := benchProfiles()[0]
	reqs, err := workload.Generate(p, e.Requests, e.Seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var accesses int64
	for i := 0; i < b.N; i++ {
		r := benchRun(b, sim.Options{
			Scheme: sim.SchemeTPFTL, Profile: p, Trace: reqs, Precondition: 1,
		})
		accesses = r.M.PageAccesses()
	}
	b.ReportMetric(float64(accesses), "pageAccesses/op")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
