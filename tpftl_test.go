package tpftl_test

import (
	"strings"
	"testing"

	tpftl "repro"
)

// TestPublicAPIQuickstart exercises the facade end to end the way the
// README's quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	const capacity = 16 << 20
	devCfg := tpftl.DefaultDeviceConfig(capacity)
	tr := tpftl.NewTPFTL(tpftl.DefaultCacheBytes(capacity))
	dev, err := tpftl.NewDevice(devCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Format(); err != nil {
		t.Fatal(err)
	}
	p := tpftl.Financial1()
	p.AddressSpace = capacity
	reqs, err := tpftl.GenerateWorkload(p, 2_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if _, err := dev.Serve(r); err != nil {
			t.Fatal(err)
		}
	}
	m := dev.Metrics()
	if m.Requests != 2_000 || m.Hr() <= 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestPublicRunAllSchemes(t *testing.T) {
	p := tpftl.Financial2()
	p.AddressSpace = 16 << 20
	for _, s := range []tpftl.Scheme{tpftl.TPFTL, tpftl.DFTL, tpftl.SFTL, tpftl.CDFTL, tpftl.ZFTL, tpftl.Optimal} {
		r, err := tpftl.Run(tpftl.Options{Scheme: s, Profile: p, Requests: 1_000, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.M.PageAccesses() == 0 {
			t.Fatalf("%s: no page accesses", s)
		}
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	p := tpftl.MSRts()
	p.AddressSpace = 16 << 20
	reqs, err := tpftl.GenerateWorkload(p, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tpftl.WriteTrace(&sb, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := tpftl.ParseTrace(strings.NewReader(sb.String()), "native")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip %d → %d", len(reqs), len(got))
	}
	s := tpftl.SummarizeTrace(got)
	if s.Requests != 500 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPublicProfiles(t *testing.T) {
	ps := tpftl.Profiles()
	if len(ps) != 4 {
		t.Fatalf("profiles = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
	}
	for _, want := range []string{"Financial1", "Financial2", "MSR-ts", "MSR-src"} {
		if !names[want] {
			t.Fatalf("missing profile %s", want)
		}
	}
}

func TestPublicTaxonomyDevices(t *testing.T) {
	cfg := tpftl.DeviceConfig{LogicalBytes: 4 << 20, PageSize: 4096, PagesPerBlock: 32, OverProvision: 0.15}
	bd, err := tpftl.NewBlockDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := tpftl.NewHybridDevice(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	req := tpftl.Request{Arrival: 0, Offset: 0, Length: 4096, Op: tpftl.OpWrite}
	if _, err := bd.Serve(req); err != nil {
		t.Fatal(err)
	}
	if _, err := hd.Serve(req); err != nil {
		t.Fatal(err)
	}

	devCfg := tpftl.DefaultDeviceConfig(4 << 20)
	dev, err := tpftl.NewDevice(devCfg, tpftl.NewTPFTL(1024))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Format(); err != nil {
		t.Fatal(err)
	}
	buf, err := tpftl.NewDataBuffer(dev, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buf.Serve(req); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 1 {
		t.Fatalf("buffered = %d", buf.Len())
	}
}

func TestNewTranslatorByScheme(t *testing.T) {
	for _, s := range []tpftl.Scheme{tpftl.TPFTL, tpftl.DFTL, tpftl.SFTL, tpftl.CDFTL, tpftl.ZFTL, tpftl.Optimal} {
		tr, err := tpftl.NewTranslator(s, 4096, 1024, nil)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if tr.Name() == "" {
			t.Fatalf("%s: empty name", s)
		}
	}
	if _, err := tpftl.NewTranslator("bogus", 4096, 1024, nil); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}
