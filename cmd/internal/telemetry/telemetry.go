// Package telemetry is the cmd-side runtime of the live telemetry plane
// (internal/obs/live): the opt-in HTTP scrape server, the wall-clock sampler
// that computes requests/sec, ETA and peak RSS, the periodic stderr progress
// line for headless runs, and the SIGQUIT flight-recorder dump.
//
// It extends cmd/internal/memwatch's clocksafe-exempt pattern: wall time
// exists only here (and in memwatch), under cmd/, on goroutines that observe
// the simulation without ever advancing it. The simulator packages publish
// into the plane at simulated cadences and contain no wall-clock calls; this
// package periodically reads the plane's atomics and writes the Progress
// view back in. Nothing here perturbs simulated results.
package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/cmd/internal/memwatch"
	"repro/internal/obs/live"
)

// DefaultInterval is the sampler/progress period when Options.Interval is 0.
const DefaultInterval = 2 * time.Second

// Options configures Start.
type Options struct {
	// Addr, when non-empty, serves the plane over HTTP (live.NewMux:
	// /metrics, /snapshot, /quit, /debug/vars, /debug/pprof).
	Addr string
	// Plane is the telemetry plane the simulation publishes into. Required.
	Plane *live.Plane
	// Progress, when non-nil, receives a one-line progress report every
	// Interval (typically os.Stderr for headless runs).
	Progress io.Writer
	// Interval is the sampler period (DefaultInterval when 0).
	Interval time.Duration
	// Linger keeps the HTTP server alive this long after Finish is called,
	// or until POST /quit — so a scraper can read the final epochs of a
	// short run. 0 shuts down immediately.
	Linger time.Duration
	// Watcher, when non-nil, contributes its peak-RSS high-water mark to
	// the progress view.
	Watcher *memwatch.Watcher
}

// T is a running telemetry runtime. Create with Start, end with Finish.
type T struct {
	o        Options
	ln       net.Listener
	quitCh   chan struct{}
	quitOnce sync.Once
	stop     chan struct{}
	done     sync.WaitGroup
	sigc     chan os.Signal

	prevReqs int64
	prevWall time.Time
}

var expvarOnce sync.Once

// Start launches the telemetry runtime: the HTTP server when o.Addr is set,
// the sampler goroutine (progress view + optional stderr line), and the
// SIGQUIT handler that dumps every shard's flight recorder to stderr (the
// process continues afterwards). Returns an error only when the listen
// address is unusable.
func Start(o Options) (*T, error) {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	t := &T{o: o, quitCh: make(chan struct{}), stop: make(chan struct{})}

	if o.Addr != "" {
		ln, err := net.Listen("tcp", o.Addr)
		if err != nil {
			return nil, fmt.Errorf("telemetry: listen %s: %w", o.Addr, err)
		}
		t.ln = ln
		expvarOnce.Do(func() {
			expvar.Publish("ftl_live", expvar.Func(func() any { return live.SnapshotDoc(o.Plane) }))
		})
		srv := &http.Server{Handler: live.NewMux(o.Plane, t.quit)}
		t.done.Add(1)
		go func() {
			defer t.done.Done()
			srv.Serve(ln) // returns on ln.Close()
		}()
	}

	// SIGQUIT: dump the flight recorders and keep running. Installing the
	// handler replaces Go's default stack dump while telemetry is armed.
	t.sigc = make(chan os.Signal, 1)
	signal.Notify(t.sigc, syscall.SIGQUIT)
	t.done.Add(1)
	go func() {
		defer t.done.Done()
		for {
			select {
			case <-t.sigc:
				fmt.Fprintln(os.Stderr, "telemetry: SIGQUIT — dumping flight recorders")
				o.Plane.DumpRecorders(os.Stderr)
			case <-t.stop:
				return
			}
		}
	}()

	// Sampler: compute the wall-clock progress view and publish it into the
	// plane; optionally narrate to o.Progress.
	t.prevWall = time.Now()
	t.done.Add(1)
	go func() {
		defer t.done.Done()
		tick := time.NewTicker(o.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t.sample()
			case <-t.stop:
				return
			}
		}
	}()
	return t, nil
}

// sample publishes one Progress epoch and optionally prints it.
func (t *T) sample() {
	now := time.Now()
	reqs := t.o.Plane.Requests()
	dt := now.Sub(t.prevWall).Seconds()
	var rate float64
	if dt > 0 {
		rate = float64(reqs-t.prevReqs) / dt
	}
	t.prevReqs, t.prevWall = reqs, now

	info := t.o.Plane.Info()
	pr := live.Progress{
		WallUnixNS: now.UnixNano(),
		Requests:   reqs,
		Total:      info.TotalRequests,
		ReqPerSec:  rate,
	}
	if info.TotalRequests > 0 && rate > 0 && reqs < info.TotalRequests {
		pr.ETASeconds = float64(info.TotalRequests-reqs) / rate
	}
	if t.o.Watcher != nil {
		pr.PeakRSSBytes = int64(t.o.Watcher.Peak())
	}
	t.o.Plane.SetProgress(pr)

	if w := t.o.Progress; w != nil {
		line := fmt.Sprintf("telemetry: %d requests", reqs)
		if pr.Total > 0 {
			line = fmt.Sprintf("telemetry: %d/%d requests (%.1f%%)",
				reqs, pr.Total, 100*float64(reqs)/float64(pr.Total))
		}
		line += fmt.Sprintf("  %.0f req/s", rate)
		if pr.ETASeconds > 0 {
			line += fmt.Sprintf("  eta %s", (time.Duration(pr.ETASeconds * float64(time.Second))).Round(time.Second))
		}
		if info.Shards > 1 {
			line += fmt.Sprintf("  shards %d", info.Shards)
		}
		if pr.PeakRSSBytes > 0 {
			line += fmt.Sprintf("  rss %.1f MB", float64(pr.PeakRSSBytes)/(1<<20))
		}
		fmt.Fprintln(w, line)
	}
}

// quit releases a Linger wait early (POST /quit).
func (t *T) quit() { t.quitOnce.Do(func() { close(t.quitCh) }) }

// Addr returns the HTTP server's bound address ("" when no server runs) —
// useful when Options.Addr picked an ephemeral port.
func (t *T) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// DumpOnError writes the flight-recorder report to w — call when a run
// fails so the last admitted requests and scheduler events are preserved.
func (t *T) DumpOnError(w io.Writer) { t.o.Plane.DumpRecorders(w) }

// Finish publishes a final progress sample, honors the Linger window (ended
// early by POST /quit), then shuts the server and goroutines down. Call
// exactly once, after the run completes.
func (t *T) Finish() {
	t.sample()
	if t.ln != nil && t.o.Linger > 0 {
		select {
		case <-t.quitCh:
		case <-time.After(t.o.Linger):
		}
	}
	signal.Stop(t.sigc)
	close(t.stop)
	if t.ln != nil {
		t.ln.Close()
	}
	t.done.Wait()
}
