package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/live"
)

// lockedBuffer is a goroutine-safe progress sink (the sampler writes from
// its own goroutine).
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRuntimeServesAndLingers drives the runtime end to end: the server
// scrapes while the "run" publishes, the sampler writes progress lines and a
// progress view, and POST /quit ends the linger window early (the test would
// time out if it did not).
func TestRuntimeServesAndLingers(t *testing.T) {
	plane := live.NewPlane(0, 0)
	cells := plane.StartRun(live.RunInfo{Scheme: "tpftl", Workload: "unit", Shards: 1, TotalRequests: 500})
	cells[0].Publish(1e9, obs.Counters{Requests: 100, Lookups: 80, Hits: 60}, 0, 0, 5e6)

	var progress lockedBuffer
	tel, err := Start(Options{
		Addr:     "127.0.0.1:0",
		Plane:    plane,
		Progress: &progress,
		Interval: 10 * time.Millisecond,
		Linger:   time.Hour, // must be cut short by POST /quit
	})
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + tel.Addr()

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, err := live.ValidatePrometheus(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics invalid: %v\n%s", err, body)
	}

	// Give the sampler a few ticks, then check its two outputs.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if pr, ok := plane.Progress(); ok && pr.Requests == 100 && strings.Contains(progress.String(), "100/500") {
			break
		}
		if time.Now().After(deadline) {
			pr, ok := plane.Progress()
			t.Fatalf("sampler never published: progress=%v ok=%v lines=%q", pr, ok, progress.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	finished := make(chan struct{})
	go func() { tel.Finish(); close(finished) }()
	resp, err = http.Post(url+"/quit", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("POST /quit did not end the linger window")
	}
}
