// Package memwatch samples the Go runtime's memory statistics in the
// background and reports a run's peak resident footprint. The benchmark
// harness and ftlsim use it to demonstrate that streamed trace replay holds
// memory constant regardless of trace size.
//
// The figure tracked is Sys - HeapReleased: bytes obtained from the OS minus
// bytes already returned to it — the runtime's view of resident set size. It
// is a high-water mark, so short-lived spikes between samples can be missed;
// the sampling interval bounds that error.
package memwatch

import (
	"runtime"
	"sync"
	"time"
)

// DefaultInterval is the sampling period used when Start is given zero.
const DefaultInterval = 10 * time.Millisecond

// Watcher tracks the peak resident footprint while running.
type Watcher struct {
	stop chan struct{}
	done sync.WaitGroup

	mu   sync.Mutex
	peak uint64
}

// Start begins background sampling at the given interval (DefaultInterval
// when zero) and takes an immediate first sample.
func Start(interval time.Duration) *Watcher {
	if interval <= 0 {
		interval = DefaultInterval
	}
	w := &Watcher{stop: make(chan struct{})}
	w.sample()
	w.done.Add(1)
	go func() {
		defer w.done.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.sample()
			case <-w.stop:
				return
			}
		}
	}()
	return w
}

func (w *Watcher) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rss := ms.Sys - ms.HeapReleased
	w.mu.Lock()
	if rss > w.peak {
		w.peak = rss
	}
	w.mu.Unlock()
}

// Peak returns the high-water resident footprint observed so far without
// stopping the watcher (the live-telemetry sampler reads it mid-run).
func (w *Watcher) Peak() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.peak
}

// Stop ends sampling, takes a final sample, and returns the peak resident
// footprint in bytes. Stop must be called exactly once.
func (w *Watcher) Stop() uint64 {
	close(w.stop)
	w.done.Wait()
	w.sample()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.peak
}
