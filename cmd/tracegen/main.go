// Command tracegen writes a synthetic workload trace in the repository's
// native CSV format (arrival_ns,offset,length,op).
//
// Example:
//
//	tracegen -workload Financial1 -requests 1000000 -o fin1.csv
package main

import (
	"flag"
	"fmt"
	"os"

	tpftl "repro"
	"repro/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "Financial1", "profile: Financial1, Financial2, MSR-ts, MSR-src, fstrim-heavy, database-fsync")
		requests = flag.Int("requests", 100_000, "number of requests")
		seed     = flag.Int64("seed", 42, "generator seed")
		scale    = flag.Int64("scale", 0, "override address space in bytes")
		out      = flag.String("o", "", "output file (default stdout)")
		format   = flag.String("format", "native", "output format: native, spc, msr")
		stats    = flag.Bool("stats", false, "print Table 4-style statistics to stderr")
	)
	flag.Parse()
	if err := run(*wl, *requests, *seed, *scale, *out, *format, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(wl string, requests int, seed, scale int64, out, format string, stats bool) error {
	p, err := workload.ProfileByName(wl)
	if err != nil {
		return err
	}
	if scale != 0 {
		p = p.Scale(scale)
	}
	reqs, err := tpftl.GenerateWorkload(p, requests, seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tpftl.WriteTraceFormat(w, reqs, format); err != nil {
		return err
	}
	if stats {
		printStats(reqs)
	}
	return nil
}

func printStats(reqs []tpftl.Request) {
	s := tpftl.SummarizeTrace(reqs)
	fmt.Fprintf(os.Stderr, "requests        %d\n", s.Requests)
	fmt.Fprintf(os.Stderr, "write ratio     %.1f%%\n", s.WriteRatio()*100)
	fmt.Fprintf(os.Stderr, "avg req size    %.1f KB\n", s.AvgRequestSize()/1024)
	fmt.Fprintf(os.Stderr, "seq read        %.1f%%\n", s.SeqReadRatio()*100)
	fmt.Fprintf(os.Stderr, "seq write       %.1f%%\n", s.SeqWriteRatio()*100)
	fmt.Fprintf(os.Stderr, "address space   %.1f MB (high-water)\n", float64(s.MaxEnd)/(1<<20))
	fmt.Fprintf(os.Stderr, "page accesses   %d\n", s.PageAccesses)
	if s.Trims > 0 {
		fmt.Fprintf(os.Stderr, "trims           %d (%.1f MB, %d pages)\n",
			s.Trims, float64(s.TrimBytes)/(1<<20), s.TrimPages)
	}
	if s.Flushes > 0 {
		fmt.Fprintf(os.Stderr, "flushes         %d\n", s.Flushes)
	}
	if s.FUAWrites > 0 {
		fmt.Fprintf(os.Stderr, "FUA writes      %d\n", s.FUAWrites)
	}
}
