// Command tracegen writes a synthetic workload trace, by default in the
// repository's native CSV format (arrival_ns,offset,length,op). With
// -format binary it streams straight into the fixed-record binary trace
// format, so traces of hundreds of millions of requests are generated
// without ever materializing them in memory.
//
// The convert subcommand transcodes an existing text trace (native, SPC or
// MSR) into the binary format once, after which replay streams it in bounded
// memory.
//
// Examples:
//
//	tracegen -workload Financial1 -requests 1000000 -o fin1.csv
//	tracegen -workload Financial1 -requests 100000000 -format binary -o fin1.ftr
//	tracegen convert -format spc -i fin1.spc -o fin1.ftr
package main

import (
	"flag"
	"fmt"
	"os"

	tpftl "repro"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "convert" {
		if err := runConvert(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen convert:", err)
			os.Exit(1)
		}
		return
	}
	var (
		wl       = flag.String("workload", "Financial1", "profile: Financial1, Financial2, MSR-ts, MSR-src, fstrim-heavy, database-fsync")
		requests = flag.Int("requests", 100_000, "number of requests")
		seed     = flag.Int64("seed", 42, "generator seed")
		scale    = flag.Int64("scale", 0, "override address space in bytes")
		out      = flag.String("o", "", "output file (default stdout)")
		format   = flag.String("format", "native", "output format: native, spc, msr, binary")
		stats    = flag.Bool("stats", false, "print Table 4-style statistics to stderr")
	)
	flag.Parse()
	if err := run(*wl, *requests, *seed, *scale, *out, *format, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(wl string, requests int, seed, scale int64, out, format string, stats bool) error {
	p, err := workload.ProfileByName(wl)
	if err != nil {
		return err
	}
	if scale != 0 {
		p = p.Scale(scale)
	}
	f, err := trace.FormatByName(format)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		file, err := os.Create(out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	if f == trace.FormatBinary {
		// Binary output streams request-by-request: the generator is driven
		// directly into the writer, so the trace never exists as a slice and
		// -requests can exceed memory by orders of magnitude.
		return generateBinary(p, requests, seed, w, stats)
	}
	reqs, err := tpftl.GenerateWorkload(p, requests, seed)
	if err != nil {
		return err
	}
	if err := tpftl.WriteTraceFormat(w, reqs, format); err != nil {
		return err
	}
	if stats {
		printStats(tpftl.SummarizeTrace(reqs))
	}
	return nil
}

// generateBinary streams requests from the workload generator straight into
// a binary trace writer. When the sink is seekable (a file) the header is
// backfilled with the record count and address high-water on Finish.
func generateBinary(p workload.Profile, requests int, seed int64, w *os.File, stats bool) error {
	g, err := workload.NewGenerator(p, seed)
	if err != nil {
		return err
	}
	bw, err := trace.NewBinaryWriter(w, trace.BinaryHeader{
		Records:   int64(requests),
		PageBytes: trace.SummaryPageBytes,
	})
	if err != nil {
		return err
	}
	var acc trace.StatsAccum
	for i := 0; i < requests; i++ {
		r := g.Next()
		if err := bw.WriteRequest(r); err != nil {
			return err
		}
		acc.Add(r)
	}
	if err := bw.Finish(); err != nil {
		return err
	}
	if stats {
		printStats(acc.Stats())
	}
	return nil
}

// runConvert transcodes a text trace into the binary format. The input is
// parsed eagerly (text traces are converted once, then replayed streaming);
// the output header carries the record count, the address high-water and the
// source format.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	var (
		in     = fs.String("i", "", "input trace file (default stdin)")
		format = fs.String("format", "native", "input format: native, spc, msr")
		out    = fs.String("o", "", "output binary trace file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := trace.FormatByName(*format)
	if err != nil {
		return err
	}
	if f == trace.FormatBinary {
		return fmt.Errorf("input is already binary; convert reads text formats (native, spc, msr)")
	}
	r := os.Stdin
	if *in != "" {
		file, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer file.Close()
		r = file
	}
	reqs, err := trace.Parse(r, f)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	s := trace.Summarize(reqs)
	bw, err := trace.NewBinaryWriter(w, trace.BinaryHeader{
		Records:   int64(len(reqs)),
		MaxEnd:    s.MaxEnd,
		PageBytes: trace.SummaryPageBytes,
		Source:    f,
	})
	if err != nil {
		return err
	}
	for _, req := range reqs {
		if err := bw.WriteRequest(req); err != nil {
			return err
		}
	}
	if err := bw.Finish(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "converted %d requests (%s -> binary)\n", len(reqs), *format)
	return nil
}

func printStats(s tpftl.TraceStats) {
	fmt.Fprintf(os.Stderr, "requests        %d\n", s.Requests)
	fmt.Fprintf(os.Stderr, "write ratio     %.1f%%\n", s.WriteRatio()*100)
	fmt.Fprintf(os.Stderr, "avg req size    %.1f KB\n", s.AvgRequestSize()/1024)
	fmt.Fprintf(os.Stderr, "seq read        %.1f%%\n", s.SeqReadRatio()*100)
	fmt.Fprintf(os.Stderr, "seq write       %.1f%%\n", s.SeqWriteRatio()*100)
	fmt.Fprintf(os.Stderr, "address space   %.1f MB (high-water)\n", float64(s.MaxEnd)/(1<<20))
	fmt.Fprintf(os.Stderr, "page accesses   %d\n", s.PageAccesses)
	if s.Trims > 0 {
		fmt.Fprintf(os.Stderr, "trims           %d (%.1f MB, %d pages)\n",
			s.Trims, float64(s.TrimBytes)/(1<<20), s.TrimPages)
	}
	if s.Flushes > 0 {
		fmt.Fprintf(os.Stderr, "flushes         %d\n", s.Flushes)
	}
	if s.FUAWrites > 0 {
		fmt.Fprintf(os.Stderr, "FUA writes      %d\n", s.FUAWrites)
	}
}
