// Command ftlbench is the repository's reproducible macro-benchmark harness.
//
// It runs a fixed, seeded matrix of (translator × workload × backend
// geometry/queue-depth) simulations against the real device stack and emits a
// machine-diffable JSON report (BENCH_<n>.json) so the performance trajectory
// of the simulator engine itself — not the simulated metrics, which must stay
// bit-for-bit stable — can be compared across PRs:
//
//	sim_ops_per_wall_sec   simulated page accesses per wall-clock second
//	ns_per_op              wall nanoseconds per simulated page access
//	allocs_per_op          Go heap allocations per simulated page access
//	bytes_per_op           Go heap bytes per simulated page access
//	hit_ratio              mapping-cache hit ratio (a simulated metric,
//	                       recorded as a tripwire: it must not move)
//	event_hash             the scheduler's order-sensitive event hash,
//	                       recorded for the same reason
//	p50_ns/p99_ns/p999_ns  simulated response-time percentiles per case,
//	max_ns                 pooled over all -runs repetitions (deterministic)
//	requests_per_wall_sec  trace requests retired per wall-clock second
//	peak_rss_bytes         high-water resident footprint of the measured run
//
// Wall time is the best of -runs repetitions (allocation counts come from the
// first run; they are deterministic). Formatting, preconditioning and
// workload generation are excluded from the measured window.
//
// Examples:
//
//	ftlbench -out BENCH_5.json -runs 3
//	ftlbench -smoke -minops 200000            # CI floor: fail on 10× regressions
//	ftlbench -case random-read-qd8-4ch -cpuprofile cpu.pb.gz
//	ftlbench -out BENCH_5.json -baseline old.json -baseline-note "pre-slab"
//	ftlbench -out BENCH_5.json -keep-baseline    # refresh, keep old baseline
//	ftlbench -case stream-replay -stream-requests 2000000 -minops 4000000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/cmd/internal/memwatch"
	"repro/cmd/internal/telemetry"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The matrix geometry, spelled as named constants (the sanctioned spelling
// under the geometry analyzer: a literal channel count bakes a device shape
// into code).
const (
	serialChannels = 1
	serialDies     = 1
	wideChannels   = 4
	wideDies       = 2
)

// benchCase is one cell of the benchmark matrix.
type benchCase struct {
	Name     string
	Scheme   sim.Scheme
	Workload string // profile name, or "randread"/"seqread" synthetics
	Space    int64  // device capacity in bytes
	Requests int
	Seed     int64
	Channels int
	Dies     int
	QD       int // 0 = open loop
	// Shards > 0 routes the case through the sharded multi-queue host
	// frontend (internal/host): the LPN space striped across Shards
	// independent devices served by Clients concurrent goroutines. These
	// are the only cases whose wall time can use more than one CPU.
	Shards  int
	Clients int
	// Stream replays the workload from a binary trace file through the
	// streaming iterator instead of a materialized slice. The measured window
	// includes trace ingest (decode + admission), and the trace is sized by
	// -stream-requests, so the case demonstrates trace-size-independent
	// memory at full engine throughput.
	Stream bool
	Smoke  bool
}

// matrix is the fixed benchmark matrix. Keep the names stable: downstream
// tooling diffs BENCH_*.json across PRs by case name. Cases marked Smoke form
// the small matrix `make ci` runs with a throughput floor.
func matrix() []benchCase {
	const space = 64 << 20
	return []benchCase{
		// The headline macro-bench: device-bound uniform random 4 KB reads,
		// queue depth 8 on a 4-channel × 2-die device. The engine (cache
		// lookups, event scheduling) is the bottleneck here, which makes it
		// the case PR-over-PR engine speedups are measured on.
		{Name: "random-read-qd8-4ch", Scheme: sim.SchemeTPFTL, Workload: "randread",
			Space: space, Requests: 60_000, Seed: 7, Channels: wideChannels, Dies: wideDies, QD: 8, Smoke: true},
		{Name: "random-read-qd8-4ch-dftl", Scheme: sim.SchemeDFTL, Workload: "randread",
			Space: space, Requests: 60_000, Seed: 7, Channels: wideChannels, Dies: wideDies, QD: 8},
		// The paper's trace shape on the serial compatibility geometry.
		{Name: "financial1-serial", Scheme: sim.SchemeTPFTL, Workload: "Financial1",
			Space: space, Requests: 30_000, Seed: 42, Channels: serialChannels, Dies: serialDies, QD: 1, Smoke: true},
		{Name: "financial1-serial-dftl", Scheme: sim.SchemeDFTL, Workload: "Financial1",
			Space: space, Requests: 30_000, Seed: 42, Channels: serialChannels, Dies: serialDies, QD: 1},
		{Name: "financial1-serial-sftl", Scheme: sim.SchemeSFTL, Workload: "Financial1",
			Space: space, Requests: 30_000, Seed: 42, Channels: serialChannels, Dies: serialDies, QD: 1},
		{Name: "financial1-qd8-4ch", Scheme: sim.SchemeTPFTL, Workload: "Financial1",
			Space: space, Requests: 30_000, Seed: 42, Channels: wideChannels, Dies: wideDies, QD: 8},
		// Sequential reads drive TPFTL's prefetch paths.
		{Name: "seq-read-serial", Scheme: sim.SchemeTPFTL, Workload: "seqread",
			Space: space, Requests: 40_000, Seed: 3, Channels: serialChannels, Dies: serialDies, QD: 1},
		// The closed-loop saturation ladder: the identical device-bound
		// random-read trace pushed through the sharded host at 1, 2 and 4
		// shards (2 clients per shard, queue depth 8 per shard). The three
		// cases share a seed, so sim_ops_per_wall_sec across them is the
		// host frontend's wall-clock scaling curve; on a multi-core machine
		// the 4-shard cell should approach 4x the 1-shard cell.
		{Name: "saturate-shard1", Scheme: sim.SchemeTPFTL, Workload: "randread",
			Space: 4 * space, Requests: 48_000, Seed: 11, Channels: wideChannels, Dies: wideDies,
			QD: 8, Shards: 1, Clients: 2},
		{Name: "saturate-shard2", Scheme: sim.SchemeTPFTL, Workload: "randread",
			Space: 4 * space, Requests: 48_000, Seed: 11, Channels: wideChannels, Dies: wideDies,
			QD: 8, Shards: 2, Clients: 4},
		{Name: "saturate-shard4", Scheme: sim.SchemeTPFTL, Workload: "randread",
			Space: 4 * space, Requests: 48_000, Seed: 11, Channels: wideChannels, Dies: wideDies,
			QD: 8, Shards: 4, Clients: 8},
		// Streamed replay of a synthetic binary trace far larger than memory
		// would allow as a slice. Requests is set from -stream-requests
		// (default 100M); the trace file is generated once into the system
		// temp directory and reused. The wall-clock window includes reading
		// and decoding the trace, so sim_ops_per_wall_sec here is the
		// end-to-end ingest throughput the streaming engine sustains.
		{Name: "stream-replay", Scheme: sim.SchemeTPFTL, Workload: "seqread",
			Space: space, Seed: 3, Channels: serialChannels, Dies: serialDies, QD: 1, Stream: true},
	}
}

// caseResult is one measured cell, as serialized into the report.
type caseResult struct {
	Name     string `json:"name"`
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	Channels int    `json:"channels"`
	Dies     int    `json:"dies"`
	QD       int    `json:"qd"`
	Shards   int    `json:"shards,omitempty"`
	Clients  int    `json:"clients,omitempty"`
	Requests int    `json:"requests"`
	Seed     int64  `json:"seed"`

	SimOps           int64   `json:"sim_ops"` // simulated page accesses
	WallNS           int64   `json:"wall_ns"` // best-of-runs measured window
	NsPerOp          float64 `json:"ns_per_op"`
	AllocsPerOp      float64 `json:"allocs_per_op"`
	BytesPerOp       float64 `json:"bytes_per_op"`
	SimOpsPerWallSec float64 `json:"sim_ops_per_wall_sec"`

	// Simulated-metric tripwires: engine optimizations must not move these.
	// For sharded cases EventHash carries the host's merged digest (the
	// per-shard event hashes folded order-insensitively across shards).
	HitRatio     float64 `json:"hit_ratio"`
	SimElapsedNS int64   `json:"sim_elapsed_ns"`
	EventHash    string  `json:"event_hash"`

	// Simulated response-time percentiles (ns), pooled over all -runs
	// repetitions via Metrics.Merge. Simulated metrics, so deterministic —
	// they move only when device behavior changes, never with wall time.
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	MaxNS  int64 `json:"max_ns"`

	// ReqsPerWallSec is trace requests retired per wall second (SimOps counts
	// page accesses; multi-page requests make the two differ).
	ReqsPerWallSec float64 `json:"requests_per_wall_sec"`
	// PeakRSSBytes is the high-water resident footprint (runtime MemStats
	// Sys - HeapReleased) sampled during the first measured run. For the
	// stream-replay case it is the bounded-memory tripwire: it must not grow
	// with -stream-requests.
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

// report is the on-disk JSON shape.
type report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	// GOMAXPROCS records the CPU budget wall times were measured under —
	// essential context for the saturate-shard* scaling cells, which can
	// only show wall-clock speedup when more than one CPU is available.
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note,omitempty"`
	// Runs is the best-of count wall times were taken over.
	Runs    int          `json:"runs"`
	Results []caseResult `json:"results"`
	// Baseline embeds an earlier report's results (same matrix, pre-change
	// build) so one file carries the comparison.
	Baseline *baselineSection `json:"baseline,omitempty"`
}

type baselineSection struct {
	Note    string       `json:"note,omitempty"`
	Results []caseResult `json:"results"`
}

func main() {
	var (
		out          = flag.String("out", "", "write the JSON report to this file (default stdout)")
		note         = flag.String("note", "", "free-form note recorded in the report")
		baseline     = flag.String("baseline", "", "embed the results of this earlier report as the baseline section")
		baselineNote = flag.String("baseline-note", "", "note recorded on the embedded baseline")
		keepBaseline = flag.Bool("keep-baseline", false, "carry the baseline section of the existing -out file into the new report")
		runs         = flag.Int("runs", 1, "wall-time repetitions per case (best is reported)")
		smoke        = flag.Bool("smoke", false, "run only the smoke subset of the matrix, at reduced request counts")
		only         = flag.String("case", "", "run only the named case")
		minOps       = flag.Float64("minops", 0, "fail (exit 1) if any smoke case's sim_ops_per_wall_sec falls below this floor")
		streamReqs   = flag.Int("stream-requests", 100_000_000, "trace length of the stream-replay case")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the measured runs to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile taken after the measured runs to this file")
		telAddr      = flag.String("telemetry-addr", "", "serve live telemetry over HTTP on this address while cases run (Prometheus /metrics, JSON /snapshot, pprof under /debug); measured numbers are unaffected")
	)
	flag.Parse()
	if err := run(*out, *note, *baseline, *baselineNote, *keepBaseline, *runs, *smoke, *only, *minOps, *streamReqs, *cpuprofile, *memprofile, *telAddr); err != nil {
		fmt.Fprintln(os.Stderr, "ftlbench:", err)
		os.Exit(1)
	}
}

func run(out, note, baseline, baselineNote string, keepBaseline bool, runs int, smoke bool, only string, minOps float64, streamReqs int, cpuprofile, memprofile, telAddr string) error {
	if runs < 1 {
		runs = 1
	}
	var plane *live.Plane
	if telAddr != "" {
		plane = live.NewPlane(0, 0)
		tel, err := telemetry.Start(telemetry.Options{Addr: telAddr, Plane: plane})
		if err != nil {
			return err
		}
		defer tel.Finish()
	}
	cases := matrix()
	selected := cases[:0]
	for _, c := range cases {
		if c.Stream {
			c.Requests = streamReqs
		}
		if smoke {
			if !c.Smoke {
				continue
			}
			c.Requests /= 4
		}
		if only != "" && c.Name != only {
			continue
		}
		selected = append(selected, c)
	}
	if len(selected) == 0 {
		return fmt.Errorf("no cases selected (case %q, smoke %v)", only, smoke)
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := report{
		Schema:     "repro/ftlbench/v4",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       note,
		Runs:       runs,
	}
	for _, c := range selected {
		r, err := runCase(c, runs, plane)
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ops/s  %7.1f ns/op  %6.2f allocs/op  %8.1f B/op  Hr %.4f  rss %4.0f MB\n",
			r.Name, r.SimOpsPerWallSec, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.HitRatio,
			float64(r.PeakRSSBytes)/(1<<20))
		rep.Results = append(rep.Results, r)
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	if baseline != "" {
		data, err := os.ReadFile(baseline)
		if err != nil {
			return err
		}
		var base report
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("baseline %s: %w", baseline, err)
		}
		bn := baselineNote
		if bn == "" {
			bn = base.Note
		}
		rep.Baseline = &baselineSection{Note: bn, Results: base.Results}
	} else if keepBaseline && out != "" {
		// `make bench` refreshes the committed report in place; the baseline
		// it carries (the pre-optimization build's numbers) cannot be
		// regenerated from this source tree, so it is copied forward.
		data, err := os.ReadFile(out)
		if err != nil {
			return fmt.Errorf("-keep-baseline: %w", err)
		}
		var prev report
		if err := json.Unmarshal(data, &prev); err != nil {
			return fmt.Errorf("-keep-baseline %s: %w", out, err)
		}
		if note == "" {
			rep.Note = prev.Note
		}
		rep.Baseline = prev.Baseline
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(out, data, 0o644)
	}
	if err != nil {
		return err
	}

	if minOps > 0 {
		var bad []string
		for _, r := range rep.Results {
			if r.SimOpsPerWallSec < minOps {
				bad = append(bad, fmt.Sprintf("%s: %.0f ops/s < floor %.0f", r.Name, r.SimOpsPerWallSec, minOps))
			}
		}
		if len(bad) > 0 {
			return fmt.Errorf("throughput floor violated:\n  %s", strings.Join(bad, "\n  "))
		}
	}
	return nil
}

// buildCase constructs a fresh formatted, preconditioned device plus the
// request sequence for one cell. Everything here is excluded from the
// measured window.
func buildCase(c benchCase) (*ftl.Device, []trace.Request, error) {
	cfg := ftl.DefaultConfig(c.Space)
	cfg.CacheBytes = ftl.DefaultCacheBytes(c.Space)
	cfg.Channels = c.Channels
	cfg.Dies = c.Dies

	tr, err := sim.NewTranslator(c.Scheme, cfg.CacheBytes, cfg.LogicalPages(), nil)
	if err != nil {
		return nil, nil, err
	}
	dev, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		return nil, nil, err
	}
	if err := dev.Format(); err != nil {
		return nil, nil, err
	}

	pageBytes := int64(dev.Config().PageSize)
	footprint := c.Space * 3 / 4
	var reqs []trace.Request
	switch c.Workload {
	case "randread":
		rng := rand.New(rand.NewSource(c.Seed))
		pages := footprint / pageBytes
		reqs = make([]trace.Request, c.Requests)
		for i := range reqs {
			reqs[i] = trace.Request{Offset: rng.Int63n(pages) * pageBytes, Length: pageBytes}
		}
	case "seqread":
		pages := footprint / pageBytes
		reqs = make([]trace.Request, c.Requests)
		const span = 8 // pages per request
		for i := range reqs {
			start := (int64(i) * span) % (pages - span)
			reqs[i] = trace.Request{Offset: start * pageBytes, Length: span * pageBytes}
		}
	default:
		profile, err := workload.ProfileByName(c.Workload)
		if err != nil {
			return nil, nil, err
		}
		profile = profile.Scale(c.Space)
		fp := profile.FootprintBytes()
		if fp > 0 {
			footprint = fp
		}
		reqs, err = workload.Generate(profile, c.Requests, c.Seed)
		if err != nil {
			return nil, nil, err
		}
	}

	// One preconditioning pass over the footprint maps it and brings GC to
	// steady state, so the measured phase exercises the organic mix of cache
	// work, flash traffic and collection.
	footPages := footprint / pageBytes
	if err := dev.PreconditionRange(int(footPages), footPages, c.Seed+1); err != nil {
		return nil, nil, err
	}
	dev.ResetMetrics()
	return dev, reqs, nil
}

// buildShardCase constructs the sharded host for one saturate-shard* cell:
// the base config split across c.Shards devices, each formatted and
// preconditioned over its own image of the workload footprint. Everything
// here is excluded from the measured window.
func buildShardCase(c benchCase) (*host.Host, []trace.Request, error) {
	cfg := ftl.DefaultConfig(c.Space)
	cfg.CacheBytes = ftl.DefaultCacheBytes(c.Space)
	cfg.Channels = c.Channels
	cfg.Dies = c.Dies
	cfg.Seed = c.Seed
	lay, cfgs, err := host.ShardConfigs(cfg, c.Shards)
	if err != nil {
		return nil, nil, err
	}

	devs := make([]*ftl.Device, c.Shards)
	for s := range devs {
		tr, err := sim.NewTranslator(c.Scheme, cfgs[s].CacheBytes, cfgs[s].LogicalPages(), nil)
		if err != nil {
			return nil, nil, err
		}
		dev, err := ftl.NewDevice(cfgs[s], tr)
		if err != nil {
			return nil, nil, err
		}
		if err := dev.Format(); err != nil {
			return nil, nil, err
		}
		devs[s] = dev
	}

	if c.Workload != "randread" {
		return nil, nil, fmt.Errorf("shard cases use the randread synthetic, got %q", c.Workload)
	}
	pageBytes := int64(devs[0].Config().PageSize)
	footprint := c.Space * 3 / 4
	pages := footprint / pageBytes
	rng := rand.New(rand.NewSource(c.Seed))
	reqs := make([]trace.Request, c.Requests)
	for i := range reqs {
		reqs[i] = trace.Request{Offset: rng.Int63n(pages) * pageBytes, Length: pageBytes}
	}

	footPages := footprint / pageBytes
	for s, dev := range devs {
		image := lay.ImagePages(s, footPages)
		if err := dev.PreconditionRange(int(image), image, cfgs[s].Seed+1); err != nil {
			return nil, nil, err
		}
		dev.ResetMetrics()
	}
	h, err := host.New(lay, devs, host.Options{QueueDepth: c.QD})
	if err != nil {
		return nil, nil, err
	}
	return h, reqs, nil
}

// streamBatch is the admission batch size the stream-replay case reads its
// trace in: replay memory is O(streamBatch), independent of trace length.
const streamBatch = 4096

// streamTracePath is the cached synthetic binary trace for one stream cell,
// keyed by everything that determines its contents.
func streamTracePath(c benchCase) string {
	return filepath.Join(os.TempDir(),
		fmt.Sprintf("ftlbench-stream-%s-%d-%d-%d.ftr", c.Workload, c.Space, c.Requests, c.Seed))
}

// ensureStreamTrace generates the binary trace for c unless a cached file of
// the right length already exists, and returns its path. The workload is the
// same span-8 sequential-read synthetic buildCase materializes for "seqread",
// but written record-by-record: the trace never exists in memory, which is
// how a 100M-request file is produced on a small machine.
func ensureStreamTrace(c benchCase) (string, error) {
	if c.Workload != "seqread" {
		return "", fmt.Errorf("stream cases use the seqread synthetic, got %q", c.Workload)
	}
	path := streamTracePath(c)
	if st, err := trace.OpenBinary(path); err == nil {
		n := st.Records()
		st.Close()
		if n == int64(c.Requests) {
			return path, nil
		}
	}
	cfg := ftl.DefaultConfig(c.Space)
	pageBytes := int64(cfg.PageSize)
	pages := c.Space * 3 / 4 / pageBytes
	tmp, err := os.CreateTemp(os.TempDir(), "ftlbench-stream-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	defer tmp.Close()
	bw, err := trace.NewBinaryWriter(tmp, trace.BinaryHeader{
		Records:   int64(c.Requests),
		PageBytes: int(pageBytes),
	})
	if err != nil {
		return "", err
	}
	const span = 8 // pages per request, as in buildCase's seqread
	for i := 0; i < c.Requests; i++ {
		start := (int64(i) * span) % (pages - span)
		r := trace.Request{Offset: start * pageBytes, Length: span * pageBytes}
		if err := bw.WriteRequest(r); err != nil {
			return "", err
		}
	}
	if err := bw.Finish(); err != nil {
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// buildStreamCase constructs the device for a stream cell (identical to
// buildCase's device setup) and opens the cached binary trace. Everything
// here is excluded from the measured window; trace ingest is not.
func buildStreamCase(c benchCase, tracePath string) (*ftl.Device, *trace.Stream, error) {
	cfg := ftl.DefaultConfig(c.Space)
	cfg.CacheBytes = ftl.DefaultCacheBytes(c.Space)
	cfg.Channels = c.Channels
	cfg.Dies = c.Dies
	tr, err := sim.NewTranslator(c.Scheme, cfg.CacheBytes, cfg.LogicalPages(), nil)
	if err != nil {
		return nil, nil, err
	}
	dev, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		return nil, nil, err
	}
	if err := dev.Format(); err != nil {
		return nil, nil, err
	}
	pageBytes := int64(dev.Config().PageSize)
	footPages := c.Space * 3 / 4 / pageBytes
	if err := dev.PreconditionRange(int(footPages), footPages, c.Seed+1); err != nil {
		return nil, nil, err
	}
	dev.ResetMetrics()
	st, err := trace.OpenBinary(tracePath)
	if err != nil {
		return nil, nil, err
	}
	return dev, st, nil
}

// runCase measures one cell: allocations on the first run, wall time as the
// best of `runs` repetitions (each on a fresh device so cache state is
// identical). When plane is non-nil the cell's devices publish live epochs
// into it so an HTTP scraper can watch the matrix progress; the published
// counters never feed back into the measured simulation.
func runCase(c benchCase, runs int, plane *live.Plane) (caseResult, error) {
	res := caseResult{
		Name:     c.Name,
		Scheme:   string(c.Scheme),
		Workload: c.Workload,
		Channels: c.Channels,
		Dies:     c.Dies,
		QD:       c.QD,
		Shards:   c.Shards,
		Clients:  c.Clients,
		Requests: c.Requests,
		Seed:     c.Seed,
	}
	var tracePath string
	if c.Stream {
		var err error
		if tracePath, err = ensureStreamTrace(c); err != nil {
			return res, err
		}
	}
	var bestWall time.Duration
	var merged ftl.Metrics
	for r := 0; r < runs; r++ {
		var measure func() (ftl.Metrics, uint64, error)
		var cleanup func()
		var liveCell *live.Cell
		startRun := func(shards int) []*live.Cell {
			if plane == nil {
				return nil
			}
			cells := plane.StartRun(live.RunInfo{
				Scheme:        string(c.Scheme),
				Workload:      c.Name,
				Shards:        shards,
				TotalRequests: int64(c.Requests),
			})
			liveCell = cells[0]
			return cells
		}
		if c.Stream {
			dev, st, err := buildStreamCase(c, tracePath)
			if err != nil {
				return res, err
			}
			if cells := startRun(1); cells != nil {
				dev.SetLive(liveCell)
			}
			cleanup = func() { st.Close() }
			measure = func() (ftl.Metrics, uint64, error) {
				a := ssd.NewAdmitter(c.QD)
				a.SetLive(liveCell)
				buf := make([]trace.Request, streamBatch)
				for {
					n, err := st.Next(buf)
					for i := 0; i < n; i++ {
						if _, aerr := a.Admit(dev, buf[i]); aerr != nil {
							return ftl.Metrics{}, 0, aerr
						}
					}
					if err == io.EOF {
						break
					}
					if err != nil {
						return ftl.Metrics{}, 0, err
					}
				}
				dev.PublishLive()
				return dev.Metrics(), dev.Scheduler().EventHash(), nil
			}
		} else if c.Shards > 0 {
			h, reqs, err := buildShardCase(c)
			if err != nil {
				return res, err
			}
			if cells := startRun(c.Shards); cells != nil {
				h.SetLive(cells)
			}
			measure = func() (ftl.Metrics, uint64, error) {
				out, err := h.Replay(reqs, host.ReplayOptions{Clients: c.Clients})
				if err != nil {
					return ftl.Metrics{}, 0, err
				}
				return out.M, out.Digest, nil
			}
		} else {
			dev, reqs, err := buildCase(c)
			if err != nil {
				return res, err
			}
			if cells := startRun(1); cells != nil {
				dev.SetLive(liveCell)
			}
			measure = func() (ftl.Metrics, uint64, error) {
				if _, err := (ssd.Frontend{QueueDepth: c.QD, Live: liveCell}).Run(dev, reqs); err != nil {
					return ftl.Metrics{}, 0, err
				}
				dev.PublishLive()
				return dev.Metrics(), dev.Scheduler().EventHash(), nil
			}
		}

		var msBefore, msAfter runtime.MemStats
		var mw *memwatch.Watcher
		measureAllocs := r == 0
		if measureAllocs {
			mw = memwatch.Start(0)
			runtime.GC()
			runtime.ReadMemStats(&msBefore)
		}
		start := time.Now()
		m, hash, err := measure()
		wall := time.Since(start)
		if cleanup != nil {
			cleanup()
		}
		if err != nil {
			return res, err
		}
		var peakRSS uint64
		if measureAllocs {
			runtime.ReadMemStats(&msAfter)
			peakRSS = mw.Stop()
		}

		merged.Merge(&m)
		ops := m.PageAccesses()
		if ops <= 0 {
			return res, fmt.Errorf("no simulated ops recorded")
		}
		if measureAllocs {
			res.SimOps = ops
			res.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(ops)
			res.BytesPerOp = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(ops)
			res.HitRatio = m.Hr()
			res.SimElapsedNS = int64(m.Elapsed)
			res.EventHash = fmt.Sprintf("%016x", hash)
			res.PeakRSSBytes = int64(peakRSS)
		}
		if bestWall == 0 || wall < bestWall {
			bestWall = wall
		}
	}
	res.WallNS = bestWall.Nanoseconds()
	res.NsPerOp = float64(res.WallNS) / float64(res.SimOps)
	res.SimOpsPerWallSec = float64(res.SimOps) / bestWall.Seconds()
	res.ReqsPerWallSec = float64(c.Requests) / bestWall.Seconds()
	resp := merged.Phase(obs.PhaseResponse)
	res.P50NS = int64(resp.Quantile(0.50))
	res.P99NS = int64(resp.Quantile(0.99))
	res.P999NS = int64(resp.Quantile(0.999))
	res.MaxNS = int64(resp.Max())
	return res, nil
}
