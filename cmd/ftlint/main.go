// Command ftlint is this repository's static-analysis suite: seven
// repo-specific analyzers that keep known bug classes from coming back
// (global randomness, drifting cache accounting, swallowed flash errors,
// hardcoded geometry, allocations on the marked translation hot path,
// unguarded or allocating observability hooks on that same path, and
// non-exhaustive switches over the request-op enum).
//
// Two modes:
//
//	ftlint [packages]            standalone: load packages, analyze, print
//	go vet -vettool=ftlint ...   driven by go vet, one compilation unit at a
//	                             time (the mode `make lint` uses; it also
//	                             covers _test.go files)
//
// With no package arguments the standalone mode analyzes ./... . Exit code 1
// means findings were reported.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cacheaccount"
	"repro/internal/analysis/flasherr"
	"repro/internal/analysis/geometry"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/obscheck"
	"repro/internal/analysis/opswitch"
	"repro/internal/analysis/randsource"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		randsource.Analyzer,
		cacheaccount.Analyzer,
		flasherr.Analyzer,
		geometry.Analyzer,
		hotalloc.Analyzer,
		obscheck.Analyzer,
		opswitch.Analyzer,
	}
}

func main() {
	args := os.Args[1:]

	// The go vet driver protocol: identity, flag description, then one
	// invocation per compilation unit with a JSON config file.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			analysis.PrintVersion("ftlint")
			return
		case args[0] == "-flags" || args[0] == "--flags":
			analysis.PrintFlags()
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(analysis.RunUnit(args[0], analyzers()))
		}
	}

	// Standalone mode.
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "ftlint: unknown flag %s (ftlint takes only package patterns)\n", p)
			os.Exit(2)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		os.Exit(2)
	}
	exit := 0
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, analyzers())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Printf("%s: %s (%s)\n", f.Position, f.Message, f.Analyzer)
			exit = 1
		}
	}
	os.Exit(exit)
}
