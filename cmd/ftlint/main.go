// Command ftlint is this repository's static-analysis suite: ten
// repo-specific analyzers that keep known bug classes from coming back
// (global randomness, drifting cache accounting, swallowed flash errors,
// hardcoded geometry, allocations on the marked translation hot path,
// unguarded or allocating observability hooks on that same path,
// non-exhaustive switches over the request-op enum, order-sensitive map
// iteration, shared package-level state, and clock-discipline violations).
// The authoritative analyzer list lives in internal/analysis/registry;
// this command only drives it.
//
// Two modes:
//
//	ftlint [flags] [packages]    standalone: load packages, analyze, print
//	go vet -vettool=ftlint ...   driven by go vet, one compilation unit at a
//	                             time (the mode `make lint` uses; it also
//	                             covers _test.go files)
//
// Standalone flags:
//
//	-baseline file    tolerate findings listed in the baseline; report
//	                  entries whose finding no longer occurs as fixable
//	-write-baseline   regenerate the -baseline file from this run's findings
//	-audit            print per-analyzer baseline debt and exit
//	-json             emit the machine-readable JSON report
//	-sarif            emit SARIF 2.1.0
//	-o file           write the -json/-sarif report to file instead of stdout
//
// In vet mode the -baseline flag is forwarded by go vet; -baseline-stamp
// carries the baseline's content hash into the vet action cache key so a
// baseline edit invalidates cached unit results.
//
// With no package arguments the standalone mode analyzes ./... . Exit code
// 1 means new (non-baselined) findings were reported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/registry"
)

func main() {
	args := os.Args[1:]

	// The go vet driver protocol: identity, flag description, then one
	// invocation per compilation unit with a JSON config file.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			analysis.PrintVersion("ftlint")
			return
		case args[0] == "-flags" || args[0] == "--flags":
			analysis.PrintFlags()
			return
		}
	}

	fs := flag.NewFlagSet("ftlint", flag.ExitOnError)
	var (
		baselinePath  = fs.String("baseline", "", "path to lint-baseline.json; known findings are tolerated")
		baselineStamp = fs.String("baseline-stamp", "", "opaque baseline content hash (vet cache busting; otherwise unused)")
		writeBaseline = fs.Bool("write-baseline", false, "regenerate the -baseline file from this run's findings")
		audit         = fs.Bool("audit", false, "print per-analyzer baseline debt and exit")
		jsonOut       = fs.Bool("json", false, "emit the JSON report")
		sarifOut      = fs.Bool("sarif", false, "emit SARIF 2.1.0")
		outPath       = fs.String("o", "", "write the -json/-sarif report to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	_ = baselineStamp
	rest := fs.Args()

	// Vet mode: the remaining operand is the unit's JSON config.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(analysis.RunUnit(rest[0], *baselinePath, registry.All()))
	}

	os.Exit(standalone(rest, options{
		baselinePath:  *baselinePath,
		writeBaseline: *writeBaseline,
		audit:         *audit,
		jsonOut:       *jsonOut,
		sarifOut:      *sarifOut,
		outPath:       *outPath,
	}))
}

type options struct {
	baselinePath  string
	writeBaseline bool
	audit         bool
	jsonOut       bool
	sarifOut      bool
	outPath       string
}

func standalone(patterns []string, opts options) int {
	if (opts.writeBaseline || opts.audit) && opts.baselinePath == "" {
		fmt.Fprintln(os.Stderr, "ftlint: -write-baseline and -audit need -baseline <file>")
		return 2
	}

	if opts.audit {
		return auditBaseline(opts.baselinePath)
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}

	analyzers := registry.All()
	var all []analysis.Finding
	analyzed := make(map[string]bool) // absolute file paths this run saw
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
		all = append(all, findings...)
		for _, f := range pkg.Files {
			analyzed[pkg.Fset.Position(f.Pos()).Filename] = true
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		return a.Analyzer < b.Analyzer
	})

	if opts.writeBaseline {
		comment := "Known lint findings tolerated by make lint. Burn this down; never add to it without a review. Regenerate with: go run ./cmd/ftlint -baseline lint-baseline.json -write-baseline ./..."
		if err := analysis.WriteBaseline(opts.baselinePath, comment, all); err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
		fmt.Printf("ftlint: wrote %s (%d findings)\n", opts.baselinePath, len(all))
		return 0
	}

	fresh, baselined, root := all, []analysis.Finding(nil), wd
	if opts.baselinePath != "" {
		baseline, err := analysis.LoadBaseline(opts.baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
		root = baseline.Root
		var matched map[analysis.BaselineEntry]int
		fresh, matched = baseline.Filter(all)
		baselined = baselinedOf(all, fresh)
		analyzedRel := make(map[string]bool, len(analyzed))
		for f := range analyzed {
			analyzedRel[baseline.RelFile(f)] = true
		}
		for _, e := range baseline.Stale(matched, analyzedRel) {
			fmt.Fprintf(os.Stderr, "ftlint: stale baseline entry (fixable: the finding no longer occurs): %s %s: %s (x%d)\n",
				e.Analyzer, e.File, e.Message, e.Count)
		}
	}

	if opts.jsonOut || opts.sarifOut {
		out := io.Writer(os.Stdout)
		if opts.outPath != "" {
			f, err := os.Create(opts.outPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ftlint:", err)
				return 2
			}
			defer f.Close()
			out = f
		}
		write := analysis.WriteJSON
		if opts.sarifOut {
			write = analysis.WriteSARIF
		}
		if err := write(out, analyzers, fresh, baselined, root); err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
	} else {
		for _, f := range fresh {
			fmt.Printf("%s: %s (%s)\n", f.Position, f.Message, f.Analyzer)
		}
	}
	if len(fresh) > 0 {
		return 1
	}
	return 0
}

// baselinedOf recovers the baselined findings as the set difference
// all \ fresh, relying on Filter's order stability.
func baselinedOf(all, fresh []analysis.Finding) []analysis.Finding {
	var out []analysis.Finding
	i := 0
	for _, f := range all {
		if i < len(fresh) && f == fresh[i] {
			i++
			continue
		}
		out = append(out, f)
	}
	return out
}

// auditBaseline prints the per-analyzer debt scoreboard.
func auditBaseline(path string) int {
	baseline, err := analysis.LoadBaseline(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	debt := baseline.DebtByAnalyzer()
	names := make([]string, 0, len(debt))
	total := 0
	for name, n := range debt {
		names = append(names, name)
		total += n
	}
	sort.Strings(names)
	fmt.Printf("baseline debt (%s):\n", path)
	if len(names) == 0 {
		fmt.Println("  none — the baseline is empty")
		return 0
	}
	for _, name := range names {
		fmt.Printf("  %-14s %d\n", name, debt[name])
	}
	fmt.Printf("  %-14s %d\n", "total", total)
	return 0
}
