// Command ftlsim runs one FTL simulation and prints the paper's metrics.
//
// Examples:
//
//	ftlsim -scheme TPFTL -workload Financial1 -requests 300000
//	ftlsim -scheme DFTL -workload MSR-ts -scale 2147483648
//	ftlsim -scheme TPFTL -trace fin1.spc -format spc -space 536870912
//	ftlsim -scheme TPFTL -trace fin1.ftr -format binary -space 536870912
//	ftlsim -scheme TPFTL -variant bc -workload Financial1
//	ftlsim -scheme TPFTL -faults read=1e-4,program=1e-5
//	ftlsim -scheme TPFTL -faults cut=12000
//	ftlsim -scheme DFTL -cuts 50
//	ftlsim -scheme TPFTL -qd 8 -channels 4 -cpuprofile cpu.pb.gz
//	ftlsim -scheme TPFTL -shards 4 -clients 8 -qd 8 -channels 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	tpftl "repro"
	"repro/cmd/internal/memwatch"
	"repro/cmd/internal/telemetry"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// telemetryFlags groups the live-telemetry CLI knobs.
type telemetryFlags struct {
	addr        string        // HTTP scrape server address ("" = off)
	progress    bool          // periodic stderr progress line
	interval    time.Duration // sampler/progress period
	linger      time.Duration // keep serving after the run (until POST /quit)
	every       int64         // epoch cadence in served requests per shard
	recorderOut string        // write the flight-recorder dump here after the run
}

// armed reports whether any surface of the live plane was requested.
func (t telemetryFlags) armed() bool {
	return t.addr != "" || t.progress || t.recorderOut != ""
}

func main() {
	var (
		scheme    = flag.String("scheme", "TPFTL", "FTL scheme: TPFTL, DFTL, S-FTL, CDFTL, ZFTL, Optimal")
		wl        = flag.String("workload", "Financial1", "workload profile: Financial1, Financial2, MSR-ts, MSR-src, fstrim-heavy, database-fsync")
		requests  = flag.Int("requests", 300_000, "number of requests to generate")
		seed      = flag.Int64("seed", 42, "workload seed")
		scale     = flag.Int64("scale", 0, "override the workload's address space in bytes")
		cache     = flag.Int64("cache", 0, "mapping cache budget in bytes (0 = paper convention)")
		fraction  = flag.Float64("fraction", 0, "cache budget as a fraction of the full mapping table (overrides -cache)")
		warmup    = flag.Int("warmup", 0, "requests served before metrics reset (default requests/10)")
		precond   = flag.Float64("precondition", 1.5, "preconditioning passes over the workload footprint")
		traceFile = flag.String("trace", "", "replay a trace file instead of generating a workload")
		format    = flag.String("format", "spc", "trace file format: spc, msr, native, binary (binary streams in bounded memory)")
		batch     = flag.Int("stream-batch", 0, "requests per admission batch when streaming a binary trace (0 = default)")
		space     = flag.Int64("space", 0, "device capacity in bytes when replaying a trace")
		variant   = flag.String("variant", "", "TPFTL technique subset, e.g. \"rsbc\", \"bc\", \"-\" (default full)")
		gcPolicy  = flag.String("gc", "greedy", "GC victim policy: greedy, cost-benefit")
		wearLevel = flag.Int("wearlevel", 0, "static wear-leveling threshold in erases (0 = off)")
		faults    = flag.String("faults", "", "fault plan, e.g. \"read=1e-4,program=1e-5\" or \"cut=12000\" (cut= switches to the crash-recovery harness)")
		cuts      = flag.Int("cuts", 0, "verify crash recovery at this many random power-cut points instead of measuring")
		channels  = flag.Int("channels", ftl.DefaultChannels, "flash channels (parallel backend geometry)")
		dies      = flag.Int("dies", ftl.DefaultDies, "dies per channel")
		qd        = flag.Int("qd", 1, "queue depth: N requests in flight closed-loop; 0 replays arrival times open-loop (per shard when -shards is set)")
		shards    = flag.Int("shards", 0, "stripe the LPN space across N independent FTL instances behind the multi-queue host frontend (0 = legacy single-device path; 1 reproduces it bit-for-bit)")
		clients   = flag.Int("clients", 0, "concurrent submitter goroutines feeding the sharded host (default one per shard; simulated results are independent of it)")
		tplace    = flag.String("tplace", "striped", "translation-page placement on a multi-channel device: striped, pinned")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile taken after the run to this file")

		metricsOut      = flag.String("metrics-out", "", "stream JSONL metrics snapshots (counter deltas + per-phase latency quantiles) of the measured phase to this file")
		metricsInterval = flag.Int("metrics-interval", 1000, "measured requests between -metrics-out snapshots")
		traceOut        = flag.String("trace-out", "", "write the measured phase's flash-operation span trace (Chrome trace_event JSON, open in Perfetto) to this file")

		telemetryAddr     = flag.String("telemetry-addr", "", "serve live telemetry over HTTP on this address while the run is in flight: Prometheus text on /metrics, JSON on /snapshot, expvar + pprof under /debug (simulated results are bit-for-bit unaffected)")
		telemetryProgress = flag.Bool("progress", false, "print a periodic progress line (requests, req/s, ETA, peak RSS) to stderr")
		telemetryInterval = flag.Duration("telemetry-interval", 0, "sampler/progress period (default 2s)")
		telemetryLinger   = flag.Duration("telemetry-linger", 0, "keep the telemetry server alive this long after the run (or until POST /quit), so a scraper can read the final epochs")
		telemetryEvery    = flag.Int64("telemetry-every", 0, "served requests per shard between telemetry epochs (default 1024)")
		recorderOut       = flag.String("recorder-out", "", "write the per-shard flight-recorder dump (last N requests + GC events) to this file after the run")
	)
	flag.Parse()
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftlsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ftlsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	tf := telemetryFlags{
		addr:        *telemetryAddr,
		progress:    *telemetryProgress,
		interval:    *telemetryInterval,
		linger:      *telemetryLinger,
		every:       *telemetryEvery,
		recorderOut: *recorderOut,
	}
	if err := run(*scheme, *wl, *requests, *seed, *scale, *cache, *fraction,
		*warmup, *precond, *traceFile, *format, *batch, *space, *variant, *gcPolicy, *wearLevel,
		*faults, *cuts, *channels, *dies, *qd, *shards, *clients, *tplace,
		*metricsOut, *metricsInterval, *traceOut, tf); err != nil {
		fmt.Fprintln(os.Stderr, "ftlsim:", err)
		os.Exit(1)
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftlsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ftlsim:", err)
			os.Exit(1)
		}
	}
}

func run(scheme, wl string, requests int, seed, scale, cache int64, fraction float64,
	warmup int, precond float64, traceFile, format string, batch int, space int64, variant, gcPolicy string, wearLevel int,
	faults string, cuts, channels, dies, qd, shards, clients int, tplace string,
	metricsOut string, metricsInterval int, traceOut string, tf telemetryFlags) error {
	profile, err := workload.ProfileByName(wl)
	if err != nil {
		return err
	}
	opts := sim.Options{
		Scheme:        sim.Scheme(scheme),
		Profile:       profile,
		Requests:      requests,
		Seed:          seed,
		AddressSpace:  scale,
		CacheBytes:    cache,
		CacheFraction: fraction,
		Precondition:  precond,
		Channels:      channels,
		Dies:          dies,
		QueueDepth:    qd,
		OpenLoop:      qd == 0,
		Shards:        shards,
		Clients:       clients,
	}
	switch tplace {
	case "", "striped":
		opts.TransPlacement = ftl.TPStriped
	case "pinned":
		opts.TransPlacement = ftl.TPPinned
	default:
		return fmt.Errorf("unknown translation placement %q", tplace)
	}
	switch gcPolicy {
	case "", "greedy":
		opts.GCPolicy = ftl.GCGreedy
	case "cost-benefit", "costbenefit", "cb":
		opts.GCPolicy = ftl.GCCostBenefit
	default:
		return fmt.Errorf("unknown GC policy %q", gcPolicy)
	}
	opts.WearLevelThreshold = wearLevel
	if warmup == 0 {
		warmup = requests / 10
	}
	opts.ResetAfterWarmup = warmup

	if variant != "" {
		cfg := variantConfig(variant)
		opts.TPFTL = &cfg
	}

	var plan *tpftl.FaultPlan
	if faults != "" {
		if plan, err = tpftl.ParseFaultPlan(faults); err != nil {
			return err
		}
	}
	if cuts > 0 || (plan != nil && plan.CutAtOp > 0) {
		// Power-cut verification replaces the measurement run.
		if traceFile != "" {
			return fmt.Errorf("-cuts/-faults cut= verify generated workloads only (trace replay is not supported)")
		}
		if shards > 0 {
			return fmt.Errorf("-cuts/-faults cut= verify a single device (drop -shards)")
		}
		co := tpftl.CrashOptions{
			Scheme:         opts.Scheme,
			TPFTL:          opts.TPFTL,
			Profile:        opts.Profile,
			AddressSpace:   opts.AddressSpace,
			Requests:       requests,
			Seed:           seed,
			CacheBytes:     cache,
			Cuts:           cuts,
			Channels:       channels,
			Dies:           dies,
			TransPlacement: opts.TransPlacement,
		}
		if plan != nil {
			co.CutAtOp = plan.CutAtOp
			co.FaultProb = plan.ReadProb // one knob for all ops on the CLI path
		}
		rep, err := tpftl.RunCrash(co)
		if err != nil {
			return err
		}
		printCrashReport(rep)
		return nil
	}
	opts.Faults = plan

	if traceFile != "" {
		if space == 0 {
			return fmt.Errorf("-space is required with -trace (the paper sizes the SSD to the trace's address space)")
		}
		opts.AddressSpace = space
		if format == "binary" {
			// Binary traces are streamed from the file through the simulator
			// in fixed-size batches: memory stays O(batch), not O(trace).
			st, err := trace.OpenBinary(traceFile)
			if err != nil {
				return err
			}
			defer st.Close()
			opts.TraceStream = st
			opts.StreamBatch = batch
		} else {
			f, err := os.Open(traceFile)
			if err != nil {
				return err
			}
			defer f.Close()
			reqs, err := tpftl.ParseTrace(f, format)
			if err != nil {
				return err
			}
			opts.Trace = reqs
		}
	}

	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.MetricsOut = f
		opts.MetricsInterval = metricsInterval
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.TraceOut = f
	}

	var plane *live.Plane
	if tf.armed() {
		plane = live.NewPlane(tf.every, 0)
		opts.Telemetry = plane
	}

	mw := memwatch.Start(0)
	var tel *telemetry.T
	if plane != nil {
		var pw io.Writer
		if tf.progress {
			pw = os.Stderr
		}
		tel, err = telemetry.Start(telemetry.Options{
			Addr:     tf.addr,
			Plane:    plane,
			Progress: pw,
			Interval: tf.interval,
			Linger:   tf.linger,
			Watcher:  mw,
		})
		if err != nil {
			mw.Stop()
			return err
		}
	}
	res, err := tpftl.Run(opts)
	if tel != nil {
		if err != nil {
			// Post-mortem: the last admitted requests and scheduler events
			// of every shard, straight to stderr before we bail.
			fmt.Fprintln(os.Stderr, "ftlsim: run failed — flight recorder follows")
			tel.DumpOnError(os.Stderr)
		}
		tel.Finish()
	}
	peak := mw.Stop()
	if err != nil {
		return err
	}
	if tf.recorderOut != "" && plane != nil {
		f, err := os.Create(tf.recorderOut)
		if err != nil {
			return err
		}
		if err := plane.DumpRecorders(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	printResult(res)
	fmt.Fprintf(os.Stderr, "peak rss          %.1f MB\n", float64(peak)/(1<<20))
	return nil
}

// variantConfig builds a TPFTL configuration from an "rsbc" monogram
// ("-" or "" selects the bare two-level variant).
func variantConfig(v string) core.Config {
	cfg := core.Config{CompressEntries: true}
	for _, c := range strings.ToLower(v) {
		switch c {
		case 'r':
			cfg.RequestPrefetch = true
		case 's':
			cfg.SelectivePrefetch = true
		case 'b':
			cfg.BatchUpdate = true
		case 'c':
			cfg.CleanFirst = true
		}
	}
	return cfg
}

func printResult(r *tpftl.Result) {
	m := r.M
	name := string(r.Scheme)
	if r.Variant != "" && r.Variant != "rsbc" {
		name += "(" + r.Variant + ")"
	}
	fmt.Printf("scheme            %s\n", name)
	fmt.Printf("workload          %s\n", r.Workload)
	fmt.Printf("cache budget      %d B\n", r.CacheBytes)
	fmt.Printf("requests          %d (%d page reads, %d page writes)\n",
		m.Requests, m.PageReads, m.PageWrites)
	fmt.Println()
	fmt.Printf("hit ratio (Hr)            %6.2f%%\n", m.Hr()*100)
	fmt.Printf("dirty replacement (Prd)   %6.2f%%\n", m.Prd()*100)
	fmt.Printf("GC map hit ratio (Hgcr)   %6.2f%%\n", m.Hgcr()*100)
	fmt.Println()
	fmt.Printf("translation page reads    %8d (AT %d, GC %d)\n",
		m.TransReads(), m.TransReadsAT, m.TransReadsGC)
	fmt.Printf("translation page writes   %8d (AT %d, GC %d, migrated %d)\n",
		m.TransWrites(), m.TransWritesAT, m.TransWritesGC, m.GCTransMigrations)
	fmt.Printf("GC collections            %8d data, %d translation\n",
		m.GCDataCollections, m.GCTransCollections)
	fmt.Printf("Vd / Vt                   %8.2f / %.2f valid pages per victim\n", m.Vd(), m.Vt())
	fmt.Println()
	fmt.Printf("avg response time         %v (service %v, max %v)\n",
		m.AvgResponse(), m.AvgService(), m.MaxResponse)
	resp := m.Phase(obs.PhaseResponse)
	fmt.Printf("response percentiles      p50 %v, p90 %v, p99 %v, p99.9 %v\n",
		resp.Quantile(0.50), resp.Quantile(0.90), resp.Quantile(0.99), resp.Quantile(0.999))
	fmt.Println()
	fmt.Printf("latency by phase               count       mean        p99        max\n")
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		h := m.Phase(p)
		if h.Count == 0 {
			continue
		}
		fmt.Printf("  %-14s %15d %10v %10v %10v\n",
			p, h.Count, h.Mean(), h.Quantile(0.99), h.Max())
	}
	fmt.Println()
	fmt.Printf("write amplification       %8.3f\n", m.WriteAmplification())
	fmt.Printf("block erases              %8d\n", m.FlashErases)
	if m.TrimRequests > 0 || m.FlushRequests > 0 || m.FUAWrites > 0 {
		fmt.Println()
		if m.TrimRequests > 0 {
			fmt.Printf("trim requests             %8d (%d pages discarded)\n", m.TrimRequests, m.TrimmedPages)
		}
		if m.FlushRequests > 0 {
			fmt.Printf("flush barriers            %8d (%d dirty-entry writebacks)\n", m.FlushRequests, m.FlushStalls)
		}
		if m.FUAWrites > 0 {
			fmt.Printf("FUA writes                %8d\n", m.FUAWrites)
		}
	}
	if m.Channels > 1 || m.DiesPerChannel > 1 || m.MaxQueueDepth > 1 {
		fmt.Println()
		fmt.Printf("backend                   %d channels × %d dies, elapsed %v\n",
			m.Channels, m.DiesPerChannel, m.Elapsed)
		fmt.Printf("throughput                %8.0f req/s\n", m.Throughput())
		if m.MaxQueueDepth > 0 {
			fmt.Printf("queue depth               %8.2f avg, %d max\n",
				m.AvgQueueDepth(), m.MaxQueueDepth)
		}
		for ch := 0; ch < m.Channels; ch++ {
			fmt.Printf("channel %-2d utilization    %7.2f%%\n", ch, m.ChannelUtilization(ch)*100)
		}
	}
	if m.InjectedFaults > 0 {
		fmt.Println()
		fmt.Printf("injected faults           %8d\n", m.InjectedFaults)
		fmt.Printf("fault retries             %8d\n", m.FaultRetries)
	}
	if len(r.Shards) > 0 {
		fmt.Println()
		fmt.Printf("shards                    %8d (merged digest %016x)\n", len(r.Shards), r.Digest)
		fmt.Printf("  shard   requests     page accesses   avg response   hit ratio   mean depth   event hash\n")
		for _, s := range r.Shards {
			fmt.Printf("  %5d %10d %17d %14v %10.2f%% %12.2f   %016x\n",
				s.Shard, s.M.Requests, s.M.PageAccesses(), s.M.AvgResponse(),
				s.M.Hr()*100, s.FS.MeanDepth(), s.EventHash)
		}
	}
}

func printCrashReport(r *tpftl.CrashReport) {
	fmt.Printf("scheme            %s\n", r.Scheme)
	fmt.Printf("workload ops      %d flash operations\n", r.TotalOps)
	fmt.Printf("cut points        %d, all recovered exactly\n", len(r.Cuts))
	var scanned, injected int64
	var acked int
	for _, c := range r.Cuts {
		scanned += c.ScannedPages
		injected += c.Injected
		acked += c.AckedPages
	}
	n := int64(len(r.Cuts))
	if n > 0 {
		fmt.Printf("recovery scan     %d pages/cut average\n", scanned/n)
	}
	fmt.Printf("acked pages       %d verified durable\n", acked)
	if injected > 0 {
		fmt.Printf("injected faults   %d transient, all absorbed\n", injected)
	}
	for _, c := range r.Cuts {
		fmt.Printf("  cut@%-10d %5d requests served, %5d acked pages, %d scanned\n",
			c.CutOp, c.ServedRequests, c.AckedPages, c.ScannedPages)
	}
}
