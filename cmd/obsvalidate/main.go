// Command obsvalidate checks observability artifacts against their schemas:
// -metrics JSONL snapshot streams (see obs.ValidateMetricsJSONL) and -trace
// Chrome trace_event JSON files (see obs.ValidateTrace). It exits non-zero
// on the first violation, printing the offending line or event. make
// obs-smoke runs it over a freshly traced simulation so a schema regression
// fails CI instead of surfacing as an unopenable Perfetto file.
//
// Usage:
//
//	obsvalidate -metrics out.jsonl -trace run.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	var (
		metrics = flag.String("metrics", "", "JSONL metrics snapshot stream to validate")
		trace   = flag.String("trace", "", "Chrome trace_event JSON file to validate")
	)
	flag.Parse()
	if *metrics == "" && *trace == "" {
		fmt.Fprintln(os.Stderr, "obsvalidate: nothing to do; pass -metrics and/or -trace")
		os.Exit(2)
	}
	if *metrics != "" {
		f, err := os.Open(*metrics)
		if err != nil {
			fatal(err)
		}
		n, err := obs.ValidateMetricsJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *metrics, err))
		}
		fmt.Printf("%s: %d snapshot records OK\n", *metrics, n)
	}
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fatal(err)
		}
		n, err := obs.ValidateTrace(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *trace, err))
		}
		fmt.Printf("%s: %d trace events OK\n", *trace, n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsvalidate:", err)
	os.Exit(1)
}
