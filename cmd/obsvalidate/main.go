// Command obsvalidate checks observability artifacts against their schemas:
// -metrics JSONL snapshot streams (see obs.ValidateMetricsJSONL), -trace
// Chrome trace_event JSON files (see obs.ValidateTrace), -prom Prometheus
// text expositions (see live.ValidatePrometheus, with -prom-prev enforcing
// counter monotonicity across two scrapes), and -recorder flight-recorder
// dumps (see live.ValidateRecorderDump). It exits non-zero on the first
// violation, printing the offending line or event. make obs-smoke and make
// obs-live-smoke run it over freshly produced artifacts so a schema
// regression fails CI instead of surfacing as an unopenable Perfetto file or
// an unscrapable endpoint.
//
// -scrape fetches a URL over HTTP (retrying until the server is up) and
// validates the body as a Prometheus exposition; -o saves the body so a later
// -prom/-prom-prev pair can check monotonicity. -post issues a POST (also
// retried) — the live telemetry server's /quit endpoint ends a -telemetry-
// linger window with it.
//
// Usage:
//
//	obsvalidate -metrics out.jsonl -trace run.json
//	obsvalidate -scrape http://127.0.0.1:9090/metrics -o scrape1.prom
//	obsvalidate -prom scrape2.prom -prom-prev scrape1.prom
//	obsvalidate -recorder flight.txt
//	obsvalidate -post http://127.0.0.1:9090/quit
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/live"
)

// scrapeWindow bounds how long -scrape/-post retry while the target server
// comes up (the smoke target starts ftlsim in the background and races it).
const scrapeWindow = 15 * time.Second

func main() {
	var (
		metrics  = flag.String("metrics", "", "JSONL metrics snapshot stream to validate")
		trace    = flag.String("trace", "", "Chrome trace_event JSON file to validate")
		prom     = flag.String("prom", "", "Prometheus text exposition file to validate")
		promPrev = flag.String("prom-prev", "", "earlier exposition of the same target; counters in -prom must not have decreased")
		recorder = flag.String("recorder", "", "flight-recorder dump file to validate")
		scrape   = flag.String("scrape", "", "URL to fetch (retrying until the server answers) and validate as a Prometheus exposition")
		out      = flag.String("o", "", "save the -scrape body to this file")
		post     = flag.String("post", "", "URL to POST to, retrying until the server answers (e.g. the live server's /quit)")
	)
	flag.Parse()
	if *metrics == "" && *trace == "" && *prom == "" && *recorder == "" && *scrape == "" && *post == "" {
		fmt.Fprintln(os.Stderr, "obsvalidate: nothing to do; pass -metrics, -trace, -prom, -recorder, -scrape and/or -post")
		os.Exit(2)
	}
	if *metrics != "" {
		f, err := os.Open(*metrics)
		if err != nil {
			fatal(err)
		}
		n, err := obs.ValidateMetricsJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *metrics, err))
		}
		fmt.Printf("%s: %d snapshot records OK\n", *metrics, n)
	}
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fatal(err)
		}
		n, err := obs.ValidateTrace(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *trace, err))
		}
		fmt.Printf("%s: %d trace events OK\n", *trace, n)
	}
	if *scrape != "" {
		body, err := fetch(*scrape)
		if err != nil {
			fatal(err)
		}
		if *out != "" {
			if err := os.WriteFile(*out, body, 0o644); err != nil {
				fatal(err)
			}
		}
		exp, err := live.ValidatePrometheus(strings.NewReader(string(body)))
		if err != nil {
			fatal(fmt.Errorf("scrape %s: %w", *scrape, err))
		}
		fmt.Printf("%s: %d series OK\n", *scrape, len(exp.Samples))
	}
	if *prom != "" {
		cur, err := validateProm(*prom)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d series OK\n", *prom, len(cur.Samples))
		if *promPrev != "" {
			prev, err := validateProm(*promPrev)
			if err != nil {
				fatal(err)
			}
			if err := live.CheckCounterMonotonic(prev, cur); err != nil {
				fatal(fmt.Errorf("%s vs %s: %w", *prom, *promPrev, err))
			}
			fmt.Printf("%s: counters monotonic vs %s\n", *prom, *promPrev)
		}
	}
	if *recorder != "" {
		f, err := os.Open(*recorder)
		if err != nil {
			fatal(err)
		}
		n, err := live.ValidateRecorderDump(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *recorder, err))
		}
		fmt.Printf("%s: %d flight records OK\n", *recorder, n)
	}
	if *post != "" {
		if err := postURL(*post); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: POST OK\n", *post)
	}
}

// validateProm parses and validates one exposition file.
func validateProm(path string) (*live.Exposition, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	exp, err := live.ValidatePrometheus(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return exp, nil
}

// fetch GETs url, retrying within scrapeWindow so callers can race a server
// that is still binding its port.
func fetch(url string) ([]byte, error) {
	deadline := time.Now().Add(scrapeWindow)
	var lastErr error
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				return nil, rerr
			}
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
			}
			return body, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("GET %s: %w", url, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// postURL POSTs to url with the same retry policy as fetch.
func postURL(url string) error {
	deadline := time.Now().Add(scrapeWindow)
	var lastErr error
	for {
		resp, err := http.Post(url, "text/plain", nil)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("POST %s: %s", url, resp.Status)
			}
			return nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return fmt.Errorf("POST %s: %w", url, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsvalidate:", err)
	os.Exit(1)
}
