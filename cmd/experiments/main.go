// Command experiments regenerates every table and figure of the TPFTL
// paper's evaluation (§5) and prints them as text tables.
//
// Experiments (-exp):
//
//	table2  Table 2  — DFTL's deviation from the optimal FTL
//	fig1    Fig. 1   — distribution of entries in DFTL's mapping cache
//	fig2    Fig. 2b  — cached translation pages over time (Financial1)
//	fig6    Fig. 6   — scheme comparison: Prd, Hr, translation I/O,
//	                   response time, write amplification
//	fig7    Fig. 7   — block erase counts; ablation Prd and hit ratio
//	fig8    Fig. 8   — ablation response time / WA; cache-size sweep Prd
//	fig9    Fig. 9   — cache-size sweep: hit ratio, response time, WA
//	fig10   Fig. 10  — cache space-utilization improvement over DFTL
//	model   Eq. 1-13 — analytic model evaluated on measured parameters
//	all     everything above
//
// The default scale (300k requests, MSR workloads at 2 GB) regenerates the
// paper's shapes in minutes; -requests and -msrscale restore full scale.
// -allschemes adds the related-work schemes (CDFTL, ZFTL) to the comparison
// and -json writes machine-readable results alongside the tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analytic"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table2, fig1, fig2, fig6, fig7, fig8, fig9, fig10, model")
		requests = flag.Int("requests", 0, "requests per run (default 300000)")
		msrScale = flag.Int64("msrscale", 0, "MSR address-space scale in bytes (default 2 GiB; 0 keeps default, use 17179869184 for the paper's 16 GiB)")
		seed     = flag.Int64("seed", 0, "workload seed (default 42)")
		allSch   = flag.Bool("allschemes", false, "include CDFTL and ZFTL in the comparison")
		jsonOut  = flag.String("json", "", "also write machine-readable results to this file")
	)
	flag.Parse()
	e := sim.ExpConfig{Requests: *requests, MSRScale: *msrScale, Seed: *seed, AllSchemes: *allSch}.Defaults()
	collect := newCollector(*jsonOut)
	defer collect.write()

	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]

	start := time.Now()
	run := func(name string, fn func(sim.ExpConfig) error) {
		if !all && !want[name] {
			return
		}
		t0 := time.Now()
		if err := fn(e); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	// fig6/fig7a/table2 share one comparison sweep; run it once.
	if all || want["table2"] || want["fig6"] || want["fig7"] {
		t0 := time.Now()
		cells, err := e.RunComparison()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: comparison:", err)
			os.Exit(1)
		}
		collect.add("comparison", cells)
		if all || want["fig6"] {
			printFig6(cells)
		}
		if all || want["fig7"] {
			printFig7a(cells)
		}
		if all || want["table2"] {
			printTable2(cells)
			collect.add("table2", sim.Table2(cells))
		}
		fmt.Printf("[comparison done in %v]\n\n", time.Since(t0).Round(time.Millisecond))
	}
	run("fig1", func(e sim.ExpConfig) error { return runFig1(e) })
	run("fig2", func(e sim.ExpConfig) error { return runFig2(e) })
	if all || want["fig7"] || want["fig8"] {
		t0 := time.Now()
		cells, err := e.RunAblation()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: ablation:", err)
			os.Exit(1)
		}
		printAblation(cells)
		collect.add("ablation", cells)
		fmt.Printf("[ablation done in %v]\n\n", time.Since(t0).Round(time.Millisecond))
	}
	if all || want["fig8"] || want["fig9"] {
		t0 := time.Now()
		cells, err := e.RunCacheSweep()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: sweep:", err)
			os.Exit(1)
		}
		printSweep(cells)
		collect.add("cacheSweep", cells)
		fmt.Printf("[cache sweep done in %v]\n\n", time.Since(t0).Round(time.Millisecond))
	}
	run("fig10", func(e sim.ExpConfig) error { return runFig10(e) })
	run("model", func(e sim.ExpConfig) error { return runModel(e) })

	fmt.Printf("total %v\n", time.Since(start).Round(time.Millisecond))
}

func printFig6(cells []sim.ComparisonCell) {
	workloads := sim.WorkloadsOf(cells)
	schemes := sim.SchemesOf(cells)
	byKey := map[string]map[sim.Scheme]sim.ComparisonCell{}
	for _, c := range cells {
		if byKey[c.Workload] == nil {
			byKey[c.Workload] = map[sim.Scheme]sim.ComparisonCell{}
		}
		byKey[c.Workload][c.Scheme] = c
	}
	header := func(title string) {
		fmt.Println(title)
		fmt.Printf("%-12s", "workload")
		for _, s := range schemes {
			fmt.Printf("%12s", s)
		}
		fmt.Println()
	}
	row := func(w string, get func(sim.ComparisonCell) string) {
		fmt.Printf("%-12s", w)
		for _, s := range schemes {
			fmt.Printf("%12s", get(byKey[w][s]))
		}
		fmt.Println()
	}

	header("Fig. 6a — probability of replacing a dirty entry")
	for _, w := range workloads {
		row(w, func(c sim.ComparisonCell) string { return fmt.Sprintf("%.1f%%", c.Prd*100) })
	}
	fmt.Println()

	header("Fig. 6b — cache hit ratio")
	for _, w := range workloads {
		row(w, func(c sim.ComparisonCell) string { return fmt.Sprintf("%.1f%%", c.Hr*100) })
	}
	fmt.Println()

	norm := sim.NormalizeToDFTL(cells, func(c sim.ComparisonCell) float64 { return float64(c.TReads) })
	header("Fig. 6c — translation page reads (normalized to DFTL)")
	for _, w := range workloads {
		row(w, func(c sim.ComparisonCell) string { return fmt.Sprintf("%.3f", norm[w][c.Scheme]) })
	}
	fmt.Println()

	norm = sim.NormalizeToDFTL(cells, func(c sim.ComparisonCell) float64 { return float64(c.TWrites) })
	header("Fig. 6d — translation page writes (normalized to DFTL)")
	for _, w := range workloads {
		row(w, func(c sim.ComparisonCell) string { return fmt.Sprintf("%.3f", norm[w][c.Scheme]) })
	}
	fmt.Println()

	norm = sim.NormalizeToDFTL(cells, func(c sim.ComparisonCell) float64 { return float64(c.Resp) })
	header("Fig. 6e — system response time (normalized to DFTL)")
	for _, w := range workloads {
		row(w, func(c sim.ComparisonCell) string { return fmt.Sprintf("%.3f", norm[w][c.Scheme]) })
	}
	fmt.Println()

	header("Fig. 6f — write amplification")
	for _, w := range workloads {
		row(w, func(c sim.ComparisonCell) string { return fmt.Sprintf("%.2f", c.WA) })
	}
	fmt.Println()
}

func printFig7a(cells []sim.ComparisonCell) {
	workloads := sim.WorkloadsOf(cells)
	schemes := sim.SchemesOf(cells)
	norm := sim.NormalizeToDFTL(cells, func(c sim.ComparisonCell) float64 { return float64(c.Erases) })
	fmt.Println("Fig. 7a — block erase count (normalized to DFTL)")
	fmt.Printf("%-12s", "workload")
	for _, s := range schemes {
		fmt.Printf("%12s", s)
	}
	fmt.Println()
	for _, w := range workloads {
		fmt.Printf("%-12s", w)
		for _, s := range schemes {
			fmt.Printf("%12.3f", norm[w][s])
		}
		fmt.Println()
	}
	fmt.Println()
}

func printTable2(cells []sim.ComparisonCell) {
	fmt.Println("Table 2 — deviations of DFTL from the optimal FTL")
	fmt.Printf("%-12s %12s %12s\n", "workload", "performance", "erasure")
	for _, r := range sim.Table2(cells) {
		fmt.Printf("%-12s %11.1f%% %11.1f%%\n", r.Workload, r.Performance*100, r.Erasure*100)
	}
	fmt.Println()
}

func runFig1(e sim.ExpConfig) error {
	results, err := e.RunCacheDistribution()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 1a — average number of entries in each cached translation page (DFTL)")
	fmt.Printf("%-12s %10s %10s %10s\n", "workload", "min", "mean", "max")
	for _, r := range results {
		min, max, sum := 1e18, 0.0, 0.0
		for _, v := range r.AvgEntriesPerTP {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		mean := 0.0
		if n := len(r.AvgEntriesPerTP); n > 0 {
			mean = sum / float64(n)
		} else {
			min = 0
		}
		fmt.Printf("%-12s %10.1f %10.1f %10.1f\n", r.Workload, min, mean, max)
	}
	fmt.Println()
	fmt.Println("Fig. 1b — CDF of dirty entries per cached translation page (DFTL)")
	fmt.Printf("%-12s %10s %14s %14s %14s\n", "workload", "mean", "P(≤1 dirty)", "P(≤5 dirty)", "P(≤15 dirty)")
	for _, r := range results {
		at := func(k int) float64 {
			if len(r.DirtyCDF) == 0 {
				return 0
			}
			if k >= len(r.DirtyCDF) {
				k = len(r.DirtyCDF) - 1
			}
			return r.DirtyCDF[k]
		}
		fmt.Printf("%-12s %10.2f %13.1f%% %13.1f%% %13.1f%%\n",
			r.Workload, r.MeanDirtyPerTP, at(1)*100, at(5)*100, at(15)*100)
	}
	fmt.Println()
	return nil
}

func runFig2(e sim.ExpConfig) error {
	r, err := e.RunSpatialLocality()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 2b — cached translation pages in DFTL over time (Financial1)")
	// Bucket the series; min/max per bucket expose the dips that mark
	// sequential phases (the paper's ovals).
	n := len(r.TPNodes)
	if n == 0 {
		fmt.Println("(no samples)")
		return nil
	}
	buckets := 20
	if n < buckets {
		buckets = n
	}
	fmt.Printf("%14s %8s %8s %8s\n", "page accesses", "min", "mean", "max")
	for b := 0; b < buckets; b++ {
		lo, hi := b*n/buckets, (b+1)*n/buckets
		min, max, sum := 1<<30, 0, 0
		for i := lo; i < hi; i++ {
			v := r.TPNodes[i]
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		fmt.Printf("%14d %8d %8.1f %8d\n", r.PageAccesses[lo], min, float64(sum)/float64(hi-lo), max)
	}
	fmt.Println()
	return nil
}

func printAblation(cells []sim.AblationCell) {
	fmt.Println("Figs. 7b/7c/8a/8b — benefits of each TPFTL technique (Financial1)")
	fmt.Printf("%-8s %10s %10s %14s %8s\n", "variant", "Prd", "hit ratio", "resp time", "WA")
	for _, c := range cells {
		fmt.Printf("%-8s %9.1f%% %9.1f%% %14v %8.2f\n",
			c.Variant, c.Prd*100, c.Hr*100, c.Resp.Round(time.Microsecond), c.WA)
	}
	fmt.Println()
}

func printSweep(cells []sim.SweepCell) {
	sim.SortSweep(cells)
	fmt.Println("Figs. 8c/9 — impact of cache sizes on TPFTL")
	fmt.Printf("%-12s %10s %10s %10s %14s %8s\n", "workload", "cache", "Prd", "hit ratio", "resp time", "WA")
	for _, c := range cells {
		fmt.Printf("%-12s %10s %9.1f%% %9.1f%% %14v %8.2f\n",
			c.Workload, fracName(c.Fraction), c.Prd*100, c.Hr*100, c.Resp.Round(time.Microsecond), c.WA)
	}
	fmt.Println()
}

func runFig10(e sim.ExpConfig) error {
	cells, err := e.RunSpaceUtilization()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 10 — improvement of cache space utilization over DFTL")
	fmt.Printf("%-12s %10s %14s\n", "workload", "cache", "improvement")
	for _, c := range cells {
		fmt.Printf("%-12s %10s %13.1f%%\n", c.Workload, fracName(c.Fraction), c.Improvement*100)
	}
	fmt.Println()
	return nil
}

func runModel(e sim.ExpConfig) error {
	// Evaluate the §3.1 models on measured DFTL parameters (Financial1).
	r, err := sim.Run(sim.Options{
		Scheme:           sim.SchemeDFTL,
		Profile:          workload.Financial1(),
		Requests:         e.Requests,
		Seed:             e.Seed,
		ResetAfterWarmup: e.Warmup,
		Precondition:     e.Precondition,
	})
	if err != nil {
		return err
	}
	m := r.M
	p := analytic.Params{
		Hr: m.Hr(), Prd: m.Prd(), Hgcr: m.Hgcr(), Rw: m.Rw(),
		Vd: m.Vd(), Vt: m.Vt(), Np: 64, Npa: float64(m.PageAccesses()),
		Tfr: 25 * time.Microsecond, Tfw: 200 * time.Microsecond, Tfe: 1500 * time.Microsecond,
	}
	fmt.Println("Analytic models (Eqs. 1–13) on measured DFTL parameters, Financial1")
	fmt.Printf("inputs: Hr=%.3f Prd=%.3f Hgcr=%.3f Rw=%.3f Vd=%.1f Vt=%.1f Npa=%d\n",
		p.Hr, p.Prd, p.Hgcr, p.Rw, p.Vd, p.Vt, int64(p.Npa))
	fmt.Printf("Eq. 1  Tat  (mean translation time)        %v\n", p.Tat().Round(time.Nanosecond))
	fmt.Printf("Eq. 8  Ntw  model %.0f   measured %d\n", p.Ntw(), m.TransWritesAT)
	fmt.Printf("Eq. 7  Ngcd model %.0f   measured %d\n", p.Ngcd(), m.GCDataCollections)
	fmt.Printf("Eq. 2  Nmd  model %.0f   measured %d\n", p.Nmd(), m.GCDataMigrations)
	fmt.Printf("Eq. 3  Ndt  model %.0f   measured GC misses %d (flash writes %d after batching)\n",
		p.Ndt(), m.GCMapUpdates-m.GCMapHits, m.TransWritesGC)
	fmt.Printf("Eq. 10 Tgcd (data GC per access)           %v\n", p.Tgcd().Round(time.Nanosecond))
	fmt.Printf("Eq. 11 Tgct (translation GC per access)    %v\n", p.Tgct().Round(time.Nanosecond))
	fmt.Printf("Eq. 13 WA   model %.2f  measured %.2f (model upper-bounds: it ignores batching)\n",
		p.WA(), m.WriteAmplification())
	fmt.Println()
	return nil
}

func fracName(f float64) string {
	if f >= 1 {
		return "1"
	}
	return fmt.Sprintf("1/%d", int(1/f+0.5))
}

// collector accumulates experiment results for optional JSON output.
type collector struct {
	path string
	data map[string]any
}

func newCollector(path string) *collector {
	return &collector{path: path, data: map[string]any{}}
}

func (c *collector) add(name string, v any) {
	if c.path == "" {
		return
	}
	c.data[name] = v
}

func (c *collector) write() {
	if c.path == "" || len(c.data) == 0 {
		return
	}
	blob, err := json.MarshalIndent(c.data, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: encoding json:", err)
		return
	}
	if err := os.WriteFile(c.path, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: writing json:", err)
		return
	}
	fmt.Printf("wrote %s\n", c.path)
}
