GO ?= go

.PHONY: build test race vet lint lint-report lint-fix-audit sanitize fuzz bench bench-ci bench-smoke shard-smoke obs-smoke obs-live-smoke trim-smoke stream-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# ftlint is the repo's own static-analysis suite (cmd/ftlint): ten analyzers
# covering global randomness, cache accounting outside the helpers, discarded
# flash-chip errors, magic geometry literals, hot-path allocation, observability
# hook discipline, non-exhaustive op switches, order-sensitive map iteration,
# package-level mutable state, and clock discipline. Driven through
# `go vet -vettool` so it covers _test.go files and every build unit.
#
# lint fails only on findings NOT in lint-baseline.json (the checked-in known
# debt). -baseline-stamp folds the baseline's content hash into the vet action
# cache key so editing the baseline invalidates cached unit results.
bin/ftlint: FORCE
	$(GO) build -o bin/ftlint ./cmd/ftlint

FORCE:

BASELINE := $(abspath lint-baseline.json)
baseline-stamp = $(firstword $(shell cat $(BASELINE) 2>/dev/null | cksum))

lint: bin/ftlint
	$(GO) vet -vettool=$(abspath bin/ftlint) \
		-baseline=$(BASELINE) -baseline-stamp=$(baseline-stamp) ./...

# Machine-readable reports for CI artifact upload: JSON (the full findings +
# analyzer catalog) and SARIF 2.1.0 (code-scanning UIs). Standalone mode, so
# new findings still exit 1 after writing the report.
lint-report: bin/ftlint
	./bin/ftlint -baseline $(BASELINE) -json -o bin/lint-report.json ./...
	./bin/ftlint -baseline $(BASELINE) -sarif -o bin/lint-report.sarif ./...

# Per-analyzer baseline debt scoreboard — the burn-down tracker.
lint-fix-audit: bin/ftlint
	./bin/ftlint -baseline $(BASELINE) -audit

# The ftlsan build runs the full invariant suite (chip bookkeeping, GTD and
# truth/persist consistency, translator structure) after every host
# operation. -short skips the paper-scale runs, whose 300k requests would
# make the O(pages) per-op checks explode.
sanitize:
	$(GO) test -tags ftlsan -short ./...

# Short fuzz pass over the crash-recovery property (seed corpus always runs
# under plain `go test`; this explores beyond it). Built with -tags ftlsan so
# every fuzz-discovered sequence also runs under the per-op invariant checks.
fuzz:
	$(GO) test -tags ftlsan ./internal/sim -run '^$$' -fuzz FuzzCrashRecovery -fuzztime 30s
	$(GO) test -tags ftlsan ./internal/sim -run '^$$' -fuzz FuzzCrashTrimFlush -fuzztime 30s

# ftlbench is the reproducible macro-benchmark harness (cmd/ftlbench): a
# fixed case matrix of full device simulations, reported as sim-ops per
# wall-second, ns/op, allocs/op, bytes/op and peak RSS. `make bench`
# regenerates the committed BENCH_7.json, embedding the previous report
# (BENCH_6.json, the pre-streaming build) as its baseline section;
# `make bench-ci` is the CI smoke: the quick subset of the matrix with a
# throughput floor, plus a shortened run of the streamed-replay case with its
# own ingest-inclusive floor, so a change that wrecks the zero-allocation hot
# path or the streaming decode fails the build instead of landing silently.
bin/ftlbench: FORCE
	$(GO) build -o bin/ftlbench ./cmd/ftlbench

bench: bin/ftlbench
	./bin/ftlbench -out BENCH_7.json -baseline BENCH_6.json -runs 3

bench-ci: bin/ftlbench
	./bin/ftlbench -smoke -runs 1 -minops 600000
	./bin/ftlbench -case stream-replay -stream-requests 2000000 -runs 1 -minops 4000000

# Observability smoke: a short traced multi-channel run must produce a
# schema-valid metrics JSONL stream and a balanced Chrome trace_event file
# (cmd/obsvalidate runs the same checks the internal/obs tests pin). Catches
# a drifting export schema or an unbalanced span before a human opens the
# artifacts in Perfetto.
bin/ftlsim: FORCE
	$(GO) build -o bin/ftlsim ./cmd/ftlsim

bin/obsvalidate: FORCE
	$(GO) build -o bin/obsvalidate ./cmd/obsvalidate

obs-smoke: bin/ftlsim bin/obsvalidate
	./bin/ftlsim -requests 20000 -channels 4 -dies 2 -qd 8 \
		-metrics-out /tmp/obs-smoke.jsonl -metrics-interval 2000 \
		-trace-out /tmp/obs-smoke.trace.json > /dev/null
	./bin/obsvalidate -metrics /tmp/obs-smoke.jsonl -trace /tmp/obs-smoke.trace.json
	rm -f /tmp/obs-smoke.jsonl /tmp/obs-smoke.trace.json

# Host-interface smoke: run the trim-heavy and fsync-heavy profiles end to
# end (generated workload → buffer → device → metrics), then verify the
# discard and flush crash contracts at random power-cut points. Catches a
# translator whose Discard/FlushDirty path regressed without waiting for
# the full test suite.
trim-smoke: bin/ftlsim
	./bin/ftlsim -workload fstrim-heavy -requests 20000 -scale 67108864 > /dev/null
	./bin/ftlsim -workload database-fsync -requests 20000 -scale 67108864 > /dev/null
	./bin/ftlsim -workload fstrim-heavy -requests 1200 -scale 16777216 -cuts 10 > /dev/null
	./bin/ftlsim -workload database-fsync -requests 1200 -scale 16777216 -cuts 10 > /dev/null

# Short queue-depth sweep over the parallel backend under the race detector:
# the serial golden must hold bit-for-bit, the 4-channel QD sweep must be
# monotone, and QD8 on 4 channels must beat 1 channel by ≥2×.
bench-smoke:
	$(GO) test -race ./internal/sim -run 'TestSerialGoldenCompatibility|TestSchedulerDeterminism|TestParallelSpeedup|TestQueueDepthSweepSmoke' -v

# Sharded-host smoke under the race detector: a 4-shard closed-loop
# saturation run (8 client goroutines, queue depth 8, back-to-back arrivals)
# must produce the identical merged digest — the per-shard order-sensitive
# event hashes folded across shards — on two consecutive runs. Catches any
# cross-shard state sharing or scheduling nondeterminism in internal/host.
shard-smoke:
	$(GO) test -race ./internal/host -run 'TestShardSaturationDigestStable|TestReplayClientCountInvariance' -count=1 -v

# Streaming-replay smoke: the binary trace engine must replay bit-for-bit
# identically to the eager slice path — the same stdout report on the serial
# device and the same merged digest through the 2-shard host — and the
# bounded-memory and equivalence property tests must pass. Catches a batching
# or routing change that breaks stream/eager equivalence before the goldens.
bin/tracegen: FORCE
	$(GO) build -o bin/tracegen ./cmd/tracegen

stream-smoke: bin/ftlsim bin/tracegen
	./bin/tracegen -workload Financial1 -requests 20000 -scale 67108864 -o /tmp/stream-smoke.csv
	./bin/tracegen convert -format native -i /tmp/stream-smoke.csv -o /tmp/stream-smoke.ftr 2> /dev/null
	./bin/ftlsim -trace /tmp/stream-smoke.csv -format native -space 67108864 -warmup 2000 \
		> /tmp/stream-smoke.eager.txt 2> /dev/null
	./bin/ftlsim -trace /tmp/stream-smoke.ftr -format binary -space 67108864 -warmup 2000 \
		> /tmp/stream-smoke.streamed.txt 2> /dev/null
	cmp /tmp/stream-smoke.eager.txt /tmp/stream-smoke.streamed.txt
	./bin/ftlsim -trace /tmp/stream-smoke.csv -format native -space 67108864 -warmup 2000 \
		-shards 2 -clients 4 -qd 8 > /tmp/stream-smoke.eager2.txt 2> /dev/null
	./bin/ftlsim -trace /tmp/stream-smoke.ftr -format binary -space 67108864 -warmup 2000 \
		-shards 2 -clients 4 -qd 8 > /tmp/stream-smoke.streamed2.txt 2> /dev/null
	cmp /tmp/stream-smoke.eager2.txt /tmp/stream-smoke.streamed2.txt
	$(GO) test ./internal/sim -run 'TestStreamedReplayMatchesEager|TestStreamBoundedMemory' -count=1
	rm -f /tmp/stream-smoke.csv /tmp/stream-smoke.ftr /tmp/stream-smoke.*.txt

# Live-telemetry smoke: a sharded streamed replay with the scrape server up
# (-telemetry-addr) is scraped twice in flight by obsvalidate — both
# expositions must parse as Prometheus text and the second must be monotonic
# over the first — then POST /quit ends the linger window, the flight-recorder
# dump must validate, and the run's stdout must be bit-for-bit identical to
# the same replay with telemetry off. Catches a scrape-format regression, a
# counter that moves backwards across warm-up, or any telemetry feedback into
# the simulation.
obs-live-smoke: bin/ftlsim bin/tracegen bin/obsvalidate
	./bin/tracegen -workload Financial1 -requests 20000 -scale 67108864 -o /tmp/obs-live.csv
	./bin/tracegen convert -format native -i /tmp/obs-live.csv -o /tmp/obs-live.ftr 2> /dev/null
	./bin/ftlsim -trace /tmp/obs-live.ftr -format binary -space 67108864 -warmup 2000 \
		-shards 2 -clients 4 -qd 8 > /tmp/obs-live.off.txt 2> /dev/null
	./bin/ftlsim -trace /tmp/obs-live.ftr -format binary -space 67108864 -warmup 2000 \
		-shards 2 -clients 4 -qd 8 -telemetry-addr 127.0.0.1:19610 \
		-telemetry-interval 100ms -telemetry-every 256 -telemetry-linger 30s \
		-recorder-out /tmp/obs-live.flight.txt > /tmp/obs-live.on.txt 2> /dev/null & \
	./bin/obsvalidate -scrape http://127.0.0.1:19610/metrics -o /tmp/obs-live.s1.prom && \
	./bin/obsvalidate -scrape http://127.0.0.1:19610/metrics -o /tmp/obs-live.s2.prom && \
	./bin/obsvalidate -prom /tmp/obs-live.s2.prom -prom-prev /tmp/obs-live.s1.prom && \
	./bin/obsvalidate -post http://127.0.0.1:19610/quit && \
	wait
	./bin/obsvalidate -recorder /tmp/obs-live.flight.txt
	cmp /tmp/obs-live.off.txt /tmp/obs-live.on.txt
	rm -f /tmp/obs-live.csv /tmp/obs-live.ftr /tmp/obs-live.*.txt /tmp/obs-live.*.prom

ci: vet lint lint-report race sanitize bench-smoke shard-smoke stream-smoke bench-ci obs-smoke obs-live-smoke trim-smoke
