GO ?= go

.PHONY: build test race vet fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the crash-recovery property (seed corpus always runs
# under plain `go test`; this explores beyond it).
fuzz:
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzCrashRecovery -fuzztime 30s

ci: vet race
