// Extension benchmarks beyond the paper's figures: the §2.1 mapping
// granularity taxonomy, GC policy and wear-leveling ablations (§2.3), the
// exact-average page-level hotness ordering (§4.2's definition vs. the LRU
// approximation), the ZFTL baseline (§2.2), and the CFLRU data buffer in
// front of TPFTL (§2.1's RAM split).
package tpftl_test

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/ftl/blockftl"
	"repro/internal/ftl/fast"
	"repro/internal/ftl/hybrid"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkMappingGranularity compares block-level, hybrid (BAST) and
// page-level (TPFTL) mapping on the same random-write stream — the §2.1
// taxonomy trade-off.
func BenchmarkMappingGranularity(b *testing.B) {
	const space = 64 << 20
	p := workload.Financial1().Scale(space)
	reqs, err := workload.Generate(p, 20_000, 7)
	if err != nil {
		b.Fatal(err)
	}
	devCfg := ftl.Config{LogicalBytes: space, PageSize: 4096, OverProvision: 0.15}

	b.Run("block", func(b *testing.B) {
		var m ftl.Metrics
		for i := 0; i < b.N; i++ {
			d, err := blockftl.New(devCfg)
			if err != nil {
				b.Fatal(err)
			}
			if m, err = d.Run(reqs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(m.WriteAmplification(), "WA")
		b.ReportMetric(float64(m.AvgResponse().Microseconds()), "resp-µs")
	})
	b.Run("hybrid-BAST", func(b *testing.B) {
		var m ftl.Metrics
		for i := 0; i < b.N; i++ {
			d, err := hybrid.New(hybrid.Config{Device: devCfg})
			if err != nil {
				b.Fatal(err)
			}
			if m, err = d.Run(reqs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(m.WriteAmplification(), "WA")
		b.ReportMetric(float64(m.AvgResponse().Microseconds()), "resp-µs")
	})
	b.Run("hybrid-FAST", func(b *testing.B) {
		var m ftl.Metrics
		for i := 0; i < b.N; i++ {
			d, err := fast.New(fast.Config{Device: devCfg})
			if err != nil {
				b.Fatal(err)
			}
			if m, err = d.Run(reqs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(m.WriteAmplification(), "WA")
		b.ReportMetric(float64(m.AvgResponse().Microseconds()), "resp-µs")
	})
	b.Run("page-TPFTL", func(b *testing.B) {
		var r *sim.Result
		for i := 0; i < b.N; i++ {
			var err error
			r, err = sim.Run(sim.Options{Scheme: sim.SchemeTPFTL, Profile: p, Trace: reqs, Precondition: 1})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.M.WriteAmplification(), "WA")
		b.ReportMetric(float64(r.M.AvgResponse().Microseconds()), "resp-µs")
	})
}

// BenchmarkGCPolicy compares greedy and cost-benefit victim selection under
// TPFTL on a hot/cold workload.
func BenchmarkGCPolicy(b *testing.B) {
	e := benchScale()
	p := benchProfiles()[0]
	for _, pol := range []ftl.GCPolicy{ftl.GCGreedy, ftl.GCCostBenefit} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var m ftl.Metrics
			for i := 0; i < b.N; i++ {
				m = runWithDeviceConfig(b, p, e, func(c *ftl.Config) { c.GCPolicy = pol })
			}
			b.ReportMetric(m.WriteAmplification(), "WA")
			b.ReportMetric(m.Vd(), "Vd")
			b.ReportMetric(float64(m.FlashErases), "erases")
		})
	}
}

// BenchmarkWearLeveling measures the erase-spread vs. extra-migration
// trade-off of static wear leveling.
func BenchmarkWearLeveling(b *testing.B) {
	e := benchScale()
	p := benchProfiles()[0]
	for _, threshold := range []int{0, 16, 64} {
		threshold := threshold
		name := "off"
		if threshold > 0 {
			name = "threshold" + itoa(threshold)
		}
		b.Run(name, func(b *testing.B) {
			var m ftl.Metrics
			var spread int
			for i := 0; i < b.N; i++ {
				var dev *ftl.Device
				m, dev = runReturningDevice(b, p, e, func(c *ftl.Config) { c.WearLevelThreshold = threshold })
				min, max := dev.EraseSpread()
				spread = max - min
			}
			b.ReportMetric(float64(spread), "erase-spread")
			b.ReportMetric(float64(m.WearLevelMoves), "WL-moves")
			b.ReportMetric(m.WriteAmplification(), "WA")
		})
	}
}

// BenchmarkHotnessOrdering compares the paper's exact average-recency
// page-level ordering (§4.2) with the conventional LRU approximation.
func BenchmarkHotnessOrdering(b *testing.B) {
	e := benchScale()
	p := benchProfiles()[0]
	for _, h := range []core.Hotness{core.HotnessLRU, core.HotnessAvg} {
		h := h
		name := "LRU"
		if h == core.HotnessAvg {
			name = "AvgRecency"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(0)
			cfg.Hotness = h
			var r *sim.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = sim.Run(sim.Options{
					Scheme: sim.SchemeTPFTL, TPFTL: &cfg, Profile: p,
					Requests: e.Requests, Seed: e.Seed,
					ResetAfterWarmup: e.Warmup, Precondition: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.M.Hr()*100, "Hr-%")
			b.ReportMetric(r.M.Prd()*100, "Prd-%")
		})
	}
}

// BenchmarkZFTL runs the §2.2 zone-based baseline alongside TPFTL.
func BenchmarkZFTL(b *testing.B) {
	e := benchScale()
	p := benchProfiles()[0]
	for _, s := range []sim.Scheme{sim.SchemeZFTL, sim.SchemeTPFTL} {
		s := s
		b.Run(string(s), func(b *testing.B) {
			var r *sim.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = sim.Run(sim.Options{
					Scheme: s, Profile: p, Requests: e.Requests, Seed: e.Seed,
					ResetAfterWarmup: e.Warmup, Precondition: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.M.Hr()*100, "Hr-%")
			b.ReportMetric(float64(r.M.TransWrites()), "transWrites")
		})
	}
}

// BenchmarkDataBuffer measures how a CFLRU data buffer in front of TPFTL
// absorbs device writes (§2.1's data-buffer role of the internal RAM).
func BenchmarkDataBuffer(b *testing.B) {
	p := benchProfiles()[0]
	reqs, err := workload.Generate(p, 20_000, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, pages := range []int{1, 256, 1024} {
		pages := pages
		b.Run("pages"+itoa(pages), func(b *testing.B) {
			var devWrites int64
			for i := 0; i < b.N; i++ {
				cfg := ftl.DefaultConfig(p.AddressSpace)
				tr := core.New(core.DefaultConfig(cfg.CacheBytes))
				dev, err := ftl.NewDevice(cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
				if err := dev.Format(); err != nil {
					b.Fatal(err)
				}
				buf, err := buffer.New(dev, buffer.Config{Pages: pages})
				if err != nil {
					b.Fatal(err)
				}
				if err := buf.Run(reqs); err != nil {
					b.Fatal(err)
				}
				if err := buf.Flush(reqs[len(reqs)-1].Arrival); err != nil {
					b.Fatal(err)
				}
				devWrites = dev.Metrics().PageWrites
			}
			b.ReportMetric(float64(devWrites), "devWrites")
		})
	}
}

// runWithDeviceConfig builds a TPFTL device with a mutated config, runs the
// bench workload and returns the metrics.
func runWithDeviceConfig(b *testing.B, p workload.Profile, e sim.ExpConfig, mut func(*ftl.Config)) ftl.Metrics {
	m, _ := runReturningDevice(b, p, e, mut)
	return m
}

func runReturningDevice(b *testing.B, p workload.Profile, e sim.ExpConfig, mut func(*ftl.Config)) (ftl.Metrics, *ftl.Device) {
	b.Helper()
	cfg := ftl.DefaultConfig(p.AddressSpace)
	if mut != nil {
		mut(&cfg)
	}
	tr := core.New(core.DefaultConfig(cfg.CacheBytes))
	dev, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		b.Fatal(err)
	}
	if err := dev.Format(); err != nil {
		b.Fatal(err)
	}
	foot := p.FootprintBytes() / int64(cfg.PageSize)
	if err := dev.PreconditionRange(int(foot), foot, e.Seed+1); err != nil {
		b.Fatal(err)
	}
	dev.ResetMetrics()
	reqs, err := workload.Generate(p, e.Requests, e.Seed)
	if err != nil {
		b.Fatal(err)
	}
	m, err := dev.Run(reqs)
	if err != nil {
		b.Fatal(err)
	}
	return m, dev
}

// BenchmarkCrashRecovery measures the mount-time full-metadata scan that
// rebuilds the complete mapping after power failure (§1's power-failure
// motivation for small RAM state).
func BenchmarkCrashRecovery(b *testing.B) {
	e := benchScale()
	p := benchProfiles()[0]
	_, dev := runReturningDevice(b, p, e, nil)
	b.ResetTimer()
	var scanned int64
	for i := 0; i < b.N; i++ {
		rs, err := dev.RecoverMapping()
		if err != nil {
			b.Fatal(err)
		}
		scanned = rs.ScannedPages
	}
	b.ReportMetric(float64(scanned), "scannedPages")
}
