// Package tpftl is the public API of this repository: a trace-driven SSD
// simulator and a family of demand-based page-level FTLs reproducing
//
//	Zhou, Wu, Huang, He, Zhou, Xie.
//	"An Efficient Page-level FTL to Optimize Address Translation in Flash
//	Memory", EuroSys 2015.
//
// The package re-exports the building blocks:
//
//   - NewDevice builds a simulated SSD (flash chip + block management +
//     garbage collection) around any Translator policy.
//   - NewTranslator constructs the paper's schemes by name: TPFTL (the
//     paper's contribution), DFTL, S-FTL, CDFTL, ZFTL and the optimal FTL;
//     NewBlockDevice/NewHybridDevice/NewFASTDevice build the §2.1
//     block-level and log-buffer hybrid devices.
//   - Run executes a complete experiment: build, format, precondition,
//     replay a workload, collect the paper's metrics.
//   - Financial1/Financial2/MSRts/MSRsrc return workload generators
//     calibrated to the paper's Table 4; ParseTrace replays real SPC/MSR
//     trace files.
//
// See examples/ for runnable walkthroughs and cmd/experiments for the full
// paper-evaluation harness.
package tpftl

import (
	"io"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/ftl/blockftl"
	"repro/internal/ftl/fast"
	"repro/internal/ftl/hybrid"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported types. The aliases keep one canonical definition internally
// while giving users a single import.
type (
	// Scheme names an FTL policy ("TPFTL", "DFTL", "S-FTL", "CDFTL",
	// "Optimal").
	Scheme = sim.Scheme
	// Options configures one simulation run.
	Options = sim.Options
	// Result is a run's outcome: metrics plus cache samples.
	Result = sim.Result
	// ShardRun is one shard's slice of a sharded run's outcome
	// (Options.Shards >= 1).
	ShardRun = sim.ShardRun
	// Metrics are the paper's counters and derived measures.
	Metrics = ftl.Metrics
	// Device is a simulated SSD.
	Device = ftl.Device
	// DeviceConfig describes the simulated SSD (geometry, latencies,
	// over-provisioning, cache budget).
	DeviceConfig = ftl.Config
	// Translator is the mapping-cache policy interface; implement it to
	// plug a new FTL scheme into the device.
	Translator = ftl.Translator
	// TPFTLConfig parameterizes the TPFTL scheme, including the paper's
	// four technique toggles for ablation studies.
	TPFTLConfig = core.Config
	// Profile is a synthetic workload description.
	Profile = workload.Profile
	// Request is one block-level I/O request.
	Request = trace.Request
	// Op is the request kind carried by a Request.
	Op = trace.Op
	// TraceStats summarizes a request stream (Table 4's columns).
	TraceStats = trace.Stats
	// ExpConfig scales the paper-evaluation experiment suite.
	ExpConfig = sim.ExpConfig
	// FaultPlan is an injectable flash fault schedule: probability faults,
	// scheduled per-attempt faults and a power cut.
	FaultPlan = flash.FaultPlan
	// FaultError is one injected flash fault.
	FaultError = flash.FaultError
	// FaultStats counts what a fault plan injected.
	FaultStats = flash.FaultStats
	// CrashOptions configures a crash-recovery property run.
	CrashOptions = sim.CrashOptions
	// CrashReport aggregates the verified power-cut points of a RunCrash.
	CrashReport = sim.CrashReport
	// CutResult is one verified power-cut point.
	CutResult = sim.CutResult
	// RecoveredState is the mapping rebuilt by a post-crash OOB scan.
	RecoveredState = ftl.RecoveredState
)

// ErrPowerCut is returned by every flash operation once a fault plan's power
// cut has fired.
var ErrPowerCut = flash.ErrPowerCut

// The paper's schemes (§2.2 related work included).
const (
	TPFTL   = sim.SchemeTPFTL
	DFTL    = sim.SchemeDFTL
	SFTL    = sim.SchemeSFTL
	CDFTL   = sim.SchemeCDFTL
	ZFTL    = sim.SchemeZFTL
	Optimal = sim.SchemeOptimal
)

// Request kinds (host-interface op codes).
const (
	OpRead     = trace.OpRead
	OpWrite    = trace.OpWrite
	OpWriteFUA = trace.OpWriteFUA
	OpTrim     = trace.OpTrim
	OpFlush    = trace.OpFlush
)

// Run executes one simulation run.
func Run(o Options) (*Result, error) { return sim.Run(o) }

// RunCrash replays a seeded workload with power cut at chosen chip-op
// indexes and verifies that the mapping recovered from on-flash OOB
// metadata matches the device's last acknowledged state (see sim.RunCrash).
func RunCrash(o CrashOptions) (*CrashReport, error) { return sim.RunCrash(o) }

// ParseFaultPlan parses the CLI fault-plan syntax, e.g. "cut=12000" or
// "read=1e-4,program=1e-5,seed=7" (see flash.ParseFaultPlan).
func ParseFaultPlan(spec string) (*FaultPlan, error) { return flash.ParseFaultPlan(spec) }

// NewDevice builds a simulated SSD around the given policy. Call Format
// before serving requests.
func NewDevice(cfg DeviceConfig, tr Translator) (*Device, error) {
	return ftl.NewDevice(cfg, tr)
}

// DefaultDeviceConfig returns the paper's SSD parameters (Table 3) for a
// logical capacity.
func DefaultDeviceConfig(logicalBytes int64) DeviceConfig {
	return ftl.DefaultConfig(logicalBytes)
}

// NewTranslator constructs a scheme by name. cacheBytes is the mapping
// cache budget; logicalPages sizes the optimal FTL's table; tpftlCfg
// optionally overrides the TPFTL configuration (nil selects the complete
// "rsbc" TPFTL).
func NewTranslator(s Scheme, cacheBytes, logicalPages int64, tpftlCfg *TPFTLConfig) (Translator, error) {
	return sim.NewTranslator(s, cacheBytes, logicalPages, tpftlCfg)
}

// NewTPFTL returns the paper's complete TPFTL with the given cache budget.
func NewTPFTL(cacheBytes int64) *core.FTL {
	return core.New(core.DefaultConfig(cacheBytes))
}

// DefaultCacheBytes returns the paper's cache-budget convention for a
// device size (the block-level mapping table size: 8 KB per 512 MB).
func DefaultCacheBytes(logicalBytes int64) int64 {
	return ftl.DefaultCacheBytes(logicalBytes)
}

// Workload surrogates calibrated to the paper's Table 4.
func Financial1() Profile { return workload.Financial1() }
func Financial2() Profile { return workload.Financial2() }
func MSRts() Profile      { return workload.MSRts() }
func MSRsrc() Profile     { return workload.MSRsrc() }

// Profiles returns the four paper workloads in evaluation order.
func Profiles() []Profile { return workload.DefaultProfiles() }

// GenerateWorkload produces n requests from a profile.
func GenerateWorkload(p Profile, n int, seed int64) ([]Request, error) {
	return workload.Generate(p, n, seed)
}

// ParseTrace reads a trace file. Formats: "spc" (UMass Financial), "msr"
// (MSR Cambridge CSV), "native" (this repository's CSV).
func ParseTrace(r io.Reader, format string) ([]Request, error) {
	f, err := trace.FormatByName(format)
	if err != nil {
		return nil, err
	}
	return trace.Parse(r, f)
}

// WriteTrace writes requests in the native CSV format.
func WriteTrace(w io.Writer, reqs []Request) error {
	return trace.WriteNative(w, reqs)
}

// WriteTraceFormat writes requests in the named format ("native", "spc" or
// "msr").
func WriteTraceFormat(w io.Writer, reqs []Request, format string) error {
	f, err := trace.FormatByName(format)
	if err != nil {
		return err
	}
	return trace.Write(w, reqs, f)
}

// SummarizeTrace computes Table 4-style statistics over a request stream.
func SummarizeTrace(reqs []Request) TraceStats {
	return trace.Summarize(reqs)
}

// NewBlockDevice builds a block-level FTL device — the coarse end of the
// §2.1 mapping taxonomy; its tiny mapping table defines the paper's cache
// budget convention.
func NewBlockDevice(cfg DeviceConfig) (*blockftl.Device, error) {
	return blockftl.New(cfg)
}

// NewHybridDevice builds a BAST-style log-buffer hybrid FTL device
// (§2.1's middle ground) with the given log-block pool size (0 = default).
func NewHybridDevice(cfg DeviceConfig, logBlocks int) (*hybrid.Device, error) {
	return hybrid.New(hybrid.Config{Device: cfg, LogBlocks: logBlocks})
}

// NewFASTDevice builds a FAST-style fully-associative log-buffer hybrid
// device (citation [23]'s lineage) with the given shared log pool size
// (0 = default).
func NewFASTDevice(cfg DeviceConfig, logBlocks int) (*fast.Device, error) {
	return fast.New(fast.Config{Device: cfg, LogBlocks: logBlocks})
}

// NewDataBuffer wraps a device with a CFLRU data buffer of the given page
// capacity (§2.1's data-buffer half of the internal RAM).
func NewDataBuffer(dev *Device, pages int) (*buffer.Buffered, error) {
	return buffer.New(dev, buffer.Config{Pages: pages})
}
