package flash

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func testChip(t *testing.T, blocks int) *Chip {
	t.Helper()
	cfg := DefaultConfig(blocks)
	cfg.PagesPerBlock = 4 // small blocks keep tests readable
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero page size", func(c *Config) { c.PageSize = 0 }, false},
		{"negative pages per block", func(c *Config) { c.PagesPerBlock = -1 }, false},
		{"zero blocks", func(c *Config) { c.NumBlocks = 0 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(8)
			tc.mut(&cfg)
			err := cfg.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() error = %v, want ok=%v", err, tc.ok)
			}
			if _, err := New(cfg); (err == nil) != tc.ok {
				t.Fatalf("New() error = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestDefaultConfigMatchesPaperTable3(t *testing.T) {
	cfg := DefaultConfig(16)
	if cfg.PageSize != 4096 {
		t.Errorf("PageSize = %d, want 4096", cfg.PageSize)
	}
	if got := cfg.PageSize * cfg.PagesPerBlock; got != 256*1024 {
		t.Errorf("block size = %d, want 256KiB", got)
	}
	if cfg.ReadLatency != 25*time.Microsecond {
		t.Errorf("ReadLatency = %v, want 25µs", cfg.ReadLatency)
	}
	if cfg.WriteLatency != 200*time.Microsecond {
		t.Errorf("WriteLatency = %v, want 200µs", cfg.WriteLatency)
	}
	if cfg.EraseLatency != 1500*time.Microsecond {
		t.Errorf("EraseLatency = %v, want 1.5ms", cfg.EraseLatency)
	}
}

func TestProgramReadLifecycle(t *testing.T) {
	c := testChip(t, 2)
	p := c.PageAt(0, 0)

	if _, err := c.Read(p); err == nil {
		t.Fatal("read of free page succeeded")
	}
	lat, err := c.Program(p, Meta{Kind: KindData, Tag: 42})
	if err != nil {
		t.Fatal(err)
	}
	if lat != c.Config().WriteLatency {
		t.Fatalf("program latency = %v, want %v", lat, c.Config().WriteLatency)
	}
	if c.State(p) != PageValid {
		t.Fatalf("state = %v, want valid", c.State(p))
	}
	if m := c.MetaOf(p); m.Kind != KindData || m.Tag != 42 {
		t.Fatalf("meta = %+v", m)
	}
	lat, err = c.Read(p)
	if err != nil {
		t.Fatal(err)
	}
	if lat != c.Config().ReadLatency {
		t.Fatalf("read latency = %v, want %v", lat, c.Config().ReadLatency)
	}
}

func TestProgramRules(t *testing.T) {
	c := testChip(t, 1)
	p0, p1 := c.PageAt(0, 0), c.PageAt(0, 1)

	// Out-of-order program rejected.
	if _, err := c.Program(p1, Meta{Kind: KindData, Tag: 1}); err == nil {
		t.Fatal("out-of-order program succeeded")
	}
	if _, err := c.Program(p0, Meta{Kind: KindData, Tag: 1}); err != nil {
		t.Fatal(err)
	}
	// Overwrite rejected.
	if _, err := c.Program(p0, Meta{Kind: KindData, Tag: 2}); err == nil {
		t.Fatal("overwrite succeeded")
	}
	// Missing kind rejected.
	if _, err := c.Program(p1, Meta{}); err == nil {
		t.Fatal("program without kind succeeded")
	}
	var opErr *OpError
	_, err := c.Program(p0, Meta{Kind: KindData})
	if !errors.As(err, &opErr) {
		t.Fatalf("error %T, want *OpError", err)
	}
}

func TestInvalidateAndValidCount(t *testing.T) {
	c := testChip(t, 1)
	for i := 0; i < 3; i++ {
		if _, err := c.Program(c.PageAt(0, i), Meta{Kind: KindData, Tag: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.ValidCount(0); got != 3 {
		t.Fatalf("ValidCount = %d, want 3", got)
	}
	if err := c.Invalidate(c.PageAt(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := c.ValidCount(0); got != 2 {
		t.Fatalf("ValidCount = %d, want 2", got)
	}
	// Double invalidate rejected.
	if err := c.Invalidate(c.PageAt(0, 1)); err == nil {
		t.Fatal("double invalidate succeeded")
	}
	// Invalidate of free page rejected.
	if err := c.Invalidate(c.PageAt(0, 3)); err == nil {
		t.Fatal("invalidate of free page succeeded")
	}
}

func TestEraseRules(t *testing.T) {
	c := testChip(t, 1)
	ppb := c.Config().PagesPerBlock
	for i := 0; i < ppb; i++ {
		if _, err := c.Program(c.PageAt(0, i), Meta{Kind: KindData, Tag: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Erase with valid pages rejected.
	if _, err := c.Erase(0); err == nil {
		t.Fatal("erase of block with valid pages succeeded")
	}
	for i := 0; i < ppb; i++ {
		if err := c.Invalidate(c.PageAt(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	lat, err := c.Erase(0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != c.Config().EraseLatency {
		t.Fatalf("erase latency = %v, want %v", lat, c.Config().EraseLatency)
	}
	if c.EraseCount(0) != 1 {
		t.Fatalf("EraseCount = %d, want 1", c.EraseCount(0))
	}
	if c.WritePtr(0) != 0 {
		t.Fatalf("WritePtr = %d, want 0 after erase", c.WritePtr(0))
	}
	// Pages reusable after erase.
	if _, err := c.Program(c.PageAt(0, 0), Meta{Kind: KindData, Tag: 9}); err != nil {
		t.Fatal(err)
	}
}

func TestEnduranceLimit(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.PagesPerBlock = 2
	cfg.EraseLimit = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wearOnce := func() error {
		for i := 0; i < 2; i++ {
			if _, err := c.Program(c.PageAt(0, i), Meta{Kind: KindData, Tag: 1}); err != nil {
				return err
			}
			if err := c.Invalidate(c.PageAt(0, i)); err != nil {
				return err
			}
		}
		_, err := c.Erase(0)
		return err
	}
	if err := wearOnce(); err != nil {
		t.Fatal(err)
	}
	if c.Worn(0) {
		t.Fatal("worn after 1 erase with limit 2")
	}
	if err := wearOnce(); err != nil {
		t.Fatal(err)
	}
	if !c.Worn(0) {
		t.Fatal("not worn after reaching erase limit")
	}
	if _, err := c.Program(c.PageAt(0, 0), Meta{Kind: KindData, Tag: 1}); err == nil {
		t.Fatal("program to worn block succeeded")
	}
}

func TestFailureInjection(t *testing.T) {
	c := testChip(t, 1)
	boom := errors.New("boom")
	c.FailNext("program", boom)
	if _, err := c.Program(c.PageAt(0, 0), Meta{Kind: KindData, Tag: 1}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected", err)
	}
	// Injection consumed; next op succeeds.
	if _, err := c.Program(c.PageAt(0, 0), Meta{Kind: KindData, Tag: 1}); err != nil {
		t.Fatal(err)
	}
	c.FailNext("read", boom)
	if _, err := c.Read(c.PageAt(0, 0)); !errors.Is(err, boom) {
		t.Fatalf("read err = %v, want injected", err)
	}
	c.FailNext("erase", boom)
	if err := c.Invalidate(c.PageAt(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Erase(0); !errors.Is(err, boom) {
		t.Fatalf("erase err = %v, want injected", err)
	}
}

func TestStatsCounting(t *testing.T) {
	c := testChip(t, 1)
	for i := 0; i < 4; i++ {
		if _, err := c.Program(c.PageAt(0, i), Meta{Kind: KindData, Tag: int64(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Read(c.PageAt(0, i)); err != nil {
			t.Fatal(err)
		}
		if err := c.Invalidate(c.PageAt(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Erase(0); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Reads != 4 || s.Programs != 4 || s.Erases != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if c.TotalErases() != 1 {
		t.Fatalf("TotalErases = %d", c.TotalErases())
	}
}

func TestAddressHelpers(t *testing.T) {
	c := testChip(t, 3) // 4 pages per block
	p := c.PageAt(2, 3)
	if p != PPN(11) {
		t.Fatalf("PageAt(2,3) = %d, want 11", p)
	}
	if c.Block(p) != 2 {
		t.Fatalf("Block(%d) = %d, want 2", p, c.Block(p))
	}
	if c.Offset(p) != 3 {
		t.Fatalf("Offset(%d) = %d, want 3", p, c.Offset(p))
	}
	if InvalidPPN.Valid() {
		t.Fatal("InvalidPPN reports Valid")
	}
	if !p.Valid() {
		t.Fatal("real PPN reports invalid")
	}
}

// TestQuickStateMachine drives the chip with random legal operations and
// checks invariants after every step.
func TestQuickStateMachine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig(4)
		cfg.PagesPerBlock = 8
		c, err := New(cfg)
		if err != nil {
			return false
		}
		var programmed []PPN // pages in valid state
		for step := 0; step < 400; step++ {
			switch rng.Intn(4) {
			case 0: // program next page of a random non-full block
				blk := BlockID(rng.Intn(cfg.NumBlocks))
				if c.WritePtr(blk) >= cfg.PagesPerBlock {
					continue
				}
				p := c.PageAt(blk, c.WritePtr(blk))
				if _, err := c.Program(p, Meta{Kind: KindData, Tag: int64(step)}); err != nil {
					t.Log(err)
					return false
				}
				programmed = append(programmed, p)
			case 1: // invalidate a random valid page
				if len(programmed) == 0 {
					continue
				}
				i := rng.Intn(len(programmed))
				if err := c.Invalidate(programmed[i]); err != nil {
					t.Log(err)
					return false
				}
				programmed = append(programmed[:i], programmed[i+1:]...)
			case 2: // erase a random block with zero valid pages
				blk := BlockID(rng.Intn(cfg.NumBlocks))
				if c.ValidCount(blk) != 0 {
					continue
				}
				if _, err := c.Erase(blk); err != nil {
					t.Log(err)
					return false
				}
			case 3: // read a random valid page
				if len(programmed) == 0 {
					continue
				}
				if _, err := c.Read(programmed[rng.Intn(len(programmed))]); err != nil {
					t.Log(err)
					return false
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStateAndKindStrings(t *testing.T) {
	if PageFree.String() != "free" || PageValid.String() != "valid" || PageInvalid.String() != "invalid" {
		t.Fatal("PageState strings wrong")
	}
	if KindData.String() != "data" || KindTranslation.String() != "translation" || KindNone.String() != "none" {
		t.Fatal("PageKind strings wrong")
	}
	if PageState(9).String() == "" || PageKind(9).String() == "" {
		t.Fatal("unknown values must still format")
	}
}

func TestOutOfOrderProgramming(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.PagesPerBlock = 4
	cfg.AllowOutOfOrder = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Program offsets 2, 0, 3 in that order: legal in out-of-order mode.
	for _, off := range []int{2, 0, 3} {
		if _, err := c.Program(c.PageAt(0, off), Meta{Kind: KindData, Tag: int64(off)}); err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
	}
	if c.WritePtr(0) != 4 {
		t.Fatalf("write pointer = %d, want high-water 4", c.WritePtr(0))
	}
	// Overwrite still rejected.
	if _, err := c.Program(c.PageAt(0, 2), Meta{Kind: KindData, Tag: 9}); err == nil {
		t.Fatal("overwrite accepted")
	}
	// Gap at offset 1 remains programmable.
	if _, err := c.Program(c.PageAt(0, 1), Meta{Kind: KindData, Tag: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Erase works once all pages are invalid.
	for off := 0; off < 4; off++ {
		if err := c.Invalidate(c.PageAt(0, off)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Erase(0); err != nil {
		t.Fatal(err)
	}
}
