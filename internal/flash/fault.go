package flash

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// ErrPowerCut is the error every flash operation returns once a FaultPlan's
// power cut has fired (and, after that, forever): from the chip's point of
// view the supply rail dropped mid-workload and the op never happened. The
// chip state is frozen at the last completed operation; a subsequent
// RecoverMapping models the mount-time OOB scan after power returns.
var ErrPowerCut = errors.New("flash: power cut")

// FaultError is an injected flash fault — the simulator's stand-in for a
// read disturb, a program failure or an erase failure. Transient faults
// succeed when the operation is retried (the FTL's bounded-retry path);
// non-transient ones persist and must surface to the caller.
type FaultError struct {
	Op        string
	Page      PPN
	Blk       BlockID
	Transient bool
}

func (e *FaultError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	if e.Page >= 0 {
		return fmt.Sprintf("flash: injected %s %s fault at ppn %d", kind, e.Op, e.Page)
	}
	return fmt.Sprintf("flash: injected %s %s fault at block %d", kind, e.Op, e.Blk)
}

// FaultPlan describes an injectable fault schedule for a Chip. All decisions
// are driven by the plan's own seeded RNG and deterministic op counters, so a
// failing run reproduces bit-for-bit from (workload seed, plan).
//
// Three independent mechanisms compose:
//
//   - probability faults: each read/program/erase fails transiently with the
//     configured probability;
//   - scheduled faults: FailAt lists exact per-kind attempt indexes
//     (1-based, counting from when the plan is armed) that fail transiently;
//   - power cut: CutAtOp freezes the chip when its global attempt counter
//     (reads+programs+erases, 1-based from arming) reaches the given index —
//     that operation and every later one fail with ErrPowerCut and no state
//     changes.
type FaultPlan struct {
	// Seed drives the probability draws (0 is treated as 1).
	Seed int64

	// ReadProb, ProgramProb, EraseProb are per-operation transient fault
	// probabilities in [0,1].
	ReadProb    float64
	ProgramProb float64
	EraseProb   float64

	// FailAt schedules transient faults at exact per-kind attempt indexes,
	// keyed by op name ("read", "program", "erase"). Indexes are 1-based
	// and count every attempt of that kind after the plan is armed,
	// including attempts that themselves fail.
	FailAt map[string][]int64

	// CutAtOp, when > 0, cuts power at the CutAtOp-th chip operation after
	// the plan is armed (counting all kinds, 1-based).
	CutAtOp int64
}

// FaultStats counts what a plan actually injected.
type FaultStats struct {
	InjectedReads    int64
	InjectedPrograms int64
	InjectedErases   int64
	PowerCut         bool
	CutOp            int64 // global op index at which the cut fired
}

// Injected returns the total number of injected transient faults.
func (s FaultStats) Injected() int64 {
	return s.InjectedReads + s.InjectedPrograms + s.InjectedErases
}

// faultState is the armed, mutable form of a plan inside a Chip.
type faultState struct {
	plan     FaultPlan
	rng      *rand.Rand
	opCount  int64            // all ops attempted since arming
	attempts map[string]int64 // per-kind attempt counters
	failAt   map[string]map[int64]bool
	cut      bool
	stats    FaultStats
}

func newFaultState(p FaultPlan) *faultState {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	fs := &faultState{
		plan:     p,
		rng:      rand.New(rand.NewSource(seed)),
		attempts: make(map[string]int64, 3),
		failAt:   make(map[string]map[int64]bool, len(p.FailAt)),
	}
	for op, idxs := range p.FailAt {
		set := make(map[int64]bool, len(idxs))
		for _, i := range idxs {
			set[i] = true
		}
		fs.failAt[op] = set
	}
	return fs
}

// inject decides the fate of one attempted operation. It returns nil when
// the op may proceed.
func (fs *faultState) inject(op string, page PPN, blk BlockID) error {
	if fs.cut {
		return ErrPowerCut
	}
	fs.opCount++
	if fs.plan.CutAtOp > 0 && fs.opCount >= fs.plan.CutAtOp {
		fs.cut = true
		fs.stats.PowerCut = true
		fs.stats.CutOp = fs.opCount
		return ErrPowerCut
	}
	fs.attempts[op]++
	fail := fs.failAt[op][fs.attempts[op]]
	var prob float64
	switch op {
	case "read":
		prob = fs.plan.ReadProb
	case "program":
		prob = fs.plan.ProgramProb
	case "erase":
		prob = fs.plan.EraseProb
	}
	if !fail && prob > 0 && fs.rng.Float64() < prob {
		fail = true
	}
	if !fail {
		return nil
	}
	switch op {
	case "read":
		fs.stats.InjectedReads++
	case "program":
		fs.stats.InjectedPrograms++
	case "erase":
		fs.stats.InjectedErases++
	}
	return &FaultError{Op: op, Page: page, Blk: blk, Transient: true}
}

// SetFaultPlan arms (or, with nil, disarms) a fault plan on the chip. Op
// counters start from zero at arming, so CutAtOp and FailAt indexes are
// relative to this call — arm after Format to leave the pre-fill unfaulted.
func (c *Chip) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		c.faults = nil
		return
	}
	c.faults = newFaultState(*p)
}

// FaultStats returns what the armed plan injected so far.
func (c *Chip) FaultStats() FaultStats {
	if c.faults == nil {
		return FaultStats{}
	}
	return c.faults.stats
}

// PowerCut reports whether the chip's power has been cut (by plan or by
// CutPower). A cut chip rejects every operation with ErrPowerCut; only the
// state inspection used by recovery (State, MetaOf) keeps working.
func (c *Chip) PowerCut() bool {
	return c.faults != nil && c.faults.cut
}

// CutPower cuts power immediately, regardless of any armed plan.
func (c *Chip) CutPower() {
	if c.faults == nil {
		c.faults = newFaultState(FaultPlan{})
	}
	if !c.faults.cut {
		c.faults.cut = true
		c.faults.stats.PowerCut = true
		c.faults.stats.CutOp = c.faults.opCount
	}
}

// OpCount returns the number of chip operations attempted since the fault
// plan was armed (0 when no plan is armed). The crash harness uses it to
// size the cut-point space.
func (c *Chip) OpCount() int64 {
	if c.faults == nil {
		return 0
	}
	return c.faults.opCount
}

// ParseFaultPlan parses the CLI fault-plan syntax: a comma-separated list of
// key=value pairs.
//
//	cut=N        power cut at the N-th op after arming
//	seed=S       RNG seed for probability faults
//	read=P       transient read-fault probability
//	program=P    transient program-fault probability
//	erase=P      transient erase-fault probability
//	readat=I;J   transient faults at exact read attempts I and J (";"-separated)
//	programat=…  likewise for programs
//	eraseat=…    likewise for erases
//
// Example: "cut=12000" or "read=1e-4,program=1e-5,seed=7".
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	p := &FaultPlan{}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("flash: empty fault spec")
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("flash: fault spec %q: want key=value", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "cut", "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("flash: fault spec %s=%q: %v", key, val, err)
			}
			if key == "cut" {
				p.CutAtOp = n
			} else {
				p.Seed = n
			}
		case "read", "program", "erase":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("flash: fault spec %s=%q: want probability in [0,1]", key, val)
			}
			switch key {
			case "read":
				p.ReadProb = f
			case "program":
				p.ProgramProb = f
			case "erase":
				p.EraseProb = f
			}
		case "readat", "programat", "eraseat":
			op := strings.TrimSuffix(key, "at")
			var idxs []int64
			for _, s := range strings.Split(val, ";") {
				n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("flash: fault spec %s=%q: want positive attempt indexes", key, val)
				}
				idxs = append(idxs, n)
			}
			sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
			if p.FailAt == nil {
				p.FailAt = make(map[string][]int64)
			}
			p.FailAt[op] = idxs
		default:
			return nil, fmt.Errorf("flash: fault spec: unknown key %q", key)
		}
	}
	return p, nil
}

// String renders the plan in ParseFaultPlan syntax.
func (p *FaultPlan) String() string {
	var parts []string
	if p.CutAtOp > 0 {
		parts = append(parts, fmt.Sprintf("cut=%d", p.CutAtOp))
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.ReadProb > 0 {
		parts = append(parts, fmt.Sprintf("read=%g", p.ReadProb))
	}
	if p.ProgramProb > 0 {
		parts = append(parts, fmt.Sprintf("program=%g", p.ProgramProb))
	}
	if p.EraseProb > 0 {
		parts = append(parts, fmt.Sprintf("erase=%g", p.EraseProb))
	}
	for _, op := range []string{"read", "program", "erase"} {
		if idxs := p.FailAt[op]; len(idxs) > 0 {
			strs := make([]string, len(idxs))
			for i, n := range idxs {
				strs[i] = strconv.FormatInt(n, 10)
			}
			parts = append(parts, op+"at="+strings.Join(strs, ";"))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}
