package flash

import (
	"errors"
	"testing"
)

func newTestChip(t *testing.T) *Chip {
	t.Helper()
	c, err := New(Config{PageSize: 4096, PagesPerBlock: 4, NumBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPowerCutFreezesChip(t *testing.T) {
	c := newTestChip(t)
	if _, err := c.Program(0, Meta{Kind: KindData, Tag: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// Cut at the 3rd op after arming: one read and one program succeed,
	// then everything fails.
	c.SetFaultPlan(&FaultPlan{CutAtOp: 3})
	if _, err := c.Read(0); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if _, err := c.Program(1, Meta{Kind: KindData, Tag: 1, Seq: 2}); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if _, err := c.Program(2, Meta{Kind: KindData, Tag: 2, Seq: 3}); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("op 3: err = %v, want power cut", err)
	}
	if !c.PowerCut() {
		t.Fatal("PowerCut not reported")
	}
	// The aborted program must not have applied.
	if st := c.State(2); st != PageFree {
		t.Fatalf("aborted program left page state %v", st)
	}
	// Every further op fails; state stays frozen.
	if _, err := c.Read(0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("read after cut: %v", err)
	}
	if err := c.Invalidate(0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("invalidate after cut: %v", err)
	}
	if _, err := c.Erase(0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("erase after cut: %v", err)
	}
	// Recovery-style inspection still works.
	if m := c.MetaOf(1); m.Tag != 1 || m.Seq != 2 {
		t.Fatalf("meta of surviving page: %+v", m)
	}
	st := c.FaultStats()
	if !st.PowerCut || st.CutOp != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduledTransientFaults(t *testing.T) {
	c := newTestChip(t)
	if _, err := c.Program(0, Meta{Kind: KindData, Tag: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(&FaultPlan{FailAt: map[string][]int64{"read": {2}}})
	if _, err := c.Read(0); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	_, err := c.Read(0)
	var fe *FaultError
	if !errors.As(err, &fe) || !fe.Transient || fe.Op != "read" {
		t.Fatalf("read 2: err = %v, want transient read FaultError", err)
	}
	// Retry (attempt 3) succeeds: the fault was transient.
	if _, err := c.Read(0); err != nil {
		t.Fatalf("read 3 (retry): %v", err)
	}
	if got := c.FaultStats().InjectedReads; got != 1 {
		t.Fatalf("injected reads = %d, want 1", got)
	}
}

func TestProbabilityFaultsDeterministic(t *testing.T) {
	run := func() []bool {
		c := newTestChip(t)
		if _, err := c.Program(0, Meta{Kind: KindData, Tag: 0, Seq: 1}); err != nil {
			t.Fatal(err)
		}
		c.SetFaultPlan(&FaultPlan{Seed: 42, ReadProb: 0.3})
		var outcomes []bool
		for i := 0; i < 200; i++ {
			_, err := c.Read(0)
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverges between identical seeded runs", i)
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("probability 0.3 injected %d/%d faults", fails, len(a))
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("cut=500,seed=7,read=0.001,programat=3;1,erase=1e-4")
	if err != nil {
		t.Fatal(err)
	}
	if p.CutAtOp != 500 || p.Seed != 7 || p.ReadProb != 0.001 || p.EraseProb != 1e-4 {
		t.Fatalf("parsed %+v", p)
	}
	if got := p.FailAt["program"]; len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("programat = %v", got)
	}
	if s := p.String(); s == "" || s == "none" {
		t.Fatalf("String() = %q", s)
	}
	for _, bad := range []string{"", "cut", "cut=x", "read=2", "bogus=1", "readat=0"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestSetFaultPlanNilDisarms(t *testing.T) {
	c := newTestChip(t)
	c.SetFaultPlan(&FaultPlan{CutAtOp: 1})
	c.SetFaultPlan(nil)
	if _, err := c.Program(0, Meta{Kind: KindData, Tag: 0, Seq: 1}); err != nil {
		t.Fatalf("op after disarm: %v", err)
	}
	if c.PowerCut() {
		t.Fatal("disarmed chip reports power cut")
	}
}
