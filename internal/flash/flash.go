// Package flash simulates a NAND flash chip at page/block granularity.
//
// The chip is a pure state machine: operations validate NAND legality rules
// (no overwrite without erase, pages within a block programmed in order,
// reads only of programmed pages) and return the latency each operation
// costs. Callers — the FTL layer — accumulate latencies into request service
// times and attribute each operation to a cause for the paper's accounting
// (user access vs. address translation vs. garbage collection).
//
// Geometry and latencies default to Table 3 of the TPFTL paper: 4 KB pages,
// 256 KB blocks (64 pages), 25 µs read, 200 µs program, 1.5 ms erase.
package flash

import (
	"fmt"
	"time"
)

// PPN is a physical page number: block*PagesPerBlock + offset.
type PPN int64

// InvalidPPN marks an unmapped logical page.
const InvalidPPN PPN = -1

// Valid reports whether p refers to a real physical page.
func (p PPN) Valid() bool { return p >= 0 }

// BlockID identifies a physical flash block.
type BlockID int32

// PageState tracks the lifecycle of one physical page.
type PageState uint8

const (
	// PageFree means erased and programmable.
	PageFree PageState = iota
	// PageValid means programmed and holding live data.
	PageValid
	// PageInvalid means programmed but superseded; reclaimed by GC.
	PageInvalid
)

func (s PageState) String() string {
	switch s {
	case PageFree:
		return "free"
	case PageValid:
		return "valid"
	case PageInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

// PageKind distinguishes what an FTL stored in a page. It matters only to
// garbage collection, which must treat data pages and translation pages
// differently.
type PageKind uint8

const (
	// KindNone is the kind of a free page.
	KindNone PageKind = iota
	// KindData marks a page holding user data; Tag is the LPN.
	KindData
	// KindTranslation marks a page holding a slice of the mapping table;
	// Tag is the VTPN.
	KindTranslation
)

func (k PageKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindData:
		return "data"
	case KindTranslation:
		return "translation"
	default:
		return fmt.Sprintf("PageKind(%d)", uint8(k))
	}
}

// Meta is the out-of-band metadata an FTL attaches to a programmed page
// (real SSDs store this in the page's spare area). GC uses it to find the
// logical owner of a valid page without consulting the mapping cache, and
// crash recovery uses the sequence number to order versions of the same
// logical page when rebuilding the mapping from a full scan.
type Meta struct {
	Kind PageKind
	Tag  int64 // LPN for data pages, VTPN for translation pages
	Seq  int64 // monotonically increasing program sequence number
}

// Config describes chip geometry and timing.
type Config struct {
	PageSize      int // bytes per page
	PagesPerBlock int
	NumBlocks     int
	// Channels and DiesPerChannel describe the package's parallelism: the
	// chip exposes Channels independent buses, each serving DiesPerChannel
	// dies. Blocks interleave across dies (block b lives on die
	// b mod NumDies), so consecutive blocks land on consecutive channels.
	// Zero means 1. The chip itself stays a pure state machine — dies only
	// label which occupancy window an operation charges; the event-driven
	// scheduler (internal/ssd) turns those labels into overlapped time.
	Channels       int
	DiesPerChannel int
	ReadLatency    time.Duration
	WriteLatency   time.Duration
	EraseLatency   time.Duration
	// EraseLimit, if > 0, makes a block fail permanently after that many
	// erases (endurance failure injection). 0 means unlimited.
	EraseLimit int
	// AllowOutOfOrder permits programming a block's pages in any order, as
	// SLC-era NAND did. Block-level FTLs, which place pages at fixed
	// offsets, require it; modern page-level FTLs keep the default strict
	// sequential-program rule.
	AllowOutOfOrder bool
}

// DefaultConfig returns the Table 3 parameters of the TPFTL paper, sized to
// hold numBlocks blocks.
func DefaultConfig(numBlocks int) Config {
	return Config{
		PageSize:      4096,
		PagesPerBlock: 64,
		NumBlocks:     numBlocks,
		ReadLatency:   25 * time.Microsecond,
		WriteLatency:  200 * time.Microsecond,
		EraseLatency:  1500 * time.Microsecond,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.PageSize <= 0:
		return fmt.Errorf("flash: PageSize %d must be positive", c.PageSize)
	case c.PagesPerBlock <= 0:
		return fmt.Errorf("flash: PagesPerBlock %d must be positive", c.PagesPerBlock)
	case c.NumBlocks <= 0:
		return fmt.Errorf("flash: NumBlocks %d must be positive", c.NumBlocks)
	case c.Channels < 0:
		return fmt.Errorf("flash: Channels %d must not be negative", c.Channels)
	case c.DiesPerChannel < 0:
		return fmt.Errorf("flash: DiesPerChannel %d must not be negative", c.DiesPerChannel)
	}
	return nil
}

// NumChannels returns the channel count (0 reads as 1).
func (c Config) NumChannels() int {
	if c.Channels <= 0 {
		return 1
	}
	return c.Channels
}

// NumDies returns the total die count, Channels × DiesPerChannel.
func (c Config) NumDies() int {
	d := c.DiesPerChannel
	if d <= 0 {
		d = 1
	}
	return c.NumChannels() * d
}

// DieOf returns the die holding blk: blocks interleave across dies so
// consecutive blocks stripe across channels first.
func (c Config) DieOf(blk BlockID) int { return int(blk) % c.NumDies() }

// ChannelOfDie returns the channel serving die.
func (c Config) ChannelOfDie(die int) int { return die % c.NumChannels() }

// TotalPages returns the number of physical pages the chip holds.
func (c Config) TotalPages() int64 { return int64(c.NumBlocks) * int64(c.PagesPerBlock) }

// Stats counts operations performed on the chip.
type Stats struct {
	Reads    int64
	Programs int64
	Erases   int64
}

// block is per-block simulator state.
type block struct {
	writePtr   int // next programmable offset; PagesPerBlock means full
	validCount int
	eraseCount int
	worn       bool
}

// Chip simulates one NAND flash chip.
type Chip struct {
	cfg Config
	// numDies and totalPages cache the derived geometry: the per-page hot
	// path (DieOf, mustContain) must not re-derive them through Config's
	// value-receiver methods, which copy the whole struct per call.
	numDies    int
	totalPages int64
	states     []PageState
	metas      []Meta
	blocks     []block
	stats      Stats
	// failNextOps holds injected errors keyed by op name, consumed in order.
	failNext map[string][]error
	// faults, when non-nil, is the armed fault plan (see fault.go).
	faults *faultState
}

// New creates a chip with all blocks erased.
func New(cfg Config) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Chip{
		cfg:        cfg,
		numDies:    cfg.NumDies(),
		totalPages: cfg.TotalPages(),
		states:     make([]PageState, cfg.TotalPages()),
		metas:      make([]Meta, cfg.TotalPages()),
		blocks:     make([]block, cfg.NumBlocks),
	}, nil
}

// Config returns the chip's configuration.
func (c *Chip) Config() Config { return c.cfg }

// Stats returns a copy of the operation counters.
func (c *Chip) Stats() Stats { return c.stats }

// Block returns the block containing p.
func (c *Chip) Block(p PPN) BlockID { return BlockID(int64(p) / int64(c.cfg.PagesPerBlock)) }

// Offset returns p's page offset within its block.
func (c *Chip) Offset(p PPN) int { return int(int64(p) % int64(c.cfg.PagesPerBlock)) }

// DieOf returns the die holding p's block.
func (c *Chip) DieOf(p PPN) int { return int(c.Block(p)) % c.numDies }

// DieOfBlock returns the die holding blk. Equivalent to Config().DieOf(blk)
// without copying the Config on the per-operation path.
func (c *Chip) DieOfBlock(blk BlockID) int { return int(blk) % c.numDies }

// PageAt returns the PPN of page offset off within blk.
func (c *Chip) PageAt(blk BlockID, off int) PPN {
	return PPN(int64(blk)*int64(c.cfg.PagesPerBlock) + int64(off))
}

// State returns the state of page p.
func (c *Chip) State(p PPN) PageState {
	c.mustContain(p)
	return c.states[p]
}

// MetaOf returns the out-of-band metadata of page p.
func (c *Chip) MetaOf(p PPN) Meta {
	c.mustContain(p)
	return c.metas[p]
}

// ValidCount returns the number of valid pages in blk.
func (c *Chip) ValidCount(blk BlockID) int {
	c.mustContainBlock(blk)
	return c.blocks[blk].validCount
}

// WritePtr returns the next programmable page offset in blk
// (== PagesPerBlock when the block is fully programmed).
func (c *Chip) WritePtr(blk BlockID) int {
	c.mustContainBlock(blk)
	return c.blocks[blk].writePtr
}

// EraseCount returns how many times blk has been erased.
func (c *Chip) EraseCount(blk BlockID) int {
	c.mustContainBlock(blk)
	return c.blocks[blk].eraseCount
}

// TotalErases returns the sum of erase counts over all blocks.
func (c *Chip) TotalErases() int64 { return c.stats.Erases }

// OpError describes an illegal flash operation.
type OpError struct {
	Op   string
	Page PPN
	Blk  BlockID
	Msg  string
}

func (e *OpError) Error() string {
	if e.Page >= 0 {
		return fmt.Sprintf("flash: %s ppn %d: %s", e.Op, e.Page, e.Msg)
	}
	return fmt.Sprintf("flash: %s block %d: %s", e.Op, e.Blk, e.Msg)
}

// Read reads page p, which must be programmed (valid or invalid — GC may
// legitimately read a page that was invalidated between scheduling and
// execution, and reading stale data is physically possible). It returns the
// read latency.
func (c *Chip) Read(p PPN) (time.Duration, error) {
	c.mustContain(p)
	if c.faults != nil {
		if err := c.faults.inject("read", p, -1); err != nil {
			return 0, err
		}
	}
	if err := c.takeInjected("read"); err != nil {
		return 0, err
	}
	if c.states[p] == PageFree {
		return 0, &OpError{Op: "read", Page: p, Blk: -1, Msg: "page not programmed"}
	}
	c.stats.Reads++
	return c.cfg.ReadLatency, nil
}

// Program writes page p with metadata m. NAND rules enforced: the page must
// be free and must be the next in-order page of its block. It returns the
// program latency.
func (c *Chip) Program(p PPN, m Meta) (time.Duration, error) {
	c.mustContain(p)
	if c.faults != nil {
		if err := c.faults.inject("program", p, c.Block(p)); err != nil {
			return 0, err
		}
	}
	if err := c.takeInjected("program"); err != nil {
		return 0, err
	}
	blk := c.Block(p)
	b := &c.blocks[blk]
	if b.worn {
		return 0, &OpError{Op: "program", Page: p, Blk: blk, Msg: "block worn out"}
	}
	if c.states[p] != PageFree {
		return 0, &OpError{Op: "program", Page: p, Blk: blk, Msg: "page already programmed"}
	}
	off := c.Offset(p)
	if !c.cfg.AllowOutOfOrder && off != b.writePtr {
		return 0, &OpError{Op: "program", Page: p, Blk: blk,
			Msg: fmt.Sprintf("out-of-order program: offset %d, write pointer %d", off, b.writePtr)}
	}
	if m.Kind == KindNone {
		return 0, &OpError{Op: "program", Page: p, Blk: blk, Msg: "missing page kind"}
	}
	c.states[p] = PageValid
	c.metas[p] = m
	if off+1 > b.writePtr {
		b.writePtr = off + 1
	}
	b.validCount++
	c.stats.Programs++
	return c.cfg.WriteLatency, nil
}

// Invalidate marks a previously valid page invalid. It costs nothing (it is
// a RAM-side bookkeeping action in a real FTL).
func (c *Chip) Invalidate(p PPN) error {
	c.mustContain(p)
	if c.faults != nil && c.faults.cut {
		return ErrPowerCut
	}
	if c.states[p] != PageValid {
		return &OpError{Op: "invalidate", Page: p, Blk: -1,
			Msg: "page not valid (state " + c.states[p].String() + ")"}
	}
	c.states[p] = PageInvalid
	c.blocks[c.Block(p)].validCount--
	return nil
}

// Erase erases blk, freeing all its pages. All pages must be invalid (the
// FTL must migrate valid pages first); erasing live data is a simulator bug.
// It returns the erase latency.
func (c *Chip) Erase(blk BlockID) (time.Duration, error) {
	c.mustContainBlock(blk)
	if c.faults != nil {
		if err := c.faults.inject("erase", -1, blk); err != nil {
			return 0, err
		}
	}
	if err := c.takeInjected("erase"); err != nil {
		return 0, err
	}
	b := &c.blocks[blk]
	if b.worn {
		return 0, &OpError{Op: "erase", Page: -1, Blk: blk, Msg: "block worn out"}
	}
	if b.validCount != 0 {
		return 0, &OpError{Op: "erase", Page: -1, Blk: blk,
			Msg: fmt.Sprintf("%d valid pages remain", b.validCount)}
	}
	start := c.PageAt(blk, 0)
	for i := 0; i < c.cfg.PagesPerBlock; i++ {
		c.states[start+PPN(i)] = PageFree
		c.metas[start+PPN(i)] = Meta{}
	}
	b.writePtr = 0
	b.eraseCount++
	c.stats.Erases++
	if c.cfg.EraseLimit > 0 && b.eraseCount >= c.cfg.EraseLimit {
		b.worn = true
	}
	return c.cfg.EraseLatency, nil
}

// Worn reports whether blk has exceeded its erase limit.
func (c *Chip) Worn(blk BlockID) bool {
	c.mustContainBlock(blk)
	return c.blocks[blk].worn
}

// FailNext injects err as the result of the next operation of the given op
// ("read", "program" or "erase"). Multiple injections queue in FIFO order.
func (c *Chip) FailNext(op string, err error) {
	if c.failNext == nil {
		c.failNext = make(map[string][]error)
	}
	c.failNext[op] = append(c.failNext[op], err)
}

func (c *Chip) takeInjected(op string) error {
	q := c.failNext[op]
	if len(q) == 0 {
		return nil
	}
	err := q[0]
	c.failNext[op] = q[1:]
	return err
}

func (c *Chip) mustContain(p PPN) {
	if p < 0 || int64(p) >= c.totalPages {
		panic(fmt.Sprintf("flash: ppn %d out of range [0,%d)", p, c.totalPages))
	}
}

func (c *Chip) mustContainBlock(blk BlockID) {
	if blk < 0 || int(blk) >= c.cfg.NumBlocks {
		panic(fmt.Sprintf("flash: block %d out of range [0,%d)", blk, c.cfg.NumBlocks))
	}
}

// CheckInvariants validates the chip's internal consistency: per-block valid
// counts match page states, write pointers bound programmed pages. Used by
// property tests.
func (c *Chip) CheckInvariants() error {
	for bi := range c.blocks {
		b := &c.blocks[bi]
		valid := 0
		for off := 0; off < c.cfg.PagesPerBlock; off++ {
			p := c.PageAt(BlockID(bi), off)
			st := c.states[p]
			if st == PageValid {
				valid++
			}
			if !c.cfg.AllowOutOfOrder && off < b.writePtr && st == PageFree {
				return fmt.Errorf("flash: block %d offset %d free below write pointer %d", bi, off, b.writePtr)
			}
			if off >= b.writePtr && st != PageFree {
				return fmt.Errorf("flash: block %d offset %d programmed at/above write pointer %d", bi, off, b.writePtr)
			}
			if st != PageFree && c.metas[p].Kind == KindNone {
				return fmt.Errorf("flash: block %d offset %d programmed without metadata", bi, off)
			}
		}
		if valid != b.validCount {
			return fmt.Errorf("flash: block %d valid count %d, counted %d", bi, b.validCount, valid)
		}
	}
	return nil
}
