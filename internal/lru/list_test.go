package lru

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newNode(v int) *Node[int] {
	n := &Node[int]{}
	n.Value = v
	return n
}

func collect(l *List[int]) []int {
	var out []int
	l.Each(func(n *Node[int]) bool {
		out = append(out, n.Value)
		return true
	})
	return out
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyList(t *testing.T) {
	var l List[int]
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
	if l.Front() != nil || l.Back() != nil {
		t.Fatal("empty list has non-nil ends")
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
}

func TestPushFrontOrder(t *testing.T) {
	var l List[int]
	for i := 0; i < 5; i++ {
		l.PushFront(newNode(i))
	}
	if got, want := collect(&l), []int{4, 3, 2, 1, 0}; !eq(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
}

func TestPushBackOrder(t *testing.T) {
	var l List[int]
	for i := 0; i < 5; i++ {
		l.PushBack(newNode(i))
	}
	if got, want := collect(&l), []int{0, 1, 2, 3, 4}; !eq(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestRemove(t *testing.T) {
	var l List[int]
	nodes := make([]*Node[int], 5)
	for i := range nodes {
		nodes[i] = newNode(i)
		l.PushBack(nodes[i])
	}
	l.Remove(nodes[2])
	if got, want := collect(&l), []int{0, 1, 3, 4}; !eq(got, want) {
		t.Fatalf("after middle remove: %v, want %v", got, want)
	}
	l.Remove(nodes[0])
	if got, want := collect(&l), []int{1, 3, 4}; !eq(got, want) {
		t.Fatalf("after front remove: %v, want %v", got, want)
	}
	l.Remove(nodes[4])
	if got, want := collect(&l), []int{1, 3}; !eq(got, want) {
		t.Fatalf("after back remove: %v, want %v", got, want)
	}
	if nodes[2].InList() {
		t.Fatal("removed node still reports InList")
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveLastNode(t *testing.T) {
	var l List[int]
	n := newNode(7)
	l.PushFront(n)
	l.Remove(n)
	if l.Len() != 0 || l.Front() != nil || l.Back() != nil {
		t.Fatal("list not empty after removing only node")
	}
	// Node must be reusable.
	l.PushBack(n)
	if l.Front() != n || l.Back() != n {
		t.Fatal("node not reinserted correctly")
	}
}

func TestMoveToFront(t *testing.T) {
	var l List[int]
	nodes := make([]*Node[int], 4)
	for i := range nodes {
		nodes[i] = newNode(i)
		l.PushBack(nodes[i])
	}
	l.MoveToFront(nodes[3])
	if got, want := collect(&l), []int{3, 0, 1, 2}; !eq(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	l.MoveToFront(nodes[3]) // no-op on front node
	if got, want := collect(&l), []int{3, 0, 1, 2}; !eq(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveToBack(t *testing.T) {
	var l List[int]
	nodes := make([]*Node[int], 4)
	for i := range nodes {
		nodes[i] = newNode(i)
		l.PushBack(nodes[i])
	}
	l.MoveToBack(nodes[0])
	if got, want := collect(&l), []int{1, 2, 3, 0}; !eq(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	l.MoveToBack(nodes[0]) // no-op on back node
	if got, want := collect(&l), []int{1, 2, 3, 0}; !eq(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	var l List[int]
	a, b, c := newNode(0), newNode(1), newNode(2)
	l.PushBack(a)
	l.PushBack(c)
	l.InsertAfter(b, a)
	if got, want := collect(&l), []int{0, 1, 2}; !eq(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	d := newNode(3)
	l.InsertBefore(d, a)
	if got, want := collect(&l), []int{3, 0, 1, 2}; !eq(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	e := newNode(4)
	l.InsertAfter(e, c)
	if got, want := collect(&l), []int{3, 0, 1, 2, 4}; !eq(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if l.Back() != e || l.Front() != d {
		t.Fatal("ends not updated by insert")
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	var l1, l2 List[int]
	n := newNode(0)
	l1.PushFront(n)
	mustPanic("double insert", func() { l2.PushFront(n) })
	mustPanic("remove from wrong list", func() { l2.Remove(n) })
	mustPanic("move in wrong list", func() { l2.MoveToFront(n) })
	other := newNode(1)
	mustPanic("insert before unlinked mark", func() { l1.InsertBefore(newNode(2), other) })
}

func TestNextPrevTraversal(t *testing.T) {
	var l List[int]
	for i := 0; i < 3; i++ {
		l.PushBack(newNode(i))
	}
	n := l.Front()
	var fwd []int
	for ; n != nil; n = n.Next() {
		fwd = append(fwd, n.Value)
	}
	if !eq(fwd, []int{0, 1, 2}) {
		t.Fatalf("forward = %v", fwd)
	}
	var rev []int
	for n = l.Back(); n != nil; n = n.Prev() {
		rev = append(rev, n.Value)
	}
	if !eq(rev, []int{2, 1, 0}) {
		t.Fatalf("reverse = %v", rev)
	}
}

func TestEachEarlyStop(t *testing.T) {
	var l List[int]
	for i := 0; i < 10; i++ {
		l.PushBack(newNode(i))
	}
	count := 0
	l.Each(func(*Node[int]) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("visited %d nodes, want 3", count)
	}
}

// TestQuickAgainstModel drives the intrusive list with random operations and
// compares it against a plain-slice model after every step.
func TestQuickAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l List[int]
		var model []*Node[int] // front..back
		pool := make([]*Node[int], 32)
		for i := range pool {
			pool[i] = newNode(i)
		}
		idxOf := func(n *Node[int]) int {
			for i, m := range model {
				if m == n {
					return i
				}
			}
			return -1
		}
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(6); {
			case op == 0: // PushFront
				n := pool[rng.Intn(len(pool))]
				if n.InList() {
					continue
				}
				l.PushFront(n)
				model = append([]*Node[int]{n}, model...)
			case op == 1: // PushBack
				n := pool[rng.Intn(len(pool))]
				if n.InList() {
					continue
				}
				l.PushBack(n)
				model = append(model, n)
			case op == 2 && len(model) > 0: // Remove
				i := rng.Intn(len(model))
				l.Remove(model[i])
				model = append(model[:i], model[i+1:]...)
			case op == 3 && len(model) > 0: // MoveToFront
				i := rng.Intn(len(model))
				n := model[i]
				l.MoveToFront(n)
				model = append(model[:i], model[i+1:]...)
				model = append([]*Node[int]{n}, model...)
			case op == 4 && len(model) > 0: // MoveToBack
				i := rng.Intn(len(model))
				n := model[i]
				l.MoveToBack(n)
				model = append(model[:i], model[i+1:]...)
				model = append(model, n)
			case op == 5 && len(model) > 0: // InsertAfter random mark
				n := pool[rng.Intn(len(pool))]
				if n.InList() {
					continue
				}
				mark := model[rng.Intn(len(model))]
				l.InsertAfter(n, mark)
				mi := idxOf(mark)
				model = append(model[:mi+1], append([]*Node[int]{n}, model[mi+1:]...)...)
			}
			if err := l.check(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
			if l.Len() != len(model) {
				return false
			}
			i := 0
			ok := true
			l.Each(func(n *Node[int]) bool {
				if model[i] != n {
					ok = false
					return false
				}
				i++
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTouchAllocates0 pins the generic list's reason to exist: an LRU touch
// (MoveToFront) on the intrusive, non-boxing list performs zero heap
// allocations. Under the old `Value any` design every insertion boxed its
// element; the generic Node[T] holds the pointer directly.
func TestTouchAllocates0(t *testing.T) {
	var l List[int]
	nodes := make([]*Node[int], 16)
	for i := range nodes {
		nodes[i] = newNode(i)
		l.PushBack(nodes[i])
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		l.MoveToFront(nodes[i%len(nodes)])
		l.MoveToBack(nodes[(i+7)%len(nodes)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("LRU touch allocates %v times per op, want 0", allocs)
	}
}
