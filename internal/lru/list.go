// Package lru provides intrusive doubly-linked list primitives used by the
// mapping-cache implementations in this repository.
//
// All FTL caches in this project (DFTL's CMT, S-FTL's page list, TPFTL's
// two-level lists) are recency lists over nodes that already live in a lookup
// map, so an intrusive list — where the links are embedded in the caller's
// node — avoids a second allocation per element and makes unlink O(1) without
// auxiliary bookkeeping.
//
// The list is generic over the element type: Node[T].Value is a T (in
// practice a pointer back to the containing struct), so walking a list never
// boxes values into interfaces and never allocates — a property the
// hot-path allocation guards (AllocsPerRun tests, the hotalloc analyzer)
// hold the translators to.
//
// A List is ordered from MRU (front) to LRU (back).
package lru

// Node is the intrusive link block. Embed it (by pointer identity) in any
// struct that participates in a List. A Node belongs to at most one List at a
// time; the owning List is tracked so misuse panics early instead of silently
// corrupting a neighbouring list.
type Node[T any] struct {
	prev, next *Node[T]
	list       *List[T]
	// Value points back to the containing struct. It is set once by the
	// caller before first insertion and never touched by this package.
	Value T
}

// InList reports whether n is currently linked into a list.
func (n *Node[T]) InList() bool { return n.list != nil }

// List is an intrusive MRU→LRU list. The zero value is an empty list ready
// for use.
type List[T any] struct {
	front *Node[T] // most recently used
	back  *Node[T] // least recently used
	size  int
}

// Len returns the number of nodes in the list.
func (l *List[T]) Len() int { return l.size }

// Front returns the MRU node, or nil if the list is empty.
func (l *List[T]) Front() *Node[T] { return l.front }

// Back returns the LRU node, or nil if the list is empty.
func (l *List[T]) Back() *Node[T] { return l.back }

// PushFront inserts n at the MRU position. n must not be in any list.
func (l *List[T]) PushFront(n *Node[T]) {
	if n.list != nil {
		panic("lru: PushFront of node already in a list")
	}
	n.list = l
	n.prev = nil
	n.next = l.front
	if l.front != nil {
		l.front.prev = n
	} else {
		l.back = n
	}
	l.front = n
	l.size++
}

// PushBack inserts n at the LRU position. n must not be in any list.
func (l *List[T]) PushBack(n *Node[T]) {
	if n.list != nil {
		panic("lru: PushBack of node already in a list")
	}
	n.list = l
	n.next = nil
	n.prev = l.back
	if l.back != nil {
		l.back.next = n
	} else {
		l.front = n
	}
	l.back = n
	l.size++
}

// Remove unlinks n from the list. n must be in this list.
func (l *List[T]) Remove(n *Node[T]) {
	if n.list != l {
		panic("lru: Remove of node not in this list")
	}
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.front = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.back = n.prev
	}
	n.prev, n.next, n.list = nil, nil, nil
	l.size--
}

// MoveToFront makes n the MRU node. n must be in this list.
func (l *List[T]) MoveToFront(n *Node[T]) {
	if n.list != l {
		panic("lru: MoveToFront of node not in this list")
	}
	if l.front == n {
		return
	}
	l.Remove(n)
	l.PushFront(n)
}

// MoveToBack makes n the LRU node. n must be in this list.
func (l *List[T]) MoveToBack(n *Node[T]) {
	if n.list != l {
		panic("lru: MoveToBack of node not in this list")
	}
	if l.back == n {
		return
	}
	l.Remove(n)
	l.PushBack(n)
}

// InsertBefore inserts n immediately before mark (towards the MRU end).
// mark must be in this list; n must be in no list.
func (l *List[T]) InsertBefore(n, mark *Node[T]) {
	if mark.list != l {
		panic("lru: InsertBefore with mark not in this list")
	}
	if n.list != nil {
		panic("lru: InsertBefore of node already in a list")
	}
	n.list = l
	n.next = mark
	n.prev = mark.prev
	if mark.prev != nil {
		mark.prev.next = n
	} else {
		l.front = n
	}
	mark.prev = n
	l.size++
}

// InsertAfter inserts n immediately after mark (towards the LRU end).
// mark must be in this list; n must be in no list.
func (l *List[T]) InsertAfter(n, mark *Node[T]) {
	if mark.list != l {
		panic("lru: InsertAfter with mark not in this list")
	}
	if n.list != nil {
		panic("lru: InsertAfter of node already in a list")
	}
	n.list = l
	n.prev = mark
	n.next = mark.next
	if mark.next != nil {
		mark.next.prev = n
	} else {
		l.back = n
	}
	mark.next = n
	l.size++
}

// Next returns the node after n (towards the LRU end), or nil.
func (n *Node[T]) Next() *Node[T] { return n.next }

// Prev returns the node before n (towards the MRU end), or nil.
func (n *Node[T]) Prev() *Node[T] { return n.prev }

// Each calls fn for every node from MRU to LRU. fn must not mutate the list.
func (l *List[T]) Each(fn func(*Node[T]) bool) {
	for n := l.front; n != nil; n = n.next {
		if !fn(n) {
			return
		}
	}
}

// check validates internal consistency; used by tests.
func (l *List[T]) check() error {
	count := 0
	var prev *Node[T]
	for n := l.front; n != nil; n = n.next {
		if n.list != l {
			return errBadOwner
		}
		if n.prev != prev {
			return errBadLink
		}
		prev = n
		count++
		if count > l.size {
			return errBadCount
		}
	}
	if prev != l.back || count != l.size {
		return errBadCount
	}
	return nil
}

type listErr string

func (e listErr) Error() string { return string(e) }

const (
	errBadOwner = listErr("lru: node owned by wrong list")
	errBadLink  = listErr("lru: inconsistent prev link")
	errBadCount = listErr("lru: length mismatch")
)
