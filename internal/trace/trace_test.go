package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		ok   bool
	}{
		{"ok", Request{Arrival: 0, Offset: 0, Length: 512, Op: OpWrite}, true},
		{"negative offset", Request{Offset: -1, Length: 512}, false},
		{"zero length", Request{Offset: 0, Length: 0}, false},
		{"negative arrival", Request{Arrival: -5, Offset: 0, Length: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.req.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestPagesSplitting(t *testing.T) {
	cases := []struct {
		name        string
		off, length int64
		first, last int64
		count       int
	}{
		{"one page aligned", 0, 4096, 0, 0, 1},
		{"one byte", 0, 1, 0, 0, 1},
		{"straddles boundary", 4000, 200, 0, 1, 2},
		{"aligned two pages", 4096, 8192, 1, 2, 2},
		{"ends at boundary", 0, 8192, 0, 1, 2},
		{"starts at last byte", 4095, 2, 0, 1, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Request{Offset: tc.off, Length: tc.length}
			first, last := r.Pages(4096)
			if first != tc.first || last != tc.last {
				t.Fatalf("Pages = [%d,%d], want [%d,%d]", first, last, tc.first, tc.last)
			}
			if got := r.PageCount(4096); got != tc.count {
				t.Fatalf("PageCount = %d, want %d", got, tc.count)
			}
		})
	}
}

func TestSummarize(t *testing.T) {
	reqs := []Request{
		{Arrival: 0, Offset: 0, Length: 4096, Op: OpWrite},
		{Arrival: 1, Offset: 4096, Length: 4096, Op: OpWrite},  // sequential write
		{Arrival: 2, Offset: 8192, Length: 4096, Op: OpRead}, // sequential read
		{Arrival: 3, Offset: 100000, Length: 2048, Op: OpRead},
	}
	s := Summarize(reqs)
	if s.Requests != 4 || s.Writes != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SeqWrites != 1 || s.SeqReads != 1 {
		t.Fatalf("seq counts = %d/%d, want 1/1", s.SeqReads, s.SeqWrites)
	}
	if got := s.WriteRatio(); got != 0.5 {
		t.Fatalf("WriteRatio = %v", got)
	}
	if got := s.AvgRequestSize(); got != (4096*3+2048)/4.0 {
		t.Fatalf("AvgRequestSize = %v", got)
	}
	if got := s.SeqWriteRatio(); got != 0.5 {
		t.Fatalf("SeqWriteRatio = %v", got)
	}
	if got := s.SeqReadRatio(); got != 0.5 {
		t.Fatalf("SeqReadRatio = %v", got)
	}
	if s.MaxEnd != 102048 {
		t.Fatalf("MaxEnd = %d", s.MaxEnd)
	}
	if s.PageAccesses != 1+1+1+1 {
		t.Fatalf("PageAccesses = %d", s.PageAccesses)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.WriteRatio() != 0 || s.AvgRequestSize() != 0 || s.SeqReadRatio() != 0 || s.SeqWriteRatio() != 0 {
		t.Fatal("empty stats must be all zero")
	}
}

func TestParseSPC(t *testing.T) {
	in := `0,20941264,8192,W,0.551706
0,20939840,8192,W,0.554041
# comment
1,3208848,512,r,1.25
`
	reqs, err := ParseSPC(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("got %d requests", len(reqs))
	}
	if reqs[0].Offset != 20941264*512 || reqs[0].Length != 8192 || !reqs[0].IsWrite() {
		t.Fatalf("req0 = %+v", reqs[0])
	}
	if reqs[0].Arrival != 0 {
		t.Fatalf("first arrival = %d, want rebased 0", reqs[0].Arrival)
	}
	if want := int64(0.554041*1e9) - int64(0.551706*1e9); reqs[1].Arrival != want {
		t.Fatalf("second arrival = %d, want %d", reqs[1].Arrival, want)
	}
	if reqs[2].IsWrite() {
		t.Fatal("req2 should be a read")
	}
}

func TestParseSPCErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"short line", "0,1,2\n"},
		{"bad lba", "0,xx,8192,W,0.5\n"},
		{"bad size", "0,1,xx,W,0.5\n"},
		{"bad op", "0,1,8192,q,0.5\n"},
		{"bad timestamp", "0,1,8192,W,zz\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSPC(strings.NewReader(tc.in)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestParseMSR(t *testing.T) {
	in := `128166372003061629,ts,0,Read,665600,8192,1331
128166372016382155,ts,0,Write,1863680,4096,4768
`
	reqs, err := ParseMSR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("got %d requests", len(reqs))
	}
	if reqs[0].Arrival != 0 {
		t.Fatalf("first arrival = %d, want rebased 0", reqs[0].Arrival)
	}
	// Tick delta 13320526 * 100ns = 1332052600 ns.
	if reqs[1].Arrival != 13320526*100 {
		t.Fatalf("second arrival = %d", reqs[1].Arrival)
	}
	if reqs[0].IsWrite() || !reqs[1].IsWrite() {
		t.Fatal("op direction wrong")
	}
	if reqs[1].Offset != 1863680 || reqs[1].Length != 4096 {
		t.Fatalf("req1 = %+v", reqs[1])
	}
}

func TestParseMSRErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"short", "1,h,0,Read,5\n"},
		{"bad ts", "x,h,0,Read,0,4096\n"},
		{"bad type", "1,h,0,Zap,0,4096\n"},
		{"bad offset", "1,h,0,Read,x,4096\n"},
		{"bad size", "1,h,0,Read,0,x\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseMSR(strings.NewReader(tc.in)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestNativeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reqs := make([]Request, 200)
	var arrival int64
	for i := range reqs {
		arrival += int64(rng.Intn(1e6))
		reqs[i] = Request{
			Arrival: arrival,
			Offset:  int64(rng.Intn(1 << 28)),
			Length:  int64(1 + rng.Intn(1<<16)),
			Op:      opOf(rng.Intn(2) == 0),
		}
	}
	// ParseNative rebases arrivals to start at 0, so round-tripping shifts
	// every timestamp by the first request's arrival. Compare against the
	// rebased originals.
	base := reqs[0].Arrival
	for i := range reqs {
		reqs[i].Arrival -= base
	}
	var buf bytes.Buffer
	if err := WriteNative(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseNative(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip %d → %d requests", len(reqs), len(got))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("req %d: %+v != %+v", i, got[i], reqs[i])
		}
	}
}

func TestParseNativeErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"field count", "1,2,3\n"},
		{"bad arrival", "x,0,1,r\n"},
		{"bad offset", "1,x,1,r\n"},
		{"bad length", "1,0,x,r\n"},
		{"bad op", "1,0,1,z\n"},
		{"invalid request", "1,0,-5,r\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseNative(strings.NewReader(tc.in)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestFormatByName(t *testing.T) {
	for name, want := range map[string]Format{
		"native": FormatNative, "csv": FormatNative,
		"spc": FormatSPC, "umass": FormatSPC, "financial": FormatSPC,
		"msr": FormatMSR, "MSR": FormatMSR,
	} {
		got, err := FormatByName(name)
		if err != nil || got != want {
			t.Fatalf("FormatByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := FormatByName("nope"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestParseDispatch(t *testing.T) {
	if _, err := Parse(strings.NewReader(""), Format(99)); err == nil {
		t.Fatal("unknown format accepted")
	}
	reqs, err := Parse(strings.NewReader("0,0,4096,w\n"), FormatNative)
	if err != nil || len(reqs) != 1 {
		t.Fatalf("native dispatch: %v %d", err, len(reqs))
	}
}

func TestClamp(t *testing.T) {
	reqs := []Request{
		{Offset: 100, Length: 50},
		{Offset: 990, Length: 50},  // truncated to 10
		{Offset: 2000, Length: 10}, // wraps to 1000... 2000 % 1000 = 0
	}
	out := Clamp(reqs, 1000)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	if out[1].Length != 10 {
		t.Fatalf("truncated length = %d", out[1].Length)
	}
	if out[2].Offset != 0 {
		t.Fatalf("wrapped offset = %d", out[2].Offset)
	}
	for _, r := range out {
		if r.End() > 1000 {
			t.Fatalf("request escapes address space: %+v", r)
		}
	}
}

// Property: page splitting always covers the byte range exactly.
func TestQuickPageCoverage(t *testing.T) {
	f := func(off uint32, length uint16) bool {
		r := Request{Offset: int64(off), Length: int64(length) + 1}
		first, last := r.Pages(4096)
		if first*4096 > r.Offset || (last+1)*4096 < r.End() {
			return false // pages don't cover the request
		}
		if first > 0 && first*4096+4096 <= r.Offset {
			return false // first page too low
		}
		return last*4096 < r.End() // last page must intersect
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSPCRoundTrip(t *testing.T) {
	reqs := []Request{
		{Arrival: 0, Offset: 512 * 100, Length: 4096, Op: OpWrite},
		{Arrival: 1_500_000_000, Offset: 512 * 999, Length: 8192, Op: OpRead},
	}
	var buf bytes.Buffer
	if err := WriteSPC(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSPC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip %d → %d", len(reqs), len(got))
	}
	for i := range got {
		// SPC timestamps are seconds at µs precision; compare accordingly.
		if got[i].Offset != reqs[i].Offset || got[i].Length != reqs[i].Length ||
			got[i].Op != reqs[i].Op {
			t.Fatalf("req %d: %+v != %+v", i, got[i], reqs[i])
		}
		if d := got[i].Arrival - reqs[i].Arrival; d < -1000 || d > 1000 {
			t.Fatalf("req %d arrival off by %d ns", i, d)
		}
	}
}

func TestMSRRoundTrip(t *testing.T) {
	reqs := []Request{
		{Arrival: 0, Offset: 4096, Length: 4096, Op: OpRead},
		{Arrival: 2_000_000_000, Offset: 81920, Length: 512, Op: OpWrite},
	}
	var buf bytes.Buffer
	if err := WriteMSR(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip %d → %d", len(reqs), len(got))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("req %d: %+v != %+v", i, got[i], reqs[i])
		}
	}
}

func TestWriteDispatch(t *testing.T) {
	reqs := []Request{{Arrival: 0, Offset: 0, Length: 512, Op: OpWrite}}
	for _, f := range []Format{FormatNative, FormatSPC, FormatMSR} {
		var buf bytes.Buffer
		if err := Write(&buf, reqs, f); err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		got, err := Parse(&buf, f)
		if err != nil || len(got) != 1 {
			t.Fatalf("format %d: %v %d", f, err, len(got))
		}
	}
	if err := Write(nil, reqs, Format(99)); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func opOf(write bool) Op {
	if write {
		return OpWrite
	}
	return OpRead
}

// TestRebaseLateStartingTrace is the regression for the unified
// arrival-rebasing contract: traces captured at an arbitrary wall-clock
// epoch — including MSR's Windows FILETIME ticks, whose nanosecond
// conversion overflows int64 unless the parser rebases in the tick domain —
// must come back with the first request at time 0 and every inter-arrival
// gap preserved, identically across all three formats.
func TestRebaseLateStartingTrace(t *testing.T) {
	cases := []struct {
		name string
		in   string
		f    Format
	}{
		// Native trace starting 5000 s in.
		{"native", "5000000000000,0,4096,r\n5000000100000,4096,4096,w\n", FormatNative},
		// SPC trace starting at t=86400 s (a day of captured epoch).
		{"spc", "0,8,4096,r,86400.000000\n0,16,4096,w,86400.000100\n", FormatSPC},
		// MSR trace with a realistic 2007 FILETIME epoch (~1.28e17 ticks):
		// 1.28e17 ticks × 100 ns/tick = 1.28e19 ns, past int64's 9.2e18.
		{"msr", "128166372003061629,ts,0,Read,0,4096,0\n128166372003062629,ts,0,Write,4096,4096,0\n", FormatMSR},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reqs, err := Parse(strings.NewReader(tc.in), tc.f)
			if err != nil {
				t.Fatal(err)
			}
			if len(reqs) != 2 {
				t.Fatalf("got %d requests", len(reqs))
			}
			if reqs[0].Arrival != 0 {
				t.Fatalf("first arrival = %d, want rebased 0", reqs[0].Arrival)
			}
			if reqs[1].Arrival != 100_000 {
				t.Fatalf("gap = %d ns, want 100000", reqs[1].Arrival)
			}
		})
	}
}

// TestZeroLengthSkip checks the unified zero-length rule: zero-length
// read/write/trim marker records are silently dropped by every parser,
// while a flush — which legitimately has no payload — is kept.
func TestZeroLengthSkip(t *testing.T) {
	cases := []struct {
		name string
		in   string
		f    Format
	}{
		{"native", "100,0,0,r\n200,0,0,w\n300,0,0,t\n400,0,0,f\n500,4096,4096,w\n", FormatNative},
		{"spc", "0,0,0,r,0.1\n0,0,0,w,0.2\n0,0,0,t,0.3\n0,0,0,f,0.4\n0,8,4096,w,0.5\n", FormatSPC},
		{"msr", "1000,h,0,Read,0,0,0\n2000,h,0,Write,0,0,0\n3000,h,0,Trim,0,0,0\n4000,h,0,Flush,0,0,0\n5000,h,0,Write,4096,4096,0\n", FormatMSR},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reqs, err := Parse(strings.NewReader(tc.in), tc.f)
			if err != nil {
				t.Fatal(err)
			}
			if len(reqs) != 2 {
				t.Fatalf("got %d requests, want 2 (flush + real write)", len(reqs))
			}
			if reqs[0].Op != OpFlush {
				t.Fatalf("first kept request is %v, want flush", reqs[0].Op)
			}
			if reqs[1].Op != OpWrite || reqs[1].Length != 4096 {
				t.Fatalf("second kept request = %+v", reqs[1])
			}
		})
	}
}

// TestOpRoundTripAllFormats round-trips one request of every op kind
// through each format's writer and parser: the op must survive, and a
// flush must come back with no payload.
func TestOpRoundTripAllFormats(t *testing.T) {
	reqs := []Request{
		{Arrival: 0, Offset: 0, Length: 4096, Op: OpRead},
		{Arrival: 1_000_000, Offset: 4096, Length: 4096, Op: OpWrite},
		{Arrival: 2_000_000, Offset: 8192, Length: 4096, Op: OpWriteFUA},
		{Arrival: 3_000_000, Offset: 12288, Length: 8192, Op: OpTrim},
		{Arrival: 4_000_000, Offset: 0, Length: 0, Op: OpFlush},
	}
	for _, f := range []Format{FormatNative, FormatSPC, FormatMSR} {
		var buf bytes.Buffer
		if err := Write(&buf, reqs, f); err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		got, err := Parse(&buf, f)
		if err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("format %d: %d requests round-tripped, want %d", f, len(got), len(reqs))
		}
		for i := range got {
			if got[i].Op != reqs[i].Op {
				t.Errorf("format %d req %d: op %v, want %v", f, i, got[i].Op, reqs[i].Op)
			}
		}
		if got[4].Offset != 0 || got[4].Length != 0 {
			t.Errorf("format %d: flush came back with payload %+v", f, got[4])
		}
	}
}

// TestOpTokenParsing checks the shared token table: canonical single-letter
// tokens, long aliases, and case-insensitivity.
func TestOpTokenParsing(t *testing.T) {
	in := "100,0,4096,READ\n200,0,4096,Write\n300,0,4096,fua\n400,0,4096,discard\n500,0,0,FLUSH\n"
	reqs, err := ParseNative(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{OpRead, OpWrite, OpWriteFUA, OpTrim, OpFlush}
	if len(reqs) != len(want) {
		t.Fatalf("got %d requests", len(reqs))
	}
	for i := range want {
		if reqs[i].Op != want[i] {
			t.Errorf("req %d: op %v, want %v", i, reqs[i].Op, want[i])
		}
	}
}
