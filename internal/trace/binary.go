// The repository's binary trace format: a fixed-size versioned header
// followed by fixed 32-byte little-endian records, one per request. The
// format exists so multi-hundred-million-request traces (MSR-Cambridge scale)
// can be replayed in bounded memory: records are fixed-width and
// self-contained, so a reader seeks to any record by index, an mmap'd file is
// directly iterable (bytes.NewReader over the mapping satisfies io.ReaderAt),
// and the streaming iterator decodes into a caller-owned batch without
// allocating per request. cmd/tracegen transcodes the CSV formats (native,
// SPC, MSR) into it once; synthetic traces are generated straight into it
// without ever materializing the request slice.
//
// Layout (all integers little-endian):
//
//	header, 64 bytes
//	  [ 0: 8)  magic "FTLTRACE"
//	  [ 8:12)  format version (1)
//	  [12:16)  record size in bytes (32)
//	  [16:24)  record count; 0 = derive from file size
//	  [24:32)  MaxEnd: address-space high-water in bytes; 0 = unknown
//	  [32:36)  page-size convention in bytes (informational)
//	  [36:40)  source format the trace was transcoded from (Format)
//	  [40:64)  reserved, must be zero
//	record, 32 bytes
//	  [ 0: 8)  arrival, ns since trace start (rebased at conversion time)
//	  [ 8:16)  offset, bytes
//	  [16:24)  length, bytes
//	  [24:25)  op (trace.Op)
//	  [25:32)  reserved, must be zero
//
// Readers are strict: a wrong magic, version or record size, a truncated
// record region, a nonzero reserved byte, or a record that fails
// Request.Validate is an error, never a panic or an over-read — corrupt and
// truncated inputs must be diagnosable at MSR scale, where a silent skip
// would vanish into a hundred million good records.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

const (
	// binaryMagic opens every binary trace file.
	binaryMagic = "FTLTRACE"
	// BinaryVersion is the format version this package reads and writes.
	BinaryVersion = 1
	// BinaryHeaderSize is the size of the file header in bytes.
	BinaryHeaderSize = 64
	// BinaryRecordSize is the size of one request record in bytes.
	BinaryRecordSize = 32
)

// BinaryHeader is the decoded file header. The zero value is a valid header
// for a trace of unknown length and provenance.
type BinaryHeader struct {
	// Records is the number of records the writer claims; 0 means "derive
	// from the file size", which is what a streaming writer over a
	// non-seekable sink leaves behind.
	Records int64
	// MaxEnd is the trace's address-space high-water mark in bytes (the
	// largest Request.End), 0 if unknown. Replay sizes preconditioning
	// footprints from it without a pre-pass over the records.
	MaxEnd int64
	// PageBytes records the page-size convention the trace was produced
	// under (informational; 0 if unknown).
	PageBytes int
	// Source is the format the trace was transcoded from (FormatNative for
	// synthetic traces).
	Source Format
}

// encodeBinaryHeader serializes h into a 64-byte header block.
func encodeBinaryHeader(h BinaryHeader) [BinaryHeaderSize]byte {
	var b [BinaryHeaderSize]byte
	copy(b[0:8], binaryMagic)
	binary.LittleEndian.PutUint32(b[8:12], BinaryVersion)
	binary.LittleEndian.PutUint32(b[12:16], BinaryRecordSize)
	binary.LittleEndian.PutUint64(b[16:24], uint64(h.Records))
	binary.LittleEndian.PutUint64(b[24:32], uint64(h.MaxEnd))
	binary.LittleEndian.PutUint32(b[32:36], uint32(h.PageBytes))
	binary.LittleEndian.PutUint32(b[36:40], uint32(h.Source))
	return b
}

// decodeBinaryHeader validates and decodes a 64-byte header block.
func decodeBinaryHeader(b []byte) (BinaryHeader, error) {
	var h BinaryHeader
	if len(b) < BinaryHeaderSize {
		return h, fmt.Errorf("trace: binary header truncated: %d of %d bytes", len(b), BinaryHeaderSize)
	}
	if string(b[0:8]) != binaryMagic {
		return h, fmt.Errorf("trace: bad magic %q (want %q)", b[0:8], binaryMagic)
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != BinaryVersion {
		return h, fmt.Errorf("trace: unsupported binary trace version %d (want %d)", v, BinaryVersion)
	}
	if rs := binary.LittleEndian.Uint32(b[12:16]); rs != BinaryRecordSize {
		return h, fmt.Errorf("trace: unsupported record size %d (want %d)", rs, BinaryRecordSize)
	}
	h.Records = int64(binary.LittleEndian.Uint64(b[16:24]))
	h.MaxEnd = int64(binary.LittleEndian.Uint64(b[24:32]))
	h.PageBytes = int(binary.LittleEndian.Uint32(b[32:36]))
	h.Source = Format(binary.LittleEndian.Uint32(b[36:40]))
	switch {
	case h.Records < 0:
		return h, fmt.Errorf("trace: negative record count %d", h.Records)
	case h.MaxEnd < 0:
		return h, fmt.Errorf("trace: negative address high-water %d", h.MaxEnd)
	case h.Source != FormatNative && h.Source != FormatSPC && h.Source != FormatMSR:
		return h, fmt.Errorf("trace: unknown source format %d", h.Source)
	}
	for i := 40; i < BinaryHeaderSize; i++ {
		if b[i] != 0 {
			return h, fmt.Errorf("trace: nonzero reserved header byte at offset %d", i)
		}
	}
	return h, nil
}

// encodeRecord serializes r into its 32-byte record at b (len(b) must be at
// least BinaryRecordSize). The caller has validated r.
func encodeRecord(b []byte, r Request) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(r.Arrival))
	binary.LittleEndian.PutUint64(b[8:16], uint64(r.Offset))
	binary.LittleEndian.PutUint64(b[16:24], uint64(r.Length))
	b[24] = byte(r.Op)
	for i := 25; i < BinaryRecordSize; i++ {
		b[i] = 0
	}
}

// decodeRecord deserializes and validates one 32-byte record.
func decodeRecord(b []byte) (Request, error) {
	tail := binary.LittleEndian.Uint64(b[24:32])
	r := Request{
		Arrival: int64(binary.LittleEndian.Uint64(b[0:8])),
		Offset:  int64(binary.LittleEndian.Uint64(b[8:16])),
		Length:  int64(binary.LittleEndian.Uint64(b[16:24])),
		Op:      Op(tail), // low byte of the tail word
	}
	if tail>>8 != 0 { // bytes [25:32) must be zero; one word load checks all seven
		for i := 25; i < BinaryRecordSize; i++ {
			if b[i] != 0 {
				return r, fmt.Errorf("nonzero reserved record byte at offset %d", i)
			}
		}
	}
	if err := r.Validate(); err != nil {
		return r, err
	}
	return r, nil
}

// BinaryWriter streams requests into the binary format without buffering the
// trace: each WriteRequest encodes one record, so a hundred-million-request
// synthetic trace is produced in constant memory. The writer tracks the
// record count and address high-water and, when the sink is seekable (an
// *os.File), backfills them into the header at Finish; over a pipe the header
// keeps Records/MaxEnd 0 and readers derive the count from the file size.
type BinaryWriter struct {
	bw      *bufio.Writer
	seek    io.WriteSeeker // non-nil when the header can be backfilled
	hdr     BinaryHeader
	records int64
	maxEnd  int64
	rec     [BinaryRecordSize]byte
	err     error
}

// NewBinaryWriter writes the header for hdr (Records and MaxEnd may be zero;
// Finish backfills them on seekable sinks) and returns a streaming writer.
func NewBinaryWriter(w io.Writer, hdr BinaryHeader) (*BinaryWriter, error) {
	b := &BinaryWriter{bw: bufio.NewWriterSize(w, 1<<20), hdr: hdr}
	if ws, ok := w.(io.WriteSeeker); ok {
		b.seek = ws
	}
	h := encodeBinaryHeader(hdr)
	if _, err := b.bw.Write(h[:]); err != nil {
		return nil, fmt.Errorf("trace: writing binary header: %w", err)
	}
	return b, nil
}

// WriteRequest validates and appends one record.
func (b *BinaryWriter) WriteRequest(r Request) error {
	if b.err != nil {
		return b.err
	}
	if err := r.Validate(); err != nil {
		b.err = err
		return err
	}
	encodeRecord(b.rec[:], r)
	if _, err := b.bw.Write(b.rec[:]); err != nil {
		b.err = fmt.Errorf("trace: writing record %d: %w", b.records, err)
		return b.err
	}
	b.records++
	if end := r.End(); end > b.maxEnd {
		b.maxEnd = end
	}
	return nil
}

// Records returns how many records have been written.
func (b *BinaryWriter) Records() int64 { return b.records }

// Finish flushes buffered records and, when the underlying sink is seekable,
// rewrites the header with the final record count and address high-water.
func (b *BinaryWriter) Finish() error {
	if b.err != nil {
		return b.err
	}
	if err := b.bw.Flush(); err != nil {
		b.err = err
		return err
	}
	if b.seek == nil {
		return nil
	}
	hdr := b.hdr
	hdr.Records = b.records
	if hdr.MaxEnd == 0 {
		hdr.MaxEnd = b.maxEnd
	}
	h := encodeBinaryHeader(hdr)
	if _, err := b.seek.Seek(0, io.SeekStart); err != nil {
		b.err = fmt.Errorf("trace: backfilling binary header: %w", err)
		return b.err
	}
	if _, err := b.seek.Write(h[:]); err != nil {
		b.err = fmt.Errorf("trace: backfilling binary header: %w", err)
		return b.err
	}
	if _, err := b.seek.Seek(BinaryHeaderSize+b.records*BinaryRecordSize, io.SeekStart); err != nil {
		b.err = fmt.Errorf("trace: restoring write position: %w", err)
		return b.err
	}
	return nil
}

// WriteBinary serializes reqs in the binary format (eager convenience; the
// streaming path is NewBinaryWriter).
func WriteBinary(w io.Writer, reqs []Request) error {
	bw, err := NewBinaryWriter(w, BinaryHeader{Records: int64(len(reqs)), PageBytes: SummaryPageBytes})
	if err != nil {
		return err
	}
	for _, r := range reqs {
		if err := bw.WriteRequest(r); err != nil {
			return err
		}
	}
	return bw.Finish()
}

// Stream is the zero-allocation iterator over a binary trace. It reads
// fixed-size record runs through an io.ReaderAt (a file, or bytes.NewReader
// over an mmap'd region) into an internal chunk buffer and decodes them into
// the caller's batch, so steady-state iteration allocates nothing and
// resident memory is O(batch), independent of trace length.
type Stream struct {
	r       io.ReaderAt
	f       *os.File // set by OpenBinary; Close target
	mapped  []byte   // whole-file mmap when available; munmapped by Close
	data    []byte   // record region of mapped; Next decodes it zero-copy
	hdr     BinaryHeader
	records int64 // authoritative count (header, cross-checked with size)
	next    int64 // index of the next record to yield
	buf     []byte
}

// NewStream validates the header of a binary trace held in r (size is the
// total byte length, header included) and returns an iterator positioned at
// the first record.
func NewStream(r io.ReaderAt, size int64) (*Stream, error) {
	var hb [BinaryHeaderSize]byte
	if size < BinaryHeaderSize {
		return nil, fmt.Errorf("trace: binary trace of %d bytes is shorter than its %d-byte header", size, BinaryHeaderSize)
	}
	if _, err := r.ReadAt(hb[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading binary header: %w", err)
	}
	hdr, err := decodeBinaryHeader(hb[:])
	if err != nil {
		return nil, err
	}
	body := size - BinaryHeaderSize
	if body%BinaryRecordSize != 0 {
		return nil, fmt.Errorf("trace: record region of %d bytes is not a multiple of the %d-byte record size (truncated?)", body, BinaryRecordSize)
	}
	records := body / BinaryRecordSize
	if hdr.Records != 0 && hdr.Records != records {
		return nil, fmt.Errorf("trace: header claims %d records, file holds %d (truncated?)", hdr.Records, records)
	}
	return &Stream{r: r, hdr: hdr, records: records}, nil
}

// OpenBinary opens a binary trace file for streaming. The file is mmap'd
// where the platform allows it, so Next decodes records straight out of the
// page cache with no read syscalls or copies; otherwise Next falls back to
// positioned reads. The caller must Close the stream.
func OpenBinary(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := NewStream(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	s.f = f
	if m := mmapFile(f, st.Size()); m != nil {
		s.mapped = m
		s.data = m[BinaryHeaderSize:]
	}
	return s, nil
}

// Close releases the mapping and underlying file when the stream owns them
// (OpenBinary).
func (s *Stream) Close() error {
	if s.mapped != nil {
		munmapFile(s.mapped)
		s.mapped, s.data = nil, nil
	}
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Header returns the decoded file header.
func (s *Stream) Header() BinaryHeader { return s.hdr }

// Records returns the trace's record count (derived from the file size when
// the header leaves it 0).
func (s *Stream) Records() int64 { return s.records }

// MaxEnd returns the trace's address-space high-water mark in bytes, 0 if
// the header does not carry one. Replay uses it to size preconditioning
// footprints without a pre-pass.
func (s *Stream) MaxEnd() int64 { return s.hdr.MaxEnd }

// Reset rewinds the stream to the first record.
func (s *Stream) Reset() { s.next = 0 }

// Next implements Iterator: it fills batch with up to len(batch) requests
// decoded from the next records and reports how many were produced. The end
// of the trace is (0, io.EOF). The batch's backing array is caller-owned and
// reused across calls; steady-state calls allocate nothing.
func (s *Stream) Next(batch []Request) (int, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("trace: Stream.Next with an empty batch")
	}
	left := s.records - s.next
	if left <= 0 {
		return 0, io.EOF
	}
	n := len(batch)
	if int64(n) > left {
		n = int(left)
	}
	var src []byte
	if s.data != nil {
		// Zero-copy fast path: decode straight from the mapping.
		src = s.data[s.next*BinaryRecordSize:]
	} else {
		want := n * BinaryRecordSize
		if cap(s.buf) < want {
			s.buf = make([]byte, want)
		}
		s.buf = s.buf[:want]
		off := BinaryHeaderSize + s.next*BinaryRecordSize
		if _, err := io.ReadFull(io.NewSectionReader(s.r, off, int64(want)), s.buf); err != nil {
			return 0, fmt.Errorf("trace: reading records %d..%d: %w", s.next, s.next+int64(n), err)
		}
		src = s.buf
	}
	for i := 0; i < n; i++ {
		r, err := decodeRecord(src[i*BinaryRecordSize:])
		if err != nil {
			return 0, fmt.Errorf("trace: record %d: %w", s.next+int64(i), err)
		}
		batch[i] = r
	}
	s.next += int64(n)
	return n, nil
}

// ReadBinary eagerly decodes a whole binary trace (tests and small fixtures;
// replay at scale should iterate a Stream instead).
func ReadBinary(r io.ReaderAt, size int64) ([]Request, error) {
	s, err := NewStream(r, size)
	if err != nil {
		return nil, err
	}
	// readBatch is a decode batch length, not page geometry.
	const readBatch = 4096
	out := make([]Request, 0, s.Records())
	buf := make([]Request, readBatch)
	for {
		n, err := s.Next(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// parseBinary adapts the eager Parse dispatch to the binary format: the
// reader is drained into memory and decoded. Large traces should stream via
// OpenBinary/NewStream instead.
func parseBinary(r io.Reader) ([]Request, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ReadBinary(bytes.NewReader(data), int64(len(data)))
}
