package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Format identifies an on-disk trace format.
type Format int

const (
	// FormatNative is this repository's CSV: arrival_ns,offset,length,op.
	FormatNative Format = iota
	// FormatSPC is the UMass trace repository SPC format used by the
	// Financial1/Financial2 traces: ASU,LBA,Size,Opcode,Timestamp[,...].
	// LBA is in 512-byte sectors; Size is in bytes.
	FormatSPC
	// FormatMSR is the MSR Cambridge CSV:
	// Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime.
	FormatMSR
	// FormatBinary is this repository's fixed-record binary format (see
	// binary.go): streamable in bounded memory, the target of
	// `tracegen convert`.
	FormatBinary
)

// spcSectorSize is the unit of the LBA column in UMass SPC traces.
const spcSectorSize = 512

// maxLineBytes bounds a single trace line. Captured traces occasionally
// carry pathological lines (concatenated records, huge vendor comment
// blobs); bufio.Scanner's default 64 KB cap — and the 1 MB cap the parsers
// used before this was centralized — abort the whole parse on them with an
// unhelpful "token too long". 16 MB is far beyond any legitimate record yet
// still bounds memory on a malformed input.
const maxLineBytes = 16 << 20

// newLineScanner builds the line scanner all CSV parsers share, with the
// explicit buffer sizing in one place.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), maxLineBytes)
	return sc
}

// ParseError reports a malformed trace line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("trace: line %d: %s", e.Line, e.Msg)
}

// parseOpToken maps an opcode token shared across the trace formats to an
// Op. Accepted tokens (case-insensitive): r/read, w/write, wf/fua/writefua,
// t/trim/discard, f/flush.
func parseOpToken(tok string) (Op, bool) {
	switch strings.ToLower(tok) {
	case "r", "read":
		return OpRead, true
	case "w", "write":
		return OpWrite, true
	case "wf", "fua", "writefua":
		return OpWriteFUA, true
	case "t", "trim", "discard":
		return OpTrim, true
	case "f", "flush":
		return OpFlush, true
	}
	return 0, false
}

// opToken returns the canonical single-token spelling of an op for the
// native and SPC writers.
func opToken(o Op) string {
	switch o {
	case OpRead:
		return "r"
	case OpWrite:
		return "w"
	case OpWriteFUA:
		return "wf"
	case OpTrim:
		return "t"
	case OpFlush:
		return "f"
	}
	return "?"
}

// rebaseArrivals shifts arrival timestamps so the first request arrives at
// time 0, preserving all inter-arrival gaps. Captured traces start at an
// arbitrary wall-clock epoch; without rebasing, a replay would idle for the
// whole epoch of simulated time before the first request. All parsers apply
// it, so the behavior is uniform across formats.
func rebaseArrivals(reqs []Request) {
	if len(reqs) == 0 {
		return
	}
	base := reqs[0].Arrival
	if base == 0 {
		return
	}
	for i := range reqs {
		reqs[i].Arrival -= base
	}
}

// skippableZeroLength reports whether a parsed line with size 0 should be
// silently dropped. Captured traces contain zero-length marker records for
// reads, writes and trims; every parser skips them identically. A flush
// legitimately has no payload and is never skipped.
func skippableZeroLength(op Op, size int64) bool {
	return size == 0 && op != OpFlush
}

// ParseSPC reads an SPC-format trace (UMass Financial1/2):
//
//	ASU,LBA,Size,Opcode,Timestamp
//
// where LBA is the address in 512-byte sectors, Size is in bytes, Opcode is
// r/R, w/W, wf (FUA write), t/T (trim) or f/F (flush), and Timestamp is in
// seconds (float). Extra trailing fields are ignored. Arrival times are
// rebased so the first request arrives at 0. The paper's Financial traces
// use this format.
func ParseSPC(r io.Reader) ([]Request, error) {
	var out []Request
	sc := newLineScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 5 {
			return nil, &ParseError{lineNo, fmt.Sprintf("want ≥5 fields, got %d", len(f))}
		}
		lba, err := strconv.ParseInt(strings.TrimSpace(f[1]), 10, 64)
		if err != nil {
			return nil, &ParseError{lineNo, "bad LBA: " + err.Error()}
		}
		size, err := strconv.ParseInt(strings.TrimSpace(f[2]), 10, 64)
		if err != nil {
			return nil, &ParseError{lineNo, "bad size: " + err.Error()}
		}
		op, ok := parseOpToken(strings.TrimSpace(f[3]))
		if !ok {
			return nil, &ParseError{lineNo, "bad opcode " + strings.TrimSpace(f[3])}
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(f[4]), 64)
		if err != nil {
			return nil, &ParseError{lineNo, "bad timestamp: " + err.Error()}
		}
		if skippableZeroLength(op, size) {
			continue // some traces contain zero-length markers
		}
		req := Request{
			Arrival: int64(ts * 1e9),
			Offset:  lba * spcSectorSize,
			Length:  size,
			Op:      op,
		}
		if op == OpFlush {
			req.Offset, req.Length = 0, 0
		}
		if err := req.Validate(); err != nil {
			return nil, &ParseError{lineNo, err.Error()}
		}
		out = append(out, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading SPC trace: %w", err)
	}
	rebaseArrivals(out)
	return out, nil
}

// msrTicksPerSecond is the unit of the MSR Timestamp column (Windows
// filetime: 100 ns ticks).
const msrTicksPerSecond = 10_000_000

// ParseMSR reads an MSR Cambridge CSV trace:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is a Windows filetime (100 ns ticks), Offset and Size are in
// bytes, Type is Read/Write/Trim/Flush/WriteFUA. Arrival times are rebased
// so the first request arrives at 0.
func ParseMSR(r io.Reader) ([]Request, error) {
	var out []Request
	var baseTicks int64
	haveBase := false
	sc := newLineScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 6 {
			return nil, &ParseError{lineNo, fmt.Sprintf("want ≥6 fields, got %d", len(f))}
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
		if err != nil {
			return nil, &ParseError{lineNo, "bad timestamp: " + err.Error()}
		}
		op, ok := parseOpToken(strings.TrimSpace(f[3]))
		if !ok {
			return nil, &ParseError{lineNo, "bad type " + strings.TrimSpace(f[3])}
		}
		off, err := strconv.ParseInt(strings.TrimSpace(f[4]), 10, 64)
		if err != nil {
			return nil, &ParseError{lineNo, "bad offset: " + err.Error()}
		}
		size, err := strconv.ParseInt(strings.TrimSpace(f[5]), 10, 64)
		if err != nil {
			return nil, &ParseError{lineNo, "bad size: " + err.Error()}
		}
		if skippableZeroLength(op, size) {
			continue
		}
		// Rebase in the tick domain: MSR timestamps are Windows FILETIME
		// ticks (~1.3e17 for 2007-era captures), and converting an absolute
		// tick count to nanoseconds overflows int64. Subtracting the first
		// request's ticks before scaling keeps the arithmetic in range.
		if !haveBase {
			baseTicks, haveBase = ts, true
		}
		req := Request{
			Arrival: (ts - baseTicks) * (1e9 / msrTicksPerSecond),
			Offset:  off,
			Length:  size,
			Op:      op,
		}
		if op == OpFlush {
			req.Offset, req.Length = 0, 0
		}
		if err := req.Validate(); err != nil {
			return nil, &ParseError{lineNo, err.Error()}
		}
		out = append(out, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading MSR trace: %w", err)
	}
	rebaseArrivals(out)
	return out, nil
}

// ParseNative reads the native CSV format: arrival_ns,offset,length,op with
// op ∈ {r, w, wf, t, f}. Lines starting with '#' are comments. Arrival
// times are rebased so the first request arrives at 0, matching the SPC and
// MSR parsers.
func ParseNative(r io.Reader) ([]Request, error) {
	var out []Request
	sc := newLineScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 4 {
			return nil, &ParseError{lineNo, fmt.Sprintf("want 4 fields, got %d", len(f))}
		}
		arrival, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
		if err != nil {
			return nil, &ParseError{lineNo, "bad arrival: " + err.Error()}
		}
		off, err := strconv.ParseInt(strings.TrimSpace(f[1]), 10, 64)
		if err != nil {
			return nil, &ParseError{lineNo, "bad offset: " + err.Error()}
		}
		size, err := strconv.ParseInt(strings.TrimSpace(f[2]), 10, 64)
		if err != nil {
			return nil, &ParseError{lineNo, "bad length: " + err.Error()}
		}
		op, ok := parseOpToken(strings.TrimSpace(f[3]))
		if !ok {
			return nil, &ParseError{lineNo, "bad op " + strings.TrimSpace(f[3])}
		}
		if skippableZeroLength(op, size) {
			continue
		}
		req := Request{Arrival: arrival, Offset: off, Length: size, Op: op}
		if err := req.Validate(); err != nil {
			return nil, &ParseError{lineNo, err.Error()}
		}
		out = append(out, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading native trace: %w", err)
	}
	rebaseArrivals(out)
	return out, nil
}

// Parse reads a trace in the given format.
func Parse(r io.Reader, f Format) ([]Request, error) {
	switch f {
	case FormatNative:
		return ParseNative(r)
	case FormatSPC:
		return ParseSPC(r)
	case FormatMSR:
		return ParseMSR(r)
	case FormatBinary:
		return parseBinary(r)
	default:
		return nil, fmt.Errorf("trace: unknown format %d", f)
	}
}

// FormatByName maps user-facing names to Format values.
func FormatByName(name string) (Format, error) {
	switch strings.ToLower(name) {
	case "native", "csv":
		return FormatNative, nil
	case "spc", "umass", "financial":
		return FormatSPC, nil
	case "msr", "cambridge":
		return FormatMSR, nil
	case "binary", "bin", "ftr":
		return FormatBinary, nil
	default:
		return 0, fmt.Errorf("trace: unknown format %q (want native, spc, msr or binary)", name)
	}
}

// WriteNative writes reqs in the native CSV format.
func WriteNative(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# arrival_ns,offset,length,op"); err != nil {
		return err
	}
	for _, r := range reqs {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%s\n", r.Arrival, r.Offset, r.Length, opToken(r.Op)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSPC writes reqs in the UMass SPC format (ASU,LBA,Size,Opcode,
// Timestamp), the format of the paper's Financial traces. Offsets are
// rounded down to 512-byte sector boundaries.
func WriteSPC(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		if _, err := fmt.Fprintf(bw, "0,%d,%d,%s,%.6f\n",
			r.Offset/spcSectorSize, r.Length, opToken(r.Op), float64(r.Arrival)/1e9); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// msrTypeName spells an op in the Type column style of MSR Cambridge CSVs.
func msrTypeName(o Op) string {
	switch o {
	case OpRead:
		return "Read"
	case OpWrite:
		return "Write"
	case OpWriteFUA:
		return "WriteFUA"
	case OpTrim:
		return "Trim"
	case OpFlush:
		return "Flush"
	}
	return "?"
}

// WriteMSR writes reqs in the MSR Cambridge CSV format (Timestamp,Hostname,
// DiskNumber,Type,Offset,Size,ResponseTime), the format of the paper's
// MSR-ts/MSR-src traces.
func WriteMSR(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		ticks := r.Arrival / (1e9 / msrTicksPerSecond)
		if _, err := fmt.Fprintf(bw, "%d,host,0,%s,%d,%d,0\n",
			ticks, msrTypeName(r.Op), r.Offset, r.Length); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Write serializes reqs in the given format.
func Write(w io.Writer, reqs []Request, f Format) error {
	switch f {
	case FormatNative:
		return WriteNative(w, reqs)
	case FormatSPC:
		return WriteSPC(w, reqs)
	case FormatMSR:
		return WriteMSR(w, reqs)
	case FormatBinary:
		return WriteBinary(w, reqs)
	default:
		return fmt.Errorf("trace: unknown format %d", f)
	}
}
