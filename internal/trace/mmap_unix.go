//go:build linux || darwin

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. A nil return (empty file, oversized on a
// 32-bit platform, or any mmap failure) sends the caller down the pread
// path; the mapping is an optimization, never a requirement.
func mmapFile(f *os.File, size int64) []byte {
	if size <= 0 || int64(int(size)) != size {
		return nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil
	}
	return data
}

func munmapFile(data []byte) {
	_ = syscall.Munmap(data)
}
