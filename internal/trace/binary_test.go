package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// genRequests builds a deterministic request mix covering all five ops with
// varied sizes, gaps and arrival patterns.
func genRequests(n int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, 0, n)
	arrival := int64(0)
	for i := 0; i < n; i++ {
		arrival += rng.Int63n(50_000)
		op := Op(rng.Intn(int(NumOps)))
		r := Request{Arrival: arrival, Op: op}
		if op != OpFlush {
			r.Offset = rng.Int63n(1 << 30)
			r.Length = (rng.Int63n(64) + 1) * 512
		}
		reqs = append(reqs, r)
	}
	return reqs
}

func TestBinaryRoundTrip(t *testing.T) {
	reqs := genRequests(5000, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, reqs); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	wantSize := int64(BinaryHeaderSize + len(reqs)*BinaryRecordSize)
	if int64(buf.Len()) != wantSize {
		t.Fatalf("encoded size = %d, want %d", buf.Len(), wantSize)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d requests, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("request %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
}

// TestBinaryStreamEqualsEagerParse is the round-trip property the streaming
// engine rests on: for every text format, parse → transcode to binary →
// iterate must reproduce the eager parse bit-for-bit, including zero-length
// skips and arrival rebasing applied by the text parsers.
func TestBinaryStreamEqualsEagerParse(t *testing.T) {
	cases := []struct {
		name   string
		format Format
		input  string
	}{
		{"native", FormatNative, strings.Join([]string{
			"# arrival_ns,offset,length,op",
			"5000,4096,8192,r",
			"6000,0,4096,w",
			"6500,8192,0,w", // zero-length marker: skipped
			"7000,12288,4096,wf",
			"8000,4096,8192,t",
			"9000,0,0,f",
		}, "\n")},
		{"spc", FormatSPC, strings.Join([]string{
			"0,8,4096,r,1.000000",
			"0,16,8192,W,1.010000",
			"0,24,0,r,1.015000", // zero-length marker: skipped
			"0,32,4096,wf,1.020000",
			"0,8,4096,t,1.030000",
			"0,0,0,f,1.040000",
		}, "\n")},
		{"msr", FormatMSR, strings.Join([]string{
			"128166372003061629,host,0,Read,7014609920,24576,41286",
			"128166372016382155,host,0,Write,1317441536,8192,1963",
			"128166372026382155,host,0,Read,1317441536,0,10", // skipped
			"128166372036382155,host,0,WriteFUA,1317449728,4096,1963",
			"128166372046382155,host,0,Trim,7014609920,24576,0",
			"128166372056382155,host,0,Flush,0,0,0",
		}, "\n")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eager, err := Parse(strings.NewReader(tc.input), tc.format)
			if err != nil {
				t.Fatalf("Parse(%v): %v", tc.format, err)
			}
			if eager[0].Arrival != 0 {
				t.Fatalf("arrival not rebased: first arrival = %d", eager[0].Arrival)
			}
			var bin bytes.Buffer
			bw, err := NewBinaryWriter(&bin, BinaryHeader{Source: tc.format})
			if err != nil {
				t.Fatalf("NewBinaryWriter: %v", err)
			}
			for _, r := range eager {
				if err := bw.WriteRequest(r); err != nil {
					t.Fatalf("WriteRequest: %v", err)
				}
			}
			if err := bw.Finish(); err != nil {
				t.Fatalf("Finish: %v", err)
			}

			s, err := NewStream(bytes.NewReader(bin.Bytes()), int64(bin.Len()))
			if err != nil {
				t.Fatalf("NewStream: %v", err)
			}
			if s.Header().Source != tc.format {
				t.Errorf("header source = %v, want %v", s.Header().Source, tc.format)
			}
			// Iterate with a deliberately awkward batch size so requests
			// straddle batch boundaries.
			var streamed []Request
			batch := make([]Request, 3)
			for {
				n, err := s.Next(batch)
				streamed = append(streamed, batch[:n]...)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("Next: %v", err)
				}
			}
			if len(streamed) != len(eager) {
				t.Fatalf("streamed %d requests, eager parse has %d", len(streamed), len(eager))
			}
			for i := range eager {
				if streamed[i] != eager[i] {
					t.Fatalf("request %d: streamed %+v, eager %+v", i, streamed[i], eager[i])
				}
			}
			// The eager dispatch path must agree too.
			viaParse, err := Parse(bytes.NewReader(bin.Bytes()), FormatBinary)
			if err != nil {
				t.Fatalf("Parse(binary): %v", err)
			}
			if len(viaParse) != len(eager) {
				t.Fatalf("Parse(binary) got %d requests, want %d", len(viaParse), len(eager))
			}
		})
	}
}

func TestBinaryWriterBackfillsHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ftr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := NewBinaryWriter(f, BinaryHeader{Source: FormatNative, PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	reqs := genRequests(257, 2)
	var wantMax int64
	for _, r := range reqs {
		if err := bw.WriteRequest(r); err != nil {
			t.Fatal(err)
		}
		if r.End() > wantMax {
			wantMax = r.End()
		}
	}
	if err := bw.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenBinary(path)
	if err != nil {
		t.Fatalf("OpenBinary: %v", err)
	}
	defer s.Close()
	if s.Records() != int64(len(reqs)) {
		t.Errorf("Records = %d, want %d", s.Records(), len(reqs))
	}
	if s.Header().Records != int64(len(reqs)) {
		t.Errorf("header records = %d, want %d (backfill missing)", s.Header().Records, len(reqs))
	}
	if s.MaxEnd() != wantMax {
		t.Errorf("MaxEnd = %d, want %d", s.MaxEnd(), wantMax)
	}
	if s.Header().PageBytes != 4096 {
		t.Errorf("header page bytes = %d, want 4096", s.Header().PageBytes)
	}
}

// TestBinaryWriterNonSeekableSink checks the pipe case: no backfill, header
// count stays 0, and the reader derives the count from the size.
func TestBinaryWriterNonSeekableSink(t *testing.T) {
	var buf bytes.Buffer // not an io.WriteSeeker
	bw, err := NewBinaryWriter(&buf, BinaryHeader{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range genRequests(10, 3) {
		if err := bw.WriteRequest(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Finish(); err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Header().Records != 0 {
		t.Errorf("header records = %d, want 0 on a non-seekable sink", s.Header().Records)
	}
	if s.Records() != 10 {
		t.Errorf("Records = %d, want 10 (derived from size)", s.Records())
	}
}

func TestBinaryWriterRejectsInvalidRequest(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, BinaryHeader{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteRequest(Request{Op: OpFlush, Length: 4096}); err == nil {
		t.Fatal("want error writing a flush with payload")
	}
	if err := bw.Finish(); err == nil {
		t.Fatal("want Finish to report the sticky error")
	}
}

func TestStreamReset(t *testing.T) {
	reqs := genRequests(100, 4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	drain := func() int {
		total := 0
		b := make([]Request, 7)
		for {
			n, err := s.Next(b)
			total += n
			if err == io.EOF {
				return total
			}
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
		}
	}
	if n := drain(); n != 100 {
		t.Fatalf("first pass drained %d, want 100", n)
	}
	s.Reset()
	if n := drain(); n != 100 {
		t.Fatalf("post-Reset pass drained %d, want 100", n)
	}
}

// TestStreamNextZeroAlloc pins the iterator's zero-allocation contract:
// once the chunk buffer has grown, Next must not allocate.
func TestStreamNextZeroAlloc(t *testing.T) {
	reqs := genRequests(10000, 5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(buf.Bytes())
	s, err := NewStream(rd, int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Request, 512)
	if _, err := s.Next(batch); err != nil { // grow the chunk buffer once
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.Next(batch); err != nil {
			s.Reset()
		}
	})
	if allocs > 0.1 {
		t.Fatalf("Stream.Next allocates %.2f/op, want 0", allocs)
	}
}

// TestOpenBinaryMappedMatchesEager pins the mmap fast path: a stream opened
// from a file (mapped where the platform supports it) must yield exactly what
// the eager decoder produces, survive Reset, and stay zero-alloc.
func TestOpenBinaryMappedMatchesEager(t *testing.T) {
	reqs := genRequests(3000, 7)
	path := filepath.Join(t.TempDir(), "mapped.ftr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, reqs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if runtime.GOOS == "linux" || runtime.GOOS == "darwin" {
		if s.data == nil {
			t.Fatalf("OpenBinary did not map the file on %s", runtime.GOOS)
		}
	}
	drain := func() []Request {
		var out []Request
		b := make([]Request, 7) // awkward size: records straddle batches
		for {
			n, err := s.Next(b)
			out = append(out, b[:n]...)
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		got := drain()
		if len(got) != len(reqs) {
			t.Fatalf("pass %d: drained %d requests, want %d", pass, len(got), len(reqs))
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				t.Fatalf("pass %d: request %d = %+v, want %+v", pass, i, got[i], reqs[i])
			}
		}
		s.Reset()
	}
	batch := make([]Request, 512)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.Next(batch); err != nil {
			s.Reset()
		}
	})
	if allocs > 0.1 {
		t.Fatalf("mapped Stream.Next allocates %.2f/op, want 0", allocs)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}

func TestStreamRejectsCorruptInputs(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, genRequests(8, 6)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		openErr bool // error at NewStream (vs at Next)
	}{
		{"empty", func(b []byte) []byte { return nil }, true},
		{"short-header", func(b []byte) []byte { return b[:BinaryHeaderSize-1] }, true},
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }, true},
		{"bad-version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 99)
			return b
		}, true},
		{"bad-record-size", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:16], 16)
			return b
		}, true},
		{"reserved-header-byte", func(b []byte) []byte { b[63] = 1; return b }, true},
		{"truncated-record", func(b []byte) []byte { return b[:len(b)-5] }, true},
		{"count-mismatch", func(b []byte) []byte { return b[:len(b)-2*BinaryRecordSize] }, true},
		{"bad-source", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[36:40], 7)
			return b
		}, true},
		{"bad-op", func(b []byte) []byte { b[BinaryHeaderSize+24] = byte(NumOps); return b }, false},
		{"reserved-record-byte", func(b []byte) []byte { b[BinaryHeaderSize+31] = 1; return b }, false},
		{"flush-with-payload", func(b []byte) []byte {
			// Rewrite record 0 as a flush carrying a nonzero length.
			binary.LittleEndian.PutUint64(b[BinaryHeaderSize+8:], 0)
			binary.LittleEndian.PutUint64(b[BinaryHeaderSize+16:], 4096)
			b[BinaryHeaderSize+24] = byte(OpFlush)
			return b
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), good()...))
			s, err := NewStream(bytes.NewReader(data), int64(len(data)))
			if tc.openErr {
				if err == nil {
					t.Fatal("want NewStream error")
				}
				return
			}
			if err != nil {
				t.Fatalf("NewStream: %v", err)
			}
			batch := make([]Request, 16)
			if _, err := s.Next(batch); err == nil {
				t.Fatal("want Next error on corrupt record")
			}
		})
	}
}

// FuzzBinaryDecode feeds arbitrary bytes through the streaming decoder: it
// must never panic or over-read, and whenever it accepts an input, every
// decoded record must be valid and re-encode to the identical file.
func FuzzBinaryDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, genRequests(20, 7)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:BinaryHeaderSize])
	f.Add(seed.Bytes()[:BinaryHeaderSize+BinaryRecordSize/2])
	f.Add([]byte(binaryMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := ReadBinary(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		bw, err := NewBinaryWriter(&out, BinaryHeader{})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range reqs {
			if verr := r.Validate(); verr != nil {
				t.Fatalf("decoder accepted invalid request %d: %v", i, verr)
			}
			if err := bw.WriteRequest(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.Finish(); err != nil {
			t.Fatal(err)
		}
		// Accepted inputs re-encode byte-for-byte except the header, whose
		// Records/MaxEnd/PageBytes/Source metadata the original may have
		// left unset or set differently.
		if !bytes.Equal(out.Bytes()[BinaryHeaderSize:], data[BinaryHeaderSize:]) {
			t.Fatal("record region does not round-trip")
		}
	})
}

func TestLimitIterator(t *testing.T) {
	reqs := genRequests(20, 8)
	it := NewSliceIterator(reqs)
	lim := Limit(it, 7)
	batch := make([]Request, 5)
	var got []Request
	for {
		n, err := lim.Next(batch)
		got = append(got, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 7 {
		t.Fatalf("Limit(7) yielded %d requests", len(got))
	}
	// The underlying iterator resumes exactly where the limit stopped.
	n, err := it.Next(batch)
	if err != nil {
		t.Fatal(err)
	}
	if batch[0] != reqs[7] {
		t.Fatalf("underlying iterator resumed at %+v, want %+v", batch[0], reqs[7])
	}
	_ = n
}

func TestSliceIteratorDrain(t *testing.T) {
	reqs := genRequests(10, 9)
	it := NewSliceIterator(reqs)
	batch := make([]Request, 4)
	var got []Request
	for {
		n, err := it.Next(batch)
		got = append(got, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("request %d mismatch", i)
		}
	}
	if n, err := it.Next(batch); n != 0 || err != io.EOF {
		t.Fatalf("drained iterator returned (%d, %v), want (0, EOF)", n, err)
	}
	it.Reset()
	if n, _ := it.Next(batch); n != 4 {
		t.Fatalf("post-Reset Next returned %d", n)
	}
}

// TestStatsAccumMatchesSummarize pins the streamed statistics path to the
// eager one on a mixed op stream.
func TestStatsAccumMatchesSummarize(t *testing.T) {
	reqs := genRequests(5000, 10)
	want := Summarize(reqs)
	var a StatsAccum
	for _, r := range reqs {
		a.Add(r)
	}
	if a.Stats() != want {
		t.Fatalf("StatsAccum = %+v, want %+v", a.Stats(), want)
	}
}

// TestParserLongLine is the regression for the scanner token cap: a comment
// line far beyond bufio.Scanner's former 1 MB ceiling must not abort the
// parse.
func TestParserLongLine(t *testing.T) {
	long := "# " + strings.Repeat("x", 3<<20)
	for _, tc := range []struct {
		name   string
		format Format
		body   string
	}{
		{"native", FormatNative, "0,0,4096,r\n"},
		{"spc", FormatSPC, "0,8,4096,r,1.0\n"},
		{"msr", FormatMSR, "100,host,0,Read,4096,4096,0\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reqs, err := Parse(strings.NewReader(long+"\n"+tc.body), tc.format)
			if err != nil {
				t.Fatalf("parse with 3MB line: %v", err)
			}
			if len(reqs) != 1 {
				t.Fatalf("got %d requests, want 1", len(reqs))
			}
		})
	}
}
