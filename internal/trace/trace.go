// Package trace defines the I/O request model consumed by the simulator and
// parsers for the on-disk trace formats used in the TPFTL paper's evaluation:
// the SPC format of the UMass Financial1/Financial2 traces and the CSV format
// of the MSR Cambridge block traces. A native CSV format is provided for
// synthetic traces written by cmd/tracegen.
package trace

import (
	"fmt"
)

// Request is one block-level I/O request.
type Request struct {
	// Arrival is the request arrival time in nanoseconds since trace start.
	Arrival int64
	// Offset is the starting byte address.
	Offset int64
	// Length is the request size in bytes.
	Length int64
	// Write is true for writes, false for reads.
	Write bool
}

// Validate reports whether the request is well formed.
func (r Request) Validate() error {
	switch {
	case r.Offset < 0:
		return fmt.Errorf("trace: negative offset %d", r.Offset)
	case r.Length <= 0:
		return fmt.Errorf("trace: non-positive length %d", r.Length)
	case r.Arrival < 0:
		return fmt.Errorf("trace: negative arrival %d", r.Arrival)
	}
	return nil
}

// End returns the first byte past the request.
func (r Request) End() int64 { return r.Offset + r.Length }

// Pages returns the inclusive range [first, last] of logical page numbers a
// request touches, given the page size.
func (r Request) Pages(pageSize int) (first, last int64) {
	first = r.Offset / int64(pageSize)
	last = (r.End() - 1) / int64(pageSize)
	return first, last
}

// PageCount returns how many pages the request spans.
func (r Request) PageCount(pageSize int) int {
	first, last := r.Pages(pageSize)
	return int(last - first + 1)
}

// Stats summarizes a request stream; it mirrors the columns of Table 4 in
// the paper (write ratio, average request size, sequential fractions,
// address-space footprint).
type Stats struct {
	Requests     int
	Writes       int
	Bytes        int64
	WriteBytes   int64
	SeqReads     int   // reads contiguous with the previous request
	SeqWrites    int   // writes contiguous with the previous request
	MaxEnd       int64 // address-space high-water mark
	PageAccesses int64 // total 4 KB page accesses
}

// WriteRatio returns the fraction of requests that are writes.
func (s Stats) WriteRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Requests)
}

// AvgRequestSize returns the mean request size in bytes.
func (s Stats) AvgRequestSize() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.Requests)
}

// SeqReadRatio returns the fraction of reads that directly continue the
// preceding request's address range.
func (s Stats) SeqReadRatio() float64 {
	reads := s.Requests - s.Writes
	if reads == 0 {
		return 0
	}
	return float64(s.SeqReads) / float64(reads)
}

// SeqWriteRatio returns the fraction of writes that directly continue the
// preceding request's address range.
func (s Stats) SeqWriteRatio() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.SeqWrites) / float64(s.Writes)
}

// summaryPageBytes is the page size Summarize counts page accesses in. The
// trace package cannot see ftl.Config (ftl imports trace), so the 4 KB
// convention is named here.
const summaryPageBytes = 4096

// Summarize computes stream statistics over reqs using 4 KB pages.
func Summarize(reqs []Request) Stats {
	var s Stats
	var prevEnd int64 = -1
	for _, r := range reqs {
		s.Requests++
		s.Bytes += r.Length
		if r.Write {
			s.Writes++
			s.WriteBytes += r.Length
		}
		if r.Offset == prevEnd {
			if r.Write {
				s.SeqWrites++
			} else {
				s.SeqReads++
			}
		}
		prevEnd = r.End()
		if r.End() > s.MaxEnd {
			s.MaxEnd = r.End()
		}
		s.PageAccesses += int64(r.PageCount(summaryPageBytes))
	}
	return s
}

// Clamp truncates requests to fit within an address space of size bytes,
// wrapping offsets that start beyond it. Replaying a trace captured on a
// larger device against a smaller simulated SSD requires this; the paper
// instead sizes the SSD to the trace's address space, which callers should
// prefer.
func Clamp(reqs []Request, size int64) []Request {
	out := make([]Request, 0, len(reqs))
	for _, r := range reqs {
		r.Offset %= size
		if r.Offset+r.Length > size {
			r.Length = size - r.Offset
		}
		if r.Length <= 0 {
			continue
		}
		out = append(out, r)
	}
	return out
}
