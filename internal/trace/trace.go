// Package trace defines the I/O request model consumed by the simulator and
// parsers for the on-disk trace formats used in the TPFTL paper's evaluation:
// the SPC format of the UMass Financial1/Financial2 traces and the CSV format
// of the MSR Cambridge block traces. A native CSV format is provided for
// synthetic traces written by cmd/tracegen.
package trace

import (
	"fmt"
)

// Op is the kind of a block-level request. Beyond plain reads and writes,
// the host interface carries TRIM/discard (drop a logical range without
// writing), flush (make all previously acknowledged writes and discards
// durable), and FUA writes (durable at acknowledgement, bypassing any
// volatile write buffer).
type Op uint8

const (
	// OpRead reads a byte range.
	OpRead Op = iota
	// OpWrite writes a byte range; durability may be deferred to the next
	// flush when a volatile write buffer sits in front of the device.
	OpWrite
	// OpWriteFUA is a forced-unit-access write: durable when acknowledged,
	// never parked in a volatile buffer.
	OpWriteFUA
	// OpTrim discards a byte range: the device unmaps it, subsequent reads
	// return not-mapped, and the freed flash pages become GC-reclaimable
	// without migration.
	OpTrim
	// OpFlush is a barrier carrying no payload (Length 0): everything
	// acknowledged before it must survive a power cut once the flush is
	// acknowledged.
	OpFlush
	// NumOps bounds the op enum.
	NumOps
)

var opNames = [NumOps]string{"read", "write", "write-fua", "trim", "flush"}

// String returns the op's human-readable name.
func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsWrite reports whether the op programs user data (plain or FUA write).
func (o Op) IsWrite() bool { return o == OpWrite || o == OpWriteFUA }

// Request is one block-level I/O request.
type Request struct {
	// Arrival is the request arrival time in nanoseconds since trace start.
	Arrival int64
	// Offset is the starting byte address (0 for flush).
	Offset int64
	// Length is the request size in bytes (0 for flush).
	Length int64
	// Op is the request kind.
	Op Op
}

// IsWrite reports whether the request writes user data (OpWrite/OpWriteFUA).
func (r Request) IsWrite() bool { return r.Op.IsWrite() }

// Validate reports whether the request is well formed. A flush carries no
// payload: offset and length must both be zero. Every other op addresses a
// non-empty byte range.
func (r Request) Validate() error {
	switch {
	case r.Arrival < 0:
		return fmt.Errorf("trace: negative arrival %d", r.Arrival)
	case r.Op >= NumOps:
		return fmt.Errorf("trace: unknown op %d", uint8(r.Op))
	}
	if r.Op == OpFlush {
		if r.Offset != 0 || r.Length != 0 {
			return fmt.Errorf("trace: flush carries a payload [%d,%d)", r.Offset, r.Offset+r.Length)
		}
		return nil
	}
	switch {
	case r.Offset < 0:
		return fmt.Errorf("trace: negative offset %d", r.Offset)
	case r.Length <= 0:
		return fmt.Errorf("trace: non-positive length %d", r.Length)
	}
	return nil
}

// End returns the first byte past the request.
func (r Request) End() int64 { return r.Offset + r.Length }

// Pages returns the inclusive range [first, last] of logical page numbers a
// request touches, given the page size. Flushes touch no pages; callers
// dispatch on Op before asking.
func (r Request) Pages(pageSize int) (first, last int64) {
	first = r.Offset / int64(pageSize)
	last = (r.End() - 1) / int64(pageSize)
	return first, last
}

// PageCount returns how many pages the request spans.
func (r Request) PageCount(pageSize int) int {
	first, last := r.Pages(pageSize)
	return int(last - first + 1)
}

// Stats summarizes a request stream; it mirrors the columns of Table 4 in
// the paper (write ratio, average request size, sequential fractions,
// address-space footprint), extended with the host-interface op counts.
type Stats struct {
	Requests     int
	Writes       int // plain + FUA writes
	FUAWrites    int // FUA subset of Writes
	Trims        int
	Flushes      int
	Bytes        int64 // read + written bytes
	WriteBytes   int64
	TrimBytes    int64
	SeqReads     int   // reads contiguous with the previous request
	SeqWrites    int   // writes contiguous with the previous request
	MaxEnd       int64 // address-space high-water mark
	PageAccesses int64 // total 4 KB page accesses (reads + writes)
	TrimPages    int64 // total 4 KB pages discarded
}

// WriteRatio returns the fraction of requests that are writes.
func (s Stats) WriteRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Requests)
}

// AvgRequestSize returns the mean read/write request size in bytes.
func (s Stats) AvgRequestSize() float64 {
	rw := s.Requests - s.Trims - s.Flushes
	if rw == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(rw)
}

// SeqReadRatio returns the fraction of reads that directly continue the
// preceding request's address range.
func (s Stats) SeqReadRatio() float64 {
	reads := s.Requests - s.Writes - s.Trims - s.Flushes
	if reads == 0 {
		return 0
	}
	return float64(s.SeqReads) / float64(reads)
}

// SeqWriteRatio returns the fraction of writes that directly continue the
// preceding request's address range.
func (s Stats) SeqWriteRatio() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.SeqWrites) / float64(s.Writes)
}

// SummaryPageBytes is the page size Summarize counts page accesses in. The
// trace package cannot see ftl.Config (ftl imports trace), so the 4 KB
// convention is named here.
const SummaryPageBytes = 4096

// StatsAccum accumulates Stats one request at a time, so a streamed trace
// can be summarized without ever holding it in memory. The zero value is
// ready to use; feed requests in replay order (sequentiality tracking
// compares each request against its predecessor's end address).
type StatsAccum struct {
	s       Stats
	prevEnd int64
	started bool
}

// Add folds one request into the accumulator.
func (a *StatsAccum) Add(r Request) {
	if !a.started {
		a.prevEnd = -1
		a.started = true
	}
	a.s.Requests++
	switch r.Op {
	case OpRead, OpWrite, OpWriteFUA:
		// Payload ops: fall through to the byte/locality accounting.
	case OpFlush:
		a.s.Flushes++
		return
	case OpTrim:
		a.s.Trims++
		a.s.TrimBytes += r.Length
		a.s.TrimPages += int64(r.PageCount(SummaryPageBytes))
		if r.End() > a.s.MaxEnd {
			a.s.MaxEnd = r.End()
		}
		a.prevEnd = r.End()
		return
	}
	a.s.Bytes += r.Length
	if r.IsWrite() {
		a.s.Writes++
		a.s.WriteBytes += r.Length
		if r.Op == OpWriteFUA {
			a.s.FUAWrites++
		}
	}
	if r.Offset == a.prevEnd {
		if r.IsWrite() {
			a.s.SeqWrites++
		} else {
			a.s.SeqReads++
		}
	}
	a.prevEnd = r.End()
	if r.End() > a.s.MaxEnd {
		a.s.MaxEnd = r.End()
	}
	a.s.PageAccesses += int64(r.PageCount(SummaryPageBytes))
}

// Stats returns the statistics accumulated so far.
func (a *StatsAccum) Stats() Stats { return a.s }

// Summarize computes stream statistics over reqs using 4 KB pages.
func Summarize(reqs []Request) Stats {
	var a StatsAccum
	for _, r := range reqs {
		a.Add(r)
	}
	return a.Stats()
}

// Clamp truncates requests to fit within an address space of size bytes,
// wrapping offsets that start beyond it. Replaying a trace captured on a
// larger device against a smaller simulated SSD requires this; the paper
// instead sizes the SSD to the trace's address space, which callers should
// prefer. Flushes pass through untouched.
func Clamp(reqs []Request, size int64) []Request {
	out := make([]Request, 0, len(reqs))
	for _, r := range reqs {
		if r.Op == OpFlush {
			out = append(out, r)
			continue
		}
		r.Offset %= size
		if r.Offset+r.Length > size {
			r.Length = size - r.Offset
		}
		if r.Length <= 0 {
			continue
		}
		out = append(out, r)
	}
	return out
}
