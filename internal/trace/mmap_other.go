//go:build !linux && !darwin

package trace

import "os"

// mmapFile is unsupported here; streaming falls back to positioned reads.
func mmapFile(f *os.File, size int64) []byte { return nil }

func munmapFile(data []byte) {}
