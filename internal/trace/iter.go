package trace

import "io"

// Iterator is the streaming request source replay consumes: Next fills the
// caller-owned batch with up to len(batch) requests and reports how many it
// produced. The end of the stream is (0, io.EOF); any other error aborts the
// stream. n == 0 implies a non-nil error, and implementations must not
// retain the batch slice between calls — callers reuse its backing array, so
// a well-behaved iterator drives replay of arbitrarily long traces in
// O(batch) memory.
type Iterator interface {
	Next(batch []Request) (int, error)
}

// SliceIterator adapts an in-memory request slice to the Iterator interface;
// it is how the eager replay paths are expressed in terms of the streaming
// ones.
type SliceIterator struct {
	reqs []Request
	next int
}

// NewSliceIterator returns an iterator over reqs. The slice is read, never
// mutated.
func NewSliceIterator(reqs []Request) *SliceIterator {
	return &SliceIterator{reqs: reqs}
}

// Next implements Iterator by copying the next run of requests into batch.
func (s *SliceIterator) Next(batch []Request) (int, error) {
	if s.next >= len(s.reqs) {
		return 0, io.EOF
	}
	n := copy(batch, s.reqs[s.next:])
	s.next += n
	return n, nil
}

// Reset rewinds the iterator to the first request.
func (s *SliceIterator) Reset() { s.next = 0 }

// limitIterator caps an iterator at n requests.
type limitIterator struct {
	it   Iterator
	left int64
}

// Limit returns an iterator yielding at most n requests from it, then EOF.
// The underlying iterator is not advanced past the limit, so a caller can
// drain a warm-up prefix through Limit and continue the measured phase from
// the same iterator — the mechanism sim.Run uses to split one stream into
// warm-up and measurement without a second pass over the file.
func Limit(it Iterator, n int64) Iterator {
	return &limitIterator{it: it, left: n}
}

func (l *limitIterator) Next(batch []Request) (int, error) {
	if l.left <= 0 {
		return 0, io.EOF
	}
	if int64(len(batch)) > l.left {
		batch = batch[:l.left]
	}
	n, err := l.it.Next(batch)
	l.left -= int64(n)
	return n, err
}
