// Package obs is the simulator's observability layer: fixed-bucket
// log-linear latency histograms recorded per request and attributed by
// phase, a Chrome trace_event span tracer for the event scheduler, and the
// JSONL schema of the periodic metrics export.
//
// The package is a leaf: it imports nothing but the standard library, so
// every layer of the stack (internal/ftl, internal/ssd, internal/sim, the
// CLIs) can use it without cycles. Two invariants govern every hook:
//
//   - Observability reads the simulated clock and never advances it: arming
//     a tracer or an exporter must leave every simulated metric — timings,
//     counters, the scheduler's EventHash — bit-for-bit unchanged.
//   - The disabled path is allocation-free: Histogram.Record is a plain
//     array increment, and tracer hooks sit behind nil checks (the obscheck
//     analyzer enforces the guard inside //ftl:hotpath functions).
package obs

// Phase labels the activity a per-request latency observation is attributed
// to. The taxonomy follows the paper's response-time decomposition (Eqs.
// 1–11): queueing, address translation split by cache outcome, the user
// data flash operation, translation writebacks, and GC stalls.
type Phase uint8

const (
	// PhaseQueue is the admission wait: admit − arrival.
	PhaseQueue Phase = iota
	// PhaseXlateHit is the translation flash time of requests whose every
	// cache lookup hit (zero unless an unrelated translation read ran).
	PhaseXlateHit
	// PhaseXlateMiss is the translation flash time of requests that took at
	// least one demand miss whose load prefetched nothing.
	PhaseXlateMiss
	// PhaseXlatePrefetch is the translation flash time of requests whose
	// miss loads also installed prefetched entries.
	PhaseXlatePrefetch
	// PhaseData is the user data flash time (page reads and programs).
	PhaseData
	// PhaseWriteback is the flash time of translation-page updates during
	// address translation: dirty-eviction and batch writebacks, including
	// their read-modify-write reads.
	PhaseWriteback
	// PhaseGCStall is the garbage-collection flash time charged inside the
	// request (the GC run the request triggered and waited out).
	PhaseGCStall
	// PhaseResponse is the full response time: arrival → completion.
	PhaseResponse
	// PhaseTrim is the flash time of TRIM/discard requests: the
	// translation-page rewrites that make the discard durable.
	PhaseTrim
	// PhaseFlush is the flash time of host flush barriers: the bounded
	// dirty-entry writeback forced by the flush.
	PhaseFlush

	// NumPhases is the number of phases; Metrics carries one Histogram per
	// phase in this order.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"queue",
	"xlate_hit",
	"xlate_miss",
	"xlate_prefetch",
	"data",
	"writeback",
	"gc_stall",
	"response",
	"trim",
	"flush",
}

// String returns the phase's stable export name (the JSONL schema key).
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseByName returns the phase with the given export name.
func PhaseByName(name string) (Phase, bool) {
	for p := Phase(0); p < NumPhases; p++ {
		if phaseNames[p] == name {
			return p, true
		}
	}
	return NumPhases, false
}

// Op labels one scheduled flash operation in the span trace. GC variants
// are distinct ops so a trace distinguishes a foreground translation read
// from the same read issued while collecting a victim block.
type Op uint8

const (
	// OpUnknown is the label of operations issued without one (the plain
	// Scheduler.Issue entry point used by tests).
	OpUnknown Op = iota
	OpDataRead
	OpDataProgram
	OpTransRead
	OpTransProgram
	OpErase
	OpGCDataRead
	OpGCDataProgram
	OpGCTransRead
	OpGCTransProgram
	OpGCErase

	// NumOps is the number of operation labels.
	NumOps
)

var opNames = [NumOps]string{
	"op",
	"data_read",
	"data_program",
	"trans_read",
	"trans_program",
	"erase",
	"gc_data_read",
	"gc_data_program",
	"gc_trans_read",
	"gc_trans_program",
	"gc_erase",
}

// String returns the op's stable trace name.
func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return "op"
}

// GC returns the garbage-collection variant of a foreground op (identity
// for ops that already are GC variants or have none).
func (o Op) GC() Op {
	if o >= OpDataRead && o <= OpErase {
		return o + (OpGCDataRead - OpDataRead)
	}
	return o
}
