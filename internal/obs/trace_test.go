package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerEmitsValidChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.ProcessName(0, "flash dies")
	tr.ProcessName(1, "requests")
	tr.ThreadName(0, 0)
	tr.ThreadName(1, 1)
	p := tr.FlashOp(OpTransRead, 0, 0, 0, 25*time.Microsecond, 0)
	tr.FlashOp(OpDataRead, 1, 1, 25*time.Microsecond, 50*time.Microsecond, p)
	tr.RequestSpan("read", 1, 0, 50*time.Microsecond)
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	n, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, buf.String())
	}
	if n != 8 {
		t.Fatalf("event count = %d, want 8", n)
	}

	// Decode and spot-check the flash op encoding.
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	var x *traceEvent
	for i := range doc.TraceEvents {
		if doc.TraceEvents[i].Ph == "X" && doc.TraceEvents[i].Name == "data_read" {
			x = &doc.TraceEvents[i]
		}
	}
	if x == nil {
		t.Fatalf("data_read X event missing")
	}
	if x.TID != 1 || x.TS != 25.0 || x.Dur != 25.0 {
		t.Fatalf("data_read event wrong: %+v", *x)
	}
}

func TestTracerMicrosecondPrecision(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.FlashOp(OpErase, 2, 0, 1234567*time.Nanosecond, 1500000*time.Nanosecond, 0)
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s := buf.String()
	if !strings.Contains(s, `"ts":1234.567`) {
		t.Fatalf("ts not emitted with ns precision: %s", s)
	}
	if !strings.Contains(s, `"dur":265.433`) {
		t.Fatalf("dur not emitted with ns precision: %s", s)
	}
}

func TestTracerEventIDsChain(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	a := tr.FlashOp(OpDataRead, 0, 0, 0, 1000, 0)
	b := tr.FlashOp(OpDataRead, 0, 0, 1000, 2000, a)
	if a != 1 || b != 2 {
		t.Fatalf("event ids = %d,%d, want 1,2", a, b)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !strings.Contains(buf.String(), `"parent":1`) {
		t.Fatalf("parent id not recorded: %s", buf.String())
	}
}

func TestValidateTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty events":      `{"traceEvents":[]}`,
		"unknown phase":     `{"traceEvents":[{"name":"x","ph":"Q"}]}`,
		"empty name":        `{"traceEvents":[{"name":"","ph":"X","ts":0,"dur":1}]}`,
		"negative duration": `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1}]}`,
		"unmatched begin":   `{"traceEvents":[{"name":"x","ph":"b","cat":"request","id":1,"ts":0}]}`,
		"end without begin": `{"traceEvents":[{"name":"x","ph":"e","cat":"request","id":1,"ts":0}]}`,
		"not json":          `]`,
	}
	for name, doc := range cases {
		if _, err := ValidateTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ValidateTrace accepted %s", name, doc)
		}
	}
}

func TestValidateMetricsJSONL(t *testing.T) {
	mkRec := func(seq, simt, reqs int64) SnapshotRecord {
		rec := SnapshotRecord{Seq: seq, SimTimeNS: simt, Requests: reqs}
		rec.Total.Requests = reqs
		for p := Phase(0); p < NumPhases; p++ {
			var h Histogram
			h.Record(time.Duration(seq) * time.Microsecond)
			rec.Phases = append(rec.Phases, h.Summary(p.String()))
		}
		return rec
	}
	var buf bytes.Buffer
	w := NewMetricsWriter(&buf)
	for i := int64(1); i <= 3; i++ {
		rec := mkRec(i, i*1000, i*10)
		if err := w.Write(&rec); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	n, err := ValidateMetricsJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateMetricsJSONL: %v", err)
	}
	if n != 3 {
		t.Fatalf("record count = %d, want 3", n)
	}

	// Rejections.
	bad := map[string]func() []byte{
		"seq gap": func() []byte {
			var b bytes.Buffer
			w := NewMetricsWriter(&b)
			r1, r3 := mkRec(1, 1000, 1), mkRec(3, 3000, 3)
			w.Write(&r1)
			w.Write(&r3)
			w.Flush()
			return b.Bytes()
		},
		"time backwards": func() []byte {
			var b bytes.Buffer
			w := NewMetricsWriter(&b)
			r1, r2 := mkRec(1, 5000, 1), mkRec(2, 1000, 2)
			w.Write(&r1)
			w.Write(&r2)
			w.Flush()
			return b.Bytes()
		},
		"missing phase": func() []byte {
			var b bytes.Buffer
			w := NewMetricsWriter(&b)
			r := mkRec(1, 1000, 1)
			r.Phases = r.Phases[:NumPhases-1]
			w.Write(&r)
			w.Flush()
			return b.Bytes()
		},
		"unknown phase": func() []byte {
			var b bytes.Buffer
			w := NewMetricsWriter(&b)
			r := mkRec(1, 1000, 1)
			r.Phases[0].Phase = "bogus"
			w.Write(&r)
			w.Flush()
			return b.Bytes()
		},
		"quantiles out of order": func() []byte {
			var b bytes.Buffer
			w := NewMetricsWriter(&b)
			r := mkRec(1, 1000, 1)
			r.Phases[0].Count = 5
			r.Phases[0].P50NS = 100
			r.Phases[0].P99NS = 50
			w.Write(&r)
			w.Flush()
			return b.Bytes()
		},
		"empty stream": func() []byte { return nil },
	}
	for name, gen := range bad {
		if _, err := ValidateMetricsJSONL(bytes.NewReader(gen())); err == nil {
			t.Errorf("%s: validator accepted bad stream", name)
		}
	}
}

func TestPhaseAndOpNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		name := p.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("phase %d has bad name %q", p, name)
		}
		seen[name] = true
		got, ok := PhaseByName(name)
		if !ok || got != p {
			t.Fatalf("PhaseByName(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := PhaseByName("bogus"); ok {
		t.Fatalf("PhaseByName accepted bogus name")
	}
	for o := Op(0); o < NumOps; o++ {
		if o.String() == "" {
			t.Fatalf("op %d has empty name", o)
		}
	}
	if OpDataRead.GC() != OpGCDataRead || OpErase.GC() != OpGCErase {
		t.Fatalf("Op.GC mapping wrong")
	}
	if OpGCErase.GC() != OpGCErase || OpUnknown.GC() != OpUnknown {
		t.Fatalf("Op.GC must be identity on GC/unknown ops")
	}
}
