package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ValidateMetricsJSONL checks a -metrics-out stream against the snapshot
// schema: every line parses as a SnapshotRecord, seq starts at 1 and
// increments by one, simulated time and cumulative counters are
// non-decreasing, every phase name appears exactly once per line, and each
// phase's quantiles are ordered (min ≤ p50 ≤ p90 ≤ p99 ≤ p999 ≤ max). It
// returns the number of valid records.
func ValidateMetricsJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var (
		n        int
		prevSeq  int64
		prevTime int64
		prevReq  int64
	)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec SnapshotRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return n, fmt.Errorf("metrics line %d: %v", n+1, err)
		}
		if rec.Seq != prevSeq+1 {
			return n, fmt.Errorf("metrics line %d: seq %d, want %d", n+1, rec.Seq, prevSeq+1)
		}
		if rec.SimTimeNS < prevTime {
			return n, fmt.Errorf("metrics line %d: sim_time_ns went backwards (%d < %d)", n+1, rec.SimTimeNS, prevTime)
		}
		if rec.Requests < prevReq {
			return n, fmt.Errorf("metrics line %d: requests went backwards (%d < %d)", n+1, rec.Requests, prevReq)
		}
		if rec.Total.Requests != rec.Requests {
			return n, fmt.Errorf("metrics line %d: total.requests %d != requests %d", n+1, rec.Total.Requests, rec.Requests)
		}
		seen := make(map[string]bool, NumPhases)
		for _, ph := range rec.Phases {
			if _, ok := PhaseByName(ph.Phase); !ok {
				return n, fmt.Errorf("metrics line %d: unknown phase %q", n+1, ph.Phase)
			}
			if seen[ph.Phase] {
				return n, fmt.Errorf("metrics line %d: duplicate phase %q", n+1, ph.Phase)
			}
			seen[ph.Phase] = true
			if ph.Count < 0 {
				return n, fmt.Errorf("metrics line %d: phase %q negative count", n+1, ph.Phase)
			}
			if ph.Count > 0 {
				q := []int64{ph.MinNS, ph.P50NS, ph.P90NS, ph.P99NS, ph.P999NS, ph.MaxNS}
				for i := 1; i < len(q); i++ {
					if q[i] < q[i-1] {
						return n, fmt.Errorf("metrics line %d: phase %q quantiles out of order: %v", n+1, ph.Phase, q)
					}
				}
			}
		}
		if len(seen) != int(NumPhases) {
			return n, fmt.Errorf("metrics line %d: %d phases present, want %d", n+1, len(seen), NumPhases)
		}
		prevSeq, prevTime, prevReq = rec.Seq, rec.SimTimeNS, rec.Requests
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("metrics stream: no records")
	}
	return n, nil
}

// traceEvent is the decoded shape of one Chrome trace_event record.
type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Cat  string          `json:"cat"`
	TS   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	ID   json.RawMessage `json:"id"`
}

// traceDoc is the top-level Chrome trace JSON object.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// ValidateTrace checks a -trace-out file against the Chrome trace_event
// format as the Tracer emits it: a JSON object with a non-empty traceEvents
// array whose members have a name, a known phase type ("X", "b", "e", or
// "M"), non-negative timestamps, non-negative durations on "X" events, and
// balanced "b"/"e" pairs per (cat, id). It returns the event count.
func ValidateTrace(r io.Reader) (int, error) {
	var doc traceDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("trace: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("trace: no events")
	}
	open := make(map[string]int)
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return 0, fmt.Errorf("trace event %d: empty name", i)
		}
		switch ev.Ph {
		case "X":
			if ev.TS < 0 {
				return 0, fmt.Errorf("trace event %d: negative ts %v", i, ev.TS)
			}
			if ev.Dur < 0 {
				return 0, fmt.Errorf("trace event %d: negative dur %v", i, ev.Dur)
			}
		case "b":
			if ev.TS < 0 {
				return 0, fmt.Errorf("trace event %d: negative ts %v", i, ev.TS)
			}
			open[ev.Cat+"/"+string(ev.ID)]++
		case "e":
			key := ev.Cat + "/" + string(ev.ID)
			if open[key] == 0 {
				return 0, fmt.Errorf("trace event %d: end without begin for %s", i, key)
			}
			open[key]--
		case "M":
			// Metadata events carry no timing.
		default:
			return 0, fmt.Errorf("trace event %d: unknown phase type %q", i, ev.Ph)
		}
	}
	for key, c := range open {
		if c != 0 {
			return 0, fmt.Errorf("trace: %d unmatched begin events for %s", c, key)
		}
	}
	return len(doc.TraceEvents), nil
}
