package obs

import (
	"math/rand"
	"testing"
	"time"
)

func TestBucketBoundsConsistent(t *testing.T) {
	// Every bucket's upper bound must map back into that bucket, and the
	// value one past it into the next.
	for i := 0; i < NumBuckets-1; i++ {
		up := bucketUpper(i)
		if got := bucketOf(up); got != i {
			t.Fatalf("bucketOf(bucketUpper(%d)=%d) = %d", i, up, got)
		}
		if got := bucketOf(up + 1); got != i+1 {
			t.Fatalf("bucketOf(%d) = %d, want %d", up+1, got, i+1)
		}
	}
}

func TestBucketOverflowClamps(t *testing.T) {
	huge := int64(1) << 62
	if got := bucketOf(huge); got != NumBuckets-1 {
		t.Fatalf("bucketOf(2^62) = %d, want overflow bucket %d", got, NumBuckets-1)
	}
	var h Histogram
	h.Record(time.Duration(huge))
	if h.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("overflow observation not in final bucket")
	}
	// The bucket upper bound exceeds the recorded max; Quantile must clamp
	// back to the true max.
	if got := h.Quantile(0.999); int64(got) != huge {
		t.Fatalf("overflow p999 = %d, want %d", got, huge)
	}
}

func TestHistogramZeroSamples(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram must report zeros: %+v", h)
	}
	s := h.Summary("queue")
	if s.Count != 0 || s.P999NS != 0 || s.MaxNS != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	const v = 123456 * time.Nanosecond
	h.Record(v)
	for _, p := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if got := h.Quantile(p); got != v {
			t.Fatalf("single-sample Quantile(%v) = %v, want %v", p, got, v)
		}
	}
	if h.Mean() != v || h.Min() != v || h.Max() != v {
		t.Fatalf("single-sample stats wrong: mean=%v min=%v max=%v", h.Mean(), h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Buckets[0] != 1 {
		t.Fatalf("negative duration must clamp to zero: %+v", h.Summary("x"))
	}
}

func TestHistogramMergeDisjointRanges(t *testing.T) {
	var lo, hi Histogram
	for i := 0; i < 100; i++ {
		lo.Record(time.Duration(1000 + i)) // ~1µs
		hi.Record(time.Duration(int64(time.Second) + int64(i)))
	}
	var m Histogram
	m.Merge(&lo)
	m.Merge(&hi)
	if m.Count != 200 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if m.Min() != lo.Min() || m.Max() != hi.Max() {
		t.Fatalf("merged min/max wrong: %v/%v", m.Min(), m.Max())
	}
	if m.Sum != lo.Sum+hi.Sum {
		t.Fatalf("merged sum wrong")
	}
	// Half the mass is ~1µs, half ~1s: p50 must land in the low range and
	// p90 in the high range.
	if p50 := m.Quantile(0.5); p50 > 10*time.Microsecond {
		t.Fatalf("merged p50 = %v, want ~1µs", p50)
	}
	if p90 := m.Quantile(0.9); p90 < 500*time.Millisecond {
		t.Fatalf("merged p90 = %v, want ~1s", p90)
	}
	// Merging an empty histogram is a no-op.
	before := m
	var empty Histogram
	m.Merge(&empty)
	if m != before {
		t.Fatalf("merging empty histogram changed state")
	}
}

func TestHistogramQuantileDeterminism(t *testing.T) {
	// Identical observation streams must produce identical histograms and
	// quantiles, independent of insertion order.
	rng := rand.New(rand.NewSource(7))
	vals := make([]time.Duration, 5000)
	for i := range vals {
		vals[i] = time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
	}
	var a, b Histogram
	for _, v := range vals {
		a.Record(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Record(vals[i])
	}
	if a != b {
		t.Fatalf("histograms differ across insertion order")
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		if a.Quantile(p) != b.Quantile(p) {
			t.Fatalf("quantile %v differs across identical histograms", p)
		}
	}
}

func TestHistogramMaxAtLeastP999(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		var h Histogram
		n := 1 + rng.Intn(3000)
		for i := 0; i < n; i++ {
			h.Record(time.Duration(rng.Int63n(int64(time.Second))))
		}
		if h.Max() < h.Quantile(0.999) {
			t.Fatalf("trial %d: max %v < p999 %v", trial, h.Max(), h.Quantile(0.999))
		}
		if h.Quantile(0.999) < h.Quantile(0.99) || h.Quantile(0.99) < h.Quantile(0.5) {
			t.Fatalf("trial %d: quantiles out of order", trial)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Uniform 0..1s: each quantile estimate must be within one sub-bucket
	// (1/SubBuckets relative error) of the true value.
	var h Histogram
	const n = 100000
	for i := 0; i < n; i++ {
		h.Record(time.Duration(int64(i) * int64(time.Second) / n))
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		want := float64(time.Second) * p
		got := float64(h.Quantile(p))
		if rel := (got - want) / want; rel < -0.01 || rel > 2.0/SubBuckets {
			t.Fatalf("Quantile(%v) = %v, want ≈%v (rel err %.3f)", p, time.Duration(got), time.Duration(want), rel)
		}
	}
}

func TestHistogramRecordZeroAlloc(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(42 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Histogram.Record allocates %.1f/op, want 0", allocs)
	}
}
