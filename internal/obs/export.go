package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// Counters is the exported subset of simulator counters carried by each
// metrics snapshot, both cumulative and as a delta since the previous
// snapshot. Field names are the JSONL schema.
type Counters struct {
	Requests      int64 `json:"requests"`
	PageReads     int64 `json:"page_reads"`
	PageWrites    int64 `json:"page_writes"`
	Lookups       int64 `json:"lookups"`
	Hits          int64 `json:"hits"`
	FlashReads    int64 `json:"flash_reads"`
	FlashPrograms int64 `json:"flash_programs"`
	FlashErases   int64 `json:"flash_erases"`
	TransReads    int64 `json:"trans_reads"`
	TransWrites   int64 `json:"trans_writes"`
	Prefetched    int64 `json:"prefetched"`
	TrimmedPages  int64 `json:"trimmed_pages"`
	Flushes       int64 `json:"flushes"`
	Collections   int64 `json:"gc_collections"`
	ResponseNS    int64 `json:"response_ns"`
	ServiceNS     int64 `json:"service_ns"`
	QueueNS       int64 `json:"queue_ns"`
	GCNS          int64 `json:"gc_ns"`
}

// Sub returns c - o, the delta between two cumulative counter snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Requests:      c.Requests - o.Requests,
		PageReads:     c.PageReads - o.PageReads,
		PageWrites:    c.PageWrites - o.PageWrites,
		Lookups:       c.Lookups - o.Lookups,
		Hits:          c.Hits - o.Hits,
		FlashReads:    c.FlashReads - o.FlashReads,
		FlashPrograms: c.FlashPrograms - o.FlashPrograms,
		FlashErases:   c.FlashErases - o.FlashErases,
		TransReads:    c.TransReads - o.TransReads,
		TransWrites:   c.TransWrites - o.TransWrites,
		Prefetched:    c.Prefetched - o.Prefetched,
		TrimmedPages:  c.TrimmedPages - o.TrimmedPages,
		Flushes:       c.Flushes - o.Flushes,
		Collections:   c.Collections - o.Collections,
		ResponseNS:    c.ResponseNS - o.ResponseNS,
		ServiceNS:     c.ServiceNS - o.ServiceNS,
		QueueNS:       c.QueueNS - o.QueueNS,
		GCNS:          c.GCNS - o.GCNS,
	}
}

// Add returns c + o. Together with Sub it lets a consumer re-base counters
// across a metrics reset: fold the pre-reset totals into a base, keep adding
// the post-reset cumulative values, and the published sum stays monotonic
// over the whole process lifetime (what Prometheus counters require).
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Requests:      c.Requests + o.Requests,
		PageReads:     c.PageReads + o.PageReads,
		PageWrites:    c.PageWrites + o.PageWrites,
		Lookups:       c.Lookups + o.Lookups,
		Hits:          c.Hits + o.Hits,
		FlashReads:    c.FlashReads + o.FlashReads,
		FlashPrograms: c.FlashPrograms + o.FlashPrograms,
		FlashErases:   c.FlashErases + o.FlashErases,
		TransReads:    c.TransReads + o.TransReads,
		TransWrites:   c.TransWrites + o.TransWrites,
		Prefetched:    c.Prefetched + o.Prefetched,
		TrimmedPages:  c.TrimmedPages + o.TrimmedPages,
		Flushes:       c.Flushes + o.Flushes,
		Collections:   c.Collections + o.Collections,
		ResponseNS:    c.ResponseNS + o.ResponseNS,
		ServiceNS:     c.ServiceNS + o.ServiceNS,
		QueueNS:       c.QueueNS + o.QueueNS,
		GCNS:          c.GCNS + o.GCNS,
	}
}

// PhaseSnapshot is one phase histogram condensed to its quantile summary.
type PhaseSnapshot struct {
	Phase  string `json:"phase"`
	Count  int64  `json:"count"`
	MeanNS int64  `json:"mean_ns"`
	MinNS  int64  `json:"min_ns"`
	MaxNS  int64  `json:"max_ns"`
	P50NS  int64  `json:"p50_ns"`
	P90NS  int64  `json:"p90_ns"`
	P99NS  int64  `json:"p99_ns"`
	P999NS int64  `json:"p999_ns"`
}

// SnapshotRecord is one line of the -metrics-out JSONL stream: cumulative
// counters, the delta since the previous line, and the quantile summary of
// every phase histogram, stamped with the simulated clock.
type SnapshotRecord struct {
	Seq       int64           `json:"seq"`
	SimTimeNS int64           `json:"sim_time_ns"`
	Requests  int64           `json:"requests"`
	Delta     Counters        `json:"delta"`
	Total     Counters        `json:"total"`
	Phases    []PhaseSnapshot `json:"phases"`
}

// MetricsWriter streams SnapshotRecords as JSON Lines.
type MetricsWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewMetricsWriter wraps w in a buffered JSONL encoder.
func NewMetricsWriter(w io.Writer) *MetricsWriter {
	bw := bufio.NewWriterSize(w, 1<<15)
	return &MetricsWriter{w: bw, enc: json.NewEncoder(bw)}
}

// Write emits one record as a single JSON line.
func (m *MetricsWriter) Write(rec *SnapshotRecord) error {
	if m.err != nil {
		return m.err
	}
	m.err = m.enc.Encode(rec)
	return m.err
}

// Flush drains buffered output to the underlying writer.
func (m *MetricsWriter) Flush() error {
	if err := m.w.Flush(); err != nil && m.err == nil {
		m.err = err
	}
	return m.err
}
