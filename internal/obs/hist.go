package obs

import (
	"math/bits"
	"time"
)

// The histogram is log-linear in the HDR style: each power-of-two range of
// nanoseconds is split into SubBuckets linear sub-buckets, so relative
// quantile error is bounded by 1/SubBuckets (≈6%) at every magnitude. The
// bucket count is fixed at compile time so a Histogram is a flat value type
// — no allocation to create, record into, merge, or snapshot.
const (
	// subBits is log2 of the linear sub-bucket count per octave.
	subBits = 4
	// SubBuckets is the number of linear sub-buckets per power of two.
	SubBuckets = 1 << subBits
	// NumBuckets covers values below 2^45 ns (≈ 9.7 simulated hours);
	// larger values clamp into the final (overflow) bucket. The first
	// SubBuckets buckets are exact single-nanosecond buckets.
	NumBuckets = (45 - subBits + 1) * SubBuckets
)

// Histogram is a fixed-size log-linear latency histogram over nanosecond
// durations. The zero value is empty and ready to use. Record is
// allocation-free; histograms merge by field-wise addition.
type Histogram struct {
	Count   int64
	Sum     int64
	MinV    int64 // valid only when Count > 0
	MaxV    int64
	Buckets [NumBuckets]int64
}

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < SubBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 - subBits
	idx := (exp+1)*SubBuckets + int((u>>uint(exp))&(SubBuckets-1))
	if idx >= NumBuckets {
		return NumBuckets - 1
	}
	return idx
}

// bucketUpper returns the largest value that maps into bucket i — the value
// reported for quantiles that land in it.
func bucketUpper(i int) int64 {
	if i < SubBuckets {
		return int64(i)
	}
	exp := uint(i/SubBuckets - 1)
	mant := int64(i % SubBuckets)
	return (SubBuckets+mant)<<exp + (1 << exp) - 1
}

// Record adds one duration observation. Negative durations clamp to zero.
//
//ftl:hotpath
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.MinV {
		h.MinV = v
	}
	if v > h.MaxV {
		h.MaxV = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

// Merge adds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.MinV < h.MinV {
		h.MinV = o.MinV
	}
	if o.MaxV > h.MaxV {
		h.MaxV = o.MaxV
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns the value at quantile p in [0,1] as a duration. The
// result is the upper bound of the bucket holding the p-th observation,
// clamped into [Min, Max], so Quantile(0) == Min, Quantile(1) == Max, and
// max ≥ p999 holds structurally. An empty histogram returns 0.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if p <= 0 {
		return time.Duration(h.MinV)
	}
	if p >= 1 {
		return time.Duration(h.MaxV)
	}
	// Rank of the target observation, 1-based: ceil(p * Count).
	target := int64(p * float64(h.Count))
	if float64(target) < p*float64(h.Count) {
		target++
	}
	if target < 1 {
		target = 1
	}
	if target > h.Count {
		target = h.Count
	}
	var cum int64
	for i := range h.Buckets {
		cum += h.Buckets[i]
		if cum >= target {
			v := bucketUpper(i)
			if v < h.MinV {
				v = h.MinV
			}
			if v > h.MaxV {
				v = h.MaxV
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.MaxV)
}

// Mean returns the arithmetic mean observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.Sum / h.Count)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.MinV)
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.MaxV)
}

// Summary condenses the histogram into the export snapshot for one phase.
func (h *Histogram) Summary(name string) PhaseSnapshot {
	return PhaseSnapshot{
		Phase:  name,
		Count:  h.Count,
		MeanNS: int64(h.Mean()),
		MinNS:  int64(h.Min()),
		MaxNS:  int64(h.Max()),
		P50NS:  int64(h.Quantile(0.50)),
		P90NS:  int64(h.Quantile(0.90)),
		P99NS:  int64(h.Quantile(0.99)),
		P999NS: int64(h.Quantile(0.999)),
	}
}
