package obs

import (
	"bufio"
	"io"
	"strconv"
	"time"
)

// Tracer streams span records in Chrome trace_event JSON ("JSON Object
// Format"), openable in Perfetto or chrome://tracing. Flash operations are
// "X" complete events on a per-die track (pid 0, tid = die); request
// lifetimes are "b"/"e" async pairs. Timestamps are simulated time
// expressed in microseconds with nanosecond precision (three decimals), as
// the format requires.
//
// All record builders append into one reusable buffer with strconv — no
// fmt, no per-event allocation once the buffer has grown to steady state.
// Callers on hot paths must nil-guard the tracer so the disabled path does
// no work at all (enforced by the obscheck analyzer).
type Tracer struct {
	w      *bufio.Writer
	buf    []byte
	events int64
	lastID int64
	err    error
}

// NewTracer starts a trace stream on w. Call Close to terminate the JSON.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
	_, t.err = t.w.WriteString(`{"displayTimeUnit":"ns","traceEvents":[` + "\n")
	return t
}

// Events returns the number of trace events emitted so far.
func (t *Tracer) Events() int64 { return t.events }

// Err returns the first write error, if any.
func (t *Tracer) Err() error { return t.err }

func (t *Tracer) sep() {
	if t.events > 0 {
		t.buf = append(t.buf, ',', '\n')
	}
	t.events++
}

// appendMicros appends ns as a microsecond value with three decimals.
func appendMicros(b []byte, ns int64) []byte {
	if ns < 0 {
		ns = 0
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	frac := ns % 1000
	b = append(b, '.', byte('0'+frac/100), byte('0'+(frac/10)%10), byte('0'+frac%10))
	return b
}

func (t *Tracer) flushBuf() {
	if t.err == nil {
		_, t.err = t.w.Write(t.buf)
	}
	t.buf = t.buf[:0]
}

// FlashOp records one flash operation occupying die from start to end of
// simulated time and returns its event id. parent is the id of the event
// this one causally depends on (its predecessor in the request's dependency
// chain), or 0 for a chain head.
func (t *Tracer) FlashOp(op Op, die, channel int, start, end time.Duration, parent int64) int64 {
	t.sep()
	t.lastID++
	id := t.lastID
	b := t.buf
	b = append(b, `{"name":"`...)
	b = append(b, op.String()...)
	b = append(b, `","cat":"flash","ph":"X","pid":0,"tid":`...)
	b = strconv.AppendInt(b, int64(die), 10)
	b = append(b, `,"ts":`...)
	b = appendMicros(b, int64(start))
	b = append(b, `,"dur":`...)
	b = appendMicros(b, int64(end-start))
	b = append(b, `,"args":{"id":`...)
	b = strconv.AppendInt(b, id, 10)
	b = append(b, `,"parent":`...)
	b = strconv.AppendInt(b, parent, 10)
	b = append(b, `,"channel":`...)
	b = strconv.AppendInt(b, int64(channel), 10)
	b = append(b, `}}`...)
	t.buf = b
	t.flushBuf()
	return id
}

// RequestSpan records one request's lifetime (arrival to completion) as an
// async begin/end pair so Perfetto shows overlapping requests as a lane.
func (t *Tracer) RequestSpan(name string, id int64, start, end time.Duration) {
	t.asyncEvent('b', name, id, start)
	t.asyncEvent('e', name, id, end)
}

func (t *Tracer) asyncEvent(ph byte, name string, id int64, ts time.Duration) {
	t.sep()
	b := t.buf
	b = append(b, `{"name":"`...)
	b = append(b, name...)
	b = append(b, `","cat":"request","ph":"`...)
	b = append(b, ph)
	b = append(b, `","id":`...)
	b = strconv.AppendInt(b, id, 10)
	b = append(b, `,"pid":1,"tid":0,"ts":`...)
	b = appendMicros(b, int64(ts))
	b = append(b, '}')
	t.buf = b
	t.flushBuf()
}

// ThreadName labels die's track "die D (ch C)" via an "M" metadata event.
func (t *Tracer) ThreadName(die, channel int) {
	t.sep()
	b := t.buf
	b = append(b, `{"name":"thread_name","ph":"M","pid":0,"tid":`...)
	b = strconv.AppendInt(b, int64(die), 10)
	b = append(b, `,"args":{"name":"die `...)
	b = strconv.AppendInt(b, int64(die), 10)
	b = append(b, ` (ch `...)
	b = strconv.AppendInt(b, int64(channel), 10)
	b = append(b, `)"}}`...)
	t.buf = b
	t.flushBuf()
}

// ProcessName labels a pid track via an "M" metadata event.
func (t *Tracer) ProcessName(pid int, name string) {
	t.sep()
	b := t.buf
	b = append(b, `{"name":"process_name","ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":0,"args":{"name":"`...)
	b = append(b, name...)
	b = append(b, `"}}`...)
	t.buf = b
	t.flushBuf()
}

// Close terminates the JSON document and flushes buffered output. It does
// not close the underlying writer.
func (t *Tracer) Close() error {
	if _, err := t.w.WriteString("\n]}\n"); err != nil && t.err == nil {
		t.err = err
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
