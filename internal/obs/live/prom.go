package live

import (
	"bufio"
	"io"
	"strconv"
)

// promSeries is one metric family in the exposition: name, type, help, and a
// value extractor applied per shard snapshot. Totals are base-folded in the
// cells, so every counter here is monotonically non-decreasing across
// scrapes within a process (including over warm-up resets).
type promSeries struct {
	name string
	typ  string // "counter" or "gauge"
	help string
	val  func(c *Cell, s *Snapshot) float64
}

//ftl:shardsafe immutable metric-family catalog: initialized once, only ever read
var promCounters = []promSeries{
	{"ftl_requests_total", "counter", "Host requests served.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.Requests) }},
	{"ftl_page_reads_total", "counter", "User data page reads.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.PageReads) }},
	{"ftl_page_writes_total", "counter", "User data page writes.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.PageWrites) }},
	{"ftl_lookups_total", "counter", "Translation cache lookups.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.Lookups) }},
	{"ftl_hits_total", "counter", "Translation cache hits.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.Hits) }},
	{"ftl_flash_reads_total", "counter", "Flash page reads.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.FlashReads) }},
	{"ftl_flash_programs_total", "counter", "Flash page programs.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.FlashPrograms) }},
	{"ftl_flash_erases_total", "counter", "Flash block erases.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.FlashErases) }},
	{"ftl_trans_reads_total", "counter", "Translation page reads.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.TransReads) }},
	{"ftl_trans_writes_total", "counter", "Translation page writes.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.TransWrites) }},
	{"ftl_prefetched_total", "counter", "Translation entries prefetched.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.Prefetched) }},
	{"ftl_trimmed_pages_total", "counter", "Logical pages invalidated by TRIM.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.TrimmedPages) }},
	{"ftl_flushes_total", "counter", "Host flush barriers served.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.Flushes) }},
	{"ftl_response_seconds_total", "counter", "Summed request response time (simulated).",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.ResponseNS) / 1e9 }},
	{"ftl_service_seconds_total", "counter", "Summed request service time (simulated).",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.ServiceNS) / 1e9 }},
	{"ftl_queue_seconds_total", "counter", "Summed request queueing time (simulated).",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.QueueNS) / 1e9 }},
	{"ftl_gc_seconds_total", "counter", "Summed garbage-collection time (simulated).",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Total.GCNS) / 1e9 }},
	{"ftl_telemetry_epochs_total", "counter", "Telemetry epochs published.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.Seq) }},
	{"ftl_admitted_total", "counter", "Requests admitted by the shard frontend.",
		func(c *Cell, _ *Snapshot) float64 { a, _, _ := c.QueueStats(); return float64(a) }},
}

//ftl:shardsafe immutable metric-family catalog: initialized once, only ever read
var promGauges = []promSeries{
	{"ftl_sim_time_seconds", "gauge", "Simulated clock at the latest epoch.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.SimNS) / 1e9 }},
	{"ftl_hit_ratio", "gauge", "Cumulative translation-cache hit ratio.",
		func(_ *Cell, s *Snapshot) float64 { return s.HitRatio() }},
	{"ftl_max_response_seconds", "gauge", "Largest response time observed.",
		func(_ *Cell, s *Snapshot) float64 { return float64(s.MaxResponseNS) / 1e9 }},
	{"ftl_queue_depth_mean", "gauge", "Mean in-flight depth at admission.",
		func(c *Cell, _ *Snapshot) float64 { return c.MeanDepth() }},
	{"ftl_queue_depth_max", "gauge", "Largest in-flight depth at admission.",
		func(c *Cell, _ *Snapshot) float64 { _, _, m := c.QueueStats(); return float64(m) }},
}

// WritePrometheus renders the plane's current state in the Prometheus text
// exposition format (version 0.0.4): one series per shard plus the GC-pool
// split, run info, and the sampler's progress view. Reads only published
// epochs and atomics — never the live simulation state.
func WritePrometheus(w io.Writer, p *Plane) error {
	bw := bufio.NewWriter(w)
	cells := p.Cells()

	writeFamily := func(fam promSeries, needSnap bool) {
		header(bw, fam.name, fam.typ, fam.help)
		for _, c := range cells {
			s := c.Load()
			if s == nil && needSnap {
				continue
			}
			sample(bw, fam.name, shardLabel(c.Shard()), fam.val(c, s))
		}
	}
	for _, fam := range promCounters {
		// Frontend admission counts exist before the first epoch.
		writeFamily(fam, fam.name != "ftl_admitted_total")
	}
	for _, fam := range promGauges {
		writeFamily(fam, fam.name != "ftl_queue_depth_mean" && fam.name != "ftl_queue_depth_max")
	}

	header(bw, "ftl_gc_collections_total", "counter", "Garbage collections by pool.")
	for _, c := range cells {
		if s := c.Load(); s != nil {
			sh := strconv.Itoa(c.Shard())
			sample(bw, "ftl_gc_collections_total", `shard="`+sh+`",pool="data"`, float64(s.GCData))
			sample(bw, "ftl_gc_collections_total", `shard="`+sh+`",pool="trans"`, float64(s.GCTrans))
		}
	}

	info := p.Info()
	header(bw, "ftl_run_info", "gauge", "Run metadata (value is always 1).")
	sample(bw, "ftl_run_info",
		`scheme="`+escapeLabel(info.Scheme)+`",workload="`+escapeLabel(info.Workload)+`",shards="`+strconv.Itoa(info.Shards)+`"`, 1)

	if pr, ok := p.Progress(); ok {
		header(bw, "ftl_progress_requests", "gauge", "Requests served so far (all shards).")
		sample(bw, "ftl_progress_requests", "", float64(pr.Requests))
		if pr.Total > 0 {
			header(bw, "ftl_progress_total_requests", "gauge", "Expected requests for the run.")
			sample(bw, "ftl_progress_total_requests", "", float64(pr.Total))
		}
		header(bw, "ftl_requests_per_second", "gauge", "Wall-clock request throughput (sampler).")
		sample(bw, "ftl_requests_per_second", "", pr.ReqPerSec)
		if pr.ETASeconds > 0 {
			header(bw, "ftl_eta_seconds", "gauge", "Estimated wall-clock time to completion.")
			sample(bw, "ftl_eta_seconds", "", pr.ETASeconds)
		}
		if pr.PeakRSSBytes > 0 {
			header(bw, "ftl_peak_rss_bytes", "gauge", "Peak resident set size (memwatch).")
			sample(bw, "ftl_peak_rss_bytes", "", float64(pr.PeakRSSBytes))
		}
	}
	return bw.Flush()
}

func header(w *bufio.Writer, name, typ, help string) {
	w.WriteString("# HELP " + name + " " + help + "\n")
	w.WriteString("# TYPE " + name + " " + typ + "\n")
}

func sample(w *bufio.Writer, name, labels string, v float64) {
	w.WriteString(name)
	if labels != "" {
		w.WriteString("{" + labels + "}")
	}
	w.WriteString(" " + strconv.FormatFloat(v, 'g', -1, 64) + "\n")
}

func shardLabel(shard int) string { return `shard="` + strconv.Itoa(shard) + `"` }

// escapeLabel escapes a Prometheus label value (backslash, quote, newline).
func escapeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
