package live

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Scanner sizing for the line-oriented validators: initial buffer and the
// hard cap on a single exposition or dump line. I/O sizes, not flash
// geometry.
const (
	scanBufInit = 64 << 10
	scanBufMax  = 1 << 20
)

// Exposition is a parsed Prometheus text scrape: every sample keyed by its
// full series identity (name plus sorted label set) and the declared TYPE of
// each metric family.
type Exposition struct {
	Samples map[string]float64
	Types   map[string]string
}

// ValidatePrometheus parses r as Prometheus text exposition format (0.0.4)
// and checks the syntax rules the smoke pins: metric-name and label-name
// grammar, quoted/escaped label values, parseable sample values, HELP/TYPE
// declared at most once per family and TYPE before the family's first
// sample. Returns the parsed samples for monotonicity comparison.
func ValidatePrometheus(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Samples: map[string]float64{}, Types: map[string]string{}}
	helped := map[string]bool{}
	sampled := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, scanBufInit), scanBufMax)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := parseComment(text, exp, helped, sampled); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			continue
		}
		key, val, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
		}
		sampled[name] = true
		if _, dup := exp.Samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", line, key)
		}
		exp.Samples[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(exp.Samples) == 0 && len(exp.Types) == 0 {
		return nil, fmt.Errorf("empty exposition")
	}
	return exp, nil
}

func parseComment(text string, exp *Exposition, helped, sampled map[string]bool) error {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", text)
		}
		if helped[fields[2]] {
			return fmt.Errorf("duplicate HELP for %s", fields[2])
		}
		helped[fields[2]] = true
	case "TYPE":
		if len(fields) < 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", text)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("invalid TYPE %q for %s", typ, name)
		}
		if _, dup := exp.Types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %s after its first sample", name)
		}
		exp.Types[name] = typ
	}
	return nil
}

// parseSample parses `name{label="v",...} value [timestamp]` and returns a
// canonical series key (labels sorted) plus the value.
func parseSample(text string) (string, float64, error) {
	rest := text
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name := rest[:i]
	if !validMetricName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	var labels []string
	if strings.HasPrefix(rest, "{") {
		var err error
		labels, rest, err = parseLabels(rest)
		if err != nil {
			return "", 0, fmt.Errorf("metric %s: %w", name, err)
		}
	}
	rest = strings.TrimSpace(rest)
	valueField := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		valueField = rest[:i]
		ts := strings.TrimSpace(rest[i+1:])
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return "", 0, fmt.Errorf("metric %s: invalid timestamp %q", name, ts)
		}
	}
	v, err := parseValue(valueField)
	if err != nil {
		return "", 0, fmt.Errorf("metric %s: %w", name, err)
	}
	sort.Strings(labels)
	key := name
	if len(labels) > 0 {
		key += "{" + strings.Join(labels, ",") + "}"
	}
	return key, v, nil
}

// parseLabels consumes a {label="value",...} block and returns the
// label="value" pairs plus the remainder of the line.
func parseLabels(s string) ([]string, string, error) {
	var labels []string
	s = s[1:] // consume '{'
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		i := 0
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i == len(s) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		lname := strings.TrimSpace(s[:i])
		if !validLabelName(lname) {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		s = s[i+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: value not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i = 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("label %s: dangling escape", lname)
				}
				i++
				switch s[i] {
				case '\\', '"':
					val.WriteByte(s[i])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", lname, s[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, "", fmt.Errorf("label %s: unterminated value", lname)
		}
		labels = append(labels, lname+`="`+val.String()+`"`)
		s = s[i+1:]
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "":
		return 0, fmt.Errorf("missing value")
	case "+Inf", "-Inf", "Nan", "NaN":
		// Accepted exposition spellings; exact value is irrelevant here.
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid value %q", s)
	}
	return v, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && !(i > 0 && c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && !(i > 0 && c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

// CheckCounterMonotonic verifies that every counter series present in prev
// did not decrease in cur. A series is a counter when cur declares its
// family TYPE counter, or (untyped) when its name ends in _total. Series may
// appear in cur that prev lacked (new shards publishing); a counter series
// vanishing from cur is an error — within one run the cell set only grows.
func CheckCounterMonotonic(prev, cur *Exposition) error {
	keys := make([]string, 0, len(prev.Samples))
	for k := range prev.Samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
		}
		typ := cur.Types[name]
		if typ != "counter" && !(typ == "" && strings.HasSuffix(name, "_total")) {
			continue
		}
		curV, ok := cur.Samples[key]
		if !ok {
			return fmt.Errorf("counter series %s disappeared between scrapes", key)
		}
		if curV < prev.Samples[key] {
			return fmt.Errorf("counter series %s decreased: %v -> %v", key, prev.Samples[key], curV)
		}
	}
	return nil
}

// ValidateRecorderDump checks a flight-recorder dump (Plane.DumpRecorders
// output): header and trailer present, shard sections with consistent
// retained counts, records carrying the full field set with known kinds and
// strictly increasing per-shard sequence numbers. Returns the record count.
func ValidateRecorderDump(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, scanBufInit), scanBufMax)
	if !sc.Scan() {
		return 0, fmt.Errorf("empty dump")
	}
	if !strings.HasPrefix(sc.Text(), "flight recorder: shards=") {
		return 0, fmt.Errorf("missing header, got %q", sc.Text())
	}
	records, line := 0, 1
	inShard := false
	sectionRetained, sectionSeen := 0, 0
	var lastSeq int64
	closeSection := func() error {
		if inShard && sectionSeen != sectionRetained {
			return fmt.Errorf("shard section: retained=%d but %d records", sectionRetained, sectionSeen)
		}
		return nil
	}
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case strings.HasPrefix(text, "-- shard "):
			if err := closeSection(); err != nil {
				return 0, fmt.Errorf("line %d: %w", line, err)
			}
			inShard = true
			sectionSeen, lastSeq = 0, 0
			var shard int
			var total int64
			if _, err := fmt.Sscanf(text, "-- shard %d: total=%d retained=%d --", &shard, &total, &sectionRetained); err != nil {
				return 0, fmt.Errorf("line %d: malformed shard header %q", line, text)
			}
		case text == "end flight recorder":
			if err := closeSection(); err != nil {
				return 0, fmt.Errorf("line %d: %w", line, err)
			}
			return records, nil
		case strings.HasPrefix(text, "seq="):
			if !inShard {
				return 0, fmt.Errorf("line %d: record outside a shard section", line)
			}
			var seq, simNS, off, n, arrival, admit, complete int64
			var kind string
			if _, err := fmt.Sscanf(text,
				"seq=%d sim_ns=%d kind=%s off=%d n=%d arrival_ns=%d admit_ns=%d complete_ns=%d",
				&seq, &simNS, &kind, &off, &n, &arrival, &admit, &complete); err != nil {
				return 0, fmt.Errorf("line %d: malformed record %q: %v", line, text, err)
			}
			if !KnownKind(kind) {
				return 0, fmt.Errorf("line %d: unknown kind %q", line, kind)
			}
			if seq <= lastSeq {
				return 0, fmt.Errorf("line %d: sequence not increasing (%d after %d)", line, seq, lastSeq)
			}
			lastSeq = seq
			sectionSeen++
			records++
		default:
			return 0, fmt.Errorf("line %d: unexpected line %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("missing trailer")
}
