package live

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// jsonShard is one shard's entry in the /snapshot document: the latest
// epoch (if any) plus the frontend queue stats derived from the same cell.
type jsonShard struct {
	Shard     int       `json:"shard"`
	Epoch     *Snapshot `json:"epoch,omitempty"`
	Admitted  int64     `json:"admitted"`
	MeanDepth float64   `json:"mean_depth"`
	MaxDepth  int64     `json:"max_depth"`
	HitRatio  float64   `json:"hit_ratio"`
}

// jsonDoc is the /snapshot response: run metadata, per-shard epochs, the
// cross-shard counter fold, and the sampler's progress view when present.
type jsonDoc struct {
	Run      RunInfo      `json:"run"`
	Shards   []jsonShard  `json:"shards"`
	Totals   obs.Counters `json:"totals"`
	Progress *Progress    `json:"progress,omitempty"`
}

// SnapshotDoc assembles the JSON snapshot document from published epochs
// and atomics only. Exposed for expvar publication from cmd.
func SnapshotDoc(p *Plane) any {
	doc := jsonDoc{Run: p.Info(), Shards: []jsonShard{}}
	for _, c := range p.Cells() {
		js := jsonShard{Shard: c.Shard()}
		admitted, _, maxDepth := c.QueueStats()
		js.Admitted = admitted
		js.MaxDepth = maxDepth
		js.MeanDepth = c.MeanDepth()
		if s := c.Load(); s != nil {
			js.Epoch = s
			js.HitRatio = s.HitRatio()
			doc.Totals = doc.Totals.Add(s.Total)
		}
		doc.Shards = append(doc.Shards, js)
	}
	if pr, ok := p.Progress(); ok {
		doc.Progress = &pr
	}
	return doc
}

// WriteJSON renders the /snapshot document.
func WriteJSON(w io.Writer, p *Plane) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(SnapshotDoc(p))
}

// NewMux returns the telemetry HTTP mux:
//
//	/metrics      Prometheus text exposition
//	/snapshot     JSON snapshot document
//	/quit         POST ends a -telemetry-linger wait (when quit != nil)
//	/debug/vars   expvar
//	/debug/pprof  net/http/pprof profiles
//
// Every handler reads only published epochs and atomics, so scraping is safe
// at any moment of the run.
func NewMux(p *Plane, quit func()) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, p)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteJSON(w, p)
	})
	mux.HandleFunc("/quit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		w.WriteHeader(http.StatusOK)
		if quit != nil {
			quit()
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
