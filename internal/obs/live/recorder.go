package live

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Kind classifies one flight-recorder record: the five host ops, the GC and
// wear-leveling scheduler events, and free-form notes.
type Kind uint8

const (
	KindRead Kind = iota
	KindWrite
	KindWriteFUA
	KindTrim
	KindFlush
	KindGCData
	KindGCTrans
	KindWearLevel
	KindNote
	numKinds
)

var kindNames = [numKinds]string{
	"read", "write", "write_fua", "trim", "flush",
	"gc_data", "gc_trans", "wear_level", "note",
}

// String returns the dump-format token for the kind.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// KnownKind reports whether name is a valid dump-format kind token
// (validators use it; keep in sync with kindNames).
func KnownKind(name string) bool {
	for _, n := range kindNames {
		if n == name {
			return true
		}
	}
	return false
}

// Record is one fixed-size flight-recorder entry. No pointers, so appending
// copies by value into the pre-allocated ring — zero per-op allocation. For
// host requests Off/N carry the byte offset and length and the three
// timestamps the admission path saw; for GC/wear-level events Off carries
// the block number and N the valid pages migrated (timestamps zero except
// CompleteNS = simulated completion).
type Record struct {
	Seq        int64 // assigned by the recorder, 1-based per shard
	SimNS      int64 // simulated clock when recorded
	Kind       Kind
	Off        int64
	N          int64
	ArrivalNS  int64
	AdmitNS    int64
	CompleteNS int64
}

// Recorder is a fixed-size ring of the last len(ring) records for one shard.
// Appends come from the shard's serving goroutine; dumps happen only on
// failure or SIGQUIT, so a short mutex (never held by a scrape) is enough —
// the HTTP endpoints never touch the recorder.
type Recorder struct {
	mu    sync.Mutex
	ring  []Record
	total int64
}

// NewRecorder returns a recorder retaining the last n records (n ≥ 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{ring: make([]Record, n)}
}

// Append records rec, overwriting the oldest entry once the ring is full.
// The sequence number is assigned here. Allocation-free.
func (r *Recorder) Append(rec Record) {
	r.mu.Lock()
	r.total++
	rec.Seq = r.total
	r.ring[(r.total-1)%int64(len(r.ring))] = rec
	r.mu.Unlock()
}

// Total returns how many records were ever appended.
func (r *Recorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Tail appends the retained records, oldest first, to dst and returns it.
func (r *Recorder) Tail(dst []Record) []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if n > int64(len(r.ring)) {
		n = int64(len(r.ring))
	}
	for i := r.total - n; i < r.total; i++ {
		dst = append(dst, r.ring[i%int64(len(r.ring))])
	}
	return dst
}

// DumpRecorders writes a readable post-mortem report of every shard's
// flight recorder: the last N admitted requests and scheduler events per
// shard, oldest first. The format is stable enough to validate
// (ValidateRecorderDump, cmd/obsvalidate -recorder).
func (p *Plane) DumpRecorders(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cells := p.Cells()
	info := p.Info()
	fmt.Fprintf(bw, "flight recorder: shards=%d ring=%d scheme=%q workload=%q\n",
		len(cells), p.records, info.Scheme, info.Workload)
	var tail []Record
	for _, c := range cells {
		rec := c.Recorder()
		tail = rec.Tail(tail[:0])
		fmt.Fprintf(bw, "-- shard %d: total=%d retained=%d --\n",
			c.Shard(), rec.Total(), len(tail))
		for i := range tail {
			r := &tail[i]
			fmt.Fprintf(bw,
				"seq=%d sim_ns=%d kind=%s off=%d n=%d arrival_ns=%d admit_ns=%d complete_ns=%d\n",
				r.Seq, r.SimNS, r.Kind, r.Off, r.N, r.ArrivalNS, r.AdmitNS, r.CompleteNS)
		}
	}
	fmt.Fprintf(bw, "end flight recorder\n")
	return bw.Flush()
}
