// Package live is the in-flight telemetry plane: a lock-free bridge between
// the single-threaded simulation goroutines (one per shard) and concurrent
// observers (HTTP scrapers, the progress sampler, expvar).
//
// The design is single-writer epoch publication. Each shard owns a Cell; the
// shard's serving goroutine — and only that goroutine — builds an immutable
// Snapshot at a deterministic cadence (every Cell.Every served requests, a
// count keyed to simulated progress, never wall time) and publishes it with
// one atomic pointer swap. Observers only Load the pointer; they never read
// the mutable ftl.Metrics the simulator is updating, so a scrape can never
// race the simulation or take a lock it holds. With no Cell attached the hot
// path pays a single nil check and zero allocations.
//
// Wall-clock discipline: this package contains no wall-clock calls at all
// (the clocksafe analyzer bans them under internal/). Rates, ETA and RSS live
// in Progress, which is computed by a sampler goroutine in cmd/ — the only
// layer allowed to see wall time — and stored back here atomically.
package live

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Defaults for NewPlane. DefaultEvery is the publish cadence in served
// requests per shard; DefaultRecords is the per-shard flight-recorder ring
// size.
const (
	DefaultEvery   = 1024
	DefaultRecords = 256
)

// RunInfo identifies the run the plane is currently observing.
type RunInfo struct {
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	Shards   int    `json:"shards"`
	// TotalRequests is the expected request count for the whole run
	// (warm-up included) when known, 0 otherwise. The sampler uses it for
	// the ETA estimate.
	TotalRequests int64 `json:"total_requests"`
}

// Snapshot is one immutable telemetry epoch for one shard. Counters are
// cumulative over the process-lifetime of the attached device: metric resets
// (warm-up) are folded into a base so every field in Total is monotonically
// non-decreasing across epochs — the Prometheus counter contract.
type Snapshot struct {
	Shard int          `json:"shard"`
	Seq   int64        `json:"seq"`    // epoch number, 1-based
	SimNS int64        `json:"sim_ns"` // simulated clock at publication
	Total obs.Counters `json:"total"`  // cumulative, monotonic
	Delta obs.Counters `json:"delta"`  // since the previous epoch
	// GC split and response watermark beyond the obs.Counters subset.
	GCData        int64 `json:"gc_data_collections"`
	GCTrans       int64 `json:"gc_trans_collections"`
	MaxResponseNS int64 `json:"max_response_ns"`
}

// HitRatio returns the cumulative translation-cache hit ratio.
func (s *Snapshot) HitRatio() float64 {
	if s.Total.Lookups == 0 {
		return 0
	}
	return float64(s.Total.Hits) / float64(s.Total.Lookups)
}

// Progress is the wall-clock view of the run, computed by the cmd-side
// sampler (the only place wall time may exist) and published here so the
// scrape endpoints can serve it.
type Progress struct {
	WallUnixNS   int64   `json:"wall_unix_ns"`
	Requests     int64   `json:"requests"` // served so far, all shards
	Total        int64   `json:"total_requests,omitempty"`
	ReqPerSec    float64 `json:"requests_per_sec"`
	ETASeconds   float64 `json:"eta_seconds,omitempty"` // 0 when unknown
	PeakRSSBytes int64   `json:"peak_rss_bytes,omitempty"`
}

// Cell is one shard's telemetry mailbox. The shard's serving goroutine is
// the single writer of the snapshot pointer and the recorder; the queue-stat
// fields are plain atomics written by whichever frontend admits for the
// shard. Everything an observer can reach is either atomic or immutable.
type Cell struct {
	shard int
	every int64
	rec   *Recorder

	// Single-writer state (the shard goroutine): the monotonic base folded
	// at each metrics reset, and the previous epoch's totals for deltas.
	base        obs.Counters
	baseGCData  int64
	baseGCTrans int64
	seq         int64
	prev        obs.Counters

	snap atomic.Pointer[Snapshot]

	// Queue stats published by the admitting frontend (atomic because the
	// sharded host admits on a different goroutine than the scraper reads).
	admitted atomic.Int64
	depthSum atomic.Int64
	maxDepth atomic.Int64
}

// Shard returns the shard index this cell observes.
func (c *Cell) Shard() int { return c.shard }

// Due reports whether the shard should publish an epoch after serving its
// requests-th request. The cadence is a pure function of the served-request
// count, so telemetry-on and telemetry-off runs make identical simulation
// decisions. Zero-alloc: one modulo on two int64s.
func (c *Cell) Due(requests int64) bool {
	return c.every > 0 && requests > 0 && requests%c.every == 0
}

// Publish builds and atomically publishes a new epoch from the shard's
// cumulative counters since its last metrics reset. Must be called only by
// the shard's serving goroutine (single writer).
func (c *Cell) Publish(simNS int64, cur obs.Counters, gcData, gcTrans, maxResponseNS int64) {
	total := c.base.Add(cur)
	c.seq++
	s := &Snapshot{
		Shard:         c.shard,
		Seq:           c.seq,
		SimNS:         simNS,
		Total:         total,
		Delta:         total.Sub(c.prev),
		GCData:        c.baseGCData + gcData,
		GCTrans:       c.baseGCTrans + gcTrans,
		MaxResponseNS: maxResponseNS,
	}
	c.prev = total
	c.snap.Store(s)
}

// FoldBase absorbs the pre-reset cumulative counters into the monotonic
// base. Call immediately before a metrics reset (after a final Publish), so
// published totals keep growing across warm-up resets. Single-writer.
func (c *Cell) FoldBase(cur obs.Counters, gcData, gcTrans int64) {
	c.base = c.base.Add(cur)
	c.baseGCData += gcData
	c.baseGCTrans += gcTrans
}

// Load returns the latest published epoch, or nil before the first one.
// Safe from any goroutine; the snapshot is immutable.
func (c *Cell) Load() *Snapshot { return c.snap.Load() }

// SetQueueStats publishes the admitting frontend's queueing statistics.
func (c *Cell) SetQueueStats(admitted, depthSum, maxDepth int64) {
	c.admitted.Store(admitted)
	c.depthSum.Store(depthSum)
	c.maxDepth.Store(maxDepth)
}

// QueueStats returns the frontend queueing statistics last published.
func (c *Cell) QueueStats() (admitted, depthSum, maxDepth int64) {
	return c.admitted.Load(), c.depthSum.Load(), c.maxDepth.Load()
}

// MeanDepth returns the mean in-flight depth at admission from the
// published queue stats (0 before any admission).
func (c *Cell) MeanDepth() float64 {
	a := c.admitted.Load()
	if a == 0 {
		return 0
	}
	return float64(c.depthSum.Load()) / float64(a)
}

// Recorder returns the shard's flight recorder (never nil on a plane cell).
func (c *Cell) Recorder() *Recorder { return c.rec }

// Plane owns the per-shard cells of the current run plus the run-scoped
// metadata. A single Plane outlives runs: StartRun swaps in a fresh cell set
// atomically, so a scrape racing a run boundary sees either the old or the
// new epoch set, never a mix.
type Plane struct {
	every   int64
	records int

	mu    sync.Mutex // serializes StartRun against itself only
	info  atomic.Pointer[RunInfo]
	cells atomic.Pointer[[]*Cell]
	prog  atomic.Pointer[Progress]
}

// NewPlane returns a plane publishing an epoch every `every` served requests
// per shard, with a per-shard flight-recorder ring of `records` entries.
// Non-positive arguments select the defaults.
func NewPlane(every int64, records int) *Plane {
	if every <= 0 {
		every = DefaultEvery
	}
	if records <= 0 {
		records = DefaultRecords
	}
	return &Plane{every: every, records: records}
}

// StartRun installs a fresh cell set for a run with info.Shards shards and
// returns the cells in shard order. Previous cells (if any) keep their last
// epochs until the swap and are then unreachable from the plane.
func (p *Plane) StartRun(info RunInfo) []*Cell {
	if info.Shards < 1 {
		info.Shards = 1
	}
	cells := make([]*Cell, info.Shards)
	for i := range cells {
		cells[i] = &Cell{shard: i, every: p.every, rec: NewRecorder(p.records)}
	}
	p.mu.Lock()
	p.info.Store(&info)
	p.cells.Store(&cells)
	p.mu.Unlock()
	return cells
}

// Cells returns the current run's cells (nil before the first StartRun).
func (p *Plane) Cells() []*Cell {
	if cp := p.cells.Load(); cp != nil {
		return *cp
	}
	return nil
}

// Info returns the current run's metadata (zero value before StartRun).
func (p *Plane) Info() RunInfo {
	if ip := p.info.Load(); ip != nil {
		return *ip
	}
	return RunInfo{}
}

// SetProgress publishes the sampler's wall-clock progress view.
func (p *Plane) SetProgress(pr Progress) { p.prog.Store(&pr) }

// Progress returns the last published progress view, if any.
func (p *Plane) Progress() (Progress, bool) {
	if pp := p.prog.Load(); pp != nil {
		return *pp, true
	}
	return Progress{}, false
}

// Requests sums the latest published request totals across shards — the
// sampler's progress numerator. Frontend admission counts are preferred when
// ahead of the epoch totals (epochs lag by up to the publish cadence).
func (p *Plane) Requests() int64 {
	var n int64
	for _, c := range p.Cells() {
		var cell int64
		if s := c.Load(); s != nil {
			cell = s.Total.Requests
		}
		if a := c.admitted.Load(); a > cell {
			cell = a
		}
		n += cell
	}
	return n
}
