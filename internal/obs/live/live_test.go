package live_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/live"
)

// TestCellEpochsFoldAcrossReset pins the monotonic-counter contract: totals
// published after a FoldBase (the warm-up metrics reset) keep growing even
// though the device's own counters restart from zero.
func TestCellEpochsFoldAcrossReset(t *testing.T) {
	p := live.NewPlane(4, 8)
	cells := p.StartRun(live.RunInfo{Scheme: "tpftl", Workload: "unit", Shards: 1, TotalRequests: 100})
	c := cells[0]
	if c.Load() != nil {
		t.Fatal("snapshot before first publish")
	}

	warm := obs.Counters{Requests: 50, Lookups: 40, Hits: 30}
	c.Publish(1000, warm, 2, 1, 7)
	s := c.Load()
	if s == nil || s.Seq != 1 || s.Total.Requests != 50 || s.Delta.Requests != 50 {
		t.Fatalf("first epoch wrong: %+v", s)
	}
	if s.GCData != 2 || s.GCTrans != 1 || s.MaxResponseNS != 7 {
		t.Fatalf("gc/max fields wrong: %+v", s)
	}

	// Warm-up reset: fold, then the device counts from zero again.
	c.FoldBase(warm, 2, 1)
	measured := obs.Counters{Requests: 10, Lookups: 8, Hits: 8}
	c.Publish(2000, measured, 1, 0, 5)
	s2 := c.Load()
	if s2.Seq != 2 {
		t.Fatalf("seq = %d, want 2", s2.Seq)
	}
	if s2.Total.Requests != 60 || s2.Total.Lookups != 48 || s2.Total.Hits != 38 {
		t.Fatalf("totals not folded: %+v", s2.Total)
	}
	if s2.Delta.Requests != 10 {
		t.Fatalf("delta = %d, want 10", s2.Delta.Requests)
	}
	if s2.GCData != 3 || s2.GCTrans != 1 {
		t.Fatalf("gc totals not folded: %+v", s2)
	}
	if got := s2.HitRatio(); got != 38.0/48.0 {
		t.Fatalf("hit ratio = %v", got)
	}

	if !c.Due(4) || !c.Due(8) || c.Due(3) || c.Due(0) {
		t.Fatal("Due cadence wrong for every=4")
	}
	if p.Requests() != 60 {
		t.Fatalf("plane requests = %d, want 60", p.Requests())
	}
	c.SetQueueStats(70, 140, 9)
	if p.Requests() != 70 {
		t.Fatalf("plane requests should prefer admitted: %d", p.Requests())
	}
	if c.MeanDepth() != 2 {
		t.Fatalf("mean depth = %v, want 2", c.MeanDepth())
	}
}

// TestRecorderRingWrap pins the fixed-ring semantics: only the newest
// len(ring) records survive, oldest first, with stable sequence numbers.
func TestRecorderRingWrap(t *testing.T) {
	r := live.NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Append(live.Record{SimNS: int64(i), Kind: live.KindRead, Off: int64(i) * 4096})
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	tail := r.Tail(nil)
	if len(tail) != 4 {
		t.Fatalf("retained %d records, want 4", len(tail))
	}
	for i, rec := range tail {
		wantSeq := int64(7 + i)
		if rec.Seq != wantSeq || rec.SimNS != wantSeq-1 {
			t.Fatalf("tail[%d] = %+v, want seq %d", i, rec, wantSeq)
		}
	}
}

// TestDumpRecordersRoundTrip renders a two-shard dump and feeds it back
// through the validator cmd/obsvalidate uses.
func TestDumpRecordersRoundTrip(t *testing.T) {
	p := live.NewPlane(0, 4)
	cells := p.StartRun(live.RunInfo{Scheme: "tpftl", Workload: "unit \"quoted\"", Shards: 2})
	for i := 0; i < 6; i++ {
		cells[0].Recorder().Append(live.Record{SimNS: int64(i), Kind: live.KindWrite, Off: int64(i), N: 4096})
	}
	cells[1].Recorder().Append(live.Record{SimNS: 1, Kind: live.KindGCData, Off: 3, N: 12, CompleteNS: 1})

	var buf bytes.Buffer
	if err := p.DumpRecorders(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := live.ValidateRecorderDump(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("dump does not validate: %v\n%s", err, buf.String())
	}
	if n != 5 { // 4 retained on shard 0 + 1 on shard 1
		t.Fatalf("validated %d records, want 5", n)
	}
}

// TestValidateRecorderDumpRejects feeds the validator the corruption shapes
// it exists to catch.
func TestValidateRecorderDumpRejects(t *testing.T) {
	head := "flight recorder: shards=1 ring=4 scheme=\"t\" workload=\"w\"\n"
	sect := "-- shard 0: total=2 retained=2 --\n"
	rec := func(seq int, kind string) string {
		return "seq=" + itoa(seq) + " sim_ns=0 kind=" + kind + " off=0 n=0 arrival_ns=0 admit_ns=0 complete_ns=0\n"
	}
	cases := map[string]string{
		"empty":           "",
		"no header":       sect + rec(1, "read") + rec(2, "read") + "end flight recorder\n",
		"missing trailer": head + sect + rec(1, "read") + rec(2, "read"),
		"unknown kind":    head + sect + rec(1, "warp") + rec(2, "read") + "end flight recorder\n",
		"seq regression":  head + sect + rec(2, "read") + rec(1, "read") + "end flight recorder\n",
		"count mismatch":  head + sect + rec(1, "read") + "end flight recorder\n",
		"stray record":    head + rec(1, "read") + "end flight recorder\n",
	}
	for name, in := range cases {
		if _, err := live.ValidateRecorderDump(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

// scrapePlane builds a two-shard plane with published epochs, queue stats and
// a progress view — everything the exposition can render.
func scrapePlane(reqs int64) *live.Plane {
	p := live.NewPlane(0, 0)
	cells := p.StartRun(live.RunInfo{Scheme: "tpftl", Workload: `Fin"1`, Shards: 2, TotalRequests: 1000})
	for i, c := range cells {
		c.Publish(5e6, obs.Counters{Requests: reqs + int64(i), Lookups: 2 * reqs, Hits: reqs}, 1, 0, 3e6)
		c.SetQueueStats(reqs+int64(i), 4*reqs, 8)
	}
	p.SetProgress(live.Progress{Requests: 2 * reqs, Total: 1000, ReqPerSec: 123.5, ETASeconds: 4, PeakRSSBytes: 1 << 20})
	return p
}

// TestPrometheusRoundTrip renders the exposition, validates it with the same
// parser the smoke uses, and checks monotonicity across two logical scrapes.
func TestPrometheusRoundTrip(t *testing.T) {
	var one, two bytes.Buffer
	p := scrapePlane(100)
	if err := live.WritePrometheus(&one, p); err != nil {
		t.Fatal(err)
	}
	prev, err := live.ValidatePrometheus(strings.NewReader(one.String()))
	if err != nil {
		t.Fatalf("scrape 1 invalid: %v\n%s", err, one.String())
	}
	for _, key := range []string{
		`ftl_requests_total{shard="0"}`,
		`ftl_requests_total{shard="1"}`,
		`ftl_gc_collections_total{pool="data",shard="0"}`,
		`ftl_hit_ratio{shard="0"}`,
		`ftl_queue_depth_max{shard="1"}`,
		`ftl_progress_requests`,
	} {
		if _, ok := prev.Samples[key]; !ok {
			t.Errorf("series %s missing from exposition", key)
		}
	}
	if prev.Types["ftl_requests_total"] != "counter" || prev.Types["ftl_hit_ratio"] != "gauge" {
		t.Fatalf("family types wrong: %v", prev.Types)
	}
	if got := prev.Samples[`ftl_requests_total{shard="0"}`]; got != 100 {
		t.Fatalf("requests sample = %v, want 100", got)
	}

	// Second scrape with advanced counters must be monotonic over the first;
	// the reverse comparison must fail.
	for _, c := range p.Cells() {
		c.Publish(6e6, obs.Counters{Requests: 150, Lookups: 300, Hits: 150}, 2, 1, 3e6)
	}
	if err := live.WritePrometheus(&two, p); err != nil {
		t.Fatal(err)
	}
	cur, err := live.ValidatePrometheus(strings.NewReader(two.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := live.CheckCounterMonotonic(prev, cur); err != nil {
		t.Fatalf("monotonic scrapes rejected: %v", err)
	}
	if err := live.CheckCounterMonotonic(cur, prev); err == nil {
		t.Fatal("counter decrease not detected")
	}
}

// TestValidatePrometheusRejects feeds the parser the syntax violations it
// polices.
func TestValidatePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad metric name":   "9leading 1\n",
		"bad label name":    `m{__internal="x"} 1` + "\n",
		"unquoted label":    `m{l=x} 1` + "\n",
		"bad escape":        `m{l="a\q"} 1` + "\n",
		"missing value":     "m\n",
		"bad value":         "m one\n",
		"bad timestamp":     "m 1 soon\n",
		"duplicate series":  "m 1\nm 2\n",
		"dup type":          "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"invalid type":      "# TYPE m countermeasure\nm 1\n",
		"type after sample": "m 1\n# TYPE m counter\n",
	}
	for name, in := range cases {
		if _, err := live.ValidatePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

// TestMuxEndpoints drives the HTTP surface end to end: /metrics validates as
// an exposition, /snapshot as the JSON document, /quit is POST-only and
// invokes the callback.
func TestMuxEndpoints(t *testing.T) {
	p := scrapePlane(42)
	quits := 0
	srv := httptest.NewServer(live.NewMux(p, func() { quits++ }))
	defer srv.Close()

	body := get(t, srv.Client(), srv.URL+"/metrics")
	if _, err := live.ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}

	var doc struct {
		Run    live.RunInfo `json:"run"`
		Shards []struct {
			Shard    int            `json:"shard"`
			Epoch    *live.Snapshot `json:"epoch"`
			Admitted int64          `json:"admitted"`
		} `json:"shards"`
		Totals   obs.Counters   `json:"totals"`
		Progress *live.Progress `json:"progress"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.Client(), srv.URL+"/snapshot")), &doc); err != nil {
		t.Fatalf("/snapshot: %v", err)
	}
	if doc.Run.Shards != 2 || len(doc.Shards) != 2 {
		t.Fatalf("snapshot run/shards wrong: %+v", doc.Run)
	}
	if doc.Shards[1].Epoch == nil || doc.Shards[1].Epoch.Total.Requests != 43 {
		t.Fatalf("shard 1 epoch wrong: %+v", doc.Shards[1])
	}
	if doc.Totals.Requests != 42+43 {
		t.Fatalf("totals = %d", doc.Totals.Requests)
	}
	if doc.Progress == nil || doc.Progress.ReqPerSec != 123.5 {
		t.Fatalf("progress missing: %+v", doc.Progress)
	}

	if resp, err := srv.Client().Get(srv.URL + "/quit"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /quit: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	resp, err := srv.Client().Post(srv.URL+"/quit", "text/plain", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /quit: %v %v", resp, err)
	}
	resp.Body.Close()
	if quits != 1 {
		t.Fatalf("quit callback ran %d times", quits)
	}
}

func get(t *testing.T, c *http.Client, url string) string {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
