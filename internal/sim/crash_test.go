package sim

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/trace"
	"repro/internal/workload"
)

// crashOptions returns a fast crash-run configuration: a 16 MB device keeps
// each replay cheap enough to test hundreds of cut points.
func crashOptions(s Scheme) CrashOptions {
	return CrashOptions{
		Scheme:       s,
		Profile:      workload.Financial1(),
		AddressSpace: 16 << 20,
		Requests:     1_200,
		Seed:         42,
	}
}

// TestCrashRecoveryProperty is the tentpole property: across three schemes
// and 200+ random power-cut points, the mapping rebuilt from OOB metadata
// alone must equal the live state at the cut and preserve every
// acknowledged write. RunCrash fails loudly on any divergence.
func TestCrashRecoveryProperty(t *testing.T) {
	cuts := 70
	if testing.Short() {
		cuts = 5
	}
	for _, s := range []Scheme{SchemeTPFTL, SchemeDFTL, SchemeSFTL} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			o := crashOptions(s)
			o.Cuts = cuts
			rep, err := RunCrash(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Cuts) != cuts {
				t.Fatalf("verified %d cut points, want %d", len(rep.Cuts), cuts)
			}
			sawAcked := false
			for _, c := range rep.Cuts {
				if c.ScannedPages == 0 {
					t.Fatalf("cut at op %d scanned no pages", c.CutOp)
				}
				if c.AckedPages > 0 {
					sawAcked = true
				}
			}
			if !sawAcked {
				t.Fatalf("no cut point verified any acknowledged writes; property is vacuous")
			}
		})
	}
}

// TestCrashRecoveryExplicitCut pins one early and one late cut point so the
// boundary cases (cut during the very first ops; cut after the workload's
// last op never fires) stay covered without randomness.
func TestCrashRecoveryExplicitCut(t *testing.T) {
	for _, cut := range []int64{1, 2, 1 << 62} {
		o := crashOptions(SchemeTPFTL)
		o.CutAtOp = cut
		rep, err := RunCrash(o)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(rep.Cuts) != 1 {
			t.Fatalf("cut=%d: %d results", cut, len(rep.Cuts))
		}
	}
}

// TestCrashRecoveryParallelBackend cuts power on a multi-channel device:
// recovery is a pure function of the chip's page state, so the OOB scan must
// rebuild the mapping no matter how blocks were striped across dies — and a
// few fixed cut points keep the block-boundary cases deterministic.
func TestCrashRecoveryParallelBackend(t *testing.T) {
	cuts := 20
	if testing.Short() {
		cuts = 3
	}
	o := crashOptions(SchemeTPFTL)
	o.Channels = 4
	o.Dies = 2
	o.Cuts = cuts
	rep, err := RunCrash(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cuts) != cuts {
		t.Fatalf("verified %d cut points, want %d", len(rep.Cuts), cuts)
	}
	for _, cut := range []int64{1, 2, 1 << 62} {
		o := crashOptions(SchemeTPFTL)
		o.Channels = 4
		o.Dies = 2
		o.TransPlacement = ftl.TPPinned
		o.CutAtOp = cut
		if _, err := RunCrash(o); err != nil {
			t.Fatalf("pinned placement, cut=%d: %v", cut, err)
		}
	}
}

// TestCrashRecoveryWithTransientFaults layers probabilistic transient
// faults on the road to the power cut: retries must not corrupt the state
// the recovery scan is later checked against.
func TestCrashRecoveryWithTransientFaults(t *testing.T) {
	o := crashOptions(SchemeTPFTL)
	o.Cuts = 10
	o.FaultProb = 0.002
	rep, err := RunCrash(o)
	if err != nil {
		t.Fatal(err)
	}
	var injected int64
	for _, c := range rep.Cuts {
		injected += c.Injected
	}
	if injected == 0 {
		t.Fatalf("no transient faults injected across %d cut runs; raise FaultProb", len(rep.Cuts))
	}
}

// TestRunWithTransientFaults drives the plain harness with probability
// faults: the device must absorb every one through bounded retries, account
// for them in the metrics, and still finish consistent (Run's built-in
// post-run check).
func TestRunWithTransientFaults(t *testing.T) {
	r, err := Run(Options{
		Scheme:   SchemeTPFTL,
		Profile:  smallProfile(workload.Financial1()),
		Requests: 5_000,
		Seed:     3,
		Faults: &flash.FaultPlan{
			Seed:        11,
			ReadProb:    0.001,
			ProgramProb: 0.001,
			EraseProb:   0.001,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.M.InjectedFaults == 0 {
		t.Fatalf("no faults observed; plan was not armed")
	}
	if r.M.FaultRetries != r.M.InjectedFaults {
		t.Fatalf("retries %d != injected %d: some transient faults were not retried", r.M.FaultRetries, r.M.InjectedFaults)
	}
}

// FuzzCrashRecovery lets the fuzzer explore (workload seed, cut point)
// pairs; go test runs the seed corpus as a regression suite.
func FuzzCrashRecovery(f *testing.F) {
	f.Add(int64(1), int64(50))
	f.Add(int64(2), int64(5_000))
	f.Add(int64(3), int64(0))
	f.Fuzz(func(t *testing.T, seed, cut int64) {
		o := crashOptions(SchemeTPFTL)
		o.Requests = 300
		o.Seed = seed
		o.Cuts = 1
		if cut > 0 {
			o.CutAtOp = cut
		}
		if _, err := RunCrash(o); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCrashRecoveryTrimFlush replays the host-interface profiles —
// fstrim-heavy (discards interleaved with I/O) and database-fsync (flush
// barriers plus FUA writes) — through the crash harness on the three main
// schemes. Beyond the baseline (a)/(b) contracts, every cut point now also
// verifies (c) no trimmed page resurrects and (d) every acknowledged flush
// left the mapping cache clean; the assertions below make sure those checks
// actually fired (non-vacuous trim and flush coverage).
func TestCrashRecoveryTrimFlush(t *testing.T) {
	cuts := 25
	if testing.Short() {
		cuts = 4
	}
	for _, s := range []Scheme{SchemeTPFTL, SchemeDFTL, SchemeSFTL} {
		for _, p := range []workload.Profile{workload.FstrimHeavy(), workload.DatabaseFsync()} {
			s, p := s, p
			t.Run(string(s)+"/"+p.Name, func(t *testing.T) {
				t.Parallel()
				o := crashOptions(s)
				o.Profile = p
				o.Cuts = cuts
				rep, err := RunCrash(o)
				if err != nil {
					t.Fatal(err)
				}
				var trims, flushes int
				for _, c := range rep.Cuts {
					trims += c.TrimmedPages
					flushes += c.FlushBarriers
				}
				switch p.Name {
				case "fstrim-heavy":
					if trims == 0 {
						t.Fatal("no trimmed pages verified; discard contract is vacuous")
					}
				case "database-fsync":
					if flushes == 0 {
						t.Fatal("no flush barriers verified; flush contract is vacuous")
					}
				}
			})
		}
	}
}

// FuzzCrashTrimFlush lets the fuzzer pick an arbitrary interleaving of
// writes, FUA writes, trims, flushes and reads (two bytes per request: op
// selector and page selector) plus a cut point, and replays it through
// RunCrash via CrashOptions.Trace. The seed corpus doubles as a regression
// suite for the trim-resurrection and flush-ack contracts.
func FuzzCrashTrimFlush(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x05, 0x10, 0x01, 0x20, 0x06, 0x00}, int64(20))
	f.Add([]byte{0x01, 0x08, 0x01, 0x09, 0x05, 0x08, 0x04, 0x08}, int64(0))
	f.Add([]byte{0x07, 0x01, 0x06, 0x00, 0x05, 0x01, 0x06, 0x00}, int64(35))
	f.Fuzz(func(t *testing.T, ops []byte, cut int64) {
		const space = 4 << 20
		const pageBytes = 4096
		pages := int64(space / pageBytes)
		var reqs []trace.Request
		arrival := int64(0)
		for i := 0; i+1 < len(ops) && len(reqs) < 160; i += 2 {
			arrival += 10_000
			lpn := int64(ops[i+1]) % pages
			req := trace.Request{Arrival: arrival, Offset: lpn * pageBytes, Length: pageBytes}
			switch ops[i] % 8 {
			case 0, 1, 2:
				req.Op = trace.OpWrite
			case 3:
				req.Op = trace.OpWriteFUA
			case 4:
				req.Op = trace.OpRead
			case 5:
				req.Op = trace.OpTrim
				req.Length = 4 * pageBytes // multi-page discard
			case 6:
				req.Op = trace.OpFlush
				req.Offset, req.Length = 0, 0
			case 7:
				req.Op = trace.OpTrim
			}
			reqs = append(reqs, req)
		}
		// A flush on an idle device is free: an all-flush trace performs no
		// chip ops, leaving RunCrash nothing to cut. Reads, writes and trims
		// all touch the chip.
		effectful := false
		for _, r := range reqs {
			if r.Op != trace.OpFlush {
				effectful = true
				break
			}
		}
		if !effectful {
			return
		}
		o := CrashOptions{
			Scheme:       SchemeTPFTL,
			AddressSpace: space,
			Trace:        reqs,
			Cuts:         1,
			Seed:         9,
		}
		if cut > 0 {
			o.CutAtOp = cut
		}
		if _, err := RunCrash(o); err != nil {
			t.Fatal(err)
		}
	})
}
