package sim

import (
	"testing"

	"repro/internal/workload"
)

// small returns a fast experiment configuration: 64 MB Financial-style
// devices, tens of thousands of requests.
func small() ExpConfig {
	return ExpConfig{Requests: 25_000, MSRScale: 256 << 20, Seed: 7, Warmup: 2_500}
}

// smallProfile shrinks a workload for unit-test speed.
func smallProfile(p workload.Profile) workload.Profile {
	return p.Scale(64 << 20)
}

func TestRunBasic(t *testing.T) {
	r, err := Run(Options{
		Scheme:   SchemeDFTL,
		Profile:  smallProfile(workload.Financial1()),
		Requests: 5_000,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.M.Requests != 5_000 {
		t.Fatalf("requests = %d", r.M.Requests)
	}
	if r.M.Lookups == 0 || r.M.PageAccesses() == 0 {
		t.Fatalf("no activity recorded: %+v", r.M)
	}
	if r.Scheme != SchemeDFTL || r.Workload != "Financial1" {
		t.Fatalf("labels: %s %s", r.Scheme, r.Workload)
	}
	// Paper convention: 64 MB → 256 blocks → 1 KB cache.
	if r.CacheBytes != 1024 {
		t.Fatalf("cache = %d, want 1024", r.CacheBytes)
	}
}

func TestFullTableBytes(t *testing.T) {
	if got := FullTableBytes(512 << 20); got != 1<<20 {
		t.Fatalf("512MB table = %d, want 1MB", got)
	}
	// 1/128 of the table equals the default convention.
	if got := int64(float64(FullTableBytes(512<<20)) / 128); got != 8<<10 {
		t.Fatalf("1/128 = %d, want 8KB", got)
	}
}

func TestCacheFraction(t *testing.T) {
	r, err := Run(Options{
		Scheme:        SchemeTPFTL,
		Profile:       smallProfile(workload.Financial2()),
		Requests:      2_000,
		Seed:          2,
		CacheFraction: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheBytes != FullTableBytes(64<<20) {
		t.Fatalf("full-fraction cache = %d", r.CacheBytes)
	}
	// Whole table cached: after warm-up, the dirty-replacement probability
	// must be 0 (no replacements at all).
	if r.M.Replacements != 0 {
		t.Fatalf("replacements = %d with full-table cache", r.M.Replacements)
	}
}

func TestUnknownScheme(t *testing.T) {
	if _, err := Run(Options{Scheme: "nope", Profile: smallProfile(workload.Financial1()), Requests: 10}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestTraceReplayOverridesGeneration(t *testing.T) {
	p := smallProfile(workload.Financial1())
	gen, err := workload.Generate(p, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Options{Scheme: SchemeOptimal, Profile: p, Trace: gen})
	if err != nil {
		t.Fatal(err)
	}
	if r.M.Requests != 500 {
		t.Fatalf("requests = %d, want 500", r.M.Requests)
	}
}

// TestHeadlineShapes verifies the paper's core comparative results at small
// scale: TPFTL beats DFTL on Prd, hit ratio and translation traffic;
// Optimal bounds everyone.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	p := smallProfile(workload.Financial1())
	run := func(s Scheme) *Result {
		r, err := Run(Options{
			Scheme: s, Profile: p, Requests: 40_000, Seed: 7,
			ResetAfterWarmup: 4_000, Precondition: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		return r
	}
	dftl := run(SchemeDFTL)
	tpftl := run(SchemeTPFTL)
	sftl := run(SchemeSFTL)
	opt := run(SchemeOptimal)

	t.Logf("%-8s Prd=%.3f Hr=%.3f TW=%d TR=%d resp=%v WA=%.2f erases=%d",
		"DFTL", dftl.M.Prd(), dftl.M.Hr(), dftl.M.TransWrites(), dftl.M.TransReads(), dftl.M.AvgResponse(), dftl.M.WriteAmplification(), dftl.M.FlashErases)
	t.Logf("%-8s Prd=%.3f Hr=%.3f TW=%d TR=%d resp=%v WA=%.2f erases=%d",
		"TPFTL", tpftl.M.Prd(), tpftl.M.Hr(), tpftl.M.TransWrites(), tpftl.M.TransReads(), tpftl.M.AvgResponse(), tpftl.M.WriteAmplification(), tpftl.M.FlashErases)
	t.Logf("%-8s Prd=%.3f Hr=%.3f TW=%d TR=%d resp=%v WA=%.2f erases=%d",
		"S-FTL", sftl.M.Prd(), sftl.M.Hr(), sftl.M.TransWrites(), sftl.M.TransReads(), sftl.M.AvgResponse(), sftl.M.WriteAmplification(), sftl.M.FlashErases)
	t.Logf("%-8s Prd=%.3f Hr=%.3f TW=%d TR=%d resp=%v WA=%.2f erases=%d",
		"Optimal", opt.M.Prd(), opt.M.Hr(), opt.M.TransWrites(), opt.M.TransReads(), opt.M.AvgResponse(), opt.M.WriteAmplification(), opt.M.FlashErases)

	if opt.M.Hr() != 1 || opt.M.TransWrites() != 0 || opt.M.TransReads() != 0 {
		t.Error("optimal FTL must have no translation overhead")
	}
	if tpftl.M.Prd() >= dftl.M.Prd() {
		t.Errorf("TPFTL Prd %.3f not below DFTL %.3f", tpftl.M.Prd(), dftl.M.Prd())
	}
	if tpftl.M.Hr() < dftl.M.Hr() {
		t.Errorf("TPFTL Hr %.3f below DFTL %.3f", tpftl.M.Hr(), dftl.M.Hr())
	}
	if tpftl.M.TransWrites() >= dftl.M.TransWrites() {
		t.Errorf("TPFTL trans writes %d not below DFTL %d", tpftl.M.TransWrites(), dftl.M.TransWrites())
	}
	if tpftl.M.WriteAmplification() > dftl.M.WriteAmplification() {
		t.Errorf("TPFTL WA %.2f above DFTL %.2f", tpftl.M.WriteAmplification(), dftl.M.WriteAmplification())
	}
	if tpftl.M.AvgResponse() > dftl.M.AvgResponse() {
		t.Errorf("TPFTL response %v above DFTL %v", tpftl.M.AvgResponse(), dftl.M.AvgResponse())
	}
	if opt.M.AvgResponse() > tpftl.M.AvgResponse() {
		t.Errorf("optimal response %v above TPFTL %v", opt.M.AvgResponse(), tpftl.M.AvgResponse())
	}
}

func TestTable2Derivation(t *testing.T) {
	cells := []ComparisonCell{
		{Workload: "W", Scheme: SchemeDFTL, Resp: 200, Erases: 100},
		{Workload: "W", Scheme: SchemeOptimal, Resp: 100, Erases: 60},
	}
	rows := Table2(cells)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Performance != 0.5 {
		t.Fatalf("performance = %v", rows[0].Performance)
	}
	if rows[0].Erasure != 0.4 {
		t.Fatalf("erasure = %v", rows[0].Erasure)
	}
}

func TestAblationVariantsOrder(t *testing.T) {
	vs := AblationVariants(1024)
	want := []string{"–", "b", "c", "bc", "r", "s", "rs", "rsbc"}
	if len(vs) != len(want) {
		t.Fatalf("variants = %d", len(vs))
	}
	for i, v := range vs {
		if v.VariantName() != want[i] {
			t.Fatalf("variant %d = %q, want %q", i, v.VariantName(), want[i])
		}
		if !v.CompressEntries {
			t.Fatalf("variant %q lost compression", want[i])
		}
	}
}

func TestNormalizeToDFTL(t *testing.T) {
	cells := []ComparisonCell{
		{Workload: "W", Scheme: SchemeDFTL, TWrites: 100},
		{Workload: "W", Scheme: SchemeTPFTL, TWrites: 40},
	}
	n := NormalizeToDFTL(cells, func(c ComparisonCell) float64 { return float64(c.TWrites) })
	if n["W"][SchemeDFTL] != 1 || n["W"][SchemeTPFTL] != 0.4 {
		t.Fatalf("normalized = %v", n)
	}
}

func TestSamplingProducesSamples(t *testing.T) {
	r, err := Run(Options{
		Scheme: SchemeDFTL, Profile: smallProfile(workload.Financial1()),
		Requests: 8_000, Seed: 5, SampleEvery: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples) < 5 {
		t.Fatalf("samples = %d", len(r.Samples))
	}
	for _, s := range r.Samples {
		if s.TPNodes < 0 || s.Entries < s.TPNodes {
			t.Fatalf("bad sample %+v", s)
		}
	}
}

// TestSmallComparisonSuite smoke-tests the full experiment drivers at tiny
// scale.
func TestSmallComparisonSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := ExpConfig{Requests: 6_000, MSRScale: 64 << 20, Seed: 7, Warmup: 600}
	// Note Financial profiles are 512 MB; shrink via profiles()' MSR rule
	// only applies to larger-than-scale spaces, so this also shrinks them.
	cells, err := e.RunComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 16 {
		t.Fatalf("cells = %d, want 4 workloads × 4 schemes", len(cells))
	}
	rows := Table2(cells)
	if len(rows) != 4 {
		t.Fatalf("table2 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Performance < 0 || r.Performance > 1 {
			t.Errorf("%s: performance deviation %v out of range", r.Workload, r.Performance)
		}
	}
}

func TestAblationSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := ExpConfig{Requests: 8_000, MSRScale: 64 << 20, Seed: 7, Warmup: 800}
	cells, err := e.RunAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Fatalf("cells = %d, want DFTL + 8 variants", len(cells))
	}
	byName := map[string]AblationCell{}
	for _, c := range cells {
		byName[c.Variant] = c
	}
	// The paper's qualitative ordering: 'b' reduces Prd versus '–'.
	if byName["b"].Prd >= byName["–"].Prd {
		t.Errorf("batch update did not reduce Prd: %.3f vs %.3f", byName["b"].Prd, byName["–"].Prd)
	}
	// 'rs' raises the hit ratio versus '–'.
	if byName["rs"].Hr < byName["–"].Hr {
		t.Errorf("prefetching lowered hit ratio: %.3f vs %.3f", byName["rs"].Hr, byName["–"].Hr)
	}
}

func TestCacheSweepMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	p := smallProfile(workload.Financial1())
	var prevHr float64 = -1
	for _, frac := range []float64{1.0 / 128, 1.0 / 16, 1} {
		r, err := Run(Options{
			Scheme: SchemeTPFTL, Profile: p, Requests: 20_000, Seed: 7,
			CacheFraction: frac, ResetAfterWarmup: 2_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if hr := r.M.Hr(); hr < prevHr-0.02 {
			t.Errorf("hit ratio decreased with larger cache: %.3f after %.3f", hr, prevHr)
		} else {
			prevHr = hr
		}
		if frac == 1 {
			if r.M.Prd() != 0 {
				t.Errorf("Prd = %.3f at full cache, want 0", r.M.Prd())
			}
			// Hr stays below 1 only by compulsory first-touch misses,
			// which this short run does not fully amortize.
			if r.M.Hr() < 0.85 {
				t.Errorf("Hr = %.4f at full cache, want ≥0.85", r.M.Hr())
			}
		}
	}
}
