package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/obs/live"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ShardRun is one shard's slice of a sharded run's outcome.
type ShardRun struct {
	Shard int
	// M is the shard device's measured-phase metrics.
	M ftl.Metrics
	// EventHash is the shard scheduler's order-sensitive event hash.
	EventHash uint64
	// FS is the shard frontend's queueing statistics — the same snapshot
	// struct the live telemetry plane publishes, so the ftlsim report table
	// and a live scrape agree.
	FS ssd.FrontendStats
}

// runSharded executes one simulation through the sharded multi-queue host
// frontend: the LPN space striped across Options.Shards independent devices
// (per-shard translator, mapping cache, GC and scheduler clock) served by
// concurrent client goroutines. One shard routes through the host too but
// reproduces the legacy serial path bit-for-bit (same device config, same
// admission policy, same event hashes).
func runSharded(o Options, devCfg ftl.Config, profile workload.Profile, cacheBytes int64) (*Result, error) {
	switch {
	case o.SampleEvery > 0:
		return nil, fmt.Errorf("sim: cache sampling is per-device; not supported with Shards")
	case o.MetricsOut != nil || o.TraceOut != nil:
		return nil, fmt.Errorf("sim: observability export is per-device; not supported with Shards")
	case o.Faults != nil:
		return nil, fmt.Errorf("sim: fault plans are per-device; not supported with Shards")
	}

	lay, cfgs, err := host.ShardConfigs(devCfg, o.Shards)
	if err != nil {
		return nil, err
	}
	// The TPFTL override's explicit cache budget is a whole-device number;
	// split it like the implicit budget so ablation variants shard fairly.
	tpftlOf := func(s int) *core.Config {
		if o.TPFTL == nil {
			return nil
		}
		cfg := *o.TPFTL
		if cfg.CacheBytes > 0 && o.Shards > 1 {
			cfg.CacheBytes /= int64(o.Shards)
			if cfg.CacheBytes < ftl.EntryBytesRAM {
				cfg.CacheBytes = ftl.EntryBytesRAM
			}
		}
		return &cfg
	}

	devs := make([]*ftl.Device, o.Shards)
	trs := make([]ftl.Translator, o.Shards)
	for s := range devs {
		tr, err := NewTranslator(o.Scheme, cfgs[s].CacheBytes, cfgs[s].LogicalPages(), tpftlOf(s))
		if err != nil {
			return nil, err
		}
		dev, err := ftl.NewDevice(cfgs[s], tr)
		if err != nil {
			return nil, err
		}
		if err := dev.Format(); err != nil {
			return nil, err
		}
		devs[s], trs[s] = dev, tr
	}

	reqs := o.Trace
	if reqs == nil && o.TraceStream == nil {
		reqs, err = workload.Generate(profile, o.Requests, o.Seed)
		if err != nil {
			return nil, err
		}
	}
	stats := trace.Summarize(reqs)

	if o.Precondition > 0 {
		// Age each shard over its own image of the workload footprint: the
		// striping is chunk-interleaved, so a footprint prefix of the
		// global space maps to a prefix of every shard's local space.
		footBytes := profile.FootprintBytes()
		if o.Trace != nil && stats.MaxEnd > 0 && stats.MaxEnd < footBytes {
			footBytes = stats.MaxEnd
		}
		if o.TraceStream != nil {
			if me := streamMaxEnd(o.TraceStream); me > 0 && me < footBytes {
				footBytes = me
			}
		}
		footPages := footBytes / int64(devCfg.PageSize)
		for s, dev := range devs {
			image := lay.ImagePages(s, footPages)
			writes := int(o.Precondition * float64(image))
			if err := dev.PreconditionRange(writes, image, o.Seed+1+int64(s)); err != nil {
				return nil, err
			}
			dev.ResetMetrics()
		}
	}
	for s, tr := range trs {
		if w, ok := tr.(ftl.Warmer); ok {
			w.Warm(devs[s].Truth)
		}
	}

	h, err := host.New(lay, devs, host.Options{QueueDepth: o.QueueDepth, OpenLoop: o.OpenLoop})
	if err != nil {
		return nil, err
	}
	if o.Telemetry != nil {
		// One cell per shard; warm-up and the measured phase both publish
		// (the warm-up reset folds into each cell's monotonic base).
		h.SetLive(o.Telemetry.StartRun(live.RunInfo{
			Scheme:        string(o.Scheme),
			Workload:      profile.Name,
			Shards:        o.Shards,
			TotalRequests: expectedRequests(o, reqs),
		}))
	}
	replay := host.ReplayOptions{Clients: o.Clients, Batch: o.StreamBatch}

	// A streamed source is wrapped so trace statistics accumulate as the
	// router (a single goroutine) pulls batches through it; the per-shard
	// service order — and so every simulated metric and the digest — is
	// identical to an eager Replay of the same requests.
	var acc trace.StatsAccum
	var sit trace.Iterator
	if o.TraceStream != nil {
		sit = &statsIter{it: o.TraceStream, acc: &acc}
	}

	warm := o.ResetAfterWarmup
	if warm > 0 {
		var err error
		if sit != nil {
			_, err = h.ReplayStream(trace.Limit(sit, int64(warm)), replay)
		} else {
			if warm > len(reqs) {
				warm = len(reqs)
			}
			_, err = h.Replay(reqs[:warm], replay)
			reqs = reqs[warm:]
		}
		if err != nil {
			return nil, fmt.Errorf("sim: %s/%s warm-up: %w", o.Scheme, profile.Name, err)
		}
		for _, dev := range devs {
			dev.ResetMetrics()
		}
	}

	var out *host.Outcome
	if sit != nil {
		out, err = h.ReplayStream(sit, replay)
	} else {
		out, err = h.Replay(reqs, replay)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: %s/%s: %w", o.Scheme, profile.Name, err)
	}
	if o.TraceStream != nil {
		stats = acc.Stats()
	}

	res := &Result{
		Scheme:     o.Scheme,
		Workload:   profile.Name,
		CacheBytes: cacheBytes,
		M:          out.M,
		TraceStats: stats,
		Digest:     out.Digest,
		Shards:     make([]ShardRun, len(out.Shards)),
	}
	for i, sr := range out.Shards {
		res.Shards[i] = ShardRun{Shard: sr.Shard, M: sr.M, EventHash: sr.EventHash, FS: sr.FS}
	}
	if t, ok := trs[0].(*core.FTL); ok {
		res.Variant = t.Variant()
	}

	for s, dev := range devs {
		if err := dev.CheckConsistency(dirtySetOf(trs[s])); err != nil {
			return nil, fmt.Errorf("sim: %s/%s shard %d post-run consistency: %w", o.Scheme, profile.Name, s, err)
		}
	}
	return res, nil
}

// statsIter passes batches through from a streamed source while folding each
// request into a StatsAccum. Only the replay router (one goroutine) calls
// Next, so the accumulator needs no synchronization.
type statsIter struct {
	it  trace.Iterator
	acc *trace.StatsAccum
}

func (s *statsIter) Next(batch []trace.Request) (int, error) {
	n, err := s.it.Next(batch)
	for i := 0; i < n; i++ {
		s.acc.Add(batch[i])
	}
	return n, err
}
