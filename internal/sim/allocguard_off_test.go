//go:build race || ftlsan

package sim

// See allocguard_on_test.go.
const allocGuardsEnabled = false
