package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// ExpConfig scales the paper-evaluation experiments. The zero value is
// filled by Defaults.
type ExpConfig struct {
	// Requests per run (the paper's traces contain millions of page
	// accesses; the default regenerates the shapes with fewer).
	Requests int
	// MSRScale rescales the 16 GB MSR address spaces (0 keeps 16 GB; the
	// default shrinks them so a full sweep runs in minutes). The cache
	// budget follows the paper's convention at the scaled size, so the
	// cache:table ratio (1/128) is preserved.
	MSRScale int64
	// Seed for workload generation.
	Seed int64
	// Warmup requests served before measuring (cold-cache transient).
	Warmup int
	// Precondition passes of random whole-device rewrites before
	// measuring (GC steady state); negative disables.
	Precondition float64
	// AllSchemes adds the related-work schemes (CDFTL, ZFTL) to the
	// comparison sweep beyond the paper's figure set.
	AllSchemes bool
}

// Defaults fills unset fields.
func (e ExpConfig) Defaults() ExpConfig {
	if e.Requests == 0 {
		e.Requests = 300_000
	}
	if e.MSRScale == 0 {
		e.MSRScale = 2 << 30
	}
	if e.Seed == 0 {
		e.Seed = 42
	}
	if e.Warmup == 0 {
		e.Warmup = e.Requests / 10
	}
	if e.Precondition == 0 {
		e.Precondition = 1
	}
	if e.Precondition < 0 {
		e.Precondition = 0
	}
	return e
}

// profiles returns the four paper workloads with MSR scaling applied.
func (e ExpConfig) profiles() []workload.Profile {
	ps := workload.DefaultProfiles()
	for i := range ps {
		if ps[i].AddressSpace > e.MSRScale {
			ps[i] = ps[i].Scale(e.MSRScale)
		}
	}
	return ps
}

// ComparisonCell is one (workload, scheme) measurement set, covering
// Figs. 6a–f and 7a plus Table 2.
type ComparisonCell struct {
	Workload string
	Scheme   Scheme
	Prd      float64       // Fig. 6a
	Hr       float64       // Fig. 6b
	TReads   int64         // Fig. 6c (normalize to DFTL)
	TWrites  int64         // Fig. 6d (normalize to DFTL)
	Resp     time.Duration // Fig. 6e (normalize to DFTL)
	WA       float64       // Fig. 6f
	Erases   int64         // Fig. 7a (normalize to DFTL)
}

// RunComparison reproduces the paper's main comparison: the four schemes
// over the four workloads (Figs. 6 and 7a; Table 2 derives from the DFTL
// and Optimal columns).
func (e ExpConfig) RunComparison() ([]ComparisonCell, error) {
	e = e.Defaults()
	schemes := Schemes()
	if e.AllSchemes {
		schemes = []Scheme{SchemeDFTL, SchemeTPFTL, SchemeSFTL, SchemeCDFTL, SchemeZFTL, SchemeOptimal}
	}
	var out []ComparisonCell
	for _, p := range e.profiles() {
		for _, s := range schemes {
			r, err := Run(Options{
				Scheme:           s,
				Profile:          p,
				Requests:         e.Requests,
				Seed:             e.Seed,
				ResetAfterWarmup: e.Warmup, Precondition: e.Precondition,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, ComparisonCell{
				Workload: p.Name,
				Scheme:   s,
				Prd:      r.M.Prd(),
				Hr:       r.M.Hr(),
				TReads:   r.M.TransReads(),
				TWrites:  r.M.TransWrites(),
				Resp:     r.M.AvgResponse(),
				WA:       r.M.WriteAmplification(),
				Erases:   r.M.FlashErases,
			})
		}
	}
	return out, nil
}

// Table2Row is one workload's deviation of DFTL from the optimal FTL:
// Performance = 1 − resp(Optimal)/resp(DFTL), Erasure = 1 − erases(Optimal)/
// erases(DFTL).
type Table2Row struct {
	Workload    string
	Performance float64
	Erasure     float64
}

// Table2 derives the paper's Table 2 from comparison cells.
func Table2(cells []ComparisonCell) []Table2Row {
	type pair struct{ dftl, opt *ComparisonCell }
	byWorkload := map[string]*pair{}
	var order []string
	for i := range cells {
		c := &cells[i]
		p := byWorkload[c.Workload]
		if p == nil {
			p = &pair{}
			byWorkload[c.Workload] = p
			order = append(order, c.Workload)
		}
		switch c.Scheme {
		case SchemeDFTL:
			p.dftl = c
		case SchemeOptimal:
			p.opt = c
		}
	}
	var out []Table2Row
	for _, w := range order {
		p := byWorkload[w]
		if p.dftl == nil || p.opt == nil {
			continue
		}
		row := Table2Row{Workload: w}
		if p.dftl.Resp > 0 {
			row.Performance = 1 - float64(p.opt.Resp)/float64(p.dftl.Resp)
		}
		if p.dftl.Erases > 0 {
			row.Erasure = 1 - float64(p.opt.Erases)/float64(p.dftl.Erases)
		}
		out = append(out, row)
	}
	return out
}

// AblationCell is one TPFTL configuration's measurements on Financial1
// (Figs. 7b, 7c, 8a, 8b). DFTL is included as the external baseline, as in
// the paper's figures.
type AblationCell struct {
	Variant string // "DFTL", "–", "b", "c", "bc", "r", "s", "rs", "rsbc"
	Prd     float64
	Hr      float64
	Resp    time.Duration
	WA      float64
}

// AblationVariants returns the paper's eight TPFTL configurations in figure
// order.
func AblationVariants(cacheBytes int64) []core.Config {
	base := func() core.Config {
		return core.Config{CacheBytes: cacheBytes, CompressEntries: true}
	}
	mk := func(mut func(*core.Config)) core.Config {
		c := base()
		mut(&c)
		return c
	}
	return []core.Config{
		base(), // "–"
		mk(func(c *core.Config) { c.BatchUpdate = true }),
		mk(func(c *core.Config) { c.CleanFirst = true }),
		mk(func(c *core.Config) { c.BatchUpdate = true; c.CleanFirst = true }),
		mk(func(c *core.Config) { c.RequestPrefetch = true }),
		mk(func(c *core.Config) { c.SelectivePrefetch = true }),
		mk(func(c *core.Config) { c.RequestPrefetch = true; c.SelectivePrefetch = true }),
		mk(func(c *core.Config) {
			c.RequestPrefetch = true
			c.SelectivePrefetch = true
			c.BatchUpdate = true
			c.CleanFirst = true
		}),
	}
}

// RunAblation reproduces Figs. 7b/7c/8a/8b: the technique ablation on
// Financial1.
func (e ExpConfig) RunAblation() ([]AblationCell, error) {
	e = e.Defaults()
	p := workload.Financial1()
	var out []AblationCell

	dftlRes, err := Run(Options{
		Scheme: SchemeDFTL, Profile: p, Requests: e.Requests,
		Seed: e.Seed, ResetAfterWarmup: e.Warmup, Precondition: e.Precondition,
	})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationCell{
		Variant: "DFTL",
		Prd:     dftlRes.M.Prd(), Hr: dftlRes.M.Hr(),
		Resp: dftlRes.M.AvgResponse(), WA: dftlRes.M.WriteAmplification(),
	})

	for _, cfg := range AblationVariants(0) {
		cfg := cfg
		r, err := Run(Options{
			Scheme: SchemeTPFTL, TPFTL: &cfg, Profile: p,
			Requests: e.Requests, Seed: e.Seed, ResetAfterWarmup: e.Warmup, Precondition: e.Precondition,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationCell{
			Variant: r.Variant,
			Prd:     r.M.Prd(), Hr: r.M.Hr(),
			Resp: r.M.AvgResponse(), WA: r.M.WriteAmplification(),
		})
	}
	return out, nil
}

// SweepCell is one (workload, cache-fraction) TPFTL measurement
// (Figs. 8c, 9a, 9b, 9c).
type SweepCell struct {
	Workload string
	Fraction float64
	Prd      float64
	Hr       float64
	Resp     time.Duration
	WA       float64
}

// SweepFractions returns the paper's cache-size axis: 1/128 (the default
// budget) up to 1 (the whole table cached).
func SweepFractions() []float64 {
	return []float64{1.0 / 128, 1.0 / 64, 1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1}
}

// RunCacheSweep reproduces Figs. 8c and 9: TPFTL across cache sizes.
func (e ExpConfig) RunCacheSweep() ([]SweepCell, error) {
	e = e.Defaults()
	var out []SweepCell
	for _, p := range e.profiles() {
		for _, frac := range SweepFractions() {
			r, err := Run(Options{
				Scheme: SchemeTPFTL, Profile: p,
				Requests: e.Requests, Seed: e.Seed,
				CacheFraction: frac, ResetAfterWarmup: e.Warmup, Precondition: e.Precondition,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, SweepCell{
				Workload: p.Name,
				Fraction: frac,
				Prd:      r.M.Prd(),
				Hr:       r.M.Hr(),
				Resp:     r.M.AvgResponse(),
				WA:       r.M.WriteAmplification(),
			})
		}
	}
	return out, nil
}

// UtilizationCell is one (workload, fraction) cache-space-utilization
// improvement of TPFTL over DFTL (Fig. 10): the relative increase in the
// mean number of cached mapping entries under the same budget.
type UtilizationCell struct {
	Workload    string
	Fraction    float64
	Improvement float64
}

// RunSpaceUtilization reproduces Fig. 10.
func (e ExpConfig) RunSpaceUtilization() ([]UtilizationCell, error) {
	e = e.Defaults()
	sampleEvery := int64(10_000)
	meanEntries := func(samples []Sample) float64 {
		if len(samples) == 0 {
			return 0
		}
		var sum float64
		for _, s := range samples {
			sum += float64(s.Entries)
		}
		return sum / float64(len(samples))
	}
	var out []UtilizationCell
	for _, p := range e.profiles() {
		for _, frac := range SweepFractions()[:6] { // beyond 1/4 both cache everything
			var means [2]float64
			for i, s := range []Scheme{SchemeTPFTL, SchemeDFTL} {
				r, err := Run(Options{
					Scheme: s, Profile: p,
					Requests: e.Requests, Seed: e.Seed,
					CacheFraction: frac, SampleEvery: sampleEvery,
					Precondition: e.Precondition,
				})
				if err != nil {
					return nil, err
				}
				means[i] = meanEntries(r.Samples)
			}
			cell := UtilizationCell{Workload: p.Name, Fraction: frac}
			if means[1] > 0 {
				cell.Improvement = means[0]/means[1] - 1
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// DistributionResult holds the Fig. 1 measurements for one workload: the
// per-sample average entries per cached translation page, and the CDF of
// dirty entries per cached page.
type DistributionResult struct {
	Workload string
	// AvgEntriesPerTP is the time series of Fig. 1a.
	AvgEntriesPerTP []float64
	// MeanDirtyPerTP is the dashed-line average of Fig. 1b.
	MeanDirtyPerTP float64
	// DirtyCDF[k] is the fraction of cached translation pages with ≤ k
	// dirty entries, aggregated over all samples (Fig. 1b).
	DirtyCDF []float64
}

// RunCacheDistribution reproduces Fig. 1 (DFTL cache contents sampled every
// 10,000 user page accesses).
func (e ExpConfig) RunCacheDistribution() ([]DistributionResult, error) {
	e = e.Defaults()
	var out []DistributionResult
	for _, p := range e.profiles() {
		r, err := Run(Options{
			Scheme: SchemeDFTL, Profile: p,
			Requests: e.Requests, Seed: e.Seed,
			SampleEvery: 10_000, Precondition: e.Precondition,
		})
		if err != nil {
			return nil, err
		}
		res := DistributionResult{Workload: p.Name}
		hist := map[int]int{}
		totalPages, totalDirty := 0, 0
		for _, s := range r.Samples {
			if s.TPNodes > 0 {
				res.AvgEntriesPerTP = append(res.AvgEntriesPerTP,
					float64(s.Entries)/float64(s.TPNodes))
			}
			for d, n := range s.DirtyHist {
				hist[d] += n
				totalPages += n
				totalDirty += d * n
			}
		}
		if totalPages > 0 {
			res.MeanDirtyPerTP = float64(totalDirty) / float64(totalPages)
			maxD := 0
			for d := range hist {
				if d > maxD {
					maxD = d
				}
			}
			res.DirtyCDF = make([]float64, maxD+1)
			cum := 0
			for d := 0; d <= maxD; d++ {
				cum += hist[d]
				res.DirtyCDF[d] = float64(cum) / float64(totalPages)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// SpatialResult holds the Fig. 2b measurement: the number of cached
// translation pages in DFTL over time on Financial1.
type SpatialResult struct {
	Workload     string
	PageAccesses []int64
	TPNodes      []int
}

// RunSpatialLocality reproduces Fig. 2b.
func (e ExpConfig) RunSpatialLocality() (*SpatialResult, error) {
	e = e.Defaults()
	p := workload.Financial1()
	r, err := Run(Options{
		Scheme: SchemeDFTL, Profile: p,
		Requests: e.Requests, Seed: e.Seed,
		SampleEvery: 2_000, Precondition: e.Precondition,
	})
	if err != nil {
		return nil, err
	}
	res := &SpatialResult{Workload: p.Name}
	for _, s := range r.Samples {
		res.PageAccesses = append(res.PageAccesses, s.PageAccesses)
		res.TPNodes = append(res.TPNodes, s.TPNodes)
	}
	return res, nil
}

// NormalizeToDFTL returns value/baseline where baseline is the DFTL cell of
// the same workload; figure printers use it for Figs. 6c/6d/6e/7a.
func NormalizeToDFTL(cells []ComparisonCell, get func(ComparisonCell) float64) map[string]map[Scheme]float64 {
	base := map[string]float64{}
	for _, c := range cells {
		if c.Scheme == SchemeDFTL {
			base[c.Workload] = get(c)
		}
	}
	out := map[string]map[Scheme]float64{}
	for _, c := range cells {
		if out[c.Workload] == nil {
			out[c.Workload] = map[Scheme]float64{}
		}
		if b := base[c.Workload]; b > 0 {
			out[c.Workload][c.Scheme] = get(c) / b
		}
	}
	return out
}

// SchemesOf lists the distinct schemes in cells, in first-seen order.
func SchemesOf(cells []ComparisonCell) []Scheme {
	seen := map[Scheme]bool{}
	var out []Scheme
	for _, c := range cells {
		if !seen[c.Scheme] {
			seen[c.Scheme] = true
			out = append(out, c.Scheme)
		}
	}
	return out
}

// WorkloadsOf lists the distinct workloads in cells, in first-seen order.
func WorkloadsOf(cells []ComparisonCell) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cells {
		if !seen[c.Workload] {
			seen[c.Workload] = true
			out = append(out, c.Workload)
		}
	}
	return out
}

// FmtPct formats a ratio as a percentage.
func FmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// SortSweep orders sweep cells by workload then fraction (stable output).
func SortSweep(cells []SweepCell) {
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Workload != cells[j].Workload {
			return cells[i].Workload < cells[j].Workload
		}
		return cells[i].Fraction < cells[j].Fraction
	})
}
