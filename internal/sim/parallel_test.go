package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// goldenOptions is the fixed serial-baseline run whose metrics were captured
// on the scalar-clock implementation this PR replaced. The parallel backend
// at 1 channel × 1 die × queue depth 1 must reproduce them bit-for-bit: a
// single die serializes every operation in issue order, so each request's
// span is the sum of its operation latencies — exactly the old model.
func goldenOptions(s Scheme) Options {
	return Options{
		Scheme:           s,
		Profile:          workload.Financial1().Scale(64 << 20),
		Requests:         8_000,
		Seed:             42,
		Precondition:     1,
		ResetAfterWarmup: 800,
	}
}

// serialGolden holds the scalar-clock capture for the two deterministic
// schemes. (S-FTL is excluded: it is nondeterministic run-to-run in the
// baseline too, so it has no stable golden value to hold.)
var serialGolden = map[Scheme]struct {
	requests                               int64
	serviceTime, responseTime, queueTime   time.Duration
	maxResponse, gcTime                    time.Duration
	flashReads, flashPrograms, flashErases int64
	lookups, hits                          int64
	transReadsAT, transWritesAT            int64
}{
	SchemeTPFTL: {7200, 6813500000, 18812150034, 11998650034, 18000000, 4775700000,
		26200, 27560, 431, 10537, 6112, 5472, 1047},
	SchemeDFTL: {7200, 8314500000, 22684046065, 14369546065, 18975000, 5217825000,
		34456, 33358, 521, 10537, 3654, 12363, 5480},
}

// TestSerialGoldenCompatibility pins the compatibility guarantee of the
// parallel backend: the default geometry and queue depth reproduce the
// pre-scheduler metrics exactly, timing included.
func TestSerialGoldenCompatibility(t *testing.T) {
	for s, want := range serialGolden {
		s, want := s, want
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			r, err := Run(goldenOptions(s))
			if err != nil {
				t.Fatal(err)
			}
			m := r.M
			got := [13]int64{m.Requests, int64(m.ServiceTime), int64(m.ResponseTime),
				int64(m.QueueTime), int64(m.MaxResponse), int64(m.GCTime),
				m.FlashReads, m.FlashPrograms, m.FlashErases, m.Lookups, m.Hits,
				m.TransReadsAT, m.TransWritesAT}
			exp := [13]int64{want.requests, int64(want.serviceTime), int64(want.responseTime),
				int64(want.queueTime), int64(want.maxResponse), int64(want.gcTime),
				want.flashReads, want.flashPrograms, want.flashErases, want.lookups, want.hits,
				want.transReadsAT, want.transWritesAT}
			if got != exp {
				t.Fatalf("serial baseline diverged from the scalar-clock golden\n got %v\nwant %v", got, exp)
			}
			if m.Channels != ftl.DefaultChannels || m.DiesPerChannel != ftl.DefaultDies {
				t.Fatalf("default geometry = %d×%d", m.Channels, m.DiesPerChannel)
			}

			// The 1-shard host path must reproduce the same goldens
			// bit-for-bit — full metrics, not just the 13-tuple — no
			// matter how many client goroutines feed it.
			for _, clients := range []int{1, 4} {
				opt := goldenOptions(s)
				opt.Shards = 1
				opt.Clients = clients
				sr, err := Run(opt)
				if err != nil {
					t.Fatalf("shards=1 clients=%d: %v", clients, err)
				}
				if !reflect.DeepEqual(sr.M, m) {
					t.Fatalf("shards=1 clients=%d metrics diverge from the serial path:\n got  %+v\n want %+v",
						clients, sr.M, m)
				}
				if len(sr.Shards) != 1 || sr.Digest == 0 {
					t.Fatalf("shards=1 clients=%d: missing per-shard results (%d shards, digest %#x)",
						clients, len(sr.Shards), sr.Digest)
				}
				if sr.Digest != hostDigest(sr) {
					t.Fatalf("shards=1 clients=%d: digest does not fold the shard hashes", clients)
				}
			}
		})
	}
}

// hostDigest recomputes a result's merged digest from its per-shard event
// hashes.
func hostDigest(r *Result) uint64 {
	hashes := make([]uint64, len(r.Shards))
	for i, s := range r.Shards {
		hashes[i] = s.EventHash
	}
	return host.Digest(hashes)
}

// parallelRun executes one deterministic parallel run against a directly
// built device and returns its metrics and the scheduler's event hash.
func parallelRun(t *testing.T, s Scheme, qd int) (ftl.Metrics, uint64) {
	t.Helper()
	space := int64(32 << 20)
	cfg := ftl.DefaultConfig(space)
	cfg.CacheBytes = ftl.DefaultCacheBytes(space)
	cfg.Channels = 4
	cfg.Dies = 2
	tr, err := NewTranslator(s, cfg.CacheBytes, cfg.LogicalPages(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Format(); err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Financial1().Scale(space), 4_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	dev.Chip().SetFaultPlan(&flash.FaultPlan{
		Seed:        17,
		ReadProb:    0.001,
		ProgramProb: 0.001,
	})
	if _, err := (ssd.Frontend{QueueDepth: qd}).Run(dev, reqs); err != nil {
		t.Fatal(err)
	}
	return dev.Metrics(), dev.Scheduler().EventHash()
}

// TestSchedulerDeterminism runs the same seeded workload with the same fault
// plan twice on a 4×2 device at queue depth 8 and requires the two runs to
// have scheduled the identical event sequence — not merely to agree on
// summary metrics. EventHash folds every (die, start, end) triple in order,
// so any divergence in op placement or timing flips it.
func TestSchedulerDeterminism(t *testing.T) {
	m1, h1 := parallelRun(t, SchemeTPFTL, 8)
	m2, h2 := parallelRun(t, SchemeTPFTL, 8)
	if h1 != h2 {
		t.Fatalf("event hashes diverged across identical runs: %x vs %x", h1, h2)
	}
	if m1 != m2 {
		t.Fatalf("metrics diverged across identical runs\n m1 %+v\n m2 %+v", m1, m2)
	}
	if m1.InjectedFaults == 0 {
		t.Fatal("no faults injected; the determinism property is untested under faults")
	}
}

// TestSFTLDeterminism pins the S-FTL nondeterminism fix: its dirty-buffer
// flush victim, writeback update order, and GC flush order all used to leak
// Go map iteration order into the WriteTP sequence, so two identical runs
// scheduled different event sequences (flagged as pre-existing at the seed in
// CHANGES.md). After sorting those paths, identical seeded runs — faults
// included — must produce identical event hashes, same as the other schemes.
func TestSFTLDeterminism(t *testing.T) {
	m1, h1 := parallelRun(t, SchemeSFTL, 8)
	m2, h2 := parallelRun(t, SchemeSFTL, 8)
	if h1 != h2 {
		t.Fatalf("S-FTL event hashes diverged across identical runs: %x vs %x", h1, h2)
	}
	if m1 != m2 {
		t.Fatalf("S-FTL metrics diverged across identical runs\n m1 %+v\n m2 %+v", m1, m2)
	}
	if m1.InjectedFaults == 0 {
		t.Fatal("no faults injected; the determinism property is untested under faults")
	}
}

// randomReadTrace builds back-to-back 4 KB random reads (arrival 0) over the
// first footprint bytes of the device: a device-bound workload where
// throughput is limited only by flash occupancy.
func randomReadTrace(n int, footprint int64, seed int64) []trace.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]trace.Request, n)
	pages := footprint / 4096
	for i := range reqs {
		reqs[i] = trace.Request{Offset: rng.Int63n(pages) * 4096, Length: 4096}
	}
	return reqs
}

// speedupElapsed runs the random-read trace at queue depth qd on a device
// with the given channel count and returns the total simulated time.
func speedupElapsed(t *testing.T, channels, qd int) time.Duration {
	t.Helper()
	r, err := Run(Options{
		Scheme:       SchemeTPFTL,
		Profile:      workload.Financial1(),
		AddressSpace: 64 << 20,
		Trace:        randomReadTrace(3_000, 48<<20, 5),
		Precondition: 1, // map the footprint so reads hit flash
		QueueDepth:   qd,
		Channels:     channels,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.M.Elapsed <= 0 {
		t.Fatalf("no elapsed time recorded: %+v", r.M)
	}
	return r.M.Elapsed
}

// TestParallelSpeedup is the headline property of the backend: at queue
// depth 8, striping random reads across 4 channels must finish the same
// trace in at most half the simulated time of the 1-channel device.
func TestParallelSpeedup(t *testing.T) {
	serial := speedupElapsed(t, 1, 8)
	par := speedupElapsed(t, 4, 8)
	if par*2 > serial {
		t.Fatalf("4-channel QD8 elapsed %v vs 1-channel %v: speedup %.2fx < 2x",
			par, serial, float64(serial)/float64(par))
	}
	t.Logf("random-read speedup at QD8: 1ch %v -> 4ch %v (%.2fx)",
		serial, par, float64(serial)/float64(par))
}

// TestQueueDepthSweepSmoke is the bench-smoke sweep: on a 4-channel device a
// deeper queue must never make the same trace slower, and depth > 1 must
// beat depth 1 outright (there is exploitable parallelism).
func TestQueueDepthSweepSmoke(t *testing.T) {
	var prev time.Duration
	var qd1 time.Duration
	for _, qd := range []int{1, 2, 4, 8} {
		e := speedupElapsed(t, 4, qd)
		t.Logf("qd=%d elapsed=%v", qd, e)
		if qd == 1 {
			qd1 = e
		} else if e > prev {
			t.Fatalf("qd=%d elapsed %v exceeds qd/2 elapsed %v", qd, e, prev)
		}
		prev = e
	}
	if prev >= qd1 {
		t.Fatalf("qd=8 elapsed %v not better than qd=1 %v", prev, qd1)
	}
}
