// Package sim builds simulated SSDs, drives them with workloads and
// collects the measurements the TPFTL paper's evaluation reports. It is the
// layer underneath cmd/experiments, the examples and the benchmark harness.
package sim

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/ftl/cdftl"
	"repro/internal/ftl/dftl"
	"repro/internal/ftl/optimal"
	"repro/internal/ftl/sftl"
	"repro/internal/ftl/zftl"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scheme names an FTL policy.
type Scheme string

// The schemes of the paper's evaluation (§5.1) plus CDFTL (§2.2).
const (
	SchemeDFTL    Scheme = "DFTL"
	SchemeTPFTL   Scheme = "TPFTL"
	SchemeSFTL    Scheme = "S-FTL"
	SchemeCDFTL   Scheme = "CDFTL"
	SchemeZFTL    Scheme = "ZFTL"
	SchemeOptimal Scheme = "Optimal"
)

// Schemes returns the paper's comparison set in figure order.
func Schemes() []Scheme {
	return []Scheme{SchemeDFTL, SchemeTPFTL, SchemeSFTL, SchemeOptimal}
}

// Options configures one simulation run.
type Options struct {
	// Scheme selects the FTL policy.
	Scheme Scheme
	// TPFTL optionally overrides the TPFTL configuration (ablation
	// variants, hotness ordering, compression); its CacheBytes is filled
	// from the run's budget when zero. Ignored for other schemes.
	TPFTL *core.Config

	// Profile is the workload; AddressSpace (if non-zero) rescales it.
	Profile      workload.Profile
	AddressSpace int64
	// Requests is the number of generated requests.
	Requests int
	// Seed makes the run deterministic.
	Seed int64
	// Trace, if non-nil, is replayed instead of generating from Profile.
	Trace []trace.Request
	// TraceStream, if non-nil, is a streamed request source replayed
	// instead of Trace or a generated workload: requests are pulled in
	// StreamBatch-sized batches, so resident memory is independent of the
	// trace's length. The simulated results are bit-for-bit what an eager
	// replay of the same requests through Trace would produce. The iterator
	// is consumed once (warm-up prefix first when ResetAfterWarmup is set);
	// mutually exclusive with Trace.
	TraceStream trace.Iterator
	// StreamBatch is the number of requests pulled from TraceStream per
	// batch (default DefaultStreamBatch). A wall-clock/memory knob only:
	// simulated results are independent of it.
	StreamBatch int

	// CacheBytes is the mapping-cache budget. Zero selects the paper's
	// convention (block-level table size) unless CacheFraction is set.
	CacheBytes int64
	// CacheFraction, if non-zero, sets the budget to this fraction of the
	// full page-level mapping table (8 B per entry), the Fig. 8c/9/10
	// x-axis. 1/128 equals the default convention.
	CacheFraction float64

	// PagesPerBlock overrides the flash geometry (default 64).
	PagesPerBlock int
	// Channels and Dies select the parallel backend's geometry (defaults
	// ftl.DefaultChannels × ftl.DefaultDies — the paper's serial chip).
	Channels int
	Dies     int
	// TransPlacement places translation blocks on a multi-channel device:
	// striped across all dies (default) or pinned to channel 0.
	TransPlacement ftl.TPPlacement
	// Shards, when >= 1, routes the run through the sharded multi-queue
	// host frontend (internal/host): the LPN space is striped across this
	// many independent FTL instances — per-shard translator, mapping
	// cache, GC and scheduler clock — served by concurrent client
	// goroutines. 0 keeps the legacy single-device path; 1 routes through
	// the host but reproduces the serial results bit-for-bit.
	Shards int
	// Clients is the number of concurrent submitter goroutines feeding
	// the sharded host (minimum, and default, one per shard). The client
	// topology is a wall-clock knob only: simulated results are
	// bit-for-bit independent of it. Ignored without Shards.
	Clients int
	// QueueDepth bounds in-flight requests (closed loop; per shard when
	// sharded). 0 selects 1, the scalar-clock compatibility default,
	// unless OpenLoop is set.
	QueueDepth int
	// OpenLoop admits every request at its trace arrival time instead of
	// waiting for a queue slot; QueueDepth is ignored.
	OpenLoop bool
	// GCPolicy selects the device's GC victim policy (default greedy).
	GCPolicy ftl.GCPolicy
	// WearLevelThreshold enables static wear leveling (see ftl.Config).
	WearLevelThreshold int
	// Precondition ages the device before measuring: this many passes of
	// uniformly random whole-device rewrites bring garbage collection to
	// its organic steady state (a freshly formatted device starts with
	// every block fully valid, which inflates early GC cost far beyond
	// what a long-running SSD shows). 0 disables.
	Precondition float64
	// SampleEvery enables cache sampling every N page accesses (Fig. 1/2).
	SampleEvery int64
	// ResetAfterWarmup, if > 0, serves this many leading requests as
	// warm-up and zeroes the metrics before the measured phase.
	ResetAfterWarmup int

	// Faults, if non-nil, is armed on the chip after formatting,
	// preconditioning and warm-up, so fault indexes land in the measured
	// workload. Transient faults exercise the device's bounded-retry path
	// (Metrics.InjectedFaults / FaultRetries); a power-cut plan makes the
	// run fail with flash.ErrPowerCut — use RunCrash to verify recovery
	// instead.
	Faults *flash.FaultPlan

	// MetricsOut, if non-nil, receives a JSONL metrics snapshot (counter
	// deltas + per-phase latency quantiles) every MetricsInterval measured
	// requests (default 1000). TraceOut, if non-nil, receives the run's
	// flash-operation span trace in Chrome trace_event JSON (open in
	// Perfetto). Both are armed after warm-up, cover only the measured
	// phase, and leave every simulated metric bit-for-bit unchanged.
	MetricsOut      io.Writer
	MetricsInterval int
	TraceOut        io.Writer

	// Telemetry, if non-nil, is the live scrape plane: the run installs one
	// cell per shard (StartRun) and each shard publishes immutable metric
	// epochs, frontend queue stats and flight-recorder entries into its cell
	// as it serves — readable concurrently through the plane's HTTP/expvar
	// surfaces while the run is in flight. Publication cadence is keyed to
	// served-request counts, so every simulated metric, EventHash and Digest
	// is bit-for-bit identical with the plane attached or not. Works on the
	// legacy path and with Shards.
	Telemetry *live.Plane
}

// Sample is one cache-distribution observation (Fig. 1/2 instrumentation).
type Sample struct {
	PageAccesses int64
	Entries      int
	TPNodes      int
	DirtyEntries int
	// DirtyHist counts cached translation pages by their number of dirty
	// entries.
	DirtyHist map[int]int
}

// Result is the outcome of one run.
type Result struct {
	Scheme     Scheme
	Variant    string // TPFTL ablation monogram, "" otherwise
	Workload   string
	CacheBytes int64
	M          ftl.Metrics
	Samples    []Sample
	TraceStats trace.Stats
	// Shards holds the per-shard results of a sharded run
	// (Options.Shards >= 1) in shard order; nil on the legacy path.
	Shards []ShardRun
	// Digest folds the per-shard event hashes into one value that is
	// insensitive to how shard executions interleaved in wall time (see
	// host.Digest); 0 on the legacy path.
	Digest uint64
}

// FullTableBytes returns the size of the entire page-level mapping table for
// an address space (8 B per entry), the unit of Options.CacheFraction.
func FullTableBytes(addressSpace int64) int64 {
	return addressSpace / ftl.DefaultPageBytes * ftl.EntryBytesRAM
}

// DefaultStreamBatch is the per-pull batch size of a TraceStream replay when
// Options.StreamBatch is zero.
const DefaultStreamBatch = 4096

// streamMaxEnd returns the address-space high-water hint a streamed source
// carries (trace.Stream exposes its binary header's MaxEnd), 0 if unknown.
// It lets a streamed run size its preconditioning footprint without a
// pre-pass over the trace.
func streamMaxEnd(it trace.Iterator) int64 {
	type maxEnder interface{ MaxEnd() int64 }
	if m, ok := it.(maxEnder); ok {
		return m.MaxEnd()
	}
	return 0
}

// NewTranslator constructs the translator for a scheme.
func NewTranslator(s Scheme, cacheBytes int64, logicalPages int64, tpftlCfg *core.Config) (ftl.Translator, error) {
	switch s {
	case SchemeDFTL:
		return dftl.New(dftl.Config{CacheBytes: cacheBytes}), nil
	case SchemeSFTL:
		return sftl.New(sftl.Config{CacheBytes: cacheBytes}), nil
	case SchemeCDFTL:
		return cdftl.New(cdftl.Config{CacheBytes: cacheBytes}), nil
	case SchemeZFTL:
		return zftl.New(zftl.Config{CacheBytes: cacheBytes}), nil
	case SchemeOptimal:
		return optimal.New(logicalPages), nil
	case SchemeTPFTL:
		cfg := core.DefaultConfig(cacheBytes)
		if tpftlCfg != nil {
			cfg = *tpftlCfg
			if cfg.CacheBytes == 0 {
				cfg.CacheBytes = cacheBytes
			}
		}
		return core.New(cfg), nil
	default:
		return nil, fmt.Errorf("sim: unknown scheme %q", s)
	}
}

// Run executes one simulation.
func Run(o Options) (*Result, error) {
	space := o.Profile.AddressSpace
	if o.AddressSpace != 0 {
		space = o.AddressSpace
	}
	if space <= 0 {
		return nil, fmt.Errorf("sim: no address space configured")
	}
	profile := o.Profile.Scale(space)

	cacheBytes := o.CacheBytes
	if o.CacheFraction > 0 {
		cacheBytes = int64(float64(FullTableBytes(space)) * o.CacheFraction)
	}
	if cacheBytes == 0 {
		cacheBytes = ftl.DefaultCacheBytes(space)
	}

	devCfg := ftl.DefaultConfig(space)
	devCfg.CacheBytes = cacheBytes
	devCfg.GCPolicy = o.GCPolicy
	devCfg.WearLevelThreshold = o.WearLevelThreshold
	if o.PagesPerBlock != 0 {
		devCfg.PagesPerBlock = o.PagesPerBlock
	}
	devCfg.Channels = o.Channels
	devCfg.Dies = o.Dies
	devCfg.TransPlacement = o.TransPlacement

	if o.Trace != nil && o.TraceStream != nil {
		return nil, fmt.Errorf("sim: Trace and TraceStream are mutually exclusive")
	}

	if o.Shards > 0 {
		return runSharded(o, devCfg, profile, cacheBytes)
	}

	tr, err := NewTranslator(o.Scheme, cacheBytes, devCfg.LogicalPages(), o.TPFTL)
	if err != nil {
		return nil, err
	}
	dev, err := ftl.NewDevice(devCfg, tr)
	if err != nil {
		return nil, err
	}
	if err := dev.Format(); err != nil {
		return nil, err
	}

	reqs := o.Trace
	if reqs == nil && o.TraceStream == nil {
		reqs, err = workload.Generate(profile, o.Requests, o.Seed)
		if err != nil {
			return nil, err
		}
	}
	stats := trace.Summarize(reqs)

	var liveCell *live.Cell
	if o.Telemetry != nil {
		cells := o.Telemetry.StartRun(live.RunInfo{
			Scheme:        string(o.Scheme),
			Workload:      profile.Name,
			Shards:        1,
			TotalRequests: expectedRequests(o, reqs),
		})
		liveCell = cells[0]
		dev.SetLive(liveCell)
	}

	if o.Precondition > 0 {
		// Age only the workload's footprint: the cold remainder stays in
		// its pristine fully-valid blocks, exactly where a long-running
		// device's GC would have consolidated it. For replayed traces the
		// footprint is taken from the trace's own address high-water mark
		// (a streamed source's header hint, when it carries one).
		footBytes := profile.FootprintBytes()
		if o.Trace != nil && stats.MaxEnd > 0 && stats.MaxEnd < footBytes {
			footBytes = stats.MaxEnd
		}
		if o.TraceStream != nil {
			if me := streamMaxEnd(o.TraceStream); me > 0 && me < footBytes {
				footBytes = me
			}
		}
		footPages := footBytes / int64(devCfg.PageSize)
		writes := int(o.Precondition * float64(footPages))
		if err := dev.PreconditionRange(writes, footPages, o.Seed+1); err != nil {
			return nil, err
		}
		dev.ResetMetrics()
	}
	// Warm after preconditioning: the optimal FTL snapshots the live
	// mapping (it holds the authoritative table in RAM and never reads
	// the persisted translation pages).
	if w, ok := tr.(ftl.Warmer); ok {
		w.Warm(dev.Truth)
	}

	res := &Result{
		Scheme:     o.Scheme,
		Workload:   profile.Name,
		CacheBytes: cacheBytes,
		TraceStats: stats,
	}
	if t, ok := tr.(*core.FTL); ok {
		res.Variant = t.Variant()
	}

	if o.SampleEvery > 0 {
		insp, ok := tr.(ftl.Inspector)
		if ok {
			dev.SampleEvery = o.SampleEvery
			dev.OnSample = func(n int64) {
				s := insp.Snapshot()
				sample := Sample{
					PageAccesses: n,
					Entries:      s.Entries,
					TPNodes:      s.TPNodes,
					DirtyEntries: s.DirtyEntries,
					DirtyHist:    map[int]int{},
				}
				for _, d := range s.DirtyPerPage {
					sample.DirtyHist[d]++
				}
				res.Samples = append(res.Samples, sample)
			}
		}
	}

	// Admission policy: the legacy scalar path (Device.Run, queue depth 1)
	// stays the default so baseline metrics are reproduced bit-for-bit; an
	// explicit deeper queue or open-loop arrival replay routes through the
	// ssd.Frontend, which admits each request against the completion heap.
	qd := o.QueueDepth
	if qd <= 0 {
		qd = 1
	}
	useFrontend := o.OpenLoop || qd > 1
	feDepth := qd
	if o.OpenLoop {
		feDepth = 0
	}
	runReqs := func(rs []trace.Request) (ssd.FrontendStats, error) {
		if !useFrontend {
			_, err := dev.Run(rs)
			return ssd.FrontendStats{}, err
		}
		fe := ssd.Frontend{QueueDepth: feDepth, Live: liveCell}
		return fe.Run(dev, rs)
	}
	// serveStream drains one phase (warm-up prefix or measured remainder) of
	// the streamed source in StreamBatch pulls. The serial path calls
	// Device.Serve per request — exactly what Device.Run does over a slice —
	// and a queued phase gets a fresh ssd.Admitter, mirroring runReqs' fresh
	// Frontend per call, so streamed results are bit-for-bit the eager ones.
	var acc trace.StatsAccum
	var streamBuf []trace.Request
	serveStream := func(it trace.Iterator) (ssd.FrontendStats, error) {
		if streamBuf == nil {
			b := o.StreamBatch
			if b <= 0 {
				b = DefaultStreamBatch
			}
			streamBuf = make([]trace.Request, b)
		}
		var adm *ssd.Admitter
		if useFrontend {
			adm = ssd.NewAdmitter(feDepth)
			adm.SetLive(liveCell)
		}
		idx := 0
		for {
			n, err := it.Next(streamBuf)
			for i := 0; i < n; i++ {
				r := streamBuf[i]
				acc.Add(r)
				if useFrontend {
					if _, aerr := adm.Admit(dev, r); aerr != nil {
						return adm.Stats(), fmt.Errorf("ssd: request %d: %w", idx, aerr)
					}
				} else if _, serr := dev.Serve(r); serr != nil {
					return ssd.FrontendStats{}, fmt.Errorf("request %d: %w", idx, serr)
				}
				idx++
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				var st ssd.FrontendStats
				if adm != nil {
					st = adm.Stats()
				}
				return st, err
			}
		}
		if adm != nil {
			return adm.Stats(), nil
		}
		return ssd.FrontendStats{}, nil
	}

	warm := o.ResetAfterWarmup
	if warm > 0 {
		if o.TraceStream != nil {
			if _, err := serveStream(trace.Limit(o.TraceStream, int64(warm))); err != nil {
				return nil, fmt.Errorf("sim: %s/%s warm-up: %w", o.Scheme, profile.Name, err)
			}
		} else {
			if warm > len(reqs) {
				warm = len(reqs)
			}
			if _, err := runReqs(reqs[:warm]); err != nil {
				return nil, fmt.Errorf("sim: %s/%s warm-up: %w", o.Scheme, profile.Name, err)
			}
			reqs = reqs[warm:]
		}
		dev.ResetMetrics()
	}
	if o.Faults != nil {
		dev.Chip().SetFaultPlan(o.Faults)
	}
	// Arm the observability sinks only for the measured phase (after
	// warm-up's ResetMetrics), so exports describe what the result reports.
	if o.TraceOut != nil {
		dev.SetTracer(obs.NewTracer(o.TraceOut))
	}
	if o.MetricsOut != nil {
		interval := o.MetricsInterval
		if interval <= 0 {
			interval = 1000
		}
		dev.SetMetricsExport(o.MetricsOut, int64(interval))
	}
	var fst ssd.FrontendStats
	if o.TraceStream != nil {
		fst, err = serveStream(o.TraceStream)
	} else {
		fst, err = runReqs(reqs)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: %s/%s: %w", o.Scheme, profile.Name, err)
	}
	if o.TraceStream != nil {
		res.TraceStats = acc.Stats()
	}
	res.M = dev.Metrics()
	// Final epoch so a scrape after the run reads the exact end-of-run
	// totals rather than the last cadence boundary.
	dev.PublishLive()
	if err := dev.FinishObservability(); err != nil {
		return nil, fmt.Errorf("sim: %s/%s observability flush: %w", o.Scheme, profile.Name, err)
	}
	if useFrontend {
		res.M.MaxQueueDepth = fst.MaxDepth
		res.M.QueueDepthSum = fst.DepthSum
	}

	// Consistency is part of every run: a scheme that survives the trace
	// but corrupted its mapping must not produce results.
	if err := dev.CheckConsistency(dirtySetOf(tr)); err != nil {
		return nil, fmt.Errorf("sim: %s/%s post-run consistency: %w", o.Scheme, profile.Name, err)
	}
	return res, nil
}

// expectedRequests returns the run's total request count when known, 0
// otherwise — the live plane's ETA denominator. A streamed source carries a
// record count only when its header does (trace.Stream.Records).
func expectedRequests(o Options, eager []trace.Request) int64 {
	if o.TraceStream != nil {
		type recordser interface{ Records() int64 }
		if r, ok := o.TraceStream.(recordser); ok {
			return r.Records()
		}
		return 0
	}
	if eager != nil {
		return int64(len(eager))
	}
	return int64(o.Requests)
}

// dirtySetOf extracts the dirty cached entries from any scheme that exposes
// them; nil disables the truth/persist cross-check for schemes that do not.
func dirtySetOf(tr ftl.Translator) map[ftl.LPN]flash.PPN {
	type dirtier interface {
		DirtyCached() map[ftl.LPN]flash.PPN
	}
	if d, ok := tr.(dirtier); ok {
		return d.DirtyCached()
	}
	return nil
}
