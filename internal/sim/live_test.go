package sim

import (
	"bytes"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/obs/live"
	"repro/internal/trace"
	"repro/internal/workload"
)

// scrapeHard hammers every observer surface of the plane from several
// goroutines until stop closes: the Prometheus writer, the JSON writer, and
// the HTTP mux end to end. Run under -race this is the proof that scrapes
// never race the simulation.
func scrapeHard(t *testing.T, p *live.Plane, stop <-chan struct{}) *sync.WaitGroup {
	t.Helper()
	srv := httptest.NewServer(live.NewMux(p, nil))
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				live.WritePrometheus(io.Discard, p)
				live.WriteJSON(io.Discard, p)
				resp, err := srv.Client().Get(srv.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err = srv.Client().Get(srv.URL + "/snapshot")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		srv.Close()
	}()
	return &wg
}

// TestTelemetryScrapeEquivalence is the plane's core contract: a run scraped
// concurrently over every surface produces bit-for-bit the metrics, digest,
// per-shard event hashes and queue stats of the same run with telemetry off —
// across the serial path, the sharded host, and sharded streamed replay.
func TestTelemetryScrapeEquivalence(t *testing.T) {
	base := streamTestOptions(SchemeTPFTL)
	reqs, err := workload.Generate(base.Profile, base.Requests, base.Seed)
	if err != nil {
		t.Fatal(err)
	}
	path := writeBinaryTrace(t, reqs)

	modes := []struct {
		name string
		mod  func(*testing.T, *Options)
	}{
		{"serial-qd8", func(_ *testing.T, o *Options) {
			o.Trace = reqs
			o.QueueDepth = 8
			o.Channels = 4
			o.Dies = 2
		}},
		{"shards2", func(_ *testing.T, o *Options) {
			o.Trace = reqs
			o.Shards = 2
			o.Clients = 4
			o.QueueDepth = 8
		}},
		{"shards2-streamed", func(t *testing.T, o *Options) {
			s, err := trace.OpenBinary(path)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			o.TraceStream = s
			o.StreamBatch = 509
			o.Shards = 2
			o.Clients = 4
			o.QueueDepth = 8
		}},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			off := streamTestOptions(SchemeTPFTL)
			mode.mod(t, &off)
			want, err := Run(off)
			if err != nil {
				t.Fatalf("telemetry off: %v", err)
			}

			on := streamTestOptions(SchemeTPFTL)
			mode.mod(t, &on)
			plane := live.NewPlane(64, 32) // tight cadence: many epochs under scrape fire
			on.Telemetry = plane
			stop := make(chan struct{})
			wg := scrapeHard(t, plane, stop)
			got, err := Run(on)
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatalf("telemetry on: %v", err)
			}

			if !reflect.DeepEqual(got, want) {
				t.Errorf("telemetry-on result diverges from telemetry-off:\n got  %+v\n want %+v", got, want)
			}

			// The final exposition must validate and a re-scrape must be
			// monotonic over it (the run is done, so counters are frozen).
			var one, two bytes.Buffer
			if err := live.WritePrometheus(&one, plane); err != nil {
				t.Fatal(err)
			}
			prev, err := live.ValidatePrometheus(strings.NewReader(one.String()))
			if err != nil {
				t.Fatalf("final scrape invalid: %v", err)
			}
			if err := live.WritePrometheus(&two, plane); err != nil {
				t.Fatal(err)
			}
			cur, err := live.ValidatePrometheus(strings.NewReader(two.String()))
			if err != nil {
				t.Fatal(err)
			}
			if err := live.CheckCounterMonotonic(prev, cur); err != nil {
				t.Fatalf("post-run scrapes not monotonic: %v", err)
			}
			if plane.Requests() == 0 {
				t.Fatal("plane saw no requests; telemetry was never attached")
			}

			// The flight recorder must hold a validating tail of the run.
			var dump bytes.Buffer
			if err := plane.DumpRecorders(&dump); err != nil {
				t.Fatal(err)
			}
			n, err := live.ValidateRecorderDump(strings.NewReader(dump.String()))
			if err != nil {
				t.Fatalf("recorder dump invalid: %v\n%s", err, dump.String())
			}
			if n == 0 {
				t.Fatal("recorder dump holds no records")
			}
		})
	}
}

// TestTelemetryCrashDumpOnFailure pins the post-mortem path: a run killed by
// an injected power cut leaves the flight recorder holding the final admitted
// requests — including the one that failed — and the dump validates.
func TestTelemetryCrashDumpOnFailure(t *testing.T) {
	plane := live.NewPlane(0, 16)
	_, err := Run(Options{
		Scheme:    SchemeTPFTL,
		Profile:   smallProfile(workload.Financial1()),
		Requests:  3_000,
		Seed:      5,
		Telemetry: plane,
		Faults:    &flash.FaultPlan{Seed: 9, CutAtOp: 400},
	})
	if err == nil {
		t.Fatal("power-cut run succeeded; fault plan was not armed")
	}

	var dump bytes.Buffer
	if err := plane.DumpRecorders(&dump); err != nil {
		t.Fatal(err)
	}
	n, verr := live.ValidateRecorderDump(strings.NewReader(dump.String()))
	if verr != nil {
		t.Fatalf("post-mortem dump invalid: %v\n%s", verr, dump.String())
	}
	if n == 0 {
		t.Fatal("post-mortem dump holds no records")
	}
	// The failing request is recorded with a zero completion timestamp.
	if !strings.Contains(dump.String(), "complete_ns=0") {
		t.Fatalf("failing request missing from dump:\n%s", dump.String())
	}
}

// TestTelemetryOffHotPathAllocates0 guards the disabled path: with no cell
// attached, the per-request telemetry gate is one nil check and the serve
// path still performs zero heap allocations.
func TestTelemetryOffHotPathAllocates0(t *testing.T) {
	if !allocGuardsEnabled {
		t.Skip("allocation guards disabled under -race / -tags ftlsan")
	}
	space := int64(1 << 20)
	cfg := ftl.DefaultConfig(space)
	cfg.CacheBytes = ftl.DefaultCacheBytes(space)
	dev, err := ftl.NewDevice(cfg, core.New(core.DefaultConfig(cfg.CacheBytes)))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Format(); err != nil {
		t.Fatal(err)
	}
	read := func(arrival int64) trace.Request {
		return trace.Request{Arrival: arrival, Offset: 5 * 4096, Length: 4096}
	}
	if _, err := dev.Serve(trace.Request{Offset: 5 * 4096, Length: 4096, Op: trace.OpWrite}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Serve(read(1)); err != nil {
		t.Fatal(err)
	}
	arrival := int64(2)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := dev.Serve(read(arrival)); err != nil {
			t.Fatal(err)
		}
		arrival++
	})
	if allocs != 0 {
		t.Fatalf("telemetry-off serve allocates %v times per op, want 0", allocs)
	}
}
