package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/trace"
	"repro/internal/workload"
)

// CrashOptions configures a crash-recovery property run: the same seeded
// workload is replayed repeatedly, power is cut at a different chip-op index
// each time, and the post-crash OOB scan (Device.RecoverMapping) is checked
// against what the device acknowledged before the lights went out.
type CrashOptions struct {
	// Scheme selects the FTL policy under test.
	Scheme Scheme
	// TPFTL optionally overrides the TPFTL configuration (see Options).
	TPFTL *core.Config

	// Profile, AddressSpace, Requests, Seed describe the workload exactly
	// as in Options.
	Profile      workload.Profile
	AddressSpace int64
	Requests     int
	Seed         int64

	// Trace, when non-empty, replays these requests instead of generating
	// a workload from Profile/Requests/Seed. AddressSpace must be set.
	// Differential and fuzz tests use this to drive explicit trim/flush/
	// write interleavings through every cut point.
	Trace []trace.Request

	// CacheBytes is the mapping-cache budget (0: paper convention).
	CacheBytes int64
	// Precondition ages the device before arming faults (see Options).
	Precondition float64
	// Channels, Dies and TransPlacement select the parallel backend's
	// geometry (see Options). Cut points are op indexes, so crash recovery
	// is verified at the same logical progress whatever the geometry.
	Channels       int
	Dies           int
	TransPlacement ftl.TPPlacement

	// Cuts is the number of random power-cut points to test (default 1).
	// Cut indexes are drawn uniformly from [1, total chip ops] of an
	// uninterrupted baseline run of the same workload.
	Cuts int
	// CutAtOp, when > 0, tests exactly this one op index instead.
	CutAtOp int64
	// FaultProb additionally makes every read/program/erase fail
	// transiently with this probability during the cut runs, exercising
	// the device's retry path on the way to the crash.
	FaultProb float64
}

// CutResult is the verified outcome of one power-cut point.
type CutResult struct {
	// CutOp is the 1-based chip-op index at which power was cut.
	CutOp int64
	// ServedRequests counts the requests fully acknowledged before the cut.
	ServedRequests int
	// AckedPages counts the distinct logical pages whose acknowledged
	// writes were verified durable after recovery.
	AckedPages int
	// ScannedPages is the recovery scan cost (one OOB read per programmed
	// page).
	ScannedPages int64
	// Injected counts transient faults injected before the cut (FaultProb).
	Injected int64
	// TrimmedPages counts the logical pages whose acknowledged discards
	// (not overwritten since) were verified not to resurrect after
	// recovery.
	TrimmedPages int
	// FlushBarriers counts the acknowledged flush requests whose
	// drained-cache contract was verified at the ack instant.
	FlushBarriers int
}

// CrashReport aggregates a RunCrash execution.
type CrashReport struct {
	Scheme Scheme
	// TotalOps is the chip-op count of the uninterrupted baseline run; cut
	// points are drawn from [1, TotalOps].
	TotalOps int64
	Cuts     []CutResult
}

// RunCrash runs the crash-consistency property: for every cut point it
// verifies that (a) the mapping rebuilt by the OOB scan equals the device's
// live mapping at the instant of the cut — the device must never expose
// state that would not survive a crash — (b) every write acknowledged
// before the cut is recovered with its logical tag and a program sequence at
// least as fresh as the acknowledged one, (c) every logical page whose
// discard was acknowledged before the cut (and not rewritten since) stays
// unmapped after recovery — a TRIM must never resurrect old data — and
// (d) every acknowledged flush barrier left the mapping cache with no dirty
// entry at its ack instant (unless a concurrent GC legitimately re-dirtied
// entries mid-flush). Any divergence is returned as an error naming the cut
// point, which reproduces deterministically from (options, cut index).
func RunCrash(o CrashOptions) (*CrashReport, error) {
	if o.Cuts <= 0 {
		o.Cuts = 1
	}

	space := o.Profile.AddressSpace
	if o.AddressSpace != 0 {
		space = o.AddressSpace
	}
	if space <= 0 {
		return nil, fmt.Errorf("sim: no address space configured")
	}
	reqs := o.Trace
	if len(reqs) == 0 {
		profile := o.Profile.Scale(space)
		var err error
		reqs, err = workload.Generate(profile, o.Requests, o.Seed)
		if err != nil {
			return nil, err
		}
	}

	// Baseline: run the workload uninterrupted under an empty fault plan,
	// which injects nothing but counts chip ops, sizing the cut space.
	dev, _, err := o.buildDevice(space)
	if err != nil {
		return nil, err
	}
	dev.Chip().SetFaultPlan(&flash.FaultPlan{})
	for i := range reqs {
		if _, err := dev.Serve(reqs[i]); err != nil {
			return nil, fmt.Errorf("sim: %s baseline request %d: %w", o.Scheme, i, err)
		}
	}
	rep := &CrashReport{Scheme: o.Scheme, TotalOps: dev.Chip().OpCount()}
	if rep.TotalOps == 0 {
		return nil, fmt.Errorf("sim: %s baseline performed no chip ops", o.Scheme)
	}

	cuts := make([]int64, 0, o.Cuts)
	if o.CutAtOp > 0 {
		cuts = append(cuts, o.CutAtOp)
	} else {
		rng := rand.New(rand.NewSource(o.Seed*6364136223846793005 + 1442695040888963407))
		for i := 0; i < o.Cuts; i++ {
			cuts = append(cuts, 1+rng.Int63n(rep.TotalOps))
		}
	}

	for _, cut := range cuts {
		res, err := o.runOneCut(space, reqs, cut)
		if err != nil {
			return nil, fmt.Errorf("sim: %s cut at op %d: %w", o.Scheme, cut, err)
		}
		rep.Cuts = append(rep.Cuts, *res)
	}
	return rep, nil
}

// buildDevice constructs, formats and optionally preconditions a fresh
// device for one run. Every call produces bit-identical state: faults are
// armed only afterwards, so cut indexes land in the measured workload.
func (o CrashOptions) buildDevice(space int64) (*ftl.Device, ftl.Translator, error) {
	cacheBytes := o.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = ftl.DefaultCacheBytes(space)
	}
	devCfg := ftl.DefaultConfig(space)
	devCfg.CacheBytes = cacheBytes
	devCfg.Seed = o.Seed
	devCfg.Channels = o.Channels
	devCfg.Dies = o.Dies
	devCfg.TransPlacement = o.TransPlacement

	tr, err := NewTranslator(o.Scheme, cacheBytes, devCfg.LogicalPages(), o.TPFTL)
	if err != nil {
		return nil, nil, err
	}
	dev, err := ftl.NewDevice(devCfg, tr)
	if err != nil {
		return nil, nil, err
	}
	if err := dev.Format(); err != nil {
		return nil, nil, err
	}
	if o.Precondition > 0 {
		pages := devCfg.LogicalPages()
		writes := int(o.Precondition * float64(pages))
		if err := dev.PreconditionRange(writes, pages, o.Seed+1); err != nil {
			return nil, nil, err
		}
		dev.ResetMetrics()
	}
	if w, ok := tr.(ftl.Warmer); ok {
		w.Warm(dev.Truth)
	}
	return dev, tr, nil
}

// runOneCut replays the workload with power cut at the given op index and
// verifies recovery.
func (o CrashOptions) runOneCut(space int64, reqs []trace.Request, cut int64) (*CutResult, error) {
	dev, tr, err := o.buildDevice(space)
	if err != nil {
		return nil, err
	}
	dev.Chip().SetFaultPlan(&flash.FaultPlan{
		Seed:        o.Seed + cut,
		CutAtOp:     cut,
		ReadProb:    o.FaultProb,
		ProgramProb: o.FaultProb,
		EraseProb:   o.FaultProb,
	})

	// Serve until the cut, recording the acknowledged durability point of
	// every completed write (the program sequence number its pages carry
	// the moment Serve returns success) and the set of pages whose discard
	// was acknowledged and not rewritten since.
	res := &CutResult{CutOp: cut}
	acked := make(map[ftl.LPN]int64)
	trimmed := make(map[ftl.LPN]struct{})
	pageSize := dev.Config().PageSize
	for i := range reqs {
		var gcBefore int64
		if reqs[i].Op == trace.OpFlush {
			m := dev.Metrics()
			gcBefore = m.GCDataCollections + m.GCTransCollections
		}
		if reqs[i].Op.IsWrite() {
			// A write ISSUED to a trimmed page voids the resurrection check
			// even if the cut lands mid-request: its pages may already be
			// programmed with fresh sequence numbers, and recovery is then
			// allowed to surface the new (unacknowledged) data. Old pre-trim
			// data still cannot reappear — its sequence predates the trim's
			// translation-page rewrite, so the demotion rule masks it.
			first, last := reqs[i].Pages(pageSize)
			for lpn := first; lpn <= last; lpn++ {
				delete(trimmed, ftl.LPN(lpn))
			}
		}
		if _, err := dev.Serve(reqs[i]); err != nil {
			if errors.Is(err, flash.ErrPowerCut) {
				break
			}
			return nil, fmt.Errorf("request %d died before the cut: %w", i, err)
		}
		res.ServedRequests++
		switch reqs[i].Op {
		case trace.OpRead:
			// Reads claim no durability; nothing to track.
		case trace.OpWrite, trace.OpWriteFUA:
			first, last := reqs[i].Pages(pageSize)
			for lpn := first; lpn <= last; lpn++ {
				ppn := dev.Truth(ftl.LPN(lpn))
				acked[ftl.LPN(lpn)] = dev.Chip().MetaOf(ppn).Seq
				delete(trimmed, ftl.LPN(lpn))
			}
		case trace.OpTrim:
			// Inward page rounding, mirroring the device: only pages fully
			// inside the range are discarded. An acknowledged discard voids
			// any earlier write's durability claim on those pages.
			first := (reqs[i].Offset + int64(pageSize) - 1) / int64(pageSize)
			last := reqs[i].End()/int64(pageSize) - 1
			for lpn := first; lpn <= last; lpn++ {
				trimmed[ftl.LPN(lpn)] = struct{}{}
				delete(acked, ftl.LPN(lpn))
			}
		case trace.OpFlush:
			// (d) At the ack instant every dirty cached entry has been
			// written back — unless a GC run inside the flush legitimately
			// re-dirtied entries with migrated locations.
			m := dev.Metrics()
			if m.GCDataCollections+m.GCTransCollections == gcBefore {
				if dirty := dirtySetOf(tr); len(dirty) > 0 {
					return nil, fmt.Errorf("flush request %d acked with %d dirty cached entries", i, len(dirty))
				}
			}
			res.FlushBarriers++
		}
	}
	res.Injected = dev.Chip().FaultStats().Injected()

	// Power is out; rebuild the mapping from nothing but OOB metadata.
	rs, err := dev.RecoverMapping()
	if err != nil {
		return nil, err
	}
	res.ScannedPages = rs.ScannedPages

	// (a) Exact match against the live state at the cut instant: the
	// device applies truth/GTD updates only after the corresponding chip
	// op succeeded, so whatever it exposes must be reconstructible.
	for lpn := int64(0); lpn < dev.NumLPNs(); lpn++ {
		if got, live := rs.Truth[lpn], dev.Truth(ftl.LPN(lpn)); got != live {
			return nil, fmt.Errorf("recovered lpn %d as ppn %d, live state says %d", lpn, got, live)
		}
	}
	for v := 0; v < dev.NumTPs(); v++ {
		if got, live := rs.GTD[v], dev.GTDEntry(ftl.VTPN(v)); got != live {
			return nil, fmt.Errorf("recovered vtpn %d as ppn %d, live GTD says %d", v, got, live)
		}
	}

	// (b) Acknowledged durability: every write completed before the cut
	// must come back with its tag and an equal-or-fresher sequence (GC may
	// legitimately have moved it to a newer physical page).
	//ftl:orderinsensitive read-only durability check; any violated LPN is a valid witness
	for lpn, seq := range acked {
		ppn := rs.Truth[lpn]
		if ppn == flash.InvalidPPN {
			return nil, fmt.Errorf("acknowledged write to lpn %d lost in recovery", lpn)
		}
		m := dev.Chip().MetaOf(ppn)
		if m.Kind != flash.KindData || m.Tag != int64(lpn) {
			return nil, fmt.Errorf("lpn %d recovered to ppn %d tagged %v/%d", lpn, ppn, m.Kind, m.Tag)
		}
		if m.Seq < seq {
			return nil, fmt.Errorf("lpn %d recovered with seq %d older than acknowledged %d", lpn, m.Seq, seq)
		}
	}
	res.AckedPages = len(acked)

	// (c) Discard durability: a page whose TRIM was acknowledged (and that
	// was not rewritten) must stay unmapped after recovery — the on-flash
	// state must never resurrect the pre-trim data.
	for lpn := range trimmed {
		if rs.Truth[lpn] != flash.InvalidPPN {
			return nil, fmt.Errorf("trimmed lpn %d resurrected as ppn %d after recovery", lpn, rs.Truth[lpn])
		}
	}
	res.TrimmedPages = len(trimmed)
	return res, nil
}
