package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/obs"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// obsParallelRun executes the deterministic 4×2/QD8 workload with the given
// observability sinks armed (either may be nil) and returns the metrics and
// the scheduler's event hash.
func obsParallelRun(t *testing.T, traceW, metricsW *bytes.Buffer) (ftl.Metrics, uint64) {
	t.Helper()
	space := int64(32 << 20)
	cfg := ftl.DefaultConfig(space)
	cfg.CacheBytes = ftl.DefaultCacheBytes(space)
	cfg.Channels = 4
	cfg.Dies = 2
	tr, err := NewTranslator(SchemeTPFTL, cfg.CacheBytes, cfg.LogicalPages(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Format(); err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Financial1().Scale(space), 4_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if traceW != nil {
		dev.SetTracer(obs.NewTracer(traceW))
	}
	if metricsW != nil {
		dev.SetMetricsExport(metricsW, 500)
	}
	if _, err := (ssd.Frontend{QueueDepth: 8}).Run(dev, reqs); err != nil {
		t.Fatal(err)
	}
	m := dev.Metrics()
	if err := dev.FinishObservability(); err != nil {
		t.Fatal(err)
	}
	return m, dev.Scheduler().EventHash()
}

// TestObservabilityDoesNotPerturbSimulation is the layer's core contract:
// arming the tracer and the metrics exporter must leave every simulated
// metric and the scheduler's event sequence bit-for-bit identical to a run
// with observability off. Observability reads the clock; it never advances
// it.
func TestObservabilityDoesNotPerturbSimulation(t *testing.T) {
	mOff, hOff := obsParallelRun(t, nil, nil)
	var traceBuf, metricsBuf bytes.Buffer
	mOn, hOn := obsParallelRun(t, &traceBuf, &metricsBuf)
	if hOff != hOn {
		t.Fatalf("tracing changed the scheduled event sequence: %x vs %x", hOff, hOn)
	}
	if mOff != mOn {
		t.Fatalf("observability changed the metrics\n off %+v\n on  %+v", mOff, mOn)
	}
	if traceBuf.Len() == 0 || metricsBuf.Len() == 0 {
		t.Fatal("observability produced no output; the non-perturbation property is untested")
	}
}

// TestObservabilityExportsDeterministic pins the artifacts themselves: two
// identical runs must emit byte-identical JSONL and trace files, and both
// must pass the repo's own schema validators (the same checks `make
// obs-smoke` and cmd/obsvalidate run).
func TestObservabilityExportsDeterministic(t *testing.T) {
	var trace1, metrics1, trace2, metrics2 bytes.Buffer
	obsParallelRun(t, &trace1, &metrics1)
	obsParallelRun(t, &trace2, &metrics2)
	if !bytes.Equal(trace1.Bytes(), trace2.Bytes()) {
		t.Fatal("trace export differs across identical runs")
	}
	if !bytes.Equal(metrics1.Bytes(), metrics2.Bytes()) {
		t.Fatal("metrics export differs across identical runs")
	}
	n, err := obs.ValidateMetricsJSONL(&metrics1)
	if err != nil {
		t.Fatalf("metrics JSONL fails its own schema check: %v", err)
	}
	if n < 2 {
		t.Fatalf("only %d metrics snapshots for 4000 requests at interval 500", n)
	}
	ev, err := obs.ValidateTrace(&trace1)
	if err != nil {
		t.Fatalf("trace JSON fails its own schema check: %v", err)
	}
	if ev == 0 {
		t.Fatal("trace contains no events")
	}
}

// TestSimRunObservabilityOptions drives the sinks through sim.Run's options
// (the path cmd/ftlsim uses): exports must be armed only for the measured
// phase, so snapshot counters line up with the result's metrics.
func TestSimRunObservabilityOptions(t *testing.T) {
	var traceBuf, metricsBuf bytes.Buffer
	o := goldenOptions(SchemeTPFTL)
	o.MetricsOut = &metricsBuf
	o.MetricsInterval = 900
	o.TraceOut = &traceBuf
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateMetricsJSONL(bytes.NewReader(metricsBuf.Bytes())); err != nil {
		t.Fatalf("sim.Run metrics export fails validation: %v", err)
	}
	if _, err := obs.ValidateTrace(bytes.NewReader(traceBuf.Bytes())); err != nil {
		t.Fatalf("sim.Run trace export fails validation: %v", err)
	}
	// The final snapshot's cumulative counters are the measured phase's
	// totals: warm-up happened before the sinks were armed.
	lines := bytes.Split(bytes.TrimSpace(metricsBuf.Bytes()), []byte("\n"))
	last := lines[len(lines)-1]
	want := r.M.Counters()
	var got struct {
		Total obs.Counters `json:"total"`
	}
	if err := json.Unmarshal(last, &got); err != nil {
		t.Fatal(err)
	}
	if got.Total != want {
		t.Fatalf("final snapshot totals diverge from the run's metrics\n got %+v\nwant %+v", got.Total, want)
	}
}

// TestSerialPhaseAccounting pins the per-phase attribution on the serial
// golden run (1 channel × 1 die × QD1), where a request's response decomposes
// exactly: every nanosecond the device spends belongs to exactly one phase.
func TestSerialPhaseAccounting(t *testing.T) {
	r, err := Run(goldenOptions(SchemeTPFTL))
	if err != nil {
		t.Fatal(err)
	}
	m := r.M

	resp := m.Phase(obs.PhaseResponse)
	if resp.Count != m.Requests {
		t.Fatalf("response histogram count %d != measured requests %d (warm-up reset must clear phase histograms too)", resp.Count, m.Requests)
	}
	if got := time.Duration(resp.Sum); got != m.ResponseTime {
		t.Fatalf("response histogram sum %v != ResponseTime %v", got, m.ResponseTime)
	}
	if resp.Max() != m.MaxResponse {
		t.Fatalf("response histogram max %v != MaxResponse %v", resp.Max(), m.MaxResponse)
	}

	// Exactly one translation phase per request.
	xlate := m.Phase(obs.PhaseXlateHit).Count + m.Phase(obs.PhaseXlateMiss).Count + m.Phase(obs.PhaseXlatePrefetch).Count
	if xlate != m.Requests {
		t.Fatalf("translation phase counts sum to %d, want one per request (%d)", xlate, m.Requests)
	}

	// The serial decomposition identity: response = queue + translation +
	// data + writeback + GC stall, exactly, summed over all requests.
	sum := m.Phase(obs.PhaseQueue).Sum +
		m.Phase(obs.PhaseXlateHit).Sum +
		m.Phase(obs.PhaseXlateMiss).Sum +
		m.Phase(obs.PhaseXlatePrefetch).Sum +
		m.Phase(obs.PhaseData).Sum +
		m.Phase(obs.PhaseWriteback).Sum +
		m.Phase(obs.PhaseGCStall).Sum
	if sum != resp.Sum {
		t.Fatalf("serial phase sums %v do not decompose the response sum %v (off by %v)",
			time.Duration(sum), time.Duration(resp.Sum), time.Duration(resp.Sum-sum))
	}

	// Satellite regression: the tracked maximum can never sit below the
	// estimated tail, in any phase.
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		h := m.Phase(p)
		if h.Count == 0 {
			continue
		}
		if h.Max() < h.Quantile(0.999) {
			t.Errorf("phase %s: max %v < p999 %v", p, h.Max(), h.Quantile(0.999))
		}
	}

	// The workload misses and prefetches: the identity above must not hold
	// vacuously on an all-hit run.
	if m.Phase(obs.PhaseXlateMiss).Count == 0 && m.Phase(obs.PhaseXlatePrefetch).Count == 0 {
		t.Fatal("no translation misses observed; phase attribution untested")
	}
	if m.Phase(obs.PhaseGCStall).Count == 0 {
		t.Fatal("no GC stalls observed; phase attribution untested")
	}
}

// TestDisabledObservabilityAllocates0 extends the core package's hot-path
// guard across the observability layer: with no tracer and no exporter
// armed, a cache-hit read — which now records into four phase histograms —
// must still perform zero heap allocations.
func TestDisabledObservabilityAllocates0(t *testing.T) {
	if !allocGuardsEnabled {
		t.Skip("allocation guards disabled under -race / -tags ftlsan")
	}
	space := int64(1 << 20)
	cfg := ftl.DefaultConfig(space)
	cfg.CacheBytes = ftl.DefaultCacheBytes(space)
	dev, err := ftl.NewDevice(cfg, core.New(core.DefaultConfig(cfg.CacheBytes)))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Format(); err != nil {
		t.Fatal(err)
	}
	req := func(arrival int64, write bool) trace.Request {
		return trace.Request{Arrival: arrival, Offset: 5 * 4096, Length: 4096, Op: opOf(write)}
	}
	if _, err := dev.Serve(req(0, true)); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Serve(req(1, false)); err != nil { // warm: entry now cached
		t.Fatal(err)
	}
	arrival := int64(2)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := dev.Serve(req(arrival, false)); err != nil {
			t.Fatal(err)
		}
		arrival++
	})
	if allocs != 0 {
		t.Fatalf("cache-hit read with observability disabled allocates %v times per op, want 0", allocs)
	}
	m := dev.Metrics()
	if m.Hits == 0 || m.Phase(obs.PhaseXlateHit).Count == 0 {
		t.Fatal("guard did not exercise the hit path through the phase histograms")
	}
}
