package sim

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/trace"
	"repro/internal/ftl/blockftl"
	"repro/internal/ftl/fast"
	"repro/internal/ftl/hybrid"
	"repro/internal/workload"
)

// TestDifferentialAllSchemes drives every page-level scheme — plus the
// block-level and hybrid devices — through an identical request stream.
// Each device verifies every translated read against its own ground truth,
// so surviving the stream is itself the correctness statement; on top of
// that, user-visible accounting (page accesses, unmapped reads) must agree
// across all mapping granularities, and the mapping-table RAM ordering of
// the §2.1 taxonomy must hold.
func TestDifferentialAllSchemes(t *testing.T) {
	p := workload.Financial1().Scale(16 << 20)
	reqs, err := workload.Generate(p, 6_000, 13)
	if err != nil {
		t.Fatal(err)
	}

	type summary struct {
		pageReads, pageWrites, unmapped int64
	}
	results := map[string]summary{}

	for _, s := range []Scheme{SchemeDFTL, SchemeTPFTL, SchemeSFTL, SchemeCDFTL, SchemeZFTL, SchemeOptimal} {
		r, err := Run(Options{Scheme: s, Profile: p, Trace: reqs})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		results[string(s)] = summary{r.M.PageReads, r.M.PageWrites, r.M.UnmappedReads}
	}

	devCfg := ftl.Config{LogicalBytes: 16 << 20, PageSize: 4096, OverProvision: 0.15}
	bd, err := blockftl.New(devCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bd.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if err := bd.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	bm := bd.Metrics()
	results["block"] = summary{bm.PageReads, bm.PageWrites, bm.UnmappedReads}

	hd, err := hybrid.New(hybrid.Config{Device: devCfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hd.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if err := hd.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	hm := hd.Metrics()
	results["hybrid"] = summary{hm.PageReads, hm.PageWrites, hm.UnmappedReads}

	fd, err := fast.New(fast.Config{Device: devCfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if err := fd.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	fm := fd.Metrics()
	results["fast"] = summary{fm.PageReads, fm.PageWrites, fm.UnmappedReads}

	// All devices must agree on the user-visible request decomposition.
	// Unmapped-read counts may differ between the page-level devices
	// (which are formatted: every page mapped) and the raw block/hybrid
	// devices (unformatted), so compare those two groups separately.
	ref := results[string(SchemeDFTL)]
	for name, got := range results {
		if got.pageReads != ref.pageReads || got.pageWrites != ref.pageWrites {
			t.Errorf("%s: page accesses %d/%d, want %d/%d",
				name, got.pageReads, got.pageWrites, ref.pageReads, ref.pageWrites)
		}
	}
	for _, s := range []string{"TPFTL", "S-FTL", "CDFTL", "ZFTL", "Optimal"} {
		if results[s].unmapped != ref.unmapped {
			t.Errorf("%s: unmapped reads %d, want %d", s, results[s].unmapped, ref.unmapped)
		}
	}
	if results["block"].unmapped != results["hybrid"].unmapped ||
		results["fast"].unmapped != results["hybrid"].unmapped {
		t.Errorf("block/hybrid/fast unmapped reads diverge: %d vs %d vs %d",
			results["block"].unmapped, results["hybrid"].unmapped, results["fast"].unmapped)
	}
}

// TestMappingGranularityTaxonomy checks the §2.1 RAM-vs-performance
// trade-off: block < hybrid < page mapping table sizes, and page-level
// (TPFTL) beats block-level on random-write amplification.
func TestMappingGranularityTaxonomy(t *testing.T) {
	const space = 16 << 20
	devCfg := ftl.Config{LogicalBytes: space, PageSize: 4096, OverProvision: 0.15}

	bd, err := blockftl.New(devCfg)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := hybrid.New(hybrid.Config{Device: devCfg})
	if err != nil {
		t.Fatal(err)
	}
	pageTable := FullTableBytes(space)
	if !(bd.MappingTableBytes() < hd.MappingTableBytes() && hd.MappingTableBytes() < pageTable) {
		t.Fatalf("RAM ordering violated: block %d, hybrid %d, page %d",
			bd.MappingTableBytes(), hd.MappingTableBytes(), pageTable)
	}

	// Random single-page overwrites: the block FTL's merges must amplify
	// writes far beyond the page-level FTL's GC.
	p := workload.Financial1().Scale(space)
	reqs, err := workload.Generate(p, 5_000, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Make every request a single-page write (worst case for merges).
	for i := range reqs {
		reqs[i].Op = trace.OpWrite
		reqs[i].Length = 4096
		reqs[i].Offset = reqs[i].Offset / 4096 * 4096
	}
	if _, err := bd.Run(reqs); err != nil {
		t.Fatal(err)
	}
	page, err := Run(Options{Scheme: SchemeTPFTL, Profile: p, Trace: reqs, Precondition: 1})
	if err != nil {
		t.Fatal(err)
	}
	bms := bd.Metrics()
	bwa := bms.WriteAmplification()
	pwa := page.M.WriteAmplification()
	if bwa <= pwa {
		t.Fatalf("block WA %.2f not above page-level WA %.2f on random writes", bwa, pwa)
	}
}

// TestZFTLInHarness smoke-tests the ZFTL scheme through the standard
// harness including its consistency check.
func TestZFTLInHarness(t *testing.T) {
	p := workload.Financial1().Scale(16 << 20)
	r, err := Run(Options{Scheme: SchemeZFTL, Profile: p, Requests: 4_000, Seed: 3, Precondition: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.M.Lookups == 0 {
		t.Fatal("no lookups")
	}
}

// TestDifferentialTrimThenRead drives the same write→trim→flush→read
// sequence through all six page-level translators: every trimmed page must
// read back as unmapped (the discard dropped the mapping, including any
// dirty cached entry, without resurrection), every untrimmed page must
// still translate, and the trim/flush accounting must agree exactly across
// schemes.
func TestDifferentialTrimThenRead(t *testing.T) {
	const space = 8 << 20
	const pageBytes = 4096
	const pages = 64
	p := workload.Financial1().Scale(space)

	var reqs []trace.Request
	arrival := int64(0)
	step := func(op trace.Op, page, length int64) {
		arrival += 100_000
		r := trace.Request{Arrival: arrival, Offset: page * pageBytes, Length: length, Op: op}
		if op == trace.OpFlush {
			r.Offset, r.Length = 0, 0
		}
		reqs = append(reqs, r)
	}
	for i := int64(0); i < pages; i++ {
		step(trace.OpWrite, i, pageBytes)
	}
	// Trim every even page; the flush in between forces dirty cached
	// entries through writeback so both the cached and the persisted
	// mapping paths are exercised before the reads.
	for i := int64(0); i < pages; i += 2 {
		step(trace.OpTrim, i, pageBytes)
	}
	step(trace.OpFlush, 0, 0)
	for i := int64(0); i < pages; i++ {
		step(trace.OpRead, i, pageBytes)
	}

	for _, s := range []Scheme{SchemeDFTL, SchemeTPFTL, SchemeSFTL, SchemeCDFTL, SchemeZFTL, SchemeOptimal} {
		r, err := Run(Options{Scheme: s, Profile: p, Trace: reqs})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.M.UnmappedReads != pages/2 {
			t.Errorf("%s: %d unmapped reads after trimming %d pages, want %d",
				s, r.M.UnmappedReads, pages/2, pages/2)
		}
		if r.M.TrimRequests != pages/2 || r.M.TrimmedPages != pages/2 {
			t.Errorf("%s: trim accounting %d requests/%d pages, want %d/%d",
				s, r.M.TrimRequests, r.M.TrimmedPages, pages/2, pages/2)
		}
		if r.M.FlushRequests != 1 {
			t.Errorf("%s: %d flush requests, want 1", s, r.M.FlushRequests)
		}
	}
}
