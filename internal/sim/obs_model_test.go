package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/analytic"
	"repro/internal/ftl"
	"repro/internal/ftl/dftl"
	"repro/internal/obs"
	"repro/internal/trace"
)

// runModelDevice drives a DFTL device (the scheme Eqs. 1–11 describe) over
// widely spaced single-page requests and returns the measured metrics plus
// the analytic parameters extracted from them.
func runModelDevice(t *testing.T) (ftl.Metrics, analytic.Params) {
	t.Helper()
	// Geometry picked for the regime the model describes well. The model
	// charges one unbatched translation update per migrated-page GC miss;
	// the device batches updates sharing a translation page within one
	// victim block. A large address space (many translation pages) spreads
	// a victim block's migrations across distinct translation pages, and
	// generous over-provisioning keeps victim blocks from running nearly
	// full, so the unbatched assumption is close to exact.
	cfg := ftl.Config{
		LogicalBytes:  128 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.25,
		CacheBytes:    16384,
	}
	dev, err := ftl.NewDevice(cfg, dftl.New(dftl.Config{CacheBytes: cfg.CacheBytes}))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Format(); err != nil {
		t.Fatal(err)
	}
	const pages = 32768
	const spacing = 50_000_000 // 50 ms: far beyond any single response
	arrival := int64(0)
	serve := func(page int64, write bool) {
		t.Helper()
		arrival += spacing
		req := trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: opOf(write)}
		if _, err := dev.Serve(req); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up: map every page (no unmapped-read freebies in the measured
	// phase, where the model charges each read a full flash access) and
	// churn GC toward its steady state.
	rng := rand.New(rand.NewSource(9))
	for p := int64(0); p < pages; p++ {
		serve(p, true)
	}
	for i := 0; i < 8_000; i++ {
		serve(int64(rng.Intn(pages)), true)
	}
	dev.ResetMetrics()

	for i := 0; i < 40_000; i++ {
		serve(int64(rng.Intn(pages)), rng.Intn(10) < 4) // Rw ≈ 0.4
	}
	m := dev.Metrics()
	if q := m.Phase(obs.PhaseQueue); q.Max() != 0 {
		t.Fatalf("arrival spacing too tight: queue phase max %v, want 0 (model predicts service time only)", q.Max())
	}
	if m.PageAccesses() != m.Requests {
		t.Fatalf("requests are not single-page: %d accesses over %d requests", m.PageAccesses(), m.Requests)
	}

	c := dev.Config()
	p := analytic.Params{
		Hr: m.Hr(), Prd: m.Prd(), Hgcr: m.Hgcr(), Rw: m.Rw(),
		Vd: m.Vd(), Vt: m.Vt(),
		Np:  float64(c.PagesPerBlock),
		Npa: float64(m.PageAccesses()),
		Tfr: c.ReadLatency, Tfw: c.WriteLatency, Tfe: c.EraseLatency,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return m, p
}

// TestPhaseHistogramsMatchAnalyticModel closes the loop between the paper's
// §3.1 performance model and the measured latency distribution: feed the
// measured Hr/Prd/Hgcr/Rw/Vd/Vt back into the model and require the
// predicted mean response — flash access plus Tat + Tgcd + Tgct — to agree
// with the response histogram's mean. Arrivals are spaced far apart so there
// is no queueing: each request's response is pure service time, which is
// what the model predicts.
func TestPhaseHistogramsMatchAnalyticModel(t *testing.T) {
	m, p := runModelDevice(t)

	// Eq. 1 + Eqs. 10/11 on top of the raw flash access: the model's mean
	// response per page access.
	flash := time.Duration((1-p.Rw)*float64(p.Tfr) + p.Rw*float64(p.Tfw))
	predicted := flash + p.ExtraTimePerAccess()
	measured := m.Phase(obs.PhaseResponse).Mean()
	if measured != m.AvgResponse() {
		t.Fatalf("response histogram mean %v != AvgResponse %v", measured, m.AvgResponse())
	}
	perReq := func(ph ...obs.Phase) time.Duration {
		var sum int64
		for _, p := range ph {
			sum += m.Phase(p).Sum
		}
		return time.Duration(sum / m.Requests)
	}
	relErr := func(a, b time.Duration) float64 {
		return math.Abs(float64(a-b)) / float64(b)
	}

	// The flash-access and translation components must match their phases
	// essentially exactly: the model's flash term is one read or write per
	// access, and Eq. 1 on measured Hr/Prd is the literal per-event cost of
	// DFTL's translation path (one translation read per miss, one
	// read-modify-write per dirty replacement) — the same events the phase
	// attribution times. Divergence here means a phase is mis-attributed
	// or a counter drifted.
	data := perReq(obs.PhaseData)
	if relErr(flash, data) > 0.001 {
		t.Errorf("model flash term %v vs measured data phase %v", flash, data)
	}
	xlate := perReq(obs.PhaseXlateHit, obs.PhaseXlateMiss, obs.PhaseXlatePrefetch, obs.PhaseWriteback)
	if relErr(p.Tat(), xlate) > 0.001 {
		t.Errorf("Eq. 1 Tat %v vs measured translation+writeback phases %v", p.Tat(), xlate)
	}

	// The GC terms upper-bound the measured stall: Eqs. 10/11 charge one
	// unbatched translation update per migrated-page GC miss, while the
	// device batches updates sharing a translation page within a victim
	// block (victim blocks hold spatially clustered pages, so the batching
	// win is large — the count-level test in internal/analytic pins the
	// same property on Ndt). Bounded both ways: below by the measurement,
	// above by twice it.
	gcModel := p.Tgcd() + p.Tgct()
	gcMeasured := perReq(obs.PhaseGCStall)
	t.Logf("components: flash %v vs data %v; Tat %v vs xlate+wb %v; Tgcd+Tgct %v vs gc_stall %v",
		flash, data, p.Tat(), xlate, gcModel, gcMeasured)
	if gcModel < gcMeasured {
		t.Errorf("model GC time %v below measured GC stall %v: the unbatched model must upper-bound", gcModel, gcMeasured)
	}
	if gcModel > 2*gcMeasured {
		t.Errorf("model GC time %v more than twice measured GC stall %v", gcModel, gcMeasured)
	}

	rel := relErr(predicted, measured)
	t.Logf("model %v vs measured %v (rel err %.1f%%; Hr=%.3f Prd=%.3f Hgcr=%.3f Vd=%.1f Vt=%.1f)",
		predicted, measured, 100*rel, p.Hr, p.Prd, p.Hgcr, p.Vd, p.Vt)
	// Overall tolerance follows from the component bounds: exact outside
	// GC, at most 2× inside it. A broken phase attribution or a drifting
	// counter lands far outside.
	if predicted < measured || rel > 0.5 {
		t.Fatalf("model mean response %v outside [measured, 1.5×measured] around %v (rel err %.1f%%)", predicted, measured, 100*rel)
	}

	// The decomposition must show the structure the model assumes: real
	// translation misses, dirty writebacks and GC stalls.
	for _, ph := range []obs.Phase{obs.PhaseXlateMiss, obs.PhaseWriteback, obs.PhaseGCStall} {
		if m.Phase(ph).Count == 0 {
			t.Errorf("phase %s never observed; the model comparison is vacuous", ph)
		}
	}
}

func opOf(write bool) trace.Op {
	if write {
		return trace.OpWrite
	}
	return trace.OpRead
}
