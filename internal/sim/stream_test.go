package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// streamTestOptions is the shared base of the streamed-vs-eager equivalence
// runs: a mixed read/write workload small enough to replay in every
// admission mode under -race.
func streamTestOptions(scheme Scheme) Options {
	return Options{
		Scheme:           scheme,
		Profile:          workload.Financial1().Scale(64 << 20),
		Requests:         6_000,
		Seed:             7,
		ResetAfterWarmup: 600,
	}
}

// writeBinaryTrace serializes reqs into a temp binary trace file and returns
// its path.
func writeBinaryTrace(t *testing.T, reqs []trace.Request) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.ftr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := trace.NewBinaryWriter(f, trace.BinaryHeader{Source: trace.FormatNative})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if err := bw.WriteRequest(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStreamedReplayMatchesEager pins the streaming engine's core contract:
// replaying a trace through TraceStream — from a binary file, in batches —
// produces bit-for-bit the metrics, trace statistics, per-shard results and
// merged digest of the eager slice replay, across every admission mode.
func TestStreamedReplayMatchesEager(t *testing.T) {
	base := streamTestOptions(SchemeTPFTL)
	reqs, err := workload.Generate(base.Profile, base.Requests, base.Seed)
	if err != nil {
		t.Fatal(err)
	}
	path := writeBinaryTrace(t, reqs)

	modes := []struct {
		name string
		mod  func(*Options)
	}{
		{"serial-qd1", func(o *Options) {}},
		{"qd8-4ch", func(o *Options) { o.QueueDepth = 8; o.Channels = 4; o.Dies = 2 }},
		{"open-loop", func(o *Options) { o.OpenLoop = true }},
		{"precondition", func(o *Options) { o.Precondition = 0.5 }},
		{"shards2", func(o *Options) { o.Shards = 2; o.Clients = 4 }},
		{"shards2-qd8", func(o *Options) { o.Shards = 2; o.QueueDepth = 8; o.Precondition = 0.5 }},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			eagerOpt := streamTestOptions(SchemeTPFTL)
			eagerOpt.Trace = reqs
			mode.mod(&eagerOpt)
			eager, err := Run(eagerOpt)
			if err != nil {
				t.Fatalf("eager: %v", err)
			}

			// Stream from the binary file, with a batch size that does not
			// divide the trace length so batches straddle every boundary.
			s, err := trace.OpenBinary(path)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			streamOpt := streamTestOptions(SchemeTPFTL)
			streamOpt.TraceStream = s
			streamOpt.StreamBatch = 509
			mode.mod(&streamOpt)
			streamed, err := Run(streamOpt)
			if err != nil {
				t.Fatalf("streamed: %v", err)
			}

			if !reflect.DeepEqual(streamed.M, eager.M) {
				t.Errorf("streamed metrics diverge from eager:\n got  %+v\n want %+v", streamed.M, eager.M)
			}
			if streamed.TraceStats != eager.TraceStats {
				t.Errorf("streamed trace stats diverge:\n got  %+v\n want %+v", streamed.TraceStats, eager.TraceStats)
			}
			if streamed.Digest != eager.Digest {
				t.Errorf("streamed digest %#x != eager %#x", streamed.Digest, eager.Digest)
			}
			if !reflect.DeepEqual(streamed.Shards, eager.Shards) {
				t.Errorf("per-shard results diverge:\n got  %+v\n want %+v", streamed.Shards, eager.Shards)
			}
		})
	}
}

// TestStreamedReplaySliceIterator covers the in-memory iterator adapter:
// streaming a slice must equal replaying it eagerly (no preconditioning, so
// the footprint heuristics — which the slice adapter cannot hint — do not
// enter).
func TestStreamedReplaySliceIterator(t *testing.T) {
	base := streamTestOptions(SchemeDFTL)
	reqs, err := workload.Generate(base.Profile, base.Requests, base.Seed)
	if err != nil {
		t.Fatal(err)
	}
	eagerOpt := base
	eagerOpt.Trace = reqs
	eager, err := Run(eagerOpt)
	if err != nil {
		t.Fatal(err)
	}
	streamOpt := base
	streamOpt.TraceStream = trace.NewSliceIterator(reqs)
	streamOpt.StreamBatch = 333
	streamed, err := Run(streamOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed.M, eager.M) {
		t.Fatalf("streamed metrics diverge from eager:\n got  %+v\n want %+v", streamed.M, eager.M)
	}
	if streamed.TraceStats != eager.TraceStats {
		t.Fatalf("streamed trace stats diverge:\n got  %+v\n want %+v", streamed.TraceStats, eager.TraceStats)
	}
}

// memWatchIter passes batches through while periodically forcing a GC and
// recording the live-heap high water, so a test can assert that replaying a
// longer trace does not grow resident memory.
type memWatchIter struct {
	it      trace.Iterator
	batches int
	every   int
	peak    uint64
}

func (m *memWatchIter) Next(batch []trace.Request) (int, error) {
	n, err := m.it.Next(batch)
	m.batches++
	if m.batches%m.every == 0 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > m.peak {
			m.peak = ms.HeapAlloc
		}
	}
	return n, err
}

// streamSyntheticTrace writes n sequential-read requests over a fixed
// footprint to a binary temp file without materializing them.
func streamSyntheticTrace(t *testing.T, n int, footPages int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "synthetic.ftr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := trace.NewBinaryWriter(f, trace.BinaryHeader{Source: trace.FormatNative, PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const span = 8
	for i := 0; i < n; i++ {
		start := (int64(i) * span) % (footPages - span)
		if err := bw.WriteRequest(trace.Request{
			Arrival: int64(i),
			Offset:  start * 4096,
			Length:  span * 4096,
			Op:      trace.OpRead,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStreamBoundedMemory is the trace-size-independence assertion: the
// live-heap high water of a streamed replay must not grow with the trace. An
// 8× longer trace over the same footprint gets a modest absolute slack, not
// a proportional one — if replay buffered the trace, the long run would
// exceed it by tens of MB.
func TestStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-profiled replay is slow under -short")
	}
	const footPages = 4096 // 16 MB footprint inside the 64 MB space
	run := func(n int) uint64 {
		path := streamSyntheticTrace(t, n, footPages)
		s, err := trace.OpenBinary(path)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		mw := &memWatchIter{it: s, every: 8}
		_, err = Run(Options{
			Scheme:        SchemeTPFTL,
			Profile:       workload.Financial1().Scale(64 << 20),
			TraceStream:   mw,
			StreamBatch:   4096,
			CacheFraction: 1.0 / 128,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mw.peak
	}
	shortPeak := run(100_000)
	longPeak := run(800_000)
	t.Logf("live-heap high water: short=%d KB long=%d KB", shortPeak>>10, longPeak>>10)
	// 800k extra requests would be ≥25 MB if buffered; allow 8 MB of noise.
	const slack = 8 << 20
	if longPeak > shortPeak+slack {
		t.Fatalf("8× longer trace grew the live-heap high water from %d to %d bytes (> %d slack): replay is not streaming",
			shortPeak, longPeak, slack)
	}
}
