package sim

import "testing"

// TestExperimentDriversTinyScale exercises every per-figure driver at a
// tiny scale so their plumbing (sampling, aggregation, normalization) is
// covered even when the heavy paper-scale suite is skipped.
func TestExperimentDriversTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("several small runs")
	}
	e := ExpConfig{Requests: 12_000, MSRScale: 32 << 20, Seed: 7, Warmup: 1_200, Precondition: 1}

	// Fig. 1 samples every 10,000 page accesses (the paper's interval), so
	// the run must span at least that many.
	dist, err := e.RunCacheDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 4 {
		t.Fatalf("distribution results = %d", len(dist))
	}
	for _, r := range dist {
		if len(r.AvgEntriesPerTP) == 0 {
			t.Fatalf("%s: no Fig. 1a samples", r.Workload)
		}
		if len(r.DirtyCDF) > 0 {
			last := r.DirtyCDF[len(r.DirtyCDF)-1]
			if last < 0.999 || last > 1.001 {
				t.Fatalf("%s: CDF does not end at 1 (%v)", r.Workload, last)
			}
			for i := 1; i < len(r.DirtyCDF); i++ {
				if r.DirtyCDF[i] < r.DirtyCDF[i-1] {
					t.Fatalf("%s: CDF not monotone at %d", r.Workload, i)
				}
			}
		}
	}

	spatial, err := e.RunSpatialLocality()
	if err != nil {
		t.Fatal(err)
	}
	if len(spatial.TPNodes) == 0 || len(spatial.TPNodes) != len(spatial.PageAccesses) {
		t.Fatalf("spatial series: %d nodes, %d accesses", len(spatial.TPNodes), len(spatial.PageAccesses))
	}

	util, err := e.RunSpaceUtilization()
	if err != nil {
		t.Fatal(err)
	}
	if len(util) == 0 {
		t.Fatal("no utilization cells")
	}
	for _, c := range util {
		// The compression bound: never beyond 8B/6B − 1 ≈ 33% plus noise.
		if c.Improvement > 0.40 || c.Improvement < -0.05 {
			t.Fatalf("%s@%v: improvement %.3f out of plausible range", c.Workload, c.Fraction, c.Improvement)
		}
	}

	sweep, err := ExpConfig{
		Requests: 2_000, MSRScale: 32 << 20, Seed: 7, Warmup: 200, Precondition: 1,
	}.RunCacheSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 4*len(SweepFractions()) {
		t.Fatalf("sweep cells = %d", len(sweep))
	}
	SortSweep(sweep)
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Workload == sweep[i-1].Workload && sweep[i].Fraction <= sweep[i-1].Fraction {
			t.Fatal("SortSweep did not order fractions")
		}
	}
}

func TestFmtPct(t *testing.T) {
	if got := FmtPct(0.1234); got != "12.3%" {
		t.Fatalf("FmtPct = %q", got)
	}
}
