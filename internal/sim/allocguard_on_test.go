//go:build !race && !ftlsan

package sim

// allocGuardsEnabled arms the AllocsPerRun regression guards (see
// internal/core/allocguard_on_test.go for the rationale). Race-detector and
// ftlsan builds disable them: both instrument every operation with
// allocations the production build does not perform.
const allocGuardsEnabled = true
