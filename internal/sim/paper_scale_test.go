package sim

import (
	"testing"

	"repro/internal/workload"
)

// TestPaperScaleShapes runs the four workloads at (near-)paper scale and
// asserts the comparative shapes of the paper's Figs. 6/7a. It is the
// repository's heaviest test (~20 s); -short skips it.
func TestPaperScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale comparison (~20s)")
	}
	profiles := []workload.Profile{
		workload.Financial1(),
		workload.Financial2(),
		workload.MSRts().Scale(2 << 30),
		workload.MSRsrc().Scale(2 << 30),
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res := map[Scheme]*Result{}
			for _, s := range Schemes() {
				r, err := Run(Options{
					Scheme: s, Profile: p, Requests: 300_000, Seed: 7,
					ResetAfterWarmup: 50_000, Precondition: 1.5,
				})
				if err != nil {
					t.Fatalf("%s: %v", s, err)
				}
				res[s] = r
				m := r.M
				t.Logf("%-8s Prd=%.3f Hr=%.3f TW=%-8d TR=%-8d resp=%-13v WA=%.2f erases=%d",
					s, m.Prd(), m.Hr(), m.TransWrites(), m.TransReads(),
					m.AvgResponse(), m.WriteAmplification(), m.FlashErases)
			}
			dftl, tpftl, sftl, opt := res[SchemeDFTL].M, res[SchemeTPFTL].M, res[SchemeSFTL].M, res[SchemeOptimal].M

			// Optimal bounds (Fig. 6: zero translation overhead).
			if opt.Hr() != 1 || opt.TransWrites() != 0 || opt.Prd() != 0 {
				t.Error("optimal FTL shows translation overhead")
			}
			// Fig. 6a: TPFTL's Prd is far below DFTL's (<10% absolute here;
			// the paper reports <4% at its trace lengths).
			if tpftl.Prd() > 0.15 || tpftl.Prd() >= dftl.Prd() {
				t.Errorf("TPFTL Prd %.3f vs DFTL %.3f", tpftl.Prd(), dftl.Prd())
			}
			// Fig. 6b: TPFTL's hit ratio beats DFTL's.
			if tpftl.Hr() <= dftl.Hr() {
				t.Errorf("TPFTL Hr %.3f not above DFTL %.3f", tpftl.Hr(), dftl.Hr())
			}
			// Fig. 6c/6d: fewer translation page reads and writes.
			if tpftl.TransWrites() >= dftl.TransWrites() {
				t.Errorf("TPFTL TW %d not below DFTL %d", tpftl.TransWrites(), dftl.TransWrites())
			}
			if tpftl.TransReads() >= dftl.TransReads() {
				t.Errorf("TPFTL TR %d not below DFTL %d", tpftl.TransReads(), dftl.TransReads())
			}
			// Fig. 6e/6f, 7a: response time, WA and erases ordered
			// Optimal ≤ TPFTL ≤ DFTL.
			if tpftl.AvgResponse() > dftl.AvgResponse() {
				t.Errorf("TPFTL resp %v above DFTL %v", tpftl.AvgResponse(), dftl.AvgResponse())
			}
			if opt.AvgResponse() > tpftl.AvgResponse() {
				t.Errorf("Optimal resp %v above TPFTL %v", opt.AvgResponse(), tpftl.AvgResponse())
			}
			if tpftl.WriteAmplification() > dftl.WriteAmplification() {
				t.Errorf("TPFTL WA %.2f above DFTL %.2f", tpftl.WriteAmplification(), dftl.WriteAmplification())
			}
			if tpftl.FlashErases > dftl.FlashErases {
				t.Errorf("TPFTL erases %d above DFTL %d", tpftl.FlashErases, dftl.FlashErases)
			}

			switch p.Name {
			case "Financial1", "Financial2":
				// Fig. 6a: S-FTL's dirty buffer keeps its Prd below DFTL's
				// on random-dominant workloads.
				if sftl.Prd() >= dftl.Prd() {
					t.Errorf("S-FTL Prd %.3f not below DFTL %.3f on random workload", sftl.Prd(), dftl.Prd())
				}
			case "MSR-ts", "MSR-src":
				// Fig. 6b: TPFTL matches S-FTL's hit ratio on MSR.
				if tpftl.Hr() < sftl.Hr()-0.05 {
					t.Errorf("TPFTL Hr %.3f well below S-FTL %.3f on MSR", tpftl.Hr(), sftl.Hr())
				}
			}
		})
	}
}
