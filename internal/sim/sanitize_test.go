//go:build ftlsan

package sim

import (
	"testing"
	"time"

	"repro/internal/ftl"
	"repro/internal/ftl/blockftl"
	"repro/internal/ftl/fast"
	"repro/internal/ftl/hybrid"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSanitizerRunsPerScheme serves a short seeded workload through every
// translator scheme and asserts the ftlsan per-operation hooks actually ran:
// the global check counter must advance during each run.
func TestSanitizerRunsPerScheme(t *testing.T) {
	if !ftl.SanitizerEnabled {
		t.Fatal("test built without -tags ftlsan")
	}
	schemes := append(Schemes(), SchemeCDFTL, SchemeZFTL)
	for _, s := range schemes {
		t.Run(string(s), func(t *testing.T) {
			before := ftl.SanitizerChecks()
			r, err := Run(Options{
				Scheme:   s,
				Profile:  workload.Financial1().Scale(16 << 20),
				Requests: 400,
				Seed:     11,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.M.Requests != 400 {
				t.Fatalf("requests = %d, want 400", r.M.Requests)
			}
			if got := ftl.SanitizerChecks(); got <= before {
				t.Fatalf("sanitizer checks did not advance: %d -> %d", before, got)
			}
		})
	}
}

// TestSanitizerRunsStandaloneDevices covers the devices that do not go
// through ftl.Device — hybrid, FAST, and the block-level FTL gate their own
// Serve with ftl.SanitizeCheck.
func TestSanitizerRunsStandaloneDevices(t *testing.T) {
	cfg := ftl.DefaultConfig(8 << 20)

	type server interface {
		Serve(trace.Request) (time.Duration, error)
	}
	devices := []struct {
		name  string
		build func() (server, error)
	}{
		{"hybrid", func() (server, error) { return hybrid.New(hybrid.Config{Device: cfg}) }},
		{"fast", func() (server, error) { return fast.New(fast.Config{Device: cfg}) }},
		{"blockftl", func() (server, error) { return blockftl.New(cfg) }},
	}
	for _, d := range devices {
		t.Run(d.name, func(t *testing.T) {
			dev, err := d.build()
			if err != nil {
				t.Fatal(err)
			}
			before := ftl.SanitizerChecks()
			page := int64(cfg.PageSize)
			for i := int64(0); i < 64; i++ {
				req := trace.Request{Arrival: i * 1000, Offset: (i % 37) * page, Length: page, Op: trace.OpWrite}
				if _, err := dev.Serve(req); err != nil {
					t.Fatal(err)
				}
			}
			if got := ftl.SanitizerChecks(); got <= before {
				t.Fatalf("sanitizer checks did not advance: %d -> %d", before, got)
			}
		})
	}
}
