package ssd

import (
	"fmt"
	"time"

	"repro/internal/obs/live"
	"repro/internal/trace"
)

// Server is the device-side contract the frontend drives: serve one request
// admitted at the given simulated time and report its completion time.
// Logical effects apply in admission order (the FTL is a sequential state
// machine); only the timing of requests overlaps.
type Server interface {
	ServeAt(req trace.Request, admit time.Duration) (complete time.Duration, err error)
}

// Frontend is the request-admission queue in front of a device. Two modes:
//
//   - open loop (QueueDepth == 0): every request is admitted at its trace
//     arrival time, regardless of how many are still in flight — the
//     backend's die windows absorb the burst. This replays
//     trace.Request.Arrival semantics faithfully.
//   - closed loop (QueueDepth == N > 0): at most N requests are in flight;
//     request i+N is admitted at the later of its arrival and the earliest
//     completion among the N outstanding — the standard QD-N driver.
//
// Closed loop at depth 1 is the scalar-clock behavior of Device.Serve, and
// the default everywhere for compatibility with the pre-scheduler baselines.
type Frontend struct {
	// QueueDepth bounds the in-flight requests; zero or negative selects
	// open loop.
	QueueDepth int
	// Live, when non-nil, receives the frontend's queueing statistics after
	// each admission (atomic stores into the shard's telemetry cell; the
	// admission schedule is unaffected).
	Live *live.Cell
}

// FrontendStats summarizes one replay's queueing behavior. The zero value
// is the well-defined result of an empty replay: no admissions, zero
// depths, MeanDepth 0. Open-loop runs report real observations too — the
// in-flight count at each admission, however deep the burst — not
// sentinels.
type FrontendStats struct {
	Admitted int64
	// MaxDepth is the largest in-flight count observed at any admission.
	MaxDepth int64
	// DepthSum accumulates the in-flight count (the just-admitted request
	// included) at every admission; MeanDepth is the ratio.
	DepthSum int64
}

// MeanDepth returns the mean in-flight depth at admission. An empty replay
// reports 0, never NaN — divide-by-zero is guarded here so every caller
// inherits the guard.
func (s FrontendStats) MeanDepth() float64 {
	if s.Admitted == 0 {
		return 0
	}
	return float64(s.DepthSum) / float64(s.Admitted)
}

// Admitter is the stateful form of a frontend replay: the admission queue
// survives between calls, so a caller can feed requests one batch at a time
// — a streamed trace — and still get exactly the schedule one Frontend.Run
// over the concatenated stream would produce. Construct with NewAdmitter;
// the zero value is a valid open-loop admitter.
type Admitter struct {
	qd   int
	q    EventQueue
	st   FrontendStats
	live *live.Cell
}

// NewAdmitter returns an admitter with the given queue depth (zero or
// negative selects open loop, mirroring Frontend).
func NewAdmitter(queueDepth int) *Admitter {
	return &Admitter{qd: queueDepth}
}

// SetLive attaches (or with nil, detaches) a telemetry cell: the queueing
// statistics are published into it after every admission so live scrapes
// see current depth numbers. Admission decisions are unchanged.
func (a *Admitter) SetLive(c *live.Cell) { a.live = c }

// Admit admits one request under the queue-depth policy and serves it on s.
// Requests must arrive in non-decreasing trace order across all calls.
func (a *Admitter) Admit(s Server, r trace.Request) (time.Duration, error) {
	arrival := time.Duration(r.Arrival)
	admit := arrival
	if a.qd > 0 {
		// Closed loop: wait for a slot. Completions already in the
		// past free their slots without delaying admission.
		for a.q.Len() >= a.qd {
			e := a.q.Pop()
			if e.Time > admit {
				admit = e.Time
			}
		}
	}
	a.q.DrainThrough(admit)
	complete, err := s.ServeAt(r, admit)
	if err != nil {
		return 0, err
	}
	a.st.Admitted++
	a.q.Push(Event{Time: complete, Seq: a.st.Admitted})
	depth := int64(a.q.Len())
	a.st.DepthSum += depth
	if depth > a.st.MaxDepth {
		a.st.MaxDepth = depth
	}
	if c := a.live; c != nil {
		c.SetQueueStats(a.st.Admitted, a.st.DepthSum, a.st.MaxDepth)
	}
	return complete, nil
}

// Stats returns the queueing statistics accumulated so far.
func (a *Admitter) Stats() FrontendStats { return a.st }

// Run replays reqs against s under the frontend's admission policy and
// returns the queueing stats. Requests must be in non-decreasing arrival
// order (trace order). It is the eager form of an Admitter fed the same
// stream.
func (f Frontend) Run(s Server, reqs []trace.Request) (FrontendStats, error) {
	a := NewAdmitter(f.QueueDepth)
	a.SetLive(f.Live)
	for i := range reqs {
		if _, err := a.Admit(s, reqs[i]); err != nil {
			return a.Stats(), fmt.Errorf("ssd: request %d: %w", i, err)
		}
	}
	return a.Stats(), nil
}
