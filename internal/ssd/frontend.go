package ssd

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Server is the device-side contract the frontend drives: serve one request
// admitted at the given simulated time and report its completion time.
// Logical effects apply in admission order (the FTL is a sequential state
// machine); only the timing of requests overlaps.
type Server interface {
	ServeAt(req trace.Request, admit time.Duration) (complete time.Duration, err error)
}

// Frontend is the request-admission queue in front of a device. Two modes:
//
//   - open loop (QueueDepth == 0): every request is admitted at its trace
//     arrival time, regardless of how many are still in flight — the
//     backend's die windows absorb the burst. This replays
//     trace.Request.Arrival semantics faithfully.
//   - closed loop (QueueDepth == N > 0): at most N requests are in flight;
//     request i+N is admitted at the later of its arrival and the earliest
//     completion among the N outstanding — the standard QD-N driver.
//
// Closed loop at depth 1 is the scalar-clock behavior of Device.Serve, and
// the default everywhere for compatibility with the pre-scheduler baselines.
type Frontend struct {
	// QueueDepth bounds the in-flight requests; zero or negative selects
	// open loop.
	QueueDepth int
}

// FrontendStats summarizes one replay's queueing behavior. The zero value
// is the well-defined result of an empty replay: no admissions, zero
// depths, MeanDepth 0. Open-loop runs report real observations too — the
// in-flight count at each admission, however deep the burst — not
// sentinels.
type FrontendStats struct {
	Admitted int64
	// MaxDepth is the largest in-flight count observed at any admission.
	MaxDepth int64
	// DepthSum accumulates the in-flight count (the just-admitted request
	// included) at every admission; MeanDepth is the ratio.
	DepthSum int64
}

// MeanDepth returns the mean in-flight depth at admission. An empty replay
// reports 0, never NaN — divide-by-zero is guarded here so every caller
// inherits the guard.
func (s FrontendStats) MeanDepth() float64 {
	if s.Admitted == 0 {
		return 0
	}
	return float64(s.DepthSum) / float64(s.Admitted)
}

// Run replays reqs against s under the frontend's admission policy and
// returns the queueing stats. Requests must be in non-decreasing arrival
// order (trace order).
func (f Frontend) Run(s Server, reqs []trace.Request) (FrontendStats, error) {
	var st FrontendStats
	var q EventQueue
	for i := range reqs {
		arrival := time.Duration(reqs[i].Arrival)
		admit := arrival
		if f.QueueDepth > 0 {
			// Closed loop: wait for a slot. Completions already in the
			// past free their slots without delaying admission.
			for q.Len() >= f.QueueDepth {
				e := q.Pop()
				if e.Time > admit {
					admit = e.Time
				}
			}
		}
		q.DrainThrough(admit)
		complete, err := s.ServeAt(reqs[i], admit)
		if err != nil {
			return st, fmt.Errorf("ssd: request %d: %w", i, err)
		}
		st.Admitted++
		q.Push(Event{Time: complete, Seq: st.Admitted})
		depth := int64(q.Len())
		st.DepthSum += depth
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
	}
	return st, nil
}
