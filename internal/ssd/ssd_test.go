package ssd

import (
	"testing"
	"time"

	"repro/internal/trace"
)

const (
	tRead  = 25 * time.Microsecond
	tProg  = 200 * time.Microsecond
	tErase = 1500 * time.Microsecond
)

func TestSingleDieSerializes(t *testing.T) {
	s := NewScheduler(1, 1)
	s.BeginRequest(0)
	s.Issue(0, tRead)
	s.BreakChain() // independent sub-op, but the single die still serializes
	s.Issue(0, tProg)
	end := s.EndRequest()
	if want := tRead + tProg; end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if s.Now() != end {
		t.Fatalf("Now = %v, want %v", s.Now(), end)
	}
}

func TestIndependentChainsOverlapAcrossDies(t *testing.T) {
	s := NewScheduler(4, 1)
	s.BeginRequest(0)
	for die := 0; die < 4; die++ {
		s.BreakChain()
		s.Issue(die, tProg)
	}
	if end := s.EndRequest(); end != tProg {
		t.Fatalf("4 independent programs on 4 dies = %v, want %v", end, tProg)
	}
}

func TestChainedOpsRespectDependency(t *testing.T) {
	s := NewScheduler(4, 1)
	s.BeginRequest(0)
	s.Issue(0, tRead) // translation read on die 0 ...
	s.Issue(1, tRead) // ... gates the data read even on an idle die
	if end := s.EndRequest(); end != 2*tRead {
		t.Fatalf("chained reads = %v, want %v", end, 2*tRead)
	}
}

func TestDieOccupancyDelaysLaterRequest(t *testing.T) {
	s := NewScheduler(2, 1)
	s.BeginRequest(0)
	s.Issue(0, tErase)
	s.EndRequest()
	// Admitted at 0 but die 0 is busy until tErase; die 1 is free.
	s.BeginRequest(0)
	s.Issue(1, tRead)
	s.Issue(0, tRead)
	if end := s.EndRequest(); end != tErase+tRead {
		t.Fatalf("end = %v, want %v", end, tErase+tRead)
	}
}

func TestBusyAccounting(t *testing.T) {
	s := NewScheduler(2, 2) // dies 0..3; channel 0 serves dies 0,2; channel 1 serves 1,3
	s.BeginRequest(0)
	s.Issue(0, tRead)
	s.Issue(2, tProg)
	s.Issue(3, tErase)
	s.EndRequest()
	if got := s.ChannelBusy(0); got != tRead+tProg {
		t.Fatalf("channel 0 busy = %v, want %v", got, tRead+tProg)
	}
	if got := s.ChannelBusy(1); got != tErase {
		t.Fatalf("channel 1 busy = %v, want %v", got, tErase)
	}
	if got := s.DieBusy(1); got != 0 {
		t.Fatalf("die 1 busy = %v, want 0", got)
	}
}

func TestEventHashOrderSensitive(t *testing.T) {
	a := NewScheduler(2, 1)
	a.BeginRequest(0)
	a.Issue(0, tRead)
	a.Issue(1, tProg)
	a.EndRequest()

	b := NewScheduler(2, 1)
	b.BeginRequest(0)
	b.Issue(1, tProg)
	b.Issue(0, tRead)
	b.EndRequest()

	if a.EventHash() == b.EventHash() {
		t.Fatal("different schedules produced equal event hashes")
	}

	c := NewScheduler(2, 1)
	c.BeginRequest(0)
	c.Issue(0, tRead)
	c.Issue(1, tProg)
	c.EndRequest()
	if a.EventHash() != c.EventHash() {
		t.Fatal("identical schedules produced different event hashes")
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	q.Push(Event{Time: 30, Seq: 1})
	q.Push(Event{Time: 10, Seq: 2})
	q.Push(Event{Time: 10, Seq: 3})
	q.Push(Event{Time: 20, Seq: 4})
	if e, ok := q.Peek(); !ok || e.Time != 10 || e.Seq != 2 {
		t.Fatalf("peek = %+v", e)
	}
	var got []int64
	for q.Len() > 0 {
		got = append(got, q.Pop().Seq)
	}
	want := []int64{2, 3, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// fakeServer serves each request with one fixed-latency op on a round-robin
// die.
type fakeServer struct {
	s   *Scheduler
	lat time.Duration
	i   int
}

func (f *fakeServer) ServeAt(_ trace.Request, admit time.Duration) (time.Duration, error) {
	f.s.BeginRequest(admit)
	f.s.Issue(f.i%f.s.Dies(), f.lat)
	f.i++
	return f.s.EndRequest(), nil
}

func TestFrontendClosedLoopDepthBound(t *testing.T) {
	sched := NewScheduler(4, 1)
	srv := &fakeServer{s: sched, lat: tProg}
	reqs := make([]trace.Request, 16)
	for i := range reqs {
		reqs[i] = trace.Request{Offset: int64(i) * 4096, Length: 4096}
	}
	st, err := Frontend{QueueDepth: 4}.Run(srv, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxDepth > 4 {
		t.Fatalf("closed loop exceeded depth: %d", st.MaxDepth)
	}
	// 16 programs over 4 dies, 4 in flight: 4 waves of tProg.
	if want := 4 * tProg; sched.Now() != want {
		t.Fatalf("makespan = %v, want %v", sched.Now(), want)
	}
}

func TestFrontendQD1MatchesScalarClock(t *testing.T) {
	sched := NewScheduler(4, 1)
	srv := &fakeServer{s: sched, lat: tProg}
	reqs := make([]trace.Request, 8)
	for i := range reqs {
		reqs[i] = trace.Request{Offset: int64(i) * 4096, Length: 4096}
	}
	if _, err := (Frontend{QueueDepth: 1}).Run(srv, reqs); err != nil {
		t.Fatal(err)
	}
	// One at a time: no overlap even with 4 dies available.
	if want := 8 * tProg; sched.Now() != want {
		t.Fatalf("makespan = %v, want %v", sched.Now(), want)
	}
}

func TestFrontendOpenLoopAdmitsAtArrival(t *testing.T) {
	sched := NewScheduler(4, 1)
	srv := &fakeServer{s: sched, lat: tProg}
	// All arrive at t=0: open loop admits all at once; 8 programs over 4
	// dies finish in 2 waves.
	reqs := make([]trace.Request, 8)
	for i := range reqs {
		reqs[i] = trace.Request{Offset: int64(i) * 4096, Length: 4096}
	}
	st, err := Frontend{}.Run(srv, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * tProg; sched.Now() != want {
		t.Fatalf("makespan = %v, want %v", sched.Now(), want)
	}
	if st.MaxDepth != 8 {
		t.Fatalf("open-loop max depth = %d, want 8", st.MaxDepth)
	}
}
