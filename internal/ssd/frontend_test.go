package ssd

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// TestFrontendZeroRequests pins the empty-replay edge: zero stats and a
// zero (not NaN) mean depth, in every admission mode.
func TestFrontendZeroRequests(t *testing.T) {
	for _, qd := range []int{0, 1, 4} {
		sched := NewScheduler(1, 1)
		srv := &fakeServer{s: sched, lat: tProg}
		st, err := Frontend{QueueDepth: qd}.Run(srv, nil)
		if err != nil {
			t.Fatalf("qd=%d: %v", qd, err)
		}
		if st != (FrontendStats{}) {
			t.Fatalf("qd=%d: empty replay stats = %+v", qd, st)
		}
		if got := st.MeanDepth(); got != 0 || math.IsNaN(got) {
			t.Fatalf("qd=%d: empty replay MeanDepth = %v", qd, got)
		}
		if sched.Now() != 0 {
			t.Fatalf("qd=%d: empty replay advanced the clock to %v", qd, sched.Now())
		}
	}
}

// TestFrontendOpenLoopDepthStats pins the open-loop depth accounting on a
// simultaneous burst: request i is admitted with i earlier requests still
// in flight, so the depths are exactly 1..n.
func TestFrontendOpenLoopDepthStats(t *testing.T) {
	const n = 8
	sched := NewScheduler(1, 1)
	srv := &fakeServer{s: sched, lat: tProg}
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{Offset: int64(i) * 4096, Length: 4096}
	}
	st, err := Frontend{}.Run(srv, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != n || st.MaxDepth != n {
		t.Fatalf("open-loop burst stats = %+v, want admitted=maxdepth=%d", st, n)
	}
	if want := int64(n * (n + 1) / 2); st.DepthSum != want {
		t.Fatalf("open-loop DepthSum = %d, want 1+…+%d = %d", st.DepthSum, n, want)
	}
	if want := float64(n+1) / 2; st.MeanDepth() != want {
		t.Fatalf("open-loop MeanDepth = %v, want %v", st.MeanDepth(), want)
	}
}

// TestFrontendNegativeDepthIsOpenLoop pins the documented contract that a
// non-positive queue depth selects open loop rather than some undefined
// closed loop.
func TestFrontendNegativeDepthIsOpenLoop(t *testing.T) {
	mk := func() []trace.Request {
		reqs := make([]trace.Request, 6)
		for i := range reqs {
			reqs[i] = trace.Request{Offset: int64(i) * 4096, Length: 4096}
		}
		return reqs
	}
	schedNeg := NewScheduler(2, 2)
	stNeg, err := Frontend{QueueDepth: -3}.Run(&fakeServer{s: schedNeg, lat: tProg}, mk())
	if err != nil {
		t.Fatal(err)
	}
	schedOpen := NewScheduler(2, 2)
	stOpen, err := Frontend{}.Run(&fakeServer{s: schedOpen, lat: tProg}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if stNeg != stOpen || schedNeg.Now() != schedOpen.Now() {
		t.Fatalf("negative depth diverges from open loop: %+v vs %+v", stNeg, stOpen)
	}
}

// TestFrontendClosedLoopMeanDepth pins that a saturating QD1 replay sits at
// depth exactly 1 for every admission.
func TestFrontendClosedLoopMeanDepth(t *testing.T) {
	sched := NewScheduler(1, 1)
	srv := &fakeServer{s: sched, lat: tProg}
	reqs := make([]trace.Request, 10)
	for i := range reqs {
		reqs[i] = trace.Request{Offset: int64(i) * 4096, Length: 4096}
	}
	st, err := Frontend{QueueDepth: 1}.Run(srv, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxDepth != 1 || st.MeanDepth() != 1 {
		t.Fatalf("QD1 depth stats = %+v (mean %v), want constant 1", st, st.MeanDepth())
	}
}
