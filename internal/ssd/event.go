package ssd

import (
	"container/heap"
	"time"
)

// Event is one completion event: request seq finished at Time.
type Event struct {
	Time time.Duration
	Seq  int64 // admission sequence number, breaks Time ties deterministically
}

// EventQueue is a min-heap of completion events ordered by time (admission
// sequence breaks ties). It is the simulated clock's event list: the
// frontend admits a new request by popping the earliest completion once the
// queue depth is exhausted, and drains elapsed events to track how many
// requests are in flight at any instant.
type EventQueue struct {
	h eventHeap
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return q.h.Len() }

// Push adds a completion event.
func (q *EventQueue) Push(e Event) { heap.Push(&q.h, e) }

// Pop removes and returns the earliest event. It panics on an empty queue.
func (q *EventQueue) Pop() Event { return heap.Pop(&q.h).(Event) }

// Peek returns the earliest event without removing it.
func (q *EventQueue) Peek() (Event, bool) {
	if q.h.Len() == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// DrainThrough pops every event with Time ≤ t and returns how many were
// drained. The frontend uses it under open-loop admission to count the
// requests still in flight when a new one arrives.
func (q *EventQueue) DrainThrough(t time.Duration) int {
	n := 0
	for q.h.Len() > 0 && q.h[0].Time <= t {
		heap.Pop(&q.h)
		n++
	}
	return n
}

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].Seq < h[j].Seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
