package ssd

import "time"

// Event is one completion event: request seq finished at Time.
type Event struct {
	Time time.Duration
	Seq  int64 // admission sequence number, breaks Time ties deterministically
}

// less orders events by completion time, admission sequence breaking ties.
// (Time, Seq) pairs are unique, so the order is total and a heap pops them
// in exactly one sequence regardless of insertion order.
func (e Event) less(o Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	return e.Seq < o.Seq
}

// EventQueue is a min-heap of completion events ordered by time (admission
// sequence breaks ties). It is the simulated clock's event list: the
// frontend admits a new request by popping the earliest completion once the
// queue depth is exhausted, and drains elapsed events to track how many
// requests are in flight at any instant.
//
// The heap is hand-rolled over a plain []Event rather than container/heap:
// the stdlib interface moves every element through `any`, boxing each Event
// on Push and Pop, and with millions of scheduled events per trace that
// boxing dominated the scheduler's allocation profile. The backing array is
// retained across Pops, so a warmed queue never allocates.
type EventQueue struct {
	h []Event
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Push adds a completion event.
//
//ftl:hotpath
func (q *EventQueue) Push(e Event) {
	q.h = append(q.h, e)
	// Sift up.
	h := q.h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// Pop removes and returns the earliest event. It panics on an empty queue.
//
//ftl:hotpath
func (q *EventQueue) Pop() Event {
	h := q.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	q.h = h[:n] // backing array retained for reuse
	h = q.h
	// Sift down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h[right].less(h[left]) {
			min = right
		}
		if !h[min].less(h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// Peek returns the earliest event without removing it.
func (q *EventQueue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// DrainThrough pops every event with Time ≤ t and returns how many were
// drained. The frontend uses it under open-loop admission to count the
// requests still in flight when a new one arrives.
//
//ftl:hotpath
func (q *EventQueue) DrainThrough(t time.Duration) int {
	n := 0
	for len(q.h) > 0 && q.h[0].Time <= t {
		q.Pop()
		n++
	}
	return n
}
