// Package ssd models the parallel backend of a multi-channel SSD: an
// event-driven simulated clock over channels × dies, and a frontend queue
// that admits requests open-loop (by trace arrival time) or closed-loop
// (bounded queue depth).
//
// The flash chip (internal/flash) stays a pure state machine and the FTL
// (internal/ftl) stays a sequential program; this package owns *time*. Every
// flash operation the device issues is labelled with the die its block lives
// on, and the Scheduler assigns it a start time that respects two
// constraints:
//
//   - die occupancy: a die executes one operation at a time, so operations
//     on the same die serialize behind its busy-until window;
//   - intra-request dependency: operations in one dependency chain (the
//     translation read that resolves a page, then the data access; a GC run
//     blocking the write that triggered it) start only after their
//     predecessor completes.
//
// Operations on different dies with no dependency between them overlap, so
// a request striped across channels — or several requests in flight under a
// deep queue — finishes in the max, not the sum, of its parts. Completed
// requests retire through a min-heap of completion events (EventQueue),
// which the frontend uses to admit the next request the moment a slot
// frees, and from which the device's clock (latest retired completion)
// derives.
//
// Determinism: the simulation never consults wall time or shared mutable
// state; the same request sequence against the same geometry produces the
// same schedule bit-for-bit. Scheduler.EventHash folds every (die, start,
// end) triple into a hash so tests can assert two runs scheduled
// identically, not just that their summary metrics agree.
//
// Compatibility rule: with 1 channel × 1 die and queue depth 1 every
// operation serializes on the single die in issue order, which makes each
// request's span equal the sum of its operation latencies — exactly the
// scalar-clock model this package replaced. The golden tests in
// internal/ftl and internal/sim hold that equality bit-for-bit.
package ssd

import (
	"time"

	"repro/internal/obs"
)

// Scheduler is the event-driven clock of one device. It tracks per-die
// busy-until windows, the dependency chain of the request being served, and
// per-channel busy-time accounting.
//
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	channels int
	dies     int // total dies = channels × dies-per-channel

	dieFree []time.Duration // per-die busy-until window
	dieBusy []time.Duration // per-die cumulative busy time

	admit   time.Duration // admission time of the request being served
	chain   time.Duration // completion of the chain's latest operation
	reqEnd  time.Duration // completion of the request's latest operation
	retired time.Duration // latest completion among finished requests

	ops int64  // operations scheduled (all requests)
	sum uint64 // order-sensitive FNV fold of every scheduled op

	// tracer, when non-nil, receives every scheduled operation as a span;
	// parent is the trace id of the current chain's latest operation, so
	// spans record the dependency edge that serialized them. Tracing reads
	// the schedule and never changes it.
	tracer *obs.Tracer
	parent int64
}

// NewScheduler builds a scheduler for channels × diesPerChannel dies.
// Non-positive counts read as 1.
func NewScheduler(channels, diesPerChannel int) *Scheduler {
	if channels <= 0 {
		channels = 1
	}
	if diesPerChannel <= 0 {
		diesPerChannel = 1
	}
	n := channels * diesPerChannel
	return &Scheduler{
		channels: channels,
		dies:     n,
		dieFree:  make([]time.Duration, n),
		dieBusy:  make([]time.Duration, n),
		sum:      1469598103934665603, // FNV-1a offset basis
	}
}

// Channels returns the channel count.
func (s *Scheduler) Channels() int { return s.channels }

// Dies returns the total die count.
func (s *Scheduler) Dies() int { return s.dies }

// Now returns the device clock: the completion time of the latest retired
// request.
func (s *Scheduler) Now() time.Duration { return s.retired }

// Ops returns the number of operations scheduled so far.
func (s *Scheduler) Ops() int64 { return s.ops }

// SetTracer attaches (or with nil, detaches) a span tracer. Every scheduled
// operation is then also emitted as a Chrome trace_event span on its die's
// track, with the causal parent that serialized it.
func (s *Scheduler) SetTracer(t *obs.Tracer) { s.tracer = t }

// BeginRequest opens a request admitted at the given time. Subsequent
// Issue calls chain from it until BreakChain or EndRequest.
func (s *Scheduler) BeginRequest(admit time.Duration) {
	s.admit, s.chain, s.reqEnd = admit, admit, admit
	s.parent = 0
}

// BreakChain starts a new dependency chain at the request's admission time.
// The device calls it between per-page sub-operations of one request: pages
// have no data dependency on each other, so their flash operations may
// overlap when striped across different dies.
func (s *Scheduler) BreakChain() {
	s.chain = s.admit
	s.parent = 0
}

// Issue schedules one operation of latency lat on die. It starts at the
// later of the chain's ready time and the die's busy-until window, occupies
// the die for lat, extends the chain, and returns the completion time.
//
//ftl:hotpath
func (s *Scheduler) Issue(die int, lat time.Duration) time.Duration {
	return s.IssueOp(die, lat, obs.OpUnknown)
}

// IssueOp is Issue with an operation label for the span trace. The label
// affects only tracing: schedule, metrics, and EventHash are identical for
// every op value.
//
//ftl:hotpath
func (s *Scheduler) IssueOp(die int, lat time.Duration, op obs.Op) time.Duration {
	start := s.chain
	if s.dieFree[die] > start {
		start = s.dieFree[die]
	}
	end := start + lat
	s.dieFree[die] = end
	s.dieBusy[die] += lat
	s.chain = end
	if end > s.reqEnd {
		s.reqEnd = end
	}
	s.ops++
	s.record(die, start, end)
	if t := s.tracer; t != nil {
		s.parent = t.FlashOp(op, die, die%s.channels, start, end, s.parent)
	}
	return end
}

// EndRequest retires the open request and returns its completion time (the
// max over its operations' completions; the admission time if it issued no
// flash operation). The device clock never moves backwards: out-of-order
// completions under deep queues keep the latest retirement.
func (s *Scheduler) EndRequest() time.Duration {
	if s.reqEnd > s.retired {
		s.retired = s.reqEnd
	}
	return s.reqEnd
}

// DieBusy returns the cumulative busy time of die.
func (s *Scheduler) DieBusy(die int) time.Duration { return s.dieBusy[die] }

// ChannelBusy returns the cumulative busy time of channel: the sum over its
// dies. Die d belongs to channel d mod Channels, matching
// flash.Config.ChannelOfDie.
func (s *Scheduler) ChannelBusy(ch int) time.Duration {
	var sum time.Duration
	for d := ch; d < s.dies; d += s.channels {
		sum += s.dieBusy[d]
	}
	return sum
}

// record folds one scheduled operation into the event hash (an FNV-style
// xor-multiply over the (die, start, end) words). The fold is
// order-sensitive: the same operation set in a different schedule order
// yields a different EventHash.
//
//ftl:hotpath
func (s *Scheduler) record(die int, start, end time.Duration) {
	s.sum = fnvWord(s.sum, uint64(die))
	s.sum = fnvWord(s.sum, uint64(start))
	s.sum = fnvWord(s.sum, uint64(end))
}

// EventHash returns a deterministic, order-sensitive fold of every
// (die, start, end) triple scheduled so far. Two runs with equal hashes
// scheduled the same events in the same order — the scheduler-determinism
// property the tests assert across runs and processes.
func (s *Scheduler) EventHash() uint64 { return s.sum }

// fnvWord folds one 64-bit word into the hash: xor, then the FNV prime
// multiply, then a shift-xor to diffuse the high bits back down. One fold per
// word instead of FNV-1a's one per byte — the byte loop was the single
// hottest frame in the scheduler profile (it runs three times per flash
// operation), and the tests need only run-to-run equality plus
// order-sensitivity, both of which the word-level fold preserves.
func fnvWord(h, v uint64) uint64 {
	h = (h ^ v) * 1099511628211
	return h ^ h>>32
}
