package ssd

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestEventQueueModel drives the hand-rolled heap with random interleaved
// pushes and pops and checks every pop against a sorted-slice model. The
// (Time, Seq) key is a total order, so the pop sequence is fully determined.
func TestEventQueueModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q EventQueue
	var model []Event
	seq := int64(0)
	for step := 0; step < 5000; step++ {
		if q.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model %d", step, q.Len(), len(model))
		}
		if len(model) == 0 || rng.Intn(3) != 0 {
			e := Event{Time: time.Duration(rng.Intn(50)), Seq: seq}
			seq++
			q.Push(e)
			model = append(model, e)
			sort.Slice(model, func(i, j int) bool { return model[i].less(model[j]) })
			continue
		}
		if peek, ok := q.Peek(); !ok || peek != model[0] {
			t.Fatalf("step %d: Peek = %v %v, want %v", step, peek, ok, model[0])
		}
		if got := q.Pop(); got != model[0] {
			t.Fatalf("step %d: Pop = %v, want %v", step, got, model[0])
		}
		model = model[1:]
	}
	// Drain and verify the tail is sorted too.
	for _, want := range model {
		if got := q.Pop(); got != want {
			t.Fatalf("drain: Pop = %v, want %v", got, want)
		}
	}
}

// TestEventQueueDrainThrough checks the elapsed-event drain boundary.
func TestEventQueueDrainThrough(t *testing.T) {
	var q EventQueue
	for i, d := range []time.Duration{30, 10, 20, 40, 10} {
		q.Push(Event{Time: d, Seq: int64(i)})
	}
	if n := q.DrainThrough(20); n != 3 {
		t.Fatalf("DrainThrough(20) = %d, want 3", n)
	}
	if e, ok := q.Peek(); !ok || e.Time != 30 {
		t.Fatalf("head after drain = %v %v, want Time 30", e, ok)
	}
	if n := q.DrainThrough(5); n != 0 {
		t.Fatalf("DrainThrough(5) = %d, want 0", n)
	}
}

// TestEventQueueReusesBacking verifies the allocation contract: once warmed,
// a push/pop cycle must not grow or reallocate the backing array.
func TestEventQueueReusesBacking(t *testing.T) {
	var q EventQueue
	for i := 0; i < 64; i++ {
		q.Push(Event{Time: time.Duration(i), Seq: int64(i)})
	}
	for i := 0; i < 64; i++ {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.Push(Event{Time: time.Duration(i % 7), Seq: int64(i)})
		}
		for i := 0; i < 64; i++ {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed push/pop cycle allocates %v times per run, want 0", allocs)
	}
}
