package host

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ftl"
	"repro/internal/trace"
)

func TestNewLayoutErrors(t *testing.T) {
	cases := []struct {
		name       string
		shards     int
		bytes      int64
		pageBytes  int
		chunkPages int64
	}{
		{"zero shards", 0, 1 << 20, 64, 4},
		{"negative shards", -1, 1 << 20, 64, 4},
		{"zero capacity", 4, 0, 64, 4},
		{"negative chunk", 4, 1 << 20, 64, -1},
		{"more shards than chunks", 8, 4 * 4 * 64, 64, 4},
	}
	for _, c := range cases {
		if _, err := NewLayout(c.shards, c.bytes, c.pageBytes, c.chunkPages); err == nil {
			t.Errorf("%s: NewLayout(%d, %d, %d, %d) accepted", c.name, c.shards, c.bytes, c.pageBytes, c.chunkPages)
		}
	}
}

func TestLayoutDefaultChunkIsTranslationPage(t *testing.T) {
	l, err := NewLayout(2, 64<<20, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.PageBytes != ftl.DefaultPageBytes {
		t.Fatalf("default page bytes = %d", l.PageBytes)
	}
	if want := int64(ftl.DefaultEntriesPerTP); l.ChunkPages != want {
		t.Fatalf("default chunk = %d pages, want one translation page's %d", l.ChunkPages, want)
	}
}

// testLayout is a small geometry with a partial tail chunk: 64 B pages,
// 4-page (256 B) chunks, 10.5 chunks over 3 shards.
func testLayout(t *testing.T, shards int) Layout {
	t.Helper()
	l, err := NewLayout(shards, 10*256+128, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutOwnershipPartition(t *testing.T) {
	for shards := 1; shards <= 5; shards++ {
		l := testLayout(t, shards)
		var owned int64
		for s := 0; s < shards; s++ {
			owned += l.OwnedChunks(s)
			if l.ShardBytes(s) != l.OwnedChunks(s)*l.ChunkBytes() {
				t.Fatalf("shards=%d: ShardBytes(%d) not chunk aligned", shards, s)
			}
		}
		if owned != l.Chunks() {
			t.Fatalf("shards=%d: owned chunks %d != %d", shards, owned, l.Chunks())
		}
		// Every (shard, local page) pair is hit by exactly one global page.
		seen := map[[2]int64]bool{}
		pages := l.LogicalBytes / l.PageBytes
		for lpn := int64(0); lpn < pages; lpn++ {
			s := l.ShardOfPage(lpn)
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d: lpn %d on shard %d", shards, lpn, s)
			}
			lp := l.LocalPage(lpn)
			if lp < 0 || lp*l.PageBytes >= l.ShardBytes(s) {
				t.Fatalf("shards=%d: lpn %d local page %d beyond shard %d capacity", shards, lpn, lp, s)
			}
			k := [2]int64{int64(s), lp}
			if seen[k] {
				t.Fatalf("shards=%d: shard %d local page %d hit twice", shards, s, lp)
			}
			seen[k] = true
		}
	}
}

func TestImagePagesMatchesBruteForce(t *testing.T) {
	for shards := 1; shards <= 5; shards++ {
		l := testLayout(t, shards)
		pages := l.LogicalBytes / l.PageBytes
		counts := make([]int64, shards)
		for prefix := int64(0); prefix <= pages; prefix++ {
			for s := 0; s < shards; s++ {
				if got := l.ImagePages(s, prefix); got != counts[s] {
					t.Fatalf("shards=%d: ImagePages(%d, %d) = %d, brute force %d", shards, s, prefix, got, counts[s])
				}
			}
			if prefix < pages {
				counts[l.ShardOfPage(prefix)]++
			}
		}
	}
}

func TestFragmentsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for shards := 1; shards <= 5; shards++ {
		l := testLayout(t, shards)
		for iter := 0; iter < 2000; iter++ {
			op := []trace.Op{trace.OpRead, trace.OpWrite, trace.OpWriteFUA, trace.OpTrim}[rng.Intn(4)]
			off := rng.Int63n(l.LogicalBytes)
			length := 1 + rng.Int63n(l.LogicalBytes-off)
			r := trace.Request{Arrival: rng.Int63n(1000), Offset: off, Length: length, Op: op}
			frags, err := l.Fragments(r, nil)
			if err != nil {
				t.Fatalf("shards=%d: Fragments(%+v): %v", shards, r, err)
			}
			// Brute force: remap every byte individually (page-sized cells
			// would hide sub-page offsets; bytes catch everything).
			want := map[int]map[int64]bool{}
			for b := off; b < off+length; b++ {
				lpn := b / l.PageBytes
				s := l.ShardOfPage(lpn)
				local := l.LocalPage(lpn)*l.PageBytes + b%l.PageBytes
				if want[s] == nil {
					want[s] = map[int64]bool{}
				}
				want[s][local] = true
			}
			var total int64
			seenShard := map[int]bool{}
			for _, f := range frags {
				if seenShard[f.Shard] {
					t.Fatalf("shards=%d: two fragments on shard %d for %+v", shards, f.Shard, r)
				}
				seenShard[f.Shard] = true
				if err := f.Req.Validate(); err != nil {
					t.Fatalf("shards=%d: invalid fragment %+v: %v", shards, f.Req, err)
				}
				if f.Req.Op != op || f.Req.Arrival != r.Arrival {
					t.Fatalf("shards=%d: fragment lost op/arrival: %+v", shards, f.Req)
				}
				total += f.Req.Length
				for b := f.Req.Offset; b < f.Req.End(); b++ {
					if !want[f.Shard][b] {
						t.Fatalf("shards=%d: fragment byte %d on shard %d not in brute-force image of %+v",
							shards, b, f.Shard, r)
					}
				}
			}
			if total != length {
				t.Fatalf("shards=%d: fragments cover %d of %d bytes of %+v", shards, total, length, r)
			}
		}
	}
}

func TestFragmentsFlushBroadcast(t *testing.T) {
	l := testLayout(t, 3)
	frags, err := l.Fragments(trace.Request{Op: trace.OpFlush}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("flush produced %d fragments, want one per shard", len(frags))
	}
	for s, f := range frags {
		if f.Shard != s || f.Req.Op != trace.OpFlush || f.Req.Length != 0 {
			t.Fatalf("flush fragment %d = %+v", s, f)
		}
	}
}

func TestFragmentsRejectBadRequests(t *testing.T) {
	l := testLayout(t, 2)
	bad := []trace.Request{
		{Offset: -1, Length: 64, Op: trace.OpRead},
		{Offset: 0, Length: 0, Op: trace.OpWrite},
		{Offset: l.LogicalBytes - 32, Length: 64, Op: trace.OpRead}, // beyond capacity
		{Offset: 64, Length: 64, Op: trace.OpFlush},                 // flush with payload
	}
	for _, r := range bad {
		if _, err := l.Fragments(r, nil); err == nil {
			t.Errorf("Fragments accepted %+v", r)
		}
	}
}

func TestPartitionConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := testLayout(t, 3)
	var reqs []trace.Request
	flushes := 0
	var payload int64
	for i := 0; i < 500; i++ {
		if rng.Intn(10) == 0 {
			reqs = append(reqs, trace.Request{Op: trace.OpFlush})
			flushes++
			continue
		}
		off := rng.Int63n(l.LogicalBytes)
		length := 1 + rng.Int63n(min64(l.LogicalBytes-off, 4*l.ChunkBytes()))
		reqs = append(reqs, trace.Request{Offset: off, Length: length, Op: trace.OpWrite})
		payload += length
	}
	streams, err := l.Partition(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var gotPayload int64
	for s, stream := range streams {
		got := 0
		for _, r := range stream {
			if r.Op == trace.OpFlush {
				got++
				continue
			}
			gotPayload += r.Length
		}
		if got != flushes {
			t.Fatalf("shard %d saw %d flushes, want %d", s, got, flushes)
		}
	}
	if gotPayload != payload {
		t.Fatalf("partition carries %d payload bytes, want %d", gotPayload, payload)
	}
}

func TestShardConfigsSingleShardPassthrough(t *testing.T) {
	base := ftl.DefaultConfig(64 << 20)
	base.CacheBytes = 123456
	base.Seed = 42
	_, cfgs, err := ShardConfigs(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 || !reflect.DeepEqual(cfgs[0], base) {
		t.Fatalf("single-shard config not passed through: %+v", cfgs)
	}
}

func TestShardConfigsSplit(t *testing.T) {
	base := ftl.DefaultConfig(64 << 20)
	base.CacheBytes = 1 << 20
	base.Seed = 7
	lay, cfgs, err := ShardConfigs(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	var capacity int64
	seeds := map[int64]bool{}
	for s, cfg := range cfgs {
		if cfg.LogicalBytes != lay.ShardBytes(s) {
			t.Fatalf("shard %d capacity %d != layout %d", s, cfg.LogicalBytes, lay.ShardBytes(s))
		}
		capacity += cfg.LogicalBytes
		if cfg.CacheBytes != base.CacheBytes/4 {
			t.Fatalf("shard %d cache %d, want %d", s, cfg.CacheBytes, base.CacheBytes/4)
		}
		seeds[cfg.Seed] = true
	}
	if capacity < base.LogicalBytes {
		t.Fatalf("shard capacities sum to %d < advertised %d", capacity, base.LogicalBytes)
	}
	if len(seeds) != 4 {
		t.Fatalf("shard seeds collide: %v", seeds)
	}
}

func TestDigestProperties(t *testing.T) {
	h := []uint64{0x1111, 0x2222, 0x3333}
	d := Digest(h)
	if d == Digest([]uint64{0x1111, 0x2222}) {
		t.Fatal("digest ignores shard count")
	}
	if d == Digest([]uint64{0x2222, 0x1111, 0x3333}) {
		t.Fatal("digest ignores which shard produced which hash")
	}
	if d == Digest([]uint64{0x1111, 0x2222, 0x3332}) {
		t.Fatal("digest ignores a single-bit hash change")
	}
	if Digest(h) != d {
		t.Fatal("digest not deterministic")
	}
	if Digest(nil) == Digest([]uint64{0}) {
		t.Fatal("empty digest collides with one zero hash")
	}
}
