package host

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// nextQueueID numbers queue pairs across the process for error reporting.
//
//ftl:shardsafe monotonic ID source, atomic, never read by simulation state
var nextQueueID atomic.Int64

// freeFrag is one shard's slice of a queue-pair submission, carrying the join
// that fires the completion once every fragment has been served.
type freeFrag struct {
	req  trace.Request
	join *join
}

// join gathers a submission's per-shard fragments back into one completion.
type join struct {
	remaining atomic.Int32
	q         *Queue
	req       trace.Request

	mu       sync.Mutex
	complete time.Duration // max completion time across fragments
	err      error         // first fragment error
}

// done records one fragment's outcome; the last fragment posts the
// completion on the owning queue's completion channel.
func (j *join) done(complete time.Duration, err error) {
	j.mu.Lock()
	if complete > j.complete {
		j.complete = complete
	}
	if err != nil && j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
	if j.remaining.Add(-1) == 0 {
		j.mu.Lock()
		c := Completion{Req: j.req, Complete: j.complete, Err: j.err}
		j.mu.Unlock()
		j.q.cq <- c
	}
}

// Completion is the completion-queue entry for one submitted request.
type Completion struct {
	// Req is the request as submitted (host addresses, pre-fragmentation).
	Req trace.Request
	// Complete is the simulated completion time: the latest completion
	// across the request's per-shard fragments.
	Complete time.Duration
	// Err is the first error any fragment hit, if any.
	Err error
}

// Queue is one NVMe-style submission/completion queue pair. A queue belongs
// to one client goroutine: Submit, Complete and Close must not be called
// concurrently on the same queue. Different queues submit concurrently;
// requests from different queues that land on the same shard serve in
// arrival order at that shard's inbox, so per-shard event hashes — and the
// merged digest — vary run to run in this mode. Use Host.Replay when
// reproducibility matters.
type Queue struct {
	id          int64
	h           *Host
	depth       int
	outstanding int
	cq          chan Completion
}

// Start launches the queue-pair service: one worker goroutine per shard,
// serving submissions in inbox arrival order. Pair with Stop. Shard
// admission state is reset, so a Start/Stop window is a measured run just
// like a Replay.
func (h *Host) Start() error {
	if h.serving != nil {
		return fmt.Errorf("host: Start while already serving")
	}
	qd := h.opt.depth()
	h.serving = &sync.WaitGroup{}
	for _, sh := range h.shards {
		sh.reset(qd)
		sh.inbox = make(chan freeFrag, 4*DefaultBatch)
		h.serving.Add(1)
		go func(sh *shard) {
			defer h.serving.Done()
			for f := range sh.inbox {
				if sh.err != nil {
					f.join.done(0, sh.err)
					continue
				}
				complete, err := sh.serveOne(f.req)
				if err != nil {
					sh.err = fmt.Errorf("shard %d: %w", sh.id, err)
					f.join.done(0, sh.err)
					continue
				}
				f.join.done(complete, nil)
			}
		}(sh)
	}
	return nil
}

// Stop shuts the queue-pair service down and returns the run's merged
// outcome. Every queue must be closed (all completions reaped) first.
func (h *Host) Stop() (*Outcome, error) {
	if h.serving == nil {
		return nil, fmt.Errorf("host: Stop without Start")
	}
	for _, sh := range h.shards {
		close(sh.inbox)
	}
	h.serving.Wait()
	h.serving = nil
	out := h.collect()
	for _, sh := range h.shards {
		sh.inbox = nil
		out.Fragments += sh.admitted
		if sh.err != nil {
			return out, sh.err
		}
	}
	return out, nil
}

// OpenQueue creates a submission/completion queue pair of the given depth
// (the bound on submissions outstanding on this queue; minimum 1). The
// completion channel is buffered to depth, so shard workers never block
// posting completions and a client that respects the depth bound never
// deadlocks.
func (h *Host) OpenQueue(depth int) (*Queue, error) {
	if h.serving == nil {
		return nil, fmt.Errorf("host: OpenQueue before Start")
	}
	if depth < 1 {
		depth = 1
	}
	return &Queue{
		id:    nextQueueID.Add(1),
		h:     h,
		depth: depth,
		cq:    make(chan Completion, depth),
	}, nil
}

// Submit routes one request to its shard(s). It returns an error without
// submitting when the queue already has depth submissions outstanding —
// reap with Complete first — or when the request is malformed.
func (q *Queue) Submit(r trace.Request) error {
	if q.outstanding >= q.depth {
		return fmt.Errorf("host: queue %d full at depth %d", q.id, q.depth)
	}
	frags, err := q.h.lay.Fragments(r, nil)
	if err != nil {
		return fmt.Errorf("host: queue %d: %w", q.id, err)
	}
	j := &join{q: q, req: r}
	j.remaining.Store(int32(len(frags)))
	q.outstanding++
	for _, f := range frags {
		q.h.shards[f.Shard].inbox <- freeFrag{req: f.Req, join: j}
	}
	return nil
}

// Complete blocks until the next completion on this queue and returns it.
func (q *Queue) Complete() Completion {
	c := <-q.cq
	q.outstanding--
	return c
}

// Close reaps every outstanding completion and returns the first error any
// of them carried. The queue must not be used afterwards.
func (q *Queue) Close() error {
	var first error
	for q.outstanding > 0 {
		if c := q.Complete(); c.Err != nil && first == nil {
			first = c.Err
		}
	}
	return first
}
