package host

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/ftl"
	"repro/internal/obs/live"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// Options configures how every shard admits requests against its simulated
// backend. The zero value is the serial-compatible closed loop at depth 1.
type Options struct {
	// QueueDepth bounds the simulated in-flight requests per shard
	// (closed loop). 0 selects 1, the serial-compatibility default, unless
	// OpenLoop is set.
	QueueDepth int
	// OpenLoop admits every request at its arrival time instead of waiting
	// for a queue slot; QueueDepth is ignored.
	OpenLoop bool
}

func (o Options) depth() int {
	if o.OpenLoop {
		return 0
	}
	if o.QueueDepth <= 0 {
		return 1
	}
	return o.QueueDepth
}

// Host owns the per-shard devices and routes block requests to them.
// Construct with New, then either Replay a trace deterministically or Start
// the queue-pair service and feed it from concurrent client goroutines.
type Host struct {
	lay    Layout
	opt    Options
	shards []*shard
	// serving is non-nil while the free-form queue-pair service is running
	// (between Start and Stop); Replay refuses to run concurrently with it.
	serving *sync.WaitGroup
}

// shard is one slice of the LPN space: a private device plus the admission
// state of its serial request loop. Everything here is touched only by the
// shard's worker goroutine (or, between runs, by the host's caller), never
// concurrently.
type shard struct {
	id  int
	dev *ftl.Device

	qd       int // 0 = open loop
	inflight ssd.EventQueue
	seq      int64

	admitted int64
	maxDepth int64
	depthSum int64
	err      error

	// cell is the shard's live-telemetry cell (nil when the plane is off).
	// The worker publishes queue stats into it once per served batch.
	cell *live.Cell

	inbox chan freeFrag // queue-pair mode submissions (nil outside Start/Stop)
}

// New builds a host over per-shard devices. devs[s] must advertise exactly
// the capacity layout assigns shard s (ShardConfigs produces matching
// configurations).
func New(lay Layout, devs []*ftl.Device, opt Options) (*Host, error) {
	if len(devs) != lay.Shards {
		return nil, fmt.Errorf("host: %d devices for %d shards", len(devs), lay.Shards)
	}
	h := &Host{lay: lay, opt: opt, shards: make([]*shard, lay.Shards)}
	for s, dev := range devs {
		if dev == nil {
			return nil, fmt.Errorf("host: shard %d device is nil", s)
		}
		if got, want := dev.Config().LogicalBytes, lay.ShardBytes(s); got != want {
			return nil, fmt.Errorf("host: shard %d advertises %d B, layout assigns %d B", s, got, want)
		}
		h.shards[s] = &shard{id: s, dev: dev}
	}
	return h, nil
}

// Layout returns the host's LPN→shard map.
func (h *Host) Layout() Layout { return h.lay }

// Device returns shard s's device, for per-shard setup (formatting,
// preconditioning, warming, fault arming) before a run. It must not be
// touched while a Replay or the queue-pair service is running.
func (h *Host) Device(s int) *ftl.Device { return h.shards[s].dev }

// SetLive attaches one live-telemetry cell per shard (cells[s] → shard s;
// nil entries or a nil slice detach). Each shard's device publishes epochs
// and flight-recorder entries into its cell from the shard worker goroutine,
// and the worker publishes frontend queue stats per batch — telemetry rides
// the existing single-writer-per-shard discipline, so replays stay
// bit-for-bit deterministic with the plane on or off.
func (h *Host) SetLive(cells []*live.Cell) {
	for s, sh := range h.shards {
		var c *live.Cell
		if s < len(cells) {
			c = cells[s]
		}
		sh.cell = c
		sh.dev.SetLive(c)
	}
}

// reset clears one run's admission state. A closed loop at depth 1 starts
// with the device's current clock occupying the single slot, reproducing the
// serial path's admit-at-now semantics (Device.Serve) after preconditioning
// or a warm-up phase; deeper queues and open loop start empty, exactly like
// a fresh ssd.Frontend — mirroring which path the non-sharded simulator
// would have taken.
func (s *shard) reset(qd int) {
	s.qd = qd
	s.inflight = ssd.EventQueue{}
	s.seq = 0
	s.admitted = 0
	s.maxDepth = 0
	s.depthSum = 0
	s.err = nil
	if qd == 1 {
		s.inflight.Push(ssd.Event{Time: s.dev.Now(), Seq: 0})
	}
}

// serveOne admits one local request against the shard's queue-depth policy
// and serves it on the device. Logical effects apply in call order; only
// simulated timing overlaps.
func (s *shard) serveOne(r trace.Request) (time.Duration, error) {
	arrival := time.Duration(r.Arrival)
	admit := arrival
	if s.qd > 0 {
		for s.inflight.Len() >= s.qd {
			e := s.inflight.Pop()
			if e.Time > admit {
				admit = e.Time
			}
		}
	}
	s.inflight.DrainThrough(admit)
	complete, err := s.dev.ServeAt(r, admit)
	if err != nil {
		return 0, err
	}
	s.admitted++
	s.seq++
	s.inflight.Push(ssd.Event{Time: complete, Seq: s.seq})
	depth := int64(s.inflight.Len())
	s.depthSum += depth
	if depth > s.maxDepth {
		s.maxDepth = depth
	}
	return complete, nil
}

// ShardResult is one shard's outcome of a run.
type ShardResult struct {
	Shard int
	// M is the shard device's metrics over the run's measured window, with
	// the shard frontend's queue-depth stats folded in (only when the
	// admission policy actually queues — depth 1 mirrors the serial path,
	// which reports none).
	M ftl.Metrics
	// EventHash is the shard scheduler's order-sensitive hash of every
	// flash operation since device creation.
	EventHash uint64
	// Admitted counts the fragments this shard served during the run.
	Admitted int64
	// FS is the shard frontend's queueing statistics — the same snapshot
	// struct the live telemetry plane publishes per shard, so the ftlsim
	// report table and a live scrape read identical numbers.
	FS ssd.FrontendStats
}

// Outcome aggregates a run across shards.
type Outcome struct {
	// M merges every shard's metrics (counters and histograms add,
	// watermarks take the max — see ftl.Metrics.Merge).
	M ftl.Metrics
	// Shards holds the per-shard results in shard order.
	Shards []ShardResult
	// Digest is the order-insensitive-across-shards fold of the per-shard
	// event hashes (see Digest).
	Digest uint64
	// Requests is the number of host-level requests routed; Fragments the
	// per-shard fragments they produced (flush barriers count one fragment
	// per shard).
	Requests  int64
	Fragments int64
}

// ReplayOptions tunes the deterministic replay driver.
type ReplayOptions struct {
	// Clients is the total number of concurrent submitter goroutines,
	// spread round-robin over shards (minimum one per shard, which is the
	// default).
	Clients int
	// Batch is the number of requests per submission (doorbell coalescing;
	// default 64). Purely a wall-clock knob: the per-shard service order —
	// and so every simulated metric — is independent of it.
	Batch int
}

// DefaultBatch is the submission batch size when ReplayOptions.Batch is 0.
const DefaultBatch = 64

// Replay routes a request stream across the shards and serves every shard
// concurrently, deterministically. It is the eager form of ReplayStream —
// the slice is wrapped in an iterator, so both paths share one router and
// every simulated metric, per-shard EventHash and the merged Digest are
// bit-for-bit identical between them.
func (h *Host) Replay(reqs []trace.Request, o ReplayOptions) (*Outcome, error) {
	return h.ReplayStream(trace.NewSliceIterator(reqs), o)
}

// replayLane is one client goroutine's channel pair: full batches flow
// shard-ward on data, served batches return on free for refilling. Two
// buffers circulate per lane, so a replay's resident request memory is
// O(batch × clients) — independent of trace length.
type replayLane struct {
	data chan []trace.Request
	free chan []trace.Request
}

// ReplayStream routes a streamed request source across the shards and serves
// every shard concurrently, deterministically: the router (the calling
// goroutine) pulls batches from the iterator, fragments each request per
// shard (flushes broadcast, payload ops split by LPN), and deals each
// shard's full batches round-robin across its client lanes; the shard worker
// takes one batch per lane per turn in the same round-robin — so the
// per-shard service order equals the partition order no matter how many
// clients feed it, what the batch size is, or how the Go scheduler
// interleaves the goroutines. Every simulated metric, per-shard EventHash
// and the merged Digest are therefore bit-for-bit reproducible — and equal
// to an eager Replay of the same requests — while resident memory stays
// bounded by the lane buffers, never the trace.
func (h *Host) ReplayStream(it trace.Iterator, o ReplayOptions) (*Outcome, error) {
	if h.serving != nil {
		return nil, fmt.Errorf("host: Replay while the queue-pair service is running")
	}
	batch := o.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	clients := o.Clients
	if clients < h.lay.Shards {
		clients = h.lay.Shards
	}
	qd := h.opt.depth()

	var wg sync.WaitGroup
	lanes := make([][]replayLane, h.lay.Shards)
	for s, sh := range h.shards {
		sh.reset(qd)
		k := clientsOfShard(clients, h.lay.Shards, s)
		ls := make([]replayLane, k)
		for i := range ls {
			// Two buffers circulate per lane: one filling at the router, one
			// in flight or being served. The worker returns every buffer, so
			// free (cap 2) can never block it.
			ls[i] = replayLane{
				data: make(chan []trace.Request, 1),
				free: make(chan []trace.Request, 2),
			}
			ls[i].free <- make([]trace.Request, 0, batch)
			ls[i].free <- make([]trace.Request, 0, batch)
		}
		lanes[s] = ls
		wg.Add(1)
		go func(sh *shard, ls []replayLane) {
			defer wg.Done()
			open := len(ls)
			for turn := 0; open > 0; turn = (turn + 1) % len(ls) {
				if ls[turn].data == nil {
					continue
				}
				b, ok := <-ls[turn].data
				if !ok {
					ls[turn].data = nil
					open--
					continue
				}
				// After a failure keep draining (without serving) so the
				// router never blocks on a dead shard.
				if sh.err == nil {
					for i := range b {
						if _, err := sh.serveOne(b[i]); err != nil {
							sh.err = fmt.Errorf("shard %d: %w", sh.id, err)
							break
						}
					}
					if sh.cell != nil {
						sh.cell.SetQueueStats(sh.admitted, sh.depthSum, sh.maxDepth)
					}
				}
				ls[turn].free <- b[:0]
			}
		}(sh, ls)
	}

	// The router: fill per-shard batch buffers in request order, rotating to
	// the next lane whenever one fills. The buffer a shard is filling always
	// comes from the pool of the lane it will be sent to.
	cur := make([][]trace.Request, h.lay.Shards)
	turn := make([]int, h.lay.Shards)
	for s := range cur {
		cur[s] = (<-lanes[s][0].free)[:0]
	}
	reqBuf := make([]trace.Request, batch)
	var frags []Fragment
	var requests, fragments int64
	var routeErr error
router:
	for {
		n, err := it.Next(reqBuf)
		for i := 0; i < n; i++ {
			frags, routeErr = h.lay.Fragments(reqBuf[i], frags[:0])
			if routeErr != nil {
				routeErr = fmt.Errorf("host: request %d: %w", requests, routeErr)
				break router
			}
			requests++
			for _, f := range frags {
				fragments++
				s := f.Shard
				cur[s] = append(cur[s], f.Req)
				if len(cur[s]) == batch {
					lanes[s][turn[s]].data <- cur[s]
					turn[s] = (turn[s] + 1) % len(lanes[s])
					cur[s] = (<-lanes[s][turn[s]].free)[:0]
				}
			}
		}
		if err != nil {
			if err != io.EOF {
				routeErr = fmt.Errorf("host: reading trace after request %d: %w", requests, err)
			}
			break
		}
	}
	for s := range h.shards {
		if routeErr == nil && len(cur[s]) > 0 {
			lanes[s][turn[s]].data <- cur[s]
		}
		for i := range lanes[s] {
			close(lanes[s][i].data)
		}
	}
	wg.Wait()

	if routeErr != nil {
		return nil, routeErr
	}
	out := h.collect()
	out.Requests = requests
	out.Fragments = fragments
	for _, sh := range h.shards {
		if sh.err != nil {
			return out, sh.err
		}
	}
	return out, nil
}

// clientsOfShard spreads total clients round-robin over shards; every shard
// gets at least one.
func clientsOfShard(clients, shards, s int) int {
	k := clients / shards
	if s < clients%shards {
		k++
	}
	if k < 1 {
		k = 1
	}
	return k
}

// collect snapshots every shard's metrics and folds the per-shard hashes
// into the merged digest.
func (h *Host) collect() *Outcome {
	out := &Outcome{Shards: make([]ShardResult, len(h.shards))}
	hashes := make([]uint64, len(h.shards))
	for s, sh := range h.shards {
		m := sh.dev.Metrics()
		if sh.qd != 1 {
			// Queue-depth stats exist only when the admission policy
			// actually queues; the depth-1 closed loop mirrors the serial
			// Device.Serve path, which reports none.
			m.MaxQueueDepth = sh.maxDepth
			m.QueueDepthSum = sh.depthSum
		}
		hashes[s] = sh.dev.Scheduler().EventHash()
		fs := ssd.FrontendStats{Admitted: sh.admitted, MaxDepth: sh.maxDepth, DepthSum: sh.depthSum}
		out.Shards[s] = ShardResult{Shard: s, M: m, EventHash: hashes[s], Admitted: sh.admitted, FS: fs}
		out.M.Merge(&m)
		if sh.cell != nil {
			// Final epoch + queue stats so a scrape after the run (or during
			// a -telemetry-linger wait) sees the exact end-of-run numbers.
			// collect runs after wg.Wait(), so the single-writer rule holds.
			sh.dev.PublishLive()
			sh.cell.SetQueueStats(sh.admitted, sh.depthSum, sh.maxDepth)
		}
	}
	out.Digest = Digest(hashes)
	return out
}
