package host

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// newTPFTLDevice builds and formats one TPFTL-backed device.
func newTPFTLDevice(t *testing.T, cfg ftl.Config) *ftl.Device {
	t.Helper()
	cache := cfg.CacheBytes
	if cache == 0 {
		cache = ftl.DefaultCacheBytes(cfg.LogicalBytes)
	}
	dev, err := ftl.NewDevice(cfg, core.New(core.DefaultConfig(cache)))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Format(); err != nil {
		t.Fatal(err)
	}
	return dev
}

// newTestHost shards a base config and builds a host over fresh formatted,
// preconditioned devices. Preconditioning is per shard and seeded by the
// shard config, so two hosts built from the same base start identical.
func newTestHost(t *testing.T, base ftl.Config, shards int, opt Options) *Host {
	t.Helper()
	lay, cfgs, err := ShardConfigs(base, shards)
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]*ftl.Device, shards)
	for s := range devs {
		devs[s] = newTPFTLDevice(t, cfgs[s])
		pages := cfgs[s].LogicalPages()
		if err := devs[s].PreconditionRange(int(pages), pages, cfgs[s].Seed+1); err != nil {
			t.Fatal(err)
		}
		devs[s].ResetMetrics()
	}
	h, err := New(lay, devs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// mixedTrace generates a deterministic stream of reads, writes, FUA writes,
// trims and flushes with non-decreasing arrivals over the given space.
func mixedTrace(seed int64, n int, space, pageBytes int64, arrivalStep int64) []trace.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]trace.Request, 0, n)
	var arrival int64
	for i := 0; i < n; i++ {
		if arrivalStep > 0 {
			arrival += rng.Int63n(arrivalStep)
		}
		roll := rng.Intn(100)
		if roll < 4 {
			reqs = append(reqs, trace.Request{Arrival: arrival, Op: trace.OpFlush})
			continue
		}
		op := trace.OpRead
		switch {
		case roll < 12:
			op = trace.OpTrim
		case roll < 20:
			op = trace.OpWriteFUA
		case roll < 55:
			op = trace.OpWrite
		}
		pages := space / pageBytes
		first := rng.Int63n(pages)
		span := 1 + rng.Int63n(min64(16, pages-first))
		reqs = append(reqs, trace.Request{
			Arrival: arrival,
			Offset:  first * pageBytes,
			Length:  span * pageBytes,
			Op:      op,
		})
	}
	return reqs
}

// TestReplaySerialEquivalence pins the 1-shard host path to the legacy
// serial drivers bit-for-bit: depth 1 against Device.Run, deeper queues and
// open loop against ssd.Frontend — same metrics, same event hash, however
// many client goroutines feed the host.
func TestReplaySerialEquivalence(t *testing.T) {
	const space = 16 << 20
	base := ftl.DefaultConfig(space)
	base.Seed = 42
	reqs := mixedTrace(1, 4000, space, int64(base.PageSize), 3000)

	cases := []struct {
		name    string
		opt     Options
		clients int
		legacy  func(t *testing.T, dev *ftl.Device) ftl.Metrics
	}{
		{"qd1", Options{}, 3, func(t *testing.T, dev *ftl.Device) ftl.Metrics {
			if _, err := dev.Run(reqs); err != nil {
				t.Fatal(err)
			}
			return dev.Metrics() // what sim.Run reports (fills Elapsed/ChanBusy)
		}},
		{"qd4", Options{QueueDepth: 4}, 2, func(t *testing.T, dev *ftl.Device) ftl.Metrics {
			fst, err := ssd.Frontend{QueueDepth: 4}.Run(dev, reqs)
			if err != nil {
				t.Fatal(err)
			}
			m := dev.Metrics()
			m.MaxQueueDepth = fst.MaxDepth
			m.QueueDepthSum = fst.DepthSum
			return m
		}},
		{"openloop", Options{OpenLoop: true}, 4, func(t *testing.T, dev *ftl.Device) ftl.Metrics {
			fst, err := ssd.Frontend{}.Run(dev, reqs)
			if err != nil {
				t.Fatal(err)
			}
			m := dev.Metrics()
			m.MaxQueueDepth = fst.MaxDepth
			m.QueueDepthSum = fst.DepthSum
			return m
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newTestHost(t, base, 1, c.opt)
			out, err := h.Replay(reqs, ReplayOptions{Clients: c.clients, Batch: 7})
			if err != nil {
				t.Fatal(err)
			}

			legacyHost := newTestHost(t, base, 1, c.opt) // identical setup, legacy driver
			dev := legacyHost.Device(0)
			want := c.legacy(t, dev)

			if got := out.Shards[0].M; !reflect.DeepEqual(got, want) {
				t.Errorf("shard metrics diverge from legacy driver:\n got  %+v\n want %+v", got, want)
			}
			if got, want := out.Shards[0].EventHash, dev.Scheduler().EventHash(); got != want {
				t.Errorf("event hash %#x, legacy %#x", got, want)
			}
			if out.Digest != Digest([]uint64{dev.Scheduler().EventHash()}) {
				t.Errorf("merged digest does not fold the legacy hash")
			}
			if out.Requests != int64(len(reqs)) || out.Fragments != int64(len(reqs)) {
				t.Errorf("1-shard routing: %d requests, %d fragments", out.Requests, out.Fragments)
			}
		})
	}
}

// TestReplayClientCountInvariance pins the determinism argument: the
// per-shard service order is fixed by the partition, so the client and
// batch topology must not change any simulated result.
func TestReplayClientCountInvariance(t *testing.T) {
	const space = 32 << 20
	base := ftl.DefaultConfig(space)
	base.Seed = 9
	reqs := mixedTrace(2, 3000, space, int64(base.PageSize), 0)

	run := func(clients, batch int) *Outcome {
		h := newTestHost(t, base, 4, Options{QueueDepth: 8})
		out, err := h.Replay(reqs, ReplayOptions{Clients: clients, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(4, 64)
	for _, c := range []struct{ clients, batch int }{{9, 64}, {16, 64}, {5, 17}, {4, 1}} {
		got := run(c.clients, c.batch)
		if got.Digest != ref.Digest {
			t.Fatalf("clients=%d batch=%d: digest %#x, reference %#x", c.clients, c.batch, got.Digest, ref.Digest)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("clients=%d batch=%d: outcome diverges from reference", c.clients, c.batch)
		}
	}
}

// TestShardSaturationDigestStable is the shard-smoke gate: a race-enabled
// 4-shard saturation run (arrival 0, deep queues, concurrent clients) must
// produce the same merged digest run over run.
func TestShardSaturationDigestStable(t *testing.T) {
	const space = 32 << 20
	base := ftl.DefaultConfig(space)
	base.Seed = 4242
	reqs := mixedTrace(3, 6000, space, int64(base.PageSize), 0)

	run := func() *Outcome {
		h := newTestHost(t, base, 4, Options{QueueDepth: 8})
		out, err := h.Replay(reqs, ReplayOptions{Clients: 8})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Digest != b.Digest {
		t.Fatalf("merged digest unstable across identical runs: %#x vs %#x", a.Digest, b.Digest)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("outcome unstable across identical runs")
	}
	if a.Digest == 0 {
		t.Fatal("suspicious zero digest")
	}
	for _, sr := range a.Shards {
		if sr.Admitted == 0 {
			t.Fatalf("shard %d served nothing — sharding is not spreading load", sr.Shard)
		}
	}
	if a.M.Requests != a.Fragments {
		t.Fatalf("merged metrics count %d requests, %d fragments routed", a.M.Requests, a.Fragments)
	}
}

// TestReplayZeroRequests pins the empty-replay edge: well-defined zero
// stats, a stable digest, no divide-by-zero surprises.
func TestReplayZeroRequests(t *testing.T) {
	base := ftl.DefaultConfig(16 << 20)
	h := newTestHost(t, base, 2, Options{})
	out, err := h.Replay(nil, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Requests != 0 || out.Fragments != 0 || out.M.Requests != 0 {
		t.Fatalf("empty replay reports %+v", out)
	}
	if got := out.M.AvgQueueDepth(); got != 0 {
		t.Fatalf("empty replay AvgQueueDepth = %v", got)
	}
	again, err := h.Replay(nil, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != out.Digest {
		t.Fatal("empty replay digest unstable")
	}
}

// TestReplayRejectsBadTrace pins error routing through Partition.
func TestReplayRejectsBadTrace(t *testing.T) {
	base := ftl.DefaultConfig(16 << 20)
	h := newTestHost(t, base, 2, Options{})
	_, err := h.Replay([]trace.Request{{Offset: -4096, Length: 4096, Op: trace.OpRead}}, ReplayOptions{})
	if err == nil {
		t.Fatal("Replay accepted a malformed request")
	}
}

func TestClientsOfShard(t *testing.T) {
	for clients := 1; clients <= 12; clients++ {
		for shards := 1; shards <= 6; shards++ {
			total := 0
			for s := 0; s < shards; s++ {
				k := clientsOfShard(clients, shards, s)
				if k < 1 {
					t.Fatalf("clients=%d shards=%d: shard %d has no client", clients, shards, s)
				}
				total += k
			}
			want := clients
			if want < shards {
				want = shards
			}
			if total != want {
				t.Fatalf("clients=%d shards=%d: %d lanes dealt, want %d", clients, shards, total, want)
			}
		}
	}
}
