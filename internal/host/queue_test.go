package host

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ftl"
	"repro/internal/trace"
)

// TestQueuePairConcurrentClients exercises the free-form queue-pair service
// under the race detector: concurrent closed-loop clients, cross-shard
// spans, trims and flush barriers. Simulated results in this mode are
// conserved but not digest-stable (arrival order at each shard's inbox is a
// race by design), so the assertions are conservation laws, not hashes.
func TestQueuePairConcurrentClients(t *testing.T) {
	const (
		space      = 32 << 20
		shards     = 4
		numClients = 8
		perClient  = 400
		depth      = 8
	)
	base := ftl.DefaultConfig(space)
	base.Seed = 77
	h := newTestHost(t, base, shards, Options{QueueDepth: depth})
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}

	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		completions int64
		flushes     int64
		failures    []error
	)
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			q, err := h.OpenQueue(depth)
			if err != nil {
				t.Error(err)
				return
			}
			var done int64
			var sentFlushes int64
			reqs := mixedTrace(int64(100+c), perClient, space, int64(base.PageSize), 0)
			for _, r := range reqs {
				for {
					err := q.Submit(r)
					if err == nil {
						break
					}
					// Queue full: reap one completion and retry.
					if c := q.Complete(); c.Err != nil {
						mu.Lock()
						failures = append(failures, c.Err)
						mu.Unlock()
					}
					done++
				}
				if r.Op == trace.OpFlush {
					sentFlushes++
				}
			}
			for q.outstanding > 0 {
				if c := q.Complete(); c.Err != nil {
					mu.Lock()
					failures = append(failures, c.Err)
					mu.Unlock()
				}
				done++
			}
			mu.Lock()
			completions += done
			flushes += sentFlushes
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	out, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) > 0 {
		t.Fatalf("completions carried errors: %v", failures[0])
	}
	if want := int64(numClients * perClient); completions != want {
		t.Fatalf("reaped %d completions, submitted %d", completions, want)
	}
	// Every flush broadcasts to every shard and each shard counts it once.
	if got, want := out.M.FlushRequests, flushes*int64(shards); got != want {
		t.Fatalf("merged FlushRequests = %d, want %d (%d flushes × %d shards)", got, want, flushes, shards)
	}
	var admitted int64
	for _, sr := range out.Shards {
		if sr.Admitted == 0 {
			t.Fatalf("shard %d served nothing", sr.Shard)
		}
		admitted += sr.Admitted
	}
	if admitted != out.Fragments || out.M.Requests != out.Fragments {
		t.Fatalf("fragment conservation broken: admitted %d, fragments %d, metric requests %d",
			admitted, out.Fragments, out.M.Requests)
	}
}

// TestQueuePairCompletionJoin pins the fan-out/fan-in contract: one
// cross-shard request completes exactly once, at the max of its fragments.
func TestQueuePairCompletionJoin(t *testing.T) {
	const space = 32 << 20
	base := ftl.DefaultConfig(space)
	h := newTestHost(t, base, 4, Options{})
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	q, err := h.OpenQueue(2)
	if err != nil {
		t.Fatal(err)
	}
	// A write spanning the whole space touches every shard; the flush after
	// it broadcasts too.
	span := trace.Request{Offset: 0, Length: space, Op: trace.OpWrite}
	if err := q.Submit(span); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(trace.Request{Op: trace.OpFlush}); err != nil {
		t.Fatal(err)
	}
	first := q.Complete()
	second := q.Complete()
	if first.Err != nil || second.Err != nil {
		t.Fatalf("completions errored: %v %v", first.Err, second.Err)
	}
	got := map[trace.Op]bool{first.Req.Op: true, second.Req.Op: true}
	if !got[trace.OpWrite] || !got[trace.OpFlush] {
		t.Fatalf("expected one write and one flush completion, got %v and %v", first.Req.Op, second.Req.Op)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if out.Fragments != 8 { // 4 write fragments + 4 flush broadcasts
		t.Fatalf("routed %d fragments, want 8", out.Fragments)
	}
	for _, sr := range out.Shards {
		if sr.M.FlushRequests != 1 {
			t.Fatalf("shard %d saw %d flushes, want 1", sr.Shard, sr.M.FlushRequests)
		}
	}
}

func TestQueuePairLifecycleErrors(t *testing.T) {
	base := ftl.DefaultConfig(16 << 20)
	h := newTestHost(t, base, 2, Options{})
	if _, err := h.OpenQueue(1); err == nil {
		t.Fatal("OpenQueue before Start accepted")
	}
	if _, err := h.Stop(); err == nil {
		t.Fatal("Stop without Start accepted")
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	if _, err := h.Replay(nil, ReplayOptions{}); err == nil {
		t.Fatal("Replay while serving accepted")
	}
	q, err := h.OpenQueue(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(trace.Request{Op: trace.OpRead}); err == nil {
		t.Fatal("malformed submit accepted")
	}
	r := trace.Request{Offset: 0, Length: int64(base.PageSize), Op: trace.OpRead}
	if err := q.Submit(r); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(r); err == nil {
		t.Fatal("Submit over depth accepted")
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestQueuePairRandomizedSmoke drives random per-client traffic shapes
// through the service to shake out join/ordering bugs under -race.
func TestQueuePairRandomizedSmoke(t *testing.T) {
	const space = 16 << 20
	base := ftl.DefaultConfig(space)
	base.Seed = 5
	h := newTestHost(t, base, 2, Options{QueueDepth: 4})
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			q, err := h.OpenQueue(1 + rng.Intn(6))
			if err != nil {
				t.Error(err)
				return
			}
			for _, r := range mixedTrace(int64(c)*31, 200, space, int64(base.PageSize), 10) {
				for q.Submit(r) != nil {
					if cpl := q.Complete(); cpl.Err != nil {
						t.Errorf("completion error: %v", cpl.Err)
						return
					}
				}
			}
			if err := q.Close(); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	if _, err := h.Stop(); err != nil {
		t.Fatal(err)
	}
}
