package host

import (
	"reflect"
	"testing"

	"repro/internal/ftl"
)

// TestMetricsMergeAgreesWithUnsplitRun pins the semantic contract behind
// per-shard metric merging: serving a trace in two measured windows on one
// device and merging the window snapshots must reproduce, field for field,
// the metrics of the identical uninterrupted run. This is the property that
// makes Outcome.M comparable with a single-device run's metrics.
func TestMetricsMergeAgreesWithUnsplitRun(t *testing.T) {
	const space = 16 << 20
	base := ftl.DefaultConfig(space)
	base.Seed = 21
	reqs := mixedTrace(6, 3000, space, int64(base.PageSize), 1000)

	setup := func() *ftl.Device {
		dev := newTPFTLDevice(t, base)
		pages := base.LogicalPages()
		if err := dev.PreconditionRange(int(pages), pages, base.Seed+1); err != nil {
			t.Fatal(err)
		}
		dev.ResetMetrics()
		return dev
	}

	whole := setup()
	if _, err := whole.Run(reqs); err != nil {
		t.Fatal(err)
	}
	want := whole.Metrics()

	split := setup()
	cut := len(reqs) / 3
	if _, err := split.Run(reqs[:cut]); err != nil {
		t.Fatal(err)
	}
	m1 := split.Metrics()
	split.ResetMetrics()
	if _, err := split.Run(reqs[cut:]); err != nil {
		t.Fatal(err)
	}
	m2 := split.Metrics()

	got := m1
	got.Merge(&m2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged window snapshots diverge from the unsplit run:\n got  %+v\n want %+v", got, want)
	}
}
