// Package host is an NVMe-style multi-queue frontend that serves concurrent
// goroutine traffic across independent per-shard FTL instances.
//
// The logical page space is statically striped across N shards at
// translation-page granularity: chunk g (ChunkPages consecutive LPNs, one
// translation page's worth by default) belongs to shard g mod N, where it
// appears as local chunk g div N. Striping at TP granularity keeps every
// translation page's entries — and therefore TPFTL's intra-TP locality,
// prefetching and batch writeback — wholly inside one shard, while
// interleaving chunks balances sequential and clustered workloads across
// shards. Each shard owns a full ftl.Device: private mapping cache, GC,
// block manager and scheduler clock. Shards share no mutable state (the
// globalstate analyzer proves the tree has none), so they run on separate
// goroutines without locks.
//
// Because a contiguous byte range covers every chunk between its first and
// last, the chunks it owns on one shard are consecutive local chunks and its
// image there is a single contiguous local byte range: any read, write or
// discard splits into at most one fragment per shard. Flushes are barriers
// and broadcast to every shard.
//
// Determinism: each shard's scheduler keeps the existing order-sensitive
// EventHash over its own serial request order. Digest folds the per-shard
// hashes into one value that is insensitive to how shard executions
// interleave in wall time — per-shard order is what matters, cross-shard
// order never does — so determinism tests stay meaningful under true
// concurrency. The deterministic replay path (Host.Replay) fixes each
// shard's order by construction; the free-form queue-pair path (Host.Start /
// OpenQueue) serves in arrival order and trades digest stability for
// unconstrained routing.
package host

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/trace"
)

// Layout is the static LPN→shard map: ChunkPages consecutive logical pages
// form a chunk, chunk g lives on shard g mod Shards as local chunk
// g div Shards.
type Layout struct {
	// Shards is the number of independent FTL instances.
	Shards int
	// ChunkPages is the striping granularity in logical pages. The default
	// (one translation page's worth of entries) keeps every translation
	// page wholly inside one shard.
	ChunkPages int64
	// PageBytes is the logical page size shared by every shard.
	PageBytes int64
	// LogicalBytes is the global advertised capacity the host routes over.
	LogicalBytes int64

	chunkBytes int64
	chunks     int64 // global chunk count (last chunk may be partial)
}

// NewLayout validates and derives a layout. chunkPages 0 selects the
// translation-page default (pageBytes / ftl.EntryBytesInFlash entries).
func NewLayout(shards int, logicalBytes int64, pageBytes int, chunkPages int64) (Layout, error) {
	if pageBytes <= 0 {
		pageBytes = ftl.DefaultPageBytes
	}
	if chunkPages == 0 {
		chunkPages = int64(pageBytes / ftl.EntryBytesInFlash)
	}
	l := Layout{
		Shards:       shards,
		ChunkPages:   chunkPages,
		PageBytes:    int64(pageBytes),
		LogicalBytes: logicalBytes,
	}
	l.chunkBytes = chunkPages * l.PageBytes
	if logicalBytes > 0 {
		l.chunks = (logicalBytes + l.chunkBytes - 1) / l.chunkBytes
	}
	switch {
	case shards <= 0:
		return l, fmt.Errorf("host: non-positive shard count %d", shards)
	case chunkPages <= 0:
		return l, fmt.Errorf("host: non-positive chunk size %d pages", chunkPages)
	case logicalBytes <= 0:
		return l, fmt.Errorf("host: non-positive logical capacity %d", logicalBytes)
	case l.chunks < int64(shards):
		return l, fmt.Errorf("host: address space of %d chunks cannot feed %d shards (shrink -shards or the chunk size)",
			l.chunks, shards)
	}
	return l, nil
}

// ChunkBytes returns the striping granularity in bytes.
func (l Layout) ChunkBytes() int64 { return l.chunkBytes }

// Chunks returns the number of global chunks.
func (l Layout) Chunks() int64 { return l.chunks }

// ShardOfPage returns the shard owning a logical page.
func (l Layout) ShardOfPage(lpn int64) int {
	return int((lpn / l.ChunkPages) % int64(l.Shards))
}

// LocalPage returns a logical page's address inside its owning shard.
func (l Layout) LocalPage(lpn int64) int64 {
	g := lpn / l.ChunkPages
	return (g/int64(l.Shards))*l.ChunkPages + lpn%l.ChunkPages
}

// OwnedChunks returns how many global chunks shard s owns.
func (l Layout) OwnedChunks(s int) int64 {
	n := int64(l.Shards)
	return (l.chunks - int64(s) + n - 1) / n
}

// ShardBytes returns shard s's advertised capacity: its owned chunks, the
// partial tail chunk rounded up to a whole one so every shard's space is
// chunk aligned.
func (l Layout) ShardBytes(s int) int64 {
	return l.OwnedChunks(s) * l.chunkBytes
}

// ImagePages returns the size of the image of the global page prefix
// [0, globalPages) on shard s, in local pages — the per-shard footprint of a
// workload that covers the first globalPages pages.
func (l Layout) ImagePages(s int, globalPages int64) int64 {
	if globalPages <= 0 {
		return 0
	}
	full := globalPages / l.ChunkPages // complete chunks in the prefix
	n := int64(l.Shards)
	owned := (full - int64(s) + n - 1) / n // complete chunks owned by s
	pages := owned * l.ChunkPages
	if full%n == int64(s) { // the partial tail chunk lands on s
		pages += globalPages % l.ChunkPages
	}
	return pages
}

// Fragment is one shard's slice of a host request, already remapped into the
// shard's local byte space.
type Fragment struct {
	Shard int
	Req   trace.Request
}

// Fragments appends request r's per-shard fragments to out and returns it.
// Reads, writes and discards route by LPN: the image of a contiguous global
// range on one shard is a single contiguous local range, so each produces at
// most one fragment per shard. Flushes are barriers and broadcast to every
// shard unchanged.
func (l Layout) Fragments(r trace.Request, out []Fragment) ([]Fragment, error) {
	if err := r.Validate(); err != nil {
		return out, err
	}
	switch r.Op {
	case trace.OpFlush:
		for s := 0; s < l.Shards; s++ {
			out = append(out, Fragment{Shard: s, Req: r})
		}
		return out, nil
	case trace.OpRead, trace.OpWrite, trace.OpWriteFUA, trace.OpTrim:
		// Payload ops: routed below.
	default:
		return out, fmt.Errorf("host: unhandled request op %v", r.Op)
	}
	if r.End() > l.LogicalBytes {
		return out, fmt.Errorf("host: request [%d,%d) beyond capacity %d", r.Offset, r.End(), l.LogicalBytes)
	}
	n := int64(l.Shards)
	cb := l.chunkBytes
	ga := r.Offset / cb
	gb := (r.End() - 1) / cb
	for s := int64(0); s < n; s++ {
		// First and last chunks of [ga,gb] owned by shard s.
		g0 := ga + ((s-ga%n)+n)%n
		if g0 > gb {
			continue
		}
		gl := gb - ((gb%n-s)+n)%n
		// The range covers every chunk strictly between ga and gb in full,
		// and consecutive owned chunks are consecutive local chunks, so the
		// shard's image is one contiguous local byte range.
		start := (g0/n)*cb + max64(r.Offset-g0*cb, 0)
		end := (gl/n)*cb + min64(r.End()-gl*cb, cb)
		out = append(out, Fragment{Shard: int(s), Req: trace.Request{
			Arrival: r.Arrival,
			Offset:  start,
			Length:  end - start,
			Op:      r.Op,
		}})
	}
	return out, nil
}

// Partition splits a request stream into per-shard streams, preserving each
// request's order on every shard it touches. Flushes appear in every shard's
// stream; reads, writes and discards split by LPN.
func (l Layout) Partition(reqs []trace.Request) ([][]trace.Request, error) {
	streams := make([][]trace.Request, l.Shards)
	var frags []Fragment
	for i := range reqs {
		var err error
		frags, err = l.Fragments(reqs[i], frags[:0])
		if err != nil {
			return nil, fmt.Errorf("host: request %d: %w", i, err)
		}
		for _, f := range frags {
			streams[f.Shard] = append(streams[f.Shard], f.Req)
		}
	}
	return streams, nil
}

// ShardConfigs derives the per-shard device configurations from a base
// config: each shard advertises its owned chunks, gets an equal split of the
// mapping-cache budget, and a distinct RNG seed. A single shard passes the
// base config through untouched, which is what keeps the 1-shard host path
// bit-for-bit compatible with the serial device.
func ShardConfigs(base ftl.Config, shards int) (Layout, []ftl.Config, error) {
	pageBytes := base.PageSize
	if pageBytes == 0 {
		pageBytes = ftl.DefaultPageBytes
	}
	lay, err := NewLayout(shards, base.LogicalBytes, pageBytes, 0)
	if err != nil {
		return lay, nil, err
	}
	if shards == 1 {
		return lay, []ftl.Config{base}, nil
	}
	cfgs := make([]ftl.Config, shards)
	for s := range cfgs {
		cfg := base
		cfg.LogicalBytes = lay.ShardBytes(s)
		if base.CacheBytes > 0 {
			cfg.CacheBytes = base.CacheBytes / int64(shards)
			if cfg.CacheBytes < ftl.EntryBytesRAM {
				cfg.CacheBytes = ftl.EntryBytesRAM
			}
		}
		cfg.Seed = base.Seed + int64(s)
		cfgs[s] = cfg
	}
	return lay, cfgs, nil
}

// Digest folds per-shard event hashes into one order-insensitive-across-
// shards digest: each shard's hash is finalized together with its shard
// index and xor-folded, so the digest is independent of the order shard
// results are combined in (and of how shard executions interleaved in wall
// time) while still pinning every shard's full serial schedule.
func Digest(hashes []uint64) uint64 {
	d := mix64(uint64(len(hashes)))
	for i, h := range hashes {
		d ^= mix64(h ^ mix64(uint64(i)+0x9e3779b97f4a7c15))
	}
	return d
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so xor-folding
// per-shard values cannot cancel structured differences.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
