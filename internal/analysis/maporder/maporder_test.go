package maporder_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/registry"
)

// analyzer resolves maporder through the registry: being registered is part
// of what this test proves.
func analyzer(t *testing.T) *analysis.Analyzer {
	t.Helper()
	a := registry.Get("maporder")
	if a == nil {
		t.Fatal("maporder is not registered in internal/analysis/registry")
	}
	return a
}

// TestMapOrder covers the rule matrix: commutative and sorted shapes stay
// silent, order-sensitive escapes are flagged, annotation and suppression
// directives mute with a reason.
func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analyzer(t), "a")
}

// TestTPFTLHistoricalBug reconstructs the OnGCDataMoves map-order bug the
// repository shipped and fixed: the buggy shape must be flagged and the
// fixed SortedVTPNs shape must stay silent.
func TestTPFTLHistoricalBug(t *testing.T) {
	analysistest.Run(t, "testdata", analyzer(t), "tpftl")
}

// TestSFTLHistoricalBug reconstructs the S-FTL flush-order bug: the
// page-order loop is flagged, the sorted per-page update collection is not.
func TestSFTLHistoricalBug(t *testing.T) {
	analysistest.Run(t, "testdata", analyzer(t), "sftl")
}
