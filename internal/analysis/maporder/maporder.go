// Package maporder proves that no unordered map iteration feeds simulation
// state.
//
// This codebase has shipped the same bug twice. TPFTL's OnGCDataMoves
// grouped GC map updates in a `map[VTPN][]EntryUpdate` and ranged over it
// calling env.WriteTP per key: the write order — and with it physical page
// allocation, die assignment and the whole downstream schedule — permuted
// run to run. S-FTL's flush path did the identical thing with its dirty
// page set. Both cost a PR to diagnose by hand because the EventHash
// determinism tests only spot-check whole runs; this analyzer makes the
// property mechanical before the sharded frontend multiplies every map by
// N goroutines.
//
// For every `range` over a map-typed operand, the loop body is lowered
// through the internal/analysis/dataflow engine with the iteration key and
// value seeded as tainted, and every statement's reaching taint is
// inspected for order-sensitive escapes:
//
//   - a call whose argument or receiver carries an iteration-derived value
//     (the historical shape: env.WriteTP(v, ups) per key);
//   - assignment of an iteration-derived value to a variable, field, slice
//     slot or pointer target that outlives the iteration (last writer wins
//     by map order);
//   - append of an iteration-derived value to a slice declared outside the
//     loop (the slice's element order becomes map order);
//   - a channel send of an iteration-derived value;
//   - a return of an iteration-derived value (which key returns first is
//     map order);
//   - floating-point or string accumulation (+= is not order-insensitive
//     for those operand types).
//
// Loops that are provably order-insensitive are not flagged:
//
//   - writes into a map or slice indexed by the iteration key, and
//     delete(m, k) — distinct keys hit distinct slots;
//   - integer/bitwise accumulation (+=, -=, |=, &=, ^=, ++, --) and
//     monotone boolean folds (ok = ok || p(k)) — commutative;
//   - pure max/min folds: `acc = x` directly guarded by `if x > acc` —
//     idempotent and commutative (a payload-carrying argmax is NOT: its
//     ties break by map order, so the payload assignment stays flagged);
//   - mutation through the iteration value itself (tp.dirty = 0): each
//     iteration touches its own element;
//   - assignments to variables declared inside the loop body;
//   - the collect-then-sort idiom: appends into a slice that a sort call
//     (sort.*, slices.*, or any Sort* helper such as ftl.SortUpdates)
//     normalizes after the loop in the same block;
//   - calls to sort functions, pure builtins (len, cap, min, max, delete),
//     type conversions, and the known side-effect-free helpers in PureCalls
//     (ftl.VTPNOf, fmt.Errorf, ...) — their results stay tainted;
//   - returning an error: the call that produced it was already judged.
//
// Anything else needs either a real fix — iterate ftl.SortedVTPNs(m) or
// sort the collected keys — or the explicit annotation
//
//	//ftl:orderinsensitive <why the loop commutes>
//
// on the `for` line or the line above. The reason is mandatory; an
// annotation without one is itself a finding.
package maporder

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer flags order-sensitive range-over-map loops.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "range over a map must not feed simulation state in iteration order: sort the keys, use a provably commutative body, or annotate //ftl:orderinsensitive <reason>",
	Run:  run,
}

// Directive marks a loop the author asserts is order-insensitive.
var Directive = "//ftl:orderinsensitive"

// ExcludedPathPrefixes are import paths not policed: the analysis tooling
// itself (driver output is sorted before printing; iteration order there
// cannot reach simulation state).
var ExcludedPathPrefixes = []string{"repro/internal/analysis"}

// SortCallPackages are packages whose calls normalize order.
var SortCallPackages = map[string]bool{"sort": true, "slices": true}

// pureBuiltins neither retain nor order their arguments.
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "delete": true, "min": true, "max": true,
	"make": true, "new": true, "panic": true, "print": true, "println": true,
}

// PureCalls lists side-effect-free functions by package name: calling them
// per iteration makes nothing observable. Their results stay tainted — the
// dataflow engine propagates through call results, so an escape of the
// returned value is still caught at the escape site.
var PureCalls = map[string]map[string]bool{
	"ftl": {"VTPNOf": true, "OffOf": true},
	"fmt": {"Errorf": true, "Sprintf": true, "Sprint": true, "Sprintln": true},
}

func run(pass *analysis.Pass) (any, error) {
	for _, p := range ExcludedPathPrefixes {
		if strings.HasPrefix(pass.Pkg.Path(), p) {
			return nil, nil
		}
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			walkStmtLists(fn.Body.List, nil, func(list []ast.Stmt, i int, tail []ast.Stmt) {
				if rs, ok := list[i].(*ast.RangeStmt); ok {
					rest := append(append([]ast.Stmt{}, list[i+1:]...), tail...)
					checkLoop(pass, rs, rest)
				}
			})
		}
	}
	return nil, nil
}

// walkStmtLists visits every statement together with its enclosing list and
// the statement tail of every enclosing block, so checkLoop can see what
// follows a loop — directly or after leaving a nested block — for the
// collect-then-sort idiom (`for ... { ups = append(ups, ...) }` inside an
// if, with ftl.SortUpdates(ups) after the if).
func walkStmtLists(list, tail []ast.Stmt, visit func(list []ast.Stmt, i int, tail []ast.Stmt)) {
	for i, st := range list {
		visit(list, i, tail)
		childTail := append(append([]ast.Stmt{}, list[i+1:]...), tail...)
		switch s := st.(type) {
		case *ast.BlockStmt:
			walkStmtLists(s.List, childTail, visit)
		case *ast.IfStmt:
			walkStmtLists(s.Body.List, childTail, visit)
			if s.Else != nil {
				walkStmtLists([]ast.Stmt{s.Else}, childTail, visit)
			}
		case *ast.ForStmt:
			walkStmtLists(s.Body.List, childTail, visit)
		case *ast.RangeStmt:
			walkStmtLists(s.Body.List, childTail, visit)
		case *ast.SwitchStmt:
			walkStmtLists(s.Body.List, childTail, visit)
		case *ast.TypeSwitchStmt:
			walkStmtLists(s.Body.List, childTail, visit)
		case *ast.SelectStmt:
			walkStmtLists(s.Body.List, childTail, visit)
		case *ast.CaseClause:
			walkStmtLists(s.Body, childTail, visit)
		case *ast.CommClause:
			walkStmtLists(s.Body, childTail, visit)
		case *ast.LabeledStmt:
			walkStmtLists([]ast.Stmt{s.Stmt}, childTail, visit)
		}
	}
}

// checkLoop analyzes one range statement; rest is the statement tail of the
// loop's enclosing block (for sort-after-collect detection).
func checkLoop(pass *analysis.Pass, loop *ast.RangeStmt, rest []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[loop.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return
	}
	if reason, found := pass.DirectiveAt(loop.Pos(), Directive); found {
		if reason == "" {
			pass.Reportf(loop.Pos(),
				"%s annotation without a reason: state why this loop commutes", Directive)
		}
		return
	}

	var seeds []types.Object
	for _, e := range []ast.Expr{loop.Key, loop.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			seeds = append(seeds, pass.TypesInfo.Defs[id])
		}
	}
	if len(seeds) == 0 {
		// for range m {} — a bare counting loop cannot leak order through
		// bindings; calls inside can still leak via closure state, which
		// the sweep has never seen. Keep it cheap: skip.
		return
	}

	c := &checker{pass: pass, loop: loop, rest: rest}
	c.res = dataflow.Run(loop.Body, pass.TypesInfo, seeds)
	c.walkBody(loop.Body.List)
}

type checker struct {
	pass *analysis.Pass
	loop *ast.RangeStmt
	rest []ast.Stmt
	res  *dataflow.Result

	// conds is the stack of enclosing if-conditions at the statement being
	// checked, for monotone-extremum recognition.
	conds []ast.Expr
}

// tainted reports whether e carries an iteration-derived value at st.
func (c *checker) tainted(e ast.Expr, st ast.Stmt) bool {
	s := c.res.At(st)
	return s != nil && c.res.TaintedExpr(e, s)
}

func (c *checker) walkBody(stmts []ast.Stmt) {
	for _, st := range stmts {
		c.checkStmt(st)
		switch s := st.(type) {
		case *ast.BlockStmt:
			c.walkBody(s.List)
		case *ast.IfStmt:
			if s.Init != nil {
				c.checkStmt(s.Init)
			}
			c.conds = append(c.conds, s.Cond)
			c.walkBody(s.Body.List)
			c.conds = c.conds[:len(c.conds)-1]
			if s.Else != nil {
				c.walkBody([]ast.Stmt{s.Else})
			}
		case *ast.ForStmt:
			c.walkBody(s.Body.List)
		case *ast.RangeStmt:
			c.walkBody(s.Body.List)
		case *ast.SwitchStmt:
			c.walkBody(s.Body.List)
		case *ast.TypeSwitchStmt:
			c.walkBody(s.Body.List)
		case *ast.SelectStmt:
			c.walkBody(s.Body.List)
		case *ast.CaseClause:
			c.walkBody(s.Body)
		case *ast.CommClause:
			c.walkBody(s.Body)
		case *ast.LabeledStmt:
			c.walkBody([]ast.Stmt{s.Stmt})
		}
	}
}

// checkStmt classifies one statement's own effects (nested statements are
// visited separately by walkBody).
func (c *checker) checkStmt(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		c.checkAssign(s)
		c.scanCalls(st, s.Rhs...)
	case *ast.ExprStmt:
		c.scanCalls(st, s.X)
	case *ast.SendStmt:
		if c.tainted(s.Value, st) {
			c.report(s.Pos(), "sends an iteration-derived value on a channel")
		}
		c.scanCalls(st, s.Chan, s.Value)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if isErrorExpr(c.pass, r) {
				// Early-error returns are the idiomatic escape from a loop;
				// the call that produced the error was already judged.
				continue
			}
			if c.tainted(r, st) {
				c.report(s.Pos(), "returns an iteration-derived value (which key returns first is map order)")
				break
			}
		}
		c.scanCalls(st, s.Results...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.scanCalls(st, vs.Values...)
				}
			}
		}
	case *ast.IfStmt:
		c.scanCalls(st, s.Cond)
	case *ast.ForStmt:
		c.scanCalls(st, s.Cond)
	case *ast.SwitchStmt:
		c.scanCalls(st, s.Tag)
	case *ast.TypeSwitchStmt:
		if as, ok := s.Assign.(*ast.AssignStmt); ok {
			c.scanCalls(st, as.Rhs...)
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			c.scanCalls(st, es.X)
		}
	case *ast.RangeStmt:
		c.scanCalls(st, s.X)
	case *ast.DeferStmt:
		c.scanCalls(st, s.Call)
	case *ast.GoStmt:
		c.scanCalls(st, s.Call)
	}
}

// checkAssign applies the write rules to one assignment.
func (c *checker) checkAssign(s *ast.AssignStmt) {
	rhsTaint := func(i int) bool {
		if len(s.Rhs) == len(s.Lhs) {
			return c.tainted(s.Rhs[i], s)
		}
		for _, r := range s.Rhs {
			if c.tainted(r, s) {
				return true
			}
		}
		return false
	}

	for i, lhs := range s.Lhs {
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" || s.Tok == token.DEFINE {
				continue // new binding is loop-local by construction
			}
			obj := c.pass.TypesInfo.Uses[l]
			if obj == nil || c.declaredInLoop(obj) {
				continue
			}
			if !rhsTaint(i) && !(isOpAssign(s.Tok) && c.tainted(l, s)) {
				continue // iteration-independent value: same result any order
			}
			if c.commutativeAssign(s, l, i) {
				continue
			}
			if c.isAppendCollect(s, l, i) {
				continue
			}
			if c.monotoneExtremum(s, l, i) {
				continue
			}
			if call, ok := s.Rhs[min(i, len(s.Rhs)-1)].(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
					c.report(s.Pos(), "appends an iteration-derived value to %q without sorting afterwards (element order becomes map order)", l.Name)
					continue
				}
			}
			c.report(s.Pos(), "assigns an iteration-derived value to %q, declared outside the loop (last writer wins by map order)", l.Name)

		case *ast.IndexExpr:
			if baseTV, ok := c.pass.TypesInfo.Types[l.X]; ok && baseTV.Type != nil {
				if _, isMap := baseTV.Type.Underlying().(*types.Map); isMap {
					if c.tainted(l.Index, s) {
						continue // keyed by the iteration key: distinct slots commute
					}
					if rhsTaint(i) {
						c.report(s.Pos(), "writes an iteration-derived value to a fixed map key (last writer wins by map order)")
					}
					continue
				}
			}
			if c.tainted(l.X, s) {
				continue // per-iteration element reached through the value
			}
			if c.tainted(l.Index, s) {
				continue // slot selected by the iteration key: distinct slots commute
			}
			if rhsTaint(i) {
				c.report(s.Pos(), "writes an iteration-derived value into a slice shared across iterations")
			}

		case *ast.SelectorExpr:
			if c.tainted(l.X, s) {
				continue // field of the per-iteration element
			}
			if !rhsTaint(i) {
				continue
			}
			if isOpAssign(s.Tok) && c.commutativeOp(s.Tok, l) {
				continue
			}
			c.report(s.Pos(), "stores an iteration-derived value into field %s shared across iterations", exprString(l))

		case *ast.StarExpr:
			if rhsTaint(i) && !c.tainted(l.X, s) {
				c.report(s.Pos(), "stores an iteration-derived value through a pointer shared across iterations")
			}
		}
	}
}

// commutativeAssign recognizes order-insensitive accumulation into an
// outer variable: integer/bitwise op-assign, and monotone boolean folds
// (ok = ok || p(k), ok = ok && p(k)).
func (c *checker) commutativeAssign(s *ast.AssignStmt, l *ast.Ident, i int) bool {
	if isOpAssign(s.Tok) {
		return c.commutativeOp(s.Tok, l)
	}
	if s.Tok != token.ASSIGN || i >= len(s.Rhs) {
		return false
	}
	if be, ok := s.Rhs[i].(*ast.BinaryExpr); ok && (be.Op == token.LOR || be.Op == token.LAND) {
		if x, ok := be.X.(*ast.Ident); ok && x.Name == l.Name {
			return true
		}
		if y, ok := be.Y.(*ast.Ident); ok && y.Name == l.Name {
			return true
		}
	}
	return false
}

// commutativeOp reports whether tok is a commutative accumulation for the
// target's type: integers commute under + - | & ^, floats and strings do
// not.
func (c *checker) commutativeOp(tok token.Token, target ast.Expr) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	var typ types.Type
	if tv, ok := c.pass.TypesInfo.Types[target]; ok && tv.Type != nil {
		typ = tv.Type
	} else if id, ok := target.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			typ = obj.Type()
		}
	}
	if typ == nil {
		return false
	}
	b, ok := typ.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsUnsigned) != 0
}

// isAppendCollect recognizes `outer = append(outer, ...)` where a sort call
// on outer follows the loop in the same block: the collect-then-sort idiom
// this repository uses to fix exactly this bug class (ftl.SortedVTPNs,
// S-FTL's sorted flush).
func (c *checker) isAppendCollect(s *ast.AssignStmt, l *ast.Ident, i int) bool {
	if i >= len(s.Rhs) {
		return false
	}
	call, ok := s.Rhs[i].(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	obj := c.pass.TypesInfo.Uses[l]
	if obj == nil {
		return false
	}
	for _, st := range c.rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !c.isSortCall(call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// monotoneExtremum recognizes the pure max/min fold: `acc = x` directly
// guarded by `if x > acc` (or <, >=, <=) comparing the same two values.
// Max and min are commutative, associative and idempotent, so the final
// value is independent of iteration order. A payload-carrying argmax
// (`best, bestKey = len(v), k` under `len(v) > best`) clears only the
// compared accumulator; the payload assignment is still flagged, because
// ties there ARE broken by map order.
func (c *checker) monotoneExtremum(s *ast.AssignStmt, l *ast.Ident, i int) bool {
	if s.Tok != token.ASSIGN || i >= len(s.Rhs) {
		return false
	}
	rhs := exprString(s.Rhs[min(i, len(s.Rhs)-1)])
	for _, cond := range c.conds {
		be, ok := cond.(*ast.BinaryExpr)
		if !ok {
			continue
		}
		switch be.Op {
		case token.GTR, token.LSS, token.GEQ, token.LEQ:
		default:
			continue
		}
		x, y := exprString(be.X), exprString(be.Y)
		if (x == rhs && y == l.Name) || (y == rhs && x == l.Name) {
			return true
		}
	}
	return false
}

// isSortCall matches sort.*/slices.* calls and Sort*-named helpers
// (ftl.SortUpdates, SortedVTPNs).
func (c *checker) isSortCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "Sort")
	case *ast.SelectorExpr:
		if strings.HasPrefix(fun.Sel.Name, "Sort") {
			return true
		}
		if id, ok := fun.X.(*ast.Ident); ok && SortCallPackages[id.Name] {
			return true
		}
		if fun.Sel.Name == "Sorted" {
			return true
		}
	case *ast.IndexExpr: // generic instantiation: SortedVTPNs[V](m)
		return c.isSortCall(&ast.CallExpr{Fun: fun.X, Args: call.Args})
	}
	return false
}

// scanCalls reports calls that receive iteration-derived arguments or
// receivers. Function literals are not descended into: their bodies run
// under their own flow (sort.Slice comparators being the common case).
func (c *checker) scanCalls(st ast.Stmt, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if c.allowedCall(call) {
				return true // still descend: args may hold nested calls
			}
			// Receiver of a method call counts as an argument.
			var operands []ast.Expr
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				operands = append(operands, sel.X)
			}
			operands = append(operands, call.Args...)
			for _, op := range operands {
				if op != nil && c.tainted(op, st) {
					c.report(call.Pos(), "passes an iteration-derived value to %s (call order becomes map order)", exprString(call.Fun))
					break
				}
			}
			return true
		})
	}
}

// allowedCall filters calls that cannot make iteration order observable:
// pure builtins, type conversions, and order-normalizing sort calls.
func (c *checker) allowedCall(call *ast.CallExpr) bool {
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if id.Name == "append" || pureBuiltins[id.Name] {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && PureCalls[id.Name][sel.Sel.Name] {
			if _, isPkg := c.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				return true
			}
		}
	}
	return c.isSortCall(call)
}

// declaredInLoop reports whether obj's declaration lies inside the loop
// body (including the key/value bindings themselves).
func (c *checker) declaredInLoop(obj types.Object) bool {
	return obj.Pos() >= c.loop.Pos() && obj.Pos() <= c.loop.Body.Rbrace
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	prefix := "range over map " + exprString(c.loop.X) + ": loop body "
	suffix := "; iterate sorted keys (ftl.SortedVTPNs, collect-then-sort) or annotate " + Directive + " <reason>"
	c.pass.Reportf(pos, prefix+format+suffix, args...)
}

// isErrorExpr reports whether e's static type is the built-in error
// interface.
func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}

// isOpAssign reports whether tok is an op-assign (+=, -=, |=, ...), whose
// evaluation reads the target as well as writing it.
func isOpAssign(tok token.Token) bool {
	switch tok {
	case token.ASSIGN, token.DEFINE:
		return false
	}
	return true
}

// exprString renders a (small) expression as source text.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return buf.String()
}
