// Package tpftl reconstructs the first historical map-order bug this
// repository shipped: TPFTL's OnGCDataMoves grouped the GC map updates per
// translation page in a map and then ranged over it calling env.WriteTP —
// so the translation-page write order, and with it physical page
// allocation, die assignment and the whole downstream schedule, permuted
// from run to run. Fixed in the parallel-backend PR by flushing in sorted
// vtpn order.
package tpftl

type VTPN int32

type PPN int64

type EntryUpdate struct {
	Off int
	PPN PPN
}

type GCMove struct {
	LPN    int64
	NewPPN PPN
}

type Env interface {
	WriteTP(v VTPN, ups []EntryUpdate) error
	NoteGCMapUpdate(hit bool)
}

// OnGCDataMoves is the buggy pre-fix shape, byte for byte in spirit.
func OnGCDataMoves(env Env, moves []GCMove, entriesPerTP int64) error {
	pending := make(map[VTPN][]EntryUpdate)
	for _, mv := range moves {
		v := VTPN(mv.LPN / entriesPerTP)
		pending[v] = append(pending[v], EntryUpdate{Off: int(mv.LPN % entriesPerTP), PPN: mv.NewPPN})
		env.NoteGCMapUpdate(false)
	}
	for v, ups := range pending {
		if err := env.WriteTP(v, ups); err != nil { // want `passes an iteration-derived value to env\.WriteTP`
			return err
		}
	}
	return nil
}

// SortedVTPNs is the fix's helper shape: collecting the keys and sorting
// them before use is recognized as order-insensitive.
func SortedVTPNs(m map[VTPN][]EntryUpdate) []VTPN {
	keys := make([]VTPN, 0, len(m))
	for v := range m {
		keys = append(keys, v)
	}
	SortVTPNs(keys)
	return keys
}

func SortVTPNs(keys []VTPN) {}

// OnGCDataMovesFixed is the post-fix shape: no findings.
func OnGCDataMovesFixed(env Env, pending map[VTPN][]EntryUpdate) error {
	for _, v := range SortedVTPNs(pending) {
		if err := env.WriteTP(v, pending[v]); err != nil {
			return err
		}
	}
	return nil
}
