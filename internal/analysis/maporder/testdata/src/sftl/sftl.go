// Package sftl reconstructs the second historical map-order bug: S-FTL's
// flush path wrote dirty cached pages back by ranging over the dirty-page
// map, so the full-page WriteTP order — and the resulting block allocation
// — differed run to run. Fixed in the zero-allocation PR by collecting the
// dirty pages and sorting by VTPN before writing (TestSFTLDeterminism pins
// it). The per-page update collection below already uses the sorted idiom
// and must stay silent; only the page-order loop is the bug.
package sftl

type VTPN int32

type PPN int64

type EntryUpdate struct {
	Off int32
	PPN PPN
}

type Env interface {
	WriteTP(v VTPN, ups []EntryUpdate, fullPage bool) error
}

type page struct {
	dirty map[int32]struct{}
	vals  map[int32]PPN
}

type FTL struct {
	pages map[VTPN]*page
}

// SortUpdates stands in for ftl.SortUpdates.
func SortUpdates(ups []EntryUpdate) {}

// FlushDirty is the buggy pre-fix shape: page write order is map order.
func (f *FTL) FlushDirty(env Env) error {
	for v, p := range f.pages {
		if len(p.dirty) == 0 {
			continue
		}
		ups := make([]EntryUpdate, 0, len(p.dirty))
		for off := range p.dirty {
			ups = append(ups, EntryUpdate{Off: off, PPN: p.vals[off]})
		}
		SortUpdates(ups)
		if err := env.WriteTP(v, ups, true); err != nil { // want `passes an iteration-derived value to env\.WriteTP`
			return err
		}
		p.dirty = map[int32]struct{}{}
	}
	return nil
}
