// Package a exercises the maporder rule matrix: the provably
// order-insensitive shapes stay silent, the order-sensitive escapes are
// flagged, the annotation and suppression directives mute with a reason.
package a

import "sort"

type sink struct {
	total int
	bits  uint64
	fsum  float64
	last  int
	out   []int
	byKey map[int]int
}

func orderInsensitive(m map[int]int, s *sink, gone map[int]bool) {
	count := 0
	any := false
	for k, v := range m {
		count++      // commutative
		s.total += v // integer accumulation commutes
		s.bits |= uint64(k)
		s.byKey[k] = v  // keyed by the iteration key: distinct slots
		delete(gone, k) // delete by key commutes
		any = any || v > 0
	}
	_, _ = count, any

	// The collect-then-sort idiom: the slice's final order is the sort's,
	// not the map's.
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	_ = keys

	// Mutating the per-iteration element touches a distinct object each
	// time around.
	objs := map[int]*sink{}
	for _, o := range objs {
		o.total = 0
		o.out = nil
	}

	// The pure max fold is idempotent and commutative.
	maxV := 0
	for _, v := range m {
		if v > maxV {
			maxV = v
		}
	}
	_ = maxV
}

func annotated(m map[int]int, s *sink) {
	//ftl:orderinsensitive any key serves as the representative element
	for k := range m {
		s.last = k
		break
	}
}

func orderSensitive(m map[int]int, s *sink, ch chan int, emit func(int)) (int, int) {
	for k, v := range m {
		s.last = k               // want `assigns an iteration-derived value to "last"|stores an iteration-derived value into field`
		s.fsum += float64(v)     // want `stores an iteration-derived value into field s\.fsum`
		s.out = append(s.out, v) // want `stores an iteration-derived value into field s\.out`
		ch <- v                  // want `sends an iteration-derived value on a channel`
		emit(k)                  // want `passes an iteration-derived value to emit`
	}

	// Append without a sort afterwards: element order is map order.
	collected := []int{}
	for k := range m {
		collected = append(collected, k) // want `appends an iteration-derived value to "collected" without sorting`
	}
	_ = collected

	// Taint flows through intermediate locals and conditionals.
	worst := 0
	for k, v := range m {
		label := k * 2
		if v > 10 {
			worst = label // want `assigns an iteration-derived value to "worst"`
		}
	}

	for k := range m {
		if k > 10 {
			return k, worst // want `returns an iteration-derived value`
		}
	}

	// A payload-carrying argmax: the max accumulator itself is a pure
	// fold, but the payload ties break by map order.
	best, bestK := -1, 0
	for k, v := range m {
		if v > best {
			best = v
			bestK = k // want `assigns an iteration-derived value to "bestK"`
		}
	}
	_ = bestK
	return 0, worst
}

func missingReason(m map[int]int, emit func(int)) {
	//ftl:orderinsensitive
	for k := range m { // want `annotation without a reason`
		emit(k)
	}
}

func suppressed(m map[int]int, emit func(int)) {
	for k := range m {
		//lint:ignore maporder replay order is rebuilt downstream by the scheduler
		emit(k)
	}
}
