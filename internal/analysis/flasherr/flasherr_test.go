package flasherr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/flasherr"
)

func TestFlashErr(t *testing.T) {
	analysistest.Run(t, "testdata", flasherr.Analyzer, "a")
}
