package flasherr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/registry"
)

// TestFlashErr resolves the analyzer through the registry: being registered —
// and therefore run by cmd/ftlint — is part of what the test proves.
func TestFlashErr(t *testing.T) {
	a := registry.Get("flasherr")
	if a == nil {
		t.Fatal("flasherr is not registered in internal/analysis/registry")
	}
	analysistest.Run(t, "testdata", a, "a")
}
