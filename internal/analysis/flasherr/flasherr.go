// Package flasherr is errcheck scoped to flash-chip operations.
//
// The fault-injection harness only works if every chip error propagates: a
// single dropped error from Chip.Read/Program/Erase/Invalidate turns an
// injected fault (or a power cut) into silent mapping corruption, which the
// crash-recovery property then blames on the translator under test. This
// analyzer flags any call of those methods on a flash.Chip whose error
// result is discarded — used as a bare statement, assigned to the blank
// identifier, or launched via go/defer where the result is unrecoverable.
package flasherr

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags discarded errors from flash chip operations.
var Analyzer = &analysis.Analyzer{
	Name: "flasherr",
	Doc:  "require every flash.Chip Read/Program/Erase/Invalidate error to be consumed",
	Run:  run,
}

// chipOps maps the guarded method names to the index of their error result.
var chipOps = map[string]int{
	"Read":       1, // (time.Duration, error)
	"Program":    1,
	"Erase":      1,
	"Invalidate": 0, // error
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if errIdx, ok := chipCall(pass, call); ok && !errorConsumed(stack, call, errIdx) {
					sel := call.Fun.(*ast.SelectorExpr)
					pass.Reportf(call.Pos(),
						"error from flash chip %s is discarded: fault injection must never be silently swallowed",
						sel.Sel.Name)
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil, nil
}

// chipCall reports whether call is a guarded method on a flash.Chip and the
// index of its error result.
func chipCall(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	errIdx, ok := chipOps[sel.Sel.Name]
	if !ok {
		return 0, false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return 0, false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return 0, false
	}
	obj := named.Obj()
	return errIdx, obj.Name() == "Chip" && obj.Pkg() != nil && obj.Pkg().Name() == "flash"
}

// errorConsumed reports whether the call's error result reaches a consumer.
// stack holds the ancestors of call, innermost last.
func errorConsumed(stack []ast.Node, call *ast.CallExpr, errIdx int) bool {
	if len(stack) == 0 {
		return true
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.ExprStmt:
		return false
	case *ast.GoStmt, *ast.DeferStmt:
		return false
	case *ast.AssignStmt:
		// Multi-value assignment `lat, err := chip.Read(p)`: the error is
		// consumed unless its slot is the blank identifier.
		if len(parent.Rhs) == 1 && parent.Rhs[0] == call && errIdx < len(parent.Lhs) {
			if id, ok := parent.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
				return false
			}
		}
	case *ast.ValueSpec:
		if len(parent.Values) == 1 && parent.Values[0] == call && errIdx < len(parent.Names) {
			if parent.Names[errIdx].Name == "_" {
				return false
			}
		}
	}
	// Return statements, if-assignments, arguments to other calls and so on
	// all hand the error to code that must itself check it.
	return true
}
