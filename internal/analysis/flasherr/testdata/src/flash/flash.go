// Fixture stand-in for repro/internal/flash: the analyzer matches the
// method set of a named Chip type in a package named flash.
package flash

import "time"

type PPN int64

type BlockID int32

type Meta struct{ Tag int64 }

type Chip struct{}

func (c *Chip) Read(p PPN) (time.Duration, error)            { return 0, nil }
func (c *Chip) Program(p PPN, m Meta) (time.Duration, error) { return 0, nil }
func (c *Chip) Erase(b BlockID) (time.Duration, error)       { return 0, nil }
func (c *Chip) Invalidate(p PPN) error                       { return nil }
