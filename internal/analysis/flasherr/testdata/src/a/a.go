// Fixture: flash-op error handling, good and bad shapes.
package a

import (
	"time"

	"flash"
)

func bad(c *flash.Chip) {
	c.Read(1)                            // want `error from flash chip Read is discarded`
	c.Program(2, flash.Meta{})           // want `error from flash chip Program is discarded`
	c.Erase(3)                           // want `error from flash chip Erase is discarded`
	c.Invalidate(4)                      // want `error from flash chip Invalidate is discarded`
	_, _ = c.Read(5)                     // want `error from flash chip Read is discarded`
	lat, _ := c.Program(6, flash.Meta{}) // want `error from flash chip Program is discarded`
	_ = lat
	go c.Erase(7)   // want `error from flash chip Erase is discarded`
	defer c.Read(8) // want `error from flash chip Read is discarded`
}

func good(c *flash.Chip) (time.Duration, error) {
	if _, err := c.Read(1); err != nil {
		return 0, err
	}
	lat, err := c.Program(2, flash.Meta{})
	if err != nil {
		return 0, err
	}
	if err := c.Invalidate(3); err != nil {
		return 0, err
	}
	retry := func(op func() (time.Duration, error)) (time.Duration, error) { return op() }
	if _, err := retry(func() (time.Duration, error) { return c.Erase(4) }); err != nil {
		return 0, err
	}
	return lat, nil
}

type notChip struct{}

func (notChip) Read(int) (time.Duration, error) { return 0, nil }

func otherType() {
	var n notChip
	n.Read(1) // different receiver type: not a flash op
}
