// Package cacheaccount confines TPFTL cache accounting to its helpers.
//
// The crash harness caught TPFTL double-charging a TP node on the
// standalone-update path: an inlined `f.used += ...` drifted from the list
// mutation it was supposed to mirror, so the budget filled with phantom
// bytes (§4.4 batch-update/clean-first paths were a near miss of the same
// shape). The accounting invariant — f.used and f.entries always equal what
// a walk of the two-level lists counts — is only maintainable if every
// mutation of either side goes through the handful of helpers that update
// both together. This analyzer enforces that structurally in package core:
// outside the allowlisted helpers, no function may write the accounting
// fields or structurally mutate an lru.List.
package cacheaccount

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer confines accounting-field writes and LRU-list mutations in the
// TPFTL package to the allowlisted accounting helpers.
var Analyzer = &analysis.Analyzer{
	Name: "cacheaccount",
	Doc:  "TPFTL cache accounting (used/entries, LRU list structure) may only change inside the accounting helpers",
	Run:  run,
}

// PackageNames are the packages the analyzer polices.
var PackageNames = map[string]bool{"core": true}

// AllowedFuncs are the accounting helpers: the only functions that may write
// the accounting fields or mutate list structure. Methods are named bare
// (no receiver).
var AllowedFuncs = map[string]bool{
	"newTPNode":   true,
	"dropTPNode":  true,
	"addEntry":    true,
	"removeEntry": true,
	"touch":       true,
	"reposition":  true,
}

// accountingFields are the struct fields charged against the cache budget.
var accountingFields = map[string]bool{"used": true, "entries": true}

// listMutators are the lru.List methods that change list structure.
var listMutators = map[string]bool{
	"PushFront": true, "PushBack": true, "Remove": true,
	"MoveToFront": true, "MoveToBack": true,
	"InsertBefore": true, "InsertAfter": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !PackageNames[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || AllowedFuncs[fn.Name.Name] {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportFieldWrite(pass, fn, lhs)
			}
		case *ast.IncDecStmt:
			reportFieldWrite(pass, fn, n.X)
		case *ast.UnaryExpr:
			// &f.used escaping would allow writes the analyzer cannot see.
			if sel, ok := n.X.(*ast.SelectorExpr); ok && n.Op.String() == "&" && accountingFields[sel.Sel.Name] {
				pass.Reportf(n.Pos(),
					"taking the address of accounting field %s in %s: accounting may only change inside the accounting helpers",
					sel.Sel.Name, fn.Name.Name)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && listMutators[sel.Sel.Name] && isLRUList(pass, sel) {
				pass.Reportf(n.Pos(),
					"lru list mutation %s in %s: structural changes may only happen inside the accounting helpers (%s)",
					sel.Sel.Name, fn.Name.Name, allowedList())
			}
		}
		return true
	})
}

func reportFieldWrite(pass *analysis.Pass, fn *ast.FuncDecl, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok || !accountingFields[sel.Sel.Name] {
		return
	}
	// Only struct-field selections count; a local variable named `used`
	// is not accounting state.
	if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return
	}
	pass.Reportf(sel.Pos(),
		"write to accounting field %s in %s: cache accounting may only change inside the accounting helpers (%s)",
		sel.Sel.Name, fn.Name.Name, allowedList())
}

// isLRUList reports whether sel selects a method on lru.List.
func isLRUList(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "List" && obj.Pkg() != nil && obj.Pkg().Name() == "lru"
}

func allowedList() string {
	return "newTPNode/dropTPNode/addEntry/removeEntry/touch/reposition"
}
