package cacheaccount_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/registry"
)

// analyzer resolves cacheaccount through the registry: being registered —
// and therefore run by cmd/ftlint — is part of what these tests prove.
func analyzer(t *testing.T) *analysis.Analyzer {
	t.Helper()
	a := registry.Get("cacheaccount")
	if a == nil {
		t.Fatal("cacheaccount is not registered in internal/analysis/registry")
	}
	return a
}

func TestCacheAccount(t *testing.T) {
	analysistest.Run(t, "testdata", analyzer(t), "core")
}

// TestOtherPackagesExempt ensures the analyzer is scoped: the same shapes in
// a package that is not the TPFTL core are not flagged.
func TestOtherPackagesExempt(t *testing.T) {
	analysistest.Run(t, "testdata", analyzer(t), "other")
}
