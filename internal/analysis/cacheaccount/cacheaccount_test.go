package cacheaccount_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cacheaccount"
)

func TestCacheAccount(t *testing.T) {
	analysistest.Run(t, "testdata", cacheaccount.Analyzer, "core")
}

// TestOtherPackagesExempt ensures the analyzer is scoped: the same shapes in
// a package that is not the TPFTL core are not flagged.
func TestOtherPackagesExempt(t *testing.T) {
	analysistest.Run(t, "testdata", cacheaccount.Analyzer, "other")
}
