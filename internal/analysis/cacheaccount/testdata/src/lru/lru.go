// Fixture stand-in for repro/internal/lru.
package lru

type Node struct {
	prev, next *Node
	Value      any
}

type List struct {
	front, back *Node
	size        int
}

func (l *List) Len() int                   { return l.size }
func (l *List) Front() *Node               { return l.front }
func (l *List) Back() *Node                { return l.back }
func (l *List) PushFront(n *Node)          {}
func (l *List) PushBack(n *Node)           {}
func (l *List) Remove(n *Node)             {}
func (l *List) MoveToFront(n *Node)        {}
func (l *List) MoveToBack(n *Node)         {}
func (l *List) InsertBefore(n, mark *Node) {}
func (l *List) InsertAfter(n, mark *Node)  {}
