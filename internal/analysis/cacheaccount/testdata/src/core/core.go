// Fixture: the PR-1 double-charge shape — inline accounting writes and list
// mutations outside the helpers — versus the allowlisted helper funcs.
package core

import "lru"

type FTL struct {
	pages   lru.List
	used    int64
	entries int
}

type tpNode struct {
	node    lru.Node
	entries lru.List
}

// addEntry is an allowlisted accounting helper: writes are fine here.
func (f *FTL) addEntry(tp *tpNode, n *lru.Node) {
	tp.entries.PushFront(n)
	f.used += 6
	f.entries++
}

// removeEntry likewise.
func (f *FTL) removeEntry(tp *tpNode, n *lru.Node) {
	tp.entries.Remove(n)
	f.used -= 6
	f.entries--
}

// newTPNode likewise (node charge).
func (f *FTL) newTPNode(tp *tpNode) {
	f.pages.PushFront(&tp.node)
	f.used += 8
}

// standaloneUpdate reproduces the PR-1 bug shape: accounting inlined at the
// call site instead of routed through a helper.
func (f *FTL) standaloneUpdate(tp *tpNode, n *lru.Node) {
	f.used += 8                   // want `write to accounting field used in standaloneUpdate`
	f.entries++                   // want `write to accounting field entries in standaloneUpdate`
	tp.entries.PushFront(n)       // want `lru list mutation PushFront in standaloneUpdate`
	f.pages.MoveToFront(&tp.node) // want `lru list mutation MoveToFront in standaloneUpdate`
}

// evictSideChannel shows the aliasing escape hatch is closed too.
func (f *FTL) evictSideChannel() *int64 {
	return &f.used // want `taking the address of accounting field used in evictSideChannel`
}

// readOnly demonstrates reads and non-mutating list walks stay allowed.
func (f *FTL) readOnly() int64 {
	total := int64(0)
	for n := f.pages.Front(); n != nil; n = nil {
		_ = n
		total += f.used
	}
	used := int64(0) // a local named `used` is not accounting state
	used++
	return total + used + int64(f.pages.Len())
}
