// Fixture: identical shapes in a non-core package are out of scope.
package other

import "lru"

type cache struct {
	list lru.List
	used int64
}

func (c *cache) grow(n *lru.Node) {
	c.list.PushFront(n)
	c.used += 8
}
