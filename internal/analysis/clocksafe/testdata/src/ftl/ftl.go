// Package ftl is on the advance allowlist: driving the scheduler is its
// job. Wall-clock reads are still banned.
package ftl

import (
	"time"

	"ssd"
)

func Drive(s *ssd.Scheduler) int64 {
	s.BeginRequest(1)
	s.Issue(0, 2)
	return s.EndRequest()
}

func stillNoWallClock() time.Time {
	return time.Now() // want `wall-clock time\.Now`
}
