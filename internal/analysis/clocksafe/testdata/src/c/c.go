// Package c is a policed package outside the advance allowlist: reading the
// scheduler clock is fine, advancing it is not, and wall-clock reads are
// banned outright.
package c

import (
	"time"

	"ssd"
)

// Translator mirrors the real name collision: ftl.Translator has its own
// BeginRequest, which must not trip the receiver-typed scheduler rule.
type Translator struct{}

func (t *Translator) BeginRequest(first, last int64, write bool) {}

func readOnly(s *ssd.Scheduler, t *Translator) int64 {
	t.BeginRequest(0, 1, false) // different receiver type: fine
	_ = s.DieBusy(0)
	return s.Now()
}

func advances(s *ssd.Scheduler) {
	s.BeginRequest(10) // want `advances simulated time`
	s.BreakChain()     // want `advances simulated time`
	s.Issue(0, 5)      // want `advances simulated time`
	s.IssueOp(0, 5, 1) // want `advances simulated time`
	s.EndRequest()     // want `advances simulated time`
}

func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock time\.Now`
	time.Sleep(1)            // want `wall-clock time\.Sleep`
	return time.Since(start) // want `wall-clock time\.Since`
}

// A local named time shadows nothing: calls through it are not the package.
type clock struct{}

func (clock) Now() int64 { return 0 }

func shadowed() int64 {
	var time clock
	return time.Now()
}
