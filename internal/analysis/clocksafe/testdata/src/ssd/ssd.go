// Package ssd is a fixture stand-in for the real internal/ssd scheduler:
// same type name, same package name, same advancing/read-only method split.
package ssd

type Scheduler struct {
	now int64
}

func (s *Scheduler) Now() int64 { return s.now }

func (s *Scheduler) DieBusy(die int) int64 { return 0 }

func (s *Scheduler) BeginRequest(admit int64) { s.now += admit }

func (s *Scheduler) BreakChain() {}

func (s *Scheduler) Issue(die int, lat int64) int64 {
	s.now += lat
	return s.now
}

func (s *Scheduler) IssueOp(die int, lat int64, op int) int64 { return s.Issue(die, lat) }

func (s *Scheduler) EndRequest() int64 { return s.now }
