// Package clocksafe enforces the simulator's clock discipline: simulated
// time is owned by ssd.Scheduler, advanced only by the scheduler itself and
// the ftl device layer that drives it, and merely read everywhere else.
//
// Two rules:
//
//  1. The advancing methods of ssd.Scheduler (BeginRequest, BreakChain,
//     Issue, IssueOp, EndRequest) may be called only from packages on the
//     advance allowlist — ssd and ftl. A translator or observability hook
//     that advances the clock corrupts the request timeline in a way the
//     EventHash determinism tests cannot localize; the read-only accessors
//     (Now, Ops, DieBusy, ...) are free.
//
//  2. Wall-clock time (time.Now, time.Since, time.Sleep, timers) is banned
//     in the simulator packages outright: the simulation must be a pure
//     function of its inputs, and any wall-clock read is nondeterminism
//     waiting to leak into a decision. cmd/ is exempt — benchmark harnesses
//     legitimately time real execution.
//
// There is deliberately no //ftl: annotation for this analyzer: clock
// discipline has no sanctioned exceptions. A truly special case can use a
// //lint:ignore clocksafe <reason> suppression and defend it in review.
package clocksafe

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces who may advance and who may only read simulated time.
var Analyzer = &analysis.Analyzer{
	Name: "clocksafe",
	Doc:  "only internal/ssd and internal/ftl may advance simulated time, and wall-clock reads are banned in simulator packages: the run must be a pure function of its inputs",
	Run:  run,
}

// PathPrefixes are the import-path prefixes policed.
var PathPrefixes = []string{"repro/internal/"}

// ExcludedPathPrefixes carves out the analysis tooling, which is not part
// of the simulation.
var ExcludedPathPrefixes = []string{"repro/internal/analysis"}

// AdvancePackages are the package names allowed to call advancing methods.
var AdvancePackages = map[string]bool{"ssd": true, "ftl": true}

// AdvancingMethods are the ssd.Scheduler methods that move simulated time.
var AdvancingMethods = map[string]bool{
	"BeginRequest": true,
	"BreakChain":   true,
	"Issue":        true,
	"IssueOp":      true,
	"EndRequest":   true,
}

// wallClock are the time-package functions that read or wait on real time.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func run(pass *analysis.Pass) (any, error) {
	policed := false
	for _, p := range PathPrefixes {
		if strings.HasPrefix(pass.Pkg.Path(), p) {
			policed = true
		}
	}
	if !policed {
		return nil, nil
	}
	for _, p := range ExcludedPathPrefixes {
		if strings.HasPrefix(pass.Pkg.Path(), p) {
			return nil, nil
		}
	}

	mayAdvance := AdvancePackages[pass.Pkg.Name()]
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isTimePackageCall(pass, sel) && wallClock[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"wall-clock time.%s in simulator package %s: simulated time is ssd.Scheduler.Now(); wall-clock reads make the run a function of the machine, not the workload",
					sel.Sel.Name, pass.Pkg.Name())
				return true
			}
			if !mayAdvance && AdvancingMethods[sel.Sel.Name] && isSchedulerMethod(pass, sel) {
				pass.Reportf(call.Pos(),
					"package %s calls ssd.Scheduler.%s, which advances simulated time: only internal/ssd and internal/ftl may advance the clock; everything else reads Now()",
					pass.Pkg.Name(), sel.Sel.Name)
			}
			return true
		})
	}
	return nil, nil
}

// isTimePackageCall reports whether sel is time.<Name> with time being the
// standard-library package, not a local variable named "time".
func isTimePackageCall(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}

// isSchedulerMethod reports whether sel's receiver is ssd.Scheduler
// (possibly behind a pointer). Matching is by receiver type, not method
// name alone: ftl.Translator has its own BeginRequest.
func isSchedulerMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Scheduler" && obj.Pkg() != nil && obj.Pkg().Name() == "ssd"
}
