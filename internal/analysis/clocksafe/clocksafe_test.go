package clocksafe_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/clocksafe"
	"repro/internal/analysis/registry"
)

func analyzer(t *testing.T) *analysis.Analyzer {
	t.Helper()
	a := registry.Get("clocksafe")
	if a == nil {
		t.Fatal("clocksafe is not registered in internal/analysis/registry")
	}
	return a
}

func police(t *testing.T, prefixes ...string) {
	t.Helper()
	old := clocksafe.PathPrefixes
	clocksafe.PathPrefixes = prefixes
	t.Cleanup(func() { clocksafe.PathPrefixes = old })
}

// TestClockSafe: a policed package outside the allowlist may read the
// scheduler clock but not advance it, and wall-clock reads are banned. The
// Translator.BeginRequest name collision must not trip the receiver-typed
// rule.
func TestClockSafe(t *testing.T) {
	police(t, "c")
	analysistest.Run(t, "testdata", analyzer(t), "c")
}

// TestAdvanceAllowlist: the ftl package may advance the scheduler, but wall
// clock stays banned even there.
func TestAdvanceAllowlist(t *testing.T) {
	police(t, "ftl")
	analysistest.Run(t, "testdata", analyzer(t), "ftl")
}
