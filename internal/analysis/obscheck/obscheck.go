// Package obscheck keeps observability free on the disabled path.
//
// The observability contract (internal/obs) is that a device with no tracer
// or exporter armed pays nothing: Histogram.Record is a plain array update
// and every tracer hook hides behind a nil check. Both halves erode
// silently — an unguarded `t.FlashOp(...)` merely panics in the first
// traced run, but an unguarded `s.tracer.FlashOp(fmt.Sprintf(...))` charges
// an allocation to every untraced request and nothing fails until someone
// reruns the AllocsPerRun guards. This analyzer makes the contract
// structural inside //ftl:hotpath functions (the same directive hotalloc
// polices):
//
//   - every method call on an *obs.Tracer receiver must be dominated by a
//     nil check of that receiver — `if t := s.tracer; t != nil { ... }`,
//     `if s.tracer != nil { ... }`, or an earlier `if s.tracer == nil {
//     return }` in the same block;
//   - arguments to obs.Tracer and obs.Histogram method calls must not
//     allocate: no composite literals, no fmt.Sprint*/Errorf calls, no
//     string concatenation — those run before the callee can check
//     anything, so they cost even when recording is a no-op.
//
// The live telemetry plane (internal/obs/live) extends the same contract:
//
//   - every method call on a *live.Cell receiver inside an //ftl:hotpath
//     function must be dominated by the same nil check — the cell pointer IS
//     the enabled gate, and a run without -telemetry-addr must not touch the
//     plane at all;
//   - outside package live, cell state must be read through the Cell's
//     accessor methods (Load, QueueStats, MeanDepth, ...), never by direct
//     field selection: the methods are the atomic publication protocol, and
//     a plain field read from a scraper goroutine is a data race the race
//     detector only catches when a scrape happens to land mid-run.
//
// Scoped, like hotalloc, to the packages that own the hot path, plus the
// host frontend and the live plane itself (which both carry telemetry
// state).
package obscheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/hotalloc"
)

// Analyzer enforces nil-gated tracers and allocation-free observability
// arguments inside //ftl:hotpath functions, plus the live telemetry plane's
// contract: enabled-gated cell calls in hot paths and accessor-only reads of
// cell state everywhere.
var Analyzer = &analysis.Analyzer{
	Name: "obscheck",
	Doc:  "hot-path observability must stay free when disabled: tracer and live-cell calls nil-guarded, no allocating arguments to Tracer/Histogram methods, no direct field reads of live.Cell state",
	Run:  run,
}

// PackageNames are the packages the analyzer polices: hotalloc's set (the
// packages that own //ftl:hotpath functions) plus the host frontend and the
// live plane, which carry telemetry state. A fresh map — hotalloc's is not
// mutated.
var PackageNames = mergedPackages()

func mergedPackages() map[string]bool {
	m := map[string]bool{"host": true, "live": true}
	for k, v := range hotalloc.PackageNames {
		m[k] = v
	}
	return m
}

func run(pass *analysis.Pass) (any, error) {
	if !PackageNames[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		// Cell state is published through atomics behind accessor methods;
		// a direct field read from outside the package bypasses the protocol
		// (inside package live the implementation necessarily touches its
		// own fields).
		if pass.Pkg.Name() != "live" {
			checkFieldReads(pass, file)
		}
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && isHotPath(fn) {
				checkStmts(pass, fn, fn.Body.List, map[string]bool{})
			}
		}
	}
	return nil, nil
}

// checkFieldReads flags direct field selections on live.Cell values anywhere
// in the file — cold paths included, since a scraper goroutine can race a
// field read no matter how rarely it runs.
func checkFieldReads(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if !isPkgType(s.Recv(), "live", "Cell") {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"non-atomic read of live.Cell field %s: cell state is published via atomics; use the Cell accessor methods",
			sel.Sel.Name)
		return true
	})
}

// isHotPath reports whether fn's doc comment carries the hotalloc directive.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == hotalloc.Directive {
			return true
		}
	}
	return false
}

// checkStmts walks one statement list carrying the set of expressions
// (flattened selector text) currently known non-nil. Guard tracking is
// lexical and name-based, like hotalloc's fresh-slice tracking: sound for
// the directive functions this repo writes.
func checkStmts(pass *analysis.Pass, fn *ast.FuncDecl, stmts []ast.Stmt, guarded map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			inner := copyGuards(guarded)
			// `if t := s.tracer; t != nil` guards both the bound name and
			// the source expression inside the body.
			if s.Init != nil {
				checkStmts(pass, fn, []ast.Stmt{s.Init}, guarded)
			}
			checkExprs(pass, fn, []ast.Expr{s.Cond}, guarded)
			if x, ok := nilCompare(s.Cond, token.NEQ); ok {
				inner[x] = true
				if as, ok := s.Init.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
					if id, ok := as.Lhs[0].(*ast.Ident); ok && flatten(as.Rhs[0]) != "" && id.Name == x {
						inner[flatten(as.Rhs[0])] = true
					}
				}
			}
			checkStmts(pass, fn, s.Body.List, inner)
			if s.Else != nil {
				elseGuards := copyGuards(guarded)
				if x, ok := nilCompare(s.Cond, token.EQL); ok {
					elseGuards[x] = true
				}
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					checkStmts(pass, fn, e.List, elseGuards)
				case *ast.IfStmt:
					checkStmts(pass, fn, []ast.Stmt{e}, elseGuards)
				}
			}
			// `if x == nil { return }` guards the rest of the block.
			if x, ok := nilCompare(s.Cond, token.EQL); ok && terminates(s.Body) {
				guarded[x] = true
			}
		case *ast.BlockStmt:
			checkStmts(pass, fn, s.List, copyGuards(guarded))
		case *ast.ForStmt:
			checkStmts(pass, fn, s.Body.List, copyGuards(guarded))
		case *ast.RangeStmt:
			checkStmts(pass, fn, s.Body.List, copyGuards(guarded))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkStmts(pass, fn, cc.Body, copyGuards(guarded))
				}
			}
		default:
			var exprs []ast.Expr
			ast.Inspect(stmt, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					exprs = append(exprs, e)
					return false
				}
				return true
			})
			checkExprs(pass, fn, exprs, guarded)
		}
	}
}

// checkExprs reports unguarded tracer calls and allocating arguments in the
// given expressions.
func checkExprs(pass *analysis.Pass, fn *ast.FuncDecl, exprs []ast.Expr, guarded map[string]bool) {
	for _, expr := range exprs {
		ast.Inspect(expr, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvTracer := isObsType(pass, sel, "Tracer")
			recvHist := isObsType(pass, sel, "Histogram")
			recvCell := isSelType(pass, sel, "live", "Cell")
			if !recvTracer && !recvHist && !recvCell {
				return true
			}
			if recvTracer {
				if recv := flatten(sel.X); !guarded[recv] {
					pass.Reportf(call.Pos(),
						"tracer call %s.%s in hot-path function %s without a nil guard: the disabled path must do no work (wrap in `if %s != nil` or bind-and-check)",
						recv, sel.Sel.Name, fn.Name.Name, recv)
				}
			}
			if recvCell {
				// The cell pointer is the telemetry enabled-gate: a run
				// without -telemetry-addr leaves it nil, and the hot path
				// must then never reach the plane.
				if recv := flatten(sel.X); !guarded[recv] {
					pass.Reportf(call.Pos(),
						"telemetry call %s.%s in hot-path function %s without an enabled-gate: the cell is nil when telemetry is off (wrap in `if %s != nil` or bind-and-check)",
						recv, sel.Sel.Name, fn.Name.Name, recv)
				}
				return true
			}
			for _, arg := range call.Args {
				if pos, what, bad := allocatingExpr(pass, arg); bad {
					pass.Reportf(pos,
						"%s in argument to %s.%s in hot-path function %s: argument evaluation allocates even when observability is disabled",
						what, flatten(sel.X), sel.Sel.Name, fn.Name.Name)
				}
			}
			return true
		})
	}
}

// isObsType reports whether sel's receiver is the named type from a package
// named "obs" (possibly behind a pointer).
func isObsType(pass *analysis.Pass, sel *ast.SelectorExpr, name string) bool {
	return isSelType(pass, sel, "obs", name)
}

// isSelType reports whether sel's receiver is the named type from the named
// package (possibly behind a pointer).
func isSelType(pass *analysis.Pass, sel *ast.SelectorExpr, pkg, name string) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	return isPkgType(s.Recv(), pkg, name)
}

// isPkgType reports whether t is the named type from the named package
// (possibly behind a pointer).
func isPkgType(t types.Type, pkg, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == pkg
}

// allocatingExpr reports the first sub-expression of e that allocates on
// evaluation: a composite literal, a fmt.Sprint*/Errorf call, or a string
// concatenation.
func allocatingExpr(pass *analysis.Pass, e ast.Expr) (token.Pos, string, bool) {
	var pos token.Pos
	var what string
	ast.Inspect(e, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			pos, what = n.Pos(), "composite literal"
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" && id.Obj == nil {
					pos, what = n.Pos(), "fmt."+sel.Sel.Name+" call"
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pos, what = n.Pos(), "string concatenation"
						return false
					}
				}
			}
		}
		return true
	})
	return pos, what, what != ""
}

// nilCompare matches `x <op> nil` / `nil <op> x` and returns x's flattened
// selector text.
func nilCompare(cond ast.Expr, op token.Token) (string, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return "", false
	}
	if isNil(be.Y) {
		if f := flatten(be.X); f != "" {
			return f, true
		}
	}
	if isNil(be.X) {
		if f := flatten(be.Y); f != "" {
			return f, true
		}
	}
	return "", false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block's last statement leaves the function
// or loop (return, panic, continue, break, goto).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// flatten renders a selector chain of identifiers ("s.tracer") or a lone
// identifier as text; anything else (calls, indexing) returns "".
func flatten(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := flatten(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return flatten(e.X)
	}
	return ""
}

func copyGuards(g map[string]bool) map[string]bool {
	c := make(map[string]bool, len(g)+1)
	for k, v := range g {
		c[k] = v
	}
	return c
}
