// Fixture: tracer calls and histogram arguments inside hot-path functions —
// the unguarded/allocating shapes the analyzer must flag, and the
// sanctioned nil-gated, allocation-free shapes it must accept.
package ssd

import (
	"fmt"
	"live"
	"obs"
	"time"
)

type span struct {
	name string
	end  time.Duration
}

type sched struct {
	tracer *obs.Tracer
	hist   obs.Histogram
	parent int64
	cell   *live.Cell
}

//ftl:hotpath
func (s *sched) unguarded(die int, start, end time.Duration) {
	s.tracer.FlashOp(0, die, 0, start, end, s.parent) // want `tracer call s\.tracer\.FlashOp in hot-path function unguarded without a nil guard`
}

//ftl:hotpath
func (s *sched) guardedInline(die int, start, end time.Duration) {
	if s.tracer != nil {
		s.parent = s.tracer.FlashOp(0, die, 0, start, end, s.parent)
	}
}

//ftl:hotpath
func (s *sched) guardedBind(die int, start, end time.Duration) {
	if t := s.tracer; t != nil {
		s.parent = t.FlashOp(0, die, 0, start, end, s.parent)
	}
}

//ftl:hotpath
func (s *sched) guardedEarlyReturn(die int, start, end time.Duration) {
	if s.tracer == nil {
		return
	}
	s.parent = s.tracer.FlashOp(0, die, 0, start, end, s.parent)
}

//ftl:hotpath
func (s *sched) guardWrongVar(t2 *obs.Tracer, die int, start, end time.Duration) {
	if t2 != nil {
		s.tracer.FlashOp(0, die, 0, start, end, s.parent) // want `tracer call s\.tracer\.FlashOp in hot-path function guardWrongVar without a nil guard`
	}
}

//ftl:hotpath
func (s *sched) allocatingArgs(name string, id int64, end time.Duration) {
	if t := s.tracer; t != nil {
		t.RequestSpan(fmt.Sprintf("req-%d", id), id, 0, end) // want `fmt\.Sprintf call in argument to t\.RequestSpan in hot-path function allocatingArgs`
		t.RequestSpan(name+"!", id, 0, end)                  // want `string concatenation in argument to t\.RequestSpan in hot-path function allocatingArgs`
	}
	s.hist.Record(time.Duration(span{name: name, end: end}.end)) // want `composite literal in argument to s\.hist\.Record in hot-path function allocatingArgs`
}

//ftl:hotpath
func (s *sched) recordPlain(d time.Duration) {
	// Histogram.Record itself needs no guard — it is unconditionally cheap;
	// only its arguments are policed.
	s.hist.Record(d)
}

// coldTrace is not marked: cold paths may call the tracer however they like.
func (s *sched) coldTrace(die int, start, end time.Duration) {
	s.tracer.FlashOp(0, die, 0, start, end, s.parent)
}

//ftl:hotpath
func (s *sched) telemetryUnguarded(reqs int64) {
	if s.cell.Due(reqs) { // want `telemetry call s\.cell\.Due in hot-path function telemetryUnguarded without an enabled-gate`
		s.cell.SetQueueStats(reqs, 0, 0) // want `telemetry call s\.cell\.SetQueueStats in hot-path function telemetryUnguarded without an enabled-gate`
	}
}

//ftl:hotpath
func (s *sched) telemetryGuardedBind(reqs int64) {
	if c := s.cell; c != nil {
		if c.Due(reqs) {
			c.SetQueueStats(reqs, 0, 0)
		}
	}
}

//ftl:hotpath
func (s *sched) telemetryGuardedEarlyReturn(reqs int64) {
	if s.cell == nil {
		return
	}
	if s.cell.Due(reqs) {
		s.cell.SetQueueStats(reqs, 0, 0)
	}
}

// coldCell is not hot-path-marked, but the field-read rule applies to cold
// paths too: a scraper goroutine can race a direct field read no matter how
// rarely it runs.
func (s *sched) coldCell() int64 {
	if s.cell == nil {
		return 0
	}
	return s.cell.Epoch // want `non-atomic read of live\.Cell field Epoch`
}

// loadEpoch is the sanctioned read shape: accessor methods only.
func (s *sched) loadEpoch() *live.Snapshot {
	if s.cell == nil {
		return nil
	}
	return s.cell.Load()
}
