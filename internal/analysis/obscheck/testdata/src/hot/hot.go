// Fixture: tracer calls and histogram arguments inside hot-path functions —
// the unguarded/allocating shapes the analyzer must flag, and the
// sanctioned nil-gated, allocation-free shapes it must accept.
package ssd

import (
	"fmt"
	"obs"
	"time"
)

type span struct {
	name string
	end  time.Duration
}

type sched struct {
	tracer *obs.Tracer
	hist   obs.Histogram
	parent int64
}

//ftl:hotpath
func (s *sched) unguarded(die int, start, end time.Duration) {
	s.tracer.FlashOp(0, die, 0, start, end, s.parent) // want `tracer call s\.tracer\.FlashOp in hot-path function unguarded without a nil guard`
}

//ftl:hotpath
func (s *sched) guardedInline(die int, start, end time.Duration) {
	if s.tracer != nil {
		s.parent = s.tracer.FlashOp(0, die, 0, start, end, s.parent)
	}
}

//ftl:hotpath
func (s *sched) guardedBind(die int, start, end time.Duration) {
	if t := s.tracer; t != nil {
		s.parent = t.FlashOp(0, die, 0, start, end, s.parent)
	}
}

//ftl:hotpath
func (s *sched) guardedEarlyReturn(die int, start, end time.Duration) {
	if s.tracer == nil {
		return
	}
	s.parent = s.tracer.FlashOp(0, die, 0, start, end, s.parent)
}

//ftl:hotpath
func (s *sched) guardWrongVar(t2 *obs.Tracer, die int, start, end time.Duration) {
	if t2 != nil {
		s.tracer.FlashOp(0, die, 0, start, end, s.parent) // want `tracer call s\.tracer\.FlashOp in hot-path function guardWrongVar without a nil guard`
	}
}

//ftl:hotpath
func (s *sched) allocatingArgs(name string, id int64, end time.Duration) {
	if t := s.tracer; t != nil {
		t.RequestSpan(fmt.Sprintf("req-%d", id), id, 0, end) // want `fmt\.Sprintf call in argument to t\.RequestSpan in hot-path function allocatingArgs`
		t.RequestSpan(name+"!", id, 0, end)                  // want `string concatenation in argument to t\.RequestSpan in hot-path function allocatingArgs`
	}
	s.hist.Record(time.Duration(span{name: name, end: end}.end)) // want `composite literal in argument to s\.hist\.Record in hot-path function allocatingArgs`
}

//ftl:hotpath
func (s *sched) recordPlain(d time.Duration) {
	// Histogram.Record itself needs no guard — it is unconditionally cheap;
	// only its arguments are policed.
	s.hist.Record(d)
}

// coldTrace is not marked: cold paths may call the tracer however they like.
func (s *sched) coldTrace(die int, start, end time.Duration) {
	s.tracer.FlashOp(0, die, 0, start, end, s.parent)
}
