// Fixture stub of the live telemetry plane: the analyzer matches the Cell
// receiver by type name + package name, so the shapes here mirror
// internal/obs/live without its implementation. Epoch is an exported plain
// field the real Cell would never have — it exists so the non-atomic
// field-read diagnostic has something to fire on.
package live

type Snapshot struct {
	Seq int64
}

type Cell struct {
	Epoch    int64
	admitted int64
}

func (c *Cell) Due(requests int64) bool { return requests%1024 == 0 }

func (c *Cell) Load() *Snapshot { return nil }

func (c *Cell) SetQueueStats(admitted, depthSum, maxDepth int64) { c.admitted = admitted }
