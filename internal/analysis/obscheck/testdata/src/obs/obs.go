// Fixture stub of the observability package: the analyzer matches the
// Tracer/Histogram receivers by type name + package name, so the shapes
// here mirror internal/obs without its implementation.
package obs

import "time"

type Op uint8

type Tracer struct{ events int64 }

func (t *Tracer) FlashOp(op Op, die, channel int, start, end time.Duration, parent int64) int64 {
	t.events++
	return t.events
}

func (t *Tracer) RequestSpan(name string, id int64, start, end time.Duration) { t.events += 2 }

type Histogram struct {
	Count int64
	Sum   int64
}

func (h *Histogram) Record(d time.Duration) {
	h.Count++
	h.Sum += int64(d)
}
