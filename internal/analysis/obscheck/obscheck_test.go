package obscheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/obscheck"
)

func TestObscheck(t *testing.T) {
	analysistest.Run(t, "testdata", obscheck.Analyzer, "hot")
}
