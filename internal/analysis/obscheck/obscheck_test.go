package obscheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/registry"
)

// TestObscheck resolves the analyzer through the registry: being registered —
// and therefore run by cmd/ftlint — is part of what the test proves.
func TestObscheck(t *testing.T) {
	a := registry.Get("obscheck")
	if a == nil {
		t.Fatal("obscheck is not registered in internal/analysis/registry")
	}
	analysistest.Run(t, "testdata", a, "hot")
}
