// Package analysis is a self-contained static-analysis framework modeled on
// golang.org/x/tools/go/analysis, trimmed to what this repository's ftlint
// checkers need. The x/tools module is deliberately not vendored: the four
// repo-specific analyzers only require parsed files plus full type
// information, and the two drivers (the standalone loader in load.go and the
// `go vet -vettool` protocol in unitchecker.go) can supply both with nothing
// beyond the standard library and the go command.
//
// An Analyzer receives one type-checked package per Pass and reports
// Diagnostics through Pass.Report. Analyzers must be stateless across
// passes; per-run configuration lives in exported package variables of the
// analyzer's package (see e.g. cacheaccount.AllowedFuncs).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is a one-paragraph description: what shape is flagged and why.
	Doc string
	// Run executes the check on one package. The returned value is unused
	// by the drivers (kept for parity with x/tools signatures).
	Run func(*Pass) (any, error)
}

// Pass is the unit of work handed to an Analyzer: one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers that
// police library/CLI determinism or geometry skip tests, which may
// legitimately pin literals or exercise global state.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FileBase returns the basename of the file containing pos.
func (p *Pass) FileBase(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// Finding pairs a diagnostic with the analyzer that produced it; drivers
// collect these across analyzers before printing.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

// RunAnalyzers executes each analyzer over one type-checked package and
// returns the findings, with //lint:ignore and //lint:file-ignore
// suppressions already applied (malformed directives are returned as
// findings of the pseudo-analyzer "lintdirective"). A nil info or pkg is
// rejected: every ftlint analyzer depends on type information, and running
// without it would silently report nothing.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	if pkg == nil || info == nil {
		return nil, fmt.Errorf("analysis: package not type-checked")
	}
	sup := parseSuppressions(fset, files)
	out := append([]Finding(nil), sup.malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if sup.suppressed(name, pos) {
				return
			}
			out = append(out, Finding{
				Analyzer: name,
				Position: pos,
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return out, fmt.Errorf("analysis: %s: %w", a.Name, err)
		}
	}
	return out, nil
}

// DirectiveAt looks for a `//<directive> <reason>` comment anchored to the
// source line of pos: trailing on the same line, or a comment on the line
// immediately above. It returns the reason text and whether the directive
// was found at all — analyzers that require a justification treat a found
// directive with an empty reason as its own finding. The shared semantic
// annotations (//ftl:orderinsensitive, //ftl:shardsafe) go through this so
// placement rules stay identical across analyzers.
func (p *Pass) DirectiveAt(pos token.Pos, directive string) (reason string, found bool) {
	target := p.Fset.Position(pos)
	for _, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename != target.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := p.Fset.Position(c.Pos()).Line
				if line != target.Line && line != target.Line-1 {
					continue
				}
				text := strings.TrimSpace(c.Text)
				if text == directive {
					return "", true
				}
				if strings.HasPrefix(text, directive+" ") {
					return strings.TrimSpace(text[len(directive)+1:]), true
				}
			}
		}
	}
	return "", false
}

// NewInfo returns a types.Info with every map the analyzers consult
// populated, so both drivers and analysistest type-check identically.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
