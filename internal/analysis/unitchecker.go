// The `go vet -vettool` protocol. When cmd/ftlint is passed to go vet, the
// go command drives it once per compilation unit:
//
//	ftlint -V=full      report an executable identity for build caching
//	ftlint -flags       describe tool flags as JSON (we have none)
//	ftlint <unit>.cfg   analyze one unit described by a JSON config
//
// The config names the unit's Go files and maps every dependency to the
// export-data file the compiler already produced, so type-checking here needs
// no package loading at all. Diagnostics print to stderr as file:line:col
// lines and a non-zero exit tells go vet the unit failed. This reimplements
// the contract of x/tools' unitchecker (which cmd/vet itself uses) on the
// standard library alone.
package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// UnitConfig is the JSON compilation-unit description written by cmd/go
// (see cmd/go/internal/work.(*Builder).vet). Field names are the protocol;
// only the ones this driver consumes are declared.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string // import path as written → package path
	PackageFile               map[string]string // package path → export data file
	Standard                  map[string]bool
	VetxOnly                  bool   // run only to produce facts for importers
	VetxOutput                string // where go vet expects the fact file
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements `ftlint -V=full`. The go command requires the
// second field to be "version" and, for a "devel" version, a trailing
// buildID it can fold into its action cache key; hashing the executable
// itself makes rebuilt tools invalidate stale vet results.
func PrintVersion(progname string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", progname, id)
}

// PrintFlags implements `ftlint -flags`: a JSON description of tool flags,
// queried by go vet before every run. Declaring a flag here is what lets
// `go vet -vettool=ftlint -baseline=... ./...` forward it to each unit
// invocation. baseline-stamp exists purely to reach the go command's action
// cache key: vet caches unit results keyed on tool flag *values*, so the
// Makefile passes the baseline file's content hash to invalidate cached
// results when the baseline changes.
func PrintFlags() {
	type toolFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []toolFlag{
		{Name: "baseline", Usage: "path to lint-baseline.json; known findings are tolerated"},
		{Name: "baseline-stamp", Usage: "opaque content hash of the baseline file (cache busting)"},
	}
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
}

// RunUnit analyzes the single compilation unit described by cfgFile and
// returns the process exit code: 0 clean, 1 findings or analyzer failure.
// With a non-empty baselinePath, findings covered by the baseline are
// tolerated silently; staleness is left to the standalone driver, which
// sees the whole tree at once.
func RunUnit(cfgFile, baselinePath string, analyzers []*Analyzer) int {
	cfg, err := readUnitConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 1
	}

	// Fact-only runs exist so fact-based analyzers can see dependencies;
	// ftlint's analyzers keep no cross-package facts, so just satisfy the
	// protocol by producing an (empty) fact file for the cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it better
			}
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	exportImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return exportImporter.Import(path)
		}),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 1
	}

	findings, err := RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 1
	}
	if baselinePath != "" {
		baseline, err := LoadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 1
		}
		findings, _ = baseline.Filter(findings)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Position, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

func readUnitConfig(filename string) (*UnitConfig, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
