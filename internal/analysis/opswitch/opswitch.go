// Package opswitch enforces exhaustive switches over the request-op enum.
//
// The host interface grew from a boolean (read/write) to a five-way enum
// (read, write, FUA write, trim, flush), and the original migration had to
// chase down every `switch req.Op` in six translators, three baseline
// devices, the write buffer and the crash harness. A switch that silently
// falls through for a new op is exactly how a future op (say, a zone reset)
// would corrupt state without failing loudly. This analyzer flags every
// switch statement over a value of type trace.Op that neither covers all
// declared op constants nor carries a default clause.
//
// The constant set is discovered from the Op type's defining package, so
// adding an op constant automatically widens the requirement everywhere.
// The NumOps sentinel is exempt: it bounds the enum and is not a request
// kind.
package opswitch

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags non-exhaustive switches over the trace.Op enum.
var Analyzer = &analysis.Analyzer{
	Name: "opswitch",
	Doc:  "require switches over trace.Op to cover every op constant or declare a default",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			named := opType(tv.Type)
			if named == nil {
				return true
			}
			missing := missingOps(pass, sw, named)
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(),
					"switch on %s.Op is not exhaustive: missing %s (add the cases or a default clause)",
					named.Obj().Pkg().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil, nil
}

// opType returns t as a named type Op declared in a package named trace,
// or nil if it is anything else.
func opType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Op" || obj.Pkg() == nil || obj.Pkg().Name() != "trace" {
		return nil
	}
	return named
}

// missingOps returns the names of op constants not covered by the switch, in
// declaration-value order. A default clause covers everything.
func missingOps(pass *analysis.Pass, sw *ast.SwitchStmt, named *types.Named) []string {
	type opConst struct {
		name string
		val  int64
	}
	var all []opConst
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if name == "NumOps" { // sentinel, not a request kind
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok {
			continue
		}
		all = append(all, opConst{name, v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].val < all[j].val })

	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return nil // default clause: exhaustive by construction
		}
		for _, expr := range clause.List {
			ctv, ok := pass.TypesInfo.Types[expr]
			if !ok || ctv.Value == nil {
				continue
			}
			if v, ok := constant.Int64Val(ctv.Value); ok {
				covered[v] = true
			}
		}
	}

	var missing []string
	for _, c := range all {
		if !covered[c.val] {
			missing = append(missing, c.name)
		}
	}
	return missing
}
