// Fixture: switches over the request-op enum, good and bad shapes.
package a

import (
	"trace"
)

func exhaustive(req trace.Request) int {
	switch req.Op {
	case trace.OpRead:
		return 1
	case trace.OpWrite, trace.OpWriteFUA:
		return 2
	case trace.OpTrim:
		return 3
	case trace.OpFlush:
		return 4
	}
	return 0
}

func withDefault(op trace.Op) int {
	switch op {
	case trace.OpRead:
		return 1
	default:
		return 0
	}
}

func missingNewOps(req trace.Request) int {
	switch req.Op { // want `switch on trace.Op is not exhaustive: missing OpWriteFUA, OpTrim, OpFlush`
	case trace.OpRead:
		return 1
	case trace.OpWrite:
		return 2
	}
	return 0
}

func missingFlush(op trace.Op) int {
	switch op { // want `switch on trace.Op is not exhaustive: missing OpFlush`
	case trace.OpRead, trace.OpWrite, trace.OpWriteFUA, trace.OpTrim:
		return 1
	}
	return 0
}

func notAnOpSwitch(x int) int {
	// A switch over a non-Op value is out of scope.
	switch x {
	case 1:
		return 1
	}
	return 0
}

func tagless(op trace.Op) int {
	// A tagless switch is a condition chain, not an enum dispatch.
	switch {
	case op == trace.OpRead:
		return 1
	}
	return 0
}
