// Fixture stand-in for repro/internal/trace: the analyzer matches a named
// type Op in a package named trace and discovers its constants from the
// package scope.
package trace

type Op uint8

const (
	OpRead Op = iota
	OpWrite
	OpWriteFUA
	OpTrim
	OpFlush
	NumOps
)

type Request struct {
	Arrival int64
	Offset  int64
	Length  int64
	Op      Op
}
