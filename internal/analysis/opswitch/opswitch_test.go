package opswitch_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/registry"
)

// TestOpSwitch resolves the analyzer through the registry: being registered —
// and therefore run by cmd/ftlint — is part of what the test proves.
func TestOpSwitch(t *testing.T) {
	a := registry.Get("opswitch")
	if a == nil {
		t.Fatal("opswitch is not registered in internal/analysis/registry")
	}
	analysistest.Run(t, "testdata", a, "a")
}
