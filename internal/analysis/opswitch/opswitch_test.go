package opswitch_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/opswitch"
)

func TestOpSwitch(t *testing.T) {
	analysistest.Run(t, "testdata", opswitch.Analyzer, "a")
}
