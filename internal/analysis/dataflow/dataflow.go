// Package dataflow is the intra-procedural dataflow layer under the ftlint
// analyzers. The original analyzers matched single AST nodes; the
// determinism checks (maporder in particular) need to answer a flow
// question instead: does a value bound by a `range` statement *reach* a
// write that feeds simulation state — a field store, a slice element or
// append, a channel send, an argument of a call — possibly through
// intermediate assignments, conditionals and nested loops?
//
// The engine is deliberately small ("CFG-lite"): it lowers one statement
// list to a graph of basic blocks over the plain go/ast statements, then
// runs a forward taint fixpoint over it. The lattice is the powerset of
// types.Object (locals, parameters, named results); join is set union;
// transfer functions cover assignment (with strong updates for plain
// identifier targets), var declarations, nested range bindings, and
// conservative propagation through call results. Control flow covers
// if/else, for, range, switch, type switch, select, break/continue and
// return. goto and labeled branches are rare in this codebase and are
// handled conservatively: the branch's block simply keeps every taint it
// had, and analysis continues on the syntactic successor, so a goto can
// only make the analysis report more, never less.
//
// Precision notes, in the direction of soundness for the maporder use:
//
//   - aliasing is not tracked: `p := &x; *p = v` taints neither x nor p's
//     pointee. Analyzers treat stores through pointers as sinks instead.
//   - calls do not transfer taint into the callee; a call with a tainted
//     argument or receiver is the analyzers' sink, which is exactly the
//     historical bug shape (env.WriteTP(v, ...) inside a map range).
//   - a call with any tainted operand taints its results, so
//     `v2 := f(k)` keeps the chain alive when the analyzer chose not to
//     sink the call (e.g. allowlisted pure builtins).
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Set is a taint set: the objects currently carrying iteration-derived
// values.
type Set map[types.Object]bool

func (s Set) clone() Set {
	c := make(Set, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// union adds src into dst, reporting whether dst changed.
func (s Set) union(src Set) bool {
	changed := false
	for k := range src {
		if !s[k] {
			s[k] = true
			changed = true
		}
	}
	return changed
}

// Result holds the fixpoint: the taint set reaching each statement of the
// analyzed body. Statements inside nested control flow are present
// individually; a control statement (if/for/switch) maps to the state at
// its condition's evaluation.
type Result struct {
	info *types.Info
	in   map[ast.Stmt]Set
}

// Run seeds the given objects as tainted at the entry of body and
// propagates to fixpoint. Body is typically the body of a range statement;
// seeds its key/value objects.
func Run(body *ast.BlockStmt, info *types.Info, seeds []types.Object) *Result {
	b := &builder{info: info}
	entry := b.newBlock()
	exit := b.newBlock()
	last := b.stmtList(body.List, entry, exit, nil, nil)
	last.addSucc(exit)

	seed := make(Set, len(seeds))
	for _, o := range seeds {
		if o != nil {
			seed[o] = true
		}
	}

	// Forward worklist fixpoint over blocks.
	inB := make(map[*block]Set)
	inB[entry] = seed
	work := []*block{entry}
	res := &Result{info: info, in: make(map[ast.Stmt]Set)}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		state := inB[blk].clone()
		for _, st := range blk.stmts {
			// Record (join) the state reaching this statement.
			if prev, ok := res.in[st]; ok {
				prev.union(state)
			} else {
				res.in[st] = state.clone()
			}
			transfer(st, info, state)
		}
		for _, succ := range blk.succs {
			if cur, ok := inB[succ]; !ok {
				inB[succ] = state.clone()
				work = append(work, succ)
			} else if cur.union(state) {
				work = append(work, succ)
			}
		}
	}
	return res
}

// At returns the taint set reaching stmt, or nil if the statement was not
// part of the analyzed body.
func (r *Result) At(stmt ast.Stmt) Set { return r.in[stmt] }

// TaintedExpr reports whether e evaluates to (or through) a tainted value
// under the taint set s: a tainted identifier, any selection or indexing
// rooted at one, or a call with a tainted operand.
func (r *Result) TaintedExpr(e ast.Expr, s Set) bool { return taintedExpr(e, r.info, s) }

// ---- CFG construction ----

type block struct {
	stmts []ast.Stmt
	succs []*block
}

func (b *block) addSucc(s *block) {
	for _, have := range b.succs {
		if have == s {
			return
		}
	}
	b.succs = append(b.succs, s)
}

type builder struct {
	info   *types.Info
	blocks []*block
}

func (b *builder) newBlock() *block {
	blk := &block{}
	b.blocks = append(b.blocks, blk)
	return blk
}

// stmtList threads a statement list from cur, returning the block that
// control reaches after the list. brk and cont are the targets of an
// unlabeled break/continue, exit collects return paths.
func (b *builder) stmtList(stmts []ast.Stmt, cur, exit, brk, cont *block) *block {
	for _, st := range stmts {
		cur = b.stmt(st, cur, exit, brk, cont)
	}
	return cur
}

func (b *builder) stmt(st ast.Stmt, cur, exit, brk, cont *block) *block {
	switch s := st.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur, exit, brk, cont)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, exit, brk, cont)
		}
		cur.stmts = append(cur.stmts, s) // condition evaluation point
		after := b.newBlock()
		then := b.newBlock()
		cur.addSucc(then)
		b.stmt(s.Body, then, exit, brk, cont).addSucc(after)
		if s.Else != nil {
			els := b.newBlock()
			cur.addSucc(els)
			b.stmt(s.Else, els, exit, brk, cont).addSucc(after)
		} else {
			cur.addSucc(after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, exit, brk, cont)
		}
		head := b.newBlock()
		after := b.newBlock()
		cur.addSucc(head)
		head.stmts = append(head.stmts, s) // condition evaluation point
		body := b.newBlock()
		head.addSucc(body)
		head.addSucc(after) // condition false (or absent: break only)
		post := b.newBlock()
		b.stmt(s.Body, body, exit, after, post).addSucc(post)
		if s.Post != nil {
			b.stmt(s.Post, post, exit, nil, nil).addSucc(head)
		} else {
			post.addSucc(head)
		}
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		after := b.newBlock()
		cur.addSucc(head)
		head.stmts = append(head.stmts, s) // binding evaluation point
		body := b.newBlock()
		head.addSucc(body)
		head.addSucc(after)
		b.stmt(s.Body, body, exit, after, head).addSucc(head)
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var init ast.Stmt
		var clauses []ast.Stmt
		switch s := st.(type) {
		case *ast.SwitchStmt:
			init, clauses = s.Init, s.Body.List
		case *ast.TypeSwitchStmt:
			init, clauses = s.Init, s.Body.List
		case *ast.SelectStmt:
			clauses = s.Body.List
		}
		if init != nil {
			cur = b.stmt(init, cur, exit, brk, cont)
		}
		cur.stmts = append(cur.stmts, st) // tag/assign evaluation point
		after := b.newBlock()
		cur.addSucc(after) // no case taken / empty switch
		for _, cl := range clauses {
			var body []ast.Stmt
			switch cl := cl.(type) {
			case *ast.CaseClause:
				body = cl.Body
			case *ast.CommClause:
				if cl.Comm != nil {
					body = append([]ast.Stmt{cl.Comm}, cl.Body...)
				} else {
					body = cl.Body
				}
			}
			blk := b.newBlock()
			cur.addSucc(blk)
			b.stmtList(body, blk, exit, after, cont).addSucc(after)
		}
		return after

	case *ast.ReturnStmt:
		cur.stmts = append(cur.stmts, s)
		cur.addSucc(exit)
		return b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		cur.stmts = append(cur.stmts, s)
		switch {
		case s.Tok == token.BREAK && s.Label == nil && brk != nil:
			cur.addSucc(brk)
		case s.Tok == token.CONTINUE && s.Label == nil && cont != nil:
			cur.addSucc(cont)
		default:
			// goto / labeled branch: connect to exit so the state is not
			// lost; the syntactic successor continues fresh (conservative).
			cur.addSucc(exit)
		}
		return b.newBlock()

	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, cur, exit, brk, cont)

	default:
		// Simple statements: assign, decl, expr, send, incdec, defer, go,
		// empty.
		cur.stmts = append(cur.stmts, st)
		return cur
	}
}

// ---- transfer functions ----

// transfer applies one statement's effect on the taint set.
func transfer(st ast.Stmt, info *types.Info, s Set) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) == len(st.Rhs) {
			// Evaluate taints first: a, b = b, a must not self-launder.
			taints := make([]bool, len(st.Rhs))
			for i, rhs := range st.Rhs {
				taints[i] = taintedExpr(rhs, info, s)
				if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
					// op-assign reads the target too.
					taints[i] = taints[i] || taintedExpr(st.Lhs[i], info, s)
				}
			}
			for i, lhs := range st.Lhs {
				assignTo(lhs, taints[i], info, s)
			}
		} else {
			// Tuple assignment: v, ok := m[k] — every target gets the
			// combined taint of the single RHS.
			t := false
			for _, rhs := range st.Rhs {
				t = t || taintedExpr(rhs, info, s)
			}
			for _, lhs := range st.Lhs {
				assignTo(lhs, t, info, s)
			}
		}

	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			t := false
			for _, v := range vs.Values {
				t = t || taintedExpr(v, info, s)
			}
			for _, name := range vs.Names {
				assignTo(name, t, info, s)
			}
		}

	case *ast.RangeStmt:
		t := taintedExpr(st.X, info, s)
		assignTo(st.Key, t, info, s)
		assignTo(st.Value, t, info, s)

	case *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.SelectStmt:
		// Condition/tag evaluation has no binding effect.

	case *ast.TypeSwitchStmt:
		// switch y := x.(type): each case binds y; taint via Implicits is
		// keyed per clause — approximate by tainting every implicit def.
		if as, ok := st.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			if taintedExpr(as.Rhs[0], info, s) {
				for _, lhs := range as.Lhs {
					assignTo(lhs, true, info, s)
				}
			}
		}
	}
}

// assignTo updates the taint of one assignment target. Only plain
// identifiers get strong updates; stores through selectors, indexes or
// dereferences leave the set unchanged (the analyzers classify those as
// sinks themselves).
func assignTo(lhs ast.Expr, tainted bool, info *types.Info, s Set) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	if tainted {
		s[obj] = true
	} else {
		delete(s, obj)
	}
}

// taintedExpr reports whether evaluating e touches a tainted object: a
// tainted identifier anywhere inside it, counting call results as tainted
// when any operand is.
func taintedExpr(e ast.Expr, info *types.Info, s Set) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if obj != nil && s[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
