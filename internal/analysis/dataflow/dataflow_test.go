package dataflow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// load type-checks one source string and returns the first function's body
// plus the machinery to look objects up by name.
func load(t *testing.T, src string) (*ast.File, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return f, info, fset
}

func funcBody(f *ast.File, name string) *ast.BlockStmt {
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return fn.Body
		}
	}
	return nil
}

func paramObj(info *types.Info, f *ast.File, fn, param string) types.Object {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != fn {
			continue
		}
		for _, field := range fd.Type.Params.List {
			for _, n := range field.Names {
				if n.Name == param {
					return info.Defs[n]
				}
			}
		}
	}
	return nil
}

// stmtAtLine finds the statement recorded by the fixpoint on a given line.
func stmtAtLine(res *dataflow.Result, body *ast.BlockStmt, fset *token.FileSet, line int) (ast.Stmt, dataflow.Set) {
	var hit ast.Stmt
	var set dataflow.Set
	ast.Inspect(body, func(n ast.Node) bool {
		if st, ok := n.(ast.Stmt); ok && fset.Position(st.Pos()).Line == line {
			if s := res.At(st); s != nil && hit == nil {
				hit, set = st, s
			}
		}
		return true
	})
	return hit, set
}

func TestTaintThroughAssignChain(t *testing.T) {
	src := `package x
func f(k int) int {
	a := k       // line 3
	b := a + 1   // line 4
	b = 0        // line 5: strong update kills taint
	c := b       // line 6
	return c     // line 7
}`
	f, info, fset := load(t, src)
	body := funcBody(f, "f")
	res := dataflow.Run(body, info, []types.Object{paramObj(info, f, "f", "k")})

	st, set := stmtAtLine(res, body, fset, 4)
	if st == nil {
		t.Fatal("no state at line 4")
	}
	if !res.TaintedExpr(st.(*ast.AssignStmt).Rhs[0], set) {
		t.Error("a+1 should be tainted at line 4")
	}
	st, set = stmtAtLine(res, body, fset, 7)
	if st == nil {
		t.Fatal("no state at line 7")
	}
	if res.TaintedExpr(st.(*ast.ReturnStmt).Results[0], set) {
		t.Error("c should be clean after b's strong update")
	}
}

func TestTaintJoinsAcrossBranches(t *testing.T) {
	src := `package x
func f(k int, cond bool) int {
	v := 0
	if cond {
		v = k
	} else {
		v = 1
	}
	return v // line 9: tainted via the then-branch
}`
	f, info, fset := load(t, src)
	body := funcBody(f, "f")
	res := dataflow.Run(body, info, []types.Object{paramObj(info, f, "f", "k")})
	st, set := stmtAtLine(res, body, fset, 9)
	if st == nil {
		t.Fatal("no state at return")
	}
	if !res.TaintedExpr(st.(*ast.ReturnStmt).Results[0], set) {
		t.Error("v should be tainted at the join of the two branches")
	}
}

func TestTaintSurvivesLoopBackEdge(t *testing.T) {
	src := `package x
func f(k int) int {
	sum := 0
	for i := 0; i < 3; i++ {
		next := sum + k
		sum = next
	}
	return sum // line 8: tainted around the back edge
}`
	f, info, fset := load(t, src)
	body := funcBody(f, "f")
	res := dataflow.Run(body, info, []types.Object{paramObj(info, f, "f", "k")})
	st, set := stmtAtLine(res, body, fset, 8)
	if st == nil {
		t.Fatal("no state at return")
	}
	if !res.TaintedExpr(st.(*ast.ReturnStmt).Results[0], set) {
		t.Error("sum should be tainted after the loop fixpoint")
	}
}

func TestNestedRangeBindsTaint(t *testing.T) {
	src := `package x
func f(m map[int][]int) int {
	last := 0
	for _, vs := range m {
		for _, v := range vs {
			last = v
		}
	}
	return last // line 9
}`
	f, info, fset := load(t, src)
	body := funcBody(f, "f")
	res := dataflow.Run(body, info, []types.Object{paramObj(info, f, "f", "m")})
	st, set := stmtAtLine(res, body, fset, 9)
	if st == nil {
		t.Fatal("no state at return")
	}
	if !res.TaintedExpr(st.(*ast.ReturnStmt).Results[0], set) {
		t.Error("last should be tainted through the nested range bindings")
	}
}

func TestCallResultPropagatesTaint(t *testing.T) {
	src := `package x
func g(v int) int { return v }
func f(k int) int {
	v := g(k)
	w := g(1)
	_ = w
	return v // line 7
}`
	f, info, fset := load(t, src)
	body := funcBody(f, "f")
	res := dataflow.Run(body, info, []types.Object{paramObj(info, f, "f", "k")})
	st, set := stmtAtLine(res, body, fset, 7)
	if st == nil {
		t.Fatal("no state at return")
	}
	if !res.TaintedExpr(st.(*ast.ReturnStmt).Results[0], set) {
		t.Error("v = g(k) should be tainted")
	}
	// w = g(1) must stay clean.
	for _, st := range body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok {
			continue
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "w" {
			if res.TaintedExpr(as.Rhs[0], res.At(st)) {
				t.Error("g(1) should be clean")
			}
		}
	}
}
