// Package analysistest runs an analyzer over a fixture package and compares
// its diagnostics against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixture layout follows the x/tools convention: the analyzer package keeps
// testdata/src/<pkg>/ directories, each a complete Go package. Imports inside
// a fixture resolve first against sibling directories under testdata/src
// (type-checked from source), then against the standard library via export
// data from `go list -export`. A line expecting a diagnostic carries a
// trailing comment:
//
//	rand.Intn(7) // want `math/rand`
//
// where the backquoted string is a regexp that must match the diagnostic
// message reported on that line. Several `// want` patterns on one line
// expect several diagnostics. Unmatched expectations and unexpected
// diagnostics both fail the test.
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes the fixture package testdata/src/<pkg> beneath dir (usually
// the analyzer's own testdata directory) and asserts the diagnostics match
// the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	root := filepath.Join(dir, "src")
	ld := &loader{
		fset: token.NewFileSet(),
		root: root,
		pkgs: make(map[string]*loadedPkg),
	}
	ld.stdImporter = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := stdExportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})

	lp, err := ld.load(pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}

	findings, err := analysis.RunAnalyzers(ld.fset, lp.files, lp.pkg, lp.info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	check(t, ld.fset, lp.files, findings)
}

// expectation is one `// want` pattern, keyed by file:line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range parseWantPatterns(text[idx+len("want "):]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}

	matched := make([]bool, len(wants))
	for _, fd := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != fd.Position.Filename || w.line != fd.Position.Line {
				continue
			}
			if w.rx.MatchString(fd.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", fd.Position, fd.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// parseWantPatterns extracts the backquoted or double-quoted regexps from the
// tail of a want comment.
func parseWantPatterns(s string) []string {
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if len(s) == 0 {
			return pats
		}
		q := s[0]
		if q != '`' && q != '"' {
			return pats
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return pats
		}
		pats = append(pats, s[1:1+end])
		s = s[end+2:]
	}
}

// loader type-checks fixture packages, resolving fixture-local imports from
// source and everything else from stdlib export data.
type loader struct {
	fset        *token.FileSet
	root        string
	pkgs        map[string]*loadedPkg
	stdImporter types.Importer
}

type loadedPkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func (ld *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: importerFunc(ld.importPkg)}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	lp := &loadedPkg{files: files, pkg: pkg, info: info}
	ld.pkgs[path] = lp
	return lp, nil
}

func (ld *loader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.root, path)); err == nil {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return ld.stdImporter.Import(path)
}

// stdExportCache memoizes `go list -export` lookups across fixtures.
var stdExportCache = map[string]string{}

func stdExportFile(path string) (string, error) {
	if f, ok := stdExportCache[path]; ok {
		if f == "" {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	}
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	file := strings.TrimSpace(stdout.String())
	if err != nil || file == "" {
		stdExportCache[path] = ""
		return "", fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	stdExportCache[path] = file
	return file, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// SortFindings orders findings by position for deterministic output; shared
// by driver tests.
func SortFindings(fs []analysis.Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Position, fs[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
