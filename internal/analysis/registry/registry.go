// Package registry is the single authoritative list of this repository's
// analyzers. Both cmd/ftlint (standalone and go-vet modes) and every
// analyzer's fixture test consume it: an analyzer that is written but never
// registered fails its own test, so the list cannot silently drift from
// what `make lint` actually runs.
//
// It is a subpackage rather than part of internal/analysis because the
// framework package must not import the analyzers that import it.
package registry

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/cacheaccount"
	"repro/internal/analysis/clocksafe"
	"repro/internal/analysis/flasherr"
	"repro/internal/analysis/geometry"
	"repro/internal/analysis/globalstate"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/obscheck"
	"repro/internal/analysis/opswitch"
	"repro/internal/analysis/randsource"
)

var all = []*analysis.Analyzer{
	cacheaccount.Analyzer,
	clocksafe.Analyzer,
	flasherr.Analyzer,
	geometry.Analyzer,
	globalstate.Analyzer,
	hotalloc.Analyzer,
	maporder.Analyzer,
	obscheck.Analyzer,
	opswitch.Analyzer,
	randsource.Analyzer,
}

// All returns the full analyzer suite, sorted by name, as a fresh slice.
func All() []*analysis.Analyzer {
	out := append([]*analysis.Analyzer(nil), all...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the named analyzer, or nil if it is not registered. Analyzer
// tests resolve themselves through Get so that registration is part of what
// the tests prove.
func Get(name string) *analysis.Analyzer {
	for _, a := range all {
		if a.Name == name {
			return a
		}
	}
	return nil
}
