package globalstate_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/globalstate"
	"repro/internal/analysis/registry"
)

// TestGlobalState covers the inventory rules: mutable shapes and written
// scalars are flagged, inert config and error sentinels are exempt, and
// //ftl:shardsafe needs a reason. The analyzer is resolved through the
// registry so registration is part of what the test proves.
func TestGlobalState(t *testing.T) {
	a := registry.Get("globalstate")
	if a == nil {
		t.Fatal("globalstate is not registered in internal/analysis/registry")
	}
	old := globalstate.PathPrefixes
	globalstate.PathPrefixes = []string{"g", "hostq"}
	defer func() { globalstate.PathPrefixes = old }()
	analysistest.Run(t, "testdata", a, "g")
}

// TestGlobalStateHostShapes runs the analyzer over a fixture mirroring the
// sharded host frontend (internal/host): the package-level tallies, hash
// folds and clocks its shard workers must NOT share are flagged, and the one
// real //ftl:shardsafe annotation the package carries (the atomic queue-ID
// source) is accepted with its reason.
func TestGlobalStateHostShapes(t *testing.T) {
	a := registry.Get("globalstate")
	if a == nil {
		t.Fatal("globalstate is not registered in internal/analysis/registry")
	}
	old := globalstate.PathPrefixes
	globalstate.PathPrefixes = []string{"g", "hostq"}
	defer func() { globalstate.PathPrefixes = old }()
	analysistest.Run(t, "testdata", a, "hostq")
}
