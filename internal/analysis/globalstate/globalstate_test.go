package globalstate_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/globalstate"
	"repro/internal/analysis/registry"
)

// TestGlobalState covers the inventory rules: mutable shapes and written
// scalars are flagged, inert config and error sentinels are exempt, and
// //ftl:shardsafe needs a reason. The analyzer is resolved through the
// registry so registration is part of what the test proves.
func TestGlobalState(t *testing.T) {
	a := registry.Get("globalstate")
	if a == nil {
		t.Fatal("globalstate is not registered in internal/analysis/registry")
	}
	old := globalstate.PathPrefixes
	globalstate.PathPrefixes = []string{"g"}
	defer func() { globalstate.PathPrefixes = old }()
	analysistest.Run(t, "testdata", a, "g")
}
