// Package globalstate inventories package-level mutable state in the
// simulator packages.
//
// The roadmap's next tentpole is a sharded concurrent frontend: N shards,
// each owning a slice of the LPN space, running the same translator code on
// separate goroutines. Every package-level variable that is mutable — or
// that any function writes or takes the address of — is state those shards
// would silently share, either racing (a correctness bug) or serializing
// through a lock that was never in the single-shard cost model. This
// analyzer makes that inventory mechanical: a package-level var in
// internal/... must be provably inert or carry the annotation
//
//	//ftl:shardsafe <why sharing is safe>
//
// on its own line or the line above. The reason is mandatory; a bare
// annotation is itself a finding.
//
// A var is flagged when its type is mutable in shape (map, slice, channel,
// pointer, sync or sync/atomic type, or any array/struct containing one) or
// when package code writes it or takes its address. It is exempt when it is
// the blank identifier (interface-satisfaction assertions), or when it is an
// interface-typed value — the error-sentinel idiom — that nothing in the
// package ever writes.
package globalstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags package-level mutable state lacking a shard-safety reason.
var Analyzer = &analysis.Analyzer{
	Name: "globalstate",
	Doc:  "package-level vars in simulator packages are state a sharded frontend would share: make them per-shard, prove them inert, or annotate //ftl:shardsafe <reason>",
	Run:  run,
}

// Directive marks a package-level var the author asserts shards may share.
var Directive = "//ftl:shardsafe"

// PathPrefixes are the import-path prefixes policed.
var PathPrefixes = []string{"repro/internal/"}

// ExcludedPathPrefixes carves the analysis tooling itself out: analyzers
// declare package-level Analyzer/policy vars by design and never run inside
// the simulator.
var ExcludedPathPrefixes = []string{"repro/internal/analysis"}

func run(pass *analysis.Pass) (any, error) {
	policed := false
	for _, p := range PathPrefixes {
		if strings.HasPrefix(pass.Pkg.Path(), p) {
			policed = true
		}
	}
	if !policed {
		return nil, nil
	}
	for _, p := range ExcludedPathPrefixes {
		if strings.HasPrefix(pass.Pkg.Path(), p) {
			return nil, nil
		}
	}

	written := writtenObjects(pass)
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					checkVar(pass, name, written)
				}
			}
		}
	}
	return nil, nil
}

func checkVar(pass *analysis.Pass, name *ast.Ident, written map[types.Object]bool) {
	if name.Name == "_" {
		return // interface-satisfaction assertions hold no state
	}
	obj := pass.TypesInfo.Defs[name]
	if obj == nil {
		return
	}
	if reason, found := pass.DirectiveAt(name.Pos(), Directive); found {
		if reason == "" {
			pass.Reportf(name.Pos(),
				"%s annotation without a reason: state why shards may share %q", Directive, name.Name)
		}
		return
	}

	w := written[obj]
	mutable := mutableShape(obj.Type(), make(map[types.Type]bool))
	if _, iface := obj.Type().Underlying().(*types.Interface); iface && !w {
		return // unwritten error-sentinel idiom: var ErrX = errors.New(...)
	}
	switch {
	case mutable:
		pass.Reportf(name.Pos(),
			"package-level var %q has mutable type %s: a sharded frontend would share it; move it into per-shard state or annotate %s <reason>",
			name.Name, obj.Type(), Directive)
	case w:
		pass.Reportf(name.Pos(),
			"package-level var %q is written or aliased after initialization: a sharded frontend would race on it; move it into per-shard state or annotate %s <reason>",
			name.Name, Directive)
	}
}

// writtenObjects collects every package-level object that non-test package
// code assigns to, increments, or takes the address of.
func writtenObjects(pass *analysis.Pass) map[types.Object]bool {
	written := make(map[types.Object]bool)
	mark := func(e ast.Expr) {
		if id := rootIdent(e); id != nil {
			if obj, ok := pass.TypesInfo.Uses[id]; ok && obj != nil && obj.Parent() == pass.Pkg.Scope() {
				written[obj] = true
			}
		}
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					mark(n.X)
				}
			}
			return true
		})
	}
	return written
}

// rootIdent unwraps selectors, indexing, derefs and parens down to the base
// identifier of an lvalue, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mutableShape reports whether a value of type t embeds mutable storage:
// reference types, sync/sync-atomic types, or any aggregate containing one.
func mutableShape(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		if pkg := n.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Map, *types.Slice, *types.Chan, *types.Pointer:
		return true
	case *types.Array:
		return mutableShape(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if mutableShape(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
