// Package g exercises globalstate: mutable shapes and written scalars are
// flagged, inert configuration and unwritten error sentinels are not, and
// the //ftl:shardsafe annotation needs a reason.
package g

import (
	"errors"
	"sync"
	"sync/atomic"
)

var counters = map[string]int{} // want `mutable type`

var scratch []byte // want `mutable type`

var events chan int // want `mutable type`

var cursor *int // want `mutable type`

var mu sync.Mutex // want `mutable type`

var calls atomic.Int64 // want `mutable type`

type table struct {
	rows []int
}

var defaults table // want `mutable type`

var total int // want `written or aliased after initialization`

var seed int64 // want `written or aliased after initialization`

// Inert: a scalar nothing writes, and a fixed name table of strings.
var limit = 128

var opNames = [3]string{"read", "write", "trim"}

// The error-sentinel idiom: interface-typed, never written.
var ErrClosed = errors.New("g: closed")

// Interface-typed but reassigned: no longer a sentinel.
var hook error // want `written or aliased after initialization`

// Blank assertions hold no state.
var _ error = (*myErr)(nil)

//ftl:shardsafe registration happens before any shard starts; read-only after
var registry = map[string]int{}

//ftl:shardsafe
var oops = map[string]int{} // want `annotation without a reason`

type myErr struct{}

func (*myErr) Error() string { return "" }

func bump() {
	total++
	hook = ErrClosed
}

func alias() *int64 { return &seed }
