// Package hostq exercises globalstate on the shapes the sharded host
// frontend (internal/host) is tempted to keep at package level. Every shard
// worker goroutine runs this code concurrently, so a package-level tally,
// clock or scratch buffer is a data race waiting for the race detector —
// exactly what the analyzer exists to catch before it compiles.
package hostq

import "sync/atomic"

// A completion tally shared by every shard worker: must live in per-shard
// state (the shard struct), not here.
var completions map[int]int64 // want `mutable type`

// A fold of per-shard event hashes: the merged digest is computed after the
// workers join, never accumulated through a package-level slice.
var shardHashes []uint64 // want `mutable type`

// An admission clock at package level would serialize the shards' scheduler
// clocks through shared memory — the exact coupling sharding removes.
var admitClock int64 // want `written or aliased after initialization`

// The one sanctioned shape, taken verbatim from internal/host: a monotonic
// queue-ID source that is atomic and feeds error messages only, never
// simulation state.
//
//ftl:shardsafe monotonic ID source, atomic, never read by simulation state
var nextQueueID atomic.Int64

func admit(now int64) {
	if now > admitClock {
		admitClock = now
	}
}

func queueID() int64 { return nextQueueID.Add(1) }
