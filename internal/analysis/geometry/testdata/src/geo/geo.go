// Fixture: the pre-fix shape of the translators — hardcoded 4 KB page
// geometry — versus named constants and capacity shifts.
package geo

const entryBytes = 4

// pageBytes is allowed: a named constant is how a default should be spelled.
const pageBytes = 4096

func perTP() int {
	return 4096 / entryBytes // want `magic geometry literal 4096`
}

func offset(lpn int64) int64 {
	return lpn * 4096 // want `magic geometry literal 4096`
}

func capacityNotGeometry() int64 {
	return 512 << 20 // shifted capacities are sizes, not page geometry
}

func kbFormatting(n int64) int64 {
	return n / 1024 // 1024 is only flagged in library (strict) packages
}

func threaded(pageSize int) int {
	return pageSize / entryBytes
}

type devConfig struct {
	Channels int
	Dies     int
}

func bakedParallelism() devConfig {
	return devConfig{
		Channels: 4, // want `magic parallelism literal 4 for Channels`
		Dies:     2, // want `magic parallelism literal 2 for Dies`
	}
}

func threadedParallelism(ch, dies int) devConfig {
	return devConfig{Channels: ch, Dies: dies}
}
