// Fixture for library-code strictness: 1024 and 512 are geometry here.
package strictgeo

func entriesPerTP() int {
	return 1024 // want `magic geometry literal 1024`
}

func sectorQuantize(n int64) int64 {
	return (n + 511) / 512 * 512 // want `magic geometry literal 512` `magic geometry literal 512`
}

func capacity() int64 {
	return 512 << 20 // still exempt: capacity shift
}
