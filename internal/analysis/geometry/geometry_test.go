package geometry_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/geometry"
	"repro/internal/analysis/registry"
)

// analyzer resolves geometry through the registry: being registered — and
// therefore run by cmd/ftlint — is part of what these tests prove.
func analyzer(t *testing.T) *analysis.Analyzer {
	t.Helper()
	a := registry.Get("geometry")
	if a == nil {
		t.Fatal("geometry is not registered in internal/analysis/registry")
	}
	return a
}

func TestGeometry(t *testing.T) {
	analysistest.Run(t, "testdata", analyzer(t), "geo")
}

// TestGeometryStrict covers the library-only literals (1024/512) by treating
// the fixture as library code.
func TestGeometryStrict(t *testing.T) {
	old := geometry.StrictPrefixes
	geometry.StrictPrefixes = []string{"strictgeo"}
	defer func() { geometry.StrictPrefixes = old }()
	analysistest.Run(t, "testdata", analyzer(t), "strictgeo")
}
