package geometry_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/geometry"
)

func TestGeometry(t *testing.T) {
	analysistest.Run(t, "testdata", geometry.Analyzer, "geo")
}

// TestGeometryStrict covers the library-only literals (1024/512) by treating
// the fixture as library code.
func TestGeometryStrict(t *testing.T) {
	old := geometry.StrictPrefixes
	geometry.StrictPrefixes = []string{"strictgeo"}
	defer func() { geometry.StrictPrefixes = old }()
	analysistest.Run(t, "testdata", geometry.Analyzer, "strictgeo")
}
