// Package geometry flags magic flash-geometry literals.
//
// The crash harness of the fault-injection PR surfaced translators that
// hardcoded the 4 KB page / 1024 entries-per-translation-page geometry and
// silently mis-sliced translation pages on any other device shape; the fix
// threaded geometry from ftl.Config / the chip through GeometryAware. This
// analyzer keeps the class dead: the literals 4096, 1024 and 512 may not
// appear as bare expressions outside the two places geometry is defined —
// package flash (the chip owns its geometry) and the ftl configuration file
// (Table 3 defaults). Named constants, shifted size expressions (512<<20 is
// a capacity, not a geometry), and tests are exempt.
package geometry

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags magic page-geometry literals outside flash and ftl.Config.
var Analyzer = &analysis.Analyzer{
	Name: "geometry",
	Doc:  "flag magic 4096/1024/512 geometry literals and literal channel/die counts; thread geometry from ftl.Config or the chip instead",
	Run:  run,
}

// ParallelKeys are the composite-literal field names that size the parallel
// backend. A literal count against one of them bakes a device shape into
// code the same way a bare 4096 bakes in a page size: the sanctioned
// spellings are ftl.DefaultChannels / ftl.DefaultDies or a count threaded
// from the configuration.
var ParallelKeys = map[string]bool{
	"Channels":       true,
	"Dies":           true,
	"DiesPerChannel": true,
}

// literals are the geometry constants of the paper's device (Table 3):
// page size, entries per translation page, sector size.
var literals = map[string]bool{"4096": true, "1024": true, "512": true}

// StrictOnly lists the literals flagged only inside StrictPrefixes packages.
// 1024 and 512 double as unit-conversion divisors in CLIs and examples
// (KB formatting), so only library code is held to them; 4096 is always a
// page size in this repository and is flagged everywhere.
var StrictOnly = map[string]bool{"1024": true, "512": true}

// StrictPrefixes are the import-path prefixes treated as library code.
var StrictPrefixes = []string{"repro/internal/"}

// AllowedPackages are package names that define geometry rather than
// consume it.
var AllowedPackages = map[string]bool{"flash": true}

// AllowedFiles are file basenames (within package ftl) where the Table 3
// defaults legitimately live as literals.
var AllowedFiles = map[string]bool{"config.go": true}

func run(pass *analysis.Pass) (any, error) {
	if AllowedPackages[pass.Pkg.Name()] {
		return nil, nil
	}
	strict := false
	for _, p := range StrictPrefixes {
		if strings.HasPrefix(pass.Pkg.Path(), p) {
			strict = true
		}
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		if pass.Pkg.Name() == "ftl" && AllowedFiles[pass.FileBase(file.Pos())] {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				// A named constant is the sanctioned way to spell a
				// geometry default; skip the whole declaration.
				if n.Tok == token.CONST {
					return false
				}
			case *ast.KeyValueExpr:
				key, ok := n.Key.(*ast.Ident)
				if !ok || !ParallelKeys[key.Name] {
					break
				}
				if lit, ok := n.Value.(*ast.BasicLit); ok && lit.Kind == token.INT {
					pass.Reportf(lit.Pos(),
						"magic parallelism literal %s for %s: use ftl.DefaultChannels/ftl.DefaultDies or thread the count from the configuration",
						lit.Value, key.Name)
					return false
				}
			case *ast.BinaryExpr:
				// 512<<20 and friends size capacities, not pages.
				if n.Op == token.SHL || n.Op == token.SHR {
					if lit, ok := n.X.(*ast.BasicLit); ok && lit.Kind == token.INT && literals[lit.Value] {
						ast.Inspect(n.Y, inspectLit(pass, strict))
						return false
					}
				}
			case *ast.BasicLit:
				inspectLit(pass, strict)(n)
			}
			return true
		})
	}
	return nil, nil
}

func inspectLit(pass *analysis.Pass, strict bool) func(ast.Node) bool {
	return func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.INT || !literals[lit.Value] {
			return true
		}
		if StrictOnly[lit.Value] && !strict {
			return true
		}
		pass.Reportf(lit.Pos(),
			"magic geometry literal %s: thread the page geometry from ftl.Config or the chip (or name a constant)",
			lit.Value)
		return true
	}
}
