// Baseline support: a checked-in inventory of known findings so `make lint`
// fails only on *new* findings while the legacy debt is burned down
// explicitly.
//
// Entries are keyed by (analyzer, repo-relative file, message) — not by
// line number, so unrelated edits that shift code do not invalidate the
// baseline, while any change to what the analyzer actually says does. An
// entry carries a count: a file may legitimately hold several identical
// findings, and fixing one of them must surface as progress (the filter
// consumes matches up to the count and reports the overflow as new).
//
// Staleness is the other direction: an entry whose finding no longer occurs
// is debt already paid, and keeping it would let a regression of the same
// message slide back in unnoticed. The standalone driver reports stale
// entries as fixable (remove the entry, or regenerate with
// -write-baseline); the per-unit vet driver cannot see the whole tree and
// leaves staleness to the standalone run.
package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// BaselineEntry is one known finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // slash-separated, relative to the baseline file's directory
	Message  string `json:"message"`
	Count    int    `json:"count,omitempty"` // 0 reads as 1
}

// Baseline is the decoded lint-baseline.json.
type Baseline struct {
	// Comment documents the burn-down contract inside the JSON itself.
	Comment  string          `json:"comment,omitempty"`
	Findings []BaselineEntry `json:"findings"`

	// Root is the directory the File entries are relative to (the
	// directory of the baseline file). Not serialized.
	Root string `json:"-"`
}

type baselineKey struct{ analyzer, file, message string }

// LoadBaseline reads a baseline file. A missing file is not an error: it
// reads as the empty baseline, so the flow works before the first
// -write-baseline.
func LoadBaseline(path string) (*Baseline, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %v", path, err)
	}
	b := &Baseline{Root: filepath.Dir(abs)}
	data, err := os.ReadFile(abs)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %v", path, err)
	}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %v", path, err)
	}
	return b, nil
}

// RelFile renders a finding's file path relative to the baseline root, in
// slash form, matching how entries are stored. Files outside the root keep
// their absolute path (they can then never match, which is the safe
// failure mode).
func (b *Baseline) RelFile(file string) string {
	if rel, err := filepath.Rel(b.Root, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

func hasDotDotPrefix(p string) bool {
	return len(p) >= 3 && p[:3] == ".."+string(filepath.Separator)
}

// Filter splits findings into new ones (not covered by the baseline) and
// counts the matches it consumed. Matching is order-stable: findings are
// consumed in the given order against each entry's count.
func (b *Baseline) Filter(findings []Finding) (fresh []Finding, matched map[BaselineEntry]int) {
	budget := make(map[baselineKey]int, len(b.Findings))
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey{e.Analyzer, e.File, e.Message}] += n
	}
	matched = make(map[BaselineEntry]int)
	for _, f := range findings {
		k := baselineKey{f.Analyzer, b.RelFile(f.Position.Filename), f.Message}
		if budget[k] > 0 {
			budget[k]--
			matched[BaselineEntry{Analyzer: k.analyzer, File: k.file, Message: k.message}]++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, matched
}

// Stale returns entries whose budgeted count was not fully consumed, but
// only for files the run actually analyzed (analyzedFiles holds
// baseline-relative slash paths). The standalone driver does not load
// _test.go files, so an entry living in an unanalyzed file must not be
// declared fixed by it.
func (b *Baseline) Stale(matched map[BaselineEntry]int, analyzedFiles map[string]bool) []BaselineEntry {
	var stale []BaselineEntry
	for _, e := range b.Findings {
		if !analyzedFiles[e.File] {
			continue
		}
		n := e.Count
		if n <= 0 {
			n = 1
		}
		have := matched[BaselineEntry{Analyzer: e.Analyzer, File: e.File, Message: e.Message}]
		if have < n {
			left := e
			left.Count = n - have
			stale = append(stale, left)
		}
	}
	return stale
}

// DebtByAnalyzer totals the baseline's entry counts per analyzer — the
// burn-down scoreboard `make lint-fix-audit` prints.
func (b *Baseline) DebtByAnalyzer() map[string]int {
	debt := make(map[string]int)
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		debt[e.Analyzer] += n
	}
	return debt
}

// WriteBaseline serializes the given findings as a fresh baseline at path,
// aggregating identical findings into counts and sorting for a stable
// diff.
func WriteBaseline(path, comment string, findings []Finding) error {
	abs, err := filepath.Abs(path)
	if err != nil {
		return fmt.Errorf("analysis: baseline %s: %v", path, err)
	}
	b := &Baseline{Root: filepath.Dir(abs), Comment: comment}
	counts := make(map[baselineKey]int)
	for _, f := range findings {
		counts[baselineKey{f.Analyzer, b.RelFile(f.Position.Filename), f.Message}]++
	}
	for k, n := range counts {
		e := BaselineEntry{Analyzer: k.analyzer, File: k.file, Message: k.message}
		if n > 1 {
			e.Count = n
		}
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		if a.File != c.File {
			return a.File < c.File
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(abs, append(data, '\n'), 0o666)
}
