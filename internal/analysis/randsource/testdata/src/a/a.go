// Fixture: the pre-fix shape of examples/lifetime and cmd/experiments —
// drawing from the global math/rand source — versus the seeded-local fix.
package a

import (
	"math/rand"
)

func global() int64 {
	rand.Seed(7)           // want `global math/rand\.Seed`
	if rand.Intn(10) < 9 { // want `global math/rand\.Intn`
		return rand.Int63n(64) // want `global math/rand\.Int63n`
	}
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle`
	return int64(rand.Float64() * 100) // want `global math/rand\.Float64`
}

func local() int64 {
	rng := rand.New(rand.NewSource(7)) // constructors are the fix: allowed
	if rng.Intn(10) < 9 {
		return rng.Int63n(64)
	}
	return 0
}

type rand2 struct{}

func (rand2) Intn(n int) int { return 0 }

func notThepackage() int {
	var rand rand2 // shadows the import: method calls are fine
	return rand.Intn(5)
}
