// Package randsource forbids the global math/rand source in library and CLI
// code.
//
// Every simulation component in this repository draws randomness from a
// seeded *rand.Rand it owns (the device RNG introduced with the
// fault-injection harness, workload generators, the crash-cut chooser), so a
// run is bit-for-bit reproducible from its configured seeds. A single call to
// a math/rand top-level function — rand.Intn, rand.Shuffle, ... — reads the
// shared process-global source and silently breaks that property. The
// constructors (rand.New, rand.NewSource, rand.NewZipf) are exactly the fix,
// so they stay allowed; tests are exempt.
package randsource

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags calls (and other uses) of math/rand top-level functions
// that operate on the package-global source.
var Analyzer = &analysis.Analyzer{
	Name: "randsource",
	Doc:  "forbid the global math/rand source in non-test code; use a locally seeded *rand.Rand",
	Run:  run,
}

// forbidden are the math/rand (and math/rand/v2) top-level functions backed
// by the shared global source.
var forbidden = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !forbidden[sel.Sel.Name] {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if p := pkgName.Imported().Path(); p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(sel.Pos(),
					"use of global %s.%s: draw from a locally seeded *rand.Rand so runs are reproducible",
					p, sel.Sel.Name)
			}
			return true
		})
	}
	return nil, nil
}
