package randsource_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/registry"
)

// TestRandSource resolves the analyzer through the registry: being registered —
// and therefore run by cmd/ftlint — is part of what the test proves.
func TestRandSource(t *testing.T) {
	a := registry.Get("randsource")
	if a == nil {
		t.Fatal("randsource is not registered in internal/analysis/registry")
	}
	analysistest.Run(t, "testdata", a, "a")
}
