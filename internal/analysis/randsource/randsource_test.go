package randsource_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/randsource"
)

func TestRandSource(t *testing.T) {
	analysistest.Run(t, "testdata", randsource.Analyzer, "a")
}
