package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// boomAnalyzer flags every call to a function named boom — a minimal
// analyzer for exercising the driver's suppression layer.
var boomAnalyzer = &analysis.Analyzer{
	Name: "boomcheck",
	Doc:  "flags calls to boom",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
						pass.Reportf(call.Pos(), "call to boom")
					}
				}
				return true
			})
		}
		return nil, nil
	},
}

func runBoom(t *testing.T, src string) []analysis.Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	conf := types.Config{}
	pkg, err := conf.Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunAnalyzers(fset, []*ast.File{f}, pkg, info, []*analysis.Analyzer{boomAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestSuppressedFindingStaysSilent(t *testing.T) {
	findings := runBoom(t, `package x
func boom() {}
func f() {
	boom() //lint:ignore boomcheck this one is intentional
	//lint:ignore boomcheck the directive may also sit on the line above
	boom()
	boom()
}
`)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the unsuppressed call", findings)
	}
	if findings[0].Position.Line != 7 {
		t.Fatalf("surviving finding at line %d, want the unsuppressed call on line 7", findings[0].Position.Line)
	}
}

func TestSuppressionIsPerAnalyzer(t *testing.T) {
	// A directive naming a different analyzer must not mute this one.
	findings := runBoom(t, `package x
func boom() {}
func f() {
	boom() //lint:ignore othercheck not ours
}
`)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want the boomcheck finding to survive", findings)
	}
}

func TestFileIgnoreSuppressesWholeFile(t *testing.T) {
	findings := runBoom(t, `package x

//lint:file-ignore boomcheck generated shim, reviewed once
func boom() {}
func f() {
	boom()
	boom()
}
`)
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want none under file-ignore", findings)
	}
}

func TestMalformedDirectiveIsItselfAFinding(t *testing.T) {
	// No reason given: nothing is suppressed, and the bare directive is
	// reported under the lintdirective pseudo-analyzer.
	findings := runBoom(t, `package x
func boom() {}
func f() {
	boom() //lint:ignore boomcheck
}
`)
	var sawBoom, sawDirective bool
	for _, f := range findings {
		switch f.Analyzer {
		case "boomcheck":
			sawBoom = true
		case analysis.DirectiveAnalyzer:
			sawDirective = true
			if !strings.Contains(f.Message, "reason") {
				t.Errorf("directive finding should demand a reason, got %q", f.Message)
			}
		}
	}
	if !sawBoom || !sawDirective {
		t.Fatalf("findings = %v, want both the unsuppressed boomcheck finding and a %s finding",
			findings, analysis.DirectiveAnalyzer)
	}
}
