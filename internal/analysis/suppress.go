// Suppression directives, honored uniformly by every analyzer because they
// are applied by the driver (RunAnalyzers), not by each analyzer.
//
// Two forms, in the staticcheck style:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//	//lint:file-ignore <analyzer>[,<analyzer>...] <reason>
//
// A line-level directive suppresses findings of the named analyzers on its
// own line (trailing comment) or on the line immediately below (a comment
// line above the offending statement). A file-level directive, wherever it
// appears in the file, suppresses the named analyzers for the whole file.
// The reason is mandatory: a directive without one does not suppress
// anything and is itself reported as a finding under the pseudo-analyzer
// "lintdirective", so a bare mute can never land silently.
//
// These are the blunt instrument. The semantic annotations the analyzers
// define themselves (//ftl:orderinsensitive, //ftl:shardsafe) are preferred
// where they exist: they state a property, not just "be quiet".
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	ignorePrefix     = "//lint:ignore "
	fileIgnorePrefix = "//lint:file-ignore "
	// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
	// suppression directives are reported.
	DirectiveAnalyzer = "lintdirective"
)

// suppressions is the parsed suppression state of one package.
type suppressions struct {
	// byLine maps file → line → analyzer names suppressed at that line.
	byLine map[string]map[int][]string
	// byFile maps file → analyzer names suppressed file-wide.
	byFile map[string][]string
	// malformed directives, reported as findings.
	malformed []Finding
}

// parseSuppressions scans every comment of the package's files.
func parseSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	sup := &suppressions{
		byLine: make(map[string]map[int][]string),
		byFile: make(map[string][]string),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				var names string
				var fileWide bool
				switch {
				case strings.HasPrefix(text, fileIgnorePrefix):
					names, fileWide = text[len(fileIgnorePrefix):], true
				case strings.HasPrefix(text, ignorePrefix):
					names = text[len(ignorePrefix):]
				case text == strings.TrimSpace(ignorePrefix) || text == strings.TrimSpace(fileIgnorePrefix):
					names = ""
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				list, reason := splitDirective(names)
				if len(list) == 0 || reason == "" {
					sup.malformed = append(sup.malformed, Finding{
						Analyzer: DirectiveAnalyzer,
						Position: pos,
						Message:  "malformed suppression directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				if fileWide {
					sup.byFile[pos.Filename] = append(sup.byFile[pos.Filename], list...)
					continue
				}
				m := sup.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					sup.byLine[pos.Filename] = m
				}
				// The directive covers its own line (trailing form) and the
				// next line (preceding-comment form).
				m[pos.Line] = append(m[pos.Line], list...)
				m[pos.Line+1] = append(m[pos.Line+1], list...)
			}
		}
	}
	return sup
}

// splitDirective splits "name1,name2 the reason text" into names and reason.
func splitDirective(s string) ([]string, string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return nil, ""
	}
	var names []string
	for _, n := range strings.Split(s[:i], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(s[i:])
}

// suppressed reports whether a finding by analyzer at pos is muted.
func (sup *suppressions) suppressed(analyzer string, pos token.Position) bool {
	for _, n := range sup.byFile[pos.Filename] {
		if n == analyzer {
			return true
		}
	}
	for _, n := range sup.byLine[pos.Filename][pos.Line] {
		if n == analyzer {
			return true
		}
	}
	return false
}
