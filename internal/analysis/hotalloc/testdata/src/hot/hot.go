// Fixture: the pre-optimization allocation shapes of the service path —
// per-miss dedup maps, fresh update slices grown with append — versus the
// sanctioned reusable-scratch idiom.
package core

import (
	"container/list" // want `import of container/list in a file with hot-path functions`
)

type update struct {
	off int
	ppn int64
}

type cache struct {
	byOff   []int64
	scratch []update
	l       *list.List
}

//ftl:hotpath
func (c *cache) missWithDedupMap(offs []int) []int {
	seen := map[int]bool{} // want `map literal in hot-path function missWithDedupMap`
	var out []int
	for _, o := range offs {
		if !seen[o] {
			seen[o] = true
			out = append(out, o) // want `append to fresh slice out in hot-path function missWithDedupMap`
		}
	}
	return out
}

//ftl:hotpath
func (c *cache) flushWithFreshBatch(offs []int) []update {
	pending := make(map[int][]update) // want `make\(map\) in hot-path function flushWithFreshBatch`
	ups := make([]update, 0, len(offs))
	for _, o := range offs {
		u := update{off: o, ppn: c.byOff[o]}
		pending[o] = append(pending[o], u)
		ups = append(ups, u) // want `append to fresh slice ups in hot-path function flushWithFreshBatch`
	}
	return ups
}

//ftl:hotpath
func (c *cache) flushWithScratch(offs []int) []update {
	// The sanctioned shape: append into a reusable scratch buffer.
	ups := c.scratch[:0]
	for _, o := range offs {
		ups = append(ups, update{off: o, ppn: c.byOff[o]})
	}
	c.scratch = ups
	return ups
}

// coldSetup is not marked: cold paths may allocate freely.
func (c *cache) coldSetup(n int) {
	index := make(map[int]int64, n)
	for i := 0; i < n; i++ {
		index[i] = 0
	}
	c.byOff = make([]int64, n)
	c.l = list.New()
}
