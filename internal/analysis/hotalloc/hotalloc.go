// Package hotalloc keeps the translation hot path allocation-free.
//
// The zero-allocation work (slab-recycled cache nodes, dense offset tables,
// the hand-rolled event heap, reusable flush scratch buffers) is easy to
// erode: one convenient `map[...]` literal or a fresh `[]T` built with append
// inside the service path quietly reintroduces per-operation garbage, and
// nothing fails until someone reruns the benchmarks. This analyzer makes the
// property structural. Functions on the steady-state service path carry a
//
//	//ftl:hotpath
//
// directive in their doc comment; inside such functions the analyzer flags
//
//   - map allocations (`make(map...)` or a map composite literal) — the
//     pre-optimization code allocated a dedup map per cache miss and a
//     pending map per GC flush;
//   - `append` to a slice that the function itself freshly allocated
//     (`var s []T`, `s := []T{...}`, `s := make([]T, ...)`) — growth
//     allocates every call; hot paths must append into a reusable scratch
//     buffer (`s := f.scratch[:0]` is fine and recognized);
//   - and, file-wide when the file declares any hot-path function, imports
//     of container/heap or container/list — both box every element through
//     `any`, which is exactly what the hand-rolled heap and the generic
//     intrusive list exist to avoid.
//
// Like the other analyzers the checks are scoped to the packages that own
// the hot path (internal/core, internal/ssd); cold paths there simply do not
// carry the directive.
package hotalloc

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags per-call allocations inside //ftl:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "hot-path functions (//ftl:hotpath) must not allocate: no map allocation, no append to a fresh slice, no container/heap or container/list",
	Run:  run,
}

// Directive marks a function as part of the steady-state service path.
var Directive = "//ftl:hotpath"

// PackageNames are the packages the analyzer polices. ftl and obs joined
// when the observability layer put Metrics.ObserveResponse,
// Device.observeRequest and Histogram.Record on the per-request path.
var PackageNames = map[string]bool{"core": true, "ssd": true, "ftl": true, "obs": true}

// BannedImports box elements through `any` on every operation.
var BannedImports = map[string]bool{"container/heap": true, "container/list": true}

func run(pass *analysis.Pass) (any, error) {
	if !PackageNames[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		var hot []*ast.FuncDecl
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && isHotPath(fn) {
				hot = append(hot, fn)
			}
		}
		if len(hot) == 0 {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !BannedImports[path] {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s in a file with hot-path functions: it boxes every element through any; use the non-boxing in-repo equivalent (internal/lru, ssd.EventQueue)",
				path)
		}
		for _, fn := range hot {
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

// isHotPath reports whether fn's doc comment carries the directive.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// freshSlices are locals whose backing array the function itself
	// allocated; appending to them grows per-call garbage. Locals derived
	// from existing storage (x := f.scratch[:0]) are reuse, not allocation.
	// Tracking is by name in source order, which is sound for the directive
	// functions this repo writes (no shadowing across nested scopes).
	freshSlices := map[string]bool{}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != 0 {
						continue
					}
					if at, ok := vs.Type.(*ast.ArrayType); ok && at.Len == nil {
						for _, name := range vs.Names {
							freshSlices[name.Name] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				switch {
				case isFreshSliceExpr(n.Rhs[i]):
					freshSlices[id.Name] = true
				case n.Tok == token.DEFINE:
					// A define from existing storage is reuse.
					delete(freshSlices, id.Name)
				}
			}
		case *ast.CompositeLit:
			if _, ok := n.Type.(*ast.MapType); ok {
				pass.Reportf(n.Pos(),
					"map literal in hot-path function %s: maps allocate per call; use a dense table or reusable scratch",
					fn.Name.Name)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "make":
					if len(n.Args) > 0 {
						if _, ok := n.Args[0].(*ast.MapType); ok {
							pass.Reportf(n.Pos(),
								"make(map) in hot-path function %s: maps allocate per call; use a dense table or reusable scratch",
								fn.Name.Name)
						}
					}
				case "append":
					if len(n.Args) > 0 {
						if target, ok := n.Args[0].(*ast.Ident); ok && freshSlices[target.Name] {
							pass.Reportf(n.Pos(),
								"append to fresh slice %s in hot-path function %s: growth allocates per call; append into a reusable scratch buffer",
								target.Name, fn.Name.Name)
						}
					}
				}
			}
		}
		return true
	})
}

// isFreshSliceExpr reports whether e allocates a new slice backing array.
func isFreshSliceExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) == 0 {
			return false
		}
		at, ok := e.Args[0].(*ast.ArrayType)
		return ok && at.Len == nil
	case *ast.CompositeLit:
		at, ok := e.Type.(*ast.ArrayType)
		return ok && at.Len == nil // fixed-size arrays live on the stack
	}
	return false
}
