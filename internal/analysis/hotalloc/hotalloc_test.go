package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/registry"
)

// TestHotAlloc resolves the analyzer through the registry: being registered —
// and therefore run by cmd/ftlint — is part of what the test proves.
func TestHotAlloc(t *testing.T) {
	a := registry.Get("hotalloc")
	if a == nil {
		t.Fatal("hotalloc is not registered in internal/analysis/registry")
	}
	analysistest.Run(t, "testdata", a, "hot")
}
