// Machine-readable report formats for cmd/ftlint: a flat JSON finding list
// for scripts and the CI artifact, and SARIF 2.1.0 so code hosts and
// editors that speak the standard can render the same findings inline.
// Both render the post-suppression, post-baseline view: what the run would
// fail on, plus (JSON only) the count it tolerated via the baseline.
package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// JSONFinding is one finding in the -json report.
type JSONFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	// Baselined marks a finding tolerated by the baseline (reported for
	// audit visibility; it does not fail the run).
	Baselined bool `json:"baselined,omitempty"`
}

// JSONReport is the -json document.
type JSONReport struct {
	Tool      string        `json:"tool"`
	Analyzers []string      `json:"analyzers"`
	New       int           `json:"new"`
	Baselined int           `json:"baselined"`
	Findings  []JSONFinding `json:"findings"`
}

// relTo renders file relative to root when possible, slash-separated.
func relTo(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !hasDotDotPrefix(rel) && rel != ".." {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// WriteJSON emits the JSON report. fresh are findings that fail the run;
// baselined are the tolerated ones. root relativizes paths ("" keeps them
// as-is).
func WriteJSON(w io.Writer, analyzers []*Analyzer, fresh, baselined []Finding, root string) error {
	rep := JSONReport{
		Tool:      "ftlint",
		New:       len(fresh),
		Baselined: len(baselined),
		Findings:  []JSONFinding{},
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	sort.Strings(rep.Analyzers)
	add := func(fs []Finding, baselined bool) {
		for _, f := range fs {
			rep.Findings = append(rep.Findings, JSONFinding{
				Analyzer:  f.Analyzer,
				File:      relTo(root, f.Position.Filename),
				Line:      f.Position.Line,
				Column:    f.Position.Column,
				Message:   f.Message,
				Baselined: baselined,
			})
		}
	}
	add(fresh, false)
	add(baselined, true)
	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// sarif* types model the subset of SARIF 2.1.0 the report uses.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the findings as SARIF 2.1.0. Fresh findings carry level
// "error", baselined ones "note".
func WriteSARIF(w io.Writer, analyzers []*Analyzer, fresh, baselined []Finding, root string) error {
	driver := sarifDriver{Name: "ftlint"}
	sorted := append([]*Analyzer(nil), analyzers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, a := range sorted {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	add := func(fs []Finding, level string) {
		for _, f := range fs {
			run.Results = append(run.Results, sarifResult{
				RuleID:  f.Analyzer,
				Level:   level,
				Message: sarifText{Text: f.Message},
				Locations: []sarifLocation{{
					PhysicalLocation: sarifPhysical{
						ArtifactLocation: sarifArtifact{URI: relTo(root, f.Position.Filename)},
						Region: sarifRegion{
							StartLine:   f.Position.Line,
							StartColumn: f.Position.Column,
						},
					},
				}},
			})
		}
	}
	add(fresh, "error")
	add(baselined, "note")
	sort.Slice(run.Results, func(i, j int) bool {
		a, b := run.Results[i], run.Results[j]
		la, lb := a.Locations[0].PhysicalLocation, b.Locations[0].PhysicalLocation
		if la.ArtifactLocation.URI != lb.ArtifactLocation.URI {
			return la.ArtifactLocation.URI < lb.ArtifactLocation.URI
		}
		if la.Region.StartLine != lb.Region.StartLine {
			return la.Region.StartLine < lb.Region.StartLine
		}
		return a.RuleID < b.RuleID
	})
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
