// Standalone package loading for ftlint and analysistest.
//
// The loader shells out to `go list -deps -export -json`, which compiles
// every package in the dependency graph and reports the export-data file the
// compiler produced. Target packages are then parsed and type-checked from
// source while all imports — standard library and module-internal alike —
// resolve through the gc importer over that export data. This mirrors what
// `go vet` does per compilation unit, without needing x/tools or network
// access, and the go build cache makes repeat runs cheap.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// LoadedPackage is one parsed, type-checked target package.
type LoadedPackage struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Load lists patterns in dir (a directory inside a module), type-checks every
// package belonging to that module, and returns them sorted by import path.
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path → export data file
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var out []*LoadedPackage
	for _, t := range targets {
		lp, err := typeCheckDir(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// typeCheckDir parses the named files of one package and type-checks them
// with the given importer.
func typeCheckDir(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &LoadedPackage{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}
