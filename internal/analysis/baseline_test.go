package analysis_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func finding(analyzer, file string, line int, msg string) analysis.Finding {
	return analysis.Finding{
		Analyzer: analyzer,
		Position: token.Position{Filename: file, Line: line, Column: 3},
		Message:  msg,
	}
}

func TestBaselineFilterSplitsNewFromKnown(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lint-baseline.json")
	known := finding("maporder", filepath.Join(dir, "pkg", "a.go"), 10, "range over map feeds state")
	if err := analysis.WriteBaseline(path, "test", []analysis.Finding{known}); err != nil {
		t.Fatal(err)
	}
	b, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// The known finding (at a different line — baselines are line-agnostic)
	// passes; a new finding fails.
	moved := known
	moved.Position.Line = 99
	fresh := finding("globalstate", filepath.Join(dir, "pkg", "b.go"), 5, "package-level var x")
	got, matched := b.Filter([]analysis.Finding{moved, fresh})
	if len(got) != 1 || got[0].Analyzer != "globalstate" {
		t.Fatalf("Filter returned %v, want only the globalstate finding", got)
	}
	if len(matched) != 1 {
		t.Fatalf("matched = %v, want one consumed entry", matched)
	}

	// Count semantics: two identical findings against a count-1 entry
	// surface the second as new.
	got, _ = b.Filter([]analysis.Finding{moved, moved})
	if len(got) != 1 {
		t.Fatalf("count overflow: got %d new findings, want 1", len(got))
	}
}

func TestBaselineStaleEntryIsFixable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lint-baseline.json")
	gone := finding("clocksafe", filepath.Join(dir, "pkg", "c.go"), 7, "wall clock in simulator")
	if err := analysis.WriteBaseline(path, "test", []analysis.Finding{gone}); err != nil {
		t.Fatal(err)
	}
	b, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	_, matched := b.Filter(nil) // the finding no longer occurs

	// The file was analyzed → entry is stale and fixable.
	stale := b.Stale(matched, map[string]bool{"pkg/c.go": true})
	if len(stale) != 1 || stale[0].Analyzer != "clocksafe" {
		t.Fatalf("Stale = %v, want the clocksafe entry", stale)
	}
	// The file was NOT analyzed (e.g. a _test.go the standalone loader
	// skips) → staleness must not be claimed.
	if stale := b.Stale(matched, map[string]bool{}); len(stale) != 0 {
		t.Fatalf("Stale over unanalyzed files = %v, want none", stale)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := analysis.LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh := finding("maporder", "x.go", 1, "m")
	if got, _ := b.Filter([]analysis.Finding{fresh}); len(got) != 1 {
		t.Fatalf("empty baseline must pass findings through, got %v", got)
	}
}

func TestBaselineDebtByAnalyzer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.json")
	fs := []analysis.Finding{
		finding("maporder", filepath.Join(dir, "a.go"), 1, "m1"),
		finding("maporder", filepath.Join(dir, "a.go"), 2, "m1"),
		finding("globalstate", filepath.Join(dir, "b.go"), 3, "g1"),
	}
	if err := analysis.WriteBaseline(path, "test", fs); err != nil {
		t.Fatal(err)
	}
	b, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	debt := b.DebtByAnalyzer()
	if debt["maporder"] != 2 || debt["globalstate"] != 1 {
		t.Fatalf("DebtByAnalyzer = %v", debt)
	}
}

func TestReportFormats(t *testing.T) {
	a := &analysis.Analyzer{Name: "maporder", Doc: "doc"}
	fresh := []analysis.Finding{finding("maporder", "/r/pkg/a.go", 4, "boom")}
	base := []analysis.Finding{finding("maporder", "/r/pkg/b.go", 9, "known")}

	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, []*analysis.Analyzer{a}, fresh, base, "/r"); err != nil {
		t.Fatal(err)
	}
	var rep analysis.JSONReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON report: %v", err)
	}
	if rep.New != 1 || rep.Baselined != 1 || len(rep.Findings) != 2 {
		t.Fatalf("JSON report counts: %+v", rep)
	}
	if rep.Findings[0].File != "pkg/a.go" {
		t.Fatalf("paths not relativized: %+v", rep.Findings[0])
	}

	buf.Reset()
	if err := analysis.WriteSARIF(&buf, []*analysis.Analyzer{a}, fresh, base, "/r"); err != nil {
		t.Fatal(err)
	}
	var sarif map[string]any
	if err := json.Unmarshal(buf.Bytes(), &sarif); err != nil {
		t.Fatalf("invalid SARIF: %v", err)
	}
	if v, _ := sarif["version"].(string); v != "2.1.0" {
		t.Fatalf("SARIF version = %q", v)
	}
	out := buf.String()
	for _, want := range []string{`"ruleId": "maporder"`, `"level": "error"`, `"level": "note"`, `"uri": "pkg/a.go"`} {
		if !strings.Contains(out, want) {
			t.Errorf("SARIF output missing %s", want)
		}
	}
}
