// Package buffer implements a CFLRU data buffer (Park et al., CASES 2006)
// in front of a simulated SSD.
//
// The paper's §2.1 notes that an SSD's internal RAM is split between a data
// buffer and the mapping cache, and §4.4's clean-first replacement
// explicitly borrows CFLRU's insight: evicting a clean page is free, so
// prefer clean victims within a window of the LRU end and let dirty pages
// accumulate more updates before they cost a flash write. This package
// provides that data-buffer layer as an optional front to any ftl.Device,
// letting experiments quantify how much of TPFTL's benefit survives behind
// a write buffer.
package buffer

import (
	"fmt"
	"time"

	"repro/internal/ftl"
	"repro/internal/lru"
	"repro/internal/trace"
)

// Config parameterizes the buffer.
type Config struct {
	// Pages is the buffer capacity in flash pages.
	Pages int
	// WindowFraction is the clean-first search window as a fraction of
	// the capacity, measured from the LRU end (default 0.5, CFLRU's
	// typical setting). 0 < w ≤ 1.
	WindowFraction float64
}

// Metrics counts buffer-level events.
type Metrics struct {
	Reads       int64 // page reads issued to the buffer
	Writes      int64 // page writes issued to the buffer
	ReadHits    int64
	WriteHits   int64 // overwrites absorbed in RAM
	Fetches     int64 // read misses forwarded to the device
	Flushes     int64 // buffered dirty pages written to the device (all paths)
	CleanDrops  int64 // clean evictions (free)
	ForcedDirty int64 // dirty evictions with no clean page in the window
	FUAWrites   int64 // write-through pages forwarded for FUA requests
	TrimDrops   int64 // buffered pages dropped by TRIM (dirty ones never written)
}

type bufPage struct {
	node  lru.Node[*bufPage]
	lpn   ftl.LPN
	dirty bool
}

// Buffered wraps a device with a CFLRU page buffer.
type Buffered struct {
	dev *ftl.Device
	cfg Config

	pages map[ftl.LPN]*bufPage
	list  lru.List[*bufPage] // MRU..LRU

	pageSize int64
	clock    time.Duration
	m        Metrics
}

// New wraps dev with a CFLRU buffer.
func New(dev *ftl.Device, cfg Config) (*Buffered, error) {
	if cfg.Pages <= 0 {
		return nil, fmt.Errorf("buffer: non-positive capacity %d", cfg.Pages)
	}
	if cfg.WindowFraction == 0 {
		cfg.WindowFraction = 0.5
	}
	if cfg.WindowFraction < 0 || cfg.WindowFraction > 1 {
		return nil, fmt.Errorf("buffer: window fraction %v out of (0,1]", cfg.WindowFraction)
	}
	return &Buffered{
		dev:      dev,
		cfg:      cfg,
		pages:    make(map[ftl.LPN]*bufPage, cfg.Pages),
		pageSize: int64(dev.Config().PageSize),
	}, nil
}

// Device returns the wrapped device.
func (b *Buffered) Device() *ftl.Device { return b.dev }

// Metrics returns the buffer counters.
func (b *Buffered) Metrics() Metrics { return b.m }

// Len returns the number of buffered pages.
func (b *Buffered) Len() int { return len(b.pages) }

// DirtyLen returns the number of dirty buffered pages.
func (b *Buffered) DirtyLen() int {
	n := 0
	for _, p := range b.pages {
		if p.dirty {
			n++
		}
	}
	return n
}

// Serve executes one request through the buffer. Buffer hits cost no flash
// time; misses and writebacks are forwarded to the device as page requests
// carrying the original arrival time. FUA writes go straight through to the
// device (and stay cached clean); a flush drains every dirty buffered page
// before forwarding the barrier; a TRIM drops buffered copies of the
// discarded range — dirty ones included, their data is dead — and forwards
// the discard.
func (b *Buffered) Serve(req trace.Request) (time.Duration, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	arrival := time.Duration(req.Arrival)
	if arrival > b.clock {
		b.clock = arrival
	}
	switch req.Op {
	case trace.OpRead, trace.OpWrite:
		first, last := req.Pages(int(b.pageSize))
		for lpn := first; lpn <= last; lpn++ {
			var err error
			if req.Op == trace.OpWrite {
				err = b.writePage(req.Arrival, ftl.LPN(lpn))
			} else {
				err = b.readPage(req.Arrival, ftl.LPN(lpn))
			}
			if err != nil {
				return 0, err
			}
		}
	case trace.OpWriteFUA:
		first, last := req.Pages(int(b.pageSize))
		for lpn := first; lpn <= last; lpn++ {
			if err := b.writeThrough(req.Arrival, ftl.LPN(lpn)); err != nil {
				return 0, err
			}
		}
	case trace.OpTrim:
		if err := b.trim(req); err != nil {
			return 0, err
		}
	case trace.OpFlush:
		if err := b.Flush(req.Arrival); err != nil {
			return 0, err
		}
		if _, err := b.dev.Serve(req); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("buffer: unhandled request op %v", req.Op)
	}
	if dc := b.dev.Now(); dc > b.clock {
		b.clock = dc
	}
	return b.clock - arrival, nil
}

// Run serves every request.
func (b *Buffered) Run(reqs []trace.Request) error {
	for i := range reqs {
		if _, err := b.Serve(reqs[i]); err != nil {
			return fmt.Errorf("buffer: request %d: %w", i, err)
		}
	}
	return nil
}

func (b *Buffered) readPage(arrival int64, lpn ftl.LPN) error {
	b.m.Reads++
	if p, ok := b.pages[lpn]; ok {
		b.m.ReadHits++
		b.list.MoveToFront(&p.node)
		return nil
	}
	b.m.Fetches++
	if _, err := b.dev.Serve(trace.Request{
		Arrival: arrival, Offset: int64(lpn) * b.pageSize, Length: b.pageSize,
	}); err != nil {
		return err
	}
	return b.insert(arrival, lpn, false)
}

func (b *Buffered) writePage(arrival int64, lpn ftl.LPN) error {
	b.m.Writes++
	if p, ok := b.pages[lpn]; ok {
		b.m.WriteHits++
		p.dirty = true
		b.list.MoveToFront(&p.node)
		return nil
	}
	return b.insert(arrival, lpn, true)
}

// writeThrough serves one page of a FUA write: the page goes to flash
// immediately (the durability the host asked for) and stays cached clean —
// the copy just written is also the freshest, so later reads still hit.
func (b *Buffered) writeThrough(arrival int64, lpn ftl.LPN) error {
	b.m.Writes++
	b.m.FUAWrites++
	if _, err := b.dev.Serve(trace.Request{
		Arrival: arrival, Offset: int64(lpn) * b.pageSize,
		Length: b.pageSize, Op: trace.OpWriteFUA,
	}); err != nil {
		return err
	}
	if p, ok := b.pages[lpn]; ok {
		p.dirty = false
		b.list.MoveToFront(&p.node)
		return nil
	}
	return b.insert(arrival, lpn, false)
}

// trim drops every buffered copy inside the discarded range (inward page
// rounding: a partially-covered page keeps its data) and forwards the
// discard to the device. Dirty buffered pages are dropped without
// writeback — their content was just declared dead by the host.
func (b *Buffered) trim(req trace.Request) error {
	first := (req.Offset + b.pageSize - 1) / b.pageSize
	last := req.End()/b.pageSize - 1
	for lpn := first; lpn <= last; lpn++ {
		if p, ok := b.pages[ftl.LPN(lpn)]; ok {
			b.list.Remove(&p.node)
			delete(b.pages, p.lpn)
			b.m.TrimDrops++
		}
	}
	_, err := b.dev.Serve(req)
	return err
}

func (b *Buffered) insert(arrival int64, lpn ftl.LPN, dirty bool) error {
	for len(b.pages) >= b.cfg.Pages {
		if err := b.evict(arrival); err != nil {
			return err
		}
	}
	p := &bufPage{lpn: lpn, dirty: dirty}
	p.node.Value = p
	b.pages[lpn] = p
	b.list.PushFront(&p.node)
	return nil
}

// evict applies CFLRU: the first clean page within the window from the LRU
// end goes for free; with none, the LRU page is evicted, flushing if dirty.
func (b *Buffered) evict(arrival int64) error {
	window := int(float64(b.cfg.Pages) * b.cfg.WindowFraction)
	if window < 1 {
		window = 1
	}
	var victim *bufPage
	scanned := 0
	for n := b.list.Back(); n != nil && scanned < window; n = n.Prev() {
		p := n.Value
		if !p.dirty {
			victim = p
			break
		}
		scanned++
	}
	if victim == nil {
		victim = b.list.Back().Value
		if victim.dirty {
			b.m.ForcedDirty++
		}
	}
	b.list.Remove(&victim.node)
	delete(b.pages, victim.lpn)
	if !victim.dirty {
		b.m.CleanDrops++
		return nil
	}
	return b.writeback(arrival, victim)
}

// writeback writes one dirty buffered page to the device and marks it
// clean. It is the single writeback path — evictions and flush drains both
// funnel through it — so Metrics.Flushes counts every buffered page write
// reaching flash exactly once, no matter which path issued it. (The two
// paths previously duplicated this logic and could drift in accounting.)
func (b *Buffered) writeback(arrival int64, p *bufPage) error {
	b.m.Flushes++
	if _, err := b.dev.Serve(trace.Request{
		Arrival: arrival, Offset: int64(p.lpn) * b.pageSize,
		Length: b.pageSize, Op: trace.OpWrite,
	}); err != nil {
		return err
	}
	p.dirty = false
	return nil
}

// Flush writes back every dirty buffered page, LRU first. Host flush
// barriers and the end-of-run drain both use it; the pages stay cached,
// now clean.
func (b *Buffered) Flush(arrival int64) error {
	for n := b.list.Back(); n != nil; n = n.Prev() {
		p := n.Value
		if !p.dirty {
			continue
		}
		if err := b.writeback(arrival, p); err != nil {
			return err
		}
	}
	return nil
}
