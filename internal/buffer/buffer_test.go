package buffer

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/trace"
)

func newBuffered(t *testing.T, pages int) (*Buffered, *ftl.Device) {
	t.Helper()
	cfg := ftl.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.15,
		CacheBytes:    1024,
	}
	tr := core.New(core.DefaultConfig(cfg.CacheBytes))
	dev, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Format(); err != nil {
		t.Fatal(err)
	}
	b, err := New(dev, Config{Pages: pages})
	if err != nil {
		t.Fatal(err)
	}
	return b, dev
}

func wr(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpWrite}
}

func rd(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpRead}
}

func TestConfigValidation(t *testing.T) {
	_, dev := newBuffered(t, 4)
	if _, err := New(dev, Config{Pages: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(dev, Config{Pages: 4, WindowFraction: 2}); err == nil {
		t.Fatal("window > 1 accepted")
	}
}

func TestWriteCoalescing(t *testing.T) {
	b, dev := newBuffered(t, 8)
	arrival := int64(0)
	// Overwrite the same page 50 times: the device must see no writes
	// until a flush.
	for i := 0; i < 50; i++ {
		if _, err := b.Serve(wr(arrival, 3)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	if got := dev.Metrics().PageWrites; got != 0 {
		t.Fatalf("device saw %d writes, want 0 (absorbed)", got)
	}
	if b.Metrics().WriteHits != 49 {
		t.Fatalf("write hits = %d, want 49", b.Metrics().WriteHits)
	}
	if err := b.Flush(arrival); err != nil {
		t.Fatal(err)
	}
	if got := dev.Metrics().PageWrites; got != 1 {
		t.Fatalf("device saw %d writes after flush, want 1", got)
	}
}

func TestReadHitAvoidsDevice(t *testing.T) {
	b, dev := newBuffered(t, 8)
	if _, err := b.Serve(rd(0, 5)); err != nil {
		t.Fatal(err)
	}
	reads := dev.Metrics().PageReads
	if reads != 1 {
		t.Fatalf("first read: device reads = %d", reads)
	}
	if _, err := b.Serve(rd(1e6, 5)); err != nil {
		t.Fatal(err)
	}
	if dev.Metrics().PageReads != reads {
		t.Fatal("buffered read went to the device")
	}
	// A write to the buffered page then a read returns the dirty copy.
	if _, err := b.Serve(wr(2e6, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Serve(rd(3e6, 5)); err != nil {
		t.Fatal(err)
	}
	if dev.Metrics().PageWrites != 0 {
		t.Fatal("dirty page leaked to device prematurely")
	}
}

func TestCleanFirstEviction(t *testing.T) {
	_, dev := newBuffered(t, 4)
	// Full window so the clean pages (at the MRU end) are in scope.
	b, err := New(dev, Config{Pages: 4, WindowFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	arrival := int64(0)
	// Two dirty pages (old), two clean pages (newer).
	for _, p := range []int64{0, 1} {
		if _, err := b.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	for _, p := range []int64{2, 3} {
		if _, err := b.Serve(rd(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	// Insert a fifth page: CFLRU must drop a clean page, not flush dirty.
	if _, err := b.Serve(rd(arrival, 9)); err != nil {
		t.Fatal(err)
	}
	m := b.Metrics()
	if m.CleanDrops != 1 || m.Flushes != 0 {
		t.Fatalf("drops=%d flushes=%d, want clean-first", m.CleanDrops, m.Flushes)
	}
	if dev.Metrics().PageWrites != 0 {
		t.Fatal("dirty page flushed despite clean candidates")
	}
}

func TestDirtyEvictionFlushes(t *testing.T) {
	b, dev := newBuffered(t, 4)
	arrival := int64(0)
	for p := int64(0); p < 6; p++ { // all dirty: evictions must flush
		if _, err := b.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	if b.Metrics().Flushes != 2 {
		t.Fatalf("flushes = %d, want 2", b.Metrics().Flushes)
	}
	if dev.Metrics().PageWrites != 2 {
		t.Fatalf("device writes = %d, want 2", dev.Metrics().PageWrites)
	}
	if b.Metrics().ForcedDirty == 0 {
		t.Fatal("forced dirty eviction not counted")
	}
}

func TestBufferReducesDeviceWrites(t *testing.T) {
	// The same hot/cold write stream with and without a buffer: the buffer
	// must absorb a large share of the device writes (its purpose in
	// §2.1's RAM split).
	reqs := func() []trace.Request {
		rng := rand.New(rand.NewSource(7))
		out := make([]trace.Request, 5000)
		arrival := int64(0)
		for i := range out {
			arrival += int64(time.Millisecond)
			p := int64(rng.Intn(64)) // hot set fits in buffer
			if rng.Intn(10) == 0 {
				p = int64(rng.Intn(4096))
			}
			out[i] = wr(arrival, p)
		}
		return out
	}

	b, dev := newBuffered(t, 128)
	if err := b.Run(reqs()); err != nil {
		t.Fatal(err)
	}
	buffered := dev.Metrics().PageWrites

	b2, dev2 := newBuffered(t, 1) // effectively unbuffered
	if err := b2.Run(reqs()); err != nil {
		t.Fatal(err)
	}
	unbuffered := dev2.Metrics().PageWrites

	if buffered*2 > unbuffered {
		t.Fatalf("buffer absorbed too little: %d vs %d device writes", buffered, unbuffered)
	}
	if err := dev.CheckConsistency(nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPageRequests(t *testing.T) {
	b, _ := newBuffered(t, 16)
	req := trace.Request{Arrival: 0, Offset: 0, Length: 5 * 4096, Op: trace.OpWrite}
	if _, err := b.Serve(req); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 5 {
		t.Fatalf("buffered pages = %d, want 5", b.Len())
	}
	if b.DirtyLen() != 5 {
		t.Fatalf("dirty = %d, want 5", b.DirtyLen())
	}
}

// TestFlushMetricConsistency is the regression for the once-divergent
// writeback paths: whether a dirty page reaches flash via capacity eviction
// or via an explicit flush drain, Metrics.Flushes must count it exactly
// once, and it must equal the device-visible buffered writes.
func TestFlushMetricConsistency(t *testing.T) {
	b, dev := newBuffered(t, 4)
	arrival := int64(0)
	// 12 distinct dirty pages through a 4-page buffer: 8 leave by
	// eviction, the rest by the final drain.
	for i := int64(0); i < 12; i++ {
		arrival += 1000
		if _, err := b.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
	}
	evicted := b.Metrics().Flushes
	if evicted != 8 {
		t.Fatalf("evictions flushed %d pages, want 8", evicted)
	}
	if err := b.Flush(arrival); err != nil {
		t.Fatal(err)
	}
	m := b.Metrics()
	if m.Flushes != 12 {
		t.Fatalf("Flushes = %d after drain, want 12 (every dirty page once)", m.Flushes)
	}
	if got := dev.Metrics().PageWrites; got != int64(m.Flushes) {
		t.Fatalf("device saw %d page writes, buffer claims %d flushes", got, m.Flushes)
	}
	if b.DirtyLen() != 0 {
		t.Fatalf("%d dirty pages after drain", b.DirtyLen())
	}
}

// TestFlushRequestDrainsBuffer checks the OpFlush path end to end: serving
// a flush request writes back every dirty buffered page and forwards the
// barrier to the device (FlushRequests accounting), and a second flush is
// free because nothing is dirty.
func TestFlushRequestDrainsBuffer(t *testing.T) {
	b, dev := newBuffered(t, 8)
	arrival := int64(0)
	for i := int64(0); i < 5; i++ {
		arrival += 1000
		if _, err := b.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Metrics().PageWrites != 0 {
		t.Fatal("writes reached the device before any flush")
	}
	arrival += 1000
	if _, err := b.Serve(trace.Request{Arrival: arrival, Op: trace.OpFlush}); err != nil {
		t.Fatal(err)
	}
	if got := dev.Metrics().PageWrites; got != 5 {
		t.Fatalf("flush drained %d pages, want 5", got)
	}
	if got := dev.Metrics().FlushRequests; got != 1 {
		t.Fatalf("device saw %d flush requests, want 1", got)
	}
	before := b.Metrics().Flushes
	arrival += 1000
	if _, err := b.Serve(trace.Request{Arrival: arrival, Op: trace.OpFlush}); err != nil {
		t.Fatal(err)
	}
	if got := b.Metrics().Flushes; got != before {
		t.Fatalf("idle flush wrote back %d pages", got-before)
	}
}

// TestFUAWriteThrough checks that a FUA write bypasses buffering — the
// device sees it immediately — while still landing in the buffer clean, so
// a subsequent read hits RAM and a subsequent flush has nothing to do for
// it.
func TestFUAWriteThrough(t *testing.T) {
	b, dev := newBuffered(t, 8)
	req := trace.Request{Arrival: 1000, Offset: 3 * 4096, Length: 4096, Op: trace.OpWriteFUA}
	if _, err := b.Serve(req); err != nil {
		t.Fatal(err)
	}
	if got := dev.Metrics().PageWrites; got != 1 {
		t.Fatalf("device saw %d writes after FUA, want 1", got)
	}
	m := b.Metrics()
	if m.FUAWrites != 1 {
		t.Fatalf("FUAWrites = %d, want 1", m.FUAWrites)
	}
	if b.DirtyLen() != 0 {
		t.Fatal("FUA write left a dirty buffered page")
	}
	reads := dev.Metrics().PageReads
	if _, err := b.Serve(rd(2000, 3)); err != nil {
		t.Fatal(err)
	}
	if got := dev.Metrics().PageReads; got != reads {
		t.Fatal("read after FUA write missed the buffer")
	}
}

// TestTrimDropsBufferedPages checks that a trim drops buffered pages —
// dirty ones without writeback (the data is declared dead) — and forwards
// the discard to the device so the mapping goes away.
func TestTrimDropsBufferedPages(t *testing.T) {
	b, dev := newBuffered(t, 8)
	arrival := int64(0)
	for i := int64(0); i < 4; i++ {
		arrival += 1000
		if _, err := b.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
	}
	arrival += 1000
	// Trim pages 0–3 (page-aligned, fully covered).
	req := trace.Request{Arrival: arrival, Offset: 0, Length: 4 * 4096, Op: trace.OpTrim}
	if _, err := b.Serve(req); err != nil {
		t.Fatal(err)
	}
	m := b.Metrics()
	if m.TrimDrops != 4 {
		t.Fatalf("TrimDrops = %d, want 4", m.TrimDrops)
	}
	if b.Len() != 0 || b.DirtyLen() != 0 {
		t.Fatalf("buffer kept %d pages (%d dirty) past the trim", b.Len(), b.DirtyLen())
	}
	if got := dev.Metrics().PageWrites; got != 0 {
		t.Fatalf("trim wrote back %d dead pages", got)
	}
	if got := dev.Metrics().TrimmedPages; got != 4 {
		// The dirty data only ever lived in the buffer, but Format mapped
		// every logical page, so the device still discards its 4 formatted
		// pages when the trim is forwarded.
		t.Fatalf("device trimmed %d pages, want 4", got)
	}
	if got := dev.Metrics().TrimRequests; got != 1 {
		t.Fatalf("device saw %d trim requests, want 1", got)
	}
}
