// Package workload generates synthetic request streams calibrated to the
// enterprise traces used in the TPFTL paper's evaluation (Table 4).
//
// The proprietary UMass Financial and MSR Cambridge traces cannot be
// redistributed with this repository, so each of the four workloads is
// replaced by a generator that matches every statistic the paper reports for
// it — write ratio, mean request size, sequential-read/-write fraction and
// address-space size — plus the qualitative locality structure the paper's
// §3.2 analysis depends on: Zipf-distributed hot spots (temporal locality)
// and sequential runs interspersed with random accesses (spatial locality,
// Fig. 2a's diagonal streaks). Every result in the paper's evaluation is a
// function of these request-stream properties as seen by the mapping cache,
// so the calibrated surrogates preserve the comparative shape of the
// experiments. Real traces can still be replayed via internal/trace parsers.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/trace"
)

// Profile parameterizes a synthetic workload.
type Profile struct {
	// Name identifies the workload in reports.
	Name string
	// AddressSpace is the logical device size in bytes.
	AddressSpace int64
	// WriteRatio is the fraction of requests that are writes.
	WriteRatio float64
	// AvgRequestBytes is the mean request length in bytes.
	AvgRequestBytes int
	// SeqReadRatio / SeqWriteRatio are the fractions of reads/writes that
	// continue the preceding request's address range (Table 4 definition).
	SeqReadRatio  float64
	SeqWriteRatio float64
	// ZipfTheta controls temporal locality of the random component;
	// 0 disables skew, values toward 1 concentrate accesses. Enterprise
	// OLTP workloads such as Financial1 show strong temporal locality.
	ZipfTheta float64
	// HotFraction is the fraction of the address space that receives
	// HotAccessFraction of the random accesses (a coarse working-set
	// knob layered under the Zipf skew).
	HotFraction float64
	// SeqRunPages is the mean length, in pages, of a sequential run once
	// one starts. Longer runs model the MSR traces' large sequential
	// streams.
	SeqRunPages int
	// FootprintFraction is the fraction of the address space the trace
	// ever touches. Enterprise traces exercise only part of their device;
	// the untouched remainder is cold data that garbage collection
	// consolidates once and never revisits, which is what keeps the
	// paper's write amplification in the 2.4-5.1 range despite full-use
	// devices. 0 means 1 (the whole space).
	FootprintFraction float64
	// MeanInterarrival is the mean request inter-arrival time in
	// nanoseconds (exponential). It must be chosen so the simulated
	// device is stably utilized; see DefaultProfiles.
	MeanInterarrival int64

	// TrimRatio is the fraction of requests that are TRIM/discard
	// commands (0 disables them; the four paper workloads predate TRIM).
	TrimRatio float64
	// TrimAvgBytes is the mean TRIM length; 0 means 16× AvgRequestBytes
	// (file deletions discard far more than one I/O covers).
	TrimAvgBytes int
	// FlushEvery issues a flush barrier after every N write requests, the
	// fsync cadence of databases and journaling filesystems (0 disables).
	FlushEvery int
	// FUAFraction is the fraction of writes tagged force-unit-access
	// (write-through past the buffer cache, as journal commits are).
	FUAFraction float64
}

// Validate reports whether the profile is self-consistent.
func (p Profile) Validate() error {
	switch {
	case p.AddressSpace <= 0:
		return fmt.Errorf("workload %s: non-positive address space", p.Name)
	case p.WriteRatio < 0 || p.WriteRatio > 1:
		return fmt.Errorf("workload %s: write ratio %v out of [0,1]", p.Name, p.WriteRatio)
	case p.AvgRequestBytes <= 0:
		return fmt.Errorf("workload %s: non-positive request size", p.Name)
	case p.SeqReadRatio < 0 || p.SeqReadRatio > 1 || p.SeqWriteRatio < 0 || p.SeqWriteRatio > 1:
		return fmt.Errorf("workload %s: sequential ratios out of [0,1]", p.Name)
	case p.ZipfTheta < 0 || p.ZipfTheta >= 1:
		return fmt.Errorf("workload %s: zipf theta %v out of [0,1)", p.Name, p.ZipfTheta)
	case p.MeanInterarrival <= 0:
		return fmt.Errorf("workload %s: non-positive interarrival", p.Name)
	case p.FootprintFraction < 0 || p.FootprintFraction > 1:
		return fmt.Errorf("workload %s: footprint %v out of [0,1]", p.Name, p.FootprintFraction)
	case p.TrimRatio < 0 || p.TrimRatio >= 1:
		return fmt.Errorf("workload %s: trim ratio %v out of [0,1)", p.Name, p.TrimRatio)
	case p.TrimAvgBytes < 0:
		return fmt.Errorf("workload %s: negative trim size", p.Name)
	case p.FlushEvery < 0:
		return fmt.Errorf("workload %s: negative flush interval", p.Name)
	case p.FUAFraction < 0 || p.FUAFraction > 1:
		return fmt.Errorf("workload %s: FUA fraction %v out of [0,1]", p.Name, p.FUAFraction)
	}
	return nil
}

// footprintBytes returns the size of the touched address range.
func (p Profile) footprintBytes() int64 {
	f := p.FootprintFraction
	if f == 0 {
		f = 1
	}
	n := int64(float64(p.AddressSpace) * f)
	n = n / pageSize * pageSize
	if n < pageSize {
		n = pageSize
	}
	return n
}

// FootprintBytes returns the size of the address range the generator
// touches (page aligned).
func (p Profile) FootprintBytes() int64 { return p.footprintBytes() }

// The four paper workloads (Table 4), with address spaces scaled by the
// harness when a smaller run is requested. Interarrival times are tuned so
// that a DFTL device is busy but stable (the paper's response-time numbers
// include queueing delay, so the arrival process must load the device).
//
// Financial1/2: 512 MB address space, small random requests.
// MSR-ts/src: 16 GB address space, larger and more sequential requests.

// Financial1 approximates the UMass Financial1 OLTP trace:
// write-intensive (77.9 %), 3.5 KB average requests, almost entirely random
// (1.5 % / 1.8 % sequential), strong temporal locality.
func Financial1() Profile {
	return Profile{
		Name:              "Financial1",
		AddressSpace:      512 << 20,
		WriteRatio:        0.779,
		AvgRequestBytes:   3584, // 3.5 KB
		SeqReadRatio:      0.015,
		SeqWriteRatio:     0.018,
		ZipfTheta:         0.95,
		HotFraction:       0.15,
		SeqRunPages:       8,
		FootprintFraction: 0.40,
		MeanInterarrival:  3_000_000, // 3 ms: write-heavy service is slow
	}
}

// Financial2 approximates the UMass Financial2 trace: read-dominant (18 %
// writes), 2.4 KB average requests, random-dominant.
func Financial2() Profile {
	return Profile{
		Name:              "Financial2",
		AddressSpace:      512 << 20,
		WriteRatio:        0.18,
		AvgRequestBytes:   2458, // 2.4 KB
		SeqReadRatio:      0.008,
		SeqWriteRatio:     0.005,
		ZipfTheta:         0.95,
		HotFraction:       0.15,
		SeqRunPages:       8,
		FootprintFraction: 0.40,
		MeanInterarrival:  1_000_000, // 1 ms; read-dominant, faster service
	}
}

// MSRts approximates the MSR Cambridge "ts" server trace: write-dominant
// (82.4 %), 9 KB average requests, strongly sequential reads (47.2 %).
func MSRts() Profile {
	return Profile{
		Name:              "MSR-ts",
		AddressSpace:      16 << 30,
		WriteRatio:        0.824,
		AvgRequestBytes:   9 << 10,
		SeqReadRatio:      0.472,
		SeqWriteRatio:     0.06,
		ZipfTheta:         0.85,
		HotFraction:       0.10,
		SeqRunPages:       64,
		FootprintFraction: 0.12,
		MeanInterarrival:  2_000_000, // 2 ms; large writes
	}
}

// MSRsrc approximates the MSR Cambridge "src" source-control trace:
// write-dominant (88.7 %), 7.2 KB average requests, sequential.
func MSRsrc() Profile {
	return Profile{
		Name:              "MSR-src",
		AddressSpace:      16 << 30,
		WriteRatio:        0.887,
		AvgRequestBytes:   7373, // 7.2 KB
		SeqReadRatio:      0.226,
		SeqWriteRatio:     0.071,
		ZipfTheta:         0.85,
		HotFraction:       0.10,
		SeqRunPages:       48,
		FootprintFraction: 0.12,
		MeanInterarrival:  1_800_000,
	}
}

// FstrimHeavy models a filesystem running periodic fstrim over a busy
// device: Financial1's random-write character plus a steady stream of large
// page-aligned discards, the workload that exercises a translator's
// unmapped-read and GC-credit paths.
func FstrimHeavy() Profile {
	p := Financial1()
	p.Name = "fstrim-heavy"
	p.TrimRatio = 0.15
	p.TrimAvgBytes = 256 << 10 // 256 KB per discard, a deleted-file extent
	return p
}

// DatabaseFsync models a database committing through fsync: write-dominant
// with a flush barrier every few writes and journal commits tagged FUA.
func DatabaseFsync() Profile {
	p := Financial1()
	p.Name = "database-fsync"
	p.FlushEvery = 8
	p.FUAFraction = 0.10
	return p
}

// DefaultProfiles returns the paper's four workloads in evaluation order.
func DefaultProfiles() []Profile {
	return []Profile{Financial1(), Financial2(), MSRts(), MSRsrc()}
}

// AllProfiles returns every built-in profile: the paper's four plus the
// host-interface workloads (TRIM and flush/FUA).
func AllProfiles() []Profile {
	return append(DefaultProfiles(), FstrimHeavy(), DatabaseFsync())
}

// ProfileByName returns the named built-in profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	switch name {
	case "fstrim", "trim":
		return FstrimHeavy(), nil
	case "fsync", "database":
		return DatabaseFsync(), nil
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Scale returns a copy of p with the address space set to size bytes,
// preserving all ratio parameters. Experiments use this to run the MSR
// surrogates at reduced scale without changing their character.
func (p Profile) Scale(size int64) Profile {
	p.AddressSpace = size
	return p
}

// pageSize is the unit sequential runs and hot ranges are expressed in.
const pageSize = 4096

// sectorBytes quantizes generated request lengths (512 B disk sectors).
const sectorBytes = 512

// Generator produces a request stream for a profile. It is deterministic
// for a given seed.
type Generator struct {
	p   Profile
	rng *rand.Rand
	z   *zipf

	clock   int64
	prevEnd int64 // end offset of the previous request, -1 initially

	// Sequentiality is driven by one two-state Markov chain per direction
	// whose stationary continuation probability equals the Table 4 target
	// exactly, while its persistence (continue-after-continue
	// probability) stretches continuations into multi-request streams of
	// roughly SeqRunPages pages — the Fig. 2a diagonal structure.
	wasSeq [2]bool // last decision per direction (0 read, 1 write)
	pCont  [2]float64
	pStart [2]float64

	// writesSinceFlush counts writes toward the FlushEvery barrier.
	writesSinceFlush int
}

// NewGenerator creates a generator for p seeded with seed.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		p:       p,
		rng:     rand.New(rand.NewSource(seed)),
		prevEnd: -1,
	}
	pages := p.footprintBytes() / pageSize
	if p.ZipfTheta > 0 {
		g.z = newZipf(g.rng, p.ZipfTheta, pages)
	}
	avgPages := float64(p.AvgRequestBytes) / pageSize
	if avgPages < 1 {
		avgPages = 1
	}
	meanRunReqs := float64(p.SeqRunPages) / avgPages
	if meanRunReqs < 1.5 {
		meanRunReqs = 1.5
	}
	q := 1 - 1/meanRunReqs // persistence
	for dir, s := range [2]float64{p.SeqReadRatio, p.SeqWriteRatio} {
		// Stationarity: s = s*q + (1-s)*p0 → p0 = s(1-q)/(1-s).
		p0 := 0.0
		if s < 1 {
			p0 = s * (1 - q) / (1 - s)
		}
		qq := q
		if p0 > 1 { // target too high for chosen persistence; fall back
			p0 = s
			qq = s
		}
		g.pCont[dir] = qq
		g.pStart[dir] = p0
	}
	return g, nil
}

// Next returns the next request.
//
// Every extra random draw is gated on its knob being nonzero, so profiles
// without TRIM/flush/FUA consume the random stream exactly as before and
// stay bit-identical to their golden traces.
func (g *Generator) Next() trace.Request {
	p := g.p

	// A pending flush barrier preempts the next request: databases block
	// on fsync before issuing more I/O.
	if p.FlushEvery > 0 && g.writesSinceFlush >= p.FlushEvery {
		g.writesSinceFlush = 0
		g.clock += int64(g.rng.ExpFloat64() * float64(p.MeanInterarrival))
		return trace.Request{Arrival: g.clock, Op: trace.OpFlush}
	}

	// TRIM decision next: discards are their own request class, not reads
	// or writes, so they bypass the direction Markov chains entirely.
	if p.TrimRatio > 0 && g.rng.Float64() < p.TrimRatio {
		return g.nextTrim()
	}

	// Direction first: the sequential continuation decision is
	// per-direction (Table 4 reports seq-read and seq-write fractions).
	write := g.rng.Float64() < p.WriteRatio
	dir := 0
	if write {
		dir = 1
	}

	// Request length: exponential around the mean, quantized to 512 B
	// sectors, at least one sector, capped at 64 pages.
	length := int64(g.rng.ExpFloat64() * float64(p.AvgRequestBytes))
	length = (length + sectorBytes - 1) / sectorBytes * sectorBytes
	if length < sectorBytes {
		length = sectorBytes
	}
	if max := int64(64 * pageSize); length > max {
		length = max
	}

	pSeq := g.pStart[dir]
	if g.wasSeq[dir] {
		pSeq = g.pCont[dir]
	}
	foot := p.footprintBytes()
	seq := g.rng.Float64() < pSeq && g.prevEnd >= 0 && g.prevEnd+length <= foot
	g.wasSeq[dir] = seq

	var offset int64
	if seq {
		offset = g.prevEnd
	} else {
		offset = g.randomOffset(length)
	}
	if offset+length > foot {
		offset = foot - length
	}

	op := trace.OpRead
	if write {
		op = trace.OpWrite
		if p.FUAFraction > 0 && g.rng.Float64() < p.FUAFraction {
			op = trace.OpWriteFUA
		}
		g.writesSinceFlush++
	}

	g.clock += int64(g.rng.ExpFloat64() * float64(p.MeanInterarrival))
	req := trace.Request{Arrival: g.clock, Offset: offset, Length: length, Op: op}
	g.prevEnd = req.End()
	return req
}

// nextTrim produces one TRIM request: a page-aligned extent, exponential
// around TrimAvgBytes, at a uniformly random footprint offset (deletions
// have no temporal locality — cold files go first).
func (g *Generator) nextTrim() trace.Request {
	p := g.p
	avg := int64(p.TrimAvgBytes)
	if avg == 0 {
		avg = 16 * int64(p.AvgRequestBytes)
	}
	length := int64(g.rng.ExpFloat64() * float64(avg))
	length = (length + pageSize - 1) / pageSize * pageSize
	if length < pageSize {
		length = pageSize
	}
	foot := p.footprintBytes()
	if length > foot {
		length = foot
	}
	maxStart := (foot - length) / pageSize
	var offset int64
	if maxStart > 0 {
		offset = g.rng.Int63n(maxStart+1) * pageSize
	}
	g.clock += int64(g.rng.ExpFloat64() * float64(p.MeanInterarrival))
	return trace.Request{Arrival: g.clock, Offset: offset, Length: length, Op: trace.OpTrim}
}

// randomOffset picks a page-aligned offset with the profile's locality,
// within the workload's footprint.
func (g *Generator) randomOffset(length int64) int64 {
	pages := g.p.footprintBytes() / pageSize
	maxStart := pages - (length+pageSize-1)/pageSize
	if maxStart <= 0 {
		return 0
	}
	var page int64
	if g.z != nil {
		// Zipf rank → page. Scatter ranks over the address space with a
		// fixed multiplicative hash so hot pages are not all adjacent
		// (adjacency would fake spatial locality).
		rank := g.z.next()
		if g.p.HotFraction > 0 && g.p.HotFraction < 1 {
			hotPages := int64(float64(pages) * g.p.HotFraction)
			if hotPages < 1 {
				hotPages = 1
			}
			if rank < hotPages {
				page = scatter(rank, hotPages)
			} else {
				page = hotPages + scatter(rank-hotPages, pages-hotPages)
				page = page % pages
			}
		} else {
			page = scatter(rank, pages)
		}
	} else {
		page = g.rng.Int63n(pages)
	}
	if page > maxStart {
		page = page % (maxStart + 1)
	}
	return page * pageSize
}

// scatter maps rank ∈ [0,n) to a pseudo-random but fixed page in [0,n).
func scatter(rank, n int64) int64 {
	const mult = 0x9E3779B97F4A7C15
	h := uint64(rank) * mult
	return int64(h % uint64(n))
}

// Generate produces n requests.
func (g *Generator) Generate(n int) []trace.Request {
	out := make([]trace.Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Generate is a convenience wrapper: n requests from profile p with seed.
func Generate(p Profile, n int, seed int64) ([]trace.Request, error) {
	g, err := NewGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	return g.Generate(n), nil
}

// zipf draws ranks 0..n-1 with P(rank=k) ∝ 1/(k+1)^theta using the
// rejection-inversion-free approximation of Gray et al. (the standard
// "zipfian" generator of YCSB). math/rand's Zipf requires s > 1, which
// excludes the theta range used for storage workloads, hence this
// implementation.
type zipf struct {
	rng   *rand.Rand
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

func newZipf(rng *rand.Rand, theta float64, n int64) *zipf {
	if n < 1 {
		n = 1
	}
	z := &zipf{rng: rng, n: n, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaApprox(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	var sum float64
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// zetaApprox computes the generalized harmonic number H_{n,theta}. For the
// large n used here (millions of pages), the integral approximation is
// accurate and O(1); for small n, the exact sum is used.
func zetaApprox(n int64, theta float64) float64 {
	if n <= 10000 {
		return zetaStatic(n, theta)
	}
	head := zetaStatic(10000, theta)
	// ∫_{10000}^{n} x^-theta dx
	tail := (math.Pow(float64(n), 1-theta) - math.Pow(10000, 1-theta)) / (1 - theta)
	return head + tail
}

func (z *zipf) next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	r := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}
