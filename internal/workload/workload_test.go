package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestProfileValidate(t *testing.T) {
	for _, p := range DefaultProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := []func(Profile) Profile{
		func(p Profile) Profile { p.AddressSpace = 0; return p },
		func(p Profile) Profile { p.WriteRatio = 1.5; return p },
		func(p Profile) Profile { p.AvgRequestBytes = 0; return p },
		func(p Profile) Profile { p.SeqReadRatio = -0.1; return p },
		func(p Profile) Profile { p.ZipfTheta = 1.0; return p },
		func(p Profile) Profile { p.MeanInterarrival = 0; return p },
	}
	for i, mut := range bad {
		if err := mut(Financial1()).Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, want := range []string{"Financial1", "Financial2", "MSR-ts", "MSR-src"} {
		p, err := ProfileByName(want)
		if err != nil || p.Name != want {
			t.Fatalf("ProfileByName(%q) = %v, %v", want, p.Name, err)
		}
	}
	if _, err := ProfileByName("zzz"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestScale(t *testing.T) {
	p := MSRts().Scale(64 << 20)
	if p.AddressSpace != 64<<20 {
		t.Fatalf("AddressSpace = %d", p.AddressSpace)
	}
	if p.WriteRatio != MSRts().WriteRatio {
		t.Fatal("Scale must not change ratios")
	}
}

// TestCalibration checks that generated streams match the Table 4 targets
// each profile encodes.
func TestCalibration(t *testing.T) {
	for _, p := range DefaultProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			// Scale MSR profiles down so the test stays fast; ratios are
			// scale-invariant.
			if p.AddressSpace > 1<<30 {
				p = p.Scale(1 << 30)
			}
			reqs, err := Generate(p, 60000, 42)
			if err != nil {
				t.Fatal(err)
			}
			s := trace.Summarize(reqs)

			if got := s.WriteRatio(); math.Abs(got-p.WriteRatio) > 0.02 {
				t.Errorf("write ratio = %.3f, want %.3f±0.02", got, p.WriteRatio)
			}
			if got := s.AvgRequestSize(); math.Abs(got-float64(p.AvgRequestBytes)) > 0.15*float64(p.AvgRequestBytes) {
				t.Errorf("avg request = %.0f B, want %d±15%%", got, p.AvgRequestBytes)
			}
			// Sequentiality: the Markov chain's stationary continuation
			// probability equals the target, so measured values should be
			// within a few points.
			if got := s.SeqWriteRatio(); math.Abs(got-p.SeqWriteRatio) > 0.04 {
				t.Errorf("seq write ratio = %.3f, want %.3f±0.04", got, p.SeqWriteRatio)
			}
			if got := s.SeqReadRatio(); math.Abs(got-p.SeqReadRatio) > 0.05 {
				t.Errorf("seq read ratio = %.3f, want %.3f±0.05", got, p.SeqReadRatio)
			}
			if s.MaxEnd > p.AddressSpace {
				t.Errorf("request escapes address space: %d > %d", s.MaxEnd, p.AddressSpace)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(Financial1(), 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(Financial1(), 1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across same-seed runs", i)
		}
	}
	c, _ := Generate(Financial1(), 1000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestArrivalsMonotonic(t *testing.T) {
	reqs, err := Generate(Financial2(), 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			t.Fatalf("arrival went backwards at %d", i)
		}
	}
	// Mean interarrival should be near the profile's target.
	mean := float64(reqs[len(reqs)-1].Arrival) / float64(len(reqs)-1)
	want := float64(Financial2().MeanInterarrival)
	if math.Abs(mean-want) > 0.1*want {
		t.Fatalf("mean interarrival = %.0f, want %.0f±10%%", mean, want)
	}
}

func TestRequestsValid(t *testing.T) {
	for _, p := range DefaultProfiles() {
		p := p.Scale(256 << 20)
		reqs, err := Generate(p, 10000, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range reqs {
			if err := r.Validate(); err != nil {
				t.Fatalf("%s request %d: %v", p.Name, i, err)
			}
			if r.Length%512 != 0 {
				t.Fatalf("%s request %d: length %d not sector aligned", p.Name, i, r.Length)
			}
		}
	}
}

// TestTemporalLocality verifies the Zipf skew: the hottest 20% of accessed
// pages should absorb well over half the accesses for Financial profiles.
func TestTemporalLocality(t *testing.T) {
	p := Financial1()
	reqs, err := Generate(p, 50000, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	total := 0
	for _, r := range reqs {
		first, last := r.Pages(4096)
		for pg := first; pg <= last; pg++ {
			counts[pg]++
			total++
		}
	}
	// Sort counts descending (simple counting since values are small).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	hist := make([]int, max+1)
	for _, c := range counts {
		hist[c]++
	}
	hot := int(float64(len(counts)) * 0.2)
	taken, sum := 0, 0
	for c := max; c >= 1 && taken < hot; c-- {
		n := hist[c]
		if taken+n > hot {
			n = hot - taken
		}
		taken += n
		sum += n * c
	}
	frac := float64(sum) / float64(total)
	if frac < 0.5 {
		t.Fatalf("hottest 20%% of pages got %.1f%% of accesses, want > 50%%", frac*100)
	}
}

// TestSpatialLocalityRuns verifies that sequential profiles produce longer
// contiguous runs than random profiles.
func TestSpatialLocalityRuns(t *testing.T) {
	runLen := func(p Profile) float64 {
		reqs, err := Generate(p.Scale(512<<20), 20000, 9)
		if err != nil {
			t.Fatal(err)
		}
		runs, cur := 0, 1
		total := 0
		var prevEnd int64 = -1
		for _, r := range reqs {
			if r.Offset == prevEnd {
				cur++
			} else {
				runs++
				total += cur
				cur = 1
			}
			prevEnd = r.End()
		}
		return float64(total) / float64(runs)
	}
	fin := runLen(Financial1())
	msr := runLen(MSRts())
	if msr <= fin {
		t.Fatalf("MSR-ts run length %.2f not longer than Financial1 %.2f", msr, fin)
	}
}

func TestZipfDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := newZipf(rng, 0.8, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		r := z.next()
		if r < 0 || r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must be the most popular, and popularity must broadly decay.
	if counts[0] < counts[10] || counts[10] < counts[500] {
		t.Fatalf("zipf not decaying: c0=%d c10=%d c500=%d", counts[0], counts[10], counts[500])
	}
	// Rough head mass check: top 10 ranks should hold >15% of mass at theta 0.8.
	head := 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	if float64(head)/200000 < 0.15 {
		t.Fatalf("zipf head mass %.3f too small", float64(head)/200000)
	}
}

func TestZipfLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := int64(4 << 20) // 4M pages = 16 GB
	z := newZipf(rng, 0.6, n)
	for i := 0; i < 10000; i++ {
		r := z.next()
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of [0,%d)", r, n)
		}
	}
}

func TestZetaApproxAccuracy(t *testing.T) {
	// For n just above the exact-sum cutoff, the approximation must be
	// close to the exact value.
	exact := zetaStatic(20000, 0.8)
	approx := zetaApprox(20000, 0.8)
	if math.Abs(exact-approx)/exact > 0.001 {
		t.Fatalf("zeta approximation off by %.4f%%", 100*math.Abs(exact-approx)/exact)
	}
}

func TestScatterInRange(t *testing.T) {
	for _, n := range []int64{1, 7, 1024, 1 << 20} {
		for r := int64(0); r < 100; r++ {
			if s := scatter(r, n); s < 0 || s >= n {
				t.Fatalf("scatter(%d,%d) = %d", r, n, s)
			}
		}
	}
}

func TestGeneratorRejectsBadProfile(t *testing.T) {
	p := Financial1()
	p.AddressSpace = -1
	if _, err := NewGenerator(p, 1); err == nil {
		t.Fatal("bad profile accepted")
	}
	if _, err := Generate(p, 10, 1); err == nil {
		t.Fatal("bad profile accepted by Generate")
	}
}

// TestQuickArbitraryProfiles: any in-range profile produces valid,
// monotonic, in-bounds request streams.
func TestQuickArbitraryProfiles(t *testing.T) {
	f := func(seed int64, wr, sr, sw, theta, hot, foot uint8, avgReq uint16) bool {
		p := Profile{
			Name:              "quick",
			AddressSpace:      64 << 20,
			WriteRatio:        float64(wr) / 255,
			AvgRequestBytes:   int(avgReq)%32768 + 512,
			SeqReadRatio:      float64(sr) / 255 * 0.9,
			SeqWriteRatio:     float64(sw) / 255 * 0.9,
			ZipfTheta:         float64(theta) / 255 * 0.98,
			HotFraction:       float64(hot) / 255,
			SeqRunPages:       16,
			FootprintFraction: 0.1 + 0.9*float64(foot)/255,
			MeanInterarrival:  1_000_000,
		}
		if err := p.Validate(); err != nil {
			t.Log(err)
			return false
		}
		g, err := NewGenerator(p, seed)
		if err != nil {
			t.Log(err)
			return false
		}
		prev := int64(-1)
		for i := 0; i < 300; i++ {
			r := g.Next()
			if err := r.Validate(); err != nil {
				t.Logf("request %d: %v", i, err)
				return false
			}
			if r.End() > p.AddressSpace {
				t.Logf("request %d escapes address space", i)
				return false
			}
			if r.Arrival < prev {
				t.Logf("request %d arrival not monotone", i)
				return false
			}
			prev = r.Arrival
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
