// Slab allocators for the TPFTL cache nodes.
//
// The steady-state service path creates and destroys entry and TP nodes
// constantly (every miss installs nodes, every eviction removes them). Slab
// recycling turns those into free-list pops and pushes: nodes are allocated
// in chunks, reset to a sentinel state when released, and reused in LIFO
// order, so after warm-up the translation path performs zero heap
// allocations. The reset-on-release discipline matters as much as the reuse:
// a recycled node carrying a stale dirty bit or offset would silently corrupt
// the cache, so release restores every field to a recognizable sentinel and
// CheckInvariants audits the free lists (the ftlsan build additionally audits
// each TP node's offset table at release time).
package core

import (
	"fmt"

	"repro/internal/flash"
)

// slabChunk is how many nodes one backing-array growth adds. Chunking keeps
// the nodes of a batch contiguous in memory and amortizes allocator calls;
// the free lists themselves are plain stacks.
const slabChunk = 256

// entrySlab recycles entryNodes.
type entrySlab struct {
	free []*entryNode
}

// get returns a reset entry node, growing the slab if the free list is empty.
//
//ftl:hotpath
func (s *entrySlab) get() *entryNode {
	n := len(s.free)
	if n == 0 {
		s.grow()
		n = len(s.free)
	}
	e := s.free[n-1]
	s.free[n-1] = nil
	s.free = s.free[:n-1]
	return e
}

func (s *entrySlab) grow() {
	chunk := make([]entryNode, slabChunk)
	for i := range chunk {
		e := &chunk[i]
		e.node.Value = e // set once; the node identity never changes
		resetEntry(e)
		s.free = append(s.free, e)
	}
}

// put resets e and returns it to the free list. e must already be unlinked
// from its entry list.
//
//ftl:hotpath
func (s *entrySlab) put(e *entryNode) {
	resetEntry(e)
	s.free = append(s.free, e)
}

// resetEntry restores the sentinel state a free entry node must carry.
func resetEntry(e *entryNode) {
	e.owner = nil
	e.off = -1
	e.ppn = flash.InvalidPPN
	e.dirty = false
	e.stamp = 0
}

// check audits the free list: every node must be unlinked and fully reset.
// CheckInvariants calls it so property tests and the ftlsan build catch a
// recycle that leaked state the moment it happens.
func (s *entrySlab) check() error {
	for _, e := range s.free {
		if e == nil {
			return fmt.Errorf("tpftl: nil entry on slab free list")
		}
		if e.node.Value != e {
			return fmt.Errorf("tpftl: free entry node lost its back-pointer")
		}
		if e.node.InList() {
			return fmt.Errorf("tpftl: free entry node still linked in a list")
		}
		if e.owner != nil || e.off != -1 || e.ppn != flash.InvalidPPN || e.dirty || e.stamp != 0 {
			return fmt.Errorf("tpftl: free entry node not reset (owner=%v off=%d dirty=%v stamp=%d)", e.owner != nil, e.off, e.dirty, e.stamp)
		}
	}
	return nil
}

// tpSlab recycles tpNodes. The dense byOff table is retained across recycles:
// removeEntry nils each slot and a node is only released when empty, so the
// table is already all-nil and reuse costs nothing.
type tpSlab struct {
	free []*tpNode
	err  error // sticky: set when the ftlsan release audit finds a stale slot
}

// get returns a reset TP node whose byOff table has exactly ePerTP slots.
//
//ftl:hotpath
func (s *tpSlab) get(ePerTP int) *tpNode {
	n := len(s.free)
	if n == 0 {
		s.grow()
		n = len(s.free)
	}
	tp := s.free[n-1]
	s.free[n-1] = nil
	s.free = s.free[:n-1]
	if len(tp.byOff) != ePerTP {
		tp.byOff = make([]*entryNode, ePerTP)
	}
	return tp
}

func (s *tpSlab) grow() {
	chunk := make([]tpNode, slabChunk)
	for i := range chunk {
		tp := &chunk[i]
		tp.node.Value = tp
		resetTPNode(tp)
		s.free = append(s.free, tp)
	}
}

// put resets tp and returns it to the free list. tp must be empty (no
// entries) and unlinked from the page list.
//
//ftl:hotpath
func (s *tpSlab) put(tp *tpNode) {
	if slabDeepCheck && s.err == nil {
		for off, e := range tp.byOff {
			if e != nil {
				s.err = fmt.Errorf("tpftl: tp node %d released with live slot at offset %d", tp.vtpn, off)
				break
			}
		}
	}
	resetTPNode(tp)
	s.free = append(s.free, tp)
}

// resetTPNode restores the sentinel state a free TP node must carry. byOff
// is deliberately kept: its slots are already nil (see tpSlab doc).
func resetTPNode(tp *tpNode) {
	tp.vtpn = -1
	tp.dirty = 0
	tp.stampSum = 0
}

// check audits the free list, mirroring entrySlab.check.
func (s *tpSlab) check() error {
	if s.err != nil {
		return s.err
	}
	for _, tp := range s.free {
		if tp == nil {
			return fmt.Errorf("tpftl: nil tp node on slab free list")
		}
		if tp.node.Value != tp {
			return fmt.Errorf("tpftl: free tp node lost its back-pointer")
		}
		if tp.node.InList() {
			return fmt.Errorf("tpftl: free tp node still linked in a list")
		}
		if tp.entries.Len() != 0 {
			return fmt.Errorf("tpftl: free tp node still holds %d entries", tp.entries.Len())
		}
		if tp.vtpn != -1 || tp.dirty != 0 || tp.stampSum != 0 {
			return fmt.Errorf("tpftl: free tp node not reset (vtpn=%d dirty=%d stampSum=%d)", tp.vtpn, tp.dirty, tp.stampSum)
		}
	}
	return nil
}
