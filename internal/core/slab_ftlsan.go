//go:build ftlsan

package core

// slabDeepCheck arms the O(entries-per-TP) release-time audit of each TP
// node's offset table. Only the ftlsan build pays for it; the plain build
// still audits the free lists through CheckInvariants.
const slabDeepCheck = true
