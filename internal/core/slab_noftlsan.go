//go:build !ftlsan

package core

// slabDeepCheck is off in the plain build; see slab_ftlsan.go.
const slabDeepCheck = false
