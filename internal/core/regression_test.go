package core

// Regression tests for the cache-accounting bugs flushed out by the
// fault-injection work. Each test fails against the pre-fix code.

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/ftl"
)

// stubEnv is a minimal in-memory ftl.Env: translation page v reads back PPN
// v*ePerTP+off for every slot, and writes are counted but not applied. It
// lets the tests drive the cache into exact byte-level corner states that
// the full device model cannot reach deterministically.
type stubEnv struct {
	ePerTP int
	lpns   int64
	buf    []flash.PPN
	writes int
}

func (e *stubEnv) EntriesPerTP() int { return e.ePerTP }
func (e *stubEnv) NumTPs() int       { return int((e.lpns + int64(e.ePerTP) - 1) / int64(e.ePerTP)) }
func (e *stubEnv) NumLPNs() int64    { return e.lpns }

func (e *stubEnv) ReadTP(v ftl.VTPN) ([]flash.PPN, error) {
	if e.buf == nil {
		e.buf = make([]flash.PPN, e.ePerTP)
	}
	for i := range e.buf {
		e.buf[i] = flash.PPN(int(v)*e.ePerTP + i)
	}
	return e.buf, nil
}

func (e *stubEnv) WriteTP(v ftl.VTPN, updates []ftl.EntryUpdate, fullPage bool) error {
	e.writes++
	return nil
}

func (e *stubEnv) NoteLookup(bool)        {}
func (e *stubEnv) NoteReplacement(bool)   {}
func (e *stubEnv) NoteGCMapUpdate(bool)   {}
func (e *stubEnv) NoteBatchWriteback(int) {}

// TestStandaloneUpdateChargesNodeOnce: the standalone-update eviction loop
// used to charge nodeBytes unconditionally, evicting one extra entry per
// update even when lpn's TP node was already cached.
func TestStandaloneUpdateChargesNodeOnce(t *testing.T) {
	// entryBytes 8 (uncompressed), nodeBytes 8: a 48-byte budget holds one
	// TP node plus five entries exactly.
	f := New(Config{CacheBytes: 48, CompressEntries: false})
	env := &stubEnv{ePerTP: 16, lpns: 64}

	for lpn := ftl.LPN(0); lpn < 5; lpn++ {
		if err := f.Update(env, lpn, flash.PPN(100+lpn)); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != 5 || f.UsedBytes() != 48 {
		t.Fatalf("after 5 updates: %d entries, %d bytes; want 5, 48", f.Len(), f.UsedBytes())
	}

	// The node for lpn 5 is cached, so the sixth update needs room for one
	// entry only: exactly one eviction.
	if err := f.Update(env, 5, flash.PPN(105)); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 5 {
		t.Fatalf("after in-node standalone update: %d entries cached, want 5 (over-eviction)", f.Len())
	}
	if f.UsedBytes() != 48 {
		t.Fatalf("cache not refilled to budget: used %d, want 48", f.UsedBytes())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRule2RecomputedPerEviction: the §4.5 rule-2 prefetch cap was computed
// once from the coldest TP node before the eviction loop. When the loop
// dropped that node (raising the load's cost by nodeBytes, since the
// demanded entry's own node was the victim), evictions spilled into a
// second cached page with the prefetch still pending — exactly what rule 2
// exists to prevent. The cap is now recomputed before every eviction and
// the prefetch is dropped rather than claim a second victim node.
func TestRule2RecomputedPerEviction(t *testing.T) {
	// entryBytes 8, nodeBytes 32. Budget 88 holds: node A (vtpn 0) with
	// two clean entries (48 B) + node B (vtpn 1) with one entry (40 B).
	f := New(Config{
		CacheBytes:      88,
		RequestPrefetch: true,
		CompressEntries: false,
		TPNodeBytes:     32,
	})
	env := &stubEnv{ePerTP: 8, lpns: 64}

	f.BeginRequest(1, 2, false)
	if _, err := f.Translate(env, 1); err != nil { // loads offs 1,2 of A
		t.Fatal(err)
	}
	f.BeginRequest(8, 8, false)
	if _, err := f.Translate(env, 8); err != nil { // loads B; A is now coldest
		t.Fatal(err)
	}
	if f.Len() != 3 || f.UsedBytes() != 88 {
		t.Fatalf("setup: %d entries, %d bytes; want 3, 88", f.Len(), f.UsedBytes())
	}

	// Miss on A's off 0 with a 5-entry prefetch. Evicting all of A frees
	// 48 B but also re-charges A's nodeBytes against the load, so the
	// one-shot cap let the loop continue into B. The fix drops the
	// prefetch when A is exhausted; B must survive untouched.
	f.BeginRequest(0, 7, false)
	if _, err := f.Translate(env, 0); err != nil {
		t.Fatal(err)
	}
	if f.byVTPN[1] == nil {
		t.Fatalf("prefetching load evicted from a second TP node (B gone): rule 2 violated")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGeometryThreadedAtConstruction: core.New hardcoded the 4 KB-page
// entries-per-TP count; with a non-4KB PageSize the cache computed wrong
// VTPN/offset geometry until the first Translate synced it from the Env.
// The device now pushes its real geometry in at construction.
func TestGeometryThreadedAtConstruction(t *testing.T) {
	if got := New(Config{CacheBytes: 4096}).EntriesPerTP(); got != 1024 {
		t.Fatalf("default geometry: %d entries/TP, want 1024", got)
	}
	if got := New(Config{CacheBytes: 4096, EntriesPerTP: 512}).EntriesPerTP(); got != 512 {
		t.Fatalf("explicit geometry: %d entries/TP, want 512", got)
	}

	tr := New(DefaultConfig(4096))
	cfg := ftl.Config{
		LogicalBytes:  4 << 20,
		PageSize:      2048,
		PagesPerBlock: 32,
		CacheBytes:    4096,
	}
	if _, err := ftl.NewDevice(cfg, tr); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.EntriesPerTP(), 2048/ftl.EntryBytesInFlash; got != want {
		t.Fatalf("device with 2 KB pages: cache thinks %d entries/TP, want %d", got, want)
	}
}
