package core

import (
	"math/rand"
	"testing"
)

// The allocation guards pin the tentpole property of the performance PR: the
// steady-state service path allocates nothing. They are skipped under the
// race detector and the ftlsan build (allocguard_*.go), whose instrumentation
// allocates behind every operation.

// TestCacheHitReadAllocates0 proves the hit path — lookup, two-level LRU
// touch, scheduler issue, metrics — performs zero heap allocations per read.
func TestCacheHitReadAllocates0(t *testing.T) {
	if !allocGuardsEnabled {
		t.Skip("allocation guards disabled under -race / -tags ftlsan")
	}
	d, _ := newTPFTLDevice(t, DefaultConfig(0), 1<<20)
	if _, err := d.Serve(wr(0, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Serve(rd(1, 5)); err != nil { // warm: entry now cached
		t.Fatal(err)
	}
	arrival := int64(2)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := d.Serve(rd(arrival, 5)); err != nil {
			t.Fatal(err)
		}
		arrival++
	})
	if allocs != 0 {
		t.Fatalf("cache-hit read allocates %v times per op, want 0", allocs)
	}
	m := d.Metrics()
	if m.Hits == 0 {
		t.Fatal("no hits recorded; the guard did not exercise the hit path")
	}
}

// TestMissEvictCycleAllocBound pins the other steady state: a read that
// misses, evicts from a full cache and installs from a recycled slab node.
// After warm-up the slabs and scratch buffers absorb everything the old code
// allocated per miss (entry/TP nodes, the byOff map, the dedup map, update
// slices); the remaining budget is a small pinned bound that covers device-
// side incidentals (GC bookkeeping) rather than per-miss cache garbage.
func TestMissEvictCycleAllocBound(t *testing.T) {
	if !allocGuardsEnabled {
		t.Skip("allocation guards disabled under -race / -tags ftlsan")
	}
	// Budget of ~64 entries over a 4096-page device: nearly every random
	// read misses and evicts.
	d, tr := newTPFTLDevice(t, DefaultConfig(0), 512)
	rng := rand.New(rand.NewSource(11))
	arrival := int64(0)
	serveRandom := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := d.Serve(rd(arrival, rng.Int63n(4096))); err != nil {
				t.Fatal(err)
			}
			arrival++
		}
	}
	serveRandom(2_000) // warm the slabs and scratch buffers
	const reads = 500
	allocs := testing.AllocsPerRun(1, func() { serveRandom(reads) })
	perOp := allocs / reads
	const bound = 0.5
	if perOp > bound {
		t.Fatalf("miss+evict cycle allocates %.3f times per op, want <= %v", perOp, bound)
	}
	m := d.Metrics()
	if m.Hits*2 > m.Lookups {
		t.Fatalf("hit ratio %.2f too high; the guard did not exercise the miss path", float64(m.Hits)/float64(m.Lookups))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSlabRecycleStress churns the cache through eviction/reinstall cycles
// far larger than the budget and audits after every round that (a) recycled
// nodes are fully reset (CheckInvariants walks both slab free lists and the
// live structure) and (b) the mapping still agrees with the on-flash truth,
// so no stale dirty bit or offset survived a recycle.
func TestSlabRecycleStress(t *testing.T) {
	d, tr := newTPFTLDevice(t, DefaultConfig(0), 768)
	rng := rand.New(rand.NewSource(23))
	arrival := int64(0)
	for round := 0; round < 40; round++ {
		// Mixed phase: random writes dirty entries, random reads force
		// clean-first evictions, sequential spans trigger prefetch installs.
		for i := 0; i < 150; i++ {
			p := rng.Int63n(2048)
			var err error
			switch rng.Intn(3) {
			case 0:
				_, err = d.Serve(wr(arrival, p))
			case 1:
				_, err = d.Serve(rd(arrival, p))
			default:
				_, err = d.Serve(rdSpan(arrival, p%2040, 1+rng.Int63n(8)))
			}
			if err != nil {
				t.Fatal(err)
			}
			arrival++
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if len(tr.eslab.free) == 0 && len(tr.tslab.free) == 0 {
		t.Fatal("stress never populated a slab free list; recycling untested")
	}
}

// TestSlabReusesNodes pins the recycling itself: after churn far beyond the
// cache budget, the slabs must have stopped growing — every new install is
// served from the free lists, not from fresh chunks.
func TestSlabReusesNodes(t *testing.T) {
	d, tr := newTPFTLDevice(t, DefaultConfig(0), 512)
	rng := rand.New(rand.NewSource(7))
	arrival := int64(0)
	churn := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := d.Serve(rd(arrival, rng.Int63n(4096))); err != nil {
				t.Fatal(err)
			}
			arrival++
		}
	}
	churn(1_000)
	// Total slab population = free + live; it only changes when a fresh
	// chunk is allocated, so steady-state churn must keep it constant.
	ePop := len(tr.eslab.free) + tr.entries
	tPop := len(tr.tslab.free) + tr.pages.Len()
	churn(5_000)
	if got := len(tr.eslab.free) + tr.entries; got != ePop {
		t.Fatalf("entry slab grew during steady-state churn: population %d -> %d", ePop, got)
	}
	if got := len(tr.tslab.free) + tr.pages.Len(); got != tPop {
		t.Fatalf("tp slab grew during steady-state churn: population %d -> %d", tPop, got)
	}
	t.Logf("steady state: %d entry nodes, %d tp nodes allocated in total", ePop, tPop)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
