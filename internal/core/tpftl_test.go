package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ftl"
	"repro/internal/ftl/dftl"
	"repro/internal/trace"
)

// testConfig: 16 MB logical (4096 pages → 4 translation pages), 32-page
// blocks, small cache.
func deviceConfig(cacheBytes int64) ftl.Config {
	return ftl.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.15,
		CacheBytes:    cacheBytes,
	}
}

func newTPFTLDevice(t *testing.T, cfg Config, devCacheBytes int64) (*ftl.Device, *FTL) {
	t.Helper()
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = devCacheBytes
	}
	tr := New(cfg)
	d, err := ftl.NewDevice(deviceConfig(devCacheBytes), tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	return d, tr
}

func wr(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpWrite}
}

func rd(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpRead}
}

func rdSpan(arrival, page, n int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: n * 4096, Op: trace.OpRead}
}

func TestVariantNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{}, "–"},
		{Config{RequestPrefetch: true}, "r"},
		{Config{SelectivePrefetch: true}, "s"},
		{Config{BatchUpdate: true}, "b"},
		{Config{CleanFirst: true}, "c"},
		{Config{BatchUpdate: true, CleanFirst: true}, "bc"},
		{Config{RequestPrefetch: true, SelectivePrefetch: true}, "rs"},
		{DefaultConfig(1024), "rsbc"},
	}
	for _, tc := range cases {
		if got := tc.cfg.VariantName(); got != tc.want {
			t.Errorf("VariantName(%+v) = %q, want %q", tc.cfg, got, tc.want)
		}
	}
}

func TestBasicHitMiss(t *testing.T) {
	d, tr := newTPFTLDevice(t, DefaultConfig(0), 1024)
	if _, err := d.Serve(rd(0, 50)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.Lookups != 1 || m.Hits != 0 {
		t.Fatalf("first access: lookups %d hits %d", m.Lookups, m.Hits)
	}
	if _, err := d.Serve(rd(1e9, 50)); err != nil {
		t.Fatal(err)
	}
	m = d.Metrics()
	if m.Hits != 1 {
		t.Fatalf("second access should hit, hits = %d", m.Hits)
	}
	if tr.Len() < 1 || tr.TPNodes() != 1 {
		t.Fatalf("cache: %d entries in %d nodes", tr.Len(), tr.TPNodes())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelStructure(t *testing.T) {
	d, tr := newTPFTLDevice(t, Config{}, 1024)
	arrival := int64(0)
	// Touch pages in two different translation pages (1024 entries each).
	for _, p := range []int64{0, 1, 2, 2000, 2001} {
		if _, err := d.Serve(rd(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	if tr.TPNodes() != 2 {
		t.Fatalf("TPNodes = %d, want 2", tr.TPNodes())
	}
	if tr.Len() != 5 {
		t.Fatalf("entries = %d, want 5", tr.Len())
	}
	s := tr.Snapshot()
	if s.Entries != 5 || s.TPNodes != 2 || s.DirtyEntries != 0 {
		t.Fatalf("snapshot %+v", s)
	}
	// 5 compressed entries... Config{} has CompressEntries=false → 8 B.
	if s.UsedBytes != 5*8+2*8 {
		t.Fatalf("UsedBytes = %d", s.UsedBytes)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionIncreasesCapacity(t *testing.T) {
	budget := int64(10 * 8) // 10 uncompressed entries, no node overhead spare
	plain := New(Config{CacheBytes: budget})
	comp := New(Config{CacheBytes: budget, CompressEntries: true})
	if plain.entryBytes != 8 || comp.entryBytes != 6 {
		t.Fatalf("entry sizes %d/%d", plain.entryBytes, comp.entryBytes)
	}
}

func TestRequestLevelPrefetch(t *testing.T) {
	d, tr := newTPFTLDevice(t, Config{RequestPrefetch: true}, 4096)
	// A 6-page read: one miss, 5 prefetched entries, all within one TP.
	if _, err := d.Serve(rdSpan(0, 10, 6)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.Lookups != 6 {
		t.Fatalf("lookups = %d, want 6", m.Lookups)
	}
	if m.Hits != 5 {
		t.Fatalf("hits = %d, want 5 (pages 11-15 prefetched)", m.Hits)
	}
	if m.TransReadsAT != 1 {
		t.Fatalf("TransReadsAT = %d, want 1 (single page read)", m.TransReadsAT)
	}
	if m.PrefetchedLoaded != 5 {
		t.Fatalf("PrefetchedLoaded = %d, want 5", m.PrefetchedLoaded)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Without the technique, every page of a span misses.
	d2, _ := newTPFTLDevice(t, Config{}, 4096)
	if _, err := d2.Serve(rdSpan(0, 10, 6)); err != nil {
		t.Fatal(err)
	}
	if m2 := d2.Metrics(); m2.Hits != 0 || m2.TransReadsAT != 6 {
		t.Fatalf("bare variant: hits %d transreads %d, want 0/6", m2.Hits, m2.TransReadsAT)
	}
}

func TestRequestPrefetchStopsAtTPBoundary(t *testing.T) {
	d, _ := newTPFTLDevice(t, Config{RequestPrefetch: true}, 8192)
	// Pages 1020..1027 span translation pages 0 (1020-1023) and 1
	// (1024-1027): rule 1 forces one read per translation page.
	if _, err := d.Serve(rdSpan(0, 1020, 8)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.TransReadsAT != 2 {
		t.Fatalf("TransReadsAT = %d, want 2 (one per translation page)", m.TransReadsAT)
	}
	if m.Hits != 6 {
		t.Fatalf("hits = %d, want 6", m.Hits)
	}
}

func TestSelectivePrefetchActivation(t *testing.T) {
	tr := New(Config{SelectivePrefetch: true, CacheBytes: 1 << 20})
	if tr.SelectiveActive() {
		t.Fatal("selective prefetching must start off")
	}
	// Counter −3 → activate.
	tr.stepCounter(-1)
	tr.stepCounter(-1)
	if tr.SelectiveActive() {
		t.Fatal("activated too early")
	}
	tr.stepCounter(-1)
	if !tr.SelectiveActive() {
		t.Fatal("not activated at −threshold")
	}
	if tr.counter != 0 {
		t.Fatal("counter not reset")
	}
	// Counter +3 → deactivate.
	tr.stepCounter(+1)
	tr.stepCounter(+1)
	tr.stepCounter(+1)
	if tr.SelectiveActive() {
		t.Fatal("not deactivated at +threshold")
	}
}

func TestSelectivePrefetchLength(t *testing.T) {
	// Force selective mode on, then check that a miss with two cached
	// consecutive predecessors loads two successors.
	d, tr := newTPFTLDevice(t, Config{SelectivePrefetch: true}, 4096)
	arrival := int64(0)
	for _, p := range []int64{334, 335} { // predecessors of 336
		if _, err := d.Serve(rd(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	tr.selectiveOn = true
	if _, err := d.Serve(rd(arrival, 336)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.PrefetchedLoaded != 2 {
		t.Fatalf("PrefetchedLoaded = %d, want 2 (337, 338)", m.PrefetchedLoaded)
	}
	// 337 and 338 must now hit.
	arrival += int64(time.Millisecond)
	if _, err := d.Serve(rd(arrival, 337)); err != nil {
		t.Fatal(err)
	}
	arrival += int64(time.Millisecond)
	if _, err := d.Serve(rd(arrival, 338)); err != nil {
		t.Fatal(err)
	}
	if m := d.Metrics(); m.Hits != 2 {
		t.Fatalf("hits = %d, want 2", m.Hits)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchUpdateReplacement(t *testing.T) {
	// Budget: 8 compressed entries + 1 node = 56 B. Dirty several entries
	// of one TP, then force an eviction: with batch update one translation
	// page write cleans them all.
	cfg := Config{BatchUpdate: true, CompressEntries: true, CacheBytes: 6*8 + 8}
	d, tr := newTPFTLDevice(t, cfg, 1024)
	arrival := int64(0)
	for i := int64(0); i < 14; i++ { // all in vtpn 0; 8 entries fit, then evictions
		if _, err := d.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	m := d.Metrics()
	if m.DirtyReplaced == 0 {
		t.Fatal("expected at least one dirty replacement")
	}
	if m.BatchWritebacks == 0 || m.BatchCleaned == 0 {
		t.Fatalf("batch update did not clean survivors: %+v", m)
	}
	// After the batches, evicting the remaining entries costs at most one
	// more translation-page write (all residual dirty entries flush
	// together); without batching it would cost one write per dirty entry.
	writesAfterBatch := m.TransWritesAT
	dirtyLeft := int64(tr.Snapshot().DirtyEntries)
	for i := int64(2000); i < 2012; i++ {
		if _, err := d.Serve(rd(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	m = d.Metrics()
	if extra := m.TransWritesAT - writesAfterBatch; extra > 1 {
		t.Fatalf("flushing %d dirty survivors took %d writes, want ≤1 (batched)", dirtyLeft, extra)
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestWithoutBatchUpdateEachDirtyEvictionWrites(t *testing.T) {
	run := func(batch bool) int64 {
		cfg := Config{BatchUpdate: batch, CompressEntries: true, CacheBytes: 6*8 + 8}
		d, _ := newTPFTLDevice(t, cfg, 1024)
		arrival := int64(0)
		for i := int64(0); i < 40; i++ {
			if _, err := d.Serve(wr(arrival, i)); err != nil {
				t.Fatal(err)
			}
			arrival += int64(time.Millisecond)
		}
		return d.Metrics().TransWritesAT
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("batch update writes %d, without %d — expected fewer with batching", with, without)
	}
}

func TestCleanFirstReplacement(t *testing.T) {
	// Cache: one TP node with a mix of clean and dirty entries; the first
	// eviction must pick a clean one even if dirty entries are colder.
	cfg := Config{CleanFirst: true, CompressEntries: true, CacheBytes: 4*6 + 8}
	d, tr := newTPFTLDevice(t, cfg, 1024)
	arrival := int64(0)
	// Two dirty (written) then two clean (read) entries — dirty are LRU.
	for _, p := range []int64{0, 1} {
		if _, err := d.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	for _, p := range []int64{2, 3} {
		if _, err := d.Serve(rd(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	// Next miss evicts: victim must be clean (page 2, the LRU clean).
	if _, err := d.Serve(rd(arrival, 4)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.Replacements != 1 {
		t.Fatalf("replacements = %d, want 1", m.Replacements)
	}
	if m.DirtyReplaced != 0 {
		t.Fatal("clean-first picked a dirty victim")
	}
	if m.TransWritesAT != 0 {
		t.Fatal("clean eviction wrote flash")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUWithoutCleanFirstEvictsDirty(t *testing.T) {
	cfg := Config{CompressEntries: true, CacheBytes: 4*6 + 8}
	d, _ := newTPFTLDevice(t, cfg, 1024)
	arrival := int64(0)
	for _, p := range []int64{0, 1} {
		if _, err := d.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	for _, p := range []int64{2, 3} {
		if _, err := d.Serve(rd(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	if _, err := d.Serve(rd(arrival, 4)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.DirtyReplaced != 1 {
		t.Fatalf("without clean-first the LRU (dirty) entry must go; DirtyReplaced = %d", m.DirtyReplaced)
	}
}

func TestEvictionConfinedToColdestTPNode(t *testing.T) {
	// Rule 2: a prefetch that would evict more entries than the coldest TP
	// node holds is truncated.
	cfg := Config{RequestPrefetch: true, CompressEntries: true, CacheBytes: 8*6 + 2*8}
	d, tr := newTPFTLDevice(t, cfg, 1024)
	arrival := int64(0)
	// Fill: 2 entries in vtpn 1 (cold), 6 in vtpn 0 (hot).
	for _, p := range []int64{2000, 2001, 0, 1, 2, 3, 4, 5} {
		if _, err := d.Serve(rd(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	if tr.Len() != 8 || tr.TPNodes() != 2 {
		t.Fatalf("setup: %d entries, %d nodes", tr.Len(), tr.TPNodes())
	}
	// One address translation of an 8-page request in vtpn 2: it wants 8
	// slots, but rule 2 confines replacement to the coldest TP node
	// (vtpn 1, two entries), so the prefetch is capped and the hot node
	// (vtpn 0) survives this translation untouched.
	tr.BeginRequest(2048+100, 2048+107, false)
	if _, err := tr.Translate(d, 2048+100); err != nil {
		t.Fatal(err)
	}
	s := tr.Snapshot()
	if _, stillThere := s.DirtyPerPage[ftl.VTPN(0)]; !stillThere {
		t.Fatal("hot TP node evicted despite rule 2")
	}
	if _, gone := s.DirtyPerPage[ftl.VTPN(1)]; gone {
		t.Fatal("coldest TP node should have been consumed by the eviction")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGCBatchFlushesCachedDirtyEntries(t *testing.T) {
	cfg := DefaultConfig(0)
	d, tr := newTPFTLDevice(t, cfg, 2048)
	rng := rand.New(rand.NewSource(4))
	arrival := int64(0)
	for i := 0; i < 15000; i++ {
		page := int64(rng.Intn(1024)) // hot first translation page
		arrival += int64(30 * time.Microsecond)
		if _, err := d.Serve(wr(arrival, page)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	m := d.Metrics()
	if m.GCDataCollections == 0 {
		t.Fatal("no GC happened")
	}
	if m.GCMapUpdates == 0 {
		t.Fatal("no GC mapping updates")
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHotnessAvgOrdering(t *testing.T) {
	cfg := Config{Hotness: HotnessAvg, CompressEntries: true, CacheBytes: 1 << 16}
	d, tr := newTPFTLDevice(t, cfg, 1<<16)
	arrival := int64(0)
	// Build three TP nodes with different access frequencies.
	for i := 0; i < 30; i++ {
		var p int64
		switch {
		case i%3 == 0:
			p = int64(i % 5) // vtpn 0, hottest
		case i%3 == 1:
			p = 1024 + int64(i%5) // vtpn 1
		default:
			p = 2048 // vtpn 2, one entry
		}
		if _, err := d.Serve(rd(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err) // includes the avg-ordering check
	}
}

func TestTPFTLOutperformsDFTLOnWrites(t *testing.T) {
	// Same cache budget, same random-write workload: TPFTL must issue
	// fewer translation page writes (the paper's headline result).
	const cache = 512
	mkReqs := func() []trace.Request {
		rng := rand.New(rand.NewSource(11))
		reqs := make([]trace.Request, 8000)
		arrival := int64(0)
		for i := range reqs {
			arrival += int64(100 * time.Microsecond)
			reqs[i] = wr(arrival, int64(rng.Intn(4096)))
		}
		return reqs
	}

	dT, trT := newTPFTLDevice(t, DefaultConfig(cache), cache)
	if _, err := dT.Run(mkReqs()); err != nil {
		t.Fatal(err)
	}
	trDF := dftl.New(dftl.Config{CacheBytes: cache})
	dD, err := ftl.NewDevice(deviceConfig(cache), trDF)
	if err != nil {
		t.Fatal(err)
	}
	if err := dD.Format(); err != nil {
		t.Fatal(err)
	}
	if _, err := dD.Run(mkReqs()); err != nil {
		t.Fatal(err)
	}

	mT, mD := dT.Metrics(), dD.Metrics()
	if mT.TransWrites() >= mD.TransWrites() {
		t.Fatalf("TPFTL trans writes %d not below DFTL %d", mT.TransWrites(), mD.TransWrites())
	}
	if mT.Prd() >= mD.Prd() {
		t.Fatalf("TPFTL Prd %.3f not below DFTL %.3f", mT.Prd(), mD.Prd())
	}
	if err := dT.CheckConsistency(trT.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

// TestRandomOpsConsistency drives TPFTL variants through random mixed
// workloads with full invariant checking.
func TestRandomOpsConsistency(t *testing.T) {
	variants := []Config{
		{},
		{BatchUpdate: true},
		{CleanFirst: true},
		{RequestPrefetch: true},
		{SelectivePrefetch: true},
		DefaultConfig(0),
		{Hotness: HotnessAvg, BatchUpdate: true, CleanFirst: true},
	}
	for vi, cfg := range variants {
		cfg.CompressEntries = vi%2 == 0 // exercise both entry sizes
		d, tr := newTPFTLDevice(t, cfg, 768)
		rng := rand.New(rand.NewSource(int64(100 + vi)))
		arrival := int64(0)
		for batch := 0; batch < 12; batch++ {
			for i := 0; i < 300; i++ {
				page := int64(rng.Intn(4096))
				n := int64(1 + rng.Intn(6))
				if page+n > 4096 {
					n = 4096 - page
				}
				arrival += int64(rng.Intn(300_000))
				req := trace.Request{
					Arrival: arrival, Offset: page * 4096, Length: n * 4096,
					Op: opOf(rng.Intn(2) == 0),
				}
				if _, err := d.Serve(req); err != nil {
					t.Fatalf("variant %q batch %d op %d: %v", cfg.VariantName(), batch, i, err)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("variant %q batch %d: %v", cfg.VariantName(), batch, err)
			}
			if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
				t.Fatalf("variant %q batch %d: %v", cfg.VariantName(), batch, err)
			}
		}
	}
}

func TestSnapshotAndDirtyCached(t *testing.T) {
	d, tr := newTPFTLDevice(t, DefaultConfig(0), 4096)
	arrival := int64(0)
	for i := int64(0); i < 5; i++ {
		if _, err := d.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	s := tr.Snapshot()
	if s.DirtyEntries != 5 {
		t.Fatalf("dirty = %d, want 5", s.DirtyEntries)
	}
	dc := tr.DirtyCached()
	if len(dc) != 5 {
		t.Fatalf("DirtyCached len = %d", len(dc))
	}
	for lpn, ppn := range dc {
		if d.Truth(lpn) != ppn {
			t.Fatalf("dirty entry %d holds %d, truth %d", lpn, ppn, d.Truth(lpn))
		}
	}
}

func TestUpdateWithoutTranslate(t *testing.T) {
	// A bare Update (not preceded by Translate) must still install a dirty
	// entry correctly.
	d, tr := newTPFTLDevice(t, DefaultConfig(0), 1024)
	if err := tr.Update(d, 7, d.Truth(7)); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("entries = %d", tr.Len())
	}
	if tr.Snapshot().DirtyEntries != 1 {
		t.Fatal("entry not dirty")
	}
}

func TestTinyBudgetStillWorks(t *testing.T) {
	// A budget below one entry is clamped up by New.
	d, tr := newTPFTLDevice(t, Config{CacheBytes: 1}, 1024)
	arrival := int64(0)
	for i := int64(0); i < 50; i++ {
		if _, err := d.Serve(wr(arrival, i%8)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
