//go:build ftlsan

package core

import (
	"strings"
	"testing"
)

// TestSanitizerDetectsAccountingCorruption injects exactly the bug class the
// fault-injection PR flushed out — cache-accounting counters skewed outside
// the accounting helpers — and asserts the very next host operation fails
// with an ftlsan-attributed error instead of the run silently continuing on
// a wrong cache budget.
func TestSanitizerDetectsAccountingCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(*FTL)
	}{
		// The PR-1 double-charge shape: used drifts from what the
		// structures it summarizes actually cost.
		{"used", func(f *FTL) { f.used += f.entryBytes }},
		// The entry population counter drifts from the lists.
		{"entries", func(f *FTL) { f.entries++ }},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			d, tr := newTPFTLDevice(t, Config{}, 4<<10)
			for i := int64(0); i < 32; i++ {
				if _, err := d.Serve(wr(i*1000, i%19)); err != nil {
					t.Fatal(err)
				}
			}
			c.corrupt(tr)
			_, err := d.Serve(wr(1_000_000, 3))
			if err == nil {
				t.Fatalf("sanitizer missed injected %s corruption", c.name)
			}
			if !strings.Contains(err.Error(), "ftlsan[") {
				t.Fatalf("error not attributed to the sanitizer: %v", err)
			}
		})
	}
}
