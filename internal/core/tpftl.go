// Package core implements TPFTL, the translation page-level FTL that is the
// primary contribution of the paper (§4).
//
// TPFTL organizes the mapping cache as two-level LRU lists: a page-level LRU
// of TP nodes — one per translation page with at least one cached entry —
// each holding an entry-level LRU list of its cached entries. Entries are
// stored compressed (offset within the translation page instead of a full
// LPN: 6 B instead of 8 B), so the same budget caches up to a third more
// entries (§4.1, Fig. 10).
//
// On top of this structure TPFTL layers four techniques, all independently
// switchable to reproduce the paper's §5.2(5) ablation:
//
//   - request-level prefetching (Config.RequestPrefetch, 'r'): a miss on the
//     first page of a multi-page request loads every entry the request needs
//     from one translation-page read (§4.3);
//   - selective prefetching (Config.SelectivePrefetch, 's'): a counter of
//     TP-node count changes detects sequential phases; during one, a miss
//     also loads as many successors as the requested entry has cached
//     consecutive predecessors (§4.3);
//   - batch-update replacement (Config.BatchUpdate, 'b'): evicting a dirty
//     entry writes back all dirty entries of its TP node in the same
//     translation-page update; the survivors stay cached, now clean (§4.4);
//   - clean-first replacement (Config.CleanFirst, 'c'): the victim is the
//     LRU clean entry of the coldest TP node, falling back to the LRU dirty
//     entry (§4.4).
//
// Prefetching and replacement are integrated by the two §4.5 rules: a
// prefetch never crosses its translation-page boundary, and when the load
// forces evictions, the prefetch length is capped at the entry count of the
// coldest TP node so replacement stays confined to one cached page.
package core

import (
	"fmt"
	"sort"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/lru"
)

// Hotness selects the page-level ordering policy.
type Hotness int

const (
	// HotnessLRU moves a TP node to the MRU position whenever one of its
	// entries is touched — the conventional approximation.
	HotnessLRU Hotness = iota
	// HotnessAvg orders TP nodes by the exact average access timestamp of
	// their entries, the paper's §4.2 definition ("page-level hotness is
	// the average hotness of all the entry nodes").
	HotnessAvg
)

// Config parameterizes TPFTL. The zero value (all techniques off) is the
// paper's "–" ablation variant: bare two-level lists.
type Config struct {
	// CacheBytes is the mapping-cache budget.
	CacheBytes int64

	// RequestPrefetch enables request-level prefetching ('r').
	RequestPrefetch bool
	// SelectivePrefetch enables selective prefetching ('s').
	SelectivePrefetch bool
	// BatchUpdate enables batch-update replacement ('b').
	BatchUpdate bool
	// CleanFirst enables clean-first replacement ('c').
	CleanFirst bool

	// CompressEntries stores entries as offset+PPN (6 B) instead of
	// LPN+PPN (8 B). Default true (set by DefaultConfig); the Fig. 10
	// space-utilization experiment turns it off for comparison.
	CompressEntries bool

	// SelectiveThreshold is the TP-node-count change that toggles
	// selective prefetching (default 3, the paper's empirical choice).
	SelectiveThreshold int

	// TPNodeBytes is the RAM overhead charged per TP node (default 8:
	// a VTPN plus list bookkeeping).
	TPNodeBytes int

	// Hotness selects the page-level ordering policy (default HotnessLRU).
	Hotness Hotness

	// EntriesPerTP is the number of mapping entries per on-flash
	// translation page (device PageSize / ftl.EntryBytesInFlash). Zero
	// selects the 4 KB-page default; ftl.NewDevice overrides either with
	// the real device geometry via SetGeometry.
	EntriesPerTP int
}

// DefaultConfig returns the complete TPFTL ("rsbc") for the given budget.
func DefaultConfig(cacheBytes int64) Config {
	return Config{
		CacheBytes:        cacheBytes,
		RequestPrefetch:   true,
		SelectivePrefetch: true,
		BatchUpdate:       true,
		CleanFirst:        true,
		CompressEntries:   true,
	}
}

// VariantName returns the paper's ablation monogram for the configuration:
// "–" for the bare variant, subsets of "rsbc" otherwise.
func (c Config) VariantName() string {
	s := ""
	if c.RequestPrefetch {
		s += "r"
	}
	if c.SelectivePrefetch {
		s += "s"
	}
	if c.BatchUpdate {
		s += "b"
	}
	if c.CleanFirst {
		s += "c"
	}
	if s == "" {
		return "–"
	}
	return s
}

// entryNode is one cached mapping entry (§4.1's entry node).
type entryNode struct {
	node  lru.Node // links within its TP node's entry-level list
	owner *tpNode
	off   int32 // offset within the translation page (the compressed LPN)
	ppn   flash.PPN
	dirty bool
	stamp uint64 // last-access timestamp (HotnessAvg ordering)
}

// tpNode clusters the cached entries of one translation page (§4.1).
type tpNode struct {
	node     lru.Node // links within the page-level list
	vtpn     ftl.VTPN
	entries  lru.List // entry-level LRU, MRU..LRU
	byOff    map[int32]*entryNode
	dirty    int    // dirty entry count
	stampSum uint64 // Σ entry stamps; avg = stampSum/len (HotnessAvg)
}

func (tp *tpNode) avgStamp() float64 {
	if tp.entries.Len() == 0 {
		return 0
	}
	return float64(tp.stampSum) / float64(tp.entries.Len())
}

// FTL is the TPFTL translator. Create with New.
type FTL struct {
	cfg        Config
	entryBytes int64
	nodeBytes  int64
	threshold  int

	pages  lru.List // page-level list, hottest..coldest
	byVTPN map[ftl.VTPN]*tpNode

	used    int64 // bytes charged against cfg.CacheBytes
	entries int

	// Selective-prefetching state (§4.3): counter of TP-node count
	// changes; selective prefetching toggles when |counter| reaches the
	// threshold.
	counter     int
	selectiveOn bool

	stamp uint64 // global access clock for HotnessAvg

	// Request context from BeginRequest.
	reqFirst, reqLast ftl.LPN

	// §4.5 rule-2 bookkeeping: while a prefetch-carrying load is evicting,
	// every victim must come from one TP node. loadPrefetchPending is set
	// around evictOne calls made with a non-empty prefetch; loadVictim is
	// that load's first victim node. A second distinct victim node records
	// a sticky violation surfaced by CheckInvariants.
	loadPrefetchPending bool
	loadVictim          ftl.VTPN
	rule2Err            error

	ePerTP int
}

var _ ftl.Translator = (*FTL)(nil)
var _ ftl.Inspector = (*FTL)(nil)
var _ ftl.GeometryAware = (*FTL)(nil)

// New returns a TPFTL instance.
func New(cfg Config) *FTL {
	if cfg.SelectiveThreshold == 0 {
		cfg.SelectiveThreshold = 3
	}
	if cfg.TPNodeBytes == 0 {
		cfg.TPNodeBytes = 8
	}
	entryBytes := int64(ftl.EntryBytesRAM) // 8 B uncompressed
	if cfg.CompressEntries {
		entryBytes = 6 // 10-bit offset + 4 B PPN + flags, rounded up (§4.1)
	}
	if min := entryBytes*4 + int64(cfg.TPNodeBytes); cfg.CacheBytes < min {
		cfg.CacheBytes = min
	}
	ePerTP := cfg.EntriesPerTP
	if ePerTP <= 0 {
		ePerTP = ftl.DefaultEntriesPerTP
	}
	return &FTL{
		cfg:        cfg,
		entryBytes: entryBytes,
		nodeBytes:  int64(cfg.TPNodeBytes),
		threshold:  cfg.SelectiveThreshold,
		byVTPN:     make(map[ftl.VTPN]*tpNode),
		ePerTP:     ePerTP,
	}
}

// SetGeometry implements ftl.GeometryAware: the device announces its real
// entries-per-translation-page count at construction, so offset/VTPN
// arithmetic (DirtyCached, Snapshot) is correct even before the first
// Translate syncs from the Env — previously a non-4KB PageSize left the
// hardcoded 4 KB default in place until then.
func (f *FTL) SetGeometry(entriesPerTP int) {
	if entriesPerTP > 0 {
		f.ePerTP = entriesPerTP
	}
}

// EntriesPerTP returns the translation-page geometry the cache is using.
func (f *FTL) EntriesPerTP() int { return f.ePerTP }

// Name implements ftl.Translator.
func (f *FTL) Name() string { return "TPFTL" }

// Variant returns the ablation monogram of this instance.
func (f *FTL) Variant() string { return f.cfg.VariantName() }

// Len returns the number of cached entries.
func (f *FTL) Len() int { return f.entries }

// TPNodes returns the number of cached TP nodes.
func (f *FTL) TPNodes() int { return f.pages.Len() }

// UsedBytes returns the charged cache usage.
func (f *FTL) UsedBytes() int64 { return f.used }

// SelectiveActive reports whether selective prefetching is currently on.
func (f *FTL) SelectiveActive() bool { return f.selectiveOn }

// BeginRequest implements ftl.Translator.
func (f *FTL) BeginRequest(first, last ftl.LPN, write bool) {
	f.reqFirst, f.reqLast = first, last
}

// Translate implements ftl.Translator.
func (f *FTL) Translate(env ftl.Env, lpn ftl.LPN) (flash.PPN, error) {
	f.ePerTP = env.EntriesPerTP()
	v := ftl.VTPNOf(lpn, f.ePerTP)
	off := int32(ftl.OffOf(lpn, f.ePerTP))

	if tp := f.byVTPN[v]; tp != nil {
		if e := tp.byOff[off]; e != nil {
			env.NoteLookup(true)
			f.touch(tp, e)
			return e.ppn, nil
		}
	}
	env.NoteLookup(false)
	return f.load(env, lpn, v, off)
}

// load handles a cache miss: it decides the prefetch set, makes room, reads
// the translation page once and installs the entries.
func (f *FTL) load(env ftl.Env, lpn ftl.LPN, v ftl.VTPN, off int32) (flash.PPN, error) {
	tp := f.byVTPN[v]

	// Prefetch decision (§4.3). Offsets are relative to lpn's translation
	// page and exclude already-cached slots; rule 1 (§4.5) bounds
	// everything to this page, and the device's logical size truncates
	// the last (partial) translation page.
	pageEnd := int32(f.ePerTP)
	if lim := env.NumLPNs() - int64(v)*int64(f.ePerTP); lim < int64(pageEnd) {
		pageEnd = int32(lim)
	}
	extras := f.prefetchSet(tp, lpn, off, pageEnd)

	need := func(nExtras int) int64 {
		c := int64(1+nExtras) * f.entryBytes
		if f.byVTPN[v] == nil {
			c += f.nodeBytes // node may have been dropped by an eviction
		}
		return c
	}

	// Make room before reading the translation page: evictions can write
	// back dirty entries and trigger GC, which may move the very data
	// pages being looked up. Reading only after all evictions guarantees
	// fresh values (ReadTP cannot trigger GC).
	//
	// Rule 2 (§4.5): if loading forces evictions, shrink the prefetch
	// until the whole load fits into the current free space plus what
	// evicting the coldest TP node entirely can yield, confining
	// replacement to one cached page. The cap is recomputed before every
	// eviction: the loop can exhaust its first victim node and surface a
	// differently-sized coldest node (notably when the demanded entry's
	// own node was the victim, whose drop raises the load's cost by
	// nodeBytes), and a one-shot computation would let replacement quietly
	// spill into a second page. When continuing would require a second
	// victim node, the prefetch is dropped instead.
	f.loadVictim = -1
	defer func() { f.loadPrefetchPending = false }()
	victimNode := ftl.VTPN(-1)
	for f.used+need(len(extras)) > f.cfg.CacheBytes {
		if len(extras) > 0 {
			cold := ftl.VTPN(-1)
			freeable := int64(0)
			if coldest := f.pages.Back(); coldest != nil {
				tpc := coldest.Value.(*tpNode)
				cold = tpc.vtpn
				freeable = int64(tpc.entries.Len())*f.entryBytes + f.nodeBytes
			}
			if victimNode >= 0 && cold != victimNode {
				extras = extras[:0]
			} else {
				free := f.cfg.CacheBytes - f.used
				for len(extras) > 0 && need(len(extras)) > free+freeable {
					extras = extras[:len(extras)-1]
				}
				if len(extras) > 0 {
					victimNode = cold
				}
			}
			if f.used+need(len(extras)) <= f.cfg.CacheBytes {
				break // the shrink alone made the load fit
			}
		}
		f.loadPrefetchPending = len(extras) > 0
		evicted, err := f.evictOne(env)
		if err != nil {
			return flash.InvalidPPN, err
		}
		if !evicted {
			// Cache empty yet still no room: shrink the prefetch.
			if len(extras) > 0 {
				extras = extras[:0]
				continue
			}
			return flash.InvalidPPN, fmt.Errorf("tpftl: budget %d cannot hold one entry", f.cfg.CacheBytes)
		}
	}
	f.loadPrefetchPending = false

	vals, err := env.ReadTP(v)
	if err != nil {
		return flash.InvalidPPN, err
	}

	// The eviction pass may have removed lpn's TP node (or created the
	// conditions for it); re-resolve and install.
	tp = f.byVTPN[v]
	if tp == nil {
		tp = f.newTPNode(v)
	}
	// Install prefetched entries first, the demanded entry last, so the
	// demanded one ends up MRU.
	loaded := 0
	for _, xo := range extras {
		if tp.byOff[xo] != nil {
			continue // installed by a nested path meanwhile
		}
		f.addEntry(tp, xo, vals[xo], false)
		loaded++
	}
	if loaded > 0 {
		if np, ok := env.(interface{ NotePrefetch(int) }); ok {
			np.NotePrefetch(loaded)
		}
	}
	ppn := vals[off]
	if e := tp.byOff[off]; e != nil {
		// Extremely defensive: demanded entry appeared during eviction.
		f.touch(tp, e)
		return e.ppn, nil
	}
	e := f.addEntry(tp, off, ppn, false)
	f.touch(tp, e)
	return ppn, nil
}

// prefetchSet returns the extra offsets (same translation page, uncached,
// ascending, excluding off) to load together with the demanded entry.
func (f *FTL) prefetchSet(tp *tpNode, lpn ftl.LPN, off, pageEnd int32) []int32 {
	var extras []int32
	seen := map[int32]bool{}

	// Request-level prefetching ('r'): all pages of the in-flight request
	// from lpn forward, within this translation page (rule 1).
	if f.cfg.RequestPrefetch && f.reqLast > lpn {
		n := int32(f.reqLast - lpn)
		for i := int32(1); i <= n && off+i < pageEnd; i++ {
			xo := off + i
			if tp != nil && tp.byOff[xo] != nil {
				continue
			}
			if !seen[xo] {
				seen[xo] = true
				extras = append(extras, xo)
			}
		}
	}

	// Selective prefetching ('s'): when active, prefetch as many
	// successors as there are cached consecutive predecessors (§4.3).
	if f.cfg.SelectivePrefetch && f.selectiveOn && tp != nil {
		preds := int32(0)
		for o := off - 1; o >= 0; o-- {
			if tp.byOff[o] == nil {
				break
			}
			preds++
		}
		for i := int32(1); i <= preds && off+i < pageEnd; i++ {
			xo := off + i
			if tp.byOff[xo] != nil {
				continue
			}
			if !seen[xo] {
				seen[xo] = true
				extras = append(extras, xo)
			}
		}
	}
	return extras
}

// touch records an access to e and restores the page-level ordering.
func (f *FTL) touch(tp *tpNode, e *entryNode) {
	tp.entries.MoveToFront(&e.node)
	f.stamp++
	tp.stampSum += f.stamp - e.stamp
	e.stamp = f.stamp
	f.reposition(tp)
}

// reposition restores tp's position in the page-level list after its
// hotness changed.
func (f *FTL) reposition(tp *tpNode) {
	if f.cfg.Hotness == HotnessLRU {
		f.pages.MoveToFront(&tp.node)
		return
	}
	// HotnessAvg: bubble toward the front while hotter than predecessors,
	// toward the back while colder than successors.
	avg := tp.avgStamp()
	for prev := tp.node.Prev(); prev != nil && prev.Value.(*tpNode).avgStamp() < avg; prev = tp.node.Prev() {
		f.pages.Remove(&tp.node)
		f.pages.InsertBefore(&tp.node, prev)
	}
	for next := tp.node.Next(); next != nil && next.Value.(*tpNode).avgStamp() > avg; next = tp.node.Next() {
		f.pages.Remove(&tp.node)
		f.pages.InsertAfter(&tp.node, next)
	}
}

// newTPNode creates and links a TP node, charging its overhead and stepping
// the selective-prefetch counter (§4.3: +1 on load).
func (f *FTL) newTPNode(v ftl.VTPN) *tpNode {
	tp := &tpNode{vtpn: v, byOff: make(map[int32]*entryNode)}
	tp.node.Value = tp
	f.byVTPN[v] = tp
	f.pages.PushFront(&tp.node)
	f.used += f.nodeBytes
	f.stepCounter(+1)
	return tp
}

// dropTPNode unlinks an empty TP node (§4.3: −1 on eviction).
func (f *FTL) dropTPNode(tp *tpNode) {
	f.pages.Remove(&tp.node)
	delete(f.byVTPN, tp.vtpn)
	f.used -= f.nodeBytes
	f.stepCounter(-1)
}

// stepCounter implements the selective-prefetching activation rule: when
// the counter reaches +threshold, sequential accesses ended — deactivate;
// at −threshold they are happening — activate; either way reset (§4.3).
func (f *FTL) stepCounter(delta int) {
	f.counter += delta
	switch {
	case f.counter >= f.threshold:
		f.selectiveOn = false
		f.counter = 0
	case f.counter <= -f.threshold:
		f.selectiveOn = true
		f.counter = 0
	}
}

// addEntry installs a new entry at the MRU position of tp.
func (f *FTL) addEntry(tp *tpNode, off int32, ppn flash.PPN, dirty bool) *entryNode {
	e := &entryNode{owner: tp, off: off, ppn: ppn, dirty: dirty}
	e.node.Value = e
	tp.byOff[off] = e
	tp.entries.PushFront(&e.node)
	if dirty {
		tp.dirty++
	}
	f.stamp++
	e.stamp = f.stamp
	tp.stampSum += f.stamp
	f.entries++
	f.used += f.entryBytes
	f.reposition(tp)
	return e
}

// removeEntry unlinks e; the TP node is dropped when it empties.
func (f *FTL) removeEntry(e *entryNode) {
	tp := e.owner
	tp.entries.Remove(&e.node)
	delete(tp.byOff, e.off)
	tp.stampSum -= e.stamp
	if e.dirty {
		tp.dirty--
	}
	f.entries--
	f.used -= f.entryBytes
	if tp.entries.Len() == 0 {
		f.dropTPNode(tp)
		return
	}
	// Removing an entry changes the node's average hotness; restore the
	// ordering without treating the removal as an access (under LRU
	// ordering an eviction must not promote the node).
	if f.cfg.Hotness == HotnessAvg {
		f.reposition(tp)
	}
}

// evictOne evicts one victim per the replacement policy (§4.4) and reports
// whether an eviction happened.
func (f *FTL) evictOne(env ftl.Env) (bool, error) {
	coldN := f.pages.Back()
	if coldN == nil {
		return false, nil
	}
	tp := coldN.Value.(*tpNode)

	// §4.5 rule-2 assertion: a load that still carries a prefetch must
	// confine its evictions to one TP node.
	if f.loadPrefetchPending {
		if f.loadVictim < 0 {
			f.loadVictim = tp.vtpn
		} else if tp.vtpn != f.loadVictim && f.rule2Err == nil {
			f.rule2Err = fmt.Errorf("tpftl: §4.5 rule 2 violated: one prefetching load evicted from tp nodes %d and %d", f.loadVictim, tp.vtpn)
		}
	}

	var victim *entryNode
	if f.cfg.CleanFirst {
		// LRU clean entry of the coldest TP node; LRU dirty as fallback.
		for n := tp.entries.Back(); n != nil; n = n.Prev() {
			if e := n.Value.(*entryNode); !e.dirty {
				victim = e
				break
			}
		}
	}
	if victim == nil {
		victim = tp.entries.Back().Value.(*entryNode)
	}

	env.NoteReplacement(victim.dirty)
	if !victim.dirty {
		f.removeEntry(victim)
		return true, nil
	}

	// Dirty victim: compose the writeback. With batch update every dirty
	// entry of the TP node joins the same translation-page update and
	// stays cached clean (§4.4); without it only the victim is written.
	v := tp.vtpn
	var updates []ftl.EntryUpdate
	cleaned := 0
	if f.cfg.BatchUpdate {
		for n := tp.entries.Front(); n != nil; n = n.Next() {
			e := n.Value.(*entryNode)
			if !e.dirty {
				continue
			}
			updates = append(updates, ftl.EntryUpdate{Off: int(e.off), PPN: e.ppn})
			if e != victim {
				e.dirty = false
				tp.dirty--
				cleaned++
			}
		}
	} else {
		updates = []ftl.EntryUpdate{{Off: int(victim.off), PPN: victim.ppn}}
	}
	// Unlink the victim and clear dirty state BEFORE the flash write: the
	// write can trigger GC, and GC may re-dirty surviving entries with
	// fresher values that must not be clobbered afterwards.
	f.removeEntry(victim)
	env.NoteBatchWriteback(cleaned)
	if err := env.WriteTP(v, updates, false); err != nil {
		return false, err
	}
	return true, nil
}

// Update implements ftl.Translator.
func (f *FTL) Update(env ftl.Env, lpn ftl.LPN, ppn flash.PPN) error {
	f.ePerTP = env.EntriesPerTP()
	v := ftl.VTPNOf(lpn, f.ePerTP)
	off := int32(ftl.OffOf(lpn, f.ePerTP))
	if tp := f.byVTPN[v]; tp != nil {
		if e := tp.byOff[off]; e != nil {
			e.ppn = ppn
			if !e.dirty {
				e.dirty = true
				tp.dirty++
			}
			f.touch(tp, e)
			return nil
		}
	}
	// Standalone update (the write path normally populates the entry via
	// Translate first): make room and install dirty. The TP-node overhead
	// is charged only when lpn's node is not already cached (mirroring
	// load's need()), and recomputed every iteration since an eviction can
	// drop the node; charging it unconditionally over-evicted one entry
	// per standalone update.
	need := func() int64 {
		c := f.entryBytes
		if f.byVTPN[v] == nil {
			c += f.nodeBytes
		}
		return c
	}
	for f.used+need() > f.cfg.CacheBytes {
		evicted, err := f.evictOne(env)
		if err != nil {
			return err
		}
		if !evicted {
			return fmt.Errorf("tpftl: budget %d cannot hold one entry", f.cfg.CacheBytes)
		}
	}
	tp := f.byVTPN[v]
	if tp == nil {
		tp = f.newTPNode(v)
	}
	e := f.addEntry(tp, off, ppn, true)
	f.touch(tp, e)
	return nil
}

// OnGCDataMoves implements ftl.Translator (§4.4): cached entries are
// updated in place (GC hits); misses are grouped per translation page, and
// with batch update each flash update also flushes every cached dirty entry
// of that page.
func (f *FTL) OnGCDataMoves(env ftl.Env, moves []ftl.GCMove) error {
	f.ePerTP = env.EntriesPerTP()
	pending := map[ftl.VTPN][]ftl.EntryUpdate{}
	for _, mv := range moves {
		v := ftl.VTPNOf(mv.LPN, f.ePerTP)
		off := int32(ftl.OffOf(mv.LPN, f.ePerTP))
		if tp := f.byVTPN[v]; tp != nil {
			if e := tp.byOff[off]; e != nil {
				e.ppn = mv.NewPPN
				if !e.dirty {
					e.dirty = true
					tp.dirty++
				}
				env.NoteGCMapUpdate(true)
				continue
			}
		}
		env.NoteGCMapUpdate(false)
		pending[v] = append(pending[v], ftl.EntryUpdate{Off: int(off), PPN: mv.NewPPN})
	}
	// Flush in ascending vtpn order: map iteration order would permute the
	// WriteTP sequence — and with it physical page allocation and die
	// assignment — making otherwise identical runs schedule differently.
	vtpns := make([]ftl.VTPN, 0, len(pending))
	for v := range pending {
		vtpns = append(vtpns, v)
	}
	sort.Slice(vtpns, func(i, j int) bool { return vtpns[i] < vtpns[j] })
	for _, v := range vtpns {
		ups := pending[v]
		if f.cfg.BatchUpdate {
			if tp := f.byVTPN[v]; tp != nil && tp.dirty > 0 {
				cleaned := 0
				for n := tp.entries.Front(); n != nil; n = n.Next() {
					e := n.Value.(*entryNode)
					if !e.dirty {
						continue
					}
					ups = append(ups, ftl.EntryUpdate{Off: int(e.off), PPN: e.ppn})
					e.dirty = false
					cleaned++
				}
				tp.dirty = 0
				env.NoteBatchWriteback(cleaned)
			}
		}
		if err := env.WriteTP(v, ups, false); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot implements ftl.Inspector.
func (f *FTL) Snapshot() ftl.CacheSnapshot {
	s := ftl.CacheSnapshot{
		Entries:      f.entries,
		TPNodes:      f.pages.Len(),
		UsedBytes:    f.used,
		DirtyPerPage: make(map[ftl.VTPN]int, f.pages.Len()),
	}
	for n := f.pages.Front(); n != nil; n = n.Next() {
		tp := n.Value.(*tpNode)
		s.DirtyPerPage[tp.vtpn] = tp.dirty
		s.DirtyEntries += tp.dirty
	}
	return s
}

// DirtyCached returns the LPN→PPN map of dirty cached entries for
// Device.CheckConsistency.
func (f *FTL) DirtyCached() map[ftl.LPN]flash.PPN {
	out := make(map[ftl.LPN]flash.PPN)
	for v, tp := range f.byVTPN {
		for off, e := range tp.byOff {
			if e.dirty {
				out[ftl.LPNAt(v, int(off), f.ePerTP)] = e.ppn
			}
		}
	}
	return out
}

// CheckInvariants validates the internal structure; property tests call it
// after random operation sequences.
func (f *FTL) CheckInvariants() error {
	if f.rule2Err != nil {
		return f.rule2Err
	}
	if f.used > f.cfg.CacheBytes {
		return fmt.Errorf("tpftl: used %d exceeds budget %d", f.used, f.cfg.CacheBytes)
	}
	entries, used := 0, int64(0)
	for n := f.pages.Front(); n != nil; n = n.Next() {
		tp := n.Value.(*tpNode)
		if f.byVTPN[tp.vtpn] != tp {
			return fmt.Errorf("tpftl: tp node %d not in index", tp.vtpn)
		}
		if tp.entries.Len() == 0 {
			return fmt.Errorf("tpftl: empty tp node %d still linked", tp.vtpn)
		}
		dirty := 0
		var sum uint64
		for en := tp.entries.Front(); en != nil; en = en.Next() {
			e := en.Value.(*entryNode)
			if e.owner != tp {
				return fmt.Errorf("tpftl: entry %d/%d has wrong owner", tp.vtpn, e.off)
			}
			if tp.byOff[e.off] != e {
				return fmt.Errorf("tpftl: entry %d/%d not in offset index", tp.vtpn, e.off)
			}
			if e.dirty {
				dirty++
			}
			sum += e.stamp
			entries++
		}
		if dirty != tp.dirty {
			return fmt.Errorf("tpftl: tp %d dirty count %d, counted %d", tp.vtpn, tp.dirty, dirty)
		}
		if sum != tp.stampSum {
			return fmt.Errorf("tpftl: tp %d stamp sum %d, counted %d", tp.vtpn, tp.stampSum, sum)
		}
		if len(tp.byOff) != tp.entries.Len() {
			return fmt.Errorf("tpftl: tp %d index size %d, list %d", tp.vtpn, len(tp.byOff), tp.entries.Len())
		}
		used += int64(tp.entries.Len())*f.entryBytes + f.nodeBytes
	}
	if entries != f.entries {
		return fmt.Errorf("tpftl: entry count %d, counted %d", f.entries, entries)
	}
	if used != f.used {
		return fmt.Errorf("tpftl: used %d, counted %d", f.used, used)
	}
	if len(f.byVTPN) != f.pages.Len() {
		return fmt.Errorf("tpftl: index size %d, page list %d", len(f.byVTPN), f.pages.Len())
	}
	if f.cfg.Hotness == HotnessAvg {
		var prev float64
		first := true
		for n := f.pages.Front(); n != nil; n = n.Next() {
			avg := n.Value.(*tpNode).avgStamp()
			if !first && avg > prev {
				return fmt.Errorf("tpftl: page list not ordered by avg hotness")
			}
			prev, first = avg, false
		}
	}
	return nil
}
