// Package core implements TPFTL, the translation page-level FTL that is the
// primary contribution of the paper (§4).
//
// TPFTL organizes the mapping cache as two-level LRU lists: a page-level LRU
// of TP nodes — one per translation page with at least one cached entry —
// each holding an entry-level LRU list of its cached entries. Entries are
// stored compressed (offset within the translation page instead of a full
// LPN: 6 B instead of 8 B), so the same budget caches up to a third more
// entries (§4.1, Fig. 10).
//
// On top of this structure TPFTL layers four techniques, all independently
// switchable to reproduce the paper's §5.2(5) ablation:
//
//   - request-level prefetching (Config.RequestPrefetch, 'r'): a miss on the
//     first page of a multi-page request loads every entry the request needs
//     from one translation-page read (§4.3);
//   - selective prefetching (Config.SelectivePrefetch, 's'): a counter of
//     TP-node count changes detects sequential phases; during one, a miss
//     also loads as many successors as the requested entry has cached
//     consecutive predecessors (§4.3);
//   - batch-update replacement (Config.BatchUpdate, 'b'): evicting a dirty
//     entry writes back all dirty entries of its TP node in the same
//     translation-page update; the survivors stay cached, now clean (§4.4);
//   - clean-first replacement (Config.CleanFirst, 'c'): the victim is the
//     LRU clean entry of the coldest TP node, falling back to the LRU dirty
//     entry (§4.4).
//
// Prefetching and replacement are integrated by the two §4.5 rules: a
// prefetch never crosses its translation-page boundary, and when the load
// forces evictions, the prefetch length is capped at the entry count of the
// coldest TP node so replacement stays confined to one cached page.
package core

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/lru"
)

// Hotness selects the page-level ordering policy.
type Hotness int

const (
	// HotnessLRU moves a TP node to the MRU position whenever one of its
	// entries is touched — the conventional approximation.
	HotnessLRU Hotness = iota
	// HotnessAvg orders TP nodes by the exact average access timestamp of
	// their entries, the paper's §4.2 definition ("page-level hotness is
	// the average hotness of all the entry nodes").
	HotnessAvg
)

// Config parameterizes TPFTL. The zero value (all techniques off) is the
// paper's "–" ablation variant: bare two-level lists.
type Config struct {
	// CacheBytes is the mapping-cache budget.
	CacheBytes int64

	// RequestPrefetch enables request-level prefetching ('r').
	RequestPrefetch bool
	// SelectivePrefetch enables selective prefetching ('s').
	SelectivePrefetch bool
	// BatchUpdate enables batch-update replacement ('b').
	BatchUpdate bool
	// CleanFirst enables clean-first replacement ('c').
	CleanFirst bool

	// CompressEntries stores entries as offset+PPN (6 B) instead of
	// LPN+PPN (8 B). Default true (set by DefaultConfig); the Fig. 10
	// space-utilization experiment turns it off for comparison.
	CompressEntries bool

	// SelectiveThreshold is the TP-node-count change that toggles
	// selective prefetching (default 3, the paper's empirical choice).
	SelectiveThreshold int

	// TPNodeBytes is the RAM overhead charged per TP node (default 8:
	// a VTPN plus list bookkeeping).
	TPNodeBytes int

	// Hotness selects the page-level ordering policy (default HotnessLRU).
	Hotness Hotness

	// EntriesPerTP is the number of mapping entries per on-flash
	// translation page (device PageSize / ftl.EntryBytesInFlash). Zero
	// selects the 4 KB-page default; ftl.NewDevice overrides either with
	// the real device geometry via SetGeometry.
	EntriesPerTP int
}

// DefaultConfig returns the complete TPFTL ("rsbc") for the given budget.
func DefaultConfig(cacheBytes int64) Config {
	return Config{
		CacheBytes:        cacheBytes,
		RequestPrefetch:   true,
		SelectivePrefetch: true,
		BatchUpdate:       true,
		CleanFirst:        true,
		CompressEntries:   true,
	}
}

// VariantName returns the paper's ablation monogram for the configuration:
// "–" for the bare variant, subsets of "rsbc" otherwise.
func (c Config) VariantName() string {
	s := ""
	if c.RequestPrefetch {
		s += "r"
	}
	if c.SelectivePrefetch {
		s += "s"
	}
	if c.BatchUpdate {
		s += "b"
	}
	if c.CleanFirst {
		s += "c"
	}
	if s == "" {
		return "–"
	}
	return s
}

// entryNode is one cached mapping entry (§4.1's entry node). Nodes are
// slab-allocated (entrySlab) and recycled through a free list on eviction;
// outside a list they carry the reset sentinel state (owner nil, off -1,
// ppn invalid) so stale bits cannot leak into a reuse.
type entryNode struct {
	node  lru.Node[*entryNode] // links within its TP node's entry-level list
	owner *tpNode
	off   int32 // offset within the translation page (the compressed LPN)
	ppn   flash.PPN
	dirty bool
	stamp uint64 // last-access timestamp (HotnessAvg ordering)
}

// tpNode clusters the cached entries of one translation page (§4.1). Like
// entry nodes, TP nodes are slab-allocated and recycled. byOff is a dense
// offset-indexed table (len == entries-per-TP, nil == uncached): offsets are
// bounded by the translation-page geometry, so a direct index replaces the
// per-node map — no hashing on the hit path and no map allocation per node.
type tpNode struct {
	node     lru.Node[*tpNode] // links within the page-level list
	vtpn     ftl.VTPN
	entries  lru.List[*entryNode] // entry-level LRU, MRU..LRU
	byOff    []*entryNode         // dense offset→entry table, kept (all nil) across recycles
	dirty    int                  // dirty entry count
	stampSum uint64               // Σ entry stamps; avg = stampSum/len (HotnessAvg)
}

func (tp *tpNode) avgStamp() float64 {
	if tp.entries.Len() == 0 {
		return 0
	}
	return float64(tp.stampSum) / float64(tp.entries.Len())
}

// FTL is the TPFTL translator. Create with New.
type FTL struct {
	cfg        Config
	entryBytes int64
	nodeBytes  int64
	threshold  int

	pages lru.List[*tpNode] // page-level list, hottest..coldest
	// byVTPN is the page directory: a dense table indexed by VTPN
	// (nil = not cached), grown on demand as translation pages are first
	// installed. A map here put a hash lookup on every Translate; the VTPN
	// space is small (logical pages / entries-per-TP), so the flat table
	// costs a few KB and indexes in one bounds-checked load.
	byVTPN []*tpNode

	// Slab free lists: evicted nodes are reset and recycled instead of
	// handed back to the garbage collector, so the steady-state service
	// path allocates nothing.
	eslab entrySlab
	tslab tpSlab

	// Reusable scratch buffers for the hot paths that previously allocated
	// per call. prefetchBuf backs prefetchSet's result; evictScratch backs
	// evictOne's writeback batch; gcPending/gcScratch back OnGCDataMoves'
	// sorted flush. evictOne and OnGCDataMoves need separate buffers: a
	// writeback inside evictOne can trigger GC, which re-enters the
	// translator through OnGCDataMoves while evictScratch is still live.
	prefetchBuf  []int32
	evictScratch []ftl.EntryUpdate
	gcPending    []gcFlush
	gcScratch    []ftl.EntryUpdate
	// flushScratch backs FlushDirty's per-page batch. It must be distinct
	// from evictScratch and gcScratch: a flush writeback can trigger GC,
	// which re-enters through OnGCDataMoves while the flush batch is live.
	flushScratch []ftl.EntryUpdate

	used    int64 // bytes charged against cfg.CacheBytes
	entries int

	// Selective-prefetching state (§4.3): counter of TP-node count
	// changes; selective prefetching toggles when |counter| reaches the
	// threshold.
	counter     int
	selectiveOn bool

	stamp uint64 // global access clock for HotnessAvg

	// Request context from BeginRequest.
	reqFirst, reqLast ftl.LPN

	// §4.5 rule-2 bookkeeping: while a prefetch-carrying load is evicting,
	// every victim must come from one TP node. loadPrefetchPending is set
	// around evictOne calls made with a non-empty prefetch; loadVictim is
	// that load's first victim node. A second distinct victim node records
	// a sticky violation surfaced by CheckInvariants.
	loadPrefetchPending bool
	loadVictim          ftl.VTPN
	rule2Err            error

	ePerTP int
}

var _ ftl.Translator = (*FTL)(nil)
var _ ftl.Inspector = (*FTL)(nil)
var _ ftl.GeometryAware = (*FTL)(nil)

// New returns a TPFTL instance.
func New(cfg Config) *FTL {
	if cfg.SelectiveThreshold == 0 {
		cfg.SelectiveThreshold = 3
	}
	if cfg.TPNodeBytes == 0 {
		cfg.TPNodeBytes = 8
	}
	entryBytes := int64(ftl.EntryBytesRAM) // 8 B uncompressed
	if cfg.CompressEntries {
		entryBytes = 6 // 10-bit offset + 4 B PPN + flags, rounded up (§4.1)
	}
	if min := entryBytes*4 + int64(cfg.TPNodeBytes); cfg.CacheBytes < min {
		cfg.CacheBytes = min
	}
	ePerTP := cfg.EntriesPerTP
	if ePerTP <= 0 {
		ePerTP = ftl.DefaultEntriesPerTP
	}
	return &FTL{
		cfg:        cfg,
		entryBytes: entryBytes,
		nodeBytes:  int64(cfg.TPNodeBytes),
		threshold:  cfg.SelectiveThreshold,
		ePerTP:     ePerTP,
	}
}

// SetGeometry implements ftl.GeometryAware: the device announces its real
// entries-per-translation-page count at construction, so offset/VTPN
// arithmetic (DirtyCached, Snapshot) is correct even before the first
// Translate syncs from the Env — previously a non-4KB PageSize left the
// hardcoded 4 KB default in place until then.
func (f *FTL) SetGeometry(entriesPerTP int) {
	if entriesPerTP > 0 {
		f.ePerTP = entriesPerTP
	}
}

// EntriesPerTP returns the translation-page geometry the cache is using.
func (f *FTL) EntriesPerTP() int { return f.ePerTP }

// Name implements ftl.Translator.
func (f *FTL) Name() string { return "TPFTL" }

// Variant returns the ablation monogram of this instance.
func (f *FTL) Variant() string { return f.cfg.VariantName() }

// Len returns the number of cached entries.
func (f *FTL) Len() int { return f.entries }

// TPNodes returns the number of cached TP nodes.
func (f *FTL) TPNodes() int { return f.pages.Len() }

// UsedBytes returns the charged cache usage.
func (f *FTL) UsedBytes() int64 { return f.used }

// SelectiveActive reports whether selective prefetching is currently on.
func (f *FTL) SelectiveActive() bool { return f.selectiveOn }

// BeginRequest implements ftl.Translator.
func (f *FTL) BeginRequest(first, last ftl.LPN, write bool) {
	f.reqFirst, f.reqLast = first, last
}

// Translate implements ftl.Translator.
//
//ftl:hotpath
func (f *FTL) Translate(env ftl.Env, lpn ftl.LPN) (flash.PPN, error) {
	f.ePerTP = env.EntriesPerTP()
	v := ftl.VTPNOf(lpn, f.ePerTP)
	off := int32(ftl.OffOf(lpn, f.ePerTP))

	if tp := f.tpAt(v); tp != nil {
		if e := tp.byOff[off]; e != nil {
			env.NoteLookup(true)
			f.touch(tp, e)
			return e.ppn, nil
		}
	}
	env.NoteLookup(false)
	return f.load(env, lpn, v, off)
}

// load handles a cache miss: it decides the prefetch set, makes room, reads
// the translation page once and installs the entries.
//
//ftl:hotpath
func (f *FTL) load(env ftl.Env, lpn ftl.LPN, v ftl.VTPN, off int32) (flash.PPN, error) {
	tp := f.tpAt(v)

	// Prefetch decision (§4.3). Offsets are relative to lpn's translation
	// page and exclude already-cached slots; rule 1 (§4.5) bounds
	// everything to this page, and the device's logical size truncates
	// the last (partial) translation page.
	pageEnd := int32(f.ePerTP)
	if lim := env.NumLPNs() - int64(v)*int64(f.ePerTP); lim < int64(pageEnd) {
		pageEnd = int32(lim)
	}
	extras := f.prefetchSet(tp, lpn, off, pageEnd)

	need := func(nExtras int) int64 {
		c := int64(1+nExtras) * f.entryBytes
		if f.tpAt(v) == nil {
			c += f.nodeBytes // node may have been dropped by an eviction
		}
		return c
	}

	// Make room before reading the translation page: evictions can write
	// back dirty entries and trigger GC, which may move the very data
	// pages being looked up. Reading only after all evictions guarantees
	// fresh values (ReadTP cannot trigger GC).
	//
	// Rule 2 (§4.5): if loading forces evictions, shrink the prefetch
	// until the whole load fits into the current free space plus what
	// evicting the coldest TP node entirely can yield, confining
	// replacement to one cached page. The cap is recomputed before every
	// eviction: the loop can exhaust its first victim node and surface a
	// differently-sized coldest node (notably when the demanded entry's
	// own node was the victim, whose drop raises the load's cost by
	// nodeBytes), and a one-shot computation would let replacement quietly
	// spill into a second page. When continuing would require a second
	// victim node, the prefetch is dropped instead.
	f.loadVictim = -1
	defer func() { f.loadPrefetchPending = false }()
	victimNode := ftl.VTPN(-1)
	for f.used+need(len(extras)) > f.cfg.CacheBytes {
		if len(extras) > 0 {
			cold := ftl.VTPN(-1)
			freeable := int64(0)
			if coldest := f.pages.Back(); coldest != nil {
				tpc := coldest.Value
				cold = tpc.vtpn
				freeable = int64(tpc.entries.Len())*f.entryBytes + f.nodeBytes
			}
			if victimNode >= 0 && cold != victimNode {
				extras = extras[:0]
			} else {
				free := f.cfg.CacheBytes - f.used
				for len(extras) > 0 && need(len(extras)) > free+freeable {
					extras = extras[:len(extras)-1]
				}
				if len(extras) > 0 {
					victimNode = cold
				}
			}
			if f.used+need(len(extras)) <= f.cfg.CacheBytes {
				break // the shrink alone made the load fit
			}
		}
		f.loadPrefetchPending = len(extras) > 0
		evicted, err := f.evictOne(env)
		if err != nil {
			return flash.InvalidPPN, err
		}
		if !evicted {
			// Cache empty yet still no room: shrink the prefetch.
			if len(extras) > 0 {
				extras = extras[:0]
				continue
			}
			return flash.InvalidPPN, fmt.Errorf("tpftl: budget %d cannot hold one entry", f.cfg.CacheBytes)
		}
	}
	f.loadPrefetchPending = false

	vals, err := env.ReadTP(v)
	if err != nil {
		return flash.InvalidPPN, err
	}

	// The eviction pass may have removed lpn's TP node (or created the
	// conditions for it); re-resolve and install.
	tp = f.tpAt(v)
	if tp == nil {
		tp = f.newTPNode(v)
	}
	// Install prefetched entries first, the demanded entry last, so the
	// demanded one ends up MRU.
	loaded := 0
	for _, xo := range extras {
		if tp.byOff[xo] != nil {
			continue // installed by a nested path meanwhile
		}
		f.addEntry(tp, xo, vals[xo], false)
		loaded++
	}
	if loaded > 0 {
		if np, ok := env.(interface{ NotePrefetch(int) }); ok {
			np.NotePrefetch(loaded)
		}
	}
	ppn := vals[off]
	if e := tp.byOff[off]; e != nil {
		// Extremely defensive: demanded entry appeared during eviction.
		f.touch(tp, e)
		return e.ppn, nil
	}
	e := f.addEntry(tp, off, ppn, false)
	f.touch(tp, e)
	return ppn, nil
}

// prefetchSet returns the extra offsets (same translation page, uncached,
// ascending, excluding off) to load together with the demanded entry. The
// result aliases f.prefetchBuf; it is valid until the next miss.
//
//ftl:hotpath
func (f *FTL) prefetchSet(tp *tpNode, lpn ftl.LPN, off, pageEnd int32) []int32 {
	extras := f.prefetchBuf[:0]

	// Request-level prefetching ('r'): all pages of the in-flight request
	// from lpn forward, within this translation page (rule 1).
	reqN := int32(0)
	if f.cfg.RequestPrefetch && f.reqLast > lpn {
		reqN = int32(f.reqLast - lpn)
		for i := int32(1); i <= reqN && off+i < pageEnd; i++ {
			xo := off + i
			if tp != nil && tp.byOff[xo] != nil {
				continue
			}
			extras = append(extras, xo)
		}
	}

	// Selective prefetching ('s'): when active, prefetch as many
	// successors as there are cached consecutive predecessors (§4.3).
	// Offsets within reqN were already considered by the request pass
	// above (both passes skip cached slots), so skipping them here keeps
	// the set duplicate-free without a per-miss seen map.
	if f.cfg.SelectivePrefetch && f.selectiveOn && tp != nil {
		preds := int32(0)
		for o := off - 1; o >= 0; o-- {
			if tp.byOff[o] == nil {
				break
			}
			preds++
		}
		for i := int32(1); i <= preds && off+i < pageEnd; i++ {
			if i <= reqN {
				continue // covered by the request-prefetch pass
			}
			xo := off + i
			if tp.byOff[xo] != nil {
				continue
			}
			extras = append(extras, xo)
		}
	}
	f.prefetchBuf = extras
	return extras
}

// touch records an access to e and restores the page-level ordering.
//
//ftl:hotpath
func (f *FTL) touch(tp *tpNode, e *entryNode) {
	tp.entries.MoveToFront(&e.node)
	f.stamp++
	tp.stampSum += f.stamp - e.stamp
	e.stamp = f.stamp
	f.reposition(tp)
}

// reposition restores tp's position in the page-level list after its
// hotness changed.
//
//ftl:hotpath
func (f *FTL) reposition(tp *tpNode) {
	if f.cfg.Hotness == HotnessLRU {
		f.pages.MoveToFront(&tp.node)
		return
	}
	// HotnessAvg: bubble toward the front while hotter than predecessors,
	// toward the back while colder than successors.
	avg := tp.avgStamp()
	for prev := tp.node.Prev(); prev != nil && prev.Value.avgStamp() < avg; prev = tp.node.Prev() {
		f.pages.Remove(&tp.node)
		f.pages.InsertBefore(&tp.node, prev)
	}
	for next := tp.node.Next(); next != nil && next.Value.avgStamp() > avg; next = tp.node.Next() {
		f.pages.Remove(&tp.node)
		f.pages.InsertAfter(&tp.node, next)
	}
}

// tpAt returns the cached TP node for v, or nil. The directory only grows
// when a node is installed (newTPNode), so a VTPN beyond the table is simply
// not cached.
//
//ftl:hotpath
func (f *FTL) tpAt(v ftl.VTPN) *tpNode {
	if int(v) < len(f.byVTPN) {
		return f.byVTPN[v]
	}
	return nil
}

// growIndex widens the page directory to hold at least n slots. Growth
// doubles, so steady-state installs never reallocate; the table tops out at
// one pointer per translation page of the device.
func (f *FTL) growIndex(n int) {
	if n < 2*len(f.byVTPN) {
		n = 2 * len(f.byVTPN)
	}
	nb := make([]*tpNode, n)
	copy(nb, f.byVTPN)
	f.byVTPN = nb
}

// newTPNode creates and links a TP node, charging its overhead and stepping
// the selective-prefetch counter (§4.3: +1 on load).
//
//ftl:hotpath
func (f *FTL) newTPNode(v ftl.VTPN) *tpNode {
	tp := f.tslab.get(f.ePerTP)
	tp.vtpn = v
	if int(v) >= len(f.byVTPN) {
		f.growIndex(int(v) + 1)
	}
	f.byVTPN[v] = tp
	f.pages.PushFront(&tp.node)
	f.used += f.nodeBytes
	f.stepCounter(+1)
	return tp
}

// dropTPNode unlinks an empty TP node (§4.3: −1 on eviction).
//
//ftl:hotpath
func (f *FTL) dropTPNode(tp *tpNode) {
	f.pages.Remove(&tp.node)
	f.byVTPN[tp.vtpn] = nil
	f.used -= f.nodeBytes
	f.stepCounter(-1)
	f.tslab.put(tp)
}

// stepCounter implements the selective-prefetching activation rule: when
// the counter reaches +threshold, sequential accesses ended — deactivate;
// at −threshold they are happening — activate; either way reset (§4.3).
func (f *FTL) stepCounter(delta int) {
	f.counter += delta
	switch {
	case f.counter >= f.threshold:
		f.selectiveOn = false
		f.counter = 0
	case f.counter <= -f.threshold:
		f.selectiveOn = true
		f.counter = 0
	}
}

// addEntry installs a new entry at the MRU position of tp.
//
//ftl:hotpath
func (f *FTL) addEntry(tp *tpNode, off int32, ppn flash.PPN, dirty bool) *entryNode {
	e := f.eslab.get()
	e.owner, e.off, e.ppn, e.dirty = tp, off, ppn, dirty
	tp.byOff[off] = e
	tp.entries.PushFront(&e.node)
	if dirty {
		tp.dirty++
	}
	f.stamp++
	e.stamp = f.stamp
	tp.stampSum += f.stamp
	f.entries++
	f.used += f.entryBytes
	f.reposition(tp)
	return e
}

// removeEntry unlinks e and recycles it; the TP node is dropped when it
// empties.
//
//ftl:hotpath
func (f *FTL) removeEntry(e *entryNode) {
	tp := e.owner
	tp.entries.Remove(&e.node)
	tp.byOff[e.off] = nil
	tp.stampSum -= e.stamp
	if e.dirty {
		tp.dirty--
	}
	f.eslab.put(e)
	f.entries--
	f.used -= f.entryBytes
	if tp.entries.Len() == 0 {
		f.dropTPNode(tp)
		return
	}
	// Removing an entry changes the node's average hotness; restore the
	// ordering without treating the removal as an access (under LRU
	// ordering an eviction must not promote the node).
	if f.cfg.Hotness == HotnessAvg {
		f.reposition(tp)
	}
}

// evictOne evicts one victim per the replacement policy (§4.4) and reports
// whether an eviction happened.
//
//ftl:hotpath
func (f *FTL) evictOne(env ftl.Env) (bool, error) {
	coldN := f.pages.Back()
	if coldN == nil {
		return false, nil
	}
	tp := coldN.Value

	// §4.5 rule-2 assertion: a load that still carries a prefetch must
	// confine its evictions to one TP node.
	if f.loadPrefetchPending {
		if f.loadVictim < 0 {
			f.loadVictim = tp.vtpn
		} else if tp.vtpn != f.loadVictim && f.rule2Err == nil {
			f.rule2Err = fmt.Errorf("tpftl: §4.5 rule 2 violated: one prefetching load evicted from tp nodes %d and %d", f.loadVictim, tp.vtpn)
		}
	}

	var victim *entryNode
	if f.cfg.CleanFirst {
		// LRU clean entry of the coldest TP node; LRU dirty as fallback.
		for n := tp.entries.Back(); n != nil; n = n.Prev() {
			if e := n.Value; !e.dirty {
				victim = e
				break
			}
		}
	}
	if victim == nil {
		victim = tp.entries.Back().Value
	}

	env.NoteReplacement(victim.dirty)
	if !victim.dirty {
		f.removeEntry(victim)
		return true, nil
	}

	// Dirty victim: compose the writeback. With batch update every dirty
	// entry of the TP node joins the same translation-page update and
	// stays cached clean (§4.4); without it only the victim is written.
	// The batch reuses evictScratch; GC re-entered from the WriteTP below
	// flushes through the separate gcPending/gcScratch buffers.
	v := tp.vtpn
	updates := f.evictScratch[:0]
	cleaned := 0
	if f.cfg.BatchUpdate {
		for n := tp.entries.Front(); n != nil; n = n.Next() {
			e := n.Value
			if !e.dirty {
				continue
			}
			updates = append(updates, ftl.EntryUpdate{Off: int(e.off), PPN: e.ppn})
			if e != victim {
				e.dirty = false
				tp.dirty--
				cleaned++
			}
		}
	} else {
		updates = append(updates, ftl.EntryUpdate{Off: int(victim.off), PPN: victim.ppn})
	}
	f.evictScratch = updates
	// Unlink the victim and clear dirty state BEFORE the flash write: the
	// write can trigger GC, and GC may re-dirty surviving entries with
	// fresher values that must not be clobbered afterwards.
	f.removeEntry(victim)
	env.NoteBatchWriteback(cleaned)
	if err := env.WriteTP(v, updates, false); err != nil {
		return false, err
	}
	return true, nil
}

// Update implements ftl.Translator.
//
//ftl:hotpath
func (f *FTL) Update(env ftl.Env, lpn ftl.LPN, ppn flash.PPN) error {
	f.ePerTP = env.EntriesPerTP()
	v := ftl.VTPNOf(lpn, f.ePerTP)
	off := int32(ftl.OffOf(lpn, f.ePerTP))
	if tp := f.tpAt(v); tp != nil {
		if e := tp.byOff[off]; e != nil {
			e.ppn = ppn
			if !e.dirty {
				e.dirty = true
				tp.dirty++
			}
			f.touch(tp, e)
			return nil
		}
	}
	// Standalone update (the write path normally populates the entry via
	// Translate first): make room and install dirty. The TP-node overhead
	// is charged only when lpn's node is not already cached (mirroring
	// load's need()), and recomputed every iteration since an eviction can
	// drop the node; charging it unconditionally over-evicted one entry
	// per standalone update.
	need := func() int64 {
		c := f.entryBytes
		if f.tpAt(v) == nil {
			c += f.nodeBytes
		}
		return c
	}
	for f.used+need() > f.cfg.CacheBytes {
		evicted, err := f.evictOne(env)
		if err != nil {
			return err
		}
		if !evicted {
			return fmt.Errorf("tpftl: budget %d cannot hold one entry", f.cfg.CacheBytes)
		}
	}
	tp := f.tpAt(v)
	if tp == nil {
		tp = f.newTPNode(v)
	}
	e := f.addEntry(tp, off, ppn, true)
	f.touch(tp, e)
	return nil
}

// Discard implements ftl.Translator: a trimmed page's cached entry is
// dropped without writeback (the mapping is dead; the device rewrites the
// translation page itself as part of the discard). removeEntry handles the
// dirty count and drops the TP node when it empties — all slab-recycled,
// nothing allocates.
//
//ftl:hotpath
func (f *FTL) Discard(lpn ftl.LPN) {
	v := ftl.VTPNOf(lpn, f.ePerTP)
	tp := f.tpAt(v)
	if tp == nil {
		return
	}
	off := int32(ftl.OffOf(lpn, f.ePerTP))
	if e := tp.byOff[off]; e != nil {
		f.removeEntry(e)
	}
}

// FlushDirty implements ftl.Translator: a host flush barrier writes every
// dirty entry back, one batched translation-page update per dirty TP node,
// in ascending VTPN order (the dense directory is index-ordered already).
// Entries are marked clean as they are captured, BEFORE the flash write: a
// GC triggered mid-flush refreshes cached entries in place and must leave
// them dirty again. The batch uses flushScratch, not evictScratch or
// gcScratch, because the WriteTP below can re-enter through OnGCDataMoves.
func (f *FTL) FlushDirty(env ftl.Env) error {
	f.ePerTP = env.EntriesPerTP()
	for v := 0; v < len(f.byVTPN); v++ {
		tp := f.byVTPN[v]
		if tp == nil || tp.dirty == 0 {
			continue
		}
		ups := f.flushScratch[:0]
		for n := tp.entries.Front(); n != nil; n = n.Next() {
			e := n.Value
			if !e.dirty {
				continue
			}
			ups = append(ups, ftl.EntryUpdate{Off: int(e.off), PPN: e.ppn})
			e.dirty = false
		}
		tp.dirty = 0
		ftl.SortUpdates(ups)
		f.flushScratch = ups
		env.NoteBatchWriteback(len(ups) - 1)
		if err := env.WriteTP(ftl.VTPN(v), ups, false); err != nil {
			return err
		}
	}
	return nil
}

// OnGCDataMoves implements ftl.Translator (§4.4): cached entries are
// updated in place (GC hits); misses are grouped per translation page, and
// with batch update each flash update also flushes every cached dirty entry
// of that page.
//
//ftl:hotpath
func (f *FTL) OnGCDataMoves(env ftl.Env, moves []ftl.GCMove) error {
	f.ePerTP = env.EntriesPerTP()
	pend := f.gcPending[:0]
	for _, mv := range moves {
		v := ftl.VTPNOf(mv.LPN, f.ePerTP)
		off := int32(ftl.OffOf(mv.LPN, f.ePerTP))
		if tp := f.tpAt(v); tp != nil {
			if e := tp.byOff[off]; e != nil {
				e.ppn = mv.NewPPN
				if !e.dirty {
					e.dirty = true
					tp.dirty++
				}
				env.NoteGCMapUpdate(true)
				continue
			}
		}
		env.NoteGCMapUpdate(false)
		pend = append(pend, gcFlush{v: v, up: ftl.EntryUpdate{Off: int(off), PPN: mv.NewPPN}})
	}
	// Flush in ascending vtpn order: an unordered flush would permute the
	// WriteTP sequence — and with it physical page allocation and die
	// assignment — making otherwise identical runs schedule differently.
	// The stable insertion sort keeps the within-page move order and runs
	// on the reusable pending buffer (moves per GC pass are bounded by the
	// pages of one block, so quadratic is fine and nothing allocates).
	for i := 1; i < len(pend); i++ {
		for j := i; j > 0 && pend[j].v < pend[j-1].v; j-- {
			pend[j], pend[j-1] = pend[j-1], pend[j]
		}
	}
	f.gcPending = pend
	for i := 0; i < len(pend); {
		v := pend[i].v
		ups := f.gcScratch[:0]
		for ; i < len(pend) && pend[i].v == v; i++ {
			ups = append(ups, pend[i].up)
		}
		if f.cfg.BatchUpdate {
			if tp := f.tpAt(v); tp != nil && tp.dirty > 0 {
				cleaned := 0
				for n := tp.entries.Front(); n != nil; n = n.Next() {
					e := n.Value
					if !e.dirty {
						continue
					}
					ups = append(ups, ftl.EntryUpdate{Off: int(e.off), PPN: e.ppn})
					e.dirty = false
					cleaned++
				}
				tp.dirty = 0
				env.NoteBatchWriteback(cleaned)
			}
		}
		f.gcScratch = ups
		if err := env.WriteTP(v, ups, false); err != nil {
			return err
		}
	}
	return nil
}

// gcFlush is one pending GC map update destined for translation page v;
// OnGCDataMoves collects these into a reusable buffer and flushes them
// grouped by page in ascending vtpn order.
type gcFlush struct {
	v  ftl.VTPN
	up ftl.EntryUpdate
}

// Snapshot implements ftl.Inspector.
func (f *FTL) Snapshot() ftl.CacheSnapshot {
	s := ftl.CacheSnapshot{
		Entries:      f.entries,
		TPNodes:      f.pages.Len(),
		UsedBytes:    f.used,
		DirtyPerPage: make(map[ftl.VTPN]int, f.pages.Len()),
	}
	for n := f.pages.Front(); n != nil; n = n.Next() {
		tp := n.Value
		s.DirtyPerPage[tp.vtpn] = tp.dirty
		s.DirtyEntries += tp.dirty
	}
	return s
}

// DirtyCached returns the LPN→PPN map of dirty cached entries for
// Device.CheckConsistency.
func (f *FTL) DirtyCached() map[ftl.LPN]flash.PPN {
	out := make(map[ftl.LPN]flash.PPN)
	for v, tp := range f.byVTPN {
		if tp == nil {
			continue
		}
		for off, e := range tp.byOff {
			if e != nil && e.dirty {
				out[ftl.LPNAt(ftl.VTPN(v), off, f.ePerTP)] = e.ppn
			}
		}
	}
	return out
}

// CheckInvariants validates the internal structure; property tests call it
// after random operation sequences.
func (f *FTL) CheckInvariants() error {
	if f.rule2Err != nil {
		return f.rule2Err
	}
	if f.used > f.cfg.CacheBytes {
		return fmt.Errorf("tpftl: used %d exceeds budget %d", f.used, f.cfg.CacheBytes)
	}
	entries, used := 0, int64(0)
	for n := f.pages.Front(); n != nil; n = n.Next() {
		tp := n.Value
		if f.tpAt(tp.vtpn) != tp {
			return fmt.Errorf("tpftl: tp node %d not in index", tp.vtpn)
		}
		if tp.entries.Len() == 0 {
			return fmt.Errorf("tpftl: empty tp node %d still linked", tp.vtpn)
		}
		dirty := 0
		var sum uint64
		for en := tp.entries.Front(); en != nil; en = en.Next() {
			e := en.Value
			if e.owner != tp {
				return fmt.Errorf("tpftl: entry %d/%d has wrong owner", tp.vtpn, e.off)
			}
			if int(e.off) >= len(tp.byOff) || tp.byOff[e.off] != e {
				return fmt.Errorf("tpftl: entry %d/%d not in offset index", tp.vtpn, e.off)
			}
			if e.dirty {
				dirty++
			}
			sum += e.stamp
			entries++
		}
		if dirty != tp.dirty {
			return fmt.Errorf("tpftl: tp %d dirty count %d, counted %d", tp.vtpn, tp.dirty, dirty)
		}
		if sum != tp.stampSum {
			return fmt.Errorf("tpftl: tp %d stamp sum %d, counted %d", tp.vtpn, tp.stampSum, sum)
		}
		live := 0
		for _, se := range tp.byOff {
			if se != nil {
				live++
			}
		}
		if live != tp.entries.Len() {
			return fmt.Errorf("tpftl: tp %d offset table has %d live slots, list %d (stale slot after recycle?)", tp.vtpn, live, tp.entries.Len())
		}
		used += int64(tp.entries.Len())*f.entryBytes + f.nodeBytes
	}
	if entries != f.entries {
		return fmt.Errorf("tpftl: entry count %d, counted %d", f.entries, entries)
	}
	if used != f.used {
		return fmt.Errorf("tpftl: used %d, counted %d", f.used, used)
	}
	indexed := 0
	for _, tp := range f.byVTPN {
		if tp != nil {
			indexed++
		}
	}
	if indexed != f.pages.Len() {
		return fmt.Errorf("tpftl: index holds %d nodes, page list %d", indexed, f.pages.Len())
	}
	if f.cfg.Hotness == HotnessAvg {
		var prev float64
		first := true
		for n := f.pages.Front(); n != nil; n = n.Next() {
			avg := n.Value.avgStamp()
			if !first && avg > prev {
				return fmt.Errorf("tpftl: page list not ordered by avg hotness")
			}
			prev, first = avg, false
		}
	}
	if err := f.eslab.check(); err != nil {
		return err
	}
	if err := f.tslab.check(); err != nil {
		return err
	}
	return nil
}
