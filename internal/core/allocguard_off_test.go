//go:build race || ftlsan

package core

// See allocguard_on_test.go.
const allocGuardsEnabled = false
