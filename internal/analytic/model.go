// Package analytic implements the TPFTL paper's §3.1 models: the
// performance model (Eqs. 1–11) and the write-amplification model
// (Eqs. 12–13) of a demand-based page-level FTL.
//
// The models express the address-translation overhead of an SSD in terms of
// the mapping-cache hit ratio Hr and the dirty-replacement probability Prd
// (plus workload and GC parameters the paper treats as externally given:
// Rw, Vd, Vt, Hgcr). The simulator's measured counters can be fed back into
// the models; the analytic tests cross-validate the two, which checks both
// the model implementation and the simulator's accounting.
package analytic

import (
	"fmt"
	"time"
)

// Params collects the model inputs (Table 1 symbols).
type Params struct {
	Hr   float64 // cache hit ratio of address translation
	Prd  float64 // probability a replaced mapping entry is dirty
	Hgcr float64 // cache hit ratio of GC-time mapping updates
	Rw   float64 // write ratio among user page accesses
	Vd   float64 // mean valid pages in collected data blocks
	Vt   float64 // mean valid pages in collected translation blocks
	Np   float64 // pages per flash block
	Npa  float64 // number of user page accesses

	Tfr time.Duration // flash page read time
	Tfw time.Duration // flash page write time
	Tfe time.Duration // flash block erase time
}

// Validate reports whether the parameters are in range.
func (p Params) Validate() error {
	switch {
	case p.Hr < 0 || p.Hr > 1:
		return fmt.Errorf("analytic: Hr %v out of [0,1]", p.Hr)
	case p.Prd < 0 || p.Prd > 1:
		return fmt.Errorf("analytic: Prd %v out of [0,1]", p.Prd)
	case p.Hgcr < 0 || p.Hgcr > 1:
		return fmt.Errorf("analytic: Hgcr %v out of [0,1]", p.Hgcr)
	case p.Rw < 0 || p.Rw > 1:
		return fmt.Errorf("analytic: Rw %v out of [0,1]", p.Rw)
	case p.Np <= 0:
		return fmt.Errorf("analytic: Np %v must be positive", p.Np)
	case p.Vd < 0 || p.Vd >= p.Np:
		return fmt.Errorf("analytic: Vd %v out of [0,Np)", p.Vd)
	case p.Vt < 0 || p.Vt >= p.Np:
		return fmt.Errorf("analytic: Vt %v out of [0,Np)", p.Vt)
	case p.Npa < 0:
		return fmt.Errorf("analytic: Npa %v negative", p.Npa)
	}
	return nil
}

// Tat returns Eq. 1, the mean address-translation time: a miss costs one
// translation-page read, plus — with probability Prd — the read-modify-write
// of a replaced dirty entry.
func (p Params) Tat() time.Duration {
	miss := 1 - p.Hr
	return time.Duration(miss * (float64(p.Tfr) + p.Prd*float64(p.Tfr+p.Tfw)))
}

// Ngcd returns Eq. 7, the number of data-block GC operations: each user page
// write consumes a free page, and collecting one data block gains Np−Vd.
func (p Params) Ngcd() float64 {
	return p.Npa * p.Rw / (p.Np - p.Vd)
}

// Nmd returns Eq. 2, the data page writes caused by GC migrations.
func (p Params) Nmd() float64 { return p.Ngcd() * p.Vd }

// Ndt returns Eq. 3, the translation page writes caused by updating the
// mapping entries of migrated data pages (GC misses only).
func (p Params) Ndt() float64 { return p.Ngcd() * p.Vd * (1 - p.Hgcr) }

// Ntw returns Eq. 8, the translation page writes during address translation
// (writebacks of replaced dirty entries).
func (p Params) Ntw() float64 { return (1 - p.Hr) * p.Prd * p.Npa }

// Ngct returns Eq. 9, the number of translation-block GC operations.
func (p Params) Ngct() float64 {
	return (p.Ntw() + p.Ndt()) / (p.Np - p.Vt)
}

// Nmt returns Eq. 5, the translation page writes caused by migrating valid
// translation pages.
func (p Params) Nmt() float64 { return p.Ngct() * p.Vt }

// Tgcd returns Eq. 10, the mean time per user page access spent collecting
// data blocks.
func (p Params) Tgcd() time.Duration {
	num := p.Rw * (p.Vd*(2-p.Hgcr)*float64(p.Tfr+p.Tfw) + float64(p.Tfe))
	return time.Duration(num / (p.Np - p.Vd))
}

// Tgct returns Eq. 11, the mean time per user page access spent collecting
// translation blocks.
func (p Params) Tgct() time.Duration {
	factor := (1-p.Hr)*p.Prd + p.Rw*p.Vd*(1-p.Hgcr)/(p.Np-p.Vd)
	per := (p.Vt*float64(p.Tfr+p.Tfw) + float64(p.Tfe)) / (p.Np - p.Vt)
	return time.Duration(factor * per)
}

// WAFromCounts returns Eq. 12 evaluated on explicit operation counts.
func WAFromCounts(userWrites, ntw, nmd, ndt, nmt float64) float64 {
	if userWrites <= 0 {
		return 0
	}
	return (userWrites + ntw + nmd + ndt + nmt) / userWrites
}

// WA returns Eq. 13, the closed-form write amplification. It equals Eq. 12
// with Eqs. 2, 3, 5, 7, 8, 9 substituted in (the identity is checked by
// tests).
func (p Params) WA() float64 {
	if p.Rw == 0 {
		return 0 // read-only: write amplification undefined; report 0
	}
	at := (1 - p.Hr) * p.Prd * p.Np / ((p.Np - p.Vt) * p.Rw)
	gc := (1 + (1-p.Hgcr)*p.Np/(p.Np-p.Vt)) * p.Vd / (p.Np - p.Vd)
	return 1 + at + gc
}

// WAViaCounts returns Eq. 12 using the model's own count equations — by
// construction identical to WA() up to floating-point error.
func (p Params) WAViaCounts() float64 {
	return WAFromCounts(p.Npa*p.Rw, p.Ntw(), p.Nmd(), p.Ndt(), p.Nmt())
}

// ExtraTimePerAccess returns Tat + Tgcd + Tgct: the model's total mean
// overhead added to each user page access by address translation and GC.
func (p Params) ExtraTimePerAccess() time.Duration {
	return p.Tat() + p.Tgcd() + p.Tgct()
}
