package analytic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ftl"
	"repro/internal/ftl/dftl"
	"repro/internal/trace"
)

func sample() Params {
	return Params{
		Hr: 0.7, Prd: 0.5, Hgcr: 0.3, Rw: 0.8,
		Vd: 20, Vt: 10, Np: 64, Npa: 1_000_000,
		Tfr: 25 * time.Microsecond,
		Tfw: 200 * time.Microsecond,
		Tfe: 1500 * time.Microsecond,
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Hr = 1.5 },
		func(p *Params) { p.Prd = -0.1 },
		func(p *Params) { p.Hgcr = 2 },
		func(p *Params) { p.Rw = -1 },
		func(p *Params) { p.Np = 0 },
		func(p *Params) { p.Vd = 64 },
		func(p *Params) { p.Vt = -1 },
		func(p *Params) { p.Npa = -5 },
	}
	for i, mut := range bad {
		p := sample()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTatEquation1(t *testing.T) {
	p := sample()
	// Tat = (1-Hr)(Tfr + Prd(Tfr+Tfw)) = 0.3*(25µs + 0.5*225µs) = 41.25µs
	want := time.Duration(0.3 * (25e3 + 0.5*225e3))
	if got := p.Tat(); got != want {
		t.Fatalf("Tat = %v, want %v", got, want)
	}
	// Perfect cache: zero translation cost.
	p.Hr = 1
	if p.Tat() != 0 {
		t.Fatal("Tat must be 0 at Hr=1")
	}
}

func TestCountEquations(t *testing.T) {
	p := sample()
	// Ngcd = Npa*Rw/(Np-Vd) = 800000/44
	if got, want := p.Ngcd(), 800000.0/44; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Ngcd = %v, want %v", got, want)
	}
	if got, want := p.Nmd(), p.Ngcd()*20; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Nmd = %v, want %v", got, want)
	}
	if got, want := p.Ndt(), p.Ngcd()*20*0.7; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Ndt = %v, want %v", got, want)
	}
	if got, want := p.Ntw(), 0.3*0.5*1_000_000; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Ntw = %v, want %v", got, want)
	}
	if got, want := p.Ngct(), (p.Ntw()+p.Ndt())/54; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Ngct = %v, want %v", got, want)
	}
	if got, want := p.Nmt(), p.Ngct()*10; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Nmt = %v, want %v", got, want)
	}
}

// TestEq12EqualsEq13 checks the paper's algebra: the closed form (Eq. 13)
// must equal Eq. 12 with the count equations substituted, for random
// parameters.
func TestEq12EqualsEq13(t *testing.T) {
	f := func(hr, prd, hgcr, rw, vd, vt uint8) bool {
		p := Params{
			Hr:   float64(hr) / 255,
			Prd:  float64(prd) / 255,
			Hgcr: float64(hgcr) / 255,
			Rw:   0.01 + 0.99*float64(rw)/255, // Rw > 0 (Eq. 12 requires writes)
			Vd:   63 * float64(vd) / 255,
			Vt:   63 * float64(vt) / 255,
			Np:   64,
			Npa:  1e6,
		}
		a, b := p.WA(), p.WAViaCounts()
		return math.Abs(a-b) < 1e-9*math.Max(a, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWAMonotonicInPrd(t *testing.T) {
	p := sample()
	prev := -1.0
	for prd := 0.0; prd <= 1.0; prd += 0.1 {
		p.Prd = prd
		if wa := p.WA(); wa < prev {
			t.Fatalf("WA not monotonic in Prd at %v", prd)
		} else {
			prev = wa
		}
	}
}

func TestWAMonotonicDecreasingInHr(t *testing.T) {
	p := sample()
	prev := math.Inf(1)
	for hr := 0.0; hr <= 1.0; hr += 0.1 {
		p.Hr = hr
		if wa := p.WA(); wa > prev {
			t.Fatalf("WA not decreasing in Hr at %v", hr)
		} else {
			prev = wa
		}
	}
}

func TestReadOnlyWorkload(t *testing.T) {
	p := sample()
	p.Rw = 0
	if p.WA() != 0 {
		t.Fatal("read-only WA must report 0")
	}
	if p.Ngcd() != 0 || p.Nmd() != 0 {
		t.Fatal("read-only workload must trigger no data GC")
	}
}

// TestModelMatchesSimulator is the end-to-end cross-check: run a DFTL device
// over a random write-heavy workload, feed the measured Hr/Prd/Vd/Vt/Hgcr
// back into the model, and compare predictions with measured counts. The
// model assumes steady state (every write costs a GC-amortized free page),
// so tolerances are moderate.
func TestModelMatchesSimulator(t *testing.T) {
	cfg := ftl.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.10,
		CacheBytes:    384,
	}
	tr := dftl.New(dftl.Config{CacheBytes: cfg.CacheBytes})
	d, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	arrival := int64(0)
	for i := 0; i < 60000; i++ {
		page := int64(rng.Intn(4096))
		write := rng.Intn(10) < 8 // Rw ≈ 0.8
		arrival += 50_000
		req := trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: opOf(write)}
		if _, err := d.Serve(req); err != nil {
			t.Fatal(err)
		}
	}
	m := d.Metrics()
	p := Params{
		Hr: m.Hr(), Prd: m.Prd(), Hgcr: m.Hgcr(), Rw: m.Rw(),
		Vd: m.Vd(), Vt: m.Vt(), Np: 32, Npa: float64(m.PageAccesses()),
		Tfr: 25 * time.Microsecond, Tfw: 200 * time.Microsecond, Tfe: 1500 * time.Microsecond,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	// Eq. 8 is exact by construction of the counters.
	if got, want := p.Ntw(), float64(m.TransWritesAT); relErr(got, want) > 0.01 {
		t.Errorf("Ntw: model %v, simulator %v", got, want)
	}
	// Eq. 7 assumes steady state; the simulator's GC count should be close.
	if got, want := p.Ngcd(), float64(m.GCDataCollections); relErr(got, want) > 0.15 {
		t.Errorf("Ngcd: model %v, simulator %v", got, want)
	}
	// Eq. 2: data page migrations.
	if got, want := p.Nmd(), float64(m.GCDataMigrations); relErr(got, want) > 0.15 {
		t.Errorf("Nmd: model %v, simulator %v", got, want)
	}
	// Eq. 3 counts one translation update per missed migration; the
	// simulator (like real DFTL) batches updates sharing a translation
	// page within one victim block, so the model predicts the number of
	// GC misses, and actual flash writes are at most that.
	gcMisses := float64(m.GCMapUpdates - m.GCMapHits)
	if got := p.Ndt(); relErr(got, gcMisses) > 0.15 {
		t.Errorf("Ndt: model %v, GC misses %v", got, gcMisses)
	}
	if float64(m.TransWritesGC) > gcMisses {
		t.Errorf("TransWritesGC %d exceeds GC misses %v", m.TransWritesGC, gcMisses)
	}
	// Eq. 13 uses the unbatched Ndt/Nmt, so it upper-bounds the measured
	// write amplification; the data-migration component lower-bounds it.
	measured := m.WriteAmplification()
	if model := p.WA(); model < measured {
		t.Errorf("model WA %v below measured %v", model, measured)
	}
	lower := 1 + (p.Ntw()+p.Nmd())/(p.Npa*p.Rw)
	if measured < lower*0.95 {
		t.Errorf("measured WA %v below component lower bound %v", measured, lower)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func opOf(write bool) trace.Op {
	if write {
		return trace.OpWrite
	}
	return trace.OpRead
}
