package ftl

import (
	"testing"
	"time"
)

func TestResponseHistogram(t *testing.T) {
	var m Metrics
	if m.ResponsePercentile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	// 90 fast (≈100 µs) + 10 slow (≈10 ms) responses.
	for i := 0; i < 90; i++ {
		m.ObserveResponse(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		m.ObserveResponse(10 * time.Millisecond)
	}
	p50 := m.ResponsePercentile(0.5)
	p99 := m.ResponsePercentile(0.99)
	if p50 < 64*time.Microsecond || p50 > 256*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈128 µs bucket", p50)
	}
	if p99 < 8*time.Millisecond || p99 > 32*time.Millisecond {
		t.Fatalf("p99 = %v, want ≈16 ms bucket", p99)
	}
	if p99 <= p50 {
		t.Fatal("p99 must exceed p50")
	}
}

func TestResponseHistogramExtremes(t *testing.T) {
	var m Metrics
	m.ObserveResponse(0)
	m.ObserveResponse(time.Hour)
	if m.RespHist[0] != 1 {
		t.Fatal("sub-microsecond response not in bucket 0")
	}
	// time.Hour = 3.6e9 µs, whose bit length is 32 → bucket 32.
	if m.RespHist[32] != 1 {
		t.Fatal("hour-long response not in bucket 32")
	}
	if p := m.ResponsePercentile(1); p <= 0 {
		t.Fatalf("p100 = %v", p)
	}
}
