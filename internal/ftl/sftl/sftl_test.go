package sftl

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/trace"
)

func deviceConfig(cacheBytes int64) ftl.Config {
	return ftl.Config{
		LogicalBytes:  16 << 20, // 4096 pages, 4 translation pages
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.15,
		CacheBytes:    cacheBytes,
	}
}

func newDevice(t *testing.T, cacheBytes int64) (*ftl.Device, *FTL) {
	t.Helper()
	tr := New(Config{CacheBytes: cacheBytes})
	d, err := ftl.NewDevice(deviceConfig(cacheBytes), tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	return d, tr
}

func wr(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpWrite}
}

func rd(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpRead}
}

func TestRunCounting(t *testing.T) {
	mk := func(ppns ...int64) []flash.PPN {
		out := make([]flash.PPN, len(ppns))
		for i, p := range ppns {
			out[i] = flash.PPN(p)
		}
		return out
	}
	cases := []struct {
		name string
		vals []flash.PPN
		want int
	}{
		{"empty", nil, 0},
		{"single", mk(5), 1},
		{"fully sequential", mk(10, 11, 12, 13), 1},
		{"fully random", mk(9, 3, 7, 1), 4},
		{"two runs", mk(1, 2, 3, 9, 10), 2},
		{"invalid entries each own run", []flash.PPN{flash.InvalidPPN, flash.InvalidPPN}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := countRuns(tc.vals); got != tc.want {
				t.Fatalf("countRuns = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestRunDeltaMatchesRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]flash.PPN, 64)
	for i := range vals {
		vals[i] = flash.PPN(rng.Intn(100))
	}
	runs := countRuns(vals)
	for step := 0; step < 2000; step++ {
		off := int32(rng.Intn(len(vals)))
		var ppn flash.PPN
		if rng.Intn(4) == 0 {
			ppn = vals[off] // no-op update
		} else {
			ppn = flash.PPN(rng.Intn(100))
		}
		runs += runDelta(vals, off, ppn)
		vals[off] = ppn
		if want := countRuns(vals); runs != want {
			t.Fatalf("step %d: incremental runs %d, recount %d", step, runs, want)
		}
	}
}

func TestSequentialMappingCompressesWell(t *testing.T) {
	// Right after format the mapping is fully sequential: a cached page
	// costs only a header + one run, so many pages fit in a small cache.
	d, tr := newDevice(t, 1024)
	arrival := int64(0)
	for v := int64(0); v < 4; v++ {
		if _, err := d.Serve(rd(arrival, v*1024)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	if got := tr.CachedPages(); got != 4 {
		t.Fatalf("cached pages = %d, want all 4 (compressed)", got)
	}
	// Whole-page caching: any other entry of a cached page hits.
	if _, err := d.Serve(rd(arrival, 555)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.Hits != 1 {
		t.Fatalf("hits = %d, want 1", m.Hits)
	}
}

func TestFullPageWritebackHasNoRead(t *testing.T) {
	// Small budget: random-PPN updates break runs, grow page costs and
	// force evictions.
	d, tr := newDevice(t, 256)
	tr.cfg.SparseThreshold = 1 // disable the dirty buffer path
	arrival := int64(0)
	// Dirty many entries of page 0 (random PPN updates break runs and grow
	// its cost). Then touch other pages to evict it.
	for i := int64(0); i < 20; i += 2 {
		if _, err := d.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	readsBefore := d.Metrics().TransReadsAT
	for v := int64(1); v < 4; v++ {
		for k := int64(0); k < 4; k++ {
			if _, err := d.Serve(wr(arrival, v*1024+k*77)); err != nil {
				t.Fatal(err)
			}
			arrival += int64(time.Millisecond)
		}
	}
	m := d.Metrics()
	if m.TransWritesAT == 0 {
		t.Fatal("no writebacks despite dirty page evictions")
	}
	// Each eviction writeback is a full-page write: reads only come from
	// loads (one per distinct page, already counted) — the writeback adds
	// none beyond the loads of the new pages.
	loads := m.TransReadsAT - readsBefore
	if loads > 3 {
		t.Fatalf("loads = %d, want ≤3 (one per new page)", loads)
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyBufferPostponesSparseWritebacks(t *testing.T) {
	d, tr := newDevice(t, 256)
	arrival := int64(0)
	// One dirty entry in page 0 (sparse), then evict it by loading others.
	if _, err := d.Serve(wr(arrival, 7)); err != nil {
		t.Fatal(err)
	}
	arrival += int64(time.Millisecond)
	for v := int64(1); v < 4; v++ {
		for k := int64(0); k < 8; k++ {
			if _, err := d.Serve(wr(arrival, v*1024+k*100)); err != nil {
				t.Fatal(err)
			}
			arrival += int64(time.Millisecond)
		}
	}
	if tr.BufferedEntries() == 0 {
		t.Fatal("sparse dirty entries not parked in the buffer")
	}
	// The buffered entry must still translate correctly (freshest value).
	if _, err := d.Serve(rd(arrival, 7)); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestBufferMergesOnReload(t *testing.T) {
	d, tr := newDevice(t, 256)
	arrival := int64(0)
	if _, err := d.Serve(wr(arrival, 7)); err != nil {
		t.Fatal(err)
	}
	arrival += int64(time.Millisecond)
	// Evict page 0 into the buffer.
	for v := int64(1); v < 4; v++ {
		for k := int64(0); k < 8; k++ {
			if _, err := d.Serve(wr(arrival, v*1024+k*100)); err != nil {
				t.Fatal(err)
			}
			arrival += int64(time.Millisecond)
		}
	}
	buffered := tr.BufferedEntries()
	if buffered == 0 {
		t.Skip("eviction went to writeback, not buffer (budget-dependent)")
	}
	// Reload page 0 via a different entry: the buffer entry must merge in.
	if _, err := d.Serve(rd(arrival, 900)); err != nil {
		t.Fatal(err)
	}
	if tr.BufferedEntries() >= buffered {
		t.Fatal("buffer not merged on page reload")
	}
	arrival += int64(time.Millisecond)
	if _, err := d.Serve(rd(arrival, 7)); err != nil {
		t.Fatal(err) // device verifies the translation
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOpsConsistency(t *testing.T) {
	for _, seed := range []int64{21, 22} {
		d, tr := newDevice(t, 2048)
		rng := rand.New(rand.NewSource(seed))
		arrival := int64(0)
		for batch := 0; batch < 15; batch++ {
			for i := 0; i < 300; i++ {
				page := int64(rng.Intn(4096))
				n := int64(1 + rng.Intn(4))
				if page+n > 4096 {
					n = 4096 - page
				}
				arrival += int64(rng.Intn(300_000))
				req := trace.Request{
					Arrival: arrival, Offset: page * 4096, Length: n * 4096,
					Op: opOf(rng.Intn(2) == 0),
				}
				if _, err := d.Serve(req); err != nil {
					t.Fatalf("seed %d batch %d op %d: %v", seed, batch, i, err)
				}
			}
			if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
		}
	}
}

func TestSnapshot(t *testing.T) {
	d, tr := newDevice(t, 4096)
	arrival := int64(0)
	for i := int64(0); i < 3; i++ {
		if _, err := d.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	s := tr.Snapshot()
	if s.DirtyEntries != 3 {
		t.Fatalf("dirty = %d, want 3", s.DirtyEntries)
	}
	if s.TPNodes != tr.CachedPages() {
		t.Fatalf("TPNodes = %d, pages = %d", s.TPNodes, tr.CachedPages())
	}
	dc := tr.DirtyCached()
	if len(dc) != 3 {
		t.Fatalf("DirtyCached = %d", len(dc))
	}
	for lpn, ppn := range dc {
		if d.Truth(lpn) != ppn {
			t.Fatalf("dirty entry %d stale", lpn)
		}
	}
}

func opOf(write bool) trace.Op {
	if write {
		return trace.OpWrite
	}
	return trace.OpRead
}
