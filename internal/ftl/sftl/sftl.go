// Package sftl implements S-FTL (Jiang et al., MSST 2011), the
// spatial-locality baseline of the TPFTL paper.
//
// S-FTL's caching object is an entire translation page, organized in a
// page-level LRU list. Cached pages are charged at their compressed size:
// runs of consecutive PPNs — the common case right after sequential writes —
// collapse to one run descriptor, so a fully sequential page costs almost
// nothing while a fully random one costs its raw size. Because the whole
// page is cached, writing back a dirty page needs no prior read (Tfw only;
// the paper notes this in §3.1).
//
// A small reserved dirty buffer postpones the replacement of sparsely
// dispersed dirty entries: when an evicted page has only a few dirty
// entries, they move to the buffer (8 B each) instead of forcing a page
// writeback; the buffer is flushed per translation page when full. The
// paper's §5.2 attributes S-FTL's low dirty-replacement probability on
// random workloads to this buffer, and its poor behaviour on sequential
// workloads to the buffer's small size.
package sftl

import (
	"sort"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/lru"
)

// Config tunes S-FTL.
type Config struct {
	// CacheBytes is the total mapping-cache budget.
	CacheBytes int64
	// DirtyBufferFraction of the budget is reserved for the dirty buffer
	// (default 1/8).
	DirtyBufferFraction float64
	// SparseThreshold: an evicted dirty page with fewer dirty entries than
	// this moves them to the dirty buffer instead of writing back
	// (default 8).
	SparseThreshold int
	// RunBytes is the charged size of one compressed run (default 8:
	// start PPN + length). PageHeaderBytes is charged per cached page
	// (default 8).
	RunBytes        int
	PageHeaderBytes int
}

// cachedPage is one cached (compressed) translation page.
type cachedPage struct {
	node  lru.Node[*cachedPage]
	vtpn  ftl.VTPN
	vals  []flash.PPN
	dirty map[int32]struct{} // offsets modified since load
	runs  int
	cost  int64
}

// FTL is the S-FTL translator. Create with New.
type FTL struct {
	cfg        Config
	pageBudget int64 // budget for cached pages
	bufBudget  int64 // budget for the dirty buffer

	pages  lru.List[*cachedPage] // MRU..LRU
	byVTPN map[ftl.VTPN]*cachedPage
	used   int64

	// Dirty buffer: entries evicted from sparse dirty pages, pending
	// writeback, grouped per translation page for batched flushes.
	buffer   map[ftl.VTPN]map[int32]flash.PPN
	buffered int

	ePerTP int
}

var _ ftl.Translator = (*FTL)(nil)
var _ ftl.Inspector = (*FTL)(nil)

// New returns an S-FTL instance.
func New(cfg Config) *FTL {
	if cfg.DirtyBufferFraction == 0 {
		cfg.DirtyBufferFraction = 0.125
	}
	if cfg.SparseThreshold == 0 {
		cfg.SparseThreshold = 8
	}
	if cfg.RunBytes == 0 {
		cfg.RunBytes = 8
	}
	if cfg.PageHeaderBytes == 0 {
		cfg.PageHeaderBytes = 8
	}
	buf := int64(float64(cfg.CacheBytes) * cfg.DirtyBufferFraction)
	if buf < int64(ftl.EntryBytesRAM) {
		buf = int64(ftl.EntryBytesRAM)
	}
	pageBudget := cfg.CacheBytes - buf
	if min := int64(cfg.PageHeaderBytes + cfg.RunBytes); pageBudget < min {
		pageBudget = min
	}
	return &FTL{
		cfg:        cfg,
		pageBudget: pageBudget,
		bufBudget:  buf,
		byVTPN:     make(map[ftl.VTPN]*cachedPage),
		buffer:     make(map[ftl.VTPN]map[int32]flash.PPN),
		ePerTP:     ftl.DefaultEntriesPerTP,
	}
}

// Name implements ftl.Translator.
func (f *FTL) Name() string { return "S-FTL" }

// BeginRequest implements ftl.Translator.
func (f *FTL) BeginRequest(first, last ftl.LPN, write bool) {}

// CachedPages returns the number of cached translation pages.
func (f *FTL) CachedPages() int { return f.pages.Len() }

// BufferedEntries returns the number of entries in the dirty buffer.
func (f *FTL) BufferedEntries() int { return f.buffered }

// UsedBytes returns the charged page-cache usage.
func (f *FTL) UsedBytes() int64 { return f.used }

// Translate implements ftl.Translator.
func (f *FTL) Translate(env ftl.Env, lpn ftl.LPN) (flash.PPN, error) {
	f.ePerTP = env.EntriesPerTP()
	v := ftl.VTPNOf(lpn, f.ePerTP)
	off := int32(ftl.OffOf(lpn, f.ePerTP))
	if p := f.byVTPN[v]; p != nil {
		env.NoteLookup(true)
		f.pages.MoveToFront(&p.node)
		return p.vals[off], nil
	}
	// The dirty buffer holds the freshest value for entries flushed out of
	// sparse pages; hitting it avoids the flash read.
	if ents := f.buffer[v]; ents != nil {
		if ppn, ok := ents[off]; ok {
			env.NoteLookup(true)
			return ppn, nil
		}
	}
	env.NoteLookup(false)
	p, err := f.loadPage(env, v)
	if err != nil {
		return flash.InvalidPPN, err
	}
	return p.vals[off], nil
}

// loadPage reads translation page v into the cache, evicting as needed.
// Unlike entry-granularity schemes, the page is installed in the cache
// BEFORE any eviction runs: once resident, GC triggered by eviction
// writebacks updates the cached copy in place, so no stale value can be
// returned (the framework's staleness discipline by a different route).
func (f *FTL) loadPage(env ftl.Env, v ftl.VTPN) (*cachedPage, error) {
	vals, err := env.ReadTP(v)
	if err != nil {
		return nil, err
	}
	// A whole-page load installs every entry of the translation page while
	// the request demanded one: the rest is prefetch, which the phase
	// attribution (obs.PhaseXlatePrefetch) classifies by.
	if pf, ok := env.(interface{ NotePrefetch(int) }); ok {
		pf.NotePrefetch(len(vals) - 1)
	}
	p := &cachedPage{
		vtpn:  v,
		vals:  make([]flash.PPN, len(vals)),
		dirty: make(map[int32]struct{}),
	}
	copy(p.vals, vals)
	p.node.Value = p
	// Merge pending dirty-buffer entries for this page so the cached copy
	// is authoritative and the buffer stays disjoint from cached pages.
	if ents := f.buffer[v]; ents != nil {
		for off, ppn := range ents {
			p.vals[off] = ppn
			p.dirty[off] = struct{}{}
		}
		f.buffered -= len(ents)
		delete(f.buffer, v)
	}
	p.runs = countRuns(p.vals)
	p.cost = f.costOf(p.runs)
	f.byVTPN[v] = p
	f.pages.PushFront(&p.node)
	f.used += p.cost
	// The exact compressed size is only known now; evict if over budget.
	for f.used > f.pageBudget && f.pages.Len() > 1 {
		if err := f.evictLRU(env); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// evictLRU evicts the least recently used cached page.
func (f *FTL) evictLRU(env ftl.Env) error {
	n := f.pages.Back()
	if n == nil {
		return nil
	}
	p := n.Value
	f.pages.Remove(n)
	delete(f.byVTPN, p.vtpn)
	f.used -= p.cost
	if len(p.dirty) == 0 {
		env.NoteReplacement(false)
		return nil
	}
	// Sparsely dirty pages park their dirty entries in the dirty buffer
	// instead of forcing a writeback: the dirty entries were not replaced
	// (they stay cached in the buffer), which is how S-FTL keeps its
	// dirty-replacement probability below DFTL's on random workloads
	// (paper §5.2(1)).
	if len(p.dirty) < f.cfg.SparseThreshold {
		env.NoteReplacement(false)
		return f.bufferEntries(env, p)
	}
	env.NoteReplacement(true)
	return f.writeBackFullPage(env, p)
}

// writeBackFullPage writes the entire cached page: no prior read is needed
// (S-FTL's full-page writeback, Tfw only). Updates are emitted in ascending
// offset order: p.dirty is a map, and letting its iteration order leak into
// the update list made otherwise identical runs diverge.
func (f *FTL) writeBackFullPage(env ftl.Env, p *cachedPage) error {
	updates := make([]ftl.EntryUpdate, 0, len(p.dirty))
	numLPNs := env.NumLPNs()
	base := int64(p.vtpn) * int64(f.ePerTP)
	for off := range p.dirty {
		if base+int64(off) >= numLPNs {
			continue
		}
		updates = append(updates, ftl.EntryUpdate{Off: int(off), PPN: p.vals[off]})
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].Off < updates[j].Off })
	env.NoteBatchWriteback(len(updates) - 1)
	return env.WriteTP(p.vtpn, updates, true)
}

// bufferEntries parks p's dirty entries in the dirty buffer, flushing the
// buffer if it overflows.
func (f *FTL) bufferEntries(env ftl.Env, p *cachedPage) error {
	ents := f.buffer[p.vtpn]
	if ents == nil {
		ents = make(map[int32]flash.PPN)
		f.buffer[p.vtpn] = ents
	}
	for off := range p.dirty {
		if _, ok := ents[off]; !ok {
			f.buffered++
		}
		ents[off] = p.vals[off]
	}
	for int64(f.buffered)*int64(ftl.EntryBytesRAM) > f.bufBudget {
		if err := f.flushLargestGroup(env); err != nil {
			return err
		}
	}
	return nil
}

// flushLargestGroup writes back the translation page with the most buffered
// entries in one batched read-modify-write. Size ties break toward the
// smallest vtpn and updates flush in ascending offset order: both choices
// were previously left to map iteration order, which made the flush — and
// through it physical page allocation — differ between identical runs.
func (f *FTL) flushLargestGroup(env ftl.Env) error {
	bestV := ftl.VTPN(-1)
	best := -1
	//ftl:orderinsensitive argmax with deterministic tie-break toward the smallest vtpn
	for v, ents := range f.buffer {
		if len(ents) > best || (len(ents) == best && v < bestV) {
			best = len(ents)
			bestV = v
		}
	}
	if best < 0 {
		return nil
	}
	ents := f.buffer[bestV]
	updates := make([]ftl.EntryUpdate, 0, len(ents))
	for off, ppn := range ents {
		updates = append(updates, ftl.EntryUpdate{Off: int(off), PPN: ppn})
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].Off < updates[j].Off })
	f.buffered -= len(ents)
	delete(f.buffer, bestV)
	env.NoteBatchWriteback(len(updates) - 1)
	return env.WriteTP(bestV, updates, false)
}

// Update implements ftl.Translator.
func (f *FTL) Update(env ftl.Env, lpn ftl.LPN, ppn flash.PPN) error {
	f.ePerTP = env.EntriesPerTP()
	v := ftl.VTPNOf(lpn, f.ePerTP)
	off := int32(ftl.OffOf(lpn, f.ePerTP))
	p := f.byVTPN[v]
	if p == nil {
		// The write path populates the page via Translate first; a
		// standalone Update loads it.
		var err error
		if p, err = f.loadPage(env, v); err != nil {
			return err
		}
	}
	f.setEntry(p, off, ppn)
	f.pages.MoveToFront(&p.node)
	// A PPN update can break runs and grow the compressed size.
	for f.used > f.pageBudget && f.pages.Len() > 1 {
		if err := f.evictLRU(env); err != nil {
			return err
		}
	}
	return nil
}

// setEntry updates one slot and incrementally maintains the run count.
func (f *FTL) setEntry(p *cachedPage, off int32, ppn flash.PPN) {
	old := p.vals[off]
	if old == ppn {
		p.dirty[off] = struct{}{}
		return
	}
	p.runs += runDelta(p.vals, off, ppn)
	p.vals[off] = ppn
	p.dirty[off] = struct{}{}
	f.used -= p.cost
	p.cost = f.costOf(p.runs)
	f.used += p.cost
}

// Discard implements ftl.Translator: the trimmed page's cached slot is
// cleared in RAM without any writeback. The slot is set to InvalidPPN and
// its dirty mark removed — the device rewrites the translation page itself,
// so nothing here may later write the dead mapping (or an Invalid entry)
// back to flash. Any pending dirty-buffer copy is dropped the same way.
func (f *FTL) Discard(lpn ftl.LPN) {
	v := ftl.VTPNOf(lpn, f.ePerTP)
	off := int32(ftl.OffOf(lpn, f.ePerTP))
	if p := f.byVTPN[v]; p != nil {
		old := p.vals[off]
		if old != flash.InvalidPPN {
			p.runs += runDelta(p.vals, off, flash.InvalidPPN)
			p.vals[off] = flash.InvalidPPN
			f.used -= p.cost
			p.cost = f.costOf(p.runs)
			f.used += p.cost
		}
		delete(p.dirty, off)
	}
	if ents := f.buffer[v]; ents != nil {
		if _, ok := ents[off]; ok {
			delete(ents, off)
			f.buffered--
			if len(ents) == 0 {
				delete(f.buffer, v)
			}
		}
	}
}

// FlushDirty implements ftl.Translator: a host flush barrier writes back
// every dirty cached page (full-page write, no prior read) and every dirty
// buffer group, in ascending VTPN order for determinism.
func (f *FTL) FlushDirty(env ftl.Env) error {
	f.ePerTP = env.EntriesPerTP()
	dirtyPages := make([]*cachedPage, 0, f.pages.Len())
	for n := f.pages.Front(); n != nil; n = n.Next() {
		if p := n.Value; len(p.dirty) > 0 {
			dirtyPages = append(dirtyPages, p)
		}
	}
	sort.Slice(dirtyPages, func(i, j int) bool { return dirtyPages[i].vtpn < dirtyPages[j].vtpn })
	numLPNs := env.NumLPNs()
	for _, p := range dirtyPages {
		// Capture the updates and clear the dirty marks BEFORE the write: a
		// GC triggered by it refreshes this cached page in place and must
		// leave its marks dirty again, not have them wiped afterwards.
		base := int64(p.vtpn) * int64(f.ePerTP)
		updates := make([]ftl.EntryUpdate, 0, len(p.dirty))
		for off := range p.dirty {
			if base+int64(off) >= numLPNs {
				continue
			}
			updates = append(updates, ftl.EntryUpdate{Off: int(off), PPN: p.vals[off]})
		}
		ftl.SortUpdates(updates)
		p.dirty = make(map[int32]struct{})
		env.NoteBatchWriteback(len(updates) - 1)
		if err := env.WriteTP(p.vtpn, updates, true); err != nil {
			return err
		}
	}
	for _, v := range ftl.SortedVTPNs(f.buffer) {
		ents := f.buffer[v]
		updates := make([]ftl.EntryUpdate, 0, len(ents))
		for off, ppn := range ents {
			updates = append(updates, ftl.EntryUpdate{Off: int(off), PPN: ppn})
		}
		ftl.SortUpdates(updates)
		f.buffered -= len(ents)
		delete(f.buffer, v)
		env.NoteBatchWriteback(len(updates) - 1)
		if err := env.WriteTP(v, updates, false); err != nil {
			return err
		}
	}
	return nil
}

// OnGCDataMoves implements ftl.Translator.
func (f *FTL) OnGCDataMoves(env ftl.Env, moves []ftl.GCMove) error {
	f.ePerTP = env.EntriesPerTP()
	pending := map[ftl.VTPN][]ftl.EntryUpdate{}
	for _, mv := range moves {
		v := ftl.VTPNOf(mv.LPN, f.ePerTP)
		off := int32(ftl.OffOf(mv.LPN, f.ePerTP))
		if p := f.byVTPN[v]; p != nil {
			f.setEntry(p, off, mv.NewPPN)
			env.NoteGCMapUpdate(true)
			continue
		}
		if ents := f.buffer[v]; ents != nil {
			if _, ok := ents[off]; ok {
				ents[off] = mv.NewPPN
				env.NoteGCMapUpdate(true)
				continue
			}
		}
		env.NoteGCMapUpdate(false)
		pending[v] = append(pending[v], ftl.EntryUpdate{Off: int(off), PPN: mv.NewPPN})
	}
	// Flush in ascending vtpn order: map iteration order would permute the
	// WriteTP sequence — and with it physical page allocation and die
	// assignment — making otherwise identical runs schedule differently
	// (same fix as TPFTL's OnGCDataMoves).
	vtpns := make([]ftl.VTPN, 0, len(pending))
	for v := range pending {
		vtpns = append(vtpns, v)
	}
	sort.Slice(vtpns, func(i, j int) bool { return vtpns[i] < vtpns[j] })
	for _, v := range vtpns {
		if err := env.WriteTP(v, pending[v], false); err != nil {
			return err
		}
	}
	// Updates may have grown compressed sizes past the budget.
	for f.used > f.pageBudget && f.pages.Len() > 1 {
		if err := f.evictLRU(env); err != nil {
			return err
		}
	}
	return nil
}

func (f *FTL) costOf(runs int) int64 {
	c := int64(f.cfg.PageHeaderBytes) + int64(runs)*int64(f.cfg.RunBytes)
	if raw := int64(f.cfg.PageHeaderBytes) + int64(f.ePerTP)*ftl.EntryBytesInFlash; c > raw {
		c = raw
	}
	return c
}

// countRuns returns the number of maximal consecutive-PPN runs in vals.
func countRuns(vals []flash.PPN) int {
	if len(vals) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(vals); i++ {
		if !consec(vals[i-1], vals[i]) {
			runs++
		}
	}
	return runs
}

// consec reports whether b directly follows a (both valid).
func consec(a, b flash.PPN) bool {
	return a.Valid() && b.Valid() && b == a+1
}

// runDelta returns the change in run count when vals[off] becomes ppn.
func runDelta(vals []flash.PPN, off int32, ppn flash.PPN) int {
	joins := func(x flash.PPN) int {
		j := 0
		if off > 0 && consec(vals[off-1], x) {
			j++
		}
		if int(off) < len(vals)-1 && consec(x, vals[off+1]) {
			j++
		}
		return j
	}
	// Each join with a neighbour removes one run boundary.
	return joins(vals[off]) - joins(ppn)
}

// Snapshot implements ftl.Inspector.
func (f *FTL) Snapshot() ftl.CacheSnapshot {
	s := ftl.CacheSnapshot{
		TPNodes:      f.pages.Len(),
		UsedBytes:    f.used + int64(f.buffered)*int64(ftl.EntryBytesRAM),
		DirtyPerPage: make(map[ftl.VTPN]int, f.pages.Len()),
	}
	for n := f.pages.Front(); n != nil; n = n.Next() {
		p := n.Value
		s.Entries += len(p.vals)
		s.DirtyEntries += len(p.dirty)
		s.DirtyPerPage[p.vtpn] = len(p.dirty)
	}
	for v, ents := range f.buffer {
		s.Entries += len(ents)
		s.DirtyEntries += len(ents)
		s.DirtyPerPage[v] += len(ents)
	}
	return s
}

// DirtyCached returns the LPN→PPN map of dirty cached entries (cached-page
// modifications plus the dirty buffer) for Device.CheckConsistency.
func (f *FTL) DirtyCached() map[ftl.LPN]flash.PPN {
	out := make(map[ftl.LPN]flash.PPN)
	for v, p := range f.byVTPN {
		for off := range p.dirty {
			out[ftl.LPNAt(v, int(off), f.ePerTP)] = p.vals[off]
		}
	}
	for v, ents := range f.buffer {
		for off, ppn := range ents {
			out[ftl.LPNAt(v, int(off), f.ePerTP)] = ppn
		}
	}
	return out
}
