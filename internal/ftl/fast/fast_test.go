package fast

import (
	"math/rand"
	"testing"

	"repro/internal/ftl"
	"repro/internal/ftl/hybrid"
	"repro/internal/trace"
)

func newDevice(t *testing.T, logBlocks int) *Device {
	t.Helper()
	d, err := New(Config{
		Device: ftl.Config{
			LogicalBytes:  4 << 20, // 1024 pages, 32 logical blocks
			PageSize:      4096,
			PagesPerBlock: 32,
			OverProvision: 0.15,
		},
		LogBlocks: logBlocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func wr(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpWrite}
}

func rd(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpRead}
}

func TestSharedLogAbsorbsScatteredUpdates(t *testing.T) {
	d := newDevice(t, 4)
	arrival := int64(0)
	// First writes to 16 different logical blocks, then one update each:
	// BAST would need 16 log blocks; FAST's shared log absorbs all 16
	// updates without a single merge.
	for lb := int64(0); lb < 16; lb++ {
		if _, err := d.Serve(wr(arrival, lb*32)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	for lb := int64(0); lb < 16; lb++ {
		if _, err := d.Serve(wr(arrival, lb*32)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	m := d.Metrics()
	if m.FlashErases != 0 {
		t.Fatalf("erases = %d, want 0 (shared log absorbs scattered updates)", m.FlashErases)
	}
	if d.LogBlocksInUse() != 1 {
		t.Fatalf("log blocks = %d, want 1 (16 updates fit one block)", d.LogBlocksInUse())
	}
	// Reads return the newest version.
	for lb := int64(0); lb < 16; lb++ {
		if _, err := d.Serve(rd(arrival, lb*32)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCascade(t *testing.T) {
	d := newDevice(t, 1) // single log block: filling it forces a cascade
	arrival := int64(0)
	// Fill 4 logical blocks, then update one page of each, 8 rounds: the
	// 32-entry log block fills with pages of 4 different logical blocks.
	for lb := int64(0); lb < 4; lb++ {
		for p := int64(0); p < 32; p++ {
			if _, err := d.Serve(wr(arrival, lb*32+p)); err != nil {
				t.Fatal(err)
			}
			arrival += int64(1e6)
		}
	}
	for round := int64(0); round < 8; round++ {
		for lb := int64(0); lb < 4; lb++ {
			if _, err := d.Serve(wr(arrival, lb*32+round)); err != nil {
				t.Fatal(err)
			}
			arrival += int64(1e6)
		}
	}
	// The 33rd update forces the cascade: all 4 logical blocks merge.
	if _, err := d.Serve(wr(arrival, 0)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.GCDataCollections == 0 {
		t.Fatal("no log merge")
	}
	// The cascade merged 4 logical blocks: ≥ 4 data-block erases + the log.
	if m.FlashErases < 5 {
		t.Fatalf("erases = %d, want ≥5 (4 merges + log block)", m.FlashErases)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestFASTvsBASTOnScatteredUpdates(t *testing.T) {
	// Scattered single-page updates across many logical blocks: FAST's
	// shared log must trigger far fewer merges than BAST's per-block logs.
	mkReqs := func() []trace.Request {
		rng := rand.New(rand.NewSource(9))
		out := make([]trace.Request, 3000)
		arrival := int64(0)
		for i := range out {
			arrival += int64(1e6)
			out[i] = wr(arrival, int64(rng.Intn(1024)))
		}
		return out
	}

	fd := newDevice(t, 4)
	if _, err := fd.Run(mkReqs()); err != nil {
		t.Fatal(err)
	}
	bd, err := hybrid.New(hybrid.Config{
		Device: ftl.Config{
			LogicalBytes: 4 << 20, PageSize: 4096, PagesPerBlock: 32, OverProvision: 0.15,
		},
		LogBlocks: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bd.Run(mkReqs()); err != nil {
		t.Fatal(err)
	}
	fm, bm := fd.Metrics(), bd.Metrics()
	if fm.GCDataMigrations >= bm.GCDataMigrations {
		t.Fatalf("FAST migrated %d pages, BAST %d — shared log should win on scattered updates",
			fm.GCDataMigrations, bm.GCDataMigrations)
	}
	if err := fd.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWorkloadConsistency(t *testing.T) {
	d := newDevice(t, 6)
	rng := rand.New(rand.NewSource(11))
	arrival := int64(0)
	for i := 0; i < 6000; i++ {
		p := int64(rng.Intn(1024))
		arrival += int64(1e6)
		var req trace.Request
		if rng.Intn(4) == 0 {
			req = rd(arrival, p)
		} else {
			req = wr(arrival, p)
		}
		if _, err := d.Serve(req); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMappingFootprint(t *testing.T) {
	d := newDevice(t, 8)
	blockTable := int64(32 * 4)
	pageTable := int64(1024 * 8)
	got := d.MappingTableBytes()
	if got <= blockTable || got >= pageTable {
		t.Fatalf("FAST table %d not between block %d and page %d", got, blockTable, pageTable)
	}
}

func TestRejectsInvalid(t *testing.T) {
	d := newDevice(t, 2)
	if _, err := d.Serve(wr(0, 1024)); err == nil {
		t.Fatal("beyond capacity accepted")
	}
}
