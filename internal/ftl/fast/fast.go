// Package fast implements a FAST-style fully-associative log-buffer hybrid
// FTL (Lee et al., "A log buffer-based flash translation layer using
// fully-associative sector translation", TECS 2007 — the paper's citation
// [23]).
//
// Where BAST dedicates one log block per logical block (internal/ftl/hybrid),
// FAST shares its log-block pool among all logical blocks: updates append to
// the current log block regardless of origin, so a log block fills before a
// merge is forced even under widely scattered writes. The price is merge
// cascades: reclaiming the oldest log block requires a full merge of every
// logical block that still has a live page in it. FAST therefore trades
// BAST's frequent cheap merges for rare expensive ones — the §2.1 hybrid
// design space in one more point.
package fast

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/trace"
)

// Config parameterizes the FAST device.
type Config struct {
	// Device geometry; see ftl.Config.
	Device ftl.Config
	// LogBlocks is the shared log pool size (default 8).
	LogBlocks int
}

// logLoc locates the newest log copy of a logical page.
type logLoc struct {
	blk flash.BlockID
	off int
}

// logBlock is one shared, fully-associative log block.
type logBlock struct {
	blk  flash.BlockID
	next int // append pointer
	live int // pages in this block still referenced by logMap
}

// Device is a standalone FAST-mapped SSD simulator.
type Device struct {
	cfg  Config
	chip *flash.Chip

	blockMap []flash.BlockID // logical block → physical data block, -1
	logs     []*logBlock     // FIFO: logs[0] is the merge victim
	logMap   map[int64]logLoc
	free     []flash.BlockID

	logicalBlocks int
	ppb           int

	clock time.Duration
	m     ftl.Metrics

	truth []flash.PPN
}

// New builds a FAST device.
func New(cfg Config) (*Device, error) {
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	if cfg.LogBlocks == 0 {
		cfg.LogBlocks = 8
	}
	full := ftl.DefaultConfig(cfg.Device.LogicalBytes)
	if cfg.Device.PageSize != 0 {
		full.PageSize = cfg.Device.PageSize
	}
	if cfg.Device.PagesPerBlock != 0 {
		full.PagesPerBlock = cfg.Device.PagesPerBlock
	}
	if cfg.Device.OverProvision != 0 {
		full.OverProvision = cfg.Device.OverProvision
	}
	cfg.Device = full
	ppb := full.PagesPerBlock
	logicalPages := full.LogicalPages()
	logicalBlocks := int((logicalPages + int64(ppb) - 1) / int64(ppb))
	phys := logicalBlocks + cfg.LogBlocks + int(float64(logicalBlocks)*full.OverProvision)
	if phys < logicalBlocks+cfg.LogBlocks+2 {
		phys = logicalBlocks + cfg.LogBlocks + 2
	}
	chip, err := flash.New(flash.Config{
		PageSize:        full.PageSize,
		PagesPerBlock:   ppb,
		NumBlocks:       phys,
		ReadLatency:     full.ReadLatency,
		WriteLatency:    full.WriteLatency,
		EraseLatency:    full.EraseLatency,
		AllowOutOfOrder: true, // data blocks keep fixed offsets
	})
	if err != nil {
		return nil, err
	}
	d := &Device{
		cfg:           cfg,
		chip:          chip,
		blockMap:      make([]flash.BlockID, logicalBlocks),
		logMap:        make(map[int64]logLoc),
		logicalBlocks: logicalBlocks,
		ppb:           ppb,
		truth:         make([]flash.PPN, logicalPages),
	}
	for i := range d.blockMap {
		d.blockMap[i] = -1
	}
	for i := range d.truth {
		d.truth[i] = flash.InvalidPPN
	}
	for b := 0; b < phys; b++ {
		d.free = append(d.free, flash.BlockID(b))
	}
	return d, nil
}

// MappingTableBytes returns the RAM footprint: the block map plus the
// fully-associative page map over the log pool.
func (d *Device) MappingTableBytes() int64 {
	return int64(d.logicalBlocks)*4 + int64(d.cfg.LogBlocks)*int64(d.ppb)*8
}

// Metrics returns the accumulated counters.
func (d *Device) Metrics() ftl.Metrics { return d.m }

// LogBlocksInUse returns the current log pool occupancy.
func (d *Device) LogBlocksInUse() int { return len(d.logs) }

// Serve executes one request FCFS.
func (d *Device) Serve(req trace.Request) (time.Duration, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	if req.End() > d.cfg.Device.LogicalBytes {
		return 0, fmt.Errorf("fast: request beyond capacity")
	}
	arrival := time.Duration(req.Arrival)
	start := d.clock
	if arrival > start {
		start = arrival
	}
	var acc time.Duration
	switch req.Op {
	case trace.OpRead, trace.OpWrite, trace.OpWriteFUA:
		first, last := req.Pages(d.cfg.Device.PageSize)
		for lpn := first; lpn <= last; lpn++ {
			var lat time.Duration
			var err error
			if req.IsWrite() {
				d.m.PageWrites++
				lat, err = d.writePage(lpn)
			} else {
				d.m.PageReads++
				lat, err = d.readPage(lpn)
			}
			if err != nil {
				return 0, err
			}
			acc += lat
		}
	case trace.OpTrim, trace.OpFlush:
		// TRIM is advisory and this pre-TRIM design ignores it (the data
		// stays until overwritten, which the spec permits); every write is
		// already synchronous, so a flush barrier has nothing to drain.
	default:
		return 0, fmt.Errorf("fast: unhandled request op %v", req.Op)
	}
	d.clock = start + acc
	resp := d.clock - arrival
	d.m.Requests++
	d.m.ServiceTime += acc
	d.m.ResponseTime += resp
	d.m.QueueTime += start - arrival
	d.m.ObserveResponse(resp)
	if ftl.SanitizerEnabled {
		if err := ftl.SanitizeCheck("fast", d.CheckConsistency); err != nil {
			return 0, err
		}
	}
	return resp, nil
}

// Run serves every request.
func (d *Device) Run(reqs []trace.Request) (ftl.Metrics, error) {
	for i := range reqs {
		if _, err := d.Serve(reqs[i]); err != nil {
			return d.m, fmt.Errorf("fast: request %d: %w", i, err)
		}
	}
	return d.m, nil
}

// locate returns the newest physical page of lpn.
func (d *Device) locate(lpn int64) (flash.PPN, bool) {
	if loc, ok := d.logMap[lpn]; ok {
		return d.chip.PageAt(loc.blk, loc.off), true
	}
	lb, off := int(lpn/int64(d.ppb)), int(lpn%int64(d.ppb))
	if phys := d.blockMap[lb]; phys >= 0 {
		p := d.chip.PageAt(phys, off)
		if d.chip.State(p) == flash.PageValid {
			return p, true
		}
	}
	return flash.InvalidPPN, false
}

func (d *Device) readPage(lpn int64) (time.Duration, error) {
	ppn, ok := d.locate(lpn)
	if !ok {
		if d.truth[lpn].Valid() {
			return 0, fmt.Errorf("fast: lost mapping for lpn %d", lpn)
		}
		d.m.UnmappedReads++
		return 0, nil
	}
	if ppn != d.truth[lpn] {
		return 0, fmt.Errorf("fast: mistranslated lpn %d: %d vs truth %d", lpn, ppn, d.truth[lpn])
	}
	lat, err := d.chip.Read(ppn)
	if err != nil {
		return 0, err
	}
	d.m.FlashReads++
	return lat, nil
}

func (d *Device) writePage(lpn int64) (time.Duration, error) {
	lb, off := int(lpn/int64(d.ppb)), int(lpn%int64(d.ppb))

	// First write with a free data slot and no log version: in place.
	if _, logged := d.logMap[lpn]; !logged {
		if d.blockMap[lb] < 0 {
			blk, err := d.allocBlock()
			if err != nil {
				return 0, err
			}
			d.blockMap[lb] = blk
		}
		p := d.chip.PageAt(d.blockMap[lb], off)
		if d.chip.State(p) == flash.PageFree {
			lat, err := d.chip.Program(p, flash.Meta{Kind: flash.KindData, Tag: lpn})
			if err != nil {
				return 0, err
			}
			d.m.FlashPrograms++
			d.truth[lpn] = p
			return lat, nil
		}
	}

	// Update: append to the shared log pool, fully associatively.
	var acc time.Duration
	lg := d.tailLog()
	if lg == nil || lg.next >= d.ppb {
		if len(d.logs) >= d.cfg.LogBlocks {
			lat, err := d.mergeOldestLog()
			acc += lat
			if err != nil {
				return 0, err
			}
		}
		blk, err := d.allocBlock()
		if err != nil {
			return 0, err
		}
		lg = &logBlock{blk: blk}
		d.logs = append(d.logs, lg)
	}
	old, hadOld := d.locate(lpn)
	p := d.chip.PageAt(lg.blk, lg.next)
	lat, err := d.chip.Program(p, flash.Meta{Kind: flash.KindData, Tag: lpn})
	if err != nil {
		return 0, err
	}
	acc += lat
	d.m.FlashPrograms++
	if prev, ok := d.logMap[lpn]; ok {
		d.logOf(prev.blk).live--
	}
	d.logMap[lpn] = logLoc{blk: lg.blk, off: lg.next}
	lg.next++
	lg.live++
	if hadOld {
		if err := d.chip.Invalidate(old); err != nil {
			return 0, err
		}
	}
	d.truth[lpn] = p
	return acc, nil
}

func (d *Device) tailLog() *logBlock {
	if len(d.logs) == 0 {
		return nil
	}
	return d.logs[len(d.logs)-1]
}

func (d *Device) logOf(blk flash.BlockID) *logBlock {
	for _, lg := range d.logs {
		if lg.blk == blk {
			return lg
		}
	}
	return nil
}

// mergeOldestLog reclaims logs[0]: every logical block with a live page in
// it is fully merged — FAST's merge cascade.
func (d *Device) mergeOldestLog() (time.Duration, error) {
	victim := d.logs[0]
	var acc time.Duration
	// Collect the logical blocks whose newest version lives in the victim.
	lbs := map[int]bool{}
	for lpn, loc := range d.logMap {
		if loc.blk == victim.blk {
			lbs[int(lpn/int64(d.ppb))] = true
		}
	}
	// Merge in ascending logical-block order: each merge allocates pages
	// and issues flash ops, so map order here would permute the schedule.
	order := make([]int, 0, len(lbs))
	for lb := range lbs {
		order = append(order, lb)
	}
	sort.Ints(order)
	for _, lb := range order {
		lat, err := d.mergeLogicalBlock(lb)
		acc += lat
		if err != nil {
			return acc, err
		}
	}
	if victim.live != 0 {
		return acc, fmt.Errorf("fast: victim log block still has %d live pages after cascade", victim.live)
	}
	lat, err := d.retireBlock(victim.blk)
	acc += lat
	if err != nil {
		return acc, err
	}
	d.logs = d.logs[1:]
	d.m.GCDataCollections++
	return acc, nil
}

// mergeLogicalBlock gathers the newest version of every page of lb — from
// its data block and from any log block — into a fresh data block.
func (d *Device) mergeLogicalBlock(lb int) (time.Duration, error) {
	newBlk, err := d.allocBlock()
	if err != nil {
		return 0, err
	}
	var acc time.Duration
	old := d.blockMap[lb]
	base := int64(lb) * int64(d.ppb)
	for off := 0; off < d.ppb; off++ {
		lpn := base + int64(off)
		src, ok := d.locate(lpn)
		if !ok {
			continue
		}
		lat, err := d.chip.Read(src)
		if err != nil {
			return acc, err
		}
		d.m.FlashReads++
		acc += lat
		dst := d.chip.PageAt(newBlk, off)
		lat, err = d.chip.Program(dst, flash.Meta{Kind: flash.KindData, Tag: lpn})
		if err != nil {
			return acc, err
		}
		d.m.FlashPrograms++
		d.m.GCDataMigrations++
		acc += lat
		if err := d.chip.Invalidate(src); err != nil {
			return acc, err
		}
		if loc, ok := d.logMap[lpn]; ok {
			d.logOf(loc.blk).live--
			delete(d.logMap, lpn)
		}
		d.truth[lpn] = dst
	}
	if old >= 0 {
		lat, err := d.retireBlock(old)
		acc += lat
		if err != nil {
			return acc, err
		}
	}
	d.blockMap[lb] = newBlk
	return acc, nil
}

// retireBlock invalidates any remaining valid pages of blk and erases it.
func (d *Device) retireBlock(blk flash.BlockID) (time.Duration, error) {
	for i := 0; i < d.ppb; i++ {
		p := d.chip.PageAt(blk, i)
		if d.chip.State(p) == flash.PageValid {
			if err := d.chip.Invalidate(p); err != nil {
				return 0, err
			}
		}
	}
	lat, err := d.chip.Erase(blk)
	if err != nil {
		return 0, err
	}
	d.m.FlashErases++
	d.free = append(d.free, blk)
	return lat, nil
}

func (d *Device) allocBlock() (flash.BlockID, error) {
	if len(d.free) == 0 {
		return -1, fmt.Errorf("fast: out of free blocks")
	}
	b := d.free[len(d.free)-1]
	d.free = d.free[:len(d.free)-1]
	return b, nil
}

// CheckConsistency verifies the truth table against the chip.
func (d *Device) CheckConsistency() error {
	if err := d.chip.CheckInvariants(); err != nil {
		return err
	}
	for lpn, ppn := range d.truth {
		if !ppn.Valid() {
			continue
		}
		if st := d.chip.State(ppn); st != flash.PageValid {
			return fmt.Errorf("fast: truth[%d]=%d in state %v", lpn, ppn, st)
		}
		if got, ok := d.locate(int64(lpn)); !ok || got != ppn {
			return fmt.Errorf("fast: locate(%d) = %d,%v, truth %d", lpn, got, ok, ppn)
		}
	}
	//ftl:orderinsensitive read-only invariant check; any violating entry is a valid witness
	for lpn, loc := range d.logMap {
		p := d.chip.PageAt(loc.blk, loc.off)
		if d.chip.State(p) != flash.PageValid {
			return fmt.Errorf("fast: logMap[%d] points at %v page", lpn, d.chip.State(p))
		}
	}
	return nil
}
