package optimal

import (
	"math/rand"
	"testing"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/trace"
)

func newDevice(t *testing.T) (*ftl.Device, *FTL) {
	t.Helper()
	cfg := ftl.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.15,
		CacheBytes:    1024,
	}
	tr := New(cfg.LogicalPages())
	d, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	tr.Warm(d.Persisted)
	return d, tr
}

func TestEveryLookupHits(t *testing.T) {
	d, _ := newDevice(t)
	arrival := int64(0)
	for p := int64(0); p < 100; p++ {
		req := trace.Request{Arrival: arrival, Offset: p * 4096, Length: 4096, Op: opOf(p%2 == 0)}
		if _, err := d.Serve(req); err != nil {
			t.Fatal(err)
		}
		arrival += int64(1e6)
	}
	m := d.Metrics()
	if m.Hr() != 1 {
		t.Fatalf("Hr = %v", m.Hr())
	}
	if m.TransReads() != 0 || m.TransWrites() != 0 {
		t.Fatal("optimal FTL touched translation pages")
	}
	if m.Replacements != 0 {
		t.Fatal("optimal FTL replaced entries")
	}
}

func TestWarmLoadsTable(t *testing.T) {
	tr := New(8)
	if ppn, _ := tr.Translate(nilEnv{}, 3); ppn.Valid() {
		t.Fatal("unwarmed table must be unmapped")
	}
	tr.Warm(func(lpn ftl.LPN) flash.PPN { return flash.PPN(lpn * 10) })
	ppn, err := tr.Translate(nilEnv{}, 3)
	if err != nil || ppn != 30 {
		t.Fatalf("Translate = %v, %v", ppn, err)
	}
}

// nilEnv satisfies the small part of ftl.Env the optimal FTL touches.
type nilEnv struct{}

func (nilEnv) EntriesPerTP() int                               { return 1024 }
func (nilEnv) NumTPs() int                                     { return 1 }
func (nilEnv) NumLPNs() int64                                  { return 1024 }
func (nilEnv) ReadTP(ftl.VTPN) ([]flash.PPN, error)            { return nil, nil }
func (nilEnv) WriteTP(ftl.VTPN, []ftl.EntryUpdate, bool) error { return nil }
func (nilEnv) NoteLookup(bool)                                 {}
func (nilEnv) NoteReplacement(bool)                            {}
func (nilEnv) NoteGCMapUpdate(bool)                            {}
func (nilEnv) NoteBatchWriteback(int)                          {}

func TestGCMovesAreAllHits(t *testing.T) {
	d, _ := newDevice(t)
	arrival := int64(0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		p := int64(rng.Intn(2000)) // random overwrites leave victims partly valid
		req := trace.Request{Arrival: arrival, Offset: p * 4096, Length: 4096, Op: trace.OpWrite}
		if _, err := d.Serve(req); err != nil {
			t.Fatal(err)
		}
		arrival += int64(50_000)
	}
	m := d.Metrics()
	if m.GCMapUpdates == 0 {
		t.Fatal("no GC map updates")
	}
	if m.Hgcr() != 1 {
		t.Fatalf("Hgcr = %v, want 1", m.Hgcr())
	}
	if m.TransWritesGC != 0 {
		t.Fatal("optimal FTL wrote translation pages during GC")
	}
}

func TestSnapshot(t *testing.T) {
	tr := New(100)
	s := tr.Snapshot()
	if s.Entries != 100 || s.UsedBytes != 800 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestName(t *testing.T) {
	if New(1).Name() != "Optimal" {
		t.Fatal("wrong name")
	}
}

func opOf(write bool) trace.Op {
	if write {
		return trace.OpWrite
	}
	return trace.OpRead
}
