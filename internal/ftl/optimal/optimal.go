// Package optimal implements the paper's "Optimal" FTL: a page-level FTL
// whose entire mapping table is cached in RAM. Address translation never
// touches flash, so it lower-bounds the overhead any demand-based scheme can
// achieve (§5.1). Mappings are kept consistent in the in-flash translation
// pages lazily, matching the paper's accounting in which the optimal FTL
// incurs no translation page operations.
package optimal

import (
	"repro/internal/flash"
	"repro/internal/ftl"
)

// FTL is the optimal translator. Create with New.
type FTL struct {
	table []flash.PPN
}

var _ ftl.Translator = (*FTL)(nil)

// New returns an optimal FTL for a device with numLPNs logical pages.
func New(numLPNs int64) *FTL {
	t := make([]flash.PPN, numLPNs)
	for i := range t {
		t[i] = flash.InvalidPPN
	}
	return &FTL{table: t}
}

// Name implements ftl.Translator.
func (f *FTL) Name() string { return "Optimal" }

// Translate implements ftl.Translator. Every lookup hits.
func (f *FTL) Translate(env ftl.Env, lpn ftl.LPN) (flash.PPN, error) {
	env.NoteLookup(true)
	return f.table[lpn], nil
}

// Update implements ftl.Translator.
func (f *FTL) Update(env ftl.Env, lpn ftl.LPN, ppn flash.PPN) error {
	f.table[lpn] = ppn
	return nil
}

// BeginRequest implements ftl.Translator.
func (f *FTL) BeginRequest(first, last ftl.LPN, write bool) {}

// Discard implements ftl.Translator: the trimmed page's resident entry is
// cleared in RAM; the device rewrites the translation page itself.
func (f *FTL) Discard(lpn ftl.LPN) {
	f.table[lpn] = flash.InvalidPPN
}

// FlushDirty implements ftl.Translator: the optimal FTL's accounting incurs
// no translation-page operations, so a host flush barrier is free.
func (f *FTL) FlushDirty(env ftl.Env) error { return nil }

// OnGCDataMoves implements ftl.Translator: all entries are resident, so
// every update is a GC hit with zero flash cost.
func (f *FTL) OnGCDataMoves(env ftl.Env, moves []ftl.GCMove) error {
	for _, mv := range moves {
		f.table[mv.LPN] = mv.NewPPN
		env.NoteGCMapUpdate(true)
	}
	return nil
}

// Warm pre-loads the table from the device's persisted state; call after
// Format so that reads of formatted pages translate correctly.
func (f *FTL) Warm(persisted func(ftl.LPN) flash.PPN) {
	for lpn := range f.table {
		f.table[lpn] = persisted(ftl.LPN(lpn))
	}
}

// Snapshot implements ftl.Inspector. The optimal FTL caches everything and
// writes nothing back, so the snapshot reports the full table as clean.
func (f *FTL) Snapshot() ftl.CacheSnapshot {
	return ftl.CacheSnapshot{
		Entries:   len(f.table),
		TPNodes:   0,
		UsedBytes: int64(len(f.table)) * ftl.EntryBytesRAM,
	}
}
