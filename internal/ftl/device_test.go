package ftl_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/ftl/dftl"
	"repro/internal/ftl/optimal"
	"repro/internal/trace"
)

// testConfig returns a small device: 16 MB logical (4096 pages, 4
// translation pages), 32-page blocks.
func testConfig() ftl.Config {
	return ftl.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.15,
		CacheBytes:    512, // 64 DFTL entries
	}
}

func newOptimalDevice(t *testing.T, cfg ftl.Config) (*ftl.Device, *optimal.FTL) {
	t.Helper()
	tr := optimal.New(cfg.LogicalPages())
	d, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	tr.Warm(d.Persisted)
	return d, tr
}

func newDFTLDevice(t *testing.T, cfg ftl.Config) (*ftl.Device, *dftl.FTL) {
	t.Helper()
	tr := dftl.New(dftl.Config{CacheBytes: cfg.CacheBytes})
	d, err := ftl.NewDevice(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	return d, tr
}

func wr(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpWrite}
}

func rd(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpRead}
}

func TestConfigDefaults(t *testing.T) {
	if got := ftl.DefaultCacheBytes(512 << 20); got != 8<<10 {
		t.Errorf("cache for 512MB = %d, want 8KB", got)
	}
	if got := ftl.DefaultCacheBytes(16 << 30); got != 256<<10 {
		t.Errorf("cache for 16GB = %d, want 256KB", got)
	}
	cfg := ftl.DefaultConfig(512 << 20)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.LogicalPages() != 131072 {
		t.Errorf("logical pages = %d", cfg.LogicalPages())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []ftl.Config{
		{LogicalBytes: 0},
		{LogicalBytes: -4096},
		{LogicalBytes: 4097}, // not page aligned
		{LogicalBytes: 16 << 20, OverProvision: -0.1},
		{LogicalBytes: 16 << 20, CacheBytes: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
		if _, err := ftl.NewDevice(cfg, optimal.New(1)); err == nil {
			t.Errorf("NewDevice accepted config %d", i)
		}
	}
}

func TestFormatLaysOutDevice(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	if !d.Formatted() {
		t.Fatal("not formatted")
	}
	// Every logical page must be mapped and persisted identically.
	for lpn := ftl.LPN(0); lpn < ftl.LPN(d.Config().LogicalPages()); lpn++ {
		if !d.Truth(lpn).Valid() {
			t.Fatalf("lpn %d unmapped after format", lpn)
		}
		if d.Truth(lpn) != d.Persisted(lpn) {
			t.Fatalf("lpn %d: truth %d != persist %d", lpn, d.Truth(lpn), d.Persisted(lpn))
		}
	}
	// Every translation page must exist.
	for v := 0; v < d.NumTPs(); v++ {
		if !d.GTDEntry(ftl.VTPN(v)).Valid() {
			t.Fatalf("vtpn %d missing after format", v)
		}
	}
	// Format is excluded from metrics.
	if m := d.Metrics(); m.FlashPrograms != 0 || m.PageWrites != 0 {
		t.Fatalf("format leaked into metrics: %+v", m)
	}
	if err := d.Format(); err == nil {
		t.Fatal("double format succeeded")
	}
}

func TestOptimalReadWrite(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	if _, err := d.Serve(wr(0, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Serve(rd(1, 7)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.PageReads != 1 || m.PageWrites != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.Hr() != 1.0 {
		t.Fatalf("optimal hit ratio = %v", m.Hr())
	}
	if m.TransReads() != 0 || m.TransWrites() != 0 {
		t.Fatal("optimal FTL performed translation page I/O")
	}
}

func TestOptimalServiceTime(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	resp, err := d.Serve(rd(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if want := 25 * time.Microsecond; resp != want {
		t.Fatalf("read response = %v, want %v (no GC, no translation)", resp, want)
	}
	resp, err = d.Serve(wr(int64(resp), 3))
	if err != nil {
		t.Fatal(err)
	}
	if want := 200 * time.Microsecond; resp != want {
		t.Fatalf("write response = %v, want %v", resp, want)
	}
}

func TestQueueingDelay(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	// Two reads arriving at the same instant: the second queues behind the
	// first.
	r1, err := d.Serve(rd(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.Serve(rd(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r2 != 2*r1 {
		t.Fatalf("second response = %v, want %v (queued)", r2, 2*r1)
	}
	m := d.Metrics()
	if m.QueueTime != r1 {
		t.Fatalf("QueueTime = %v, want %v", m.QueueTime, r1)
	}
	// A late arrival does not queue.
	r3, err := d.Serve(rd(int64(10*time.Millisecond), 3))
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatalf("idle response = %v, want %v", r3, r1)
	}
}

func TestRequestValidationAtDevice(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	if _, err := d.Serve(trace.Request{Offset: -1, Length: 4096}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := d.Serve(trace.Request{Offset: 16 << 20, Length: 4096}); err == nil {
		t.Fatal("request beyond capacity accepted")
	}
}

func TestDFTLMissLoadsFromFlash(t *testing.T) {
	d, _ := newDFTLDevice(t, testConfig())
	if _, err := d.Serve(rd(0, 100)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.Hits != 0 || m.Lookups != 1 {
		t.Fatalf("lookups %d hits %d, want 1/0", m.Lookups, m.Hits)
	}
	if m.TransReadsAT != 1 {
		t.Fatalf("TransReadsAT = %d, want 1", m.TransReadsAT)
	}
	// Second access to the same page hits.
	if _, err := d.Serve(rd(1, 100)); err != nil {
		t.Fatal(err)
	}
	m = d.Metrics()
	if m.Hits != 1 {
		t.Fatalf("hits = %d, want 1", m.Hits)
	}
	if m.TransReadsAT != 1 {
		t.Fatalf("TransReadsAT = %d, want still 1", m.TransReadsAT)
	}
}

func TestDFTLDirtyEvictionWritesBack(t *testing.T) {
	cfg := testConfig()
	cfg.CacheBytes = 8 * 8 // 8 entries
	d, tr := newDFTLDevice(t, cfg)
	// Dirty 8 distinct pages, then touch 8 more to force dirty evictions.
	arrival := int64(0)
	for i := int64(0); i < 8; i++ {
		if _, err := d.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("cache holds %d entries, want 8", got)
	}
	for i := int64(100); i < 108; i++ {
		if _, err := d.Serve(rd(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	m := d.Metrics()
	if m.Replacements == 0 {
		t.Fatal("no replacements recorded")
	}
	if m.DirtyReplaced == 0 {
		t.Fatal("no dirty replacements recorded")
	}
	if m.TransWritesAT == 0 {
		t.Fatal("no translation page writes during AT phase")
	}
	// Persisted state must now agree with truth for written-back entries.
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestDFTLReadAfterWriteThroughEviction(t *testing.T) {
	cfg := testConfig()
	cfg.CacheBytes = 8 * 8
	d, tr := newDFTLDevice(t, cfg)
	arrival := int64(0)
	// Write page 5, evict it by touching many others, then read it back:
	// the translation must come back from flash correctly.
	if _, err := d.Serve(wr(arrival, 5)); err != nil {
		t.Fatal(err)
	}
	for i := int64(200); i < 220; i++ {
		arrival += int64(time.Millisecond)
		if _, err := d.Serve(rd(arrival, i)); err != nil {
			t.Fatal(err)
		}
	}
	arrival += int64(time.Millisecond)
	if _, err := d.Serve(rd(arrival, 5)); err != nil {
		t.Fatal(err) // Serve verifies translation against truth internally
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	cfg := testConfig()
	d, tr := newDFTLDevice(t, cfg)
	// Overwrite a small hot set repeatedly: far more page writes than the
	// over-provisioned space, forcing many GC cycles.
	rng := rand.New(rand.NewSource(1))
	arrival := int64(0)
	for i := 0; i < 20000; i++ {
		page := int64(rng.Intn(512))
		arrival += int64(50 * time.Microsecond)
		if _, err := d.Serve(wr(arrival, page)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	m := d.Metrics()
	if m.FlashErases == 0 {
		t.Fatal("no erases despite heavy overwrite traffic")
	}
	if m.GCDataCollections == 0 {
		t.Fatal("no data GC collections")
	}
	if m.WriteAmplification() < 1 {
		t.Fatalf("WA = %v < 1", m.WriteAmplification())
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
	// All pages still readable and correctly mapped.
	for p := int64(0); p < 512; p++ {
		arrival += int64(50 * time.Microsecond)
		if _, err := d.Serve(rd(arrival, p)); err != nil {
			t.Fatalf("read %d after GC: %v", p, err)
		}
	}
}

func TestGCTranslationBlocks(t *testing.T) {
	cfg := testConfig()
	cfg.CacheBytes = 16 * 8 // tiny cache → many dirty evictions → many TP writes
	d, tr := newDFTLDevice(t, cfg)
	rng := rand.New(rand.NewSource(2))
	arrival := int64(0)
	for i := 0; i < 30000; i++ {
		page := int64(rng.Intn(4096))
		arrival += int64(50 * time.Microsecond)
		if _, err := d.Serve(wr(arrival, page)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	m := d.Metrics()
	if m.GCTransCollections == 0 {
		t.Fatal("no translation block collections despite heavy TP churn")
	}
	if m.GCTransMigrations == 0 && m.Vt() != 0 {
		t.Fatal("translation collections recorded but no migrations/valid stats")
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalVsDFTLAgreeOnReads(t *testing.T) {
	cfgA := testConfig()
	dOpt, _ := newOptimalDevice(t, cfgA)
	dDftl, _ := newDFTLDevice(t, testConfig())

	rng := rand.New(rand.NewSource(3))
	arrival := int64(0)
	for i := 0; i < 5000; i++ {
		page := int64(rng.Intn(4096))
		write := rng.Intn(3) != 0
		arrival += int64(100 * time.Microsecond)
		var req trace.Request
		if write {
			req = wr(arrival, page)
		} else {
			req = rd(arrival, page)
		}
		if _, err := dOpt.Serve(req); err != nil {
			t.Fatalf("optimal: %v", err)
		}
		if _, err := dDftl.Serve(req); err != nil {
			t.Fatalf("dftl: %v", err)
		}
	}
	// Both devices internally verify translations against their ground
	// truth; surviving 5000 mixed ops on both means the schemes agree.
	mo, md := dOpt.Metrics(), dDftl.Metrics()
	if mo.PageWrites != md.PageWrites || mo.PageReads != md.PageReads {
		t.Fatalf("page access counts diverge: %+v vs %+v", mo, md)
	}
	if md.WriteAmplification() < mo.WriteAmplification() {
		t.Fatalf("DFTL WA %v below optimal %v", md.WriteAmplification(), mo.WriteAmplification())
	}
	if md.AvgResponse() < mo.AvgResponse() {
		t.Fatalf("DFTL response %v below optimal %v", md.AvgResponse(), mo.AvgResponse())
	}
}

func TestMultiPageRequestSplitting(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	// A 5-page write.
	req := trace.Request{Arrival: 0, Offset: 3 * 4096, Length: 5 * 4096, Op: trace.OpWrite}
	if _, err := d.Serve(req); err != nil {
		t.Fatal(err)
	}
	if m := d.Metrics(); m.PageWrites != 5 {
		t.Fatalf("PageWrites = %d, want 5", m.PageWrites)
	}
	// Unaligned 1-byte read straddling nothing: 1 page access.
	req = trace.Request{Arrival: 1e9, Offset: 4097, Length: 1, Op: trace.OpRead}
	if _, err := d.Serve(req); err != nil {
		t.Fatal(err)
	}
	if m := d.Metrics(); m.PageReads != 1 {
		t.Fatalf("PageReads = %d, want 1", m.PageReads)
	}
}

func TestSamplingHook(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	var samples []int64
	d.SampleEvery = 10
	d.OnSample = func(n int64) { samples = append(samples, n) }
	arrival := int64(0)
	for i := int64(0); i < 35; i++ {
		arrival += int64(time.Millisecond)
		if _, err := d.Serve(rd(arrival, i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %v, want 3 firings", samples)
	}
	for i, s := range samples {
		if s != int64(10*(i+1)) {
			t.Fatalf("sample %d at %d accesses", i, s)
		}
	}
}

func TestMetricsDerived(t *testing.T) {
	m := ftl.Metrics{
		PageReads: 25, PageWrites: 75,
		Lookups: 100, Hits: 80,
		Replacements: 10, DirtyReplaced: 4,
		GCMapUpdates: 10, GCMapHits: 5,
		GCDataCollections: 2, GCDataValidSum: 20,
		GCTransCollections: 4, GCTransValidSum: 8,
		TransWritesAT: 5, TransWritesGC: 5, GCTransMigrations: 5, GCDataMigrations: 10,
		Requests: 4, ResponseTime: 400, ServiceTime: 200,
	}
	if m.Hr() != 0.8 {
		t.Errorf("Hr = %v", m.Hr())
	}
	if m.Prd() != 0.4 {
		t.Errorf("Prd = %v", m.Prd())
	}
	if m.Hgcr() != 0.5 {
		t.Errorf("Hgcr = %v", m.Hgcr())
	}
	if m.Rw() != 0.75 {
		t.Errorf("Rw = %v", m.Rw())
	}
	if m.Vd() != 10 {
		t.Errorf("Vd = %v", m.Vd())
	}
	if m.Vt() != 2 {
		t.Errorf("Vt = %v", m.Vt())
	}
	// WA = (75 + 5+5+5+10)/75
	if got, want := m.WriteAmplification(), 100.0/75.0; got != want {
		t.Errorf("WA = %v, want %v", got, want)
	}
	if m.AvgResponse() != 100 {
		t.Errorf("AvgResponse = %v", m.AvgResponse())
	}
	if m.AvgService() != 50 {
		t.Errorf("AvgService = %v", m.AvgService())
	}
	var zero ftl.Metrics
	if zero.Hr() != 0 || zero.WriteAmplification() != 0 || zero.AvgResponse() != 0 {
		t.Error("zero metrics must not divide by zero")
	}
}

// TestRandomOpsConsistency is the core property test: after every batch of
// random operations against a DFTL device, the truth/persist/dirty-cache
// invariant and all chip invariants must hold.
func TestRandomOpsConsistency(t *testing.T) {
	for _, seed := range []int64{5, 6, 7} {
		cfg := testConfig()
		cfg.CacheBytes = 24 * 8
		d, tr := newDFTLDevice(t, cfg)
		rng := rand.New(rand.NewSource(seed))
		arrival := int64(0)
		for batch := 0; batch < 20; batch++ {
			for i := 0; i < 250; i++ {
				page := int64(rng.Intn(4096))
				arrival += int64(rng.Intn(200_000))
				n := int64(1 + rng.Intn(4))
				if page+n > 4096 {
					n = 4096 - page
				}
				req := trace.Request{
					Arrival: arrival, Offset: page * 4096, Length: n * 4096,
					Op: opOf(rng.Intn(2) == 0),
				}
				if _, err := d.Serve(req); err != nil {
					t.Fatalf("seed %d batch %d op %d: %v", seed, batch, i, err)
				}
			}
			if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
		}
	}
}

func TestFlashErrorPropagates(t *testing.T) {
	d, _ := newOptimalDevice(t, testConfig())
	boom := &flash.OpError{Op: "read", Page: 1, Msg: "injected"}
	d.Chip().FailNext("read", boom)
	if _, err := d.Serve(rd(0, 1)); err == nil {
		t.Fatal("injected flash error did not propagate")
	}
}

func TestDFTLSnapshot(t *testing.T) {
	cfg := testConfig()
	d, tr := newDFTLDevice(t, cfg)
	arrival := int64(0)
	for i := int64(0); i < 10; i++ {
		if _, err := d.Serve(wr(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	for i := int64(2000); i < 2005; i++ {
		if _, err := d.Serve(rd(arrival, i)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	s := tr.Snapshot()
	if s.Entries != 15 {
		t.Fatalf("snapshot entries = %d, want 15", s.Entries)
	}
	if s.DirtyEntries != 10 {
		t.Fatalf("dirty = %d, want 10", s.DirtyEntries)
	}
	// Pages 0..9 share vtpn 0; 2000..2004 share vtpn 1.
	if s.TPNodes != 2 {
		t.Fatalf("TPNodes = %d, want 2", s.TPNodes)
	}
	if s.DirtyPerPage[0] != 10 || s.DirtyPerPage[1] != 0 {
		t.Fatalf("DirtyPerPage = %v", s.DirtyPerPage)
	}
	if s.UsedBytes != 15*8 {
		t.Fatalf("UsedBytes = %d", s.UsedBytes)
	}
}

func opOf(write bool) trace.Op {
	if write {
		return trace.OpWrite
	}
	return trace.OpRead
}
