package zftl

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ftl"
	"repro/internal/trace"
)

func newDevice(t *testing.T, cacheBytes int64) (*ftl.Device, *FTL) {
	t.Helper()
	tr := New(Config{CacheBytes: cacheBytes, ZoneTPs: 2})
	d, err := ftl.NewDevice(ftl.Config{
		LogicalBytes:  16 << 20, // 4096 pages → 4 TPs → 2 zones
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.15,
		CacheBytes:    cacheBytes,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	return d, tr
}

func wr(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpWrite}
}

func rd(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpRead}
}

func TestZoneSwitchOnCrossZoneAccess(t *testing.T) {
	d, tr := newDevice(t, 8<<10)
	if _, err := d.Serve(rd(0, 10)); err != nil { // zone 0
		t.Fatal(err)
	}
	if tr.ActiveZone() != 0 || tr.ZoneSwitches() != 1 {
		t.Fatalf("zone %d switches %d", tr.ActiveZone(), tr.ZoneSwitches())
	}
	if _, err := d.Serve(rd(1e6, 3000)); err != nil { // zone 1 (TPs 2-3)
		t.Fatal(err)
	}
	if tr.ActiveZone() != 1 || tr.ZoneSwitches() != 2 {
		t.Fatalf("zone %d switches %d", tr.ActiveZone(), tr.ZoneSwitches())
	}
	// Back to zone 0: another cumbersome switch.
	if _, err := d.Serve(rd(2e6, 11)); err != nil {
		t.Fatal(err)
	}
	if tr.ZoneSwitches() != 3 {
		t.Fatalf("switches = %d", tr.ZoneSwitches())
	}
}

func TestInZoneAccessesHitTier2(t *testing.T) {
	d, _ := newDevice(t, 8<<10)
	if _, err := d.Serve(rd(0, 10)); err != nil {
		t.Fatal(err)
	}
	reads := d.Metrics().TransReadsAT
	// Same translation page: must hit tier 2.
	if _, err := d.Serve(rd(1e6, 11)); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.TransReadsAT != reads {
		t.Fatal("in-page access read flash again")
	}
	if m.Hits != 1 {
		t.Fatalf("hits = %d", m.Hits)
	}
}

func TestZoneSwitchFlushesDirty(t *testing.T) {
	d, tr := newDevice(t, 8<<10)
	arrival := int64(0)
	for p := int64(0); p < 5; p++ { // dirty entries in zone 0
		if _, err := d.Serve(wr(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	writesBefore := d.Metrics().TransWritesAT
	if _, err := d.Serve(rd(arrival, 3000)); err != nil { // switch to zone 1
		t.Fatal(err)
	}
	if got := d.Metrics().TransWritesAT; got <= writesBefore {
		t.Fatal("zone switch did not flush dirty entries")
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestTier1BatchEviction(t *testing.T) {
	tr := New(Config{CacheBytes: 8 << 10, ZoneTPs: 2, Tier1Entries: 4})
	d, err := ftl.NewDevice(ftl.Config{
		LogicalBytes: 16 << 20, PageSize: 4096, PagesPerBlock: 32,
		OverProvision: 0.15, CacheBytes: 8 << 10,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	// Updates land in tier 1 when their page is not in tier 2. Force that
	// by updating pages of a zone while tier 2 holds other pages... easier:
	// Update directly (standalone).
	for i := int64(0); i < 6; i++ {
		if err := tr.Update(d, ftl.LPN(i), d.Truth(ftl.LPN(i))); err != nil {
			t.Fatal(err)
		}
	}
	if d.Metrics().TransWritesAT == 0 {
		t.Fatal("tier-1 overflow did not batch-evict")
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOpsConsistency(t *testing.T) {
	d, tr := newDevice(t, 8<<10)
	rng := rand.New(rand.NewSource(8))
	arrival := int64(0)
	for batch := 0; batch < 10; batch++ {
		for i := 0; i < 300; i++ {
			p := int64(rng.Intn(4096))
			arrival += int64(rng.Intn(300_000))
			var req trace.Request
			if rng.Intn(2) == 0 {
				req = rd(arrival, p)
			} else {
				req = wr(arrival, p)
			}
			if _, err := d.Serve(req); err != nil {
				t.Fatalf("batch %d op %d: %v", batch, i, err)
			}
		}
		if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
}

func TestName(t *testing.T) {
	if New(Config{}).Name() != "ZFTL" {
		t.Fatal("name")
	}
}
