// Package zftl implements ZFTL (Mingbang et al., ICCT 2011), the zone-based
// demand FTL the paper's §2.2 discusses.
//
// ZFTL partitions the logical space into zones and caches mapping
// information only for the recently accessed zone: within the active zone,
// translation pages are loaded on demand into the second-tier cache (whole
// pages), while a small first-tier area accumulates dirty entries and
// evicts them in batches. An access outside the active zone triggers a zone
// switch: every dirty entry of the old zone is flushed (batched per
// translation page) and the tier caches are dropped. The paper's critique —
// "Zone switches are cumbersome and incur significant overhead" — falls out
// directly: workloads hopping between zones pay repeated flush/reload
// cycles.
package zftl

import (
	"repro/internal/flash"
	"repro/internal/ftl"
)

// Config tunes ZFTL.
type Config struct {
	// CacheBytes is the mapping-cache budget; it bounds the number of
	// second-tier translation pages (raw size each).
	CacheBytes int64
	// ZoneTPs is the zone size in translation pages (default 8, i.e.
	// 32 MB zones with 4 KB pages).
	ZoneTPs int
	// Tier1Entries is the dirty-entry area size (default 64 entries).
	Tier1Entries int
}

// tier2Page is a cached translation page of the active zone.
type tier2Page struct {
	vals  []flash.PPN
	dirty map[int32]struct{}
}

// FTL is the ZFTL translator. Create with New.
type FTL struct {
	cfg      Config
	tier2Cap int

	zone  int // active zone, -1 initially
	tier2 map[ftl.VTPN]*tier2Page
	order []ftl.VTPN // FIFO of loaded pages for tier-2 eviction
	tier1 map[ftl.LPN]flash.PPN

	switches int64
	ePerTP   int
}

var _ ftl.Translator = (*FTL)(nil)

// New returns a ZFTL instance.
func New(cfg Config) *FTL {
	if cfg.ZoneTPs == 0 {
		cfg.ZoneTPs = 8
	}
	if cfg.Tier1Entries == 0 {
		cfg.Tier1Entries = 64
	}
	tier2Cap := int(cfg.CacheBytes / (ftl.DefaultPageBytes + 8))
	if tier2Cap < 1 {
		tier2Cap = 1
	}
	if tier2Cap > cfg.ZoneTPs {
		tier2Cap = cfg.ZoneTPs
	}
	return &FTL{
		cfg:      cfg,
		tier2Cap: tier2Cap,
		zone:     -1,
		tier2:    make(map[ftl.VTPN]*tier2Page),
		tier1:    make(map[ftl.LPN]flash.PPN),
		ePerTP:   ftl.DefaultEntriesPerTP,
	}
}

// Name implements ftl.Translator.
func (f *FTL) Name() string { return "ZFTL" }

// BeginRequest implements ftl.Translator.
func (f *FTL) BeginRequest(first, last ftl.LPN, write bool) {}

// ZoneSwitches returns the number of zone switches performed.
func (f *FTL) ZoneSwitches() int64 { return f.switches }

// ActiveZone returns the current zone (-1 before the first access).
func (f *FTL) ActiveZone() int { return f.zone }

func (f *FTL) zoneOf(v ftl.VTPN) int { return int(v) / f.cfg.ZoneTPs }

// Translate implements ftl.Translator.
func (f *FTL) Translate(env ftl.Env, lpn ftl.LPN) (flash.PPN, error) {
	f.ePerTP = env.EntriesPerTP()
	v := ftl.VTPNOf(lpn, f.ePerTP)
	off := int32(ftl.OffOf(lpn, f.ePerTP))

	// Tier 1 holds the freshest values regardless of zone.
	if ppn, ok := f.tier1[lpn]; ok {
		env.NoteLookup(true)
		return ppn, nil
	}
	if f.zoneOf(v) != f.zone {
		env.NoteLookup(false)
		if err := f.switchZone(env, f.zoneOf(v)); err != nil {
			return flash.InvalidPPN, err
		}
		p, err := f.loadTier2(env, v)
		if err != nil {
			return flash.InvalidPPN, err
		}
		return p.vals[off], nil
	}
	if p, ok := f.tier2[v]; ok {
		env.NoteLookup(true)
		return p.vals[off], nil
	}
	env.NoteLookup(false)
	p, err := f.loadTier2(env, v)
	if err != nil {
		return flash.InvalidPPN, err
	}
	return p.vals[off], nil
}

// switchZone flushes the old zone's dirty state and activates the new zone.
// The caches are dropped BEFORE the flash writes: a GC triggered by a flush
// must see an empty cache (and update persisted state directly), not park
// fresh values in structures about to be discarded.
func (f *FTL) switchZone(env ftl.Env, zone int) error {
	pending := map[ftl.VTPN][]ftl.EntryUpdate{}
	for lpn, ppn := range f.tier1 {
		v := ftl.VTPNOf(lpn, f.ePerTP)
		pending[v] = append(pending[v], ftl.EntryUpdate{Off: ftl.OffOf(lpn, f.ePerTP), PPN: ppn})
	}
	for v, p := range f.tier2 {
		// Collect per page and sort by offset so the tier-2 portion of a
		// page's updates does not carry map iteration order. Tier-1
		// entries stay ahead of tier-2 ones: on an offset collision the
		// cached page is the fresher copy and must apply last.
		ups := make([]ftl.EntryUpdate, 0, len(p.dirty))
		for off := range p.dirty {
			ups = append(ups, ftl.EntryUpdate{Off: int(off), PPN: p.vals[off]})
		}
		ftl.SortUpdates(ups)
		pending[v] = append(pending[v], ups...)
	}
	f.tier1 = make(map[ftl.LPN]flash.PPN)
	f.tier2 = make(map[ftl.VTPN]*tier2Page)
	f.order = f.order[:0]
	f.zone = zone
	f.switches++
	for _, v := range ftl.SortedVTPNs(pending) {
		ups := pending[v]
		env.NoteBatchWriteback(len(ups) - 1)
		if err := env.WriteTP(v, ups, false); err != nil {
			return err
		}
	}
	return nil
}

// loadTier2 reads translation page v (must be in the active zone) into the
// second tier, evicting FIFO.
func (f *FTL) loadTier2(env ftl.Env, v ftl.VTPN) (*tier2Page, error) {
	for len(f.tier2) >= f.tier2Cap {
		victim := f.order[0]
		f.order = f.order[1:]
		p := f.tier2[victim]
		if p == nil {
			continue
		}
		env.NoteReplacement(len(p.dirty) > 0)
		// Unlink before the writeback so a GC triggered by the flush
		// updates persisted state directly instead of this dropped page.
		delete(f.tier2, victim)
		if len(p.dirty) > 0 {
			ups := make([]ftl.EntryUpdate, 0, len(p.dirty))
			for off := range p.dirty {
				ups = append(ups, ftl.EntryUpdate{Off: int(off), PPN: p.vals[off]})
			}
			ftl.SortUpdates(ups)
			env.NoteBatchWriteback(len(ups) - 1)
			if err := env.WriteTP(victim, ups, true); err != nil {
				return nil, err
			}
		}
	}
	vals, err := env.ReadTP(v)
	if err != nil {
		return nil, err
	}
	// Tier-2 caches the whole translation page for one demanded entry; the
	// remainder counts as prefetched for the phase attribution.
	if pf, ok := env.(interface{ NotePrefetch(int) }); ok {
		pf.NotePrefetch(len(vals) - 1)
	}
	p := &tier2Page{vals: make([]flash.PPN, len(vals)), dirty: make(map[int32]struct{})}
	copy(p.vals, vals)
	// Fold in any tier-1 entries for this page (they are newer).
	base := ftl.LPNAt(v, 0, f.ePerTP)
	for off := 0; off < f.ePerTP; off++ {
		if ppn, ok := f.tier1[base+ftl.LPN(off)]; ok {
			p.vals[off] = ppn
			p.dirty[int32(off)] = struct{}{}
			delete(f.tier1, base+ftl.LPN(off))
		}
	}
	f.tier2[v] = p
	f.order = append(f.order, v)
	return p, nil
}

// Update implements ftl.Translator: new mappings land in the page if cached
// or the tier-1 dirty area, which evicts in batches when full.
func (f *FTL) Update(env ftl.Env, lpn ftl.LPN, ppn flash.PPN) error {
	f.ePerTP = env.EntriesPerTP()
	v := ftl.VTPNOf(lpn, f.ePerTP)
	off := int32(ftl.OffOf(lpn, f.ePerTP))
	if p, ok := f.tier2[v]; ok {
		p.vals[off] = ppn
		p.dirty[off] = struct{}{}
		return nil
	}
	f.tier1[lpn] = ppn
	if len(f.tier1) > f.cfg.Tier1Entries {
		return f.evictTier1Batch(env)
	}
	return nil
}

// evictTier1Batch flushes the translation page with the most tier-1 entries
// (ZFTL's batch eviction).
func (f *FTL) evictTier1Batch(env ftl.Env) error {
	groups := map[ftl.VTPN][]ftl.LPN{}
	for lpn := range f.tier1 {
		v := ftl.VTPNOf(lpn, f.ePerTP)
		groups[v] = append(groups[v], lpn)
	}
	var bestV ftl.VTPN
	best := -1
	// Size ties break toward the smallest vtpn: left to map iteration
	// order, which page evicts on a tie would differ between identical
	// runs.
	//ftl:orderinsensitive argmax with deterministic tie-break toward the smallest vtpn
	for v, lpns := range groups {
		if len(lpns) > best || (len(lpns) == best && v < bestV) {
			best, bestV = len(lpns), v
		}
	}
	if best < 0 {
		return nil
	}
	ups := make([]ftl.EntryUpdate, 0, best)
	for _, lpn := range groups[bestV] {
		ups = append(ups, ftl.EntryUpdate{Off: ftl.OffOf(lpn, f.ePerTP), PPN: f.tier1[lpn]})
		delete(f.tier1, lpn)
		env.NoteReplacement(true)
	}
	ftl.SortUpdates(ups)
	env.NoteBatchWriteback(len(ups) - 1)
	return env.WriteTP(bestV, ups, false)
}

// Discard implements ftl.Translator: drop the trimmed page's tier-1 entry
// and clear its tier-2 slot in RAM (InvalidPPN, dirty mark removed) so no
// later flush writes the dead mapping back; the device rewrites the
// translation page itself as part of the discard.
func (f *FTL) Discard(lpn ftl.LPN) {
	delete(f.tier1, lpn)
	v := ftl.VTPNOf(lpn, f.ePerTP)
	if p, ok := f.tier2[v]; ok {
		off := int32(ftl.OffOf(lpn, f.ePerTP))
		p.vals[off] = flash.InvalidPPN
		delete(p.dirty, off)
	}
}

// FlushDirty implements ftl.Translator: a host flush barrier writes every
// dirty entry of both tiers back, batched per translation page in ascending
// VTPN order, without dropping the caches (unlike a zone switch). Each
// page's updates are captured immediately before its own WriteTP (which
// applies them before any GC it triggers), so a GC run mid-flush always
// sees — and can refresh — the entries still awaiting their turn.
func (f *FTL) FlushDirty(env ftl.Env) error {
	f.ePerTP = env.EntriesPerTP()
	dirtyVTPNs := map[ftl.VTPN]struct{}{}
	for lpn := range f.tier1 {
		dirtyVTPNs[ftl.VTPNOf(lpn, f.ePerTP)] = struct{}{}
	}
	for v, p := range f.tier2 {
		if len(p.dirty) > 0 {
			dirtyVTPNs[v] = struct{}{}
		}
	}
	for _, v := range ftl.SortedVTPNs(dirtyVTPNs) {
		var ups []ftl.EntryUpdate
		base := ftl.LPNAt(v, 0, f.ePerTP)
		for off := 0; off < f.ePerTP; off++ {
			if ppn, ok := f.tier1[base+ftl.LPN(off)]; ok {
				ups = append(ups, ftl.EntryUpdate{Off: off, PPN: ppn})
				delete(f.tier1, base+ftl.LPN(off))
			}
		}
		if p, ok := f.tier2[v]; ok {
			for off := range p.dirty {
				ups = append(ups, ftl.EntryUpdate{Off: int(off), PPN: p.vals[off]})
			}
			p.dirty = make(map[int32]struct{})
		}
		if len(ups) == 0 {
			continue
		}
		ftl.SortUpdates(ups)
		env.NoteBatchWriteback(len(ups) - 1)
		if err := env.WriteTP(v, ups, false); err != nil {
			return err
		}
	}
	return nil
}

// OnGCDataMoves implements ftl.Translator.
func (f *FTL) OnGCDataMoves(env ftl.Env, moves []ftl.GCMove) error {
	f.ePerTP = env.EntriesPerTP()
	pending := map[ftl.VTPN][]ftl.EntryUpdate{}
	for _, mv := range moves {
		v := ftl.VTPNOf(mv.LPN, f.ePerTP)
		off := int32(ftl.OffOf(mv.LPN, f.ePerTP))
		if p, ok := f.tier2[v]; ok {
			p.vals[off] = mv.NewPPN
			p.dirty[off] = struct{}{}
			env.NoteGCMapUpdate(true)
			continue
		}
		if _, ok := f.tier1[mv.LPN]; ok {
			f.tier1[mv.LPN] = mv.NewPPN
			env.NoteGCMapUpdate(true)
			continue
		}
		env.NoteGCMapUpdate(false)
		pending[v] = append(pending[v], ftl.EntryUpdate{Off: int(off), PPN: mv.NewPPN})
	}
	for _, v := range ftl.SortedVTPNs(pending) {
		if err := env.WriteTP(v, pending[v], false); err != nil {
			return err
		}
	}
	return nil
}

// DirtyCached returns dirty entries for Device.CheckConsistency.
func (f *FTL) DirtyCached() map[ftl.LPN]flash.PPN {
	out := make(map[ftl.LPN]flash.PPN)
	for lpn, ppn := range f.tier1 {
		out[lpn] = ppn
	}
	for v, p := range f.tier2 {
		for off := range p.dirty {
			out[ftl.LPNAt(v, int(off), f.ePerTP)] = p.vals[off]
		}
	}
	return out
}
