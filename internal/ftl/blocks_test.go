package ftl

import (
	"math/rand"
	"testing"

	"repro/internal/flash"
)

// TestVictimHeapMatchesBruteForce randomly programs and invalidates pages
// and checks that popVictim always returns a block with the maximum invalid
// count among reclaimable full blocks.
func TestVictimHeapMatchesBruteForce(t *testing.T) {
	cfg := flash.DefaultConfig(32)
	cfg.PagesPerBlock = 16
	chip, err := flash.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bm := newBlockMgr(chip, TPStriped)
	rng := rand.New(rand.NewSource(1))

	var live []flash.PPN
	bruteMax := func() int {
		max := 0
		for b := 0; b < cfg.NumBlocks; b++ {
			blk := flash.BlockID(b)
			if bm.isFrontier(blk) || bm.kinds[blk] == blockFree {
				continue
			}
			if chip.WritePtr(blk) < cfg.PagesPerBlock {
				continue
			}
			if inv := cfg.PagesPerBlock - chip.ValidCount(blk); inv > max {
				max = inv
			}
		}
		return max
	}

	for step := 0; step < 4000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // program a page
			if bm.freeCount() < 2 {
				break
			}
			ppn, err := bm.alloc(blockData)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := chip.Program(ppn, flash.Meta{Kind: flash.KindData, Tag: int64(step)}); err != nil {
				t.Fatal(err)
			}
			live = append(live, ppn)
		case 5, 6, 7, 8: // invalidate a random live page
			if len(live) == 0 {
				break
			}
			i := rng.Intn(len(live))
			if err := bm.invalidate(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		case 9: // pop a victim and verify greediness, then erase it
			want := bruteMax()
			got := bm.popVictim()
			if got < 0 {
				if want > 0 {
					t.Fatalf("step %d: popVictim returned none, brute force found %d", step, want)
				}
				break
			}
			inv := cfg.PagesPerBlock - chip.ValidCount(got)
			if inv != want {
				t.Fatalf("step %d: victim has %d invalid, best is %d", step, inv, want)
			}
			// Erase it like GC would: drop valid pages, erase, release.
			for off := 0; off < cfg.PagesPerBlock; off++ {
				p := chip.PageAt(got, off)
				if chip.State(p) == flash.PageValid {
					if err := chip.Invalidate(p); err != nil {
						t.Fatal(err)
					}
					for j, lp := range live {
						if lp == p {
							live = append(live[:j], live[j+1:]...)
							break
						}
					}
				}
			}
			if _, err := chip.Erase(got); err != nil {
				t.Fatal(err)
			}
			bm.release(got)
		}
	}
}
