package ftl

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// populateMetrics fills every field of m with a distinct nonzero value via
// reflection, so a field Merge forgot stays zero and is caught by equality.
// It fails the test on any field whose kind it does not know how to fill:
// adding a field of a new shape to Metrics must come with teaching both this
// test and Metrics.Merge about it.
func populateMetrics(t *testing.T, m *Metrics) {
	t.Helper()
	v := reflect.ValueOf(m).Elem()
	typ := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := typ.Field(i).Name
		if name == "Phases" {
			// Histograms have internal invariants (Min/Max vs Buckets), so
			// populate them through Record rather than raw field writes.
			for p := range m.Phases {
				m.Phases[p].Record(time.Duration(1+p) * time.Microsecond)
				m.Phases[p].Record(time.Duration(3+p) * time.Millisecond)
			}
			continue
		}
		switch f.Kind() {
		case reflect.Int64, reflect.Int:
			f.SetInt(int64(7 + i))
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				e := f.Index(j)
				if e.Kind() != reflect.Int64 {
					t.Fatalf("Metrics.%s[%d] has kind %v; teach populateMetrics and Metrics.Merge about it", name, j, e.Kind())
				}
				e.SetInt(int64(1 + j%5))
			}
		default:
			t.Fatalf("Metrics.%s has kind %v this drift test does not know; teach it and Metrics.Merge about the new field", name, f.Kind())
		}
	}
}

// TestMergeCoversEveryField is the drift guard for Metrics.Merge: merging a
// fully populated Metrics into a zero one must reproduce every field (sums
// add from zero, watermarks take the max over zero — both are the identity),
// so any field a future change adds without extending Merge fails here.
func TestMergeCoversEveryField(t *testing.T) {
	var o Metrics
	populateMetrics(t, &o)
	var m Metrics
	m.Merge(&o)
	if m == o {
		return
	}
	mv, ov := reflect.ValueOf(m), reflect.ValueOf(o)
	for i := 0; i < mv.NumField(); i++ {
		if !reflect.DeepEqual(mv.Field(i).Interface(), ov.Field(i).Interface()) {
			t.Errorf("Merge into a zero Metrics dropped or distorted field %s:\n got %v\nwant %v",
				mv.Type().Field(i).Name, mv.Field(i).Interface(), ov.Field(i).Interface())
		}
	}
	t.Fatal("Merge into a zero Metrics must reproduce the source exactly")
}

// TestMergeSumAndMaxSemantics distinguishes the two merge behaviours a zero
// target cannot: summed fields double on a second merge, watermark and
// geometry fields stay put.
func TestMergeSumAndMaxSemantics(t *testing.T) {
	var o Metrics
	populateMetrics(t, &o)
	var m Metrics
	m.Merge(&o)
	m.Merge(&o)
	if m.Requests != 2*o.Requests || m.ResponseTime != 2*o.ResponseTime || m.GCTime != 2*o.GCTime {
		t.Fatalf("summed fields did not double: Requests %d vs %d", m.Requests, o.Requests)
	}
	if m.Phases[obs.PhaseResponse].Count != 2*o.Phases[obs.PhaseResponse].Count {
		t.Fatalf("phase histogram counts did not double")
	}
	if m.MaxResponse != o.MaxResponse || m.MaxQueueDepth != o.MaxQueueDepth {
		t.Fatalf("watermarks must take the max, not the sum: MaxResponse %v vs %v", m.MaxResponse, o.MaxResponse)
	}
	if m.Channels != o.Channels || m.DiesPerChannel != o.DiesPerChannel {
		t.Fatalf("geometry echoes must take the max, not the sum: Channels %d vs %d", m.Channels, o.Channels)
	}
}

// populateMetricsRand fills every field with seeded-random nonzero values,
// reusing populateMetrics's shape knowledge so new field kinds still fail
// loudly. The rng drives int fields and histogram samples.
func populateMetricsRand(t *testing.T, m *Metrics, rng *rand.Rand) {
	t.Helper()
	v := reflect.ValueOf(m).Elem()
	typ := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := typ.Field(i).Name
		if name == "Phases" {
			for p := range m.Phases {
				for k := 0; k < 1+rng.Intn(4); k++ {
					m.Phases[p].Record(time.Duration(rng.Int63n(int64(5 * time.Millisecond))))
				}
			}
			continue
		}
		switch f.Kind() {
		case reflect.Int64, reflect.Int:
			f.SetInt(1 + rng.Int63n(1000))
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				e := f.Index(j)
				if e.Kind() != reflect.Int64 {
					t.Fatalf("Metrics.%s[%d] has kind %v; teach populateMetricsRand about it", name, j, e.Kind())
				}
				e.SetInt(1 + rng.Int63n(1000))
			}
		default:
			t.Fatalf("Metrics.%s has kind %v this property test does not know", name, f.Kind())
		}
	}
	// Geometry echoes must stay within the fixed per-channel array bound or
	// the merged value stops being a legal Metrics.
	m.Channels = 1 + rng.Intn(MaxChannels)
	m.DiesPerChannel = 1 + rng.Intn(8)
}

// merged returns a copy of a with b merged in, leaving both inputs intact.
func merged(a, b Metrics) Metrics {
	m := a
	m.Merge(&b)
	return m
}

// TestMergeCommutative is the property the sharded host relies on: merging
// per-shard metrics must not care which shard finishes first.
func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		var a, b Metrics
		populateMetricsRand(t, &a, rng)
		populateMetricsRand(t, &b, rng)
		ab, ba := merged(a, b), merged(b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("iter %d: merge(a,b) != merge(b,a):\n %+v\nvs\n %+v", iter, ab, ba)
		}
	}
}

// TestMergeAssociative pins that folding any number of shards pairwise in
// any grouping yields one well-defined total.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 50; iter++ {
		var a, b, c Metrics
		populateMetricsRand(t, &a, rng)
		populateMetricsRand(t, &b, rng)
		populateMetricsRand(t, &c, rng)
		left, right := merged(merged(a, b), c), merged(a, merged(b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("iter %d: (a+b)+c != a+(b+c):\n %+v\nvs\n %+v", iter, left, right)
		}
	}
}

// TestMergeZeroIdentity pins that the zero Metrics is the fold's identity
// element, so an idle shard contributes nothing.
func TestMergeZeroIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a, zero Metrics
	populateMetricsRand(t, &a, rng)
	if got := merged(a, zero); !reflect.DeepEqual(got, a) {
		t.Fatalf("a+0 != a:\n %+v\nvs\n %+v", got, a)
	}
	if got := merged(zero, a); !reflect.DeepEqual(got, a) {
		t.Fatalf("0+a != a:\n %+v\nvs\n %+v", got, a)
	}
}
