package dftl

import (
	"math/rand"
	"testing"
)

// TestMissEvictCycleAllocBound pins DFTL's steady-state allocation behavior
// on the shape the random-read macro-bench measures: a random read over a
// cache far smaller than the footprint misses, evicts and installs from a
// recycled slab entry. Before the slab, every miss allocated a fresh entry —
// the ~0.99 allocs/op the bench reported; after it the cycle runs out of the
// free list, leaving only a small budget for map-internal incidentals.
func TestMissEvictCycleAllocBound(t *testing.T) {
	if !allocGuardsEnabled {
		t.Skip("allocation guards disabled under -race / -tags ftlsan")
	}
	// 64-entry budget over a 4096-page device: nearly every read misses.
	d, tr := newDevice(t, 512)
	rng := rand.New(rand.NewSource(11))
	arrival := int64(0)
	serveRandom := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := d.Serve(rd(arrival, rng.Int63n(4096))); err != nil {
				t.Fatal(err)
			}
			arrival++
		}
	}
	serveRandom(2_000) // warm the slab past its high-water mark
	const reads = 500
	allocs := testing.AllocsPerRun(1, func() { serveRandom(reads) })
	perOp := allocs / reads
	const bound = 0.25
	if perOp > bound {
		t.Fatalf("miss+evict cycle allocates %.3f times per op, want <= %v", perOp, bound)
	}
	m := d.Metrics()
	if m.Hits*2 > m.Lookups {
		t.Fatalf("hit ratio %.2f too high; the guard did not exercise the miss path", float64(m.Hits)/float64(m.Lookups))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSlabRecycleStress churns the cache through many full turnovers and
// audits the slab afterwards: every free entry reset, every mapped entry
// linked.
func TestSlabRecycleStress(t *testing.T) {
	d, tr := newDevice(t, 512)
	rng := rand.New(rand.NewSource(7))
	arrival := int64(0)
	for i := 0; i < 20_000; i++ {
		page := rng.Int63n(4096)
		var err error
		if rng.Intn(3) == 0 {
			_, err = d.Serve(wr(arrival, page))
		} else {
			_, err = d.Serve(rd(arrival, page))
		}
		if err != nil {
			t.Fatal(err)
		}
		arrival++
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}
