//go:build !race && !ftlsan

package dftl

// allocGuardsEnabled arms the AllocsPerRun regression guards. Race-detector
// and ftlsan builds disable them: both instrument every operation with
// allocations the production build does not perform.
const allocGuardsEnabled = true
