// Package dftl implements DFTL (Gupta et al., ASPLOS 2009), the first
// demand-based page-level FTL and the baseline of the TPFTL paper.
//
// DFTL caches individual mapping entries (8 B each) in a segmented LRU list
// (a probationary segment absorbs one-touch entries; re-referenced entries
// are promoted to a protected segment). On a miss the requested entry — and
// only it — is loaded from its translation page. On eviction of a dirty
// entry, only that entry is written back (a read-modify-write of its
// translation page); the paper's §3.2 identifies this per-entry writeback as
// DFTL's key inefficiency. During GC, mapping updates for migrated data
// pages that share a translation page are batched into one update, as in the
// original DFTL design.
package dftl

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/lru"
)

// entry is one cached mapping entry.
type entry struct {
	node      lru.Node[*entry]
	lpn       ftl.LPN
	ppn       flash.PPN
	dirty     bool
	protected bool
}

// Config tunes the cache.
type Config struct {
	// CacheBytes is the mapping-cache budget.
	CacheBytes int64
	// ProtectedFraction of the budget is reserved for the protected
	// segment of the segmented LRU (default 0.5).
	ProtectedFraction float64
	// EntryBytes is the RAM cost per cached entry (default 8).
	EntryBytes int
}

// FTL is the DFTL translator. Create with New.
type FTL struct {
	cfg      Config
	capacity int // max cached entries

	entries map[ftl.LPN]*entry
	prob    lru.List[*entry] // probationary segment, MRU..LRU
	prot    lru.List[*entry] // protected segment, MRU..LRU
	protCap int

	// slab recycles entries and evictUp is the single-update writeback
	// scratch, so the steady-state miss/evict cycle allocates nothing.
	slab    entrySlab
	evictUp [1]ftl.EntryUpdate

	ePerTP int // learned from the Env; snapshot grouping granularity
}

var _ ftl.Translator = (*FTL)(nil)
var _ ftl.Inspector = (*FTL)(nil)

// New returns a DFTL instance with the given cache budget.
func New(cfg Config) *FTL {
	if cfg.EntryBytes == 0 {
		cfg.EntryBytes = ftl.EntryBytesRAM
	}
	if cfg.ProtectedFraction == 0 {
		cfg.ProtectedFraction = 0.5
	}
	capacity := int(cfg.CacheBytes / int64(cfg.EntryBytes))
	if capacity < 4 {
		capacity = 4
	}
	return &FTL{
		cfg:      cfg,
		capacity: capacity,
		entries:  make(map[ftl.LPN]*entry, capacity),
		protCap:  int(float64(capacity) * cfg.ProtectedFraction),
		ePerTP:   ftl.DefaultEntriesPerTP,
	}
}

// Name implements ftl.Translator.
func (f *FTL) Name() string { return "DFTL" }

// Capacity returns the maximum number of cached entries.
func (f *FTL) Capacity() int { return f.capacity }

// Len returns the number of cached entries.
func (f *FTL) Len() int { return len(f.entries) }

// BeginRequest implements ftl.Translator. DFTL has no request-level state.
func (f *FTL) BeginRequest(first, last ftl.LPN, write bool) {}

// Translate implements ftl.Translator.
func (f *FTL) Translate(env ftl.Env, lpn ftl.LPN) (flash.PPN, error) {
	f.ePerTP = env.EntriesPerTP()
	if e, ok := f.entries[lpn]; ok {
		env.NoteLookup(true)
		f.touch(e)
		return e.ppn, nil
	}
	env.NoteLookup(false)
	// Make room before reading: the writeback of a dirty victim can
	// trigger GC, which may migrate the very data page being looked up.
	// Reading the translation page only after all evictions guarantees
	// the loaded value is current (ReadTP itself cannot trigger GC).
	if err := f.reserve(env, 1); err != nil {
		return flash.InvalidPPN, err
	}
	vals, err := env.ReadTP(ftl.VTPNOf(lpn, env.EntriesPerTP()))
	if err != nil {
		return flash.InvalidPPN, err
	}
	ppn := vals[ftl.OffOf(lpn, env.EntriesPerTP())]
	f.add(lpn, ppn, false)
	return ppn, nil
}

// Update implements ftl.Translator.
func (f *FTL) Update(env ftl.Env, lpn ftl.LPN, ppn flash.PPN) error {
	if e, ok := f.entries[lpn]; ok {
		e.ppn = ppn
		e.dirty = true
		f.touch(e)
		return nil
	}
	// Unreachable in the normal write path (Translate just inserted the
	// entry), but a standalone Update must still work.
	if err := f.reserve(env, 1); err != nil {
		return err
	}
	f.add(lpn, ppn, true)
	return nil
}

// touch applies the segmented-LRU promotion rule.
func (f *FTL) touch(e *entry) {
	if e.protected {
		f.prot.MoveToFront(&e.node)
		return
	}
	// Promote to protected.
	f.prob.Remove(&e.node)
	e.protected = true
	f.prot.PushFront(&e.node)
	// Keep the protected segment within its share by demoting its LRU.
	for f.prot.Len() > f.protCap {
		lrun := f.prot.Back()
		d := lrun.Value
		f.prot.Remove(lrun)
		d.protected = false
		f.prob.PushFront(lrun)
	}
}

// reserve evicts entries until n slots are free.
func (f *FTL) reserve(env ftl.Env, n int) error {
	for len(f.entries)+n > f.capacity {
		if err := f.evictOne(env); err != nil {
			return err
		}
	}
	return nil
}

// add inserts a new entry; the caller must have reserved space.
func (f *FTL) add(lpn ftl.LPN, ppn flash.PPN, dirty bool) {
	e := f.slab.get()
	e.lpn, e.ppn, e.dirty = lpn, ppn, dirty
	f.entries[lpn] = e
	f.prob.PushFront(&e.node)
}

// evictOne removes the coldest entry (probationary LRU first), writing it
// back if dirty. The victim is fully unlinked before the writeback so that
// a GC triggered by the flash write sees a consistent cache.
func (f *FTL) evictOne(env ftl.Env) error {
	n := f.prob.Back()
	if n == nil {
		n = f.prot.Back()
	}
	if n == nil {
		return nil
	}
	e := n.Value
	if e.protected {
		f.prot.Remove(n)
	} else {
		f.prob.Remove(n)
	}
	delete(f.entries, e.lpn)
	env.NoteReplacement(e.dirty)
	// Capture the victim and release it before the writeback: WriteTP can
	// trigger GC, whose map updates only touch entries still in the cache
	// and never insert new ones, so the recycled slot cannot be aliased.
	lpn, ppn, dirty := e.lpn, e.ppn, e.dirty
	f.slab.put(e)
	if dirty {
		v := ftl.VTPNOf(lpn, env.EntriesPerTP())
		f.evictUp[0] = ftl.EntryUpdate{Off: ftl.OffOf(lpn, env.EntriesPerTP()), PPN: ppn}
		if err := env.WriteTP(v, f.evictUp[:], false); err != nil {
			return err
		}
	}
	return nil
}

// Discard implements ftl.Translator: a trimmed page's cached entry is
// dropped without writeback — the mapping it holds is dead, and the device
// rewrites the translation page itself as part of the discard.
func (f *FTL) Discard(lpn ftl.LPN) {
	e, ok := f.entries[lpn]
	if !ok {
		return
	}
	if e.protected {
		f.prot.Remove(&e.node)
	} else {
		f.prob.Remove(&e.node)
	}
	delete(f.entries, lpn)
	f.slab.put(e)
}

// CheckInvariants audits the cache structure: the map, the two LRU segments
// and the slab free list must agree. The ftlsan device build calls it after
// every host operation.
func (f *FTL) CheckInvariants() error {
	if f.prob.Len()+f.prot.Len() != len(f.entries) {
		return fmt.Errorf("dftl: %d listed entries for %d mapped", f.prob.Len()+f.prot.Len(), len(f.entries))
	}
	//ftl:orderinsensitive read-only invariant check; any violating entry is a valid witness
	for lpn, e := range f.entries {
		if e.lpn != lpn {
			return fmt.Errorf("dftl: entry keyed %d carries lpn %d", lpn, e.lpn)
		}
		if !e.node.InList() {
			return fmt.Errorf("dftl: mapped entry %d not on any LRU segment", lpn)
		}
	}
	return f.slab.check()
}

// FlushDirty implements ftl.Translator: a host flush barrier forces every
// dirty cached entry to its translation page. Entries sharing a translation
// page are written back in one batched read-modify-write, and pages are
// visited in ascending VTPN order so the writeback sequence is deterministic.
func (f *FTL) FlushDirty(env ftl.Env) error {
	e := env.EntriesPerTP()
	pending := map[ftl.VTPN][]ftl.EntryUpdate{}
	// Entries are marked clean as they are captured, NOT after the writes:
	// a GC triggered mid-flush refreshes cached entries (hit path) and must
	// leave them dirty again, or the refreshed mappings would be lost.
	for lpn, ent := range f.entries {
		if !ent.dirty {
			continue
		}
		v := ftl.VTPNOf(lpn, e)
		pending[v] = append(pending[v], ftl.EntryUpdate{Off: ftl.OffOf(lpn, e), PPN: ent.ppn})
		ent.dirty = false
	}
	for _, v := range ftl.SortedVTPNs(pending) {
		ups := pending[v]
		ftl.SortUpdates(ups)
		if err := env.WriteTP(v, ups, false); err != nil {
			return err
		}
	}
	return nil
}

// OnGCDataMoves implements ftl.Translator. Updates for moves whose entries
// are cached happen in RAM (GC hits); the rest are grouped by translation
// page and applied in one batch update per page — DFTL's original GC-time
// batching.
func (f *FTL) OnGCDataMoves(env ftl.Env, moves []ftl.GCMove) error {
	e := env.EntriesPerTP()
	pending := map[ftl.VTPN][]ftl.EntryUpdate{}
	for _, mv := range moves {
		if ent, ok := f.entries[mv.LPN]; ok {
			ent.ppn = mv.NewPPN
			ent.dirty = true
			env.NoteGCMapUpdate(true)
			continue
		}
		env.NoteGCMapUpdate(false)
		v := ftl.VTPNOf(mv.LPN, e)
		pending[v] = append(pending[v], ftl.EntryUpdate{Off: ftl.OffOf(mv.LPN, e), PPN: mv.NewPPN})
	}
	for _, v := range ftl.SortedVTPNs(pending) {
		if err := env.WriteTP(v, pending[v], false); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot implements ftl.Inspector.
func (f *FTL) Snapshot() ftl.CacheSnapshot {
	s := ftl.CacheSnapshot{DirtyPerPage: map[ftl.VTPN]int{}}
	for lpn, e := range f.entries {
		s.Entries++
		v := ftl.VTPNOf(lpn, f.ePerTP)
		if _, ok := s.DirtyPerPage[v]; !ok {
			s.DirtyPerPage[v] = 0
		}
		if e.dirty {
			s.DirtyEntries++
			s.DirtyPerPage[v]++
		}
	}
	s.TPNodes = len(s.DirtyPerPage)
	s.UsedBytes = int64(len(f.entries)) * int64(f.cfg.EntryBytes)
	return s
}

// DirtyCached returns the LPN→PPN map of dirty cached entries; consistency
// tests feed it to Device.CheckConsistency.
func (f *FTL) DirtyCached() map[ftl.LPN]flash.PPN {
	out := make(map[ftl.LPN]flash.PPN)
	for lpn, e := range f.entries {
		if e.dirty {
			out[lpn] = e.ppn
		}
	}
	return out
}
