package dftl

// Slab allocator for DFTL's cache entries, mirroring internal/core's
// discipline: entries are allocated in chunks, reset to sentinels on
// release, and reused LIFO, so the steady-state miss/evict cycle performs no
// heap allocation. The reset-on-release rule is audited by CheckInvariants
// (and so by the ftlsan build after every host operation).

import (
	"fmt"

	"repro/internal/flash"
)

// slabChunk is how many entries one backing-array growth adds.
const slabChunk = 256

// entrySlab recycles cache entries.
type entrySlab struct {
	free []*entry
}

// get returns a reset entry, growing the slab if the free list is empty.
//
//ftl:hotpath
func (s *entrySlab) get() *entry {
	n := len(s.free)
	if n == 0 {
		s.grow()
		n = len(s.free)
	}
	e := s.free[n-1]
	s.free[n-1] = nil
	s.free = s.free[:n-1]
	return e
}

func (s *entrySlab) grow() {
	chunk := make([]entry, slabChunk)
	for i := range chunk {
		e := &chunk[i]
		e.node.Value = e // set once; the node identity never changes
		resetEntry(e)
		s.free = append(s.free, e)
	}
}

// put resets e and returns it to the free list. e must already be unlinked
// from its LRU segment and removed from the entry map.
//
//ftl:hotpath
func (s *entrySlab) put(e *entry) {
	resetEntry(e)
	s.free = append(s.free, e)
}

// resetEntry restores the sentinel state a free entry must carry.
func resetEntry(e *entry) {
	e.lpn = -1
	e.ppn = flash.InvalidPPN
	e.dirty = false
	e.protected = false
}

// check audits the free list: every entry must be unlinked and fully reset.
func (s *entrySlab) check() error {
	for _, e := range s.free {
		if e == nil {
			return fmt.Errorf("dftl: nil entry on slab free list")
		}
		if e.node.Value != e {
			return fmt.Errorf("dftl: free entry lost its back-pointer")
		}
		if e.node.InList() {
			return fmt.Errorf("dftl: free entry still linked in a list")
		}
		if e.lpn != -1 || e.ppn != flash.InvalidPPN || e.dirty || e.protected {
			return fmt.Errorf("dftl: free entry not reset (lpn=%d dirty=%v protected=%v)", e.lpn, e.dirty, e.protected)
		}
	}
	return nil
}
