//go:build race || ftlsan

package dftl

// See allocguard_on_test.go.
const allocGuardsEnabled = false
