package dftl

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ftl"
	"repro/internal/trace"
)

func newDevice(t *testing.T, cacheBytes int64) (*ftl.Device, *FTL) {
	t.Helper()
	tr := New(Config{CacheBytes: cacheBytes})
	d, err := ftl.NewDevice(ftl.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		OverProvision: 0.15,
		CacheBytes:    cacheBytes,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Format(); err != nil {
		t.Fatal(err)
	}
	return d, tr
}

func rd(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpRead}
}

func wr(arrival, page int64) trace.Request {
	return trace.Request{Arrival: arrival, Offset: page * 4096, Length: 4096, Op: trace.OpWrite}
}

func TestCapacityClamp(t *testing.T) {
	if got := New(Config{CacheBytes: 1}).Capacity(); got != 4 {
		t.Fatalf("capacity = %d, want clamp 4", got)
	}
	if got := New(Config{CacheBytes: 800}).Capacity(); got != 100 {
		t.Fatalf("capacity = %d, want 100", got)
	}
	if got := New(Config{CacheBytes: 800, EntryBytes: 16}).Capacity(); got != 50 {
		t.Fatalf("capacity = %d, want 50 with 16 B entries", got)
	}
}

func TestName(t *testing.T) {
	if New(Config{CacheBytes: 64}).Name() != "DFTL" {
		t.Fatal("wrong name")
	}
}

// TestSegmentedLRUPromotion checks the two-segment behaviour: a
// re-referenced entry moves to the protected segment and survives a scan of
// one-touch entries that would evict it under plain LRU.
func TestSegmentedLRUPromotion(t *testing.T) {
	d, _ := newDevice(t, 8*8) // 8 entries, protected segment 4
	arrival := int64(0)
	serve := func(p int64) {
		t.Helper()
		if _, err := d.Serve(rd(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	// Touch page 5 twice: promoted to protected.
	serve(5)
	serve(5)
	// Scan 7 one-touch pages — enough to flush an 8-entry plain LRU.
	for p := int64(100); p < 107; p++ {
		serve(p)
	}
	// Page 5 must still hit.
	before := d.Metrics().Hits
	serve(5)
	if d.Metrics().Hits != before+1 {
		t.Fatal("promoted entry was evicted by a one-touch scan")
	}
}

func TestProtectedSegmentBounded(t *testing.T) {
	d, tr := newDevice(t, 8*8)
	arrival := int64(0)
	// Promote 6 entries (> protCap 4): the protected segment must demote
	// its LRU back to probationary rather than grow unbounded.
	for p := int64(0); p < 6; p++ {
		for k := 0; k < 2; k++ {
			if _, err := d.Serve(rd(arrival, p)); err != nil {
				t.Fatal(err)
			}
			arrival += int64(time.Millisecond)
		}
	}
	if tr.prot.Len() > tr.protCap {
		t.Fatalf("protected segment %d exceeds cap %d", tr.prot.Len(), tr.protCap)
	}
	if tr.Len() != 6 {
		t.Fatalf("entries = %d", tr.Len())
	}
}

func TestGCBatchUpdateSharesTranslationPage(t *testing.T) {
	// All LPNs share translation page 0, so all GC-miss updates of one
	// victim block must collapse into few translation page writes.
	d, tr := newDevice(t, 8*8)
	arrival := int64(0)
	// Random overwrites of a 900-page region: victims keep valid pages,
	// so GC must migrate them and update their mappings.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 12000; i++ {
		if _, err := d.Serve(wr(arrival, int64(rng.Intn(900)))); err != nil {
			t.Fatal(err)
		}
		arrival += int64(50 * time.Microsecond)
	}
	m := d.Metrics()
	if m.GCDataCollections == 0 {
		t.Fatal("no GC")
	}
	misses := m.GCMapUpdates - m.GCMapHits
	if misses == 0 {
		t.Fatal("no GC misses despite tiny cache")
	}
	if m.TransWritesGC >= misses {
		t.Fatalf("GC trans writes %d not batched below %d misses", m.TransWritesGC, misses)
	}
	if err := d.CheckConsistency(tr.DirtyCached()); err != nil {
		t.Fatal(err)
	}
}

func TestStandaloneUpdateInsertsDirty(t *testing.T) {
	d, tr := newDevice(t, 8*8)
	if err := tr.Update(d, 42, d.Truth(42)); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("entries = %d", tr.Len())
	}
	dc := tr.DirtyCached()
	if len(dc) != 1 {
		t.Fatalf("dirty = %d", len(dc))
	}
}

func TestEvictionOrderProbationaryFirst(t *testing.T) {
	d, tr := newDevice(t, 8*8)
	arrival := int64(0)
	// Two protected entries, six probationary; the next insert evicts from
	// probationary even though a protected entry is older.
	for k := 0; k < 2; k++ {
		if _, err := d.Serve(rd(arrival, 1)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	for p := int64(10); p < 17; p++ {
		if _, err := d.Serve(rd(arrival, p)); err != nil {
			t.Fatal(err)
		}
		arrival += int64(time.Millisecond)
	}
	// Page 1 (protected) must still be cached.
	before := d.Metrics().Hits
	if _, err := d.Serve(rd(arrival, 1)); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().Hits != before+1 {
		t.Fatal("protected entry evicted before probationary ones")
	}
	_ = tr
}
